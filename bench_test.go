// Package repro's root benchmarks regenerate the paper's evaluation
// artifacts as testing.B benchmarks and measure the framework itself:
//
//   - BenchmarkFig2_* — one per corpus family: the DPOR sweep behind
//     Figure 2 (reports #HBRs, #lazy HBRs and the redundancy the lazy
//     relation exposes, as benchmark metrics).
//   - BenchmarkFig3_* — the caching comparison behind Figure 3
//     (reports #lazy HBRs reached by each caching engine).
//   - BenchmarkEngine_* — ablation across engines on a fixed workload.
//   - BenchmarkSnapshotVsReplay — the exploration-backend ablation.
//   - BenchmarkExecutor / BenchmarkTracker / BenchmarkVClock —
//     microbenchmarks of the hot paths.
//
// Run everything with: go test -bench=. -benchmem
package repro_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/figures"
	"repro/internal/goharness"
	"repro/internal/hb"
	"repro/internal/vclock"
)

// benchLimit keeps benchmark iterations snappy; cmd/eval regenerates
// the figures at the paper's full 100,000-schedule limit.
const benchLimit = 2000

// fig2Families picks one representative benchmark per family for the
// per-family Figure 2 benchmarks.
var fig2Families = []string{
	"coarse-disjoint-3x2",
	"coarse-readonly-3",
	"coarse-shared-3",
	"coarse-tail-3x3",
	"bank-global-3",
	"mixed-2",
	"indexer-2",
	"filesystem-2",
	"lastzero-2",
	"account-locked-2",
	"counter-racy-2x2",
	"dcl-2",
	"msgpass-2",
	"peterson-2",
	"philosophers-3",
	"rw-2r1w",
	"ticket-2",
	"prodcons-1p1c-s1-i2",
	"sharded-3t2s",
	"forkjoin-2",
	"pipeline-3",
	"synth-09",
}

func mustBench(b *testing.B, name string) bench.Benchmark {
	b.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("missing benchmark %s", name)
	}
	return bm
}

// BenchmarkFig2 regenerates Figure 2 rows (DPOR; #HBRs vs #lazy HBRs)
// for one representative of every corpus family.
func BenchmarkFig2(b *testing.B) {
	eng := explore.NewDPOR(false)
	for _, name := range fig2Families {
		bm := mustBench(b, name)
		b.Run(name, func(b *testing.B) {
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = eng.Explore(bm.Program, explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000})
			}
			b.ReportMetric(float64(last.Schedules), "schedules")
			b.ReportMetric(float64(last.DistinctHBRs), "HBRs")
			b.ReportMetric(float64(last.DistinctLazyHBRs), "lazyHBRs")
			b.ReportMetric(float64(last.DistinctStates), "states")
		})
	}
}

// BenchmarkFig3 regenerates Figure 3 rows (regular vs lazy HBR caching;
// #lazy HBRs within the budget) for the families where the limit binds.
func BenchmarkFig3(b *testing.B) {
	regular := explore.NewHBRCache()
	lazy := explore.NewLazyHBRCache()
	for _, name := range []string{"coarse-disjoint-4x2", "coarse-tail-3x3", "coarse-tail-4x3", "bank-global-4", "peterson-2", "synth-09", "coarse-shared-3"} {
		bm := mustBench(b, name)
		b.Run(name, func(b *testing.B) {
			var reg, lz explore.Result
			for i := 0; i < b.N; i++ {
				reg = regular.Explore(bm.Program, explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000})
				lz = lazy.Explore(bm.Program, explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000})
			}
			b.ReportMetric(float64(reg.DistinctLazyHBRs), "regular-lazyHBRs")
			b.ReportMetric(float64(lz.DistinctLazyHBRs), "lazy-lazyHBRs")
		})
	}
}

// BenchmarkFig2FullSweep runs the complete full-corpus Figure 2 sweep
// (at the reduced benchmark limit) and reports the paper's summary
// statistics as metrics.
func BenchmarkFig2FullSweep(b *testing.B) {
	all := bench.All()
	var rows []figures.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig2(all, figures.Options{ScheduleLimit: benchLimit, MaxSteps: 2000})
		if err != nil {
			b.Fatal(err)
		}
	}
	s := figures.SummarizeFig2(rows)
	b.ReportMetric(float64(s.BelowDiagonal), "below-diagonal")
	b.ReportMetric(s.RedundantPct(), "redundant-pct")
}

// BenchmarkFig3FullSweep runs the complete Figure 3 sweep at a small
// budget and reports the summary statistics.
func BenchmarkFig3FullSweep(b *testing.B) {
	all := bench.All()
	var rows []figures.Fig3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig3(all, figures.Options{ScheduleLimit: 500, MaxSteps: 2000})
		if err != nil {
			b.Fatal(err)
		}
	}
	s := figures.SummarizeFig3(rows)
	b.ReportMetric(float64(s.LazyWins), "lazy-wins")
	b.ReportMetric(s.ExtraPct(), "extra-pct")
}

// BenchmarkEngine is the ablation across all engines on one fixed
// coarse-locking workload — the design-choice comparison DESIGN.md
// calls out (how much work each reduction saves on the paper's
// motivating pattern).
func BenchmarkEngine(b *testing.B) {
	bm := mustBench(b, "coarse-disjoint-4x2")
	engines := []explore.Engine{
		explore.NewDFS(),
		explore.NewDPOR(false),
		explore.NewDPOR(true),
		explore.NewHBRCache(),
		explore.NewLazyHBRCache(),
		explore.NewLazyDPOR(),
		explore.NewRandomWalk(1),
		explore.NewPCT(1, 3),
		explore.NewPOS(1),
	}
	for _, eng := range engines {
		eng := eng
		b.Run(eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = eng.Explore(bm.Program, explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000})
			}
			b.ReportMetric(float64(last.Schedules), "schedules")
			b.ReportMetric(float64(last.Events), "events")
		})
	}
	// The same ablation on a message-passing workload: the mesh's ops
	// all conflict on one shared channel, so engines pay the
	// per-channel total-order dependence rules instead of the lock
	// edges. Appended under chan/ so the existing sub-benchmark names
	// (and the perf trajectory keyed on them) stay stable.
	cbm := mustBench(b, "chan-mesh-2p2c")
	for _, eng := range engines {
		eng := eng
		b.Run("chan/"+eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = eng.Explore(cbm.Program, explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000})
			}
			b.ReportMetric(float64(last.Schedules), "schedules")
			b.ReportMetric(float64(last.Events), "events")
		})
	}
}

// BenchmarkFirstBug measures bug-finding cost per technique on a
// deadlocking corpus member: wall-clock ns/op plus the
// schedules-to-first-bug metric the paper's evaluation compares —
// tracked in the BENCH_PR*.json trajectory so sampler regressions
// (a seed change silently inflating schedules-to-bug) are visible.
func BenchmarkFirstBug(b *testing.B) {
	bm := mustBench(b, "philosophers-3")
	engines := []explore.Engine{
		explore.NewDPOR(true),
		explore.NewRandomWalk(1),
		explore.NewPCT(1, 3),
		explore.NewPOS(1),
	}
	for _, eng := range engines {
		eng := eng
		b.Run(eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = eng.Explore(bm.Program, explore.Options{
					ScheduleLimit: 20000, MaxSteps: 2000, StopAtFirstBug: true,
				})
			}
			if last.FirstViolation == nil {
				b.Fatalf("%s found no violation", eng.Name())
			}
			b.ReportMetric(float64(last.FirstBugSchedule), "schedules-to-bug")
		})
	}
	// The channel twin: a lost-wakeup deadlock (a TryRecv thief steals
	// the only buffered value from a blocking consumer), measuring
	// schedules-to-bug over message-passing schedules.
	cbm := mustBench(b, "chan-lost-wakeup")
	for _, eng := range engines {
		eng := eng
		b.Run("chan/"+eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = eng.Explore(cbm.Program, explore.Options{
					ScheduleLimit: 20000, MaxSteps: 2000, StopAtFirstBug: true,
				})
			}
			if last.FirstViolation == nil {
				b.Fatalf("%s found no violation", eng.Name())
			}
			b.ReportMetric(float64(last.FirstBugSchedule), "schedules-to-bug")
		})
	}
}

// campaignBenches are medium-weight corpus members whose exploration
// dominates cell runtime, so campaign scaling measures real work.
var campaignBenches = []string{
	"coarse-readonly-4",
	"filesystem-2",
	"rw-3r1w",
	"sharded-3t2s",
	"forkjoin-3",
	"lastzero-3",
	"ticket-2",
	"bank-global-3",
	"philosophers-3",
	"synth-03",
}

// BenchmarkCampaign measures the campaign runner's wall-clock scaling
// on a benchmark × engine grid: workers=1 is the sequential baseline;
// on a ≥4-core box the GOMAXPROCS variant must finish the same 40
// cells at least 2× faster (time/op directly demonstrates it).
func BenchmarkCampaign(b *testing.B) {
	engines := []campaign.EngineSpec{"dfs", "dpor", "hbr-caching", "lazy-hbr-caching"}
	cells := campaign.Grid(campaignBenches, engines, benchLimit, 2000)
	for _, workers := range []int{1, max(4, runtime.GOMAXPROCS(0))} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := campaign.Runner{Workers: workers}
				results, err := r.Run(context.Background(), cells)
				if err != nil {
					b.Fatal(err)
				}
				if err := campaign.FirstError(results); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(cells)), "cells")
		})
	}
}

// BenchmarkParallelExplore measures single-search scaling: one
// benchmark's full schedule space explored by sequential DFS vs the
// partitioned parallel search at GOMAXPROCS workers.
func BenchmarkParallelExplore(b *testing.B) {
	bm := mustBench(b, "filesystem-2")
	opt := explore.Options{MaxSteps: 2000}
	b.Run("dfs-sequential", func(b *testing.B) {
		var last explore.Result
		for i := 0; i < b.N; i++ {
			last = explore.NewDFS().Explore(bm.Program, opt)
		}
		b.ReportMetric(float64(last.Schedules), "schedules")
	})
	workers := max(4, runtime.GOMAXPROCS(0))
	b.Run(fmt.Sprintf("pdfs-workers=%d", workers), func(b *testing.B) {
		var last explore.Result
		for i := 0; i < b.N; i++ {
			last = campaign.ParallelDFS(bm.Program, opt, workers)
		}
		b.ReportMetric(float64(last.Schedules), "schedules")
	})
}

// BenchmarkWorkStealDPOR is the headline artifact of the work-stealing
// engine: one exhaustible benchmark explored by sequential DPOR, the
// static-partition parallel DPOR it replaces, and the work-stealing
// engine at 1–8 workers. The schedules metric shows the reduction —
// the static partition over-explores (schedules > sequential), the
// work-stealing engine matches sequential DPOR exactly at every worker
// count — while ns/op shows the wall-clock scaling.
func BenchmarkWorkStealDPOR(b *testing.B) {
	bm := mustBench(b, "synth-10")
	opt := explore.Options{MaxSteps: 2000}
	b.Run("dpor-sequential", func(b *testing.B) {
		var last explore.Result
		for i := 0; i < b.N; i++ {
			last = explore.NewDPOR(false).Explore(bm.Program, opt)
		}
		b.ReportMetric(float64(last.Schedules), "schedules")
	})
	b.Run("pdpor-static-workers=4", func(b *testing.B) {
		var last explore.Result
		for i := 0; i < b.N; i++ {
			last = campaign.ParallelDPORStatic(bm.Program, opt, 4)
		}
		b.ReportMetric(float64(last.Schedules), "schedules")
	})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("pdpor-workers=%d", workers), func(b *testing.B) {
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = campaign.ParallelDPOR(bm.Program, opt, workers)
			}
			b.ReportMetric(float64(last.Schedules), "schedules")
			if last.Steal != nil {
				b.ReportMetric(float64(last.Steal.Units), "units")
			}
		})
	}
}

// BenchmarkBacktrackAllocs asserts the O(1)-backtracking contract as
// a bench-smoke gate: with the undo backend, the stack engines'
// tracker+machine allocations per explored event must stay constant
// (~2; a reintroduced per-step tracker Clone costs ≥3 slab copies per
// event and the legacy deep-snapshot backend measures ~20). The
// benchmark fails — not just reports — when the bound is exceeded,
// so the regression cannot silently return. Runs in one iteration
// under `make bench-smoke`.
func BenchmarkBacktrackAllocs(b *testing.B) {
	const maxAllocsPerEvent = 4.0
	bm := mustBench(b, "coarse-tail-3x3")
	opt := explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000, Backend: explore.BackendUndo}
	for _, eng := range []explore.Engine{explore.NewDFS(), explore.NewDPOR(false)} {
		eng := eng
		b.Run(eng.Name(), func(b *testing.B) {
			b.ReportAllocs()
			res := eng.Explore(bm.Program, opt)
			if res.Events == 0 {
				b.Fatalf("%s explored no events", eng.Name())
			}
			allocs := testing.AllocsPerRun(1, func() {
				eng.Explore(bm.Program, opt)
			})
			perEvent := allocs / float64(res.Events)
			if perEvent > maxAllocsPerEvent {
				b.Fatalf("%s/undo: %.2f allocs per explored event, want ≤ %.1f — per-step tracker snapshot work is back",
					eng.Name(), perEvent, maxAllocsPerEvent)
			}
			b.ReportMetric(perEvent, "allocs/event")
			for i := 0; i < b.N; i++ {
				eng.Explore(bm.Program, opt)
			}
		})
	}
}

// BenchmarkObserverOverhead gates the telemetry tentpole's zero-cost
// contract under `make bench-smoke`. The disabled subtest explores
// with plain Options — the telemetry hook compiles to one nil check —
// and fails if allocations per explored event exceed the same
// envelope BenchmarkBacktrackAllocs enforces (any per-event telemetry
// allocation on the disabled path breaches it immediately). The
// enabled subtest arms the full stack (shared counters, a
// default-cadence observer, a flight ring) and fails if that costs
// more than a small per-event allocation budget, keeping the armed
// path honest too; its allocs/event lands in the perf trajectory.
func BenchmarkObserverOverhead(b *testing.B) {
	const (
		maxDisabledAllocsPerEvent = 4.0 // BenchmarkBacktrackAllocs envelope
		maxEnabledExtraPerEvent   = 2.0
	)
	bm := mustBench(b, "coarse-tail-3x3")
	plain := explore.Options{ScheduleLimit: benchLimit, MaxSteps: 2000, Backend: explore.BackendUndo}
	res := explore.NewDPOR(false).Explore(bm.Program, plain)
	if res.Events == 0 {
		b.Fatal("probe run explored no events")
	}
	offAllocs := testing.AllocsPerRun(1, func() {
		explore.NewDPOR(false).Explore(bm.Program, plain)
	})
	perEventOff := offAllocs / float64(res.Events)

	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		if perEventOff > maxDisabledAllocsPerEvent {
			b.Fatalf("telemetry-disabled run costs %.2f allocs per explored event, want ≤ %.1f — the disabled path is no longer free",
				perEventOff, maxDisabledAllocsPerEvent)
		}
		b.ReportMetric(perEventOff, "allocs/event")
		for i := 0; i < b.N; i++ {
			explore.NewDPOR(false).Explore(bm.Program, plain)
		}
	})

	armed := plain
	armed.Counters = explore.NewCounters()
	armed.Observer = &explore.Observer{OnProgress: func(explore.Progress) {}}
	armed.Flight = explore.NewFlightRecorder(64)
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		onAllocs := testing.AllocsPerRun(1, func() {
			explore.NewDPOR(false).Explore(bm.Program, armed)
		})
		extra := (onAllocs - offAllocs) / float64(res.Events)
		if extra > maxEnabledExtraPerEvent {
			b.Fatalf("armed telemetry costs %.2f extra allocs per explored event, want ≤ %.1f",
				extra, maxEnabledExtraPerEvent)
		}
		b.ReportMetric(extra, "allocs/event")
		for i := 0; i < b.N; i++ {
			explore.NewDPOR(false).Explore(bm.Program, armed)
		}
	})
}

// BenchmarkSnapshotVsReplay measures the exploration-backend ablation:
// the default undo-log backend ("snapshot", name kept stable across
// the perf trajectory) against the legacy deep-snapshot backend and
// full replay.
func BenchmarkSnapshotVsReplay(b *testing.B) {
	bm := mustBench(b, "counter-racy-2x2")
	for _, mode := range []struct {
		name    string
		backend explore.BackendKind
	}{
		{"snapshot", explore.BackendUndo},
		{"legacy-snapshot", explore.BackendSnapshot},
		{"replay", explore.BackendReplay},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			eng := explore.NewDPOR(false)
			var last explore.Result
			for i := 0; i < b.N; i++ {
				last = eng.Explore(bm.Program, explore.Options{
					ScheduleLimit: benchLimit,
					MaxSteps:      2000,
					Backend:       mode.backend,
				})
			}
			b.ReportMetric(float64(last.Events)/float64(last.Schedules), "events/schedule")
		})
	}
}

// BenchmarkExecutor measures raw single-schedule execution throughput
// over the interpreter frontend.
func BenchmarkExecutor(b *testing.B) {
	bm := mustBench(b, "coarse-disjoint-4x2")
	b.ReportAllocs()
	events := 0
	for i := 0; i < b.N; i++ {
		out := exec.Run(bm.Program, exec.FirstEnabled{}, exec.Options{})
		events += len(out.Trace)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkTracker measures the per-event cost of maintaining all
// three happens-before relations plus fingerprints.
func BenchmarkTracker(b *testing.B) {
	evs := make([]event.Event, 0, 64)
	for i := 0; i < 16; i++ {
		t := event.ThreadID(i % 4)
		evs = append(evs,
			event.Event{Thread: t, Index: int32(i / 4 * 4), Op: event.Op{Kind: event.KindLock, Obj: 0}},
			event.Event{Thread: t, Index: int32(i/4*4 + 1), Op: event.Op{Kind: event.KindRead, Obj: int32(i % 3)}},
			event.Event{Thread: t, Index: int32(i/4*4 + 2), Op: event.Op{Kind: event.KindWrite, Obj: int32(i % 3), Val: int64(i)}},
			event.Event{Thread: t, Index: int32(i/4*4 + 3), Op: event.Op{Kind: event.KindUnlock, Obj: 0}},
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := hb.NewTracker(4, 3, 1)
		for _, ev := range evs {
			tr.Apply(ev)
		}
	}
	b.ReportMetric(float64(len(evs)), "events/op")
}

// BenchmarkVClock measures the clock algebra hot path.
func BenchmarkVClock(b *testing.B) {
	a := vclock.New(8)
	c := vclock.New(8)
	for i := 0; i < 8; i++ {
		a = a.Set(i, int32(i))
		c = c.Set(i, int32(8-i))
	}
	b.Run("join", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = a.Clone().Join(c)
		}
	})
	b.Run("leq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.Leq(c)
		}
	})
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = a.Hash()
		}
	})
}

// BenchmarkGoroutineHarness measures the channel-handshake frontend
// against the interpreter on the same logical program.
func BenchmarkGoroutineHarness(b *testing.B) {
	bm := mustBench(b, "coarse-disjoint-2x2")
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.Run(bm.Program, exec.FirstEnabled{}, exec.Options{})
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		p := harnessCoarse()
		for i := 0; i < b.N; i++ {
			exec.Run(p, exec.FirstEnabled{}, exec.Options{})
		}
	})
}

// BenchmarkCorpusConstruction measures building the full corpus (the
// paper's 79 plus the channel family).
func BenchmarkCorpusConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := len(bench.All()); got != bench.Count {
			b.Fatalf("corpus size %d", got)
		}
	}
}

// harnessCoarse builds the goroutine-harness twin of
// coarse-disjoint-2x2 for the frontend comparison.
func harnessCoarse() *goharness.Program {
	p := goharness.New("coarse-disjoint-2x2-goroutines").AutoStart()
	g0 := p.Mutex("g")
	cells := []goharness.Var{p.Var("own0"), p.Var("own1")}
	for i := 0; i < 2; i++ {
		i := i
		p.Thread(func(g *goharness.G) {
			g.Lock(g0)
			for k := 0; k < 2; k++ {
				g.Write(cells[i], g.Read(cells[i])+1)
			}
			g.Unlock(g0)
		})
	}
	return p
}

func init() {
	// Sanity: the family list only names real benchmarks, failing
	// fast at benchmark startup rather than mid-run.
	for _, name := range fig2Families {
		if _, ok := bench.ByName(name); !ok {
			panic(fmt.Sprintf("bench_test: unknown family representative %q", name))
		}
	}
}
