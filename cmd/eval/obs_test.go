package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/sct"
)

// TestObsSmoke is the CI obs-smoke scenario driven in-process: a short
// campaign with -progress, -heartbeat and -metrics armed must exit
// clean, mix parseable heartbeat lines into the JSON stream, serve
// expvar and pprof over HTTP, and leave a stream that resumes cleanly.
func TestObsSmoke(t *testing.T) {
	args := func(extra ...string) []string {
		// synth-10 at this limit runs long enough that a 1ms heartbeat
		// cadence is guaranteed to land lines in the stream.
		return append([]string{
			"-fig", "campaign",
			"-bench", "synth-10",
			"-engines", "dfs",
			"-limit", "100000",
			"-maxsteps", "2000",
			"-json", "-quiet",
		}, extra...)
	}
	var stdout, stderr bytes.Buffer
	code := run(args("-progress", "-heartbeat", "1ms", "-metrics", "127.0.0.1:0"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}

	// Heartbeat lines are present, well-formed, and invisible to the
	// result reader.
	stream := stdout.Bytes()
	hbLines := 0
	for _, line := range bytes.Split(stream, []byte("\n")) {
		if !bytes.Contains(line, []byte(`"type":"heartbeat"`)) {
			continue
		}
		hbLines++
		var hb sct.Heartbeat
		if err := json.Unmarshal(line, &hb); err != nil {
			t.Fatalf("heartbeat line does not parse: %v\n%s", err, line)
		}
		if hb.Bench != "synth-10" || hb.Engine != "dfs" || hb.Schedules <= 0 {
			t.Errorf("malformed heartbeat: %+v", hb)
		}
	}
	if hbLines == 0 {
		t.Fatal("no heartbeat lines in the -heartbeat 1ms stream")
	}
	results, err := sct.ReadResults(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("mixed stream does not parse as results: %v", err)
	}
	if len(results) != 1 || results[0].Err != "" {
		t.Fatalf("campaign results wrong: %+v", results)
	}

	// The announced endpoint serves expvar counters and pprof.
	if !strings.Contains(stderr.String(), "metrics: expvar on http://") {
		t.Errorf("endpoint announcement missing from stderr:\n%s", stderr.String())
	}
	addr, _ := metricsAddr.Load().(string)
	if addr == "" {
		t.Fatal("-metrics :0 did not record a resolved address")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, name := range []string{"eval.cells_done", "eval.schedules", "eval.events", "eval.cells_failed"} {
		if _, ok := vars[name]; !ok {
			t.Errorf("/debug/vars missing %s", name)
		}
	}
	var done int64
	if err := json.Unmarshal(vars["eval.cells_done"], &done); err != nil || done < 1 {
		t.Errorf("eval.cells_done = %s, want >= 1 (err %v)", vars["eval.cells_done"], err)
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ returned %s", resp.Status)
	}

	// The mixed stream is a valid checkpoint: resuming from it re-runs
	// nothing and still exits clean.
	checkpoint := filepath.Join(t.TempDir(), "cells.jsonl")
	if err := os.WriteFile(checkpoint, stream, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(args("-resume", checkpoint), &stdout, &stderr); code != 0 {
		t.Fatalf("resume from mixed stream exited %d\nstderr: %s", code, stderr.String())
	}
	rest, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("resume from a complete mixed stream re-ran %d cells", len(rest))
	}
}

// TestObsFlagValidation: the observability flags are usage-checked up
// front rather than silently ignored in the wrong mode.
func TestObsFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-fig", "2", "-bench", "counter-racy-2x2", "-progress"},
		{"-fig", "2", "-bench", "counter-racy-2x2", "-heartbeat", "1s"},
		{"-fig", "2", "-bench", "counter-racy-2x2", "-flight", "/tmp"},
		// -heartbeat mixes JSON lines into the stream: requires -json.
		{"-fig", "campaign", "-bench", "counter-racy-2x2", "-heartbeat", "1s"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%v exited %d, want usage error 2\nstderr: %s", args, code, stderr.String())
		}
	}
}
