package main

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/sct"
)

// progressRenderer maintains the -progress live status line on
// stderr: cells done/total, the aggregate schedule rate, and the
// slowest in-flight cell. Heartbeats feed the in-flight picture and
// finished cells retire it; both arrive serialised by the campaign's
// emit lock, but the renderer keeps its own mutex so per-cell report
// lines (println) and the final clear stay whole too.
type progressRenderer struct {
	mu            sync.Mutex
	w             io.Writer
	total         int
	done          int
	doneSchedules int64
	start         time.Time
	inflight      map[int]sct.Heartbeat
	width         int // widest line drawn so far, for \r clearing
}

func newProgressRenderer(w io.Writer, total int) *progressRenderer {
	return &progressRenderer{w: w, total: total, start: time.Now(), inflight: map[int]sct.Heartbeat{}}
}

// heartbeat absorbs one in-flight snapshot and redraws.
func (p *progressRenderer) heartbeat(h sct.Heartbeat) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inflight[h.Index] = h
	p.render()
}

// cellDone retires a finished cell: its schedules move from the live
// heartbeat picture into the completed total.
func (p *progressRenderer) cellDone(r sct.CellResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.inflight, r.Index)
	p.done++
	p.doneSchedules += int64(r.Result.Schedules)
	p.render()
}

// absorbResumed counts checkpoint-resumed cells as done without
// crediting their schedules to this run's rate.
func (p *progressRenderer) absorbResumed(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += n
}

// println clears the status line, prints one ordinary line, and
// redraws — how per-cell reports coexist with the live line on the
// same stream.
func (p *progressRenderer) println(format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clear()
	fmt.Fprintf(p.w, format+"\n", args...)
	p.render()
}

// finish clears the status line for good; the summary lines follow.
func (p *progressRenderer) finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clear()
}

func (p *progressRenderer) clear() {
	if p.width > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.width))
		p.width = 0
	}
}

func (p *progressRenderer) render() {
	var live int64
	slowMS := int64(-1)
	var slow sct.Heartbeat
	for _, h := range p.inflight {
		live += h.Schedules
		if h.ElapsedMS > slowMS {
			slowMS, slow = h.ElapsedMS, h
		}
	}
	rate := 0.0
	if secs := time.Since(p.start).Seconds(); secs > 0 {
		rate = float64(p.doneSchedules+live) / secs
	}
	line := fmt.Sprintf("cells %d/%d  %.0f schedules/s", p.done, p.total, rate)
	if slowMS >= 0 {
		line += fmt.Sprintf("  slowest %s/%s %.1fs", slow.Bench, slow.Engine, float64(slowMS)/1000)
	}
	pad := ""
	if n := p.width - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	if len(line) > p.width {
		p.width = len(line)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
}
