package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/figures"
	"repro/internal/repro"
)

// TestCampaignSmoke runs a tiny campaign end-to-end through the real
// CLI entry point and validates the streamed JSON output shape.
func TestCampaignSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "campaign",
		"-bench", "counter-racy-2x2",
		"-engines", "dfs,dpor,random:7",
		"-limit", "300",
		"-maxsteps", "2000",
		"-json", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}

	results, err := campaign.ReadJSONL(&stdout)
	if err != nil {
		t.Fatalf("campaign output is not valid JSONL: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d cells, want 3 (one per engine)", len(results))
	}
	seen := map[campaign.EngineSpec]bool{}
	for _, r := range results {
		if r.Cell.Bench != "counter-racy-2x2" {
			t.Errorf("unexpected bench %q", r.Cell.Bench)
		}
		if r.Err != "" {
			t.Errorf("cell %s failed: %s", r.Cell.Engine, r.Err)
		}
		if r.Result.Schedules <= 0 || r.Result.DistinctStates <= 0 {
			t.Errorf("cell %s has empty result: %+v", r.Cell.Engine, r.Result)
		}
		if err := r.Result.CheckInvariant(); err != nil {
			t.Errorf("cell %s: %v", r.Cell.Engine, err)
		}
		seen[r.Cell.Engine] = true
	}
	for _, want := range []campaign.EngineSpec{"dfs", "dpor", "random:7"} {
		if !seen[want] {
			t.Errorf("missing cell for engine %s", want)
		}
	}
}

// TestFig2Smoke runs the Figure 2 pipeline over a two-benchmark slice
// and checks the TSV and summary render.
func TestFig2Smoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "2",
		"-bench", "counter-racy",
		"-limit", "500",
		"-scatter=false", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "id\tname\tschedules") {
		t.Errorf("missing TSV header in output:\n%s", out)
	}
	if !strings.Contains(out, "counter-racy-2x2") || !strings.Contains(out, "summary:") {
		t.Errorf("missing rows or summary in output:\n%s", out)
	}
}

// TestCampaignJSONFeedsFigures: the streamed campaign JSON rebuilds
// Figure 2 rows identical to the direct pipeline — the paper's
// evaluation can be split into a cluster-style produce/consume pair.
func TestCampaignJSONFeedsFigures(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "campaign",
		"-bench", "prodcons",
		"-engines", "dpor",
		"-limit", "400",
		"-json", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	results, err := campaign.ReadJSONL(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := figures.Fig2FromCells(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Figure 2 rows from campaign stream")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].ID >= rows[i].ID {
			t.Errorf("rows not sorted by benchmark ID: %d then %d", rows[i-1].ID, rows[i].ID)
		}
	}
}

// TestCampaignStealStats: the work-stealing pdpor engine is selectable
// from the CLI next to its static baseline, its steal statistics
// survive the JSON stream, and the human-readable table renders them.
func TestCampaignStealStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "campaign",
		"-bench", "counter-racy-2x2",
		"-engines", "pdpor:4,pdpor-static:4",
		"-maxsteps", "2000",
		"-json", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	results, err := campaign.ReadJSONL(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	byEngine := map[campaign.EngineSpec]campaign.CellResult{}
	for _, r := range results {
		byEngine[r.Cell.Engine] = r
	}
	ws := byEngine["pdpor:4"]
	if ws.Result.Steal == nil || ws.Result.Steal.Workers != 4 || ws.Result.Steal.Units < 1 {
		t.Errorf("work-stealing cell lost its steal stats: %+v", ws.Result.Steal)
	}
	if st := byEngine["pdpor-static:4"]; st.Result.Steal != nil {
		t.Errorf("static baseline unexpectedly reports steal stats: %+v", st.Result.Steal)
	}

	var table bytes.Buffer
	code = run([]string{
		"-fig", "campaign",
		"-bench", "counter-racy-2x2",
		"-engines", "pdpor:2",
		"-maxsteps", "2000",
		"-quiet",
	}, &table, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(table.String(), "steal[w=2") {
		t.Errorf("table output missing steal stats:\n%s", table.String())
	}
}

// TestFirstBugMode drives the bug-finding pipeline end-to-end through
// the CLI: the default engine grid (including pdpor at 1/2/4 workers)
// sweeps a deadlocking benchmark, the table reports schedules-to-
// first-bug per engine, and -repro/-minimize/-verify write replay-
// verified counterexample artifacts.
func TestFirstBugMode(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "firstbug",
		"-bench", "philosophers-",
		"-limit", "5000",
		"-maxsteps", "500",
		"-quiet",
		"-repro", dir,
		"-minimize", "-verify",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"schedules to first bug",
		"philosophers-2", "philosophers-3",
		"pdpor:1", "pdpor:2", "pdpor:4",
		"deadlock",
		"all replay-verified",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("firstbug output missing %q:\n%s", want, out)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Two deadlocking benchmarks × 12 default engines.
	if len(files) != 24 {
		t.Errorf("wrote %d artifacts, want 24: %v", len(files), files)
	}
	a, err := repro.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !a.Minimized || a.Kind != "deadlock" || a.SchedulesToBug < 1 {
		t.Errorf("artifact not minimized deadlock with bug index: %+v", a)
	}
	bm, ok := bench.ByName(a.Trace.Program)
	if !ok {
		t.Fatalf("artifact names unknown program %q", a.Trace.Program)
	}
	if _, err := a.Replay(bm.Program); err != nil {
		t.Errorf("artifact does not replay: %v", err)
	}
}

// TestFirstBugJSONStream: -json streams one parseable cell per line
// with the first-bug fields populated — and stays parseable when
// artifact writing is enabled alongside (its summary goes to stderr).
func TestFirstBugJSONStream(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "firstbug",
		"-bench", "philosophers-3",
		"-engines", "dpor,pdpor:2",
		"-limit", "5000",
		"-maxsteps", "500",
		"-json", "-quiet",
		"-repro", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	results, err := campaign.ReadJSONL(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d cells, want 2", len(results))
	}
	for _, r := range results {
		if !r.Cell.StopAtFirstBug {
			t.Errorf("cell %s lost StopAtFirstBug", r.Cell.Engine)
		}
		if r.Result.FirstBugSchedule < 1 || r.Result.ViolationKind != "deadlock" {
			t.Errorf("cell %s: first-bug fields missing: idx=%d kind=%q",
				r.Cell.Engine, r.Result.FirstBugSchedule, r.Result.ViolationKind)
		}
	}
}

// TestBadFlags: unknown engines and empty selections exit non-zero.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig", "campaign", "-engines", "bogus"}, &stdout, &stderr); code == 0 {
		t.Error("bogus engine spec exited 0")
	}
	if code := run([]string{"-bench", "no-such-benchmark-xyz"}, &stdout, &stderr); code == 0 {
		t.Error("empty benchmark selection exited 0")
	}
}
