package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/figures"
	"repro/sct"
)

// TestCampaignSmoke runs a tiny campaign end-to-end through the real
// CLI entry point and validates the streamed JSON output shape.
func TestCampaignSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "campaign",
		"-bench", "counter-racy-2x2",
		"-engines", "dfs,dpor,random:7",
		"-limit", "300",
		"-maxsteps", "2000",
		"-json", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}

	results, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatalf("campaign output is not valid JSONL: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d cells, want 3 (one per engine)", len(results))
	}
	seen := map[sct.EngineSpec]bool{}
	for _, r := range results {
		if r.Cell.Bench != "counter-racy-2x2" {
			t.Errorf("unexpected bench %q", r.Cell.Bench)
		}
		if r.Err != "" {
			t.Errorf("cell %s failed: %s", r.Cell.Engine, r.Err)
		}
		if r.Result.Schedules <= 0 || r.Result.DistinctStates <= 0 {
			t.Errorf("cell %s has empty result: %+v", r.Cell.Engine, r.Result)
		}
		if err := r.Result.CheckInvariant(); err != nil {
			t.Errorf("cell %s: %v", r.Cell.Engine, err)
		}
		seen[r.Cell.Engine] = true
	}
	for _, want := range []sct.EngineSpec{"dfs", "dpor", "random:7"} {
		if !seen[want] {
			t.Errorf("missing cell for engine %s", want)
		}
	}
}

// TestCampaignResume: a partial JSONL stream checkpoint-resumes a
// campaign — resumed cells are skipped, the rest stream out, and the
// concatenation of both parts is the full grid.
func TestCampaignResume(t *testing.T) {
	runJSON := func(extra ...string) []sct.CellResult {
		t.Helper()
		var stdout, stderr bytes.Buffer
		args := append([]string{
			"-fig", "campaign",
			"-bench", "counter-racy-2x2",
			"-engines", "dfs,dpor,random:7",
			"-limit", "300",
			"-json", "-quiet",
		}, extra...)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
		}
		results, err := sct.ReadResults(&stdout)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	full := runJSON()
	// Checkpoint only the dfs and random cells; dpor must re-run.
	partial := filepath.Join(t.TempDir(), "cells.jsonl")
	f, err := os.Create(partial)
	if err != nil {
		t.Fatal(err)
	}
	w := sct.JSONLWriter(f)
	for _, r := range full {
		if r.Cell.Engine != "dpor" {
			w(r)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rest := runJSON("-resume", partial)
	if len(rest) != 1 || rest[0].Cell.Engine != "dpor" {
		t.Fatalf("resume re-ran %d cells %v, want just dpor", len(rest), rest)
	}
	for _, orig := range full {
		if orig.Cell.Engine == "dpor" && orig.Result.Schedules != rest[0].Result.Schedules {
			t.Errorf("resumed dpor cell diverged: %d schedules, want %d",
				rest[0].Result.Schedules, orig.Result.Schedules)
		}
	}
}

// TestFig2Smoke runs the Figure 2 pipeline over a two-benchmark slice
// and checks the TSV and summary render.
func TestFig2Smoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "2",
		"-bench", "counter-racy",
		"-limit", "500",
		"-scatter=false", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "id\tname\tschedules") {
		t.Errorf("missing TSV header in output:\n%s", out)
	}
	if !strings.Contains(out, "counter-racy-2x2") || !strings.Contains(out, "summary:") {
		t.Errorf("missing rows or summary in output:\n%s", out)
	}
}

// TestCampaignJSONFeedsFigures: the streamed campaign JSON rebuilds
// Figure 2 rows identical to the direct pipeline — the paper's
// evaluation can be split into a cluster-style produce/consume pair.
func TestCampaignJSONFeedsFigures(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "campaign",
		"-bench", "prodcons",
		"-engines", "dpor",
		"-limit", "400",
		"-json", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	results, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := figures.Fig2FromCells(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Figure 2 rows from campaign stream")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1].ID >= rows[i].ID {
			t.Errorf("rows not sorted by benchmark ID: %d then %d", rows[i-1].ID, rows[i].ID)
		}
	}
}

// TestCampaignStealStats: the work-stealing pdpor engine is selectable
// from the CLI next to its static baseline, its steal statistics
// survive the JSON stream, and the human-readable table renders them.
func TestCampaignStealStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "campaign",
		"-bench", "counter-racy-2x2",
		"-engines", "pdpor:4,pdpor-static:4",
		"-maxsteps", "2000",
		"-json", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	results, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	byEngine := map[sct.EngineSpec]sct.CellResult{}
	for _, r := range results {
		byEngine[r.Cell.Engine] = r
	}
	ws := byEngine["pdpor:4"]
	if ws.Result.Steal == nil || ws.Result.Steal.Workers != 4 || ws.Result.Steal.Units < 1 {
		t.Errorf("work-stealing cell lost its steal stats: %+v", ws.Result.Steal)
	}
	if st := byEngine["pdpor-static:4"]; st.Result.Steal != nil {
		t.Errorf("static baseline unexpectedly reports steal stats: %+v", st.Result.Steal)
	}

	var table bytes.Buffer
	code = run([]string{
		"-fig", "campaign",
		"-bench", "counter-racy-2x2",
		"-engines", "pdpor:2",
		"-maxsteps", "2000",
		"-quiet",
	}, &table, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(table.String(), "steal[w=2") {
		t.Errorf("table output missing steal stats:\n%s", table.String())
	}
}

// TestFirstBugMode drives the bug-finding pipeline end-to-end through
// the CLI: the registry-derived default engine grid (including pdpor
// at 1/2/4 workers) sweeps a deadlocking benchmark, the table reports
// schedules-to-first-bug per engine, and -repro/-minimize/-verify
// write replay-verified counterexample artifacts.
func TestFirstBugMode(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "firstbug",
		"-bench", "philosophers-",
		"-limit", "5000",
		"-maxsteps", "500",
		"-quiet",
		"-repro", dir,
		"-minimize", "-verify",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"schedules to first bug",
		"philosophers-2", "philosophers-3",
		"pct:3", "pos",
		"pdpor:1", "pdpor:2", "pdpor:4",
		"deadlock",
		"all replay-verified",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("firstbug output missing %q:\n%s", want, out)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Two deadlocking benchmarks × the 14 default-grid engines.
	if want := 2 * len(sct.DefaultGrid()); len(files) != want {
		t.Errorf("wrote %d artifacts, want %d: %v", len(files), want, files)
	}
	cx, err := sct.Load(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !cx.Minimized() || cx.Kind() != "deadlock" || cx.SchedulesToBug() < 1 {
		t.Errorf("artifact not minimized deadlock with bug index: %v", cx)
	}
	bm, ok := bench.ByName(cx.Program())
	if !ok {
		t.Fatalf("artifact names unknown program %q", cx.Program())
	}
	if _, err := cx.Replay(bm.Program); err != nil {
		t.Errorf("artifact does not replay: %v", err)
	}
}

// TestFirstBugResume: a partial firstbug JSONL checkpoint resumes —
// only the missing cell re-runs, yet the table and the artifact pass
// still cover the full grid from the adopted results.
func TestFirstBugResume(t *testing.T) {
	args := func(extra ...string) []string {
		return append([]string{
			"-fig", "firstbug",
			"-bench", "philosophers-3",
			"-engines", "dpor,random:3",
			"-limit", "5000",
			"-maxsteps", "500",
			"-json", "-quiet",
		}, extra...)
	}
	var stdout, stderr bytes.Buffer
	if code := run(args(), &stdout, &stderr); code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	full, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 2 {
		t.Fatalf("got %d cells", len(full))
	}

	checkpoint := filepath.Join(t.TempDir(), "cells.jsonl")
	f, err := os.Create(checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	w := sct.JSONLWriter(f)
	for _, r := range full {
		if r.Cell.Engine == "dpor" {
			w(r)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stdout.Reset()
	stderr.Reset()
	if code := run(args("-resume", checkpoint, "-repro", dir), &stdout, &stderr); code != 0 {
		t.Fatalf("resumed eval exited %d\nstderr: %s", code, stderr.String())
	}
	rest, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0].Cell.Engine != "random:3" {
		t.Fatalf("resume re-ran %v, want just random:3", rest)
	}
	// Artifacts must cover the resumed dpor cell too.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Errorf("artifact pass wrote %d files, want 2 (incl. resumed cell): %v", len(files), files)
	}
}

// TestFirstBugJSONStream: -json streams one parseable cell per line
// with the first-bug fields populated — and stays parseable when
// artifact writing is enabled alongside (its summary goes to stderr).
func TestFirstBugJSONStream(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-fig", "firstbug",
		"-bench", "philosophers-3",
		"-engines", "dpor,pdpor:2",
		"-limit", "5000",
		"-maxsteps", "500",
		"-json", "-quiet",
		"-repro", t.TempDir(),
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("eval exited %d\nstderr: %s", code, stderr.String())
	}
	results, err := sct.ReadResults(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d cells, want 2", len(results))
	}
	for _, r := range results {
		if !r.Cell.StopAtFirstBug {
			t.Errorf("cell %s lost StopAtFirstBug", r.Cell.Engine)
		}
		if r.Result.FirstBugSchedule < 1 || r.Result.ViolationKind != "deadlock" {
			t.Errorf("cell %s: first-bug fields missing: idx=%d kind=%q",
				r.Cell.Engine, r.Result.FirstBugSchedule, r.Result.ViolationKind)
		}
	}
}

// TestBadFlags: unknown engines and empty selections exit non-zero.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fig", "campaign", "-engines", "bogus"}, &stdout, &stderr); code == 0 {
		t.Error("bogus engine spec exited 0")
	}
	if code := run([]string{"-bench", "no-such-benchmark-xyz"}, &stdout, &stderr); code == 0 {
		t.Error("empty benchmark selection exited 0")
	}
	if code := run([]string{"-fig", "campaign", "-bench", "counter-racy-2x2", "-resume", "/no/such/file.jsonl"}, &stdout, &stderr); code == 0 {
		t.Error("missing resume file exited 0")
	}
	if code := run([]string{"-fig", "2", "-bench", "counter-racy-2x2", "-resume", "x.jsonl"}, &stdout, &stderr); code != 2 {
		t.Error("-resume outside campaign/firstbug mode must be a usage error")
	}
	if code := run([]string{"-fig", "campaign", "-bench", "counter-racy-2x2", "-repro", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Error("-repro outside firstbug mode must be a usage error, not a silent no-op")
	}
}
