package main

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
	"sync/atomic"

	"repro/sct"
)

// evalCounters is the process-wide aggregate the -metrics endpoint
// serves under /debug/vars: completed-cell totals across every
// campaign/firstbug run in this process. It is fed from the result
// stream, so it counts finished work; heartbeats cover the in-flight
// cells.
var evalCounters struct {
	cellsDone   atomic.Int64
	cellsFailed atomic.Int64
	schedules   atomic.Int64
	events      atomic.Int64
}

// publishOnce guards expvar registration: expvar.Publish panics on
// duplicate names, and run() is re-entered by tests.
var publishOnce sync.Once

// metricsAddr records the listener's resolved address (meaningful
// with ":0"); tests read it to reach the endpoint in-process.
var metricsAddr atomic.Value // string

// recordCellMetrics folds one finished cell into the expvar
// aggregate. Unconditional and lock-free, so it costs a few atomic
// adds per cell even when no endpoint is listening.
func recordCellMetrics(r sct.CellResult) {
	evalCounters.cellsDone.Add(1)
	if r.Err != "" {
		evalCounters.cellsFailed.Add(1)
	}
	evalCounters.schedules.Add(int64(r.Result.Schedules))
	evalCounters.events.Add(r.Result.Events)
}

// serveMetrics starts the observability endpoint: expvar counters on
// /debug/vars and the net/http/pprof profiles on /debug/pprof/. The
// listener lives for the rest of the process — metrics have process
// lifetime, like pprof itself — and the resolved address is returned
// (and kept in metricsAddr) so ":0" callers can find it.
func serveMetrics(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("eval.cells_done", expvar.Func(func() any { return evalCounters.cellsDone.Load() }))
		expvar.Publish("eval.cells_failed", expvar.Func(func() any { return evalCounters.cellsFailed.Load() }))
		expvar.Publish("eval.schedules", expvar.Func(func() any { return evalCounters.schedules.Load() }))
		expvar.Publish("eval.events", expvar.Func(func() any { return evalCounters.events.Load() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	resolved := ln.Addr().String()
	metricsAddr.Store(resolved)
	go func() { _ = http.Serve(ln, nil) }() // nil = DefaultServeMux (expvar + pprof handlers)
	return resolved, nil
}
