// Command eval regenerates the paper's evaluation (Figures 2 and 3)
// over the 79-benchmark corpus:
//
//	eval -fig all -limit 100000
//
// For each figure it prints the per-benchmark TSV rows, an ASCII
// log-log scatter with the diagonal, and the paper's summary
// statistics (benchmarks below the diagonal, redundancy percentages).
// Use -md to emit EXPERIMENTS.md-ready markdown instead of TSV.
//
// The campaign mode runs an arbitrary benchmark × engine grid through
// the parallel campaign runner and streams one JSON line per cell:
//
//	eval -fig campaign -engines dpor,lazy-dpor,pdfs:4 -bench coarse -json
//
// Streamed JSONL parses back via campaign.ReadJSONL; Figure rows can
// be rebuilt from a stream with figures.Fig2FromCells/Fig3FromCells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/figures"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", `figure to regenerate: "2", "3", "all" or "campaign"`)
		limit   = fs.Int("limit", 100000, "schedule limit per benchmark (paper: 100000)")
		steps   = fs.Int("maxsteps", 2000, "per-execution event bound")
		filter  = fs.String("bench", "", "only benchmarks whose name contains this substring")
		family  = fs.String("family", "", "only benchmarks of this family")
		md      = fs.Bool("md", false, "emit markdown tables instead of TSV")
		quiet   = fs.Bool("quiet", false, "suppress per-benchmark progress on stderr")
		scatter = fs.Bool("scatter", true, "print the ASCII log-log scatter")
		par     = fs.Int("parallel", -1, "cells explored concurrently (-1 = GOMAXPROCS, 1 = sequential)")
		engines = fs.String("engines", "dpor", "comma-separated engine specs for -fig campaign")
		asJSON  = fs.Bool("json", false, "stream campaign results as JSON lines (campaign mode)")
		timeout = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var selected []bench.Benchmark
	for _, b := range bench.All() {
		if *filter != "" && !strings.Contains(b.Name, *filter) {
			continue
		}
		if *family != "" && b.Family != *family {
			continue
		}
		selected = append(selected, b)
	}
	if len(selected) == 0 {
		fmt.Fprintln(stderr, "eval: no benchmarks selected")
		return 2
	}

	opt := figures.Options{ScheduleLimit: *limit, MaxSteps: *steps, Parallelism: *par, Ctx: ctx}
	if !*quiet {
		opt.Progress = stderr
	}

	if *fig == "campaign" {
		return runCampaign(ctx, selected, *engines, *limit, *steps, *par, *asJSON, stdout, stderr)
	}

	if *fig == "2" || *fig == "all" {
		rows, err := figures.Fig2(selected, opt)
		if err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 1
		}
		fmt.Fprintln(stdout, "== Figure 2: DPOR — #HBRs (x) vs #lazy HBRs (y) ==")
		if *md {
			fmt.Fprint(stdout, figures.MarkdownFig2(rows, *limit))
		} else {
			fmt.Fprint(stdout, figures.TSV2(rows))
			s := figures.SummarizeFig2(rows)
			fmt.Fprintf(stdout, "summary: %d/%d below diagonal; %d of %d unique HBRs (%.0f%%) redundant across them\n",
				s.BelowDiagonal, s.Benchmarks, s.RedundantBelow, s.HBRsBelow, s.RedundantPct())
		}
		if *scatter {
			fmt.Fprint(stdout, figures.Scatter(figures.Fig2Points(rows), 72, 24, "#HBRs", "#lazy HBRs"))
		}
		fmt.Fprintln(stdout)
	}

	if *fig == "3" || *fig == "all" {
		rows, err := figures.Fig3(selected, opt)
		if err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 1
		}
		fmt.Fprintln(stdout, "== Figure 3: HBR caching (x) vs lazy HBR caching (y) — #lazy HBRs ==")
		if *md {
			fmt.Fprint(stdout, figures.MarkdownFig3(rows, *limit))
		} else {
			fmt.Fprint(stdout, figures.TSV3(rows))
			s := figures.SummarizeFig3(rows)
			fmt.Fprintf(stdout, "summary: lazy caching ahead on %d/%d benchmarks (+%d lazy HBRs, +%.0f%%); regular ahead on %d (must be 0)\n",
				s.LazyWins, s.Benchmarks, s.ExtraLazyHBRs, s.ExtraPct(), s.RegularWins)
		}
		if *scatter {
			fmt.Fprint(stdout, figures.Scatter(figures.Fig3Points(rows), 72, 24, "HBR caching #lazy HBRs", "lazy caching #lazy HBRs"))
		}
	}
	return 0
}

// runCampaign executes the benchmark × engine grid and writes one
// result per cell: JSON lines with -json, a readable table otherwise.
func runCampaign(ctx context.Context, selected []bench.Benchmark, engineList string, limit, steps, par int, asJSON bool, stdout, stderr io.Writer) int {
	specs, err := campaign.ParseSpecs(engineList)
	if err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 2
	}
	names := make([]string, len(selected))
	for i, b := range selected {
		names[i] = b.Name
	}
	cells := campaign.Grid(names, specs, limit, steps)
	runner := campaign.Runner{Workers: par}
	if par < 0 {
		runner.Workers = 0 // GOMAXPROCS
	}
	if asJSON {
		runner.OnResult = campaign.JSONLWriter(stdout)
	} else {
		runner.OnResult = func(r campaign.CellResult) {
			if r.Err != "" {
				fmt.Fprintf(stdout, "%-24s %-18s ERROR %s\n", r.Cell.Bench, r.Cell.Engine, r.Err)
				return
			}
			suffix := ""
			if s := r.Result.Steal; s != nil {
				suffix = fmt.Sprintf(" steal[w=%d units=%d donated=%d escaped=%d stolen=%d]",
					s.Workers, s.Units, s.Donated, s.Escaped, s.Steals)
			}
			if r.Cancelled {
				if r.Result.Interrupted {
					suffix += " CANCELLED (partial)"
				} else {
					suffix += " CANCELLED (never started)"
				}
			}
			fmt.Fprintf(stdout, "%-24s %-18s schedules=%-7d hbrs=%-6d lazy=%-6d states=%-6d limit=%-5v %dms%s\n",
				r.Cell.Bench, r.Cell.Engine, r.Result.Schedules, r.Result.DistinctHBRs,
				r.Result.DistinctLazyHBRs, r.Result.DistinctStates, r.Result.HitLimit, r.ElapsedMS, suffix)
		}
	}
	start := time.Now()
	results, err := runner.Run(ctx, cells)
	if err != nil {
		fmt.Fprintln(stderr, "eval: campaign interrupted:", err)
		return 1
	}
	if err := campaign.FirstError(results); err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 1
	}
	fmt.Fprintf(stderr, "campaign: %d cells in %v\n", len(results), time.Since(start).Round(time.Millisecond))
	return 0
}
