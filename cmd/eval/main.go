// Command eval regenerates the paper's evaluation (Figures 2 and 3)
// over the 79-benchmark corpus:
//
//	eval -fig all -limit 100000
//
// For each figure it prints the per-benchmark TSV rows, an ASCII
// log-log scatter with the diagonal, and the paper's summary
// statistics (benchmarks below the diagonal, redundancy percentages).
// Use -md to emit EXPERIMENTS.md-ready markdown instead of TSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/figures"
)

func main() {
	var (
		fig     = flag.String("fig", "all", `figure to regenerate: "2", "3" or "all"`)
		limit   = flag.Int("limit", 100000, "schedule limit per benchmark (paper: 100000)")
		steps   = flag.Int("maxsteps", 2000, "per-execution event bound")
		filter  = flag.String("bench", "", "only benchmarks whose name contains this substring")
		family  = flag.String("family", "", "only benchmarks of this family")
		md      = flag.Bool("md", false, "emit markdown tables instead of TSV")
		quiet   = flag.Bool("quiet", false, "suppress per-benchmark progress on stderr")
		scatter = flag.Bool("scatter", true, "print the ASCII log-log scatter")
		par     = flag.Int("parallel", -1, "benchmarks explored concurrently (-1 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	var selected []bench.Benchmark
	for _, b := range bench.All() {
		if *filter != "" && !strings.Contains(b.Name, *filter) {
			continue
		}
		if *family != "" && b.Family != *family {
			continue
		}
		selected = append(selected, b)
	}
	if len(selected) == 0 {
		fmt.Fprintln(os.Stderr, "eval: no benchmarks selected")
		os.Exit(2)
	}

	opt := figures.Options{ScheduleLimit: *limit, MaxSteps: *steps, Parallelism: *par}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	if *fig == "2" || *fig == "all" {
		rows, err := figures.Fig2(selected, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			os.Exit(1)
		}
		fmt.Println("== Figure 2: DPOR — #HBRs (x) vs #lazy HBRs (y) ==")
		if *md {
			fmt.Print(figures.MarkdownFig2(rows, *limit))
		} else {
			fmt.Print(figures.TSV2(rows))
			s := figures.SummarizeFig2(rows)
			fmt.Printf("summary: %d/%d below diagonal; %d of %d unique HBRs (%.0f%%) redundant across them\n",
				s.BelowDiagonal, s.Benchmarks, s.RedundantBelow, s.HBRsBelow, s.RedundantPct())
		}
		if *scatter {
			fmt.Print(figures.Scatter(figures.Fig2Points(rows), 72, 24, "#HBRs", "#lazy HBRs"))
		}
		fmt.Println()
	}

	if *fig == "3" || *fig == "all" {
		rows, err := figures.Fig3(selected, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eval:", err)
			os.Exit(1)
		}
		fmt.Println("== Figure 3: HBR caching (x) vs lazy HBR caching (y) — #lazy HBRs ==")
		if *md {
			fmt.Print(figures.MarkdownFig3(rows, *limit))
		} else {
			fmt.Print(figures.TSV3(rows))
			s := figures.SummarizeFig3(rows)
			fmt.Printf("summary: lazy caching ahead on %d/%d benchmarks (+%d lazy HBRs, +%.0f%%); regular ahead on %d (must be 0)\n",
				s.LazyWins, s.Benchmarks, s.ExtraLazyHBRs, s.ExtraPct(), s.RegularWins)
		}
		if *scatter {
			fmt.Print(figures.Scatter(figures.Fig3Points(rows), 72, 24, "HBR caching #lazy HBRs", "lazy caching #lazy HBRs"))
		}
	}
}
