// Command eval regenerates the paper's evaluation (Figures 2 and 3)
// over the benchmark corpus (the paper's 79 plus the channel family):
//
//	eval -fig all -limit 100000
//
// For each figure it prints the per-benchmark TSV rows, an ASCII
// log-log scatter with the diagonal, and the paper's summary
// statistics (benchmarks below the diagonal, redundancy percentages).
// Use -md to emit EXPERIMENTS.md-ready markdown instead of TSV.
//
// The campaign mode runs an arbitrary benchmark × engine grid through
// the parallel campaign runner and streams one JSON line per cell:
//
//	eval -fig campaign -engines dpor,lazy-dpor,pdfs:4 -bench coarse -json
//
// A partial JSONL stream checkpoint-resumes a campaign: with
// `-resume cells.jsonl` every cell already present in the stream is
// skipped and only the remainder runs (append new output with `>>`).
// Streamed JSONL parses back via sct.ReadResults; Figure rows can be
// rebuilt from a stream with figures.Fig2FromCells/Fig3FromCells.
//
// The tool runs entirely on the public sct facade; engine specs are
// registry specs (see `sct.EngineNames`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/figures"
	"repro/sct"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", `figure to regenerate: "2", "3", "all", "campaign" or "firstbug"`)
		limit    = fs.Int("limit", 100000, "schedule limit per benchmark (paper: 100000)")
		steps    = fs.Int("maxsteps", 2000, "per-execution event bound")
		filter   = fs.String("bench", "", "only benchmarks whose name contains this substring")
		family   = fs.String("family", "", "only benchmarks of this family")
		md       = fs.Bool("md", false, "emit markdown tables instead of TSV")
		quiet    = fs.Bool("quiet", false, "suppress per-benchmark progress on stderr")
		scatter  = fs.Bool("scatter", true, "print the ASCII log-log scatter")
		par      = fs.Int("parallel", -1, "cells explored concurrently (-1 = GOMAXPROCS, 1 = sequential)")
		engines  = fs.String("engines", "", "comma-separated engine specs for campaign/firstbug mode (default: dpor; firstbug default: the registry's canonical grid)")
		asJSON   = fs.Bool("json", false, "stream campaign results as JSON lines (campaign/firstbug mode)")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
		resume   = fs.String("resume", "", "campaign/firstbug mode: skip cells already present in this JSONL result stream")
		reproDir = fs.String("repro", "", "firstbug mode: write one counterexample artifact per buggy cell into this directory")
		minimize = fs.Bool("minimize", false, "firstbug mode: ddmin-minimize artifacts before writing them")
		verify   = fs.Bool("verify", false, "firstbug mode: re-read each written artifact and verify its replay reproduces")
		stall    = fs.Duration("stall-timeout", 0, "campaign/firstbug mode: fence threads whose next operation stalls longer than this as diverged (0 = watchdog off)")
		cellTO   = fs.Duration("cell-timeout", 0, "campaign/firstbug mode: per-cell wall-clock deadline; late cells are quarantined, not fatal (0 = none)")
		retries  = fs.Int("retries", 0, "campaign/firstbug mode: extra attempts per cell on transient engine failures")
		progress = fs.Bool("progress", false, "campaign/firstbug mode: live status line on stderr (cells done/total, schedules/sec, slowest in-flight cell)")
		metrics  = fs.String("metrics", "", `serve expvar counters and net/http/pprof on this address (e.g. "localhost:6060"; ":0" picks a free port)`)
		hbEvery  = fs.Duration("heartbeat", 0, "campaign/firstbug mode with -json: mix per-cell heartbeat JSON lines into the result stream at this cadence")
		flight   = fs.String("flight", "", "campaign/firstbug mode: dump a flight-recorder artifact per failing cell into this directory (firstbug: defaults to the -repro directory)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *engines == "" {
		if *fig == "firstbug" {
			// The paper-style technique grid, derived from the shared
			// engine registry's canonical ordering.
			*engines = strings.Join(sct.DefaultGrid(), ",")
		} else {
			*engines = "dpor"
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var selected []bench.Benchmark
	for _, b := range bench.All() {
		if *filter != "" && !strings.Contains(b.Name, *filter) {
			continue
		}
		if *family != "" && b.Family != *family {
			continue
		}
		selected = append(selected, b)
	}
	// The hostile fault-injection programs are outside the pinned
	// corpus and join a grid only when explicitly named: campaign and
	// firstbug modes with a -bench filter that matches them. The
	// figure modes never see them.
	if (*fig == "campaign" || *fig == "firstbug") && *filter != "" {
		for _, b := range bench.Hostile() {
			if strings.Contains(b.Name, *filter) && (*family == "" || b.Family == *family) {
				selected = append(selected, b)
			}
		}
	}
	if len(selected) == 0 {
		fmt.Fprintln(stderr, "eval: no benchmarks selected")
		return 2
	}

	opt := figures.Options{ScheduleLimit: *limit, MaxSteps: *steps, Parallelism: *par, Ctx: ctx}
	if !*quiet {
		opt.Progress = stderr
	}

	if *resume != "" && *fig != "campaign" && *fig != "firstbug" {
		fmt.Fprintln(stderr, "eval: -resume applies only to -fig campaign/firstbug")
		return 2
	}
	if (*reproDir != "" || *minimize || *verify) && *fig != "firstbug" {
		fmt.Fprintln(stderr, "eval: -repro/-minimize/-verify apply only to -fig firstbug")
		return 2
	}
	if (*stall > 0 || *cellTO > 0 || *retries > 0) && *fig != "campaign" && *fig != "firstbug" {
		fmt.Fprintln(stderr, "eval: -stall-timeout/-cell-timeout/-retries apply only to -fig campaign/firstbug")
		return 2
	}
	if (*progress || *hbEvery > 0 || *flight != "") && *fig != "campaign" && *fig != "firstbug" {
		fmt.Fprintln(stderr, "eval: -progress/-heartbeat/-flight apply only to -fig campaign/firstbug")
		return 2
	}
	if *hbEvery > 0 && !*asJSON {
		fmt.Fprintln(stderr, "eval: -heartbeat mixes JSON heartbeat lines into the result stream; it requires -json")
		return 2
	}
	if *metrics != "" {
		addr, err := serveMetrics(*metrics)
		if err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 2
		}
		fmt.Fprintf(stderr, "metrics: expvar on http://%s/debug/vars, pprof on http://%s/debug/pprof/\n", addr, addr)
	}

	if *fig == "campaign" {
		return runCampaign(ctx, selected, *engines, campaignConfig{
			limit: *limit, steps: *steps, par: *par,
			asJSON: *asJSON, resume: *resume,
			stall: *stall, cellTO: *cellTO, retries: *retries,
			progress: *progress, hbEvery: *hbEvery, flight: *flight,
		}, stdout, stderr)
	}

	if *fig == "firstbug" {
		return runFirstBug(ctx, selected, *engines, firstBugConfig{
			limit: *limit, steps: *steps, par: *par,
			asJSON: *asJSON, md: *md, quiet: *quiet,
			resume:   *resume,
			reproDir: *reproDir, minimize: *minimize, verify: *verify,
			stall: *stall, cellTO: *cellTO, retries: *retries,
			progress: *progress, hbEvery: *hbEvery, flight: *flight,
		}, stdout, stderr)
	}

	if *fig == "2" || *fig == "all" {
		rows, err := figures.Fig2(selected, opt)
		if err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 1
		}
		fmt.Fprintln(stdout, "== Figure 2: DPOR — #HBRs (x) vs #lazy HBRs (y) ==")
		if *md {
			fmt.Fprint(stdout, figures.MarkdownFig2(rows, *limit))
		} else {
			fmt.Fprint(stdout, figures.TSV2(rows))
			s := figures.SummarizeFig2(rows)
			fmt.Fprintf(stdout, "summary: %d/%d below diagonal; %d of %d unique HBRs (%.0f%%) redundant across them\n",
				s.BelowDiagonal, s.Benchmarks, s.RedundantBelow, s.HBRsBelow, s.RedundantPct())
		}
		if *scatter {
			fmt.Fprint(stdout, figures.Scatter(figures.Fig2Points(rows), 72, 24, "#HBRs", "#lazy HBRs"))
		}
		fmt.Fprintln(stdout)
	}

	if *fig == "3" || *fig == "all" {
		rows, err := figures.Fig3(selected, opt)
		if err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 1
		}
		fmt.Fprintln(stdout, "== Figure 3: HBR caching (x) vs lazy HBR caching (y) — #lazy HBRs ==")
		if *md {
			fmt.Fprint(stdout, figures.MarkdownFig3(rows, *limit))
		} else {
			fmt.Fprint(stdout, figures.TSV3(rows))
			s := figures.SummarizeFig3(rows)
			fmt.Fprintf(stdout, "summary: lazy caching ahead on %d/%d benchmarks (+%d lazy HBRs, +%.0f%%); regular ahead on %d (must be 0)\n",
				s.LazyWins, s.Benchmarks, s.ExtraLazyHBRs, s.ExtraPct(), s.RegularWins)
		}
		if *scatter {
			fmt.Fprint(stdout, figures.Scatter(figures.Fig3Points(rows), 72, 24, "HBR caching #lazy HBRs", "lazy caching #lazy HBRs"))
		}
	}
	return 0
}

// buildCampaign parses the engine list and assembles the campaign
// over the benchmark × engine cell grid shared by the campaign and
// firstbug modes. containment carries the runner-level fault knobs;
// obs the observability ones (the returned renderer is non-nil when
// -progress is armed).
func buildCampaign(selected []bench.Benchmark, engineList string, par int, cont containment, obs observability, gridOpts ...sct.Option) (*sct.Campaign, *progressRenderer, error) {
	specs, err := sct.ParseSpecs(engineList)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, len(selected))
	for i, b := range selected {
		names[i] = b.Name
	}
	if cont.stall > 0 {
		gridOpts = append(gridOpts, sct.WithStallTimeout(cont.stall))
	}
	cells, err := sct.Grid(names, specs, gridOpts...)
	if err != nil {
		return nil, nil, err
	}
	// Workers <= 0 already means GOMAXPROCS.
	campOpts := []sct.Option{sct.WithWorkers(par)}
	if cont.cellTO > 0 {
		campOpts = append(campOpts, sct.WithCellTimeout(cont.cellTO))
	}
	if cont.retries > 0 {
		campOpts = append(campOpts, sct.WithRetries(cont.retries))
	}
	var rend *progressRenderer
	var hbFns []func(sct.Heartbeat)
	if obs.progress {
		rend = newProgressRenderer(obs.stderr, len(cells))
		hbFns = append(hbFns, rend.heartbeat)
	}
	if obs.hbEvery > 0 {
		hbFns = append(hbFns, sct.HeartbeatWriter(obs.stdout))
	}
	if len(hbFns) > 0 {
		fn := hbFns[0]
		if len(hbFns) > 1 {
			fns := hbFns
			fn = func(h sct.Heartbeat) {
				for _, f := range fns {
					f(h)
				}
			}
		}
		// -progress alone runs the default cadence (hbEvery is 0).
		campOpts = append(campOpts, sct.WithHeartbeat(obs.hbEvery, fn))
	}
	if obs.flight != "" {
		campOpts = append(campOpts, sct.WithFlightRecorder(obs.flight))
	}
	camp, err := sct.NewCampaign(cells, campOpts...)
	return camp, rend, err
}

// observability bundles the telemetry knobs the campaign and firstbug
// modes share: the live -progress renderer, the -heartbeat JSONL
// cadence and the -flight artifact directory.
type observability struct {
	progress       bool
	hbEvery        time.Duration
	flight         string
	stdout, stderr io.Writer
}

// aggregateRates renders a run's throughput: total schedules and
// events with their per-second rates over the campaign wall clock.
func aggregateRates(results []sct.CellResult, wall time.Duration) string {
	var sched, events int64
	for _, r := range results {
		sched += int64(r.Result.Schedules)
		events += r.Result.Events
	}
	secs := wall.Seconds()
	if secs <= 0 {
		return fmt.Sprintf("%d schedules, %d events", sched, events)
	}
	return fmt.Sprintf("%d schedules at %.0f/s, %d events at %.0f/s",
		sched, float64(sched)/secs, events, float64(events)/secs)
}

// containment bundles the fault-containment knobs the campaign and
// firstbug modes share.
type containment struct {
	stall, cellTO time.Duration
	retries       int
}

// campaignConfig bundles the campaign-mode knobs.
type campaignConfig struct {
	limit, steps, par int
	asJSON            bool
	resume            string
	stall, cellTO     time.Duration
	retries           int
	progress          bool
	hbEvery           time.Duration
	flight            string
}

// firstBugConfig bundles the firstbug-mode knobs.
type firstBugConfig struct {
	limit, steps, par int
	asJSON, md, quiet bool
	resume            string
	reproDir          string
	minimize, verify  bool
	stall, cellTO     time.Duration
	retries           int
	progress          bool
	hbEvery           time.Duration
	flight            string
}

// resumeFromFile feeds a JSONL checkpoint into the campaign and logs
// how many cells it satisfied.
func resumeFromFile(camp *sct.Campaign, path string, stderr io.Writer) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := camp.Resume(f)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(stderr, "resume: %d cells already done in %s, skipping\n", n, path)
	return n, nil
}

// runFirstBug runs every (benchmark, engine) cell in bug-finding mode
// (stop at first violation), streams schedules-to-first-bug per cell,
// renders the paper-style bug-finding table, and optionally writes a
// (minimized) counterexample artifact per buggy cell.
func runFirstBug(ctx context.Context, selected []bench.Benchmark, engineList string, cfg firstBugConfig, stdout, stderr io.Writer) int {
	// The flight recorder defaults to the artifact directory: a
	// quarantined cell's dump lands next to the counterexamples.
	flightDir := cfg.flight
	if flightDir == "" && cfg.reproDir != "" {
		flightDir = cfg.reproDir
	}
	camp, rend, err := buildCampaign(selected, engineList, cfg.par,
		containment{stall: cfg.stall, cellTO: cfg.cellTO, retries: cfg.retries},
		observability{progress: cfg.progress, hbEvery: cfg.hbEvery, flight: flightDir, stdout: stdout, stderr: stderr},
		sct.WithBounds(cfg.limit, cfg.steps), sct.StopAtFirstBug())
	if err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 2
	}
	resumed := 0
	if cfg.resume != "" {
		if resumed, err = resumeFromFile(camp, cfg.resume, stderr); err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 2
		}
		if rend != nil {
			rend.absorbResumed(resumed)
		}
	}
	emit := func(sct.CellResult) {}
	switch {
	case cfg.asJSON:
		emit = sct.JSONLWriter(stdout)
	case !cfg.quiet:
		line := func(format string, args ...any) { fmt.Fprintf(stderr, format+"\n", args...) }
		if rend != nil {
			line = rend.println
		}
		emit = func(r sct.CellResult) {
			bug := "no bug"
			if r.Result.FirstViolation != nil {
				bug = fmt.Sprintf("%s at schedule %d", r.Result.ViolationKind, r.Result.FirstBugSchedule)
			} else if r.Result.HitLimit {
				bug = "no bug within limit"
			}
			line("%-24s %-18s %s (%d schedules, %dms)",
				r.Cell.Bench, r.Cell.Engine, bug, r.Result.Schedules, r.ElapsedMS)
		}
	}
	// The resumed cells join the streamed ones for the table and the
	// artifact pass: only the new cells are emitted, but the table is
	// always the full grid.
	start := time.Now()
	results := camp.Resumed()
	var fresh []sct.CellResult
	for r := range camp.Results(ctx) {
		emit(r)
		recordCellMetrics(r)
		if rend != nil {
			rend.cellDone(r)
		}
		results = append(results, r)
		fresh = append(fresh, r)
	}
	if rend != nil {
		rend.finish()
	}
	if err := camp.Err(); err != nil {
		fmt.Fprintln(stderr, "eval: firstbug campaign interrupted:", err)
		return 1
	}
	wall := time.Since(start)
	note := ""
	if resumed > 0 {
		note = fmt.Sprintf(" (%d resumed)", resumed)
	}
	fmt.Fprintf(stderr, "firstbug: %d cells%s in %v (%s)\n",
		len(fresh), note, wall.Round(time.Millisecond), aggregateRates(fresh, wall))
	reportContainment(results, stderr)
	if err := sct.FirstError(results); err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 1
	}
	table := figures.FirstBugFromCells(results)
	if !cfg.asJSON {
		fmt.Fprintln(stdout, "== Bug finding: schedules to first bug ==")
		if cfg.md {
			fmt.Fprint(stdout, figures.MarkdownFirstBug(table, cfg.limit))
		} else {
			fmt.Fprint(stdout, figures.TSVFirstBug(table))
			fmt.Fprint(stdout, figures.SummaryFirstBug(table))
		}
	}
	if cfg.reproDir != "" {
		if code := writeArtifacts(results, cfg, stdout, stderr); code != 0 {
			return code
		}
	}
	return 0
}

// writeArtifacts captures (and optionally minimizes and verifies) one
// counterexample artifact per buggy cell.
func writeArtifacts(results []sct.CellResult, cfg firstBugConfig, stdout, stderr io.Writer) int {
	if err := os.MkdirAll(cfg.reproDir, 0o755); err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 1
	}
	sanitize := strings.NewReplacer(":", "-", "/", "-", "[", "", "]", "")
	wrote := 0
	for _, r := range results {
		if r.Result.FirstViolation == nil {
			continue
		}
		bm, ok := bench.ByName(r.Cell.Bench)
		if !ok {
			fmt.Fprintf(stderr, "eval: unknown benchmark %q in results\n", r.Cell.Bench)
			return 1
		}
		cx, err := sct.NewCounterexample(bm.Program, r.Result, r.Cell.MaxSteps)
		if err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 1
		}
		if cfg.minimize {
			stats, err := cx.Minimize()
			if err != nil {
				fmt.Fprintln(stderr, "eval:", err)
				return 1
			}
			fmt.Fprintf(stderr, "minimized %s/%s: %d→%d choices, %d→%d preemptions (%d replays)\n",
				r.Cell.Bench, r.Cell.Engine, stats.OriginalChoices, stats.MinChoices,
				stats.OriginalPreemptions, stats.MinPreemptions, stats.Replays)
		}
		path := filepath.Join(cfg.reproDir, fmt.Sprintf("%s__%s.json", r.Cell.Bench, sanitize.Replace(string(r.Cell.Engine))))
		if err := cx.Save(path); err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 1
		}
		if cfg.verify {
			back, err := sct.Load(path)
			if err != nil {
				fmt.Fprintln(stderr, "eval:", err)
				return 1
			}
			if _, err := back.Replay(bm.Program); err != nil {
				fmt.Fprintf(stderr, "eval: artifact %s failed verification: %v\n", path, err)
				return 1
			}
		}
		wrote++
	}
	verified := ""
	if cfg.verify {
		verified = ", all replay-verified"
	}
	// In -json mode stdout is a JSONL stream; the summary goes to
	// stderr like the other progress lines.
	dst := stdout
	if cfg.asJSON {
		dst = stderr
	}
	fmt.Fprintf(dst, "wrote %d counterexample artifacts to %s%s\n", wrote, cfg.reproDir, verified)
	return 0
}

// reportContainment summarises the campaign's survivability on
// stderr: cells that healed after retries, then the quarantine —
// cells whose failure was contained without taking down the run.
func reportContainment(results []sct.CellResult, stderr io.Writer) {
	healed := 0
	for _, r := range results {
		if r.Err == "" && !r.Cancelled && r.Attempts > 1 {
			healed++
		}
	}
	if healed > 0 {
		fmt.Fprintf(stderr, "healed: %d cells succeeded after retry\n", healed)
	}
	if q := sct.Quarantine(results); len(q) > 0 {
		fmt.Fprintf(stderr, "quarantine: %d/%d cells failed:\n", len(q), len(results))
		for _, r := range q {
			fmt.Fprintf(stderr, "  %-24s %-18s attempts=%d %s\n", r.Cell.Bench, r.Cell.Engine, r.Attempts, r.Err)
		}
	}
}

// runCampaign executes the benchmark × engine grid and writes one
// result per cell: JSON lines with -json, a readable table otherwise.
// With -resume, cells already present in the given JSONL stream are
// skipped.
func runCampaign(ctx context.Context, selected []bench.Benchmark, engineList string, cfg campaignConfig, stdout, stderr io.Writer) int {
	camp, rend, err := buildCampaign(selected, engineList, cfg.par,
		containment{stall: cfg.stall, cellTO: cfg.cellTO, retries: cfg.retries},
		observability{progress: cfg.progress, hbEvery: cfg.hbEvery, flight: cfg.flight, stdout: stdout, stderr: stderr},
		sct.WithBounds(cfg.limit, cfg.steps))
	if err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 2
	}
	resumed := 0
	if cfg.resume != "" {
		if resumed, err = resumeFromFile(camp, cfg.resume, stderr); err != nil {
			fmt.Fprintln(stderr, "eval:", err)
			return 2
		}
		if rend != nil {
			rend.absorbResumed(resumed)
		}
	}
	emit := func(r sct.CellResult) {
		if r.Err != "" {
			fmt.Fprintf(stdout, "%-24s %-18s ERROR %s\n", r.Cell.Bench, r.Cell.Engine, r.Err)
			return
		}
		suffix := ""
		if s := r.Result.Steal; s != nil {
			suffix = fmt.Sprintf(" steal[w=%d units=%d donated=%d escaped=%d stolen=%d]",
				s.Workers, s.Units, s.Donated, s.Escaped, s.Steals)
		}
		if r.Cancelled {
			if r.Result.Interrupted {
				suffix += " CANCELLED (partial)"
			} else {
				suffix += " CANCELLED (never started)"
			}
		}
		fmt.Fprintf(stdout, "%-24s %-18s schedules=%-7d hbrs=%-6d lazy=%-6d states=%-6d limit=%-5v %dms%s\n",
			r.Cell.Bench, r.Cell.Engine, r.Result.Schedules, r.Result.DistinctHBRs,
			r.Result.DistinctLazyHBRs, r.Result.DistinctStates, r.Result.HitLimit, r.ElapsedMS, suffix)
	}
	if cfg.asJSON {
		emit = sct.JSONLWriter(stdout)
	}
	start := time.Now()
	ran := 0
	var results []sct.CellResult
	for r := range camp.Results(ctx) {
		emit(r)
		recordCellMetrics(r)
		if rend != nil {
			rend.cellDone(r)
		}
		results = append(results, r)
		ran++
	}
	if rend != nil {
		rend.finish()
	}
	if err := camp.Err(); err != nil {
		fmt.Fprintln(stderr, "eval: campaign interrupted:", err)
		return 1
	}
	reportContainment(results, stderr)
	if err := sct.FirstError(results); err != nil {
		fmt.Fprintln(stderr, "eval:", err)
		return 1
	}
	note := ""
	if resumed > 0 {
		note = fmt.Sprintf(" (%d resumed)", resumed)
	}
	wall := time.Since(start)
	fmt.Fprintf(stderr, "campaign: %d cells%s in %v (%s)\n",
		ran, note, wall.Round(time.Millisecond), aggregateRates(results, wall))
	return 0
}
