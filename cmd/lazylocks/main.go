// Command lazylocks is the single-benchmark front door of the
// systematic concurrency tester (named after the paper's tool):
//
//	lazylocks -list
//	lazylocks -bench philosophers-3 -engine dpor
//	lazylocks -bench counter-racy-2x2 -engine lazy-hbr-caching -limit 100000
//
// It explores the benchmark's schedule space with the chosen engine,
// prints the paper's headline counters (#schedules, #HBRs, #lazy HBRs,
// #states) and, when a safety violation is found, replays and prints
// the violating schedule.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/trace"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list benchmarks and exit")
		name   = flag.String("bench", "", "benchmark name (see -list)")
		engine = flag.String("engine", "dpor", fmt.Sprintf("engine: one of %v", core.EngineNames()))
		limit  = flag.Int("limit", 100000, "schedule limit (0 = unlimited)")
		steps  = flag.Int("maxsteps", 2000, "per-execution event bound")
		printT = flag.Bool("trace", true, "print the violating trace when one is found")
		save   = flag.String("save", "", "write the violating schedule to this JSON file")
		replay = flag.String("replay", "", "replay a schedule JSON file instead of exploring")
	)
	flag.Parse()

	if *list {
		for _, b := range bench.All() {
			fmt.Printf("%2d %-26s %-16s %s\n", b.ID, b.Name, b.Family, b.Notes)
		}
		return
	}
	b, ok := bench.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "lazylocks: unknown benchmark %q (use -list)\n", *name)
		os.Exit(2)
	}
	if *replay != "" {
		replayFile(b, *replay, *steps)
		return
	}
	rep, err := core.Check(b.Program, core.EngineName(*engine), explore.Options{
		ScheduleLimit: *limit,
		MaxSteps:      *steps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lazylocks:", err)
		os.Exit(1)
	}
	r := rep.Result
	fmt.Printf("benchmark : %s (id %d, %s)\n", b.Name, b.ID, b.Family)
	fmt.Printf("engine    : %s\n", r.Engine)
	fmt.Printf("schedules : %d (terminals %d, pruned %d, truncated %d)%s\n",
		r.Schedules, r.Terminals, r.Pruned, r.Truncated, hitLimitNote(r.HitLimit))
	fmt.Printf("classes   : #HBRs=%d  #lazy HBRs=%d  #states=%d\n",
		r.DistinctHBRs, r.DistinctLazyHBRs, r.DistinctStates)
	fmt.Printf("safety    : deadlocks=%d assert-failures=%d lock-errors=%d races=%d\n",
		r.Deadlocks, r.AssertFailures, r.LockErrors, r.Races)
	if rep.Violation != nil {
		fmt.Printf("violation : %s\n", rep.Violation)
		if *save != "" {
			rec := trace.FromOutcome(b.Program, rep.Violation.Outcome, rep.Violation.Kind)
			f, err := os.Create(*save)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lazylocks:", err)
				os.Exit(1)
			}
			if err := rec.Write(f); err != nil {
				fmt.Fprintln(os.Stderr, "lazylocks:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("saved     : %s\n", *save)
		}
		if *printT {
			fmt.Println("trace:")
			for i, ev := range rep.Violation.Outcome.Trace {
				fmt.Printf("  %3d %v\n", i, ev)
			}
			for _, f := range rep.Violation.Outcome.Failures {
				fmt.Printf("  failure: %v\n", f)
			}
			for _, race := range rep.Violation.Outcome.Races {
				fmt.Printf("  race: %v\n", race)
			}
			if rep.Violation.Outcome.Deadlock {
				fmt.Println("  deadlock: no enabled thread at end of trace")
			}
		}
		os.Exit(3)
	}
}

// replayFile loads a recorded schedule and re-executes it against the
// benchmark, printing the reproduced trace.
func replayFile(b bench.Benchmark, path string, steps int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lazylocks:", err)
		os.Exit(1)
	}
	defer f.Close()
	rec, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lazylocks:", err)
		os.Exit(1)
	}
	out, err := rec.Replay(b.Program, exec.Options{MaxSteps: steps})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lazylocks:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d events of %s (%s)\n", len(out.Trace), b.Name, rec.Kind)
	for i, ev := range out.Trace {
		fmt.Printf("  %3d %v\n", i, ev)
	}
	if out.Deadlock {
		fmt.Println("  deadlock reproduced")
	}
	for _, fl := range out.Failures {
		fmt.Printf("  failure: %v\n", fl)
	}
	for _, r := range out.Races {
		fmt.Printf("  race: %v\n", r)
	}
}

func hitLimitNote(hit bool) string {
	if hit {
		return "  [schedule limit hit: space not exhausted]"
	}
	return ""
}
