// Command lazylocks is the single-benchmark front door of the
// systematic concurrency tester (named after the paper's tool):
//
//	lazylocks -list
//	lazylocks -bench philosophers-3 -engine dpor
//	lazylocks -bench counter-racy-2x2 -engine lazy-hbr-caching -limit 100000
//
// It explores the benchmark's schedule space with the chosen engine
// (any registry spec, e.g. "dpor+sleep", "pb:2:lazy", "pdpor:4"),
// prints the paper's headline counters (#schedules, #HBRs, #lazy
// HBRs, #states) and, when a safety violation is found, replays and
// prints the violating schedule.
//
// The repro workflow: -save writes the violation as a portable
// counterexample artifact (-minimize ddmin-shrinks it first), and
// -replay re-executes a saved artifact — or a bare internal/trace
// schedule file — verifying it reproduces identically.
//
// The tool runs entirely on the public sct facade.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/trace"
	"repro/sct"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code
// (0 clean, 1 tool error, 2 usage, 3 violation found).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lazylocks", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list benchmarks and exit")
		name     = fs.String("bench", "", "benchmark name (see -list)")
		engine   = fs.String("engine", "dpor", fmt.Sprintf("engine spec: one of %v (plus :args)", sct.EngineNames()))
		limit    = fs.Int("limit", 100000, "schedule limit (0 = unlimited)")
		steps    = fs.Int("maxsteps", 2000, "per-execution event bound")
		firstBug = fs.Bool("firstbug", false, "stop at the first violation and report schedules-to-first-bug")
		printT   = fs.Bool("trace", true, "print the violating trace when one is found")
		save     = fs.String("save", "", "write the violation as a counterexample artifact to this JSON file")
		minimize = fs.Bool("minimize", false, "ddmin-minimize the artifact before saving")
		replay   = fs.String("replay", "", "replay a counterexample artifact (or bare schedule file) instead of exploring")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, b := range bench.All() {
			fmt.Fprintf(stdout, "%2d %-26s %-16s %s\n", b.ID, b.Name, b.Family, b.Notes)
		}
		return 0
	}
	b, ok := bench.ByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "lazylocks: unknown benchmark %q (use -list)\n", *name)
		return 2
	}
	if *replay != "" {
		return replayFile(b, *replay, *steps, stdout, stderr)
	}
	opts := []sct.Option{sct.WithBounds(*limit, *steps)}
	if *firstBug {
		opts = append(opts, sct.StopAtFirstBug())
	}
	rep, err := sct.Run(context.Background(), b.Program, *engine, opts...)
	if err != nil {
		fmt.Fprintln(stderr, "lazylocks:", err)
		return 1
	}
	r := rep.Result
	fmt.Fprintf(stdout, "benchmark : %s (id %d, %s)\n", b.Name, b.ID, b.Family)
	fmt.Fprintf(stdout, "engine    : %s\n", r.Engine)
	fmt.Fprintf(stdout, "schedules : %d (terminals %d, pruned %d, truncated %d)%s\n",
		r.Schedules, r.Terminals, r.Pruned, r.Truncated, hitLimitNote(r.HitLimit))
	fmt.Fprintf(stdout, "classes   : #HBRs=%d  #lazy HBRs=%d  #states=%d\n",
		r.DistinctHBRs, r.DistinctLazyHBRs, r.DistinctStates)
	fmt.Fprintf(stdout, "safety    : deadlocks=%d assert-failures=%d lock-errors=%d races=%d\n",
		r.Deadlocks, r.AssertFailures, r.LockErrors, r.Races)
	if rep.Violation == nil {
		return 0
	}
	fmt.Fprintf(stdout, "violation : %s (schedule %d)\n", rep.Violation, r.FirstBugSchedule)
	if *save != "" {
		cx, err := rep.Counterexample()
		if err != nil {
			fmt.Fprintln(stderr, "lazylocks:", err)
			return 1
		}
		if *minimize {
			stats, err := cx.Minimize()
			if err != nil {
				fmt.Fprintln(stderr, "lazylocks:", err)
				return 1
			}
			fmt.Fprintf(stdout, "minimized : %d→%d choices, %d→%d preemptions (%d replays)\n",
				stats.OriginalChoices, stats.MinChoices,
				stats.OriginalPreemptions, stats.MinPreemptions, stats.Replays)
		}
		if err := cx.Save(*save); err != nil {
			fmt.Fprintln(stderr, "lazylocks:", err)
			return 1
		}
		fmt.Fprintf(stdout, "saved     : %s\n", *save)
	}
	if *printT {
		fmt.Fprintln(stdout, "trace:")
		for i, ev := range rep.Violation.Outcome.Trace {
			fmt.Fprintf(stdout, "  %3d %v\n", i, ev)
		}
		for _, f := range rep.Violation.Outcome.Failures {
			fmt.Fprintf(stdout, "  failure: %v\n", f)
		}
		for _, race := range rep.Violation.Outcome.Races {
			fmt.Fprintf(stdout, "  race: %v\n", race)
		}
		if rep.Violation.Outcome.Deadlock {
			fmt.Fprintln(stdout, "  deadlock: no enabled thread at end of trace")
		}
	}
	return 3
}

// replayFile loads a counterexample artifact (preferred) or a bare
// trace schedule and re-executes it against the benchmark, verifying
// the reproduction and printing the reproduced trace.
func replayFile(b bench.Benchmark, path string, steps int, stdout, stderr io.Writer) int {
	var out sct.Outcome
	var kind string
	if cx, err := sct.Load(path); err == nil {
		out, err = cx.Replay(b.Program)
		if err != nil {
			fmt.Fprintln(stderr, "lazylocks:", err)
			return 1
		}
		kind = cx.Kind()
		fmt.Fprintf(stdout, "artifact  : %s\n", cx)
	} else {
		f, ferr := os.Open(path)
		if ferr != nil {
			fmt.Fprintln(stderr, "lazylocks:", ferr)
			return 1
		}
		rec, rerr := trace.Read(f)
		f.Close()
		if rerr != nil {
			fmt.Fprintf(stderr, "lazylocks: %s is neither an artifact (%v) nor a schedule (%v)\n", path, err, rerr)
			return 1
		}
		out, rerr = rec.Replay(b.Program, exec.Options{MaxSteps: steps})
		if rerr != nil {
			fmt.Fprintln(stderr, "lazylocks:", rerr)
			return 1
		}
		kind = rec.Kind
	}
	fmt.Fprintf(stdout, "replayed %d events of %s (%s)\n", len(out.Trace), b.Name, kind)
	for i, ev := range out.Trace {
		fmt.Fprintf(stdout, "  %3d %v\n", i, ev)
	}
	if out.Deadlock {
		fmt.Fprintln(stdout, "  deadlock reproduced")
	}
	for _, fl := range out.Failures {
		fmt.Fprintf(stdout, "  failure: %v\n", fl)
	}
	for _, r := range out.Races {
		fmt.Fprintf(stdout, "  race: %v\n", r)
	}
	return 0
}

func hitLimitNote(hit bool) string {
	if hit {
		return "  [schedule limit hit: space not exhausted]"
	}
	return ""
}
