package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/sct"
)

// TestListAndUnknownBench covers the front-door paths.
func TestListAndUnknownBench(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "philosophers-3") {
		t.Errorf("-list output missing benchmarks:\n%s", stdout.String())
	}
	if code := run([]string{"-bench", "no-such"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown benchmark exited %d, want 2", code)
	}
	if code := run([]string{"-bench", "philosophers-3", "-engine", "bogus"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown engine exited %d, want 1", code)
	}
}

// TestCleanBenchmarkExitsZero: a violation-free exploration reports
// its counters and exits 0.
func TestCleanBenchmarkExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "philosophers-ordered-2", "-engine", "dpor", "-maxsteps", "500"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean benchmark exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"benchmark : philosophers-ordered-2", "schedules :", "#lazy HBRs="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFindSaveMinimizeReplay drives the repro workflow end-to-end
// through the CLI: find the deadlock in first-bug mode, save a
// minimized artifact, read it back and replay it.
func TestFindSaveMinimizeReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "phil3.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-bench", "philosophers-3", "-engine", "dpor",
		"-firstbug", "-maxsteps", "500",
		"-save", path, "-minimize", "-trace=false",
	}, &stdout, &stderr)
	if code != 3 {
		t.Fatalf("violating benchmark exited %d, want 3\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"violation : deadlock", "minimized :", "saved     :"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	cx, err := sct.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cx.Minimized() || cx.Kind() != "deadlock" || cx.Engine() != "dpor" {
		t.Errorf("saved artifact wrong: %v", cx)
	}

	stdout.Reset()
	code = run([]string{"-bench", "philosophers-3", "-replay", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("replay exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "deadlock reproduced") {
		t.Errorf("replay output missing reproduction:\n%s", stdout.String())
	}

	// Replaying against the wrong benchmark must fail loudly.
	if code := run([]string{"-bench", "philosophers-2", "-replay", path}, &stdout, &stderr); code != 1 {
		t.Errorf("cross-program replay exited %d, want 1", code)
	}
}
