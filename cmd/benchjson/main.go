// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark runs can be checked
// in as machine-readable perf-trajectory artifacts (BENCH_*.json) and
// diffed across PRs.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | go run ./cmd/benchjson > BENCH.json
//
// Standard columns (ns/op, B/op, allocs/op) get dedicated fields; any
// extra b.ReportMetric columns land in the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Runtime    Runtime     `json:"runtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Runtime describes the environment the report was produced on, so a
// perf-trajectory diff can tell a real regression from a toolchain or
// machine change. The GC pause quantiles come from a small
// calibration probe run in this process (same machine and toolchain
// as the benchmarks piped in) via runtime/metrics.
type Runtime struct {
	GoVersion    string  `json:"go_version"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	GCPauseP50us float64 `json:"gc_pause_p50_us,omitempty"`
	GCPauseP99us float64 `json:"gc_pause_p99_us,omitempty"`
}

// captureRuntime samples the environment: toolchain identity plus GC
// pause quantiles from the /gc/pauses:seconds histogram after a short
// allocation probe forces a few collections.
func captureRuntime() Runtime {
	rt := Runtime{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	garbage := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		garbage = append(garbage, make([]byte, 1<<12))
	}
	_ = garbage
	runtime.GC()
	runtime.GC()
	samples := []metrics.Sample{{Name: "/gc/pauses:seconds"}}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[0].Value.Float64Histogram()
		rt.GCPauseP50us = quantileUS(h, 0.50)
		rt.GCPauseP99us = quantileUS(h, 0.99)
	}
	return rt
}

// quantileUS returns the q-quantile of a runtime/metrics histogram in
// microseconds, using each bucket's upper bound (the conservative
// side; the histogram only stores bucket counts).
func quantileUS(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				hi = h.Buckets[i]
			}
			return hi * 1e6
		}
	}
	return h.Buckets[len(h.Buckets)-1] * 1e6
}

func main() {
	rep := Report{Runtime: captureRuntime()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   3 allocs/op   1.5 extra/metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}
