// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so benchmark runs can be checked
// in as machine-readable perf-trajectory artifacts (BENCH_*.json) and
// diffed across PRs.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | go run ./cmd/benchjson > BENCH.json
//
// Standard columns (ns/op, B/op, allocs/op) get dedicated fields; any
// extra b.ReportMetric columns land in the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   3 allocs/op   1.5 extra/metric
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}
