package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkTracker-8   \t  83036\t     19578 ns/op\t    8096 B/op\t     507 allocs/op\t        64.00 events/op")
	if !ok {
		t.Fatal("line must parse")
	}
	if b.Name != "BenchmarkTracker" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", b.Name)
	}
	if b.Iterations != 83036 || b.NsPerOp != 19578 || b.BytesPerOp != 8096 || b.AllocsPerOp != 507 {
		t.Errorf("standard columns misparsed: %+v", b)
	}
	if b.Metrics["events/op"] != 64 {
		t.Errorf("custom metric misparsed: %+v", b.Metrics)
	}
}

func TestParseLineSubBenchmark(t *testing.T) {
	b, ok := parseLine("BenchmarkSnapshotVsReplay/snapshot-4 \t 4092\t 289416 ns/op\t 3.571 events/schedule")
	if !ok {
		t.Fatal("line must parse")
	}
	if b.Name != "BenchmarkSnapshotVsReplay/snapshot" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Metrics["events/schedule"] != 3.571 {
		t.Errorf("metric = %v", b.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{"", "Benchmark", "BenchmarkX notanumber 5 ns/op", "PASS"} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q must not parse", line)
		}
	}
}
