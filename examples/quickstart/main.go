// Quickstart: write a small concurrent Go program against the public
// sct facade, explore every schedule with DPOR, and let the checker
// find the classic lost-update bug that ordinary testing almost never
// hits.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sct"
)

func main() {
	// Two workers increment a shared counter without locking; the
	// main thread joins them and asserts the count. Each increment
	// is a read-modify-write, so one update can be lost — but only
	// under specific interleavings.
	p := sct.NewProgram("quickstart-counter")
	counter := p.Var("counter")

	var workers []sct.ThreadRef
	// Thread 0 (declared first) is the initial thread. Its body runs
	// at exploration time, so it may capture the workers slice that
	// is filled in just below.
	p.Thread(func(g *sct.G) {
		for _, w := range workers {
			g.Spawn(w)
		}
		for _, w := range workers {
			g.Join(w)
		}
		g.Assert(g.Read(counter) == int64(len(workers)))
	})
	for i := 0; i < 2; i++ {
		workers = append(workers, p.Thread(func(g *sct.G) {
			v := g.Read(counter)
			g.Write(counter, v+1)
		}))
	}

	report, err := sct.Run(context.Background(), p, "dpor", sct.WithScheduleLimit(10000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d schedules: %d HBRs, %d lazy HBRs, %d distinct final states\n",
		report.Schedules, report.DistinctHBRs, report.DistinctLazyHBRs, report.DistinctStates)
	if report.Violation == nil {
		fmt.Println("no violation found (unexpected for this program!)")
		return
	}
	fmt.Printf("found: %s — the interleaving that triggers it:\n", report.Violation.Kind)
	for i, ev := range report.Violation.Outcome.Trace {
		fmt.Printf("  %2d  %v\n", i, ev)
	}
	fmt.Println("save it with report.Counterexample() and replay it any time with sct.Load.")
}
