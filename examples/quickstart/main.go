// Quickstart: write a small concurrent Go program against the harness,
// explore every schedule with DPOR, and let the checker find the
// classic lost-update bug that ordinary testing almost never hits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/goharness"
)

func main() {
	// Two workers increment a shared counter without locking; the
	// main thread joins them and asserts the count. Each increment
	// is a read-modify-write, so one update can be lost — but only
	// under specific interleavings.
	p := goharness.New("quickstart-counter")
	counter := p.Var("counter")

	var workers []goharness.ThreadRef
	// Thread 0 (declared first) is the initial thread. Its body runs
	// at exploration time, so it may capture the workers slice that
	// is filled in just below.
	p.Thread(func(g *goharness.G) {
		for _, w := range workers {
			g.Spawn(w)
		}
		for _, w := range workers {
			g.Join(w)
		}
		g.Assert(g.Read(counter) == int64(len(workers)))
	})
	for i := 0; i < 2; i++ {
		workers = append(workers, p.Thread(func(g *goharness.G) {
			v := g.Read(counter)
			g.Write(counter, v+1)
		}))
	}

	report, err := core.Check(p, core.EngineDPOR, explore.Options{ScheduleLimit: 10000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d schedules: %d HBRs, %d lazy HBRs, %d distinct final states\n",
		report.Schedules, report.DistinctHBRs, report.DistinctLazyHBRs, report.DistinctStates)
	if report.Violation == nil {
		fmt.Println("no violation found (unexpected for this program!)")
		return
	}
	fmt.Printf("found: %s — the interleaving that triggers it:\n", report.Violation.Kind)
	for i, ev := range report.Violation.Outcome.Trace {
		fmt.Printf("  %2d  %v\n", i, ev)
	}
	fmt.Println("replay it any time with exec.Replay and the recorded choices.")
}
