// Bankaccount: the race detector (sync-only happens-before) flags the
// unlocked deposit protocol and the exploration finds the interleaving
// where money is actually lost; adding the lock removes both, which
// systematic exploration then *proves* over the whole schedule space.
//
//	go run ./examples/bankaccount
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sct"
)

// account builds n depositors adding 10 each to one balance; locked
// selects whether deposits take the account mutex. The main thread
// audits the final balance.
func account(n int, locked bool) *sct.Program {
	p := sct.NewProgram(fmt.Sprintf("bank(n=%d,locked=%v)", n, locked))
	balance := p.Var("balance")
	mu := p.Mutex("mu")

	var depositors []sct.ThreadRef
	p.Thread(func(g *sct.G) {
		for _, d := range depositors {
			g.Spawn(d)
		}
		for _, d := range depositors {
			g.Join(d)
		}
		g.Assert(g.Read(balance) == int64(10*n))
	})
	for i := 0; i < n; i++ {
		depositors = append(depositors, p.Thread(func(g *sct.G) {
			if locked {
				g.Lock(mu)
			}
			g.Write(balance, g.Read(balance)+10)
			if locked {
				g.Unlock(mu)
			}
		}))
	}
	return p
}

func main() {
	ctx := context.Background()
	racy, err := sct.Run(ctx, account(2, false), "dpor", sct.WithScheduleLimit(100000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unlocked: schedules=%d races=%d assert-failures=%d states=%d\n",
		racy.Schedules, racy.Races, racy.AssertFailures, racy.DistinctStates)
	if racy.Violation != nil {
		fmt.Printf("first violation: %s\n", racy.Violation)
		for _, r := range racy.Violation.Outcome.Races {
			fmt.Printf("  %v\n", r)
		}
	}

	safe, err := sct.Run(ctx, account(2, true), "dpor", sct.WithScheduleLimit(100000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocked:   schedules=%d races=%d assert-failures=%d states=%d",
		safe.Schedules, safe.Races, safe.AssertFailures, safe.DistinctStates)
	if !safe.HitLimit && safe.Violation == nil {
		fmt.Println(" — verified over the full schedule space")
	} else {
		fmt.Println()
	}
}
