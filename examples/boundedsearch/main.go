// Boundedsearch: CHESS-style bounded exploration in practice. Most
// concurrency bugs need very few preemptions (Musuvathi & Qadeer), so
// iterating the preemption bound finds them after a tiny fraction of
// the exhaustive work — and composing the bound with the paper's lazy
// HBR caching shrinks each round further.
//
//	go run ./examples/boundedsearch
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sct"
)

// workPool builds a properly-locked job pool with an atomicity bug:
// the worker publishes done=1 in its first critical section but only
// writes the final result in a second one. A reader scheduled between
// the two critical sections observes done=1 with the provisional
// result — an interleaving that requires preempting the worker between
// its unlocks, i.e. exactly one preemption. There are no data races:
// every access is lock-protected, so only systematic exploration (not
// a race detector) can find this.
func workPool(extraWorkers int) *sct.Program {
	p := sct.NewProgram("workpool").AutoStart()
	mu := p.Mutex("mu")
	result := p.Var("result")
	done := p.Var("done")
	p.Thread(func(g *sct.G) { // the buggy worker
		g.Lock(mu)
		g.Write(result, 21) // provisional
		g.Write(done, 1)    // published too early: the bug
		g.Unlock(mu)
		g.Lock(mu)
		g.Write(result, 42) // final
		g.Unlock(mu)
	})
	p.Thread(func(g *sct.G) { // auditor
		g.Lock(mu)
		d := g.Read(done)
		r := g.Read(result)
		g.Unlock(mu)
		if d == 1 {
			g.Assert(r == 42)
		}
	})
	// Bystander workers enlarge the schedule space without touching
	// the bug, making the exhaustive-vs-bounded contrast visible.
	scratch := p.Var("scratch")
	for i := 0; i < extraWorkers; i++ {
		p.Thread(func(g *sct.G) {
			g.Lock(mu)
			g.Write(scratch, g.Read(scratch)+1)
			g.Unlock(mu)
		})
	}
	return p
}

func main() {
	fmt.Println("engine                      schedules  violation")
	for _, spec := range []string{
		"pb:0", "pb:1", "chess-pb:4",
		"pb:1:lazy",
		"dpor", "lazy-dpor", "dfs",
	} {
		rep, err := sct.Run(context.Background(), workPool(3), spec, sct.WithScheduleLimit(1000000))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "none found"
		if rep.Violation != nil {
			verdict = rep.Violation.String()
		}
		fmt.Printf("%-26s %10d  %s\n", spec, rep.Schedules, verdict)
	}
	fmt.Println("\nNo schedule has a data race (every access is locked); the bug is an")
	fmt.Println("atomicity violation needing exactly one preemption. pb:0 cannot see it,")
	fmt.Println("pb:1 finds it almost immediately, exhaustive DFS pays the whole space.")
}
