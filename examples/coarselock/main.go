// Coarselock: the paper's headline effect, live. Threads update
// thread-private data inside one global critical section — the
// coarse-grained style the paper's introduction motivates. Regular POR
// must explore every lock interleaving; the lazy happens-before
// relation sees through the mutex and collapses them all.
//
//	go run ./examples/coarselock
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sct"
)

// coarse builds n threads that each increment a private cell k times
// inside the same global lock.
func coarse(n, k int) *sct.Program {
	p := sct.NewProgram(fmt.Sprintf("coarselock-%dx%d", n, k)).AutoStart()
	g0 := p.Mutex("global")
	cells := make([]sct.Var, n)
	for i := range cells {
		cells[i] = p.Var(fmt.Sprintf("cell%d", i))
	}
	for i := 0; i < n; i++ {
		i := i
		p.Thread(func(g *sct.G) {
			g.Lock(g0)
			for j := 0; j < k; j++ {
				g.Write(cells[i], g.Read(cells[i])+1)
			}
			g.Unlock(g0)
		})
	}
	return p
}

func main() {
	prog := coarse(4, 2)
	engines := []string{
		"dfs",
		"dpor",
		"hbr-caching",
		"lazy-hbr-caching",
		"lazy-dpor",
	}
	fmt.Printf("%-18s %10s %8s %10s %8s\n", "engine", "schedules", "#HBRs", "#lazyHBRs", "#states")
	for _, e := range engines {
		rep, err := sct.Run(context.Background(), prog, e, sct.WithScheduleLimit(200000))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10d %8d %10d %8d\n",
			e, rep.Schedules, rep.DistinctHBRs, rep.DistinctLazyHBRs, rep.DistinctStates)
	}
	fmt.Println("\nEvery engine agrees on one distinct final state; the lazy relation")
	fmt.Println("recognises all 4! = 24 lock orders as a single equivalence class.")
}
