// Philosophers: systematic exploration proves a deadlock reachable in
// the naive dining-philosophers locking protocol, prints the exact
// interleaving, and then verifies that the lock-ordering fix removes
// every deadlock from the entire schedule space.
//
//	go run ./examples/philosophers
package main

import (
	"context"
	"fmt"
	"log"

	"repro/sct"
)

// table builds the dining table: n philosophers, n fork mutexes. With
// ordered=false every philosopher grabs left then right (circular wait
// possible); with ordered=true the last philosopher grabs right then
// left, breaking the cycle.
func table(n int, ordered bool) *sct.Program {
	name := fmt.Sprintf("philosophers-%d(ordered=%v)", n, ordered)
	p := sct.NewProgram(name).AutoStart()
	forks := make([]sct.Mutex, n)
	for i := range forks {
		forks[i] = p.Mutex(fmt.Sprintf("fork%d", i))
	}
	meals := p.Var("meals")
	for i := 0; i < n; i++ {
		i := i
		p.Thread(func(g *sct.G) {
			first, second := forks[i], forks[(i+1)%n]
			if ordered && i == n-1 {
				first, second = second, first
			}
			g.Lock(first)
			g.Lock(second)
			g.Write(meals, g.Read(meals)+1)
			g.Unlock(second)
			g.Unlock(first)
		})
	}
	return p
}

func main() {
	const n = 3
	ctx := context.Background()

	naive, err := sct.Run(ctx, table(n, false), "dpor", sct.WithScheduleLimit(100000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive protocol: %d schedules explored, %d deadlocked\n", naive.Schedules, naive.Deadlocks)
	if naive.Violation != nil {
		fmt.Printf("reachable %s; the interleaving:\n", naive.Violation.Kind)
		for i, ev := range naive.Violation.Outcome.Trace {
			fmt.Printf("  %2d  %v\n", i, ev)
		}
	}

	fixed, err := sct.Run(ctx, table(n, true), "dpor", sct.WithScheduleLimit(100000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nordered protocol: %d schedules explored, %d deadlocked", fixed.Schedules, fixed.Deadlocks)
	if fixed.HitLimit {
		fmt.Println(" (schedule limit hit: not a proof)")
	} else {
		fmt.Println(" — the whole schedule space is deadlock-free")
	}
}
