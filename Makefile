# Developer entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race ci bench bench-smoke bench-json fuzz-smoke repro-smoke chaos-smoke chan-smoke obs-smoke api-check fmt vet eval

build:
	$(GO) build ./...

# Fast suite — what the CI test job runs; finishes in seconds.
test:
	$(GO) test -short ./...

# Full suite, including the slow differential and theorem sweeps.
test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Everything CI gates on, in CI order.
ci: build vet fmt test race

# The paper's evaluation artifacts as testing.B benchmarks, including
# the campaign/parallel-exploration scaling runs.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# One-iteration pass over every benchmark — the CI smoke job: catches
# benchmarks that panic or regress catastrophically, in seconds.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -short -run '^$$' .

# Discover every native fuzz target and run each for FUZZTIME — the CI
# fuzz-smoke job. Open-ended local sessions: go test -fuzz <target>
# -fuzztime 10m <pkg>.
FUZZTIME ?= 20s
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); do \
			echo "== $$pkg $$target ($(FUZZTIME)) =="; \
			$(GO) test -fuzz "^$$target$$" -fuzztime $(FUZZTIME) -run '^$$' $$pkg || exit 1; \
		done; \
	done

# Capture → replay → minimize one known-buggy benchmark end-to-end:
# the firstbug sweep writes one minimized counterexample artifact per
# (benchmark, engine) cell and -verify re-reads and replays each from
# disk — the CI gate on the repro subsystem.
REPRO_DIR ?= /tmp/repro-smoke
repro-smoke:
	rm -rf $(REPRO_DIR)
	$(GO) run ./cmd/eval -fig firstbug -bench philosophers-3 \
		-engines dpor,random,pdpor:2 -limit 5000 -maxsteps 500 \
		-quiet -repro $(REPRO_DIR) -minimize -verify
	$(GO) run ./cmd/lazylocks -bench philosophers-3 \
		-replay $(REPRO_DIR)/philosophers-3__dpor.json > /dev/null
	@echo "repro-smoke: artifacts in $(REPRO_DIR) captured, minimized and replay-verified"

# Fault containment end-to-end under the race detector — the CI
# chaos-smoke job (see docs/ROBUSTNESS.md): the panic/divergence/
# retry/quarantine tests, then a hostile campaign through the CLI —
# panicking and diverging benchmarks explored with both a real engine
# and the chaos fault-injection engine, healing its transient failures
# via retry.
chaos-smoke:
	$(GO) test -race -count=1 -run 'Chaos|Hostile|Diverge|Panic|Stall|Truncated|Quarantine' \
		./internal/model/ ./internal/explore/ ./internal/campaign/ ./internal/goharness/ ./sct/
	$(GO) run ./cmd/eval -fig campaign -bench hostile -engines dfs,chaos:flaky:2 \
		-limit 2000 -stall-timeout 100ms -cell-timeout 60s -retries 3
	@echo "chaos-smoke: hostile programs contained, transient faults healed"

# Channel subsystem end-to-end under the race detector — the CI
# chan-smoke job (see docs/ENGINES.md "Channel dependence rules"):
# the hand-counted DPOR schedule-count gates, the chan differential
# oracle (every engine × every backend vs exhaustive DFS, committed
# fuzz corpus included), the backend ablation, the trace round-trip
# for the channel kinds — then the channel family of the corpus swept
# across the firstbug engine grid through the CLI, which must find
# every planted bug (assertion, send-on-closed panic, lost-wakeup
# deadlock) and render the new event kinds.
chan-smoke:
	$(GO) test -race -count=1 -run 'Chan|Select' \
		./internal/model/ ./internal/hb/ ./internal/explore/ ./internal/trace/ \
		./internal/goharness/ ./internal/progdsl/ ./internal/repro/ ./sct/
	$(GO) test -race -count=1 -run 'TestBackendAblationExact|TestChanEquivalenceCorpus' ./internal/explore/
	$(GO) run ./cmd/eval -fig firstbug -bench chan -limit 20000 -maxsteps 2000
	@echo "chan-smoke: channel family race-clean, engines agree, every planted bug found"

# Observability end-to-end — the CI obs-smoke job (see
# docs/OBSERVABILITY.md): the no-perturbation/heartbeat/flight test
# gates, the in-process CLI scenario (TestObsSmoke probes the expvar
# and pprof endpoints and resumes from a mixed stream), then a real
# `go run` campaign with -progress/-heartbeat/-metrics whose stream
# must carry heartbeat lines and resume to an empty remainder.
OBS_STREAM ?= /tmp/obs-smoke.jsonl
obs-smoke:
	$(GO) test -count=1 -run 'TestObsSmoke$$|TestObsFlagValidation$$' ./cmd/eval/
	$(GO) test -count=1 -run 'TestRunnerHeartbeats|TestMixedStream|TestFlightDump|TestAttemptTimings|TestCampaignMixedStreamResume|TestCampaignFlightRecorder|TestHeartbeatIndexRemapping' \
		./internal/campaign/ ./sct/
	$(GO) run ./cmd/eval -fig campaign -bench synth-10 -engines dfs -limit 100000 \
		-json -quiet -progress -heartbeat 50ms -metrics 127.0.0.1:0 > $(OBS_STREAM)
	@grep -q '"type":"heartbeat"' $(OBS_STREAM) || { echo "obs-smoke: no heartbeat lines in $(OBS_STREAM)"; exit 1; }
	@out="$$($(GO) run ./cmd/eval -fig campaign -bench synth-10 -engines dfs -limit 100000 \
		-json -quiet -resume $(OBS_STREAM))"; \
	if [ -n "$$out" ]; then \
		echo "obs-smoke: resume from a complete mixed stream re-ran cells:"; echo "$$out"; exit 1; \
	fi
	@echo "obs-smoke: heartbeats streamed, endpoints served, mixed stream resumed clean"

# Headline hot-path benchmarks, filtered to the ones tracked in the
# perf trajectory, rendered as a machine-readable JSON artifact
# (BENCH_PR<PR>.json and successors; see cmd/benchjson). Set PR to the
# current PR number: make bench-json PR=4.
PR ?= 10
BENCH_JSON ?= BENCH_PR$(PR).json
BENCH_FILTER ?= BenchmarkTracker$$|BenchmarkVClock/|BenchmarkExecutor$$|BenchmarkEngine/|BenchmarkSnapshotVsReplay/|BenchmarkWorkStealDPOR/|BenchmarkFirstBug/|BenchmarkBacktrackAllocs/|BenchmarkObserverOverhead/
# Two steps (not a pipe) so a failing benchmark run fails the target
# instead of silently producing an empty artifact.
bench-json:
	$(GO) test -bench '$(BENCH_FILTER)' -benchmem -benchtime 1s -run '^$$' . > $(BENCH_JSON).txt
	$(GO) run ./cmd/benchjson < $(BENCH_JSON).txt > $(BENCH_JSON)
	@rm -f $(BENCH_JSON).txt
	@echo "wrote $(BENCH_JSON)"

# Facade hygiene — the CI api-check job. The public sct package is the
# only supported entry point: examples must build against it alone
# (no repro/internal imports at all), the cmd tools must not reach
# into the explore/campaign/repro internals, the godoc examples
# (sct.ExampleRun is the embedding quickstart) must run, the
# docs/ENGINES.md engine catalogue must match the registry, and the
# docs/OBSERVABILITY.md counter catalogue must match Progress.
api-check:
	$(GO) build ./examples/... ./cmd/... ./sct/...
	@bad="$$(grep -rn 'repro/internal' examples/ || true)"; \
	if [ -n "$$bad" ]; then \
		echo "examples/ must use only the public sct facade:"; echo "$$bad"; exit 1; \
	fi
	@bad="$$(grep -rnE '"repro/internal/(explore|campaign|repro)"' cmd/ || true)"; \
	if [ -n "$$bad" ]; then \
		echo "cmd/ must not import explore/campaign/repro internals:"; echo "$$bad"; exit 1; \
	fi
	$(GO) test -run '^Example' -count=1 ./sct/ ./internal/...
	$(GO) test -run '^TestEnginesDocInSync$$|^TestObservabilityDocInSync$$|^TestChannelDocInSync$$' -count=1 ./sct/
	@echo "api-check: facade clean"

# Regenerate the paper figures at the full budget (slow; see -help for
# -bench/-family filters, -fig campaign -json for streaming results).
eval:
	$(GO) run ./cmd/eval -fig all -limit 100000
