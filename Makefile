# Developer entry points mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race ci bench fmt vet eval

build:
	$(GO) build ./...

# Fast suite — what the CI test job runs; finishes in seconds.
test:
	$(GO) test -short ./...

# Full suite, including the slow differential and theorem sweeps.
test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Everything CI gates on, in CI order.
ci: build vet fmt test race

# The paper's evaluation artifacts as testing.B benchmarks, including
# the campaign/parallel-exploration scaling runs.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Regenerate the paper figures at the full budget (slow; see -help for
# -bench/-family filters, -fig campaign -json for streaming results).
eval:
	$(GO) run ./cmd/eval -fig all -limit 100000
