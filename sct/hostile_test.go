package sct_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/progdsl"
	"repro/sct"
)

// panicky: t1 panics iff its read observes t0's store.
func panicky() *progdsl.Program {
	b := progdsl.New("panicky").AutoStart()
	x, y := b.Var("x"), b.Var("y")
	b.Thread().WriteConst(x, 1)
	t1 := b.Thread()
	t1.Read(0, x)
	t1.If(progdsl.Ge(0, 1), func() {
		t1.Panic(42)
	}, func() {
		t1.WriteConst(y, 1)
	})
	return b.Build()
}

// spinner: t1 diverges iff its read observes t0's store.
func spinner() *progdsl.Program {
	b := progdsl.New("spinner").AutoStart()
	x, y := b.Var("x"), b.Var("y")
	b.Thread().WriteConst(x, 1)
	t1 := b.Thread()
	t1.Read(0, x)
	t1.If(progdsl.Ge(0, 1), func() {
		t1.Diverge()
	}, func() {
		t1.WriteConst(y, 1)
	})
	return b.Build()
}

// TestPanicArtifactEndToEnd is the panic-as-violation acceptance
// test: a panicking program yields a violation of kind "panic" that
// survives the whole counterexample workflow — capture, ddmin
// minimization, save, load, replay.
func TestPanicArtifactEndToEnd(t *testing.T) {
	src := panicky()
	rep, err := sct.Run(context.Background(), src, "dfs", sct.StopAtFirstBug())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil || rep.Violation.Kind != "panic" {
		t.Fatalf("Violation = %+v, want kind %q", rep.Violation, "panic")
	}
	if rep.Panics == 0 {
		t.Errorf("Result.Panics = 0, want the panic counted")
	}

	cx, err := rep.Counterexample()
	if err != nil {
		t.Fatal(err)
	}
	if cx.Kind() != "panic" || cx.Program() != "panicky" {
		t.Fatalf("counterexample kind=%q program=%q", cx.Kind(), cx.Program())
	}
	stats, err := cx.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinChoices > stats.OriginalChoices || !cx.Minimized() {
		t.Errorf("minimize did not shrink: %+v", stats)
	}

	path := t.TempDir() + "/panic.json"
	if err := cx.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := sct.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	out, err := back.Replay(src)
	if err != nil {
		t.Fatalf("saved panic counterexample does not replay: %v", err)
	}
	if out.ViolationKind() != "panic" {
		t.Fatalf("replayed ViolationKind = %q, want %q (failures %v)",
			out.ViolationKind(), "panic", out.Failures)
	}
}

// TestStallTimeoutOption: WithStallTimeout fences the diverging
// branch as a divergence, the healthy schedules still complete, and
// the accounting identity holds.
func TestStallTimeoutOption(t *testing.T) {
	rep, err := sct.Run(context.Background(), spinner(), "dfs",
		sct.WithStallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergences == 0 {
		t.Fatalf("Divergences = 0, want the stuck branch fenced: %+v", rep.Result)
	}
	if rep.Terminals == 0 {
		t.Error("healthy schedules lost next to the diverging one")
	}
	if got := rep.Terminals + rep.Pruned + rep.Truncated + rep.SleepBlocked + rep.Divergences; got != rep.Schedules {
		t.Errorf("accounting %d != schedules %d (%+v)", got, rep.Schedules, rep.Result)
	}
	// The program's read/write race on x is a real, separate finding;
	// the divergence itself must never surface as a violation kind.
	if rep.Violation != nil && rep.Violation.Kind != "data race" {
		t.Errorf("divergence misreported as a violation: %+v", rep.Violation)
	}

	if _, err := sct.Run(context.Background(), spinner(), "dfs",
		sct.WithStallTimeout(-time.Second)); err == nil {
		t.Error("negative stall timeout accepted")
	}
}

// TestContainmentOptionRouting pins which call sites accept the
// containment options: stall timeouts are exploration properties
// (Run and Grid), cell timeouts and retries are runner properties
// (NewCampaign only).
func TestContainmentOptionRouting(t *testing.T) {
	ctx := context.Background()
	src := panicky()

	if _, err := sct.Run(ctx, src, "dfs", sct.WithCellTimeout(time.Second)); err == nil ||
		!strings.Contains(err.Error(), "WithCellTimeout") {
		t.Errorf("Run with WithCellTimeout: %v, want rejection", err)
	}
	if _, err := sct.Run(ctx, src, "dfs", sct.WithRetries(2)); err == nil ||
		!strings.Contains(err.Error(), "WithRetries") {
		t.Errorf("Run with WithRetries: %v, want rejection", err)
	}
	if _, err := sct.Grid([]string{"counter-racy-2x2"}, []string{"dfs"},
		sct.WithCellTimeout(time.Second)); err == nil ||
		!strings.Contains(err.Error(), "WithCellTimeout") {
		t.Errorf("Grid with WithCellTimeout: %v, want rejection", err)
	}

	cells, err := sct.Grid([]string{"counter-racy-2x2"}, []string{"dfs"},
		sct.WithStallTimeout(time.Millisecond/2))
	if err != nil {
		t.Fatalf("Grid with WithStallTimeout: %v", err)
	}
	// Sub-millisecond timeouts round up: armed never becomes disarmed.
	if cells[0].StallTimeoutMS != 1 {
		t.Errorf("StallTimeoutMS = %d, want 1 (rounded up from 500µs)", cells[0].StallTimeoutMS)
	}
	if _, err := sct.NewCampaign(cells, sct.WithStallTimeout(time.Second)); err == nil ||
		!strings.Contains(err.Error(), "WithStallTimeout") {
		t.Errorf("NewCampaign with WithStallTimeout: %v, want rejection", err)
	}
	if _, err := sct.NewCampaign(cells,
		sct.WithCellTimeout(time.Second), sct.WithRetries(3)); err != nil {
		t.Errorf("NewCampaign with containment options: %v, want accepted", err)
	}
}
