package sct

// This file is the observability surface of the facade: live progress
// snapshots for single runs (WithObserver), per-cell heartbeats and
// flight recorders for campaigns (WithHeartbeat, WithFlightRecorder).
// See docs/OBSERVABILITY.md for the counter catalogue and stream
// formats.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/campaign"
	"repro/internal/explore"
)

// Progress is one point-in-time snapshot of a running search:
// schedules/events/backtracks performed, dedup hit rates, prune and
// divergence counters, steal traffic and the resolved backend. The
// field set is the documented counter catalogue (docs/OBSERVABILITY.md
// pins it with a doc-sync test).
type Progress = explore.Progress

// Observer configures periodic [Progress] delivery from a [Run]:
// OnProgress fires every EverySchedules schedules or Every wall-clock
// interval, whichever comes first, plus once when the search
// finishes. A disabled observer costs nothing; an enabled one never
// changes results.
type Observer = explore.Observer

// Counters is the lock-free live counter set behind [Progress]
// snapshots; custom [Engine] implementations publish into it through
// [Options].
type Counters = explore.Counters

// Heartbeat is one liveness record for an in-flight campaign cell:
// cell identity, attempt number, schedules/events so far, the
// aggregate schedule rate and the resolved backend.
type Heartbeat = campaign.Heartbeat

// FlightEntry is one recent execution retained by a cell's flight
// recorder: its schedule prefix (complete choice sequence), outcome,
// depth and timing.
type FlightEntry = explore.FlightEntry

// FlightArtifact is the structured dump a failing campaign cell
// leaves behind when [WithFlightRecorder] is armed: the cell, its
// error, per-attempt timings, the final counter snapshot and the ring
// of most recent executions.
type FlightArtifact = campaign.FlightArtifact

// ReadFlight loads a flight artifact dumped by a campaign run with
// [WithFlightRecorder].
func ReadFlight(path string) (FlightArtifact, error) {
	return campaign.ReadFlight(path)
}

// WithObserver delivers periodic [Progress] snapshots from a [Run].
// The zero cadence means the defaults (1024 schedules / 1s). Run
// only: campaigns observe through [WithHeartbeat] instead.
func WithObserver(o Observer) Option {
	return func(c *config) error {
		c.mark("WithObserver")
		if o.OnProgress == nil {
			return fmt.Errorf("WithObserver with nil OnProgress")
		}
		if o.EverySchedules < 0 {
			return fmt.Errorf("negative observer schedule cadence %d", o.EverySchedules)
		}
		if o.Every < 0 {
			return fmt.Errorf("negative observer interval %v", o.Every)
		}
		c.observer = &o
		return nil
	}
}

// WithHeartbeat delivers periodic per-cell [Heartbeat] records from a
// campaign ([NewCampaign] only). every <= 0 uses the default cadence
// (1s). fn is serialised with the result stream, so
// [HeartbeatWriter] and [JSONLWriter] pointed at the same stream
// interleave line-atomically — and [Campaign.Resume] skips the
// heartbeat lines.
func WithHeartbeat(every time.Duration, fn func(Heartbeat)) Option {
	return func(c *config) error {
		c.mark("WithHeartbeat")
		if fn == nil {
			return fmt.Errorf("WithHeartbeat with nil callback")
		}
		if every < 0 {
			return fmt.Errorf("negative heartbeat interval %v", every)
		}
		c.heartbeatEvery = every
		c.onHeartbeat = fn
		return nil
	}
}

// WithFlightRecorder arms a per-cell flight recorder on a campaign
// ([NewCampaign] only): every cell records its recent executions into
// a bounded ring, and a cell that fails — quarantine, cell timeout,
// engine panic — dumps a [FlightArtifact] into dir
// (flight__<bench>__<engine>.json). Healthy cells dump nothing.
func WithFlightRecorder(dir string) Option {
	return func(c *config) error {
		c.mark("WithFlightRecorder")
		if dir == "" {
			return fmt.Errorf("WithFlightRecorder with empty directory")
		}
		c.flightDir = dir
		return nil
	}
}

// HeartbeatWriter returns a [WithHeartbeat] callback that streams
// each heartbeat as one JSON line to w — point it at the same stream
// as [JSONLWriter] for a mixed, still checkpoint-resumable JSONL
// stream.
func HeartbeatWriter(w io.Writer) func(Heartbeat) {
	return campaign.HeartbeatJSONL(w)
}
