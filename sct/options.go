package sct

import (
	"context"
	"fmt"
	"time"

	"repro/internal/explore"
)

// Backend names a cursor backtracking implementation — the ablation
// knob of the copy-on-write exploration backend. The zero value
// (BackendAuto) picks the fastest supported backend and is right
// outside ablation studies.
type Backend = explore.BackendKind

// The backends. All are observationally identical; they differ only
// in how executions rewind.
const (
	// BackendAuto adapts: a root search starts on the undo log,
	// measures the first few resets (depth retained vs records
	// rewound), and locks in undo or replay for the rest of the run —
	// replay wins on shallow reset targets, undo on deep retained
	// prefixes. Programs that cannot snapshot always use replay.
	BackendAuto Backend = explore.BackendAuto
	// BackendUndo rewinds through paired O(1)-per-step undo logs: the
	// machine's reversal records plus the HB tracker's per-event
	// deltas. No per-step copies in either direction.
	BackendUndo Backend = explore.BackendUndo
	// BackendSnapshot stores a deep machine snapshot at every depth
	// (the legacy ablation baseline).
	BackendSnapshot Backend = explore.BackendSnapshot
	// BackendReplay re-executes the retained prefix on every
	// backtrack; it works for every program, including goroutine-
	// backed ones that cannot snapshot.
	BackendReplay Backend = explore.BackendReplay
)

// Option configures a [Run], [Grid] or [NewCampaign]. Options are
// validated when the call constructs its configuration, so an invalid
// value fails fast instead of producing a half-meaningful result.
type Option func(*config) error

// config is the compiled form of an option list; exploreOptions turns
// it into the engine-level explore.Options.
type config struct {
	scheduleLimit int
	maxSteps      int
	backend       Backend
	workers       int
	recordStates  bool
	firstBug      bool
	onViolation   func(Witness)
	stallTimeout  time.Duration
	cellTimeout   time.Duration
	retries       int

	// Observability (see observe.go): observer rides Run's
	// explore.Options; the heartbeat/flight knobs are campaign-runner
	// properties.
	observer       *explore.Observer
	heartbeatEvery time.Duration
	onHeartbeat    func(Heartbeat)
	flightDir      string

	// applied names every option that was set, so each construction
	// site can reject options it cannot honour instead of silently
	// dropping them.
	applied map[string]bool
}

func (c *config) mark(name string) {
	if c.applied == nil {
		c.applied = map[string]bool{}
	}
	c.applied[name] = true
}

func newConfig(opts []Option) (config, error) {
	var c config
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&c); err != nil {
			return c, fmt.Errorf("sct: %w", err)
		}
	}
	return c, nil
}

// reject errors when any of the named options was applied — the
// fail-fast half of "options are validated at construction": an
// option the call site cannot carry is a programming error, not a
// silent no-op.
func (c config) reject(site, hint string, names ...string) error {
	for _, n := range names {
		if c.applied[n] {
			return fmt.Errorf("sct: %s does not apply to %s (%s)", n, site, hint)
		}
	}
	return nil
}

func (c config) exploreOptions(ctx context.Context) explore.Options {
	return explore.Options{
		ScheduleLimit:  c.scheduleLimit,
		MaxSteps:       c.maxSteps,
		Backend:        c.backend,
		RecordStates:   c.recordStates,
		StopAtFirstBug: c.firstBug,
		OnViolation:    c.onViolation,
		StallTimeout:   c.stallTimeout,
		Observer:       c.observer,
		Ctx:            ctx,
	}
}

// WithScheduleLimit stops exploration after n executions. 0 (the
// default) means unlimited; the paper's evaluation uses 100,000.
func WithScheduleLimit(n int) Option {
	return func(c *config) error {
		c.mark("WithScheduleLimit")
		if n < 0 {
			return fmt.Errorf("negative schedule limit %d", n)
		}
		c.scheduleLimit = n
		return nil
	}
}

// WithBounds sets both exploration budgets at once: the schedule
// limit (0 = unlimited) and the per-execution event bound (0 = the
// executor default; executions hitting it count as truncated).
func WithBounds(scheduleLimit, maxSteps int) Option {
	return func(c *config) error {
		c.mark("WithBounds")
		if scheduleLimit < 0 {
			return fmt.Errorf("negative schedule limit %d", scheduleLimit)
		}
		if maxSteps < 0 {
			return fmt.Errorf("negative step bound %d", maxSteps)
		}
		c.scheduleLimit = scheduleLimit
		c.maxSteps = maxSteps
		return nil
	}
}

// WithBackend selects the cursor backtracking implementation (an
// ablation knob; the default BackendAuto is right otherwise).
func WithBackend(b Backend) Option {
	return func(c *config) error {
		c.mark("WithBackend")
		if b > BackendReplay {
			return fmt.Errorf("unknown backend %q", b)
		}
		c.backend = b
		return nil
	}
}

// WithWorkers sets how many campaign cells run concurrently
// ([NewCampaign]'s worker pool). n <= 0 (the default) uses all cores.
// Single-search parallelism is an engine property instead: spell it
// in the engine spec ("pdpor:8").
func WithWorkers(n int) Option {
	return func(c *config) error {
		c.mark("WithWorkers")
		if n < 0 {
			n = 0
		}
		c.workers = n
		return nil
	}
}

// WithRecordStates retains the sorted distinct terminal state keys in
// the result — a cross-engine agreement diagnostic, costly on large
// spaces.
func WithRecordStates() Option {
	return func(c *config) error {
		c.mark("WithRecordStates")
		c.recordStates = true
		return nil
	}
}

// StopAtFirstBug stops the search the moment a terminal execution
// exhibits a safety violation; Result.FirstBugSchedule then reports
// the paper's schedules-to-first-bug metric.
func StopAtFirstBug() Option {
	return func(c *config) error {
		c.mark("StopAtFirstBug")
		c.firstBug = true
		return nil
	}
}

// WithStallTimeout arms the divergence watchdog: a thread whose next
// visible operation does not materialise within d of wall-clock time
// is fenced as diverged, the execution is classified under
// Result.Divergences, and exploration of the remaining schedule space
// continues. 0 (the default) disables the watchdog — a genuinely
// diverging thread then hangs the search, exactly as before.
//
// The watchdog matters only for frontends whose thread bodies run
// real code on goroutines (goharness); interpreter frontends
// (progdsl) announce divergence deterministically and need no timer.
// Divergence points are memoised, so each distinct stuck point costs
// the timeout once no matter how many schedules revisit it.
func WithStallTimeout(d time.Duration) Option {
	return func(c *config) error {
		c.mark("WithStallTimeout")
		if d < 0 {
			return fmt.Errorf("negative stall timeout %v", d)
		}
		c.stallTimeout = d
		return nil
	}
}

// WithCellTimeout bounds each campaign cell attempt to d of
// wall-clock time ([NewCampaign] only). An attempt that exceeds it is
// cancelled and reported as a structured per-cell error carrying the
// partial counters; an attempt that also ignores cancellation is
// abandoned on a watchdog goroutine so the campaign itself always
// survives. 0 (the default) means no per-cell deadline.
func WithCellTimeout(d time.Duration) Option {
	return func(c *config) error {
		c.mark("WithCellTimeout")
		if d < 0 {
			return fmt.Errorf("negative cell timeout %v", d)
		}
		c.cellTimeout = d
		return nil
	}
}

// WithRetries lets each campaign cell retry up to n extra attempts
// ([NewCampaign] only) when the engine fails transiently — a panic
// whose value unwraps to a transient-fault marker (see
// [TransientError]). Retries back off exponentially with jitter;
// deterministic failures are never retried. CellResult.Attempts
// records how many attempts the cell consumed. 0 (the default)
// disables retry.
func WithRetries(n int) Option {
	return func(c *config) error {
		c.mark("WithRetries")
		if n < 0 {
			return fmt.Errorf("negative retry count %d", n)
		}
		c.retries = n
		return nil
	}
}

// OnViolation invokes fn for every violating terminal execution, with
// a self-contained witness. Parallel searches call it from multiple
// goroutines concurrently; fn must synchronise internally.
func OnViolation(fn func(Witness)) Option {
	return func(c *config) error {
		c.mark("OnViolation")
		if fn == nil {
			return fmt.Errorf("nil OnViolation callback")
		}
		c.onViolation = fn
		return nil
	}
}
