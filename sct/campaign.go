package sct

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/explore"
)

// EngineSpec names an engine configuration in the registry's compact
// colon grammar ("dpor+sleep", "pb:2:lazy", "pdpor:4") — the form
// campaign cells carry.
type EngineSpec = campaign.EngineSpec

// Cell is one unit of campaign work: a named benchmark explored by
// one engine spec under explicit bounds. Build grids with [Grid] or
// literally.
type Cell = campaign.Cell

// CellResult is one completed cell — the unit of the campaign's
// streaming output and of its JSONL checkpoint format.
type CellResult = campaign.CellResult

// ParseSpecs splits a comma-separated engine list ("dpor, pb:2,
// pdpor:4") and validates every entry against the registry — the
// flag-grammar front end of [Grid].
func ParseSpecs(list string) ([]string, error) {
	var out []string
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if _, err := NewEngine(f); err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sct: empty engine list %q", list)
	}
	return out, nil
}

// Grid builds the (benchmark × engine) cell cross product. Engine
// specs are validated against the registry up front; the options set
// the per-cell bounds ([WithScheduleLimit], [WithBounds]) and modes
// ([StopAtFirstBug], [WithRecordStates]).
func Grid(benches, engineSpecs []string, opts ...Option) ([]Cell, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.reject("Grid", "campaign cells cannot carry it",
		"WithBackend", "OnViolation", "WithWorkers"); err != nil {
		return nil, err
	}
	if err := cfg.reject("Grid", "containment is a runner property: pass it to NewCampaign",
		"WithCellTimeout", "WithRetries"); err != nil {
		return nil, err
	}
	if err := cfg.reject("Grid", "observability is a runner property: pass WithHeartbeat/WithFlightRecorder to NewCampaign (WithObserver is Run-only)",
		"WithObserver", "WithHeartbeat", "WithFlightRecorder"); err != nil {
		return nil, err
	}
	if len(benches) == 0 {
		return nil, errors.New("sct: Grid with no benchmarks")
	}
	if len(engineSpecs) == 0 {
		return nil, errors.New("sct: Grid with no engine specs")
	}
	specs := make([]campaign.EngineSpec, len(engineSpecs))
	for i, s := range engineSpecs {
		if _, err := NewEngine(s); err != nil {
			return nil, err
		}
		specs[i] = campaign.EngineSpec(s)
	}
	cells := campaign.Grid(benches, specs, cfg.scheduleLimit, cfg.maxSteps)
	if cfg.firstBug || cfg.recordStates || cfg.stallTimeout > 0 {
		// Cells carry the stall timeout in whole milliseconds (the
		// serialisable checkpoint unit); round sub-millisecond values
		// up so "armed" can never silently become "disarmed".
		ms := cfg.stallTimeout.Milliseconds()
		if cfg.stallTimeout > 0 && ms == 0 {
			ms = 1
		}
		for i := range cells {
			cells[i].StopAtFirstBug = cfg.firstBug
			cells[i].RecordStates = cfg.recordStates
			cells[i].StallTimeoutMS = ms
		}
	}
	return cells, nil
}

// Campaign executes a grid of cells across a worker pool, streaming
// each finished cell through [Campaign.Results]. A campaign is
// single-shot: build it, optionally [Campaign.Resume] from a saved
// stream, iterate Results once.
type Campaign struct {
	cells   []Cell
	skip    []bool // cells satisfied by Resume
	resumed []CellResult
	cfg     config
	ran     atomic.Bool
	err     error
}

// NewCampaign validates every cell (engine spec and option
// combination) and prepares a campaign over them. [WithWorkers]
// bounds how many cells run concurrently.
func NewCampaign(cells []Cell, opts ...Option) (*Campaign, error) {
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.reject("NewCampaign", "set per-cell options on the cells via Grid",
		"WithScheduleLimit", "WithBounds", "WithBackend", "WithRecordStates",
		"StopAtFirstBug", "OnViolation", "WithStallTimeout"); err != nil {
		return nil, err
	}
	if err := cfg.reject("NewCampaign", "per-run progress snapshots apply to Run; campaigns observe through WithHeartbeat",
		"WithObserver"); err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, errors.New("sct: campaign with no cells")
	}
	for _, c := range cells {
		if _, err := c.Engine.Build(); err != nil {
			return nil, fmt.Errorf("sct: cell %s/%s: %w", c.Bench, c.Engine, err)
		}
	}
	return &Campaign{
		cells: append([]Cell(nil), cells...),
		skip:  make([]bool, len(cells)),
		cfg:   cfg,
	}, nil
}

// Resume reads a (possibly partial) JSONL result stream — the
// checkpoint a previous run of the same grid left behind — and marks
// every cell it already completed as done, so [Campaign.Results]
// re-runs only the rest. Cells that were cancelled mid-run or failed
// are re-run, and unparseable lines are skipped rather than fatal: a
// run killed mid-write leaves a truncated final line, and resume
// exists precisely for that crash (the affected cells simply run
// again). Resume may be called multiple times (e.g. one file per
// previous attempt) and returns how many cells this stream satisfied.
//
// The skipped cells' recorded results stay available through
// [Campaign.Resumed], re-indexed to their position in this campaign's
// grid.
func (c *Campaign) Resume(r io.Reader) (int, error) {
	byCell := map[Cell]CellResult{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 || campaign.IsTelemetryLine(line) {
			continue
		}
		var res CellResult
		if err := json.Unmarshal(line, &res); err != nil {
			continue // truncated or corrupt checkpoint line
		}
		if res.Err == "" && !res.Cancelled {
			byCell[res.Cell] = res
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("sct: resume: %w", err)
	}
	n := 0
	for i, cell := range c.cells {
		if c.skip[i] {
			continue
		}
		if res, ok := byCell[cell]; ok {
			res.Index = i
			c.skip[i] = true
			c.resumed = append(c.resumed, res)
			n++
		}
	}
	return n, nil
}

// Resumed returns the results adopted by [Campaign.Resume], with
// Index rewritten to each cell's position in this campaign's grid.
func (c *Campaign) Resumed() []CellResult {
	return append([]CellResult(nil), c.resumed...)
}

// Results runs the campaign's pending cells across the worker pool
// and yields each cell result as it completes (completion order;
// CellResult.Index restores grid order). Breaking out of the loop
// cancels the remaining work and waits for in-flight cells to flush.
// A nil ctx means background; when ctx ends the campaign early, the
// in-flight cells stream out with Cancelled set and [Campaign.Err]
// reports the cause.
//
// Results is single-shot: the campaign runs once, and iterating again
// (the same sequence or a new Results call) yields nothing instead of
// silently re-exploring the grid.
func (c *Campaign) Results(ctx context.Context) iter.Seq[CellResult] {
	return func(yield func(CellResult) bool) {
		if c.ran.Swap(true) {
			return
		}
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		// The runner sees only the pending cells; origIdx maps its
		// dense indices back to grid positions so streamed results
		// stay consistent with Resumed() ones.
		var pending []Cell
		var origIdx []int
		for i, cell := range c.cells {
			if !c.skip[i] {
				pending = append(pending, cell)
				origIdx = append(origIdx, i)
			}
		}
		if len(pending) == 0 {
			return
		}

		// stop is closed only when the consumer abandons the
		// iteration (break or panic out of yield): a cancelled ctx
		// alone must still flush every cell marker to the consumer.
		stop := make(chan struct{})
		var stopOnce sync.Once
		stopped := func() { stopOnce.Do(func() { close(stop) }) }
		defer stopped()

		// emitMu serialises the user's heartbeat callback with yield:
		// heartbeats arrive on the runner's goroutine while results
		// are consumed on the iterating one, and the documented
		// pattern points HeartbeatWriter and JSONLWriter at the same
		// stream.
		var emitMu sync.Mutex
		ch := make(chan CellResult)
		errc := make(chan error, 1)
		go func() {
			defer close(ch)
			runner := campaign.Runner{
				Workers:        c.cfg.workers,
				CellTimeout:    c.cfg.cellTimeout,
				Retries:        c.cfg.retries,
				HeartbeatEvery: c.cfg.heartbeatEvery,
				FlightDir:      c.cfg.flightDir,
				OnResult: func(r CellResult) {
					r.Index = origIdx[r.Index]
					select {
					case ch <- r:
					case <-stop:
						// The consumer stopped listening; drop the
						// result so the runner can wind down.
					}
				},
			}
			if c.cfg.onHeartbeat != nil {
				runner.OnHeartbeat = func(h Heartbeat) {
					h.Index = origIdx[h.Index]
					emitMu.Lock()
					defer emitMu.Unlock()
					c.cfg.onHeartbeat(h)
				}
			}
			_, err := runner.Run(ctx, pending)
			errc <- err
		}()
		for r := range ch {
			emitMu.Lock()
			ok := yield(r)
			emitMu.Unlock()
			if !ok {
				stopped()
				cancel()
				for range ch { // let the runner flush and exit
				}
				<-errc
				return
			}
		}
		c.err = <-errc
	}
}

// Err reports whether the context ended the last Results iteration
// early (nil after a complete, consumer-driven run; per-cell failures
// live in CellResult.Err instead — see [FirstError]).
func (c *Campaign) Err() error { return c.err }

// FirstError returns the first cell-level failure in grid order, or
// nil.
func FirstError(results []CellResult) error {
	return campaign.FirstError(results)
}

// Quarantine returns the cells that failed (CellResult.Err != ""), in
// the order given — the campaign's survivability ledger: everything
// here was contained (engine panic, cell deadline, exhausted retries)
// without taking down the cells around it.
func Quarantine(results []CellResult) []CellResult {
	return campaign.Quarantine(results)
}

// TransientError is the retryable-fault marker: an engine (or a fault
// injection layer) that panics with a value unwrapping to it signals
// a transient condition, and a campaign runner configured via
// [WithRetries] re-attempts the cell instead of quarantining it.
type TransientError = explore.TransientError

// ErrTruncatedTail is wrapped by [ReadResults] when a result stream
// ends mid-line — the signature of a run killed during its final
// write. The complete prefix is still returned; errors.Is
// distinguishes this recoverable tail from mid-stream corruption.
var ErrTruncatedTail = campaign.ErrTruncatedTail

// JSONLWriter returns a callback that streams each cell result as one
// JSON line to w — the campaign checkpoint format [Campaign.Resume]
// and [ReadResults] consume.
func JSONLWriter(w io.Writer) func(CellResult) {
	return campaign.JSONLWriter(w)
}

// ReadResults parses a JSONL cell-result stream (e.g. the output of
// `eval -fig campaign -json`).
func ReadResults(r io.Reader) ([]CellResult, error) {
	return campaign.ReadJSONL(r)
}
