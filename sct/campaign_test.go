package sct_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/sct"
)

func testGrid(t *testing.T, opts ...sct.Option) []sct.Cell {
	t.Helper()
	opts = append([]sct.Option{sct.WithBounds(300, 2000)}, opts...)
	cells, err := sct.Grid(
		[]string{"counter-racy-2x2", "philosophers-2"},
		[]string{"dfs", "dpor", "random:7"},
		opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestGridBuildsCells: the grid carries bounds and modes into every
// cell and validates engine specs up front.
func TestGridBuildsCells(t *testing.T) {
	cells := testGrid(t, sct.StopAtFirstBug())
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	for _, c := range cells {
		if c.ScheduleLimit != 300 || c.MaxSteps != 2000 || !c.StopAtFirstBug {
			t.Errorf("cell lost its options: %+v", c)
		}
	}
	if _, err := sct.Grid([]string{"a"}, []string{"bogus"}); err == nil {
		t.Error("bogus engine spec accepted")
	}
	if _, err := sct.Grid(nil, []string{"dfs"}); err == nil {
		t.Error("empty benchmark list accepted")
	}
	if _, err := sct.Grid([]string{"a"}, nil); err == nil {
		t.Error("empty engine list accepted")
	}
	if _, err := sct.Grid([]string{"a"}, []string{"dfs"}, sct.WithScheduleLimit(-1)); err == nil {
		t.Error("invalid option accepted")
	}
}

// TestCampaignStreams: Results yields every cell exactly once with
// grid-consistent indexes, in completion order.
func TestCampaignStreams(t *testing.T) {
	cells := testGrid(t)
	camp, err := sct.NewCampaign(cells, sct.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]sct.CellResult{}
	for r := range camp.Results(context.Background()) {
		if _, dup := seen[r.Index]; dup {
			t.Errorf("index %d yielded twice", r.Index)
		}
		seen[r.Index] = r
	}
	if err := camp.Err(); err != nil {
		t.Fatalf("campaign error: %v", err)
	}
	if len(seen) != len(cells) {
		t.Fatalf("streamed %d results, want %d", len(seen), len(cells))
	}
	for i, c := range cells {
		r, ok := seen[i]
		if !ok {
			t.Errorf("cell %d never streamed", i)
			continue
		}
		if r.Cell != c {
			t.Errorf("cell %d streamed with wrong identity: %+v vs %+v", i, r.Cell, c)
		}
		if r.Err != "" || r.Result.Schedules == 0 {
			t.Errorf("cell %d: %+v", i, r)
		}
	}
}

// TestParseSpecs: the comma-list grammar behind -engines flags.
func TestParseSpecs(t *testing.T) {
	specs, err := sct.ParseSpecs("dfs, dpor ,random:3")
	if err != nil || len(specs) != 3 || specs[1] != "dpor" {
		t.Errorf("ParseSpecs = %v, %v", specs, err)
	}
	if _, err := sct.ParseSpecs(" , "); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := sct.ParseSpecs("dfs,bogus"); err == nil {
		t.Error("unknown spec in list accepted")
	}
}

// TestCampaignSingleShot: the campaign runs once; re-iterating yields
// nothing instead of silently re-exploring the grid.
func TestCampaignSingleShot(t *testing.T) {
	camp, err := sct.NewCampaign(testGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	seq := camp.Results(context.Background())
	n := 0
	for range seq {
		n++
	}
	if n == 0 {
		t.Fatal("first iteration yielded nothing")
	}
	for range seq {
		t.Fatal("re-iterating the sequence re-ran the campaign")
	}
	for range camp.Results(context.Background()) {
		t.Fatal("second Results call re-ran the campaign")
	}
}

// TestCampaignEarlyBreak: breaking out of the iterator cancels the
// remaining work without deadlocking or leaking the runner.
func TestCampaignEarlyBreak(t *testing.T) {
	camp, err := sct.NewCampaign(testGrid(t), sct.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range camp.Results(context.Background()) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("yielded %d results after break, want 1", n)
	}
	if err := camp.Err(); err != nil {
		t.Errorf("consumer-driven stop reported an error: %v", err)
	}
}

// TestCampaignResumeSkipsDoneCells: a saved JSONL stream
// checkpoint-resumes a campaign; only the missing cells run, and
// Resumed carries the adopted results re-indexed to the grid.
func TestCampaignResumeSkipsDoneCells(t *testing.T) {
	cells := testGrid(t)

	// First run: complete, checkpointed to JSONL.
	full, err := sct.NewCampaign(cells)
	if err != nil {
		t.Fatal(err)
	}
	var checkpoint bytes.Buffer
	w := sct.JSONLWriter(&checkpoint)
	var firstRun []sct.CellResult
	for r := range full.Results(context.Background()) {
		firstRun = append(firstRun, r)
		w(r)
	}
	if len(firstRun) != len(cells) {
		t.Fatalf("first run streamed %d cells", len(firstRun))
	}

	// Drop two lines from the checkpoint to simulate an interrupted
	// run, then resume.
	lines := strings.SplitAfter(checkpoint.String(), "\n")
	partial := strings.Join(lines[:len(lines)-3], "")
	resumed, err := sct.NewCampaign(cells)
	if err != nil {
		t.Fatal(err)
	}
	n, err := resumed.Resume(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(cells)-2 {
		t.Fatalf("Resume adopted %d cells, want %d", n, len(cells)-2)
	}
	ran := 0
	got := map[int]sct.CellResult{}
	for r := range resumed.Results(context.Background()) {
		ran++
		got[r.Index] = r
	}
	if ran != 2 {
		t.Fatalf("resumed campaign re-ran %d cells, want 2", ran)
	}
	for _, r := range resumed.Resumed() {
		if _, dup := got[r.Index]; dup {
			t.Errorf("cell %d both resumed and re-run", r.Index)
		}
		got[r.Index] = r
	}
	if len(got) != len(cells) {
		t.Fatalf("resumed + streamed cover %d cells, want %d", len(got), len(cells))
	}
	// Deterministic engines: the union must agree with the first run
	// cell by cell.
	for _, orig := range firstRun {
		r := got[orig.Index]
		if r.Cell != orig.Cell || r.Result.Schedules != orig.Result.Schedules ||
			r.Result.DistinctHBRs != orig.Result.DistinctHBRs {
			t.Errorf("cell %d diverged across resume:\n got %+v\nwant %+v", orig.Index, r, orig)
		}
	}

	// A fully covered campaign yields nothing.
	done, err := sct.NewCampaign(cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := done.Resume(strings.NewReader(checkpoint.String())); err != nil {
		t.Fatal(err)
	}
	for r := range done.Results(context.Background()) {
		t.Errorf("fully resumed campaign ran cell %+v", r.Cell)
	}
}

// TestCampaignResumeIgnoresUnfinishedCells: cancelled or failed cells
// in the checkpoint are re-run, not adopted, and truncated or corrupt
// lines — the signature of a run killed mid-write — are skipped
// instead of rejecting the whole checkpoint.
func TestCampaignResumeIgnoresUnfinishedCells(t *testing.T) {
	cells := testGrid(t)
	camp, err := sct.NewCampaign(cells)
	if err != nil {
		t.Fatal(err)
	}
	var checkpoint bytes.Buffer
	w := sct.JSONLWriter(&checkpoint)
	w(sct.CellResult{Index: 0, Cell: cells[0], Cancelled: true})
	w(sct.CellResult{Index: 1, Cell: cells[1], Err: "boom"})
	n, err := camp.Resume(&checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Resume adopted %d unfinished cells", n)
	}

	// One good line, one corrupt middle line, one truncated tail:
	// the good cell is adopted, the rest re-run.
	var dirty bytes.Buffer
	sct.JSONLWriter(&dirty)(sct.CellResult{Index: 2, Cell: cells[2]})
	dirty.WriteString("not json at all\n")
	full := dirty.Len()
	sct.JSONLWriter(&dirty)(sct.CellResult{Index: 3, Cell: cells[3]})
	dirty.Truncate(full + (dirty.Len()-full)/2) // kill mid-write
	n, err = camp.Resume(&dirty)
	if err != nil {
		t.Fatalf("dirty checkpoint rejected: %v", err)
	}
	if n != 1 {
		t.Fatalf("Resume adopted %d cells from dirty checkpoint, want 1", n)
	}
}

// TestNewCampaignValidation: bad cells and bad options fail at
// construction, not mid-run.
func TestNewCampaignValidation(t *testing.T) {
	if _, err := sct.NewCampaign(nil); err == nil {
		t.Error("empty campaign accepted")
	}
	bad := []sct.Cell{{Bench: "counter-racy-2x2", Engine: "bogus"}}
	if _, err := sct.NewCampaign(bad); err == nil {
		t.Error("bogus cell spec accepted")
	}
	ok := []sct.Cell{{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: 10}}
	if _, err := sct.NewCampaign(ok, sct.WithScheduleLimit(-1)); err == nil {
		t.Error("invalid option accepted")
	}
}

// TestCampaignCancelledContext: ending the context early flushes the
// remaining cells as Cancelled markers and reports the cause.
func TestCampaignCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	camp, err := sct.NewCampaign(testGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	n, cancelled := 0, 0
	for r := range camp.Results(ctx) {
		n++
		if r.Cancelled {
			cancelled++
		}
	}
	if n == 0 {
		t.Fatal("cancelled campaign streamed nothing (cells must flush as markers)")
	}
	if cancelled != n {
		t.Errorf("%d of %d cells not marked cancelled", n-cancelled, n)
	}
	if camp.Err() == nil {
		t.Error("cancelled campaign reports no error")
	}
}
