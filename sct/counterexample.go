package sct

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/repro"
)

// MinimizeStats reports what [Counterexample.Minimize] did: replays
// spent and the schedule/preemption shrink.
type MinimizeStats = repro.MinimizeStats

// Counterexample is one portable counterexample: everything needed to
// reproduce, verify, minimize and triage a violation without the run
// that found it. Obtain one from [Report.Counterexample] (bound to
// the explored program) or [Load]/[ReadCounterexample] (unbound until
// the first [Counterexample.Replay]).
type Counterexample struct {
	artifact repro.Artifact
	src      Source // nil until bound
}

// NewCounterexample captures the first violation recorded in a result
// as an artifact bound to src — the program the result was explored
// from. maxSteps must be the bound the exploration ran under (0 = the
// executor default). It errors when the result saw no violation or
// when the witness does not reproduce against src.
func NewCounterexample(src Source, res Result, maxSteps int) (*Counterexample, error) {
	w, ok := repro.FromResult(res)
	if !ok {
		return nil, fmt.Errorf("sct: %s/%s found no violation to capture", res.Program, res.Engine)
	}
	a, err := repro.Capture(src, w, maxSteps)
	if err != nil {
		return nil, fmt.Errorf("sct: %w", err)
	}
	return &Counterexample{artifact: a, src: src}, nil
}

// Minimize shrinks the counterexample in place: ddmin over the choice
// sequence, then preemption lowering, every candidate validated by
// replay. The result reproduces the same failure kind with no more
// choices and no more preemptions than before. The counterexample
// must be bound to its program (via [Report.Counterexample] or a
// successful [Counterexample.Replay]).
func (c *Counterexample) Minimize() (MinimizeStats, error) {
	if c.src == nil {
		return MinimizeStats{}, errors.New("sct: counterexample is not bound to a program; Replay it against one first")
	}
	min, stats, err := repro.Minimize(c.src, c.artifact, 0)
	if err != nil {
		return stats, fmt.Errorf("sct: %w", err)
	}
	c.artifact = min
	return stats, nil
}

// Replay re-executes the counterexample against src and verifies it
// reproduces: same trace, same terminal state, same failure kind,
// same state digest. A nil src replays against the bound program; a
// successful replay (re)binds the counterexample to src. The outcome
// is returned even on mismatch, for triage; the error names exactly
// what diverged.
func (c *Counterexample) Replay(src Source) (Outcome, error) {
	if src == nil {
		src = c.src
	}
	if src == nil {
		return Outcome{}, errors.New("sct: counterexample is not bound to a program; pass one to Replay")
	}
	out, err := c.artifact.Replay(src)
	if err != nil {
		return out, fmt.Errorf("sct: %w", err)
	}
	c.src = src
	return out, nil
}

// Save writes the counterexample to path as a versioned JSON
// artifact.
func (c *Counterexample) Save(path string) error {
	return c.artifact.WriteFile(path)
}

// Write serialises the counterexample as indented JSON.
func (c *Counterexample) Write(w io.Writer) error {
	return c.artifact.Write(w)
}

// Load reads a counterexample artifact from path. The result is
// unbound: [Counterexample.Replay] it against the program it names
// (see [Counterexample.Program]).
func Load(path string) (*Counterexample, error) {
	a, err := repro.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Counterexample{artifact: a}, nil
}

// ReadCounterexample parses a counterexample artifact from r.
func ReadCounterexample(r io.Reader) (*Counterexample, error) {
	a, err := repro.Read(r)
	if err != nil {
		return nil, err
	}
	return &Counterexample{artifact: a}, nil
}

// Program names the program under test the artifact was captured
// from.
func (c *Counterexample) Program() string { return c.artifact.Trace.Program }

// Engine names the engine configuration that found the violation.
func (c *Counterexample) Engine() string { return c.artifact.Engine }

// Kind names the violation class ("deadlock", "assertion failure",
// "lock misuse", "data race").
func (c *Counterexample) Kind() string { return c.artifact.Kind }

// SchedulesToBug is the 1-based index of the violating execution in
// the finding run — the paper's bug-finding metric; 0 when unknown.
func (c *Counterexample) SchedulesToBug() int { return c.artifact.SchedulesToBug }

// Preemptions counts the preemptive context switches in the stored
// schedule.
func (c *Counterexample) Preemptions() int { return c.artifact.Preemptions }

// Choices returns the stored schedule: the thread scheduled at every
// step.
func (c *Counterexample) Choices() []ThreadID {
	return append([]ThreadID(nil), c.artifact.Trace.Choices...)
}

// Minimized reports whether the artifact went through
// [Counterexample.Minimize].
func (c *Counterexample) Minimized() bool { return c.artifact.Minimized }

// String summarises the counterexample.
func (c *Counterexample) String() string { return c.artifact.String() }
