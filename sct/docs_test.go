package sct_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/sct"
)

// enginesDocRow matches a catalogue-table row of docs/ENGINES.md: a
// markdown table line whose first cell is a backticked engine name.
var enginesDocRow = regexp.MustCompile("^\\| `([^`]+)` \\|")

// TestEnginesDocInSync keeps docs/ENGINES.md's engine catalogue and
// the registry in lockstep, in both directions: every engine the doc
// catalogues must be registered, and every registered built-in must be
// catalogued. It runs under make api-check, so adding an engine
// without documenting it (or renaming one without updating the guide)
// fails CI.
func TestEnginesDocInSync(t *testing.T) {
	raw, err := os.ReadFile("../docs/ENGINES.md")
	if err != nil {
		t.Fatalf("engine-author guide missing: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := enginesDocRow.FindStringSubmatch(line); m != nil && m[1] != "engine" {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("docs/ENGINES.md has no catalogue table rows (| `name` | ...)")
	}

	registered := map[string]bool{}
	for _, name := range sct.EngineNames() {
		registered[name] = true
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/ENGINES.md documents engine %q, which is not registered", name)
		}
	}
	for name := range registered {
		if strings.HasPrefix(name, "custom-") {
			continue // test-local registrations (process-global registry)
		}
		if !documented[name] {
			t.Errorf("registered engine %q is missing from the docs/ENGINES.md catalogue", name)
		}
	}
}
