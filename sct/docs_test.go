package sct_test

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/sct"
)

// enginesDocRow matches a catalogue-table row of docs/ENGINES.md: a
// markdown table line whose first cell is a backticked engine name.
var enginesDocRow = regexp.MustCompile("^\\| `([^`]+)` \\|")

// TestEnginesDocInSync keeps docs/ENGINES.md's engine catalogue and
// the registry in lockstep, in both directions: every engine the doc
// catalogues must be registered, and every registered built-in must be
// catalogued. It runs under make api-check, so adding an engine
// without documenting it (or renaming one without updating the guide)
// fails CI.
func TestEnginesDocInSync(t *testing.T) {
	raw, err := os.ReadFile("../docs/ENGINES.md")
	if err != nil {
		t.Fatalf("engine-author guide missing: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := enginesDocRow.FindStringSubmatch(line); m != nil && m[1] != "engine" {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("docs/ENGINES.md has no catalogue table rows (| `name` | ...)")
	}

	registered := map[string]bool{}
	for _, name := range sct.EngineNames() {
		registered[name] = true
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("docs/ENGINES.md documents engine %q, which is not registered", name)
		}
	}
	for name := range registered {
		if strings.HasPrefix(name, "custom-") {
			continue // test-local registrations (process-global registry)
		}
		if !documented[name] {
			t.Errorf("registered engine %q is missing from the docs/ENGINES.md catalogue", name)
		}
	}
}

// TestObservabilityDocInSync pins docs/OBSERVABILITY.md's counter
// catalogue to the Progress struct's JSON field names, in both
// directions: every documented counter must exist on Progress, and
// every Progress field must be catalogued. Runs under make api-check,
// so renaming a counter (or adding one undocumented) fails CI.
func TestObservabilityDocInSync(t *testing.T) {
	raw, err := os.ReadFile("../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("observability guide missing: %v", err)
	}
	// Scope to the counter-catalogue section — the doc has other
	// tables (option routing) whose rows are not counter names.
	text := string(raw)
	start := strings.Index(text, "### Counter catalogue")
	if start < 0 {
		t.Fatal("docs/OBSERVABILITY.md has no '### Counter catalogue' section")
	}
	section := text[start:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(section, "\n") {
		if m := enginesDocRow.FindStringSubmatch(line); m != nil && m[1] != "field" {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("counter catalogue has no table rows (| `name` | ...)")
	}

	fields := map[string]bool{}
	pt := reflect.TypeOf(sct.Progress{})
	for i := 0; i < pt.NumField(); i++ {
		tag := pt.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			fields[name] = true
		}
	}
	for name := range documented {
		if !fields[name] {
			t.Errorf("docs/OBSERVABILITY.md catalogues counter %q, which is not a Progress JSON field", name)
		}
	}
	for name := range fields {
		if !documented[name] {
			t.Errorf("Progress field %q is missing from the docs/OBSERVABILITY.md counter catalogue", name)
		}
	}
}

// TestChannelDocInSync pins the channel documentation to the facade
// API: docs/ENGINES.md must keep its "Channel dependence rules"
// section naming every channel event kind, the README must keep the
// channel quickstart, and every harness method both documents must
// actually exist on sct.G / sct.Program (so the docs cannot outlive a
// rename). Runs under make api-check.
func TestChannelDocInSync(t *testing.T) {
	engDoc, err := os.ReadFile("../docs/ENGINES.md")
	if err != nil {
		t.Fatalf("engine-author guide missing: %v", err)
	}
	if !strings.Contains(string(engDoc), "## Channel dependence rules") {
		t.Error("docs/ENGINES.md has no '## Channel dependence rules' section")
	}
	for _, kind := range []string{"`send`", "`recv`", "`close`", "`select`"} {
		if !strings.Contains(string(engDoc), kind) {
			t.Errorf("docs/ENGINES.md channel section does not mention %s", kind)
		}
	}

	readme, err := os.ReadFile("../README.md")
	if err != nil {
		t.Fatalf("README missing: %v", err)
	}
	for _, ref := range []string{"p.Chan(", "g.Send", "g.Recv", "g.TryRecv", "g.Close", "g.Select", "g.TrySelect"} {
		if !strings.Contains(string(readme), ref) {
			t.Errorf("README channel quickstart does not mention %s", ref)
		}
	}

	// The documented surface must exist: Program.Chan plus the G
	// channel methods.
	if _, ok := reflect.TypeOf(&sct.Program{}).MethodByName("Chan"); !ok {
		t.Error("documented method Program.Chan does not exist")
	}
	gt := reflect.TypeOf(&sct.G{})
	for _, m := range []string{"Send", "Recv", "TryRecv", "Close", "Select", "TrySelect"} {
		if _, ok := gt.MethodByName(m); !ok {
			t.Errorf("documented method G.%s does not exist", m)
		}
	}
}
