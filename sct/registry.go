package sct

import (
	"fmt"

	"repro/internal/engines"
)

// EngineInfo describes one registered engine: its canonical spec
// name, spec grammar, a one-line summary, whether it is a parallel
// search, the specs it contributes to [DefaultGrid], and its builder.
type EngineInfo = engines.Info

// Register adds an engine to the global registry, making it buildable
// by name through [Run], [NewEngine], campaign cells and the eval
// tooling. The name must be unique and free of the spec-grammar
// separators (":", ",", space); violations panic, as they are
// embedder programming errors.
//
// The built-in engines self-register: the sequential families
// (dfs, dpor, dpor+sleep, lazy-dpor, hbr-caching, lazy-hbr-caching,
// pb, db, random, pct, pos) plus the iterative-deepening loops
// (chess-pb, chess-db) and the parallel searches (pdfs, pdpor,
// pdpor-static, prandom).
//
// The randomized engines (random, prandom, pct, pos) are seed-
// reproducible: every spec takes an integer seed (default 1), walk i
// of a run is a pure function of (seed, i) and the program, and two
// runs of the same spec under the same Options produce byte-identical
// Results. pct and pos additionally embed the seed in their engine
// name, so counterexample artifacts record the exact configuration
// that found the bug; replaying an artifact never needs the seed at
// all, because artifacts store the complete schedule (see the
// Counterexample docs and docs/ENGINES.md).
func Register(info EngineInfo) {
	engines.Register(info)
}

// Engines lists every registered engine in canonical order.
func Engines() []EngineInfo {
	return engines.All()
}

// EngineNames lists the registered engine names in canonical order.
func EngineNames() []string {
	return engines.Names()
}

// DefaultGrid is the canonical default engine grid — one spec per
// technique the paper-style evaluation sweeps, in canonical order
// (e.g. "pb:2" for preemption bounding, "pdpor:1/2/4" for the
// work-stealing search). cmd/eval's bug-finding table defaults to it.
func DefaultGrid() []string {
	return engines.DefaultGrid()
}

// NewEngine builds an engine from a registry spec
// ("name[:arg[:arg...]]"), e.g. "dpor+sleep", "pb:2:lazy",
// "random:7", "pdpor:4".
func NewEngine(spec string) (Engine, error) {
	eng, err := engines.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("sct: %w", err)
	}
	return eng, nil
}
