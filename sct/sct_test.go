package sct_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/progdsl"
	"repro/sct"
)

// racyCounter is the canonical two-thread lost-update program: two
// unsynchronised read-modify-write increments.
func racyCounter() *progdsl.Program {
	b := progdsl.New("racy-counter").AutoStart()
	x := b.Var("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	}
	return b.Build()
}

// deadlocker is the two-mutex circular-wait program.
func deadlocker() *progdsl.Program {
	b := progdsl.New("deadlocker").AutoStart()
	m0, m1 := b.Mutex("m0"), b.Mutex("m1")
	b.Thread().Lock(m0).Lock(m1).Unlock(m1).Unlock(m0)
	b.Thread().Lock(m1).Lock(m0).Unlock(m0).Unlock(m1)
	return b.Build()
}

// TestRegistryComplete pins the canonical engine catalogue: every
// built-in engine is registered under its canonical name, the default
// grid is derived from the same table, and every registered engine is
// buildable and Run-able with default arguments.
func TestRegistryComplete(t *testing.T) {
	wantNames := []string{
		"dfs", "dpor", "dpor+sleep", "lazy-dpor", "hbr-caching",
		"lazy-hbr-caching", "pb", "db", "chess-pb", "chess-db", "random",
		"pct", "pos", "chaos", "pdfs", "pdpor", "pdpor-static", "prandom",
	}
	if got := sct.EngineNames(); !reflect.DeepEqual(got[:len(wantNames)], wantNames) {
		t.Fatalf("canonical engine names = %v, want prefix %v", got, wantNames)
	}
	wantGrid := []string{
		"dfs", "dpor", "dpor+sleep", "lazy-dpor", "hbr-caching",
		"lazy-hbr-caching", "pb:2", "db:2", "random", "pct:3", "pos",
		"pdpor:1", "pdpor:2", "pdpor:4",
	}
	if got := sct.DefaultGrid(); !reflect.DeepEqual(got, wantGrid) {
		t.Fatalf("DefaultGrid() = %v, want %v", got, wantGrid)
	}

	// Iterate the pinned built-in names, not sct.Engines(): other
	// tests may have registered custom engines into the process-global
	// registry, and test order must not matter.
	src := racyCounter()
	for _, name := range wantNames {
		eng, err := sct.NewEngine(name)
		if err != nil {
			t.Errorf("NewEngine(%q): %v", name, err)
			continue
		}
		if eng.Name() == "" {
			t.Errorf("engine %q reports an empty name", name)
		}
		rep, err := sct.Run(context.Background(), src, name, sct.WithBounds(200, 500))
		if err != nil {
			t.Errorf("Run with %q: %v", name, err)
			continue
		}
		if rep.Schedules == 0 {
			t.Errorf("Run with %q executed no schedules", name)
		}
		if err := rep.CheckInvariant(); err != nil {
			t.Errorf("Run with %q: %v", name, err)
		}
	}
}

// customEngine is a third-party engine implemented purely against the
// facade's exported types.
type customEngine struct{}

func (customEngine) Name() string { return "custom-null" }
func (customEngine) Explore(src sct.Source, opt sct.Options) sct.Result {
	return sct.Result{Program: src.Name(), Engine: "custom-null"}
}

// registerOnce registers a test engine exactly once per process: the
// registry is process-global and Register panics on duplicates, so
// repeated test runs (-count=2) and any test order must both work.
func registerOnce(info sct.EngineInfo) {
	for _, have := range sct.Engines() {
		if have.Name == info.Name {
			return
		}
	}
	sct.Register(info)
}

// TestRegisterCustomEngine: an embedder-registered engine is Run-able
// by name and usable as a campaign cell spec — the registry is one
// namespace end to end.
func TestRegisterCustomEngine(t *testing.T) {
	registerOnce(sct.EngineInfo{
		Name:    "custom-null",
		Summary: "does nothing (registration test)",
		Build: func(args []string) (sct.Engine, error) {
			return customEngine{}, nil
		},
	})
	rep, err := sct.Run(context.Background(), racyCounter(), "custom-null")
	if err != nil {
		t.Fatalf("Run with custom engine: %v", err)
	}
	if rep.Engine != "custom-null" {
		t.Fatalf("custom engine result: %+v", rep.Result)
	}
	if _, err := sct.Grid([]string{"counter-racy-2x2"}, []string{"custom-null"}); err != nil {
		t.Fatalf("custom engine rejected as a grid spec: %v", err)
	}
}

// TestRegisterRejectsBadInfo: registration programmer errors panic.
func TestRegisterRejectsBadInfo(t *testing.T) {
	mustPanic := func(name string, info sct.EngineInfo) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		sct.Register(info)
	}
	build := func(args []string) (sct.Engine, error) { return customEngine{}, nil }
	mustPanic("empty name", sct.EngineInfo{Build: build})
	mustPanic("spec separator", sct.EngineInfo{Name: "a:b", Build: build})
	mustPanic("nil builder", sct.EngineInfo{Name: "no-builder"})
	mustPanic("duplicate", sct.EngineInfo{Name: "dpor", Build: build})
}

// TestRunErrors covers the facade's error paths: unknown engines, nil
// programs, and every option validation failure.
func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	src := racyCounter()

	if _, err := sct.Run(ctx, nil, "dpor"); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := sct.Run(ctx, src, "no-such-engine"); err == nil || !strings.Contains(err.Error(), "no-such-engine") {
		t.Errorf("unknown engine error should name the spec: %v", err)
	}
	if _, err := sct.Run(ctx, src, "dpor:extra"); err == nil {
		t.Error("arguments to a no-argument engine accepted")
	}
	if _, err := sct.Run(ctx, src, "pb:x"); err == nil {
		t.Error("non-numeric bound accepted")
	}

	bad := []struct {
		name string
		opt  sct.Option
		want string
	}{
		{"negative schedule limit", sct.WithScheduleLimit(-1), "schedule limit"},
		{"negative bounds limit", sct.WithBounds(-5, 0), "schedule limit"},
		{"negative step bound", sct.WithBounds(0, -5), "step bound"},
		{"unknown backend", sct.WithBackend(sct.Backend(200)), "backend"},
		{"nil violation callback", sct.OnViolation(nil), "OnViolation"},
	}
	for _, tc := range bad {
		if _, err := sct.Run(ctx, src, "dpor", tc.opt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// Options a call site cannot honour are rejected, not silently
	// dropped.
	if _, err := sct.Run(ctx, src, "dpor", sct.WithWorkers(4)); err == nil ||
		!strings.Contains(err.Error(), "WithWorkers") {
		t.Errorf("Run with WithWorkers: %v, want rejection", err)
	}
	if _, err := sct.Grid([]string{"a"}, []string{"dfs"}, sct.WithBackend(sct.BackendReplay)); err == nil ||
		!strings.Contains(err.Error(), "WithBackend") {
		t.Errorf("Grid with WithBackend: %v, want rejection", err)
	}
	if _, err := sct.Grid([]string{"a"}, []string{"dfs"}, sct.OnViolation(func(sct.Witness) {})); err == nil {
		t.Error("Grid with OnViolation accepted (cells cannot carry the callback)")
	}
	cells := []sct.Cell{{Bench: "counter-racy-2x2", Engine: "dfs"}}
	if _, err := sct.NewCampaign(cells, sct.StopAtFirstBug()); err == nil ||
		!strings.Contains(err.Error(), "StopAtFirstBug") {
		t.Errorf("NewCampaign with per-cell option: %v, want rejection", err)
	}

	// Valid options still compose.
	rep, err := sct.Run(ctx, src, "dpor",
		sct.WithScheduleLimit(100), sct.WithBackend(sct.BackendReplay), sct.WithRecordStates())
	if err != nil {
		t.Fatalf("valid option combination rejected: %v", err)
	}
	if len(rep.States) == 0 {
		t.Error("WithRecordStates did not retain state keys")
	}
}

// TestRunFindsViolationAndCounterexample drives the full embedding
// workflow: explore, get the violation report, capture the
// counterexample, minimize, save, load, replay.
func TestRunFindsViolationAndCounterexample(t *testing.T) {
	src := deadlocker()
	var witnessed int
	rep, err := sct.Run(context.Background(), src, "dpor+sleep",
		sct.StopAtFirstBug(),
		sct.OnViolation(func(w sct.Witness) { witnessed++ }))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil || rep.Violation.Kind != "deadlock" {
		t.Fatalf("deadlocker must deadlock: %+v", rep.Result)
	}
	if rep.FirstBugSchedule < 1 {
		t.Errorf("StopAtFirstBug lost the schedules-to-first-bug index: %d", rep.FirstBugSchedule)
	}
	if witnessed == 0 {
		t.Error("OnViolation callback never fired")
	}
	if len(rep.Violation.Outcome.Trace) == 0 {
		t.Error("violation outcome has no trace")
	}

	cx, err := rep.Counterexample()
	if err != nil {
		t.Fatal(err)
	}
	if cx.Kind() != "deadlock" || cx.Program() != "deadlocker" || cx.SchedulesToBug() != rep.FirstBugSchedule {
		t.Errorf("counterexample metadata wrong: %v", cx)
	}
	stats, err := cx.Minimize()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinChoices > stats.OriginalChoices || !cx.Minimized() {
		t.Errorf("minimize grew the schedule: %+v", stats)
	}

	path := t.TempDir() + "/deadlock.json"
	if err := cx.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := sct.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Minimize(); err == nil {
		t.Error("Minimize on an unbound counterexample must error")
	}
	out, err := back.Replay(src)
	if err != nil {
		t.Fatalf("saved counterexample does not replay: %v", err)
	}
	if !out.Deadlock {
		t.Error("replay did not reproduce the deadlock")
	}
	if _, err := back.Minimize(); err != nil {
		t.Errorf("Replay should bind the program for Minimize: %v", err)
	}

	// Replaying against the wrong program must fail loudly.
	if _, err := back.Replay(racyCounter()); err == nil {
		t.Error("cross-program replay succeeded")
	}
}

// TestCounterexampleNeedsViolation: a clean run has nothing to
// capture.
func TestCounterexampleNeedsViolation(t *testing.T) {
	b := progdsl.New("clean").AutoStart()
	x, y := b.Var("x"), b.Var("y")
	b.Thread().Write(x, 1)
	b.Thread().Write(y, 1)
	rep, err := sct.Run(context.Background(), b.Build(), "dfs")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("clean program reported a violation: %+v", rep.Violation)
	}
	if _, err := rep.Counterexample(); err == nil {
		t.Error("Counterexample on a clean run must error")
	}
}
