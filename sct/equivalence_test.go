package sct_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/explore"
	"repro/internal/progdsl"
	"repro/sct"
)

// equivalenceZoo collects small exhaustively explorable programs that
// between them exercise every edge type the engines reason about —
// the facade's slice of the soundness zoo.
func equivalenceZoo() []sct.Source {
	var zoo []sct.Source

	zoo = append(zoo, racyCounter(), deadlocker())

	// Disjoint data under one coarse lock: the lazy relation's
	// headline case.
	b := progdsl.New("coarse-disjoint").AutoStart()
	mu := b.Mutex("mu")
	for i := 0; i < 3; i++ {
		v := b.Var("cell")
		b.Thread().Lock(mu).Read(0, v).AddConst(0, 0, 1).Write(v, 0).Unlock(mu)
	}
	zoo = append(zoo, b.Build())

	// Spawn/join shape: the initial thread forks workers over shared
	// state and audits it.
	s := progdsl.New("fork-audit")
	x := s.Var("x")
	t0 := s.Thread()
	w1 := s.Thread().Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	w2 := s.Thread().Write(x, 7)
	t0.Spawn(w1).Spawn(w2).Join(w1).Join(w2).Read(0, x)
	zoo = append(zoo, s.Build())

	return zoo
}

// TestFacadeVsDirectEquivalence is the facade acceptance gate: for
// every engine reachable through sct.Run, the facade produces
// byte-identical Result counters to the pre-facade direct invocation
// (constructor + explore.Options) across the zoo.
//
// For the parallel engines the Events counter and the Steal
// statistics depend on runtime work distribution (they differ between
// any two runs, facade or not); every coverage and violation counter
// must still match byte for byte, so those two fields are normalised
// before comparing.
func TestFacadeVsDirectEquivalence(t *testing.T) {
	limit, maxSteps := 20000, 2000
	if testing.Short() {
		// The comparison is facade-vs-direct under identical options,
		// so a reduced budget weakens nothing — both sides hit the
		// same limit at the same schedule.
		limit = 1500
	}
	directs := []struct {
		spec     string
		parallel bool
		build    func() explore.Engine
	}{
		{"dfs", false, explore.NewDFS},
		{"dpor", false, func() explore.Engine { return explore.NewDPOR(false) }},
		{"dpor+sleep", false, func() explore.Engine { return explore.NewDPOR(true) }},
		{"lazy-dpor", false, explore.NewLazyDPOR},
		{"hbr-caching", false, explore.NewHBRCache},
		{"lazy-hbr-caching", false, explore.NewLazyHBRCache},
		{"random", false, func() explore.Engine { return explore.NewRandomWalk(1) }},
		{"random:7", false, func() explore.Engine { return explore.NewRandomWalk(7) }},
		{"pct:3", false, func() explore.Engine { return explore.NewPCT(1, 3) }},
		{"pct:2:9", false, func() explore.Engine { return explore.NewPCT(9, 2) }},
		{"pos", false, func() explore.Engine { return explore.NewPOS(1) }},
		{"pos:9", false, func() explore.Engine { return explore.NewPOS(9) }},
		{"pb:2", false, func() explore.Engine { return explore.NewPreemptionBounded(2) }},
		{"pb:1:hbr", false, func() explore.Engine { return explore.NewPreemptionBoundedCache(1, false) }},
		{"pb:1:lazy", false, func() explore.Engine { return explore.NewPreemptionBoundedCache(1, true) }},
		{"db:2", false, func() explore.Engine { return explore.NewDelayBounded(2) }},
		{"chess-pb:3", false, func() explore.Engine { return explore.NewIterativePreemptionBounding(3) }},
		{"chess-db:3", false, func() explore.Engine { return explore.NewIterativeDelayBounding(3) }},
		// chaos:flaky:0 delegates to a fresh DFS immediately — the one
		// chaos configuration that behaves like a real engine, which is
		// what the facade pin can meaningfully compare.
		{"chaos:flaky:0", false, func() explore.Engine {
			e, err := explore.NewChaos(explore.ChaosFlaky, 0)
			if err != nil {
				panic(err)
			}
			return e
		}},
		{"pdfs:2", true, func() explore.Engine { return campaign.NewParallelDFS(2) }},
		{"pdpor:1", true, func() explore.Engine { return campaign.NewParallelDPOR(1) }},
		{"pdpor:2", true, func() explore.Engine { return campaign.NewParallelDPOR(2) }},
		{"pdpor-static:2", true, func() explore.Engine { return campaign.NewParallelDPORStatic(2) }},
		{"prandom:5:2", true, func() explore.Engine { return campaign.NewParallelRandomWalk(5, 2) }},
	}

	// Every registered built-in engine must be covered by the pin
	// (new registrations must extend this test).
	covered := map[string]bool{}
	for _, d := range directs {
		name := d.spec
		for i := range name {
			if name[i] == ':' {
				name = name[:i]
				break
			}
		}
		covered[name] = true
	}
	for _, info := range sct.Engines() {
		if strings.HasPrefix(info.Name, "custom-") {
			continue // test-local registrations (process-global registry)
		}
		if !covered[info.Name] {
			t.Errorf("registered engine %q has no facade-vs-direct pin", info.Name)
		}
	}

	for _, src := range equivalenceZoo() {
		for _, d := range directs {
			rep, err := sct.Run(context.Background(), src, d.spec, sct.WithBounds(limit, maxSteps))
			if err != nil {
				t.Errorf("%s/%s: facade: %v", src.Name(), d.spec, err)
				continue
			}
			want := d.build().Explore(src, explore.Options{ScheduleLimit: limit, MaxSteps: maxSteps})
			got := rep.Result
			if d.parallel {
				got.Events, want.Events = 0, 0
				got.Steal, want.Steal = nil, nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: facade result diverges from direct invocation\n facade: %+v\n direct: %+v",
					src.Name(), d.spec, got, want)
			}
		}
	}
}
