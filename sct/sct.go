// Package sct is the public face of the systematic concurrency tester
// — the one supported entry point for embedding the harness that
// reproduces Thomson & Donaldson's PPoPP'15 schedule-bounding study.
// Everything the internal packages implement (exploration engines,
// the parallel campaign runner, counterexample capture/minimize/
// replay, the Go-closure program harness) is reachable from here, so
// user code never imports repro/internal/....
//
// # Programs
//
// Build a program under test from ordinary Go closures with
// [NewProgram]: each thread announces its visible operations (shared
// reads/writes, lock/unlock, spawn/join, assertions) through the [G]
// handle, and the tester controls their interleaving exactly.
// Anything implementing [Source] — including the internal benchmark
// corpus — explores the same way.
//
// # Exploration
//
// [Run] explores a program's schedule space with a named engine and
// functional options:
//
//	rep, err := sct.Run(ctx, prog, "dpor+sleep",
//	        sct.WithScheduleLimit(100000),
//	        sct.StopAtFirstBug())
//
// Engines are named by registry specs ("dfs", "dpor", "pb:2:lazy",
// "pdpor:4", ...); [Engines] lists what is registered and [Register]
// adds new ones, so third-party engines plug into Run, campaigns and
// the eval tooling without forking.
//
// # Campaigns
//
// [NewCampaign] runs a grid of (benchmark, engine) cells across a
// worker pool and streams each finished cell through a Go iterator:
//
//	camp, _ := sct.NewCampaign(cells, sct.WithWorkers(8))
//	for res := range camp.Results(ctx) { ... }
//
// A partially completed run checkpoint-resumes with
// [Campaign.Resume], which skips every cell already present in a
// saved JSONL stream.
//
// # Counterexamples
//
// When a run finds a violation, [Report.Counterexample] packages it
// as a portable artifact that can be minimized (ddmin +
// preemption lowering), saved, loaded and deterministically replayed:
//
//	cx, _ := rep.Counterexample()
//	cx.Minimize()
//	cx.Save("bug.json")
//	...
//	cx, _ = sct.Load("bug.json")
//	out, err := cx.Replay(prog)
package sct

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/model"
)

// Source is a program whose schedule space can be explored: the
// model-layer contract every program representation (including
// [Program]) satisfies.
type Source = model.Source

// Options is the engine-level configuration a [Run] compiles its
// functional options down to. Custom [Engine] implementations receive
// it in Explore.
type Options = explore.Options

// Result summarises one exploration: schedules executed, distinct
// terminal HBRs / lazy HBRs / states, violation counters, and the
// first-violation witness.
type Result = explore.Result

// Engine is a schedule-exploration strategy. Implementations report a
// stable Name and explore a program's schedule space under the given
// options; register them with [Register] to make them buildable by
// name everywhere engines are named.
type Engine = explore.Engine

// Witness describes one violating terminal execution the moment an
// engine sees it; [OnViolation] callbacks receive it.
type Witness = explore.Witness

// ThreadID identifies a thread of the program under test.
type ThreadID = event.ThreadID

// Event is one executed visible operation in a trace.
type Event = event.Event

// Outcome is a fully recorded single execution: trace, final state,
// failures, races.
type Outcome = exec.Outcome

// StealStats reports how a work-stealing parallel search distributed
// its units (the Result.Steal field).
type StealStats = explore.StealStats

// Report is the outcome of one [Run].
type Report struct {
	Result
	// Violation is non-nil when a safety violation was found; it
	// carries the deterministic reproduction.
	Violation *Violation

	src      Source
	maxSteps int
}

// Violation describes the first safety violation an exploration
// found: its Kind ("deadlock", "assertion failure", "lock misuse",
// "data race"), the violating Schedule (the thread chosen at each
// step) and the replayed Outcome with full trace, failures and races.
type Violation = core.Violation

// Run explores src's schedule space with the named engine. The
// options compile down to the engine-level [Options]; invalid
// combinations error before any exploration work. The engine name is
// a registry spec — see [Engines].
//
// A found violation is replayed into Report.Violation;
// [Report.Counterexample] turns it into a portable artifact.
func Run(ctx context.Context, src Source, engine string, opts ...Option) (*Report, error) {
	if src == nil {
		return nil, errors.New("sct: Run with nil program")
	}
	// Resolve the spec up front for the facade's own diagnostic (it
	// lists every registered name on a miss).
	if _, err := NewEngine(engine); err != nil {
		return nil, err
	}
	cfg, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := cfg.reject("Run", `single-search parallelism is spelled in the engine spec, e.g. "pdpor:8"`,
		"WithWorkers"); err != nil {
		return nil, err
	}
	if err := cfg.reject("Run", "containment is a campaign-runner property: pass it to NewCampaign",
		"WithCellTimeout", "WithRetries"); err != nil {
		return nil, err
	}
	if err := cfg.reject("Run", "heartbeats and flight recorders are campaign-runner properties: pass them to NewCampaign (Run observes via WithObserver)",
		"WithHeartbeat", "WithFlightRecorder"); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	eopt := cfg.exploreOptions(ctx)
	if err := eopt.Validate(); err != nil {
		return nil, fmt.Errorf("sct: %w", err)
	}
	// core.Check is the single implementation of explore + invariant
	// check + violation replay; the facade adds spec resolution,
	// option compilation and the counterexample binding. The engine
	// was already resolved above, so Check's own lookup (which also
	// accepts core's historical engine spellings) cannot miss.
	crep, err := core.Check(src, core.EngineName(engine), eopt)
	rep := &Report{Result: crep.Result, Violation: crep.Violation, src: src, maxSteps: cfg.maxSteps}
	if err != nil {
		return rep, fmt.Errorf("sct: %w", err)
	}
	return rep, nil
}

// Counterexample packages the run's first violation as a portable,
// replayable artifact bound to the explored program. It errors when
// the run saw no violation.
func (r *Report) Counterexample() (*Counterexample, error) {
	return NewCounterexample(r.src, r.Result, r.maxSteps)
}
