package sct_test

import (
	"context"
	"fmt"
	"log"

	"repro/sct"
)

// ExampleRun is the embedding quickstart: build a program under test
// from Go closures, explore every schedule with DPOR + sleep sets,
// and capture the lost-update bug as a minimized, replayable
// counterexample.
func ExampleRun() {
	// Two workers increment a shared counter without locking; the
	// initial thread joins them and audits the count. One increment
	// can be lost — but only under specific interleavings.
	p := sct.NewProgram("lost-update")
	counter := p.Var("counter")

	var workers []sct.ThreadRef
	p.Thread(func(g *sct.G) {
		for _, w := range workers {
			g.Spawn(w)
		}
		for _, w := range workers {
			g.Join(w)
		}
		g.Assert(g.Read(counter) == int64(len(workers)))
	})
	for i := 0; i < 2; i++ {
		workers = append(workers, p.Thread(func(g *sct.G) {
			v := g.Read(counter)
			g.Write(counter, v+1)
		}))
	}

	rep, err := sct.Run(context.Background(), p, "dpor+sleep",
		sct.WithScheduleLimit(10000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedules=%d distinct-states=%d\n", rep.Schedules, rep.DistinctStates)
	if rep.Violation == nil {
		fmt.Println("no violation")
		return
	}
	fmt.Printf("violation=%q\n", rep.Violation.Kind)

	// Package the violation as a portable artifact: minimize it,
	// save it, and replay it deterministically any time (also via
	// sct.Load from disk).
	cx, err := rep.Counterexample()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cx.Minimize(); err != nil {
		log.Fatal(err)
	}
	if _, err := cx.Replay(p); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reproduced %q in %d steps\n", cx.Kind(), len(cx.Choices()))

	// Output:
	// schedules=6 distinct-states=2
	// violation="data race"
	// reproduced "data race" in 10 steps
}
