package sct

import "repro/internal/goharness"

// Program is a program under test built from ordinary Go closures:
// declare shared variables, mutexes and threads, then hand it to
// [Run] (it implements [Source]). Each thread body announces its
// visible operations through the [G] handle, so the tester fully
// controls the interleaving of visible operations even though the Go
// runtime schedules the goroutines themselves.
//
// Thread bodies must be deterministic: all cross-thread communication
// goes through the harness (G.Read/G.Write/G.Lock/...), and bodies
// must not consult ambient nondeterminism (time, map iteration order,
// mutable package state shared across executions).
type Program = goharness.Program

// G is the handle a thread body uses for all visible operations.
type G = goharness.G

// Body is the code of one thread.
type Body = goharness.Body

// Var names a shared variable of a program.
type Var = goharness.Var

// Mutex names a mutex of a program.
type Mutex = goharness.Mutex

// Chan names a channel of a program, declared with Program.Chan(name,
// cap): cap 0 is unbuffered (rendezvous), cap > 0 a FIFO ring. Thread
// bodies operate on it with G.Send/G.Recv/G.TryRecv/G.Close and
// multiplex with G.Select/G.TrySelect; send on closed and close of
// closed are panic violations, and all-threads-channel-blocked is a
// deadlock, exactly as in Go.
type Chan = goharness.Chan

// ThreadRef names a declared thread, for G.Spawn/G.Join.
type ThreadRef = goharness.ThreadRef

// NewProgram returns an empty program under test. Declare state with
// Var/VarInit/Mutex, threads with Thread (the first declared thread
// is the initial one; AutoStart makes all of them initially
// runnable), then explore it with [Run].
func NewProgram(name string) *Program {
	return goharness.New(name)
}
