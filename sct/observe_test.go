package sct_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/sct"
)

// TestRunWithObserver: snapshots flow from a facade Run, the final
// one agrees with the report, and a disabled observer is simply
// absent (no option, no callback).
func TestRunWithObserver(t *testing.T) {
	var snaps []sct.Progress
	rep, err := sct.Run(context.Background(), panicky(), "dpor",
		sct.WithObserver(sct.Observer{
			EverySchedules: 1,
			OnProgress:     func(p sct.Progress) { snaps = append(snaps, p) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("observer never fired")
	}
	final := snaps[len(snaps)-1]
	if final.Schedules != int64(rep.Schedules) {
		t.Errorf("final snapshot schedules = %d, report = %d", final.Schedules, rep.Schedules)
	}
	if final.Program != "panicky" || final.Engine != "dpor" {
		t.Errorf("snapshot identity: %q/%q", final.Program, final.Engine)
	}
}

// TestObservabilityOptionRouting: each observability option is
// accepted exactly where it makes sense and rejected loudly
// everywhere else.
func TestObservabilityOptionRouting(t *testing.T) {
	obs := sct.WithObserver(sct.Observer{OnProgress: func(sct.Progress) {}})
	hb := sct.WithHeartbeat(time.Second, func(sct.Heartbeat) {})
	fl := sct.WithFlightRecorder(t.TempDir())
	cells, err := sct.Grid([]string{"counter-racy-2x2"}, []string{"dfs"}, sct.WithScheduleLimit(10))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sct.Run(context.Background(), panicky(), "dfs", hb); err == nil || !strings.Contains(err.Error(), "WithHeartbeat") {
		t.Errorf("Run accepted WithHeartbeat: %v", err)
	}
	if _, err := sct.Run(context.Background(), panicky(), "dfs", fl); err == nil || !strings.Contains(err.Error(), "WithFlightRecorder") {
		t.Errorf("Run accepted WithFlightRecorder: %v", err)
	}
	for _, tc := range []struct {
		name string
		opt  sct.Option
	}{{"WithObserver", obs}, {"WithHeartbeat", hb}, {"WithFlightRecorder", fl}} {
		if _, err := sct.Grid([]string{"counter-racy-2x2"}, []string{"dfs"}, tc.opt); err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Errorf("Grid accepted %s: %v", tc.name, err)
		}
	}
	if _, err := sct.NewCampaign(cells, obs); err == nil || !strings.Contains(err.Error(), "WithObserver") {
		t.Errorf("NewCampaign accepted WithObserver: %v", err)
	}
	if _, err := sct.NewCampaign(cells, hb, fl); err != nil {
		t.Errorf("NewCampaign rejected its own observability options: %v", err)
	}

	// Malformed arguments fail at option-compile time.
	if _, err := sct.NewCampaign(cells, sct.WithHeartbeat(-time.Second, func(sct.Heartbeat) {})); err == nil {
		t.Error("negative heartbeat cadence accepted")
	}
	if _, err := sct.NewCampaign(cells, sct.WithHeartbeat(time.Second, nil)); err == nil {
		t.Error("nil heartbeat callback accepted")
	}
	if _, err := sct.NewCampaign(cells, sct.WithFlightRecorder("")); err == nil {
		t.Error("empty flight directory accepted")
	}
	if _, err := sct.Run(context.Background(), panicky(), "dfs", sct.WithObserver(sct.Observer{})); err == nil {
		t.Error("observer with nil OnProgress accepted")
	}
}

// TestCampaignMixedStreamResume is the checkpoint-compatibility test
// for heartbeats: a campaign writing heartbeats and results into ONE
// stream (via HeartbeatWriter + JSONLWriter) must still resume — the
// heartbeat lines are skipped, every completed cell is honoured.
func TestCampaignMixedStreamResume(t *testing.T) {
	grid := func() []sct.Cell {
		// synth-10 runs long enough on any box for a 1ms heartbeat
		// cadence to land lines in the stream.
		cells, err := sct.Grid([]string{"synth-10", "counter-racy-2x2"}, []string{"dfs"},
			sct.WithBounds(100000, 2000))
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}

	var stream bytes.Buffer
	camp, err := sct.NewCampaign(grid(),
		sct.WithWorkers(1),
		sct.WithHeartbeat(time.Millisecond, sct.HeartbeatWriter(&stream)))
	if err != nil {
		t.Fatal(err)
	}
	emit := sct.JSONLWriter(&stream)
	ran := 0
	for r := range camp.Results(context.Background()) {
		emit(r)
		ran++
	}
	if ran != 2 {
		t.Fatalf("campaign ran %d cells, want 2", ran)
	}
	if !strings.Contains(stream.String(), `"type":"heartbeat"`) {
		t.Fatal("stream carries no heartbeat lines; the test needs a longer cell")
	}

	// The mixed stream parses back to exactly the cell results...
	results, err := sct.ReadResults(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("ReadResults parsed %d results from the mixed stream, want 2", len(results))
	}
	// ...and a fresh campaign over the same grid resumes fully from it.
	again, err := sct.NewCampaign(grid())
	if err != nil {
		t.Fatal(err)
	}
	n, err := again.Resume(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Resume honoured %d cells from the mixed stream, want 2", n)
	}
	for range again.Results(context.Background()) {
		t.Fatal("fully resumed campaign re-ran a cell")
	}
}

// TestCampaignFlightRecorder: a failing cell in a facade campaign
// leaves a loadable artifact; the healthy cell leaves none.
func TestCampaignFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	cells := []sct.Cell{
		{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: 100, MaxSteps: 2000},
		{Bench: "counter-racy-2x2", Engine: "chaos:panic", ScheduleLimit: 10, MaxSteps: 2000},
	}
	camp, err := sct.NewCampaign(cells, sct.WithWorkers(1), sct.WithFlightRecorder(dir))
	if err != nil {
		t.Fatal(err)
	}
	var failed sct.CellResult
	for r := range camp.Results(context.Background()) {
		if r.Err != "" {
			failed = r
		}
	}
	if failed.FlightPath == "" {
		t.Fatal("failing cell recorded no flight artifact")
	}
	art, err := sct.ReadFlight(failed.FlightPath)
	if err != nil {
		t.Fatal(err)
	}
	if art.Cell != failed.Cell || art.Err == "" {
		t.Errorf("artifact %+v does not describe the failed cell %+v", art.Cell, failed.Cell)
	}
}

// TestHeartbeatIndexRemapping: with a resumed cell in front, streamed
// heartbeat indices still name grid positions, exactly like results.
func TestHeartbeatIndexRemapping(t *testing.T) {
	cells, err := sct.Grid([]string{"counter-racy-2x2", "synth-10"}, []string{"dfs"},
		sct.WithBounds(100000, 2000))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-complete cell 0 so the runner's dense index 0 is grid index 1.
	var checkpoint bytes.Buffer
	pre, err := sct.NewCampaign(cells[:1])
	if err != nil {
		t.Fatal(err)
	}
	emit := sct.JSONLWriter(&checkpoint)
	for r := range pre.Results(context.Background()) {
		emit(r)
	}

	var beats []sct.Heartbeat
	camp, err := sct.NewCampaign(cells,
		sct.WithWorkers(1),
		sct.WithHeartbeat(time.Millisecond, func(h sct.Heartbeat) { beats = append(beats, h) }))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := camp.Resume(bytes.NewReader(checkpoint.Bytes())); err != nil || n != 1 {
		t.Fatalf("Resume = %d, %v; want 1 cell", n, err)
	}
	for range camp.Results(context.Background()) {
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats from the pending synth-10 cell")
	}
	for _, h := range beats {
		if h.Index != 1 || h.Bench != "synth-10" {
			t.Fatalf("heartbeat index %d for %s, want grid index 1 for synth-10", h.Index, h.Bench)
		}
	}
}
