package campaign

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/event"
	"repro/internal/explore"
)

// exactBenches are exhaustively explorable corpus benchmarks spanning
// the violation classes (races, asserts, deadlocks) and family shapes.
var exactBenches = []string{
	"counter-racy-2x2",
	"philosophers-3",
	"ticket-2",
	"prodcons-2p1c-s1-i1",
	"lastzero-3",
	"synth-03",
}

func mustProgram(t *testing.T, name string) bench.Benchmark {
	t.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return bm
}

// TestParallelDFSExactCounts: on exhausted spaces, parallel DFS must
// report byte-identical counters to sequential DFS — schedules,
// terminals, truncations, distinct HBRs/lazy HBRs/states, violation
// class counts and the state set itself. Only Events may differ (each
// unit replays its pinned prefix).
func TestParallelDFSExactCounts(t *testing.T) {
	for _, name := range exactBenches {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			opt := explore.Options{MaxSteps: 2000, RecordStates: true}
			seq := explore.NewDFS().Explore(bm.Program, opt)
			if seq.HitLimit {
				t.Fatalf("sequential DFS unexpectedly hit a limit")
			}
			for _, workers := range []int{2, 4, 7} {
				par := ParallelDFS(bm.Program, opt, workers)
				assertExact(t, workers, seq, par, true)
			}
		})
	}
}

// TestParallelRandomWalkExactCounts: the fanned-out random walk runs
// exactly the same multiset of seeded walks as the sequential engine,
// so every counter must match byte for byte.
func TestParallelRandomWalkExactCounts(t *testing.T) {
	for _, name := range []string{"counter-racy-2x2", "philosophers-3", "peterson-2"} {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			opt := explore.Options{ScheduleLimit: 500, MaxSteps: 2000, RecordStates: true}
			seq := explore.NewRandomWalk(42).Explore(bm.Program, opt)
			for _, workers := range []int{2, 5} {
				par := ParallelRandomWalk(42, bm.Program, opt, workers)
				assertExact(t, workers, seq, par, true)
			}
		})
	}
}

// TestParallelDPORExactCoverage: parallel DPOR explores the partition
// layer exhaustively and full DPOR beneath, so on exhausted spaces its
// distinct-coverage counters and state set must equal sequential
// DPOR's (which in turn equal exhaustive DFS's); #schedules may be
// larger, never smaller.
func TestParallelDPORExactCoverage(t *testing.T) {
	for _, name := range exactBenches {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			opt := explore.Options{MaxSteps: 2000, RecordStates: true}
			seq := explore.NewDPOR(false).Explore(bm.Program, opt)
			if seq.HitLimit {
				t.Fatalf("sequential DPOR unexpectedly hit a limit")
			}
			for _, workers := range []int{2, 4} {
				par := ParallelDPOR(bm.Program, opt, workers)
				if err := par.CheckInvariant(); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par.DistinctHBRs != seq.DistinctHBRs ||
					par.DistinctLazyHBRs != seq.DistinctLazyHBRs ||
					par.DistinctStates != seq.DistinctStates {
					t.Errorf("workers=%d coverage mismatch: par hbrs=%d lazy=%d states=%d, seq hbrs=%d lazy=%d states=%d",
						workers, par.DistinctHBRs, par.DistinctLazyHBRs, par.DistinctStates,
						seq.DistinctHBRs, seq.DistinctLazyHBRs, seq.DistinctStates)
				}
				if !reflect.DeepEqual(par.States, seq.States) {
					t.Errorf("workers=%d state sets differ", workers)
				}
				if par.Schedules < seq.Schedules {
					t.Errorf("workers=%d explored fewer schedules (%d) than sequential DPOR (%d)",
						workers, par.Schedules, seq.Schedules)
				}
				if (par.Deadlocks > 0) != (seq.Deadlocks > 0) || (par.Races > 0) != (seq.Races > 0) {
					t.Errorf("workers=%d violation verdicts differ", workers)
				}
			}
		})
	}
}

// assertExact compares every deterministic counter of two results.
func assertExact(t *testing.T, workers int, seq, par explore.Result, compareStates bool) {
	t.Helper()
	type counts struct {
		Schedules, Terminals, Pruned, Truncated, SleepBlocked  int
		DistinctHBRs, DistinctLazyHBRs, DistinctStates         int
		Deadlocks, AssertFailures, LockErrors, Races, MaxDepth int
		HitLimit                                               bool
	}
	c := func(r explore.Result) counts {
		return counts{r.Schedules, r.Terminals, r.Pruned, r.Truncated, r.SleepBlocked,
			r.DistinctHBRs, r.DistinctLazyHBRs, r.DistinctStates,
			r.Deadlocks, r.AssertFailures, r.LockErrors, r.Races, r.MaxDepth, r.HitLimit}
	}
	if c(seq) != c(par) {
		t.Errorf("workers=%d counters differ:\n seq=%+v\n par=%+v", workers, c(seq), c(par))
	}
	if compareStates && !reflect.DeepEqual(seq.States, par.States) {
		t.Errorf("workers=%d state sets differ:\n seq=%v\n par=%v", workers, seq.States, par.States)
	}
	if err := par.CheckInvariant(); err != nil {
		t.Errorf("workers=%d: %v", workers, err)
	}
}

// TestParallelBackendAblation: the exploration-backend choice is
// invisible to the parallel searches too — parallel DFS and parallel
// random walk must match their sequential counterparts on every
// counter under the undo-log, legacy-snapshot and replay backends
// alike.
func TestParallelBackendAblation(t *testing.T) {
	backends := []explore.BackendKind{
		explore.BackendUndo, explore.BackendSnapshot, explore.BackendReplay,
	}
	for _, name := range []string{"counter-racy-2x2", "philosophers-3"} {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			for _, backend := range backends {
				opt := explore.Options{MaxSteps: 2000, RecordStates: true, Backend: backend}
				seq := explore.NewDFS().Explore(bm.Program, opt)
				par := ParallelDFS(bm.Program, opt, 3)
				assertExact(t, 3, seq, par, true)

				ropt := opt
				ropt.ScheduleLimit = 200
				rseq := explore.NewRandomWalk(42).Explore(bm.Program, ropt)
				rpar := ParallelRandomWalk(42, bm.Program, ropt, 3)
				assertExact(t, 3, rseq, rpar, true)
			}
		})
	}
}

// TestParallelBudgetHonoured: with a schedule limit, the shared budget
// stops the fan-out within workers−1 schedules of the limit.
func TestParallelBudgetHonoured(t *testing.T) {
	bm := mustProgram(t, "filesystem-2")
	const limit, workers = 400, 4
	res := ParallelDFS(bm.Program, explore.Options{ScheduleLimit: limit, MaxSteps: 2000}, workers)
	if !res.HitLimit {
		t.Fatalf("expected HitLimit on a %d-schedule budget", limit)
	}
	if res.Schedules < limit/2 || res.Schedules > limit+workers-1 {
		t.Fatalf("budgeted run executed %d schedules, want ≈%d (≤ limit+workers−1)", res.Schedules, limit)
	}
	// With one worker the shared budget must reproduce the sequential
	// limit exactly.
	solo := ParallelDFS(bm.Program, explore.Options{ScheduleLimit: limit, MaxSteps: 2000}, 1)
	if solo.Schedules != limit || !solo.HitLimit {
		t.Fatalf("workers=1 budgeted run executed %d schedules (hitLimit=%v), want exactly %d",
			solo.Schedules, solo.HitLimit, limit)
	}
}

// TestParallelContextCancel: a cancelled context stops the search and
// marks the result interrupted.
func TestParallelContextCancel(t *testing.T) {
	bm := mustProgram(t, "filesystem-2")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := ParallelDFS(bm.Program, explore.Options{MaxSteps: 2000, Ctx: ctx}, 2)
	if !res.Interrupted {
		t.Fatalf("expected Interrupted from a cancelled context; got %+v", res)
	}
	full := explore.NewDFS().Explore(bm.Program, explore.Options{MaxSteps: 2000})
	if res.Schedules >= full.Schedules {
		t.Fatalf("cancelled run explored the whole space (%d schedules)", res.Schedules)
	}
}

// TestParallelEngineAdapters: the explore.Engine adapters dispatch to
// the right search and carry worker counts in their names.
func TestParallelEngineAdapters(t *testing.T) {
	bm := mustProgram(t, "counter-racy-2x2")
	opt := explore.Options{ScheduleLimit: 200, MaxSteps: 2000}
	for _, eng := range []explore.Engine{
		NewParallelDFS(2), NewParallelDPOR(2), NewParallelRandomWalk(3, 2),
	} {
		res := eng.Explore(bm.Program, opt)
		if res.Schedules == 0 {
			t.Errorf("%s explored nothing", eng.Name())
		}
		if err := res.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
	}
}

// TestFrontierPartition: the partition is a set of mutually
// prefix-free choice sequences — no unit's subtree contains another's.
func TestFrontierPartition(t *testing.T) {
	bm := mustProgram(t, "philosophers-3")
	units := frontier(bm.Program, 16)
	if len(units) < 2 {
		t.Fatalf("frontier produced %d units, want ≥ 2", len(units))
	}
	for i, a := range units {
		for j, b := range units {
			if i == j {
				continue
			}
			if isPrefix(a, b) {
				t.Fatalf("unit %d is a prefix of unit %d: %v ⊑ %v", i, j, a, b)
			}
		}
	}
}

func isPrefix(a, b []event.ThreadID) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStaticPartitionFirstBugDrain: under StopAtFirstBug the static-
// partition searches share a found flag, so units queued behind the
// one that captured the violation drain as no-ops instead of running
// their whole subtree (or walk chunk). The stopped run must therefore
// execute far fewer schedules than the exhaustive (or full-budget)
// run, and its first-bug bookkeeping must stay consistent.
func TestStaticPartitionFirstBugDrain(t *testing.T) {
	bm := mustProgram(t, "philosophers-3")
	const workers = 4
	stop := explore.Options{MaxSteps: 2000, StopAtFirstBug: true}
	full := ParallelDFS(bm.Program, explore.Options{MaxSteps: 2000}, workers)
	if full.FirstViolation == nil {
		t.Fatalf("corpus benchmark lost its deadlock")
	}
	for _, s := range []struct {
		name string
		run  func() explore.Result
	}{
		{"pdfs", func() explore.Result { return ParallelDFS(bm.Program, stop, workers) }},
		{"pdpor-static", func() explore.Result { return ParallelDPORStatic(bm.Program, stop, workers) }},
		{"prandom", func() explore.Result {
			o := stop
			o.ScheduleLimit = 50000
			return ParallelRandomWalk(1, bm.Program, o, workers)
		}},
	} {
		res := s.run()
		if res.FirstViolation == nil {
			t.Fatalf("%s: no violation under StopAtFirstBug", s.name)
		}
		if res.HitLimit {
			t.Errorf("%s: first-bug stop must not report HitLimit", s.name)
		}
		if res.Schedules >= full.Schedules {
			t.Errorf("%s: drained run executed %d schedules, exhaustive run %d — units did not drain",
				s.name, res.Schedules, full.Schedules)
		}
		if res.FirstBugSchedule < 1 || res.FirstBugSchedule > res.Schedules {
			t.Errorf("%s: FirstBugSchedule %d outside [1, %d]", s.name, res.FirstBugSchedule, res.Schedules)
		}
		if err := res.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", s.name, err)
		}
	}
}
