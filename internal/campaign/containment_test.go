package campaign

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestChaosCampaignSurvives is the survivability acceptance test: a
// campaign with a panicking cell, a hanging cell and a
// transiently-failing cell completes every cell — the hostile ones as
// structured errors or healed retries, the healthy ones untouched.
func TestChaosCampaignSurvives(t *testing.T) {
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: 500, MaxSteps: 2000},
		{Bench: "counter-racy-2x2", Engine: "chaos:panic", ScheduleLimit: 10, MaxSteps: 2000},
		{Bench: "counter-racy-2x2", Engine: "chaos:hang", ScheduleLimit: 10, MaxSteps: 2000},
		{Bench: "counter-racy-2x2", Engine: "chaos:flaky:2", ScheduleLimit: 500, MaxSteps: 2000},
		{Bench: "philosophers-3", Engine: "dfs", ScheduleLimit: 500, MaxSteps: 2000},
	}
	r := Runner{
		Workers:      2,
		CellTimeout:  300 * time.Millisecond,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		AbandonGrace: 50 * time.Millisecond,
	}
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("got %d results, want %d", len(results), len(cells))
	}

	panicCell, hangCell, flakyCell := results[1], results[2], results[3]
	if panicCell.Err == "" || !strings.Contains(panicCell.Err, "engine panic") {
		t.Errorf("panic cell: Err = %q, want an engine-panic error", panicCell.Err)
	}
	if panicCell.Attempts != 1 {
		t.Errorf("panic cell: Attempts = %d, want 1 (deterministic failures are not retried)", panicCell.Attempts)
	}
	if hangCell.Err == "" || !strings.Contains(hangCell.Err, "deadline") {
		t.Errorf("hang cell: Err = %q, want a deadline error", hangCell.Err)
	}
	if hangCell.Attempts != 1 {
		t.Errorf("hang cell: Attempts = %d, want 1 (timeouts are not retried)", hangCell.Attempts)
	}
	if flakyCell.Err != "" {
		t.Errorf("flaky cell failed despite retry budget: %q", flakyCell.Err)
	}
	if flakyCell.Attempts != 3 {
		t.Errorf("flaky cell: Attempts = %d, want 3 (two flakes, then success)", flakyCell.Attempts)
	}
	if flakyCell.Result.Schedules == 0 {
		t.Error("flaky cell healed but explored nothing")
	}

	// The healthy cells are byte-identical to a run with no hostile
	// cells at all: containment must never leak into neighbours.
	baseline, err := (&Runner{Workers: 2}).Run(context.Background(),
		[]Cell{cells[0], cells[4]})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range []CellResult{results[0], results[4]} {
		if !reflect.DeepEqual(res.Result, baseline[i].Result) {
			t.Errorf("healthy cell %s: result differs from hostile-free run:\n with=%+v\n without=%+v",
				res.Cell.Bench, res.Result, baseline[i].Result)
		}
		if res.Err != "" || res.Cancelled {
			t.Errorf("healthy cell %s: Err=%q Cancelled=%v", res.Cell.Bench, res.Err, res.Cancelled)
		}
	}

	q := Quarantine(results)
	if len(q) != 2 {
		t.Fatalf("quarantine has %d cells, want 2 (panic + hang): %+v", len(q), q)
	}
	if q[0].Cell.Engine != "chaos:panic" || q[1].Cell.Engine != "chaos:hang" {
		t.Errorf("quarantine order wrong: %s, %s", q[0].Cell.Engine, q[1].Cell.Engine)
	}
}

// TestCellTimeoutReportsPartialResult: an engine that respects
// cancellation returns its partial counters, and the cell reports a
// structured timeout error rather than a bare cancellation.
func TestCellTimeoutReportsPartialResult(t *testing.T) {
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "chaos:stall", ScheduleLimit: 10, MaxSteps: 2000},
	}
	r := Runner{Workers: 1, CellTimeout: 50 * time.Millisecond}
	start := time.Now()
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stalling cell held the campaign for %v", elapsed)
	}
	res := results[0]
	if res.Err == "" || !strings.Contains(res.Err, "cell timeout") {
		t.Fatalf("Err = %q, want a cell-timeout error", res.Err)
	}
	if res.Cancelled {
		t.Error("a per-cell deadline is not a campaign cancellation")
	}
	if res.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", res.Attempts)
	}
}

// TestRetryRespectsCampaignCancel: retry sleeps give up promptly when
// the campaign context dies.
func TestRetryRespectsCampaignCancel(t *testing.T) {
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "chaos:flaky:1000", ScheduleLimit: 10, MaxSteps: 2000},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	r := Runner{Workers: 1, Retries: 1000, RetryBackoff: 10 * time.Millisecond}
	results, err := r.Run(ctx, cells)
	if err == nil {
		t.Fatal("want the context error surfaced from Run")
	}
	if len(results) != 1 || !results[0].Cancelled {
		t.Fatalf("results = %+v, want one cancelled cell", results)
	}
}

// TestZeroValueRunnerKeepsLegacyBehaviour: without containment knobs,
// a failing engine build is still a per-cell error and healthy cells
// report Attempts.
func TestZeroValueRunnerKeepsLegacyBehaviour(t *testing.T) {
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: 100, MaxSteps: 2000},
	}
	results, err := (&Runner{}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != "" || results[0].Attempts != 1 {
		t.Fatalf("zero-value runner: Err=%q Attempts=%d", results[0].Err, results[0].Attempts)
	}
}

// flushCountingWriter records Flush/Sync calls interleaved with
// writes, standing in for a *bufio.Writer over an *os.File.
type flushCountingWriter struct {
	bytes.Buffer
	flushes, syncs int
}

func (w *flushCountingWriter) Flush() error { w.flushes++; return nil }
func (w *flushCountingWriter) Sync() error  { w.syncs++; return nil }

// TestJSONLWriterFlushesEveryCell: the stream is durable after every
// result, not only at campaign end.
func TestJSONLWriterFlushesEveryCell(t *testing.T) {
	w := &flushCountingWriter{}
	emit := JSONLWriter(w)
	emit(CellResult{Cell: Cell{Bench: "a", Engine: "dfs"}})
	if w.flushes != 1 || w.syncs != 1 {
		t.Fatalf("after one cell: flushes=%d syncs=%d, want 1/1", w.flushes, w.syncs)
	}
	emit(CellResult{Cell: Cell{Bench: "b", Engine: "dfs"}})
	if w.flushes != 2 || w.syncs != 2 {
		t.Fatalf("after two cells: flushes=%d syncs=%d, want 2/2", w.flushes, w.syncs)
	}
}

// TestReadJSONLTruncatedTail: a stream whose final line was cut by a
// crash yields the complete prefix plus ErrTruncatedTail; garbage
// mid-stream stays a hard error.
func TestReadJSONLTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	emit := JSONLWriter(&buf)
	emit(CellResult{Index: 0, Cell: Cell{Bench: "a", Engine: "dfs"}})
	emit(CellResult{Index: 1, Cell: Cell{Bench: "b", Engine: "dfs"}})
	whole := buf.String()

	// Cut the final line mid-JSON.
	cut := whole[:len(whole)-10]
	got, err := ReadJSONL(strings.NewReader(cut))
	if !errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("err = %v, want ErrTruncatedTail", err)
	}
	if len(got) != 1 || got[0].Cell.Bench != "a" {
		t.Fatalf("prefix = %+v, want the one complete result", got)
	}

	// The intact stream parses clean.
	if got, err := ReadJSONL(strings.NewReader(whole)); err != nil || len(got) != 2 {
		t.Fatalf("intact stream: %v, %d results", err, len(got))
	}

	// Garbage followed by a valid line is corruption, not truncation.
	bad := "{\"cell\":{\"bench\":\"a\",\"eng" + "\n" + strings.SplitAfter(whole, "\n")[0]
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil || errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("mid-stream corruption err = %v, want a hard error", err)
	}
}
