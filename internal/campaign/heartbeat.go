package campaign

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/explore"
)

// HeartbeatType is the value of Heartbeat.Type — the discriminator
// that lets heartbeat lines share a JSONL stream with cell results
// (cell-result lines carry no "type" field; ReadJSONL and resume skip
// every line that does).
const HeartbeatType = "heartbeat"

// DefaultHeartbeatEvery is the heartbeat cadence when
// Runner.HeartbeatEvery is unset.
const DefaultHeartbeatEvery = time.Second

// Heartbeat is one liveness record for an in-flight campaign cell:
// which cell is running, which attempt it is on, how much work it has
// done and how fast. Heartbeats flow through Runner.OnHeartbeat
// (serialised with OnResult, so JSONL streams stay line-atomic) and
// are pure telemetry — dropping them changes nothing.
type Heartbeat struct {
	// Type is always HeartbeatType; it distinguishes heartbeat lines
	// from cell-result lines in a mixed JSONL stream.
	Type string `json:"type"`
	// Index is the cell's position in the campaign grid; Bench and
	// Engine identify it.
	Index  int        `json:"index"`
	Bench  string     `json:"bench"`
	Engine EngineSpec `json:"engine"`
	// Attempt is the cell's current attempt number (1-based; > 1
	// while retrying transient failures).
	Attempt int `json:"attempt"`
	// Schedules, Events and MaxDepth are the cell's live exploration
	// counters so far (across all its attempts).
	Schedules int64 `json:"schedules"`
	Events    int64 `json:"events"`
	MaxDepth  int64 `json:"max_depth,omitempty"`
	// SchedulesPerSec is the cell's aggregate schedule rate since it
	// started.
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	// Backend is the resolved backtracking backend, once known.
	Backend string `json:"backend,omitempty"`
	// ElapsedMS is the cell's wall clock so far, in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// makeHeartbeat samples one heartbeat from a cell's live counters.
func makeHeartbeat(index int, c Cell, attempt int, ctr *explore.Counters, start time.Time) Heartbeat {
	elapsed := time.Since(start)
	h := Heartbeat{
		Type:      HeartbeatType,
		Index:     index,
		Bench:     c.Bench,
		Engine:    c.Engine,
		Attempt:   attempt,
		ElapsedMS: elapsed.Milliseconds(),
	}
	if ctr != nil {
		h.Schedules = ctr.Schedules.Load()
		h.Events = ctr.Events.Load()
		h.MaxDepth = ctr.MaxDepth.Load()
		h.Backend = ctr.Backend()
		if s := elapsed.Seconds(); s > 0 {
			h.SchedulesPerSec = float64(h.Schedules) / s
		}
	}
	return h
}

// HeartbeatJSONL returns an OnHeartbeat callback that streams each
// heartbeat as one JSON line to w, with the same flush/sync behaviour
// as JSONLWriter — point both at the same writer to interleave
// heartbeats with cell results in one checkpoint-resumable stream.
func HeartbeatJSONL(w io.Writer) func(Heartbeat) {
	enc := json.NewEncoder(w)
	return func(h Heartbeat) {
		_ = enc.Encode(h)
		if f, ok := w.(interface{ Flush() error }); ok {
			_ = f.Flush()
		}
		if s, ok := w.(interface{ Sync() error }); ok {
			_ = s.Sync()
		}
	}
}
