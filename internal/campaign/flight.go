package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/explore"
)

// FlightArtifact is the structured dump the runner writes when a cell
// with an armed flight recorder fails (quarantine, cell timeout,
// engine panic, exhausted retries): the cell, its error, per-attempt
// timings, the final counter snapshot, and the ring of most recent
// executions — a debuggable trace where there used to be one Err
// line. The artifact lands in Runner.FlightDir as
// flight__<bench>__<engine>.json (engine spec sanitised like repro
// artifact names).
type FlightArtifact struct {
	Cell      Cell                  `json:"cell"`
	Err       string                `json:"error"`
	Attempts  int                   `json:"attempts"`
	AttemptMS []int64               `json:"attempt_ms,omitempty"`
	Progress  explore.Progress      `json:"progress"`
	Entries   []explore.FlightEntry `json:"entries"`
}

// sanitizeSpec makes an engine spec filename-safe, matching the repro
// artifact naming convention.
var sanitizeSpec = strings.NewReplacer(":", "-", "/", "-", "[", "", "]", "")

// FlightPath returns the artifact path a failing cell dumps to under
// dir.
func FlightPath(dir string, c Cell) string {
	return filepath.Join(dir, fmt.Sprintf("flight__%s__%s.json", c.Bench, sanitizeSpec.Replace(string(c.Engine))))
}

// dumpFlight writes the flight artifact for a failed cell, atomically
// (temp file + rename) so a half-written dump never shadows a
// complete one. The write is best-effort: a dump failure is appended
// to the cell's Err rather than masking the original failure.
func dumpFlight(dir string, out *CellResult, ctr *explore.Counters, flight *explore.FlightRecorder) {
	art := FlightArtifact{
		Cell:      out.Cell,
		Err:       out.Err,
		Attempts:  out.Attempts,
		AttemptMS: out.AttemptMS,
		Entries:   flight.Snapshot(),
	}
	if ctr != nil {
		art.Progress = ctr.Snapshot()
		art.Progress.Program = out.Cell.Bench
		art.Progress.Engine = string(out.Cell.Engine)
	}
	path := FlightPath(dir, out.Cell)
	if err := writeFlightFile(dir, path, art); err != nil {
		out.Err += "; flight dump failed: " + err.Error()
		return
	}
	out.FlightPath = path
}

func writeFlightFile(dir, path string, art FlightArtifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".flight-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFlight loads a flight artifact written by a campaign with
// Runner.FlightDir set.
func ReadFlight(path string) (FlightArtifact, error) {
	var art FlightArtifact
	data, err := os.ReadFile(path)
	if err != nil {
		return art, err
	}
	if err := json.Unmarshal(data, &art); err != nil {
		return art, fmt.Errorf("campaign: bad flight artifact %s: %w", path, err)
	}
	return art, nil
}
