// Parallel single-search exploration: one engine's schedule space is
// partitioned into disjoint subtrees (or walk-index ranges for the
// random engine) that workers drain from a shared queue, deduplicating
// terminal HBRs/states through one lock-striped explore.Dedup so the
// merged #HBRs/#lazy HBRs/#states counters stay exact.
//
// Exactness guarantees, for deterministic programs explored to
// exhaustion (no limit, no deadline):
//
//   - ParallelDFS matches sequential DFS on every counter, including
//     #schedules (disjoint subtrees partition the set of maximal
//     paths; Events differs because each unit replays its prefix).
//   - ParallelRandomWalk matches sequential NewRandomWalk byte for
//     byte on all counters: walk i is seeded from (seed, i), so the
//     fan-out executes exactly the same multiset of walks.
//   - ParallelDPOR explores the top of the tree exhaustively (the
//     partition layer) and runs full DPOR beneath every unit, so its
//     distinct-coverage counters (#HBRs, #lazy HBRs, #states) equal
//     sequential DPOR's; #schedules is ≥ the sequential count because
//     no reduction is applied across the partition layer itself.
//
// With a schedule limit, the shared explore.Budget is honoured to
// within workers−1 schedules, but which schedules run first depends on
// worker interleaving.
package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/model"
)

// unitFactor is how many work units the partitioner aims to create per
// worker; a surplus keeps workers busy when subtree sizes are skewed.
const unitFactor = 8

// workers normalises a worker-count knob.
func normWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// frontier enumerates disjoint schedule prefixes of src that jointly
// cover its whole space: a breadth-first expansion that stops once at
// least targetUnits prefixes exist (or every prefix is terminal).
// Terminal prefixes stay in the result — they are complete schedules
// the unit engine records as such.
func frontier(src model.Source, targetUnits int) [][]event.ThreadID {
	// maxSplitDepth caps the partition layer: load balance never
	// needs deep splits, and the cap bounds the replay cost of the
	// breadth-first expansion.
	const maxSplitDepth = 32
	type node struct {
		prefix []event.ThreadID
		closed bool
	}
	queue := []node{{}}
	var enabled []event.ThreadID
	for {
		// Find the shallowest expandable prefix.
		expand := -1
		for i, n := range queue {
			if !n.closed && (expand < 0 || len(n.prefix) < len(queue[expand].prefix)) {
				expand = i
			}
		}
		if expand < 0 || len(queue) >= targetUnits {
			break
		}
		n := queue[expand]
		m := model.NewMachine(src)
		for _, t := range n.prefix {
			m.Step(t)
		}
		enabled = m.EnabledThreads(enabled)
		m.Abort()
		// Keep the prefix as a unit when it is terminal or sits at
		// the depth cap. Single-choice states are stepped through in
		// place: they add no breadth but may lead to branching (e.g.
		// a spawn prologue executed by one thread).
		if len(enabled) == 0 || len(n.prefix) >= maxSplitDepth {
			queue[expand].closed = true
			continue
		}
		if len(enabled) == 1 {
			queue[expand].prefix = append(append([]event.ThreadID(nil), n.prefix...), enabled[0])
			continue
		}
		children := make([]node, 0, len(enabled))
		for _, t := range enabled {
			child := append(append([]event.ThreadID(nil), n.prefix...), t)
			children = append(children, node{prefix: child})
		}
		queue = append(queue[:expand], append(children, queue[expand+1:]...)...)
	}
	out := make([][]event.ThreadID, len(queue))
	for i, n := range queue {
		out[i] = n.prefix
	}
	return out
}

// mergeUnits folds per-unit results into one Result whose distinct
// counters come from the shared dedup. Units must be passed in
// partition order so FirstViolation is deterministic.
func mergeUnits(name string, src model.Source, opt explore.Options, dedup *explore.Dedup, units []explore.Result) explore.Result {
	merged := explore.Result{Program: src.Name(), Engine: name}
	for _, u := range units {
		merged.Schedules += u.Schedules
		merged.Terminals += u.Terminals
		merged.Pruned += u.Pruned
		merged.Truncated += u.Truncated
		merged.SleepBlocked += u.SleepBlocked
		merged.Divergences += u.Divergences
		merged.Deadlocks += u.Deadlocks
		merged.AssertFailures += u.AssertFailures
		merged.Panics += u.Panics
		merged.LockErrors += u.LockErrors
		merged.Races += u.Races
		merged.Events += u.Events
		if u.MaxDepth > merged.MaxDepth {
			merged.MaxDepth = u.MaxDepth
		}
		merged.HitLimit = merged.HitLimit || u.HitLimit
		merged.Interrupted = merged.Interrupted || u.Interrupted
		if merged.FirstViolation == nil && u.FirstViolation != nil {
			merged.FirstViolation = u.FirstViolation
			merged.ViolationKind = u.ViolationKind
			// Schedules-to-first-bug in the deterministic unit order:
			// units merged before this one ran to completion without a
			// witness, so their schedules all precede the bug.
			merged.FirstBugSchedule = merged.Schedules - u.Schedules + u.FirstBugSchedule
		}
	}
	merged.DistinctHBRs, merged.DistinctLazyHBRs, merged.DistinctStates = dedup.Counts()
	if opt.RecordStates {
		merged.States = dedup.SortedStates()
	}
	return merged
}

// runUnits drains the unit queue with a worker pool, collecting
// results in unit order.
func runUnits(workers, n int, run func(i int) explore.Result) []explore.Result {
	out := make([]explore.Result, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers && w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = run(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// subtreeSearch partitions src's schedule tree and explores every
// subtree with mk-built engines sharing one dedup and budget. (The
// DFS and DPOR engines run here don't prune by fingerprint cache;
// explorations of the caching engines can share an
// explore.ShardedCache through Options.Cache the same way.)
func subtreeSearch(name string, mk func() explore.Engine, src model.Source, opt explore.Options, workers int) explore.Result {
	workers = normWorkers(workers)
	dedup := explore.NewDedup()
	budget := explore.NewBudget(opt.ScheduleLimit)
	prefixes := frontier(src, workers*unitFactor)

	unitOpt := opt
	unitOpt.ScheduleLimit = 0
	unitOpt.Dedup = dedup
	unitOpt.SharedBudget = budget

	// bugFound flips once any unit's search captured a violation under
	// StopAtFirstBug: units already running stop at their own first
	// bug, units not yet started drain as no-ops — mirroring
	// workStealDPOR — so a first-bug cell stops costing budget the
	// moment the bug is found instead of letting sibling subtrees run
	// to exhaustion.
	var bugFound atomic.Bool
	units := runUnits(workers, len(prefixes), func(i int) explore.Result {
		if opt.StopAtFirstBug && bugFound.Load() {
			return explore.Result{}
		}
		if budget != nil && budget.Exhausted() {
			return explore.Result{HitLimit: true}
		}
		o := unitOpt
		o.Prefix = prefixes[i]
		res := mk().Explore(src, o)
		if opt.StopAtFirstBug && res.FirstViolation != nil {
			bugFound.Store(true)
		}
		return res
	})
	return mergeUnits(name, src, opt, dedup, units)
}

// ParallelDFS explores src's full schedule space with exhaustive DFS
// fanned across workers (≤0 means GOMAXPROCS). On exhausted spaces
// every counter except Events matches sequential explore.NewDFS.
func ParallelDFS(src model.Source, opt explore.Options, workers int) explore.Result {
	return subtreeSearch(fmt.Sprintf("pdfs[%d]", normWorkers(workers)),
		explore.NewDFS, src, opt, workers)
}

// ParallelDPOR explores src with work-stealing DPOR: one DPOR search
// spans all workers, exchanging frontier units (donated pending
// backtrack branches, and backtrack points escaping a unit's prefix)
// over a striped steal deque with a shared claim table, so the
// partial-order reduction survives the fan-out. On exhausted spaces
// with SleepSets off, every counter except Events — including
// #schedules — is byte-identical to sequential explore.NewDPOR for
// every backend and worker count. With SleepSets the coverage counters
// (#HBRs/#lazy HBRs/#states) remain exact while #schedules and
// #sleep-blocked depend on unit boundaries. Result.Steal carries the
// worker/unit statistics.
func ParallelDPOR(src model.Source, opt explore.Options, workers int) explore.Result {
	workers = normWorkers(workers)
	outcomes, dedup, stats := workStealDPOR(src, opt, workers)
	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].key < outcomes[j].key })
	units := make([]explore.Result, len(outcomes))
	for i, o := range outcomes {
		units[i] = o.res
	}
	res := mergeUnits(fmt.Sprintf("pdpor[%d]", workers), src, opt, dedup, units)
	res.Steal = &stats
	return res
}

// ParallelDPORStatic is the pre-work-stealing parallel DPOR: full DPOR
// beneath an exhaustively partitioned top layer. Its distinct-coverage
// counters match sequential DPOR but #schedules is ≥ the sequential
// count — the partition layer itself applies no reduction. Kept as the
// ablation baseline the work-stealing engine is measured against.
func ParallelDPORStatic(src model.Source, opt explore.Options, workers int) explore.Result {
	sleep := opt.SleepSets
	return subtreeSearch(fmt.Sprintf("pdpor-static[%d]", normWorkers(workers)),
		func() explore.Engine { return explore.NewDPOR(sleep) }, src, opt, workers)
}

// randomChunk is how many walk indices a worker claims at a time.
const randomChunk = 64

// ParallelRandomWalk runs the seeded random-walk baseline with walk
// indices fanned across workers in chunks. Counters are byte-identical
// to sequential explore.NewRandomWalk(seed) under the same
// ScheduleLimit on deterministic programs.
func ParallelRandomWalk(seed int64, src model.Source, opt explore.Options, workers int) explore.Result {
	workers = normWorkers(workers)
	limit := opt.ScheduleLimit
	if limit <= 0 {
		limit = 1000
	}
	dedup := explore.NewDedup()
	unitOpt := opt
	unitOpt.ScheduleLimit = 0
	unitOpt.Dedup = dedup

	// The same found-flag drain as subtreeSearch: under StopAtFirstBug,
	// walk chunks that have not started yet become no-ops once any
	// chunk found a violation.
	var bugFound atomic.Bool
	nchunks := (limit + randomChunk - 1) / randomChunk
	units := runUnits(workers, nchunks, func(i int) explore.Result {
		if opt.StopAtFirstBug && bugFound.Load() {
			return explore.Result{}
		}
		first := i * randomChunk
		n := randomChunk
		if first+n > limit {
			n = limit - first
		}
		if unitOpt.Ctx != nil && unitOpt.Ctx.Err() != nil {
			return explore.Result{Interrupted: true}
		}
		res := explore.NewRandomWalkRange(seed, first, n).Explore(src, unitOpt)
		if opt.StopAtFirstBug && res.FirstViolation != nil {
			bugFound.Store(true)
		}
		return res
	})
	res := mergeUnits(fmt.Sprintf("prandom[%d]", workers), src, opt, dedup, units)
	// Exhausting the walk budget counts as hitting the limit, matching
	// the sequential baseline — which also leaves HitLimit unset when a
	// first-bug stop (not the budget) ended the run.
	if !res.Interrupted && !(opt.StopAtFirstBug && res.FirstViolation != nil) {
		res.HitLimit = true
	}
	return res
}

// parallelEngine adapts the parallel searches to explore.Engine so
// campaigns and benchmarks can treat them like any other engine.
type parallelEngine struct {
	kind    string
	workers int
	seed    int64
}

// NewParallelDFS returns ParallelDFS as an explore.Engine.
func NewParallelDFS(workers int) explore.Engine {
	return &parallelEngine{kind: "pdfs", workers: workers}
}

// NewParallelDPOR returns the work-stealing ParallelDPOR as an
// explore.Engine.
func NewParallelDPOR(workers int) explore.Engine {
	return &parallelEngine{kind: "pdpor", workers: workers}
}

// NewParallelDPORStatic returns the static-partition baseline
// ParallelDPORStatic as an explore.Engine.
func NewParallelDPORStatic(workers int) explore.Engine {
	return &parallelEngine{kind: "pdpor-static", workers: workers}
}

// NewParallelRandomWalk returns ParallelRandomWalk as an
// explore.Engine.
func NewParallelRandomWalk(seed int64, workers int) explore.Engine {
	return &parallelEngine{kind: "prandom", workers: workers, seed: seed}
}

// Name implements explore.Engine.
func (e *parallelEngine) Name() string {
	return fmt.Sprintf("%s[%d]", e.kind, normWorkers(e.workers))
}

// Explore implements explore.Engine.
func (e *parallelEngine) Explore(src model.Source, opt explore.Options) explore.Result {
	switch e.kind {
	case "pdpor":
		return ParallelDPOR(src, opt, e.workers)
	case "pdpor-static":
		return ParallelDPORStatic(src, opt, e.workers)
	case "prandom":
		return ParallelRandomWalk(e.seed, src, opt, e.workers)
	default:
		return ParallelDFS(src, opt, e.workers)
	}
}
