package campaign

import (
	"math/bits"
	"runtime"
	"sync"
	"testing"

	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/hb"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// stealWorkerCounts is the worker grid the exactness contract is pinned
// at (the ISSUE's acceptance criterion).
var stealWorkerCounts = []int{1, 2, 4, 8}

// TestWorkStealDPORExact is the work-stealing engine's exactness
// contract: on exhausted spaces without sleep sets, every counter
// except Events — including #schedules — is byte-identical to
// sequential DPOR for every backend and every worker count. This is
// the reduction-preserving property the static partition lacked.
func TestWorkStealDPORExact(t *testing.T) {
	backends := []explore.BackendKind{
		explore.BackendUndo, explore.BackendSnapshot, explore.BackendReplay,
	}
	for _, name := range exactBenches {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			for _, backend := range backends {
				opt := explore.Options{MaxSteps: 2000, RecordStates: true, Backend: backend}
				seq := explore.NewDPOR(false).Explore(bm.Program, opt)
				if seq.HitLimit {
					t.Fatalf("sequential DPOR unexpectedly hit a limit")
				}
				for _, workers := range stealWorkerCounts {
					par := ParallelDPOR(bm.Program, opt, workers)
					assertExact(t, workers, seq, par, true)
					if par.Steal == nil || par.Steal.Workers != workers {
						t.Errorf("backend=%v workers=%d: missing or wrong steal stats: %+v",
							backend, workers, par.Steal)
					}
				}
			}
		})
	}
}

// TestWorkStealDPORRecoversReduction pins the point of the PR: the
// work-stealing engine's schedule count equals sequential DPOR's, while
// the static-partition engine it replaces explores strictly more
// schedules on benchmarks whose races cross the partition layer.
func TestWorkStealDPORRecoversReduction(t *testing.T) {
	reduced := false
	for _, name := range exactBenches {
		bm := mustProgram(t, name)
		opt := explore.Options{MaxSteps: 2000}
		seq := explore.NewDPOR(false).Explore(bm.Program, opt)
		for _, workers := range []int{4} {
			steal := ParallelDPOR(bm.Program, opt, workers)
			static := ParallelDPORStatic(bm.Program, opt, workers)
			if steal.Schedules != seq.Schedules {
				t.Errorf("%s: work-stealing DPOR explored %d schedules, sequential %d",
					name, steal.Schedules, seq.Schedules)
			}
			if static.Schedules < seq.Schedules {
				t.Errorf("%s: static partition explored fewer schedules (%d) than sequential (%d)",
					name, static.Schedules, seq.Schedules)
			}
			if static.Schedules > seq.Schedules {
				reduced = true
			}
		}
	}
	if !reduced {
		t.Errorf("no zoo benchmark showed the static partition over-exploring; the reduction-recovery claim is vacuous here")
	}
}

// TestWorkStealDPORSleepCoverage: with sleep sets the schedule list is
// order-dependent across unit boundaries, but the distinct-coverage
// counters and the state set must still match sequential DPOR+sleep.
func TestWorkStealDPORSleepCoverage(t *testing.T) {
	for _, name := range exactBenches {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			opt := explore.Options{MaxSteps: 2000, RecordStates: true, SleepSets: true}
			seq := explore.NewDPOR(true).Explore(bm.Program, opt)
			for _, workers := range []int{2, 4} {
				par := ParallelDPOR(bm.Program, opt, workers)
				if err := par.CheckInvariant(); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if par.DistinctHBRs != seq.DistinctHBRs ||
					par.DistinctLazyHBRs != seq.DistinctLazyHBRs ||
					par.DistinctStates != seq.DistinctStates {
					t.Errorf("workers=%d coverage mismatch: par hbrs=%d lazy=%d states=%d, seq hbrs=%d lazy=%d states=%d",
						workers, par.DistinctHBRs, par.DistinctLazyHBRs, par.DistinctStates,
						seq.DistinctHBRs, seq.DistinctLazyHBRs, seq.DistinctStates)
				}
			}
		})
	}
}

// TestWorkStealDPORShippedSleepExact pins the sleep-set shipping
// contract. Forced donation fragments the search into one unit per
// branch, so every unit's root sleep set comes from the shipping path
// (the TrackerSeed route the ROADMAP item calls for) instead of the
// engine's local inheritance. With one worker the search is fully
// deterministic and must be byte-identical to sequential DPOR+sleep —
// including #schedules and #sleep-blocked, the counters the unshipped
// scheme inflated. At higher worker counts claim order is timing-
// dependent (sleep sets make the schedule list order-dependent), so
// there the pinned properties are exact coverage plus the pruning
// actually biting: no more schedules than the sleep-free search.
func TestWorkStealDPORShippedSleepExact(t *testing.T) {
	forceDonate = true
	defer func() { forceDonate = false }()
	for _, name := range exactBenches {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			opt := explore.Options{MaxSteps: 2000, RecordStates: true, SleepSets: true}
			seq := explore.NewDPOR(true).Explore(bm.Program, opt)
			noSleep := explore.NewDPOR(false).Explore(bm.Program, explore.Options{MaxSteps: 2000})

			solo := ParallelDPOR(bm.Program, opt, 1)
			assertExact(t, 1, seq, solo, true)
			if solo.SleepBlocked != seq.SleepBlocked {
				t.Errorf("workers=1: sleep-blocked %d, sequential %d", solo.SleepBlocked, seq.SleepBlocked)
			}
			if solo.Steal.Units < seq.Schedules/2 {
				t.Errorf("forced donation shipped only %d units over %d schedules; the shipping path is not exercised",
					solo.Steal.Units, solo.Schedules)
			}

			for _, workers := range []int{2, 4} {
				par := ParallelDPOR(bm.Program, opt, workers)
				if par.DistinctHBRs != seq.DistinctHBRs ||
					par.DistinctLazyHBRs != seq.DistinctLazyHBRs ||
					par.DistinctStates != seq.DistinctStates {
					t.Errorf("workers=%d coverage mismatch: par hbrs=%d lazy=%d states=%d, seq hbrs=%d lazy=%d states=%d",
						workers, par.DistinctHBRs, par.DistinctLazyHBRs, par.DistinctStates,
						seq.DistinctHBRs, seq.DistinctLazyHBRs, seq.DistinctStates)
				}
				if par.Schedules > noSleep.Schedules {
					t.Errorf("workers=%d: shipped sleep sets explored %d schedules, more than sleep-free DPOR's %d",
						workers, par.Schedules, noSleep.Schedules)
				}
			}
		})
	}
}

// TestWorkStealDPORForcedDonationExact extends the no-sleep exactness
// contract to maximal fragmentation: even when every pending branch is
// donated as its own unit, the claim table keeps the merged counters —
// including #schedules — byte-identical to sequential DPOR.
func TestWorkStealDPORForcedDonationExact(t *testing.T) {
	forceDonate = true
	defer func() { forceDonate = false }()
	for _, name := range exactBenches {
		name := name
		t.Run(name, func(t *testing.T) {
			bm := mustProgram(t, name)
			opt := explore.Options{MaxSteps: 2000, RecordStates: true}
			seq := explore.NewDPOR(false).Explore(bm.Program, opt)
			for _, workers := range stealWorkerCounts {
				par := ParallelDPOR(bm.Program, opt, workers)
				assertExact(t, workers, seq, par, true)
			}
		})
	}
}

// TestWorkStealDPORBudget: the shared budget stops the work-stealing
// search within workers−1 schedules of the limit, and a one-worker run
// reproduces the sequential limit exactly.
func TestWorkStealDPORBudget(t *testing.T) {
	bm := mustProgram(t, "synth-03") // 299 DPOR schedules: comfortably above the limit
	const limit, workers = 100, 4
	res := ParallelDPOR(bm.Program, explore.Options{ScheduleLimit: limit, MaxSteps: 2000}, workers)
	if !res.HitLimit {
		t.Fatalf("expected HitLimit on a %d-schedule budget", limit)
	}
	if res.Schedules < limit/2 || res.Schedules > limit+workers-1 {
		t.Fatalf("budgeted run executed %d schedules, want ≈%d (≤ limit+workers−1)", res.Schedules, limit)
	}
	solo := ParallelDPOR(bm.Program, explore.Options{ScheduleLimit: limit, MaxSteps: 2000}, 1)
	if solo.Schedules != limit || !solo.HitLimit {
		t.Fatalf("workers=1 budgeted run executed %d schedules (hitLimit=%v), want exactly %d",
			solo.Schedules, solo.HitLimit, limit)
	}
}

// TestWorkStealDPORFuzzCorpus extends the exactness contract from the
// fixed soundness zoo to generated programs: on every fuzz-corpus
// program whose space sequential DPOR exhausts, the work-stealing
// engine must report byte-identical counters at every worker count.
// The acceptance bar is ≥100 compared programs; inputs that decode to
// nothing or blow the probe budget are skipped, so the corpus is
// oversized.
func TestWorkStealDPORFuzzCorpus(t *testing.T) {
	corpus := progdsl.FuzzCorpus(140, 7)
	workerCounts := stealWorkerCounts
	if testing.Short() {
		corpus = corpus[:40]
		workerCounts = []int{1, 4}
	}
	compared := 0
	for i, data := range corpus {
		src := progdsl.FromBytes(progdsl.CorpusName("steal-fuzz", i), data)
		if src == nil {
			continue
		}
		opt := explore.Options{ScheduleLimit: 5000, MaxSteps: 500, RecordStates: true}
		seq := explore.NewDPOR(false).Explore(src, opt)
		if seq.HitLimit {
			continue
		}
		compared++
		for _, workers := range workerCounts {
			par := ParallelDPOR(src, opt, workers)
			assertExact(t, workers, seq, par, true)
			if t.Failed() {
				t.Fatalf("first divergence on corpus entry %d (bytes %v)", i, data)
			}
		}
	}
	min := 100
	if testing.Short() {
		min = 30
	}
	if compared < min {
		t.Errorf("only %d corpus programs were exhaustible and compared, want ≥ %d", compared, min)
	}
}

// TestStealQueueOrder pins the deque discipline: a worker pops its own
// stripe LIFO, steals other stripes FIFO, and termination requires
// every pushed unit to be completed.
func TestStealQueueOrder(t *testing.T) {
	q := newStealQueue(2)
	mk := func(ts ...event.ThreadID) *wsUnit { return &wsUnit{prefix: ts} }
	q.push(0, mk(0))
	q.push(0, mk(1))
	q.push(0, mk(2))

	if u := q.tryPop(0); len(u.prefix) != 1 || u.prefix[0] != 2 {
		t.Fatalf("own-stripe pop is not LIFO: got %v", u.prefix)
	}
	if u := q.tryPop(1); len(u.prefix) != 1 || u.prefix[0] != 0 {
		t.Fatalf("steal is not FIFO: got %v", u.prefix)
	}
	if got := q.stolen.Load(); got != 1 {
		t.Fatalf("stolen counter = %d, want 1", got)
	}
	if u := q.tryPop(1); u.prefix[0] != 1 {
		t.Fatalf("second steal got %v", u.prefix)
	}
	if u := q.tryPop(0); u != nil {
		t.Fatalf("empty queue popped %v", u.prefix)
	}
	q.complete()
	q.complete()
	q.complete()
	if q.outstanding.Load() != 0 {
		t.Fatalf("outstanding = %d after all completions", q.outstanding.Load())
	}
	// With outstanding at zero, next must terminate instead of spinning.
	if u := q.next(0); u != nil {
		t.Fatalf("next returned %v after termination", u.prefix)
	}
}

// TestStealQueueRaceStress hammers the deque from GOMAXPROCS
// goroutines under the race detector: every pushed unit must be popped
// exactly once and termination detection must fire exactly when the
// last unit completes.
func TestStealQueueRaceStress(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const perWorker = 200
	q := newStealQueue(workers)
	// Seed one unit per worker; each popped unit spawns children until
	// its ID space is exhausted, mimicking donation.
	for w := 0; w < workers; w++ {
		q.push(w, &wsUnit{prefix: []event.ThreadID{event.ThreadID(w)}})
	}
	var popped atomic64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				u := q.next(w)
				if u == nil {
					return
				}
				popped.add(1)
				if len(u.prefix) < perWorker/50 {
					q.push(w, &wsUnit{prefix: append(append([]event.ThreadID(nil), u.prefix...), 0)})
					q.push(w, &wsUnit{prefix: append(append([]event.ThreadID(nil), u.prefix...), 1)})
				}
				q.complete()
			}
		}(w)
	}
	wg.Wait()
	if got := popped.load(); got != q.pushed.Load() {
		t.Fatalf("popped %d units, pushed %d", got, q.pushed.Load())
	}
	if q.outstanding.Load() != 0 {
		t.Fatalf("outstanding = %d after drain", q.outstanding.Load())
	}
}

// TestNodeTableClaims: publish/claim must hand out each branch exactly
// once under concurrent claiming.
func TestNodeTableClaims(t *testing.T) {
	tab := newNodeTable()
	key := prefixKey([]event.ThreadID{0, 1, 2})
	if fresh, _, _ := tab.publish(key, 0b001, 0b110, nil); fresh != 0b110 {
		t.Fatalf("publish returned fresh=%b, want 110", fresh)
	}
	if fresh, _, _ := tab.claim(key, 0b111); fresh != 0 {
		t.Fatalf("claim of taken branches returned %b, want 0", fresh)
	}
	if fresh, prior, _ := tab.claim(key, 0b1011); fresh != 0b1000 || prior != 0b111 {
		t.Fatalf("claim returned fresh=%b prior=%b, want 1000/111", fresh, prior)
	}

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	var granted atomic64
	tab.publish("shared", 0, 0, nil)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bit := 0; bit < 64; bit++ {
				fresh, _, _ := tab.claim("shared", 1<<uint(bit))
				granted.add(int64(bits.OnesCount64(fresh)))
			}
		}()
	}
	wg.Wait()
	if granted.load() != 64 {
		t.Fatalf("concurrent claims granted %d branches, want 64", granted.load())
	}
}

// TestDedupRaceStress hammers the lock-striped explore.Dedup with
// overlapping digests from GOMAXPROCS goroutines and checks the final
// distinct counts against a single-threaded reference.
func TestDedupRaceStress(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const distinct = 500
	mkFP := func(i int) hb.Fingerprint {
		return hb.Fingerprint{uint64(i) * 0x9e3779b97f4a7c15, uint64(i)}
	}
	mkSig := func(i int) model.StateSig {
		return model.StateSig{uint64(i), uint64(i) * 0x85ebca77c2b2ae63}
	}
	d := explore.NewDedup()
	var fresh atomic64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker inserts every key, in a different order, so
			// each insertion races with workers−1 duplicates.
			for k := 0; k < distinct; k++ {
				i := (k*7 + w*13) % distinct
				if d.AddHBR(mkFP(i)) {
					fresh.add(1)
				}
				if d.AddLazy(mkFP(i + distinct)) {
					fresh.add(1)
				}
				if d.AddState(mkSig(i)) {
					fresh.add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	hbrs, lazies, states := d.Counts()
	if hbrs != distinct || lazies != distinct || states != distinct {
		t.Fatalf("counts = (%d,%d,%d), want (%d,%d,%d)", hbrs, lazies, states, distinct, distinct, distinct)
	}
	if fresh.load() != 3*distinct {
		t.Fatalf("freshness attributed %d times, want %d (each key exactly once)", fresh.load(), 3*distinct)
	}
}

// atomic64 is a tiny counter helper (sync/atomic.Int64 spelled out so
// the test reads as what it races on).
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
