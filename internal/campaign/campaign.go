// Package campaign batches schedule-exploration work the way the
// paper's evaluation does: a campaign is a grid of (benchmark, engine)
// cells, and the runner executes independent cells concurrently across
// a worker pool, streaming one JSON-serialisable result per cell as it
// completes. The package also provides the parallel single-search
// engines (parallel.go) that split one benchmark's schedule space
// across the same worker budget.
package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/model"
)

// Cell is one unit of campaign work: a benchmark explored by one
// engine configuration.
type Cell struct {
	// Bench names a corpus benchmark (bench.ByName).
	Bench string `json:"bench"`
	// Engine is the engine configuration to run.
	Engine EngineSpec `json:"engine"`
	// ScheduleLimit and MaxSteps mirror explore.Options; zero values
	// keep the engine defaults.
	ScheduleLimit int `json:"schedule_limit,omitempty"`
	MaxSteps      int `json:"max_steps,omitempty"`
	// RecordStates retains the distinct terminal state keys in the
	// result (costly on large spaces).
	RecordStates bool `json:"record_states,omitempty"`
	// StopAtFirstBug runs the cell in bug-finding mode: the engine
	// stops at the first terminal violation and the result's
	// FirstBugSchedule reports the schedules-to-first-bug metric.
	StopAtFirstBug bool `json:"stop_at_first_bug,omitempty"`
	// StallTimeoutMS arms the divergence watchdog
	// (explore.Options.StallTimeout) for this cell, in milliseconds —
	// an int64 rather than a time.Duration so Cell stays a plain
	// comparable JSON value. 0 disables the watchdog.
	StallTimeoutMS int64 `json:"stall_timeout_ms,omitempty"`
}

// CellResult is one completed cell, the unit of the runner's streaming
// JSON output.
type CellResult struct {
	// Index is the cell's position in the campaign, so consumers of
	// the completion-ordered stream can restore input order.
	Index int  `json:"index"`
	Cell  Cell `json:"cell"`
	// Result is the exploration summary; meaningful when Err is
	// empty.
	Result explore.Result `json:"result"`
	// ElapsedMS is the cell's wall-clock cost in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Cancelled marks a cell the campaign context ended: either
	// mid-cell — Result then holds the partial counters the engine
	// had accumulated (Result.Interrupted is set) — or before the
	// cell started, in which case Result is empty. Either way the
	// cell is flushed to the stream instead of silently dropped, so a
	// consumer can tell "never ran" from "ran partially" from "done".
	Cancelled bool `json:"cancelled,omitempty"`
	// Attempts is how many times the cell's engine was invoked: 1 for
	// a healthy cell, more when transient failures were retried
	// (Runner.Retries). 0 means the cell never reached its engine
	// (unknown benchmark, bad spec, cancelled before start).
	Attempts int `json:"attempts,omitempty"`
	// AttemptMS records each attempt's wall-clock cost in
	// milliseconds, in attempt order — the per-attempt breakdown of
	// ElapsedMS (which also includes retry backoff sleeps).
	AttemptMS []int64 `json:"attempt_ms,omitempty"`
	// FlightPath is where the cell's flight-recorder artifact was
	// dumped; set only for failed cells under a Runner with FlightDir.
	FlightPath string `json:"flight,omitempty"`
	// Err describes a cell-level failure (unknown benchmark, bad
	// engine spec, invalid options, invariant violation, engine
	// panic, cell deadline, exhausted retries). A cell with Err set
	// is quarantined: its failure is contained and reported without
	// poisoning the rest of the campaign.
	Err string `json:"error,omitempty"`
}

// Runner executes campaign cells concurrently. The zero value runs
// every cell once with no deadline — exactly the pre-containment
// behaviour; the fault-containment knobs (CellTimeout, Retries) are
// opt-in per campaign.
type Runner struct {
	// Workers is the number of cells explored concurrently; <= 0
	// uses GOMAXPROCS.
	Workers int
	// OnResult, when non-nil, receives each cell result as it
	// completes (serialised; completion order). Use JSONLWriter to
	// stream results as JSON lines.
	OnResult func(CellResult)

	// OnHeartbeat, when non-nil, receives periodic liveness records
	// for every in-flight cell (see Heartbeat). Heartbeats are
	// serialised with OnResult on the same lock, so pointing
	// HeartbeatJSONL and JSONLWriter at one stream yields interleaved
	// but line-atomic output; ReadJSONL and resume skip the heartbeat
	// lines.
	OnHeartbeat func(Heartbeat)
	// HeartbeatEvery is the heartbeat cadence; <= 0 uses
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration

	// FlightDir, when non-empty, arms a flight recorder on every cell
	// and dumps a FlightArtifact (recent schedule prefixes, timings,
	// final counters) into this directory whenever a cell fails —
	// quarantine, cell timeout or engine panic. Healthy cells dump
	// nothing.
	FlightDir string

	// CellTimeout bounds each cell attempt's wall clock. An attempt
	// that exceeds it is interrupted through its context; one that
	// also ignores the interrupt past AbandonGrace has its goroutine
	// abandoned. Either way the cell completes with a structured Err
	// (and any partial counters the engine surrendered) and the rest
	// of the campaign proceeds. 0 means no per-cell deadline.
	CellTimeout time.Duration
	// Retries is how many additional attempts a cell gets when its
	// engine fails transiently — panics with an
	// explore.TransientError. Non-transient panics and deadline
	// overruns are never retried. 0 means fail on the first fault.
	Retries int
	// RetryBackoff is the delay before the first retry, doubling per
	// subsequent attempt with deterministic per-cell jitter; 0 uses
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// AbandonGrace is how long a deadline-overrunning attempt gets to
	// observe its cancelled context and return partial counters before
	// its goroutine is abandoned; 0 uses DefaultAbandonGrace.
	AbandonGrace time.Duration
}

// Containment defaults; see the Runner fields of the same names.
const (
	DefaultRetryBackoff = 10 * time.Millisecond
	DefaultAbandonGrace = 250 * time.Millisecond
)

// Run executes every cell, respecting ctx (nil means background), and
// returns the results in input order. Cell-level failures are reported
// in CellResult.Err, not as an error; the returned error is non-nil
// only when ctx ended the campaign early.
func (r *Runner) Run(ctx context.Context, cells []Cell) ([]CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]CellResult, len(cells))
	var next atomic.Int64
	var emitMu sync.Mutex
	// Heartbeats share the emit lock with results so a JSONL stream
	// carrying both stays line-atomic.
	emitHB := func(h Heartbeat) {
		if r.OnHeartbeat == nil {
			return
		}
		emitMu.Lock()
		r.OnHeartbeat(h)
		emitMu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(cells); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				var res CellResult
				if ctx.Err() != nil {
					// The campaign was cancelled before this cell
					// started: flush a marker line rather than leaving
					// a hole in the stream and a zero value in the
					// returned slice.
					res = CellResult{Index: i, Cell: cells[i], Cancelled: true}
				} else {
					res = r.runCell(ctx, i, cells[i], emitHB)
				}
				out[i] = res
				if r.OnResult != nil {
					emitMu.Lock()
					r.OnResult(res)
					emitMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// runCell executes one cell with fault containment: each attempt runs
// in its own goroutine under the cell deadline, panics are recovered
// into structured errors, transient failures are retried with backoff,
// and a hung attempt is abandoned rather than hanging the worker. The
// named return lets the deferred timing write reach the caller.
func (r *Runner) runCell(ctx context.Context, index int, c Cell, emitHB func(Heartbeat)) (out CellResult) {
	out = CellResult{Index: index, Cell: c}
	start := time.Now()
	defer func() { out.ElapsedMS = time.Since(start).Milliseconds() }()

	bm, ok := bench.ByName(c.Bench)
	if !ok {
		out.Err = fmt.Sprintf("unknown benchmark %q", c.Bench)
		return out
	}
	// The engine is built once and reused across retry attempts, so
	// stateful engines (the chaos engine's flaky mode, seeded
	// samplers) see the cell's attempt history, not a fresh instance.
	eng, err := c.Engine.Build()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	opt := explore.Options{
		ScheduleLimit:  c.ScheduleLimit,
		MaxSteps:       c.MaxSteps,
		RecordStates:   c.RecordStates,
		StopAtFirstBug: c.StopAtFirstBug,
		StallTimeout:   time.Duration(c.StallTimeoutMS) * time.Millisecond,
	}
	if err := opt.Validate(); err != nil {
		out.Err = err.Error()
		return out
	}

	// Telemetry: heartbeats and the flight recorder both hang off a
	// per-cell counter set the engine publishes into at schedule
	// boundaries. Counters and the flight ring stay safe to read even
	// if an abandoned attempt goroutine is still running behind a
	// dumped artifact.
	var ctr *explore.Counters
	var flight *explore.FlightRecorder
	if r.OnHeartbeat != nil || r.FlightDir != "" {
		ctr = explore.NewCounters()
		opt.Counters = ctr
	}
	if r.FlightDir != "" {
		flight = explore.NewFlightRecorder(0)
		opt.Flight = flight
		defer func() {
			if out.Err != "" {
				dumpFlight(r.FlightDir, &out, ctr, flight)
			}
		}()
	}
	var attemptNo atomic.Int64
	if r.OnHeartbeat != nil {
		every := r.HeartbeatEvery
		if every <= 0 {
			every = DefaultHeartbeatEvery
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		// Join, don't just signal: once runCell returns, no heartbeat
		// for this cell may still be in flight — every heartbeat
		// happens before the cell's result, and none can outlive
		// Runner.Run.
		defer func() { close(stop); <-done }()
		go func() {
			defer close(done)
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					emitHB(makeHeartbeat(index, c, int(attemptNo.Load()), ctr, start))
				}
			}
		}()
	}

	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		attemptNo.Store(int64(attempt))
		attemptStart := time.Now()
		res, err := r.runAttempt(ctx, eng, bm.Program, opt)
		out.AttemptMS = append(out.AttemptMS, time.Since(attemptStart).Milliseconds())
		out.Result = res
		if err == nil {
			if res.Interrupted {
				// Mid-cell campaign cancellation: keep the partial
				// counters but mark the cell so downstream analysis
				// never mistakes them for a finished exploration. (A
				// cell-deadline interruption arrives as err instead.)
				out.Cancelled = true
				return out
			}
			if err := res.CheckInvariant(); err != nil {
				out.Err = err.Error()
			}
			return out
		}
		var te explore.TransientError
		retryable := errors.As(err, &te)
		if !retryable || attempt > r.Retries || ctx.Err() != nil {
			out.Err = err.Error()
			out.Cancelled = ctx.Err() != nil
			return out
		}
		if !sleepCtx(ctx, retryDelay(r.RetryBackoff, index, attempt)) {
			out.Err = err.Error()
			out.Cancelled = true
			return out
		}
	}
}

// runAttempt runs one engine invocation in a child goroutine under the
// per-cell deadline, converting panics into errors. A non-nil error
// means the attempt failed (the result still carries any partial
// counters the engine surrendered on its way out); errors wrapping
// explore.TransientError are the only retryable ones.
func (r *Runner) runAttempt(ctx context.Context, eng explore.Engine, src model.Source, opt explore.Options) (explore.Result, error) {
	attemptCtx := ctx
	cancel := func() {}
	if r.CellTimeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, r.CellTimeout)
	}
	defer cancel()
	opt.Ctx = attemptCtx

	type outcome struct {
		res explore.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				if te, ok := rec.(explore.TransientError); ok {
					done <- outcome{err: te}
					return
				}
				done <- outcome{err: fmt.Errorf("engine panic: %v", rec)}
			}
		}()
		done <- outcome{res: eng.Explore(src, opt)}
	}()

	var o outcome
	select {
	case o = <-done:
	case <-attemptCtx.Done():
		// Deadline or campaign cancellation: give the engine the grace
		// window to observe its context and surrender partial counters.
		grace := r.AbandonGrace
		if grace <= 0 {
			grace = DefaultAbandonGrace
		}
		timer := time.NewTimer(grace)
		defer timer.Stop()
		select {
		case o = <-done:
		case <-timer.C:
			// The attempt ignored its cancelled context: abandon its
			// goroutine (it parks forever or burns a leaked thread —
			// contained either way) and fail the cell structurally.
			return explore.Result{}, fmt.Errorf(
				"campaign: cell attempt exceeded its deadline and ignored cancellation for %v; attempt goroutine abandoned", grace)
		}
	}
	if o.err != nil {
		return o.res, o.err
	}
	if o.res.Interrupted && ctx.Err() == nil && attemptCtx.Err() != nil {
		// The per-cell deadline (not the campaign context) interrupted
		// the attempt: surface it as a structured cell failure carrying
		// the partial counters.
		return o.res, fmt.Errorf("campaign: cell timeout after %v (partial result: %d schedules)", r.CellTimeout, o.res.Schedules)
	}
	return o.res, nil
}

// retryDelay is the backoff before retry number attempt (1-based):
// exponential in the attempt with a deterministic per-cell jitter, so
// colliding retry storms decorrelate without making campaigns
// nondeterministic in their timing decisions.
func retryDelay(base time.Duration, index, attempt int) time.Duration {
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	d := base << uint(attempt-1)
	// splitmix64 over (cell index, attempt) — deterministic jitter in
	// [0, d/2].
	z := uint64(index)*0x9e3779b97f4a7c15 + uint64(attempt)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(d/2+1))
}

// sleepCtx sleeps for d or until ctx is cancelled; it reports whether
// the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Quarantine returns the failed cells (Err set) in input order — the
// campaign's quarantine report: every cell here was contained (its
// fault did not stop the campaign) but needs attention.
func Quarantine(results []CellResult) []CellResult {
	var out []CellResult
	for _, r := range results {
		if r.Err != "" {
			out = append(out, r)
		}
	}
	return out
}

// Grid builds the cell cross product of benchmarks × engine specs.
func Grid(benches []string, engines []EngineSpec, scheduleLimit, maxSteps int) []Cell {
	cells := make([]Cell, 0, len(benches)*len(engines))
	for _, b := range benches {
		for _, e := range engines {
			cells = append(cells, Cell{
				Bench:         b,
				Engine:        e,
				ScheduleLimit: scheduleLimit,
				MaxSteps:      maxSteps,
			})
		}
	}
	return cells
}

// FirstError returns the first cell failure in input order, or nil.
func FirstError(results []CellResult) error {
	for _, r := range results {
		if r.Err != "" {
			return fmt.Errorf("campaign: %s/%s: %s", r.Cell.Bench, r.Cell.Engine, r.Err)
		}
	}
	return nil
}

// JSONLWriter returns an OnResult callback that streams each cell
// result as one JSON line to w. Each line is flushed — and, when w can
// sync (an *os.File), fsynced — as it is written, so a campaign killed
// mid-run leaves every completed cell durable on disk with at most the
// in-flight line truncated (which ReadJSONL tolerates).
func JSONLWriter(w io.Writer) func(CellResult) {
	enc := json.NewEncoder(w)
	return func(r CellResult) {
		_ = enc.Encode(r)
		if f, ok := w.(interface{ Flush() error }); ok {
			_ = f.Flush()
		}
		if s, ok := w.(interface{ Sync() error }); ok {
			_ = s.Sync()
		}
	}
}

// ErrTruncatedTail reports that a JSONL result stream ended in a
// partial line — the signature of a campaign killed mid-write. The
// complete prefix is still returned; errors.Is distinguishes this
// recoverable truncation from mid-stream corruption.
var ErrTruncatedTail = errors.New("campaign: result stream ends in a truncated line")

// IsTelemetryLine reports whether a JSONL line is a typed telemetry
// record (heartbeat, progress) rather than a cell result: cell-result
// lines never carry a top-level "type" field. Telemetry lines are
// skipped by ReadJSONL and checkpoint resume, so a stream carrying
// both stays resumable.
func IsTelemetryLine(line []byte) bool {
	var probe struct {
		Type string `json:"type"`
	}
	return json.Unmarshal(line, &probe) == nil && probe.Type != ""
}

// ReadJSONL consumes a stream of JSON-line cell results, e.g. the
// output of a `eval -fig campaign -json` run. A stream whose final
// line is cut short (the writer was killed mid-write) returns every
// complete result together with an error wrapping ErrTruncatedTail; a
// bad line followed by further results is corruption and fails hard.
// Typed telemetry lines (heartbeats) sharing the stream are skipped.
func ReadJSONL(r io.Reader) ([]CellResult, error) {
	var out []CellResult
	var tailErr error
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if tailErr != nil {
			// The bad line was not the stream's tail after all.
			return nil, tailErr
		}
		if IsTelemetryLine(line) {
			continue
		}
		var res CellResult
		if err := json.Unmarshal(line, &res); err != nil {
			tailErr = fmt.Errorf("campaign: bad result line: %w", err)
			continue
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tailErr != nil {
		return out, fmt.Errorf("%d complete results, then %v: %w", len(out), tailErr, ErrTruncatedTail)
	}
	return out, nil
}
