// Package campaign batches schedule-exploration work the way the
// paper's evaluation does: a campaign is a grid of (benchmark, engine)
// cells, and the runner executes independent cells concurrently across
// a worker pool, streaming one JSON-serialisable result per cell as it
// completes. The package also provides the parallel single-search
// engines (parallel.go) that split one benchmark's schedule space
// across the same worker budget.
package campaign

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/explore"
)

// Cell is one unit of campaign work: a benchmark explored by one
// engine configuration.
type Cell struct {
	// Bench names a corpus benchmark (bench.ByName).
	Bench string `json:"bench"`
	// Engine is the engine configuration to run.
	Engine EngineSpec `json:"engine"`
	// ScheduleLimit and MaxSteps mirror explore.Options; zero values
	// keep the engine defaults.
	ScheduleLimit int `json:"schedule_limit,omitempty"`
	MaxSteps      int `json:"max_steps,omitempty"`
	// RecordStates retains the distinct terminal state keys in the
	// result (costly on large spaces).
	RecordStates bool `json:"record_states,omitempty"`
	// StopAtFirstBug runs the cell in bug-finding mode: the engine
	// stops at the first terminal violation and the result's
	// FirstBugSchedule reports the schedules-to-first-bug metric.
	StopAtFirstBug bool `json:"stop_at_first_bug,omitempty"`
}

// CellResult is one completed cell, the unit of the runner's streaming
// JSON output.
type CellResult struct {
	// Index is the cell's position in the campaign, so consumers of
	// the completion-ordered stream can restore input order.
	Index int  `json:"index"`
	Cell  Cell `json:"cell"`
	// Result is the exploration summary; meaningful when Err is
	// empty.
	Result explore.Result `json:"result"`
	// ElapsedMS is the cell's wall-clock cost in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Cancelled marks a cell the campaign context ended: either
	// mid-cell — Result then holds the partial counters the engine
	// had accumulated (Result.Interrupted is set) — or before the
	// cell started, in which case Result is empty. Either way the
	// cell is flushed to the stream instead of silently dropped, so a
	// consumer can tell "never ran" from "ran partially" from "done".
	Cancelled bool `json:"cancelled,omitempty"`
	// Err describes a cell-level failure (unknown benchmark, bad
	// engine spec, invalid options, invariant violation).
	Err string `json:"error,omitempty"`
}

// Runner executes campaign cells concurrently.
type Runner struct {
	// Workers is the number of cells explored concurrently; <= 0
	// uses GOMAXPROCS.
	Workers int
	// OnResult, when non-nil, receives each cell result as it
	// completes (serialised; completion order). Use JSONLWriter to
	// stream results as JSON lines.
	OnResult func(CellResult)
}

// Run executes every cell, respecting ctx (nil means background), and
// returns the results in input order. Cell-level failures are reported
// in CellResult.Err, not as an error; the returned error is non-nil
// only when ctx ended the campaign early.
func (r *Runner) Run(ctx context.Context, cells []Cell) ([]CellResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]CellResult, len(cells))
	var next atomic.Int64
	var emitMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(cells); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				var res CellResult
				if ctx.Err() != nil {
					// The campaign was cancelled before this cell
					// started: flush a marker line rather than leaving
					// a hole in the stream and a zero value in the
					// returned slice.
					res = CellResult{Index: i, Cell: cells[i], Cancelled: true}
				} else {
					res = runCell(ctx, i, cells[i])
				}
				out[i] = res
				if r.OnResult != nil {
					emitMu.Lock()
					r.OnResult(res)
					emitMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// runCell executes one cell. The named return lets the deferred
// timing write reach the caller.
func runCell(ctx context.Context, index int, c Cell) (out CellResult) {
	out = CellResult{Index: index, Cell: c}
	start := time.Now()
	defer func() { out.ElapsedMS = time.Since(start).Milliseconds() }()

	bm, ok := bench.ByName(c.Bench)
	if !ok {
		out.Err = fmt.Sprintf("unknown benchmark %q", c.Bench)
		return out
	}
	eng, err := c.Engine.Build()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	opt := explore.Options{
		ScheduleLimit:  c.ScheduleLimit,
		MaxSteps:       c.MaxSteps,
		RecordStates:   c.RecordStates,
		StopAtFirstBug: c.StopAtFirstBug,
		Ctx:            ctx,
	}
	if err := opt.Validate(); err != nil {
		out.Err = err.Error()
		return out
	}
	out.Result = eng.Explore(bm.Program, opt)
	if out.Result.Interrupted {
		// Mid-cell cancellation: keep the partial counters but mark
		// the cell so downstream analysis never mistakes them for a
		// finished exploration.
		out.Cancelled = true
	}
	if err := out.Result.CheckInvariant(); err != nil {
		out.Err = err.Error()
	}
	return out
}

// Grid builds the cell cross product of benchmarks × engine specs.
func Grid(benches []string, engines []EngineSpec, scheduleLimit, maxSteps int) []Cell {
	cells := make([]Cell, 0, len(benches)*len(engines))
	for _, b := range benches {
		for _, e := range engines {
			cells = append(cells, Cell{
				Bench:         b,
				Engine:        e,
				ScheduleLimit: scheduleLimit,
				MaxSteps:      maxSteps,
			})
		}
	}
	return cells
}

// FirstError returns the first cell failure in input order, or nil.
func FirstError(results []CellResult) error {
	for _, r := range results {
		if r.Err != "" {
			return fmt.Errorf("campaign: %s/%s: %s", r.Cell.Bench, r.Cell.Engine, r.Err)
		}
	}
	return nil
}

// JSONLWriter returns an OnResult callback that streams each cell
// result as one JSON line to w.
func JSONLWriter(w io.Writer) func(CellResult) {
	enc := json.NewEncoder(w)
	return func(r CellResult) { _ = enc.Encode(r) }
}

// ReadJSONL consumes a stream of JSON-line cell results, e.g. the
// output of a `eval -fig campaign -json` run.
func ReadJSONL(r io.Reader) ([]CellResult, error) {
	var out []CellResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var res CellResult
		if err := json.Unmarshal(line, &res); err != nil {
			return nil, fmt.Errorf("campaign: bad result line: %w", err)
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
