package campaign

import (
	"repro/internal/engines"
	"repro/internal/explore"
)

// The parallel single-search engines self-register with the shared
// engine registry: any binary that links the campaign runner can build
// them by spec name next to the sequential engines. Worker counts
// default to GOMAXPROCS (0), seeds to 1 — the same defaults the spec
// grammar always had.
func init() {
	engines.Register(engines.Info{
		Name: "pdfs", Usage: "pdfs[:W]", Parallel: true,
		Summary: "parallel DFS over W workers (static schedule-tree partition)",
		Build: func(argv []string) (explore.Engine, error) {
			w, err := engines.IntArg(argv, 0, 0)
			if err != nil {
				return nil, err
			}
			return NewParallelDFS(w), nil
		},
	})
	engines.Register(engines.Info{
		Name: "pdpor", Usage: "pdpor[:W]", Parallel: true,
		Summary: "work-stealing parallel DPOR over W workers",
		Grid:    []string{"pdpor:1", "pdpor:2", "pdpor:4"},
		Build: func(argv []string) (explore.Engine, error) {
			w, err := engines.IntArg(argv, 0, 0)
			if err != nil {
				return nil, err
			}
			return NewParallelDPOR(w), nil
		},
	})
	engines.Register(engines.Info{
		Name: "pdpor-static", Usage: "pdpor-static[:W]", Parallel: true,
		Summary: "static-partition parallel DPOR (work-stealing ablation baseline)",
		Build: func(argv []string) (explore.Engine, error) {
			w, err := engines.IntArg(argv, 0, 0)
			if err != nil {
				return nil, err
			}
			return NewParallelDPORStatic(w), nil
		},
	})
	engines.Register(engines.Info{
		Name: "prandom", Usage: "prandom[:seed[:W]]", Parallel: true,
		Summary: "parallel seeded random walk",
		Build: func(argv []string) (explore.Engine, error) {
			seed, err := engines.IntArg(argv, 0, 1)
			if err != nil {
				return nil, err
			}
			w, err := engines.IntArg(argv, 1, 0)
			if err != nil {
				return nil, err
			}
			return NewParallelRandomWalk(int64(seed), w), nil
		},
	})
}
