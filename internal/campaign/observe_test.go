package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/engines"
	"repro/internal/explore"
)

// TestObserverDoesNotPerturbResults pins the tentpole's no-perturbation
// contract: for every engine in the canonical grid × every backend,
// running with full telemetry armed (shared counters, a tight-cadence
// observer and a flight recorder) yields a Result byte-identical to a
// bare run, and the final counters agree with the Result. Steal stats
// are zeroed before comparison — work distribution is timing-dependent
// by design, with or without telemetry.
func TestObserverDoesNotPerturbResults(t *testing.T) {
	backends := []explore.BackendKind{
		explore.BackendAuto, explore.BackendUndo, explore.BackendSnapshot, explore.BackendReplay,
	}
	for _, spec := range engines.DefaultGrid() {
		for _, backend := range backends {
			spec, backend := spec, backend
			t.Run(spec+"/"+backend.String(), func(t *testing.T) {
				t.Parallel()
				// Sequential engines get a racy program under a limit;
				// parallel ones exhaust a tiny bug-free space so the
				// merged Result is independent of worker timing.
				name, limit := "counter-racy-2x2", 400
				if strings.HasPrefix(spec, "pdpor") {
					name, limit = "coarse-shared-2", 0
				}
				bm, ok := bench.ByName(name)
				if !ok {
					t.Fatalf("missing benchmark %s", name)
				}
				run := func(observe bool) (explore.Result, *explore.Counters, int) {
					eng, err := engines.Build(spec)
					if err != nil {
						t.Fatal(err)
					}
					opt := explore.Options{ScheduleLimit: limit, MaxSteps: 2000, Backend: backend}
					var ctr *explore.Counters
					var mu sync.Mutex
					snaps := 0
					if observe {
						ctr = explore.NewCounters()
						opt.Counters = ctr
						opt.Observer = &explore.Observer{
							EverySchedules: 16,
							OnProgress: func(explore.Progress) {
								mu.Lock()
								snaps++
								mu.Unlock()
							},
						}
						opt.Flight = explore.NewFlightRecorder(8)
					}
					res := eng.Explore(bm.Program, opt)
					return res, ctr, snaps
				}
				plain, _, _ := run(false)
				observed, ctr, snaps := run(true)
				plain.Steal, observed.Steal = nil, nil
				if !reflect.DeepEqual(plain, observed) {
					t.Errorf("telemetry perturbed the result:\n bare=%+v\n observed=%+v", plain, observed)
				}
				if snaps == 0 {
					t.Error("observer never fired")
				}
				if got := int(ctr.Schedules.Load()); got != observed.Schedules {
					t.Errorf("Counters.Schedules = %d, Result.Schedules = %d", got, observed.Schedules)
				}
				if got := ctr.Events.Load(); got != observed.Events {
					t.Errorf("Counters.Events = %d, Result.Events = %d", got, observed.Events)
				}
				if got := int(ctr.Terminals.Load()); got != observed.Terminals {
					t.Errorf("Counters.Terminals = %d, Result.Terminals = %d", got, observed.Terminals)
				}
			})
		}
	}
}

// TestRunnerHeartbeats: a runner with a tight heartbeat cadence emits
// well-formed heartbeats for in-flight cells, and makeHeartbeat's
// rate/identity fields hold.
func TestRunnerHeartbeats(t *testing.T) {
	// synth-10 at this limit runs for hundreds of milliseconds, so a
	// 1ms cadence produces beats even on a single-core box.
	cells := Grid([]string{"synth-10"}, []EngineSpec{"dfs"}, 100000, 2000)
	var mu sync.Mutex
	var beats []Heartbeat
	r := Runner{
		Workers:        1,
		HeartbeatEvery: time.Millisecond,
		OnHeartbeat: func(h Heartbeat) {
			mu.Lock()
			beats = append(beats, h)
			mu.Unlock()
		},
	}
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(beats) == 0 {
		t.Fatal("no heartbeats from a multi-ms cell at 1ms cadence")
	}
	last := int64(-1)
	for _, h := range beats {
		if h.Type != HeartbeatType {
			t.Fatalf("heartbeat Type = %q, want %q", h.Type, HeartbeatType)
		}
		if h.Index != 0 || h.Bench != "synth-10" || h.Engine != "dfs" {
			t.Fatalf("heartbeat identity wrong: %+v", h)
		}
		if h.Attempt < 1 {
			t.Fatalf("heartbeat Attempt = %d, want >= 1", h.Attempt)
		}
		if h.Schedules < last {
			t.Fatalf("heartbeat schedules went backwards: %d after %d", h.Schedules, last)
		}
		last = h.Schedules
	}
}

// TestMixedStreamReadJSONL: heartbeat lines interleaved with cell
// results in one stream are skipped by ReadJSONL (and flagged by
// IsTelemetryLine), so a mixed stream parses to exactly the cell
// results.
func TestMixedStreamReadJSONL(t *testing.T) {
	// One long cell (synth-10, guarantees heartbeat lines) and one
	// fast one, so the stream genuinely mixes both record kinds.
	cells := Grid([]string{"synth-10", "counter-racy-2x2"}, []EngineSpec{"dfs"}, 100000, 2000)
	var buf bytes.Buffer
	emit := JSONLWriter(&buf)
	hb := HeartbeatJSONL(&buf)
	r := Runner{
		Workers:        1,
		HeartbeatEvery: time.Millisecond,
		OnResult:       emit,
		OnHeartbeat:    hb,
	}
	if _, err := r.Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	hbLines := 0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) > 0 && IsTelemetryLine(line) {
			hbLines++
		}
	}
	if hbLines == 0 {
		t.Fatal("stream has no heartbeat lines; cadence too coarse for the test")
	}
	results, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("ReadJSONL returned %d results from the mixed stream, want %d", len(results), len(cells))
	}
	for i, res := range results {
		if res.Cell.Bench == "" || res.Cell != cells[res.Index] {
			t.Errorf("result %d parsed badly from mixed stream: %+v", i, res)
		}
	}
}

// TestFlightDumpOnFailure: with FlightDir set, a failing cell dumps a
// parseable flight artifact (path recorded in the result) and healthy
// cells dump nothing.
func TestFlightDumpOnFailure(t *testing.T) {
	dir := t.TempDir()
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: 200, MaxSteps: 2000},
		{Bench: "counter-racy-2x2", Engine: "chaos:panic", ScheduleLimit: 10, MaxSteps: 2000},
	}
	r := Runner{Workers: 1, FlightDir: dir}
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	healthy, failed := results[0], results[1]
	if healthy.Err != "" {
		t.Fatalf("healthy cell failed: %q", healthy.Err)
	}
	if healthy.FlightPath != "" {
		t.Errorf("healthy cell recorded a flight dump: %q", healthy.FlightPath)
	}
	if failed.Err == "" {
		t.Fatal("chaos:panic cell did not fail")
	}
	want := FlightPath(dir, failed.Cell)
	if failed.FlightPath != want {
		t.Fatalf("FlightPath = %q, want %q", failed.FlightPath, want)
	}
	art, err := ReadFlight(failed.FlightPath)
	if err != nil {
		t.Fatal(err)
	}
	if art.Cell != failed.Cell || art.Err != failed.Err || art.Attempts != failed.Attempts {
		t.Errorf("artifact disagrees with the result: %+v vs %+v", art, failed)
	}
	if art.Progress.Program != failed.Cell.Bench {
		t.Errorf("artifact progress names %q, want %q", art.Progress.Program, failed.Cell.Bench)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".flight-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d artifacts, want exactly the failing cell's", len(entries))
	}
	if filepath.Base(want) != entries[0].Name() {
		t.Errorf("artifact name %q, want %q", entries[0].Name(), filepath.Base(want))
	}
}

// TestAttemptTimings: every attempt leaves a wall-clock entry, so
// AttemptMS matches Attempts even across retries.
func TestAttemptTimings(t *testing.T) {
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "chaos:flaky:2", ScheduleLimit: 200, MaxSteps: 2000},
	}
	r := Runner{Workers: 1, Retries: 2, RetryBackoff: time.Millisecond}
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Err != "" {
		t.Fatalf("flaky cell failed despite retries: %q", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", res.Attempts)
	}
	if len(res.AttemptMS) != res.Attempts {
		t.Fatalf("AttemptMS has %d entries, want %d", len(res.AttemptMS), res.Attempts)
	}
	for i, ms := range res.AttemptMS {
		if ms < 0 {
			t.Errorf("attempt %d took %dms", i, ms)
		}
	}
}
