package campaign

import (
	"fmt"

	"repro/internal/engines"
	"repro/internal/explore"
)

// EngineSpec names an exploration engine configuration in a compact,
// JSON- and flag-friendly form:
//
//	dfs                     exhaustive depth-first search
//	dpor | dpor+sleep       dynamic partial-order reduction
//	lazy-dpor               the paper's Section 4 experimental engine
//	hbr-caching             regular HBR caching
//	lazy-hbr-caching        lazy HBR caching
//	random[:seed]           seeded random walk
//	pb:N[:hbr|:lazy]        preemption bounding (optionally cached)
//	db:N                    delay bounding
//	chess-pb:N | chess-db:N iterative bound deepening
//	pdfs[:W]                parallel DFS over W workers
//	pdpor[:W]               work-stealing parallel DPOR over W workers
//	pdpor-static[:W]        static-partition parallel DPOR (baseline)
//	prandom[:seed[:W]]      parallel random walk
//
// W and seed default to GOMAXPROCS and 1. The grammar is backed by
// the shared engine registry (internal/engines): any engine registered
// there — including embedder-registered ones via sct.Register — is a
// valid spec.
type EngineSpec string

// Build instantiates the engine the spec names through the shared
// registry.
func (s EngineSpec) Build() (explore.Engine, error) {
	eng, err := engines.Build(string(s))
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return eng, nil
}
