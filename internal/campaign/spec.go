package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/explore"
)

// EngineSpec names an exploration engine configuration in a compact,
// JSON- and flag-friendly form:
//
//	dfs                     exhaustive depth-first search
//	dpor | dpor+sleep       dynamic partial-order reduction
//	lazy-dpor               the paper's Section 4 experimental engine
//	hbr-caching             regular HBR caching
//	lazy-hbr-caching        lazy HBR caching
//	random[:seed]           seeded random walk
//	pb:N[:hbr|:lazy]        preemption bounding (optionally cached)
//	db:N                    delay bounding
//	chess-pb:N | chess-db:N iterative bound deepening
//	pdfs[:W]                parallel DFS over W workers
//	pdpor[:W]               work-stealing parallel DPOR over W workers
//	pdpor-static[:W]        static-partition parallel DPOR (baseline)
//	prandom[:seed[:W]]      parallel random walk
//
// W and seed default to GOMAXPROCS and 1.
type EngineSpec string

// Build instantiates the engine the spec names.
func (s EngineSpec) Build() (explore.Engine, error) {
	name, args, _ := strings.Cut(string(s), ":")
	argv := []string{}
	if args != "" {
		argv = strings.Split(args, ":")
	}
	num := func(i, dflt int) (int, error) {
		if i >= len(argv) {
			return dflt, nil
		}
		n, err := strconv.Atoi(argv[i])
		if err != nil {
			return 0, fmt.Errorf("campaign: bad engine spec %q: %v", s, err)
		}
		return n, nil
	}
	switch name {
	case "dfs":
		return explore.NewDFS(), nil
	case "dpor":
		return explore.NewDPOR(false), nil
	case "dpor+sleep":
		return explore.NewDPOR(true), nil
	case "lazy-dpor":
		return explore.NewLazyDPOR(), nil
	case "hbr-caching":
		return explore.NewHBRCache(), nil
	case "lazy-hbr-caching":
		return explore.NewLazyHBRCache(), nil
	case "random":
		seed, err := num(0, 1)
		if err != nil {
			return nil, err
		}
		return explore.NewRandomWalk(int64(seed)), nil
	case "pb":
		bound, err := num(0, 2)
		if err != nil {
			return nil, err
		}
		if len(argv) > 1 {
			switch argv[1] {
			case "hbr":
				return explore.NewPreemptionBoundedCache(bound, false), nil
			case "lazy":
				return explore.NewPreemptionBoundedCache(bound, true), nil
			default:
				return nil, fmt.Errorf("campaign: bad engine spec %q: cache mode %q", s, argv[1])
			}
		}
		return explore.NewPreemptionBounded(bound), nil
	case "db":
		bound, err := num(0, 2)
		if err != nil {
			return nil, err
		}
		return explore.NewDelayBounded(bound), nil
	case "chess-pb":
		bound, err := num(0, 3)
		if err != nil {
			return nil, err
		}
		return explore.NewIterativePreemptionBounding(bound), nil
	case "chess-db":
		bound, err := num(0, 3)
		if err != nil {
			return nil, err
		}
		return explore.NewIterativeDelayBounding(bound), nil
	case "pdfs":
		w, err := num(0, 0)
		if err != nil {
			return nil, err
		}
		return NewParallelDFS(w), nil
	case "pdpor":
		w, err := num(0, 0)
		if err != nil {
			return nil, err
		}
		return NewParallelDPOR(w), nil
	case "pdpor-static":
		w, err := num(0, 0)
		if err != nil {
			return nil, err
		}
		return NewParallelDPORStatic(w), nil
	case "prandom":
		seed, err := num(0, 1)
		if err != nil {
			return nil, err
		}
		w, err := num(1, 0)
		if err != nil {
			return nil, err
		}
		return NewParallelRandomWalk(int64(seed), w), nil
	default:
		return nil, fmt.Errorf("campaign: unknown engine spec %q", s)
	}
}

// ParseSpecs splits a comma-separated engine list and validates every
// entry.
func ParseSpecs(list string) ([]EngineSpec, error) {
	var out []EngineSpec
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		spec := EngineSpec(f)
		if _, err := spec.Build(); err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: empty engine list %q", list)
	}
	return out, nil
}
