// Work-stealing parallel DPOR: the coordinator behind ParallelDPOR.
//
// Unlike the static partition behind ParallelDFS — which enumerates a
// fixed frontier of prefixes exhaustively and therefore forfeits the
// partial-order reduction across the partition layer — the
// work-stealing scheme lets one DPOR search span all workers. Work is
// exchanged as *units* (a pinned choice prefix plus an optional
// happens-before tracker seed) on a striped deque: busy engines donate
// pending backtrack branches when workers starve, and race reversals
// that escape a unit's prefix are claimed against a shared node table
// and become new units instead of being re-enumerated. Every branch of
// the DPOR tree is claimed exactly once, so the merged counters equal
// sequential DPOR's (see explore.Steal for the argument, and
// parallel_test.go/steal_test.go for the pinned exactness).
package campaign

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/explore"
	"repro/internal/hb"
	"repro/internal/model"
)

// wsUnit is one frontier unit: explore the subtree beneath prefix. The
// seed, when non-nil, is a private tracker clone covering the first
// len(prefix)-1 events, so the unit's prefix replay advances only the
// machine. sleep is the sleep set of the unit's root state (the
// explore.Options.SleepSeed the unit engine starts from); always zero
// when the search runs without sleep sets.
type wsUnit struct {
	prefix []event.ThreadID
	seed   *hb.Tracker
	sleep  uint64
}

// key renders the unit's prefix as a map key (one byte per choice;
// explore.MaxThreads bounds thread IDs well below 256). Lexicographic
// order on keys equals lexicographic order on prefixes, which is what
// makes the merged result deterministic.
func (u *wsUnit) key() string { return prefixKey(u.prefix) }

func prefixKey(prefix []event.ThreadID) string {
	b := make([]byte, len(prefix))
	for i, t := range prefix {
		b[i] = byte(t)
	}
	return string(b)
}

// stealStripe is one worker's segment of the steal deque. The pad
// brings the struct to 64 bytes (8 mutex + 24 slice header + 32) so
// adjacent stripes never share a cache line.
type stealStripe struct {
	mu    sync.Mutex
	units []*wsUnit
	_     [32]byte
}

// stealQueue is the striped deque work-stealing units travel on, plus
// the termination and starvation accounting. A worker pushes and pops
// its own stripe LIFO (freshest, cache-warm subtrees first) and steals
// the oldest unit of another stripe (shallowest prefix, so the biggest
// subtree moves).
type stealQueue struct {
	stripes []stealStripe

	// outstanding counts units pushed but not yet fully processed.
	// It is incremented before a unit becomes visible and decremented
	// only after the unit's engine returned and its result was
	// recorded, so it can only reach zero when no unit is running and
	// none is queued — any unit a running engine might still push
	// keeps its creator's own count above zero.
	outstanding atomic.Int64

	// starving counts workers currently spinning for work; queued
	// counts units sitting in stripes. Engines poll both (through
	// workerHooks.Starving) and donate only while demand exceeds
	// stock — otherwise donated units just pile up on the donor's own
	// stripe and get re-popped by the donor at full unit-restart cost.
	starving atomic.Int64
	queued   atomic.Int64

	pushed atomic.Int64
	stolen atomic.Int64
}

func newStealQueue(workers int) *stealQueue {
	return &stealQueue{stripes: make([]stealStripe, workers)}
}

// push makes u available, crediting it to worker w's stripe. The
// outstanding increment happens before the unit is visible.
func (q *stealQueue) push(w int, u *wsUnit) {
	q.outstanding.Add(1)
	q.pushed.Add(1)
	q.queued.Add(1)
	s := &q.stripes[w]
	s.mu.Lock()
	s.units = append(s.units, u)
	s.mu.Unlock()
}

// tryPop returns a unit for worker w, or nil when every stripe is
// empty: w's own stripe LIFO first, then a FIFO steal sweep over the
// other stripes.
func (q *stealQueue) tryPop(w int) *wsUnit {
	own := &q.stripes[w]
	own.mu.Lock()
	if n := len(own.units); n > 0 {
		u := own.units[n-1]
		own.units[n-1] = nil
		own.units = own.units[:n-1]
		own.mu.Unlock()
		q.queued.Add(-1)
		return u
	}
	own.mu.Unlock()
	for i := 1; i < len(q.stripes); i++ {
		s := &q.stripes[(w+i)%len(q.stripes)]
		s.mu.Lock()
		if len(s.units) > 0 {
			u := s.units[0]
			copy(s.units, s.units[1:])
			s.units[len(s.units)-1] = nil
			s.units = s.units[:len(s.units)-1]
			s.mu.Unlock()
			q.queued.Add(-1)
			q.stolen.Add(1)
			return u
		}
		s.mu.Unlock()
	}
	return nil
}

// next blocks until a unit is available for worker w or the search has
// terminated (outstanding hit zero), spinning with escalating
// politeness while other workers still hold units.
func (q *stealQueue) next(w int) *wsUnit {
	if u := q.tryPop(w); u != nil {
		return u
	}
	q.starving.Add(1)
	defer q.starving.Add(-1)
	sleep := 20 * time.Microsecond
	for spins := 0; ; spins++ {
		if u := q.tryPop(w); u != nil {
			return u
		}
		if q.outstanding.Load() == 0 {
			return nil
		}
		if spins < 64 {
			runtime.Gosched()
			continue
		}
		// Exponentially backed-off sleep, capped at 1ms: a worker
		// starving through one long-tail unit must not burn the CPU
		// that concurrently running campaign cells need.
		time.Sleep(sleep)
		if sleep < time.Millisecond {
			sleep *= 2
		}
	}
}

// complete retires one unit; the matching push happened when the unit
// was created.
func (q *stealQueue) complete() { q.outstanding.Add(-1) }

// nodeShards stripes the node table; node keys hash uniformly enough
// with FNV.
const nodeShards = 64

// nodeEntry is one published node's table state: the monotone claim
// set, plus the node's sleep-set context (write-once at publish, read
// without the shard lock afterwards — only done mutates under it).
type nodeEntry struct {
	done uint64
	// Sleep-set context copied from the publisher's explore.NodeInfo;
	// zero/nil when the search runs without sleep sets.
	sleep   uint64
	pendSet uint64
	pend    []event.Op
}

// nodeTable is the shared claim registry of published schedule-tree
// nodes: done[t] means branch t of the node has been (or is being)
// explored by some unit. Escaped backtrack additions claim against it,
// so each branch is explored exactly once globally.
type nodeTable struct {
	shards [nodeShards]struct {
		mu sync.Mutex
		m  map[string]*nodeEntry
	}
}

func newNodeTable() *nodeTable {
	t := &nodeTable{}
	for i := range t.shards {
		t.shards[i].m = map[string]*nodeEntry{}
	}
	return t
}

func (t *nodeTable) shard(key string) *struct {
	mu sync.Mutex
	m  map[string]*nodeEntry
} {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return &t.shards[h%nodeShards]
}

// publish registers the node with the given claimed set and claims the
// pending branches on top, returning the pending branches that were
// actually fresh plus the node's entry (with the claim set as it stood
// before this call folded in). By the publish-before-ship invariant
// each key is published exactly once and escapes only target published
// keys, so prior is zero here and fresh == pending; the dedup is kept
// as a cheap safety net should that invariant ever break. info's Pend
// view is copied.
func (t *nodeTable) publish(key string, claimed, pending uint64, info *explore.NodeInfo) (fresh, prior uint64, e *nodeEntry) {
	s := t.shard(key)
	s.mu.Lock()
	e = s.m[key]
	if e == nil {
		e = &nodeEntry{}
		s.m[key] = e
	}
	prior = e.done
	fresh = pending &^ prior
	e.done = prior | claimed | pending
	if info != nil && e.pendSet == 0 {
		e.sleep = info.Sleep
		e.pendSet = info.PendSet
		e.pend = append([]event.Op(nil), info.Pend...)
	}
	s.mu.Unlock()
	return fresh, prior, e
}

// claim marks cands as taken and returns the subset that was fresh
// plus the claim set as it stood before the call and the node's entry.
// The node must have been published — an escape can only target a
// node some unit's prefix runs through, and every unit's proper
// prefixes are published before the unit exists.
func (t *nodeTable) claim(key string, cands uint64) (fresh, prior uint64, e *nodeEntry) {
	s := t.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		panic("campaign: escaped backtrack point targets an unpublished node")
	}
	prior = e.done
	fresh = cands &^ prior
	e.done = prior | cands
	s.mu.Unlock()
	return fresh, prior, e
}

// sharedHooks is the per-search coordinator state shared by every
// worker's hooks.
type sharedHooks struct {
	q           *stealQueue
	table       *nodeTable
	donated     atomic.Int64
	escaped     atomic.Int64
	seeded      atomic.Int64
	localClaims atomic.Int64
	// ctr mirrors unit shipping into the search's live telemetry
	// (explore.Counters.StealSent/StealReceived); nil when the caller
	// armed no counters.
	ctr *explore.Counters
}

// workerHooks is one worker's explore.Steal implementation; all
// callbacks run on that worker's engine goroutine.
type workerHooks struct {
	*sharedHooks
	worker int
}

// forceDonate, set by tests before a search starts, makes every worker
// report starvation so donation — and with it the unit-shipping paths
// (tracker seeds, sleep seeds, escapes into foreign prefixes) — fires
// at every opportunity. With one worker the resulting search is fully
// deterministic, which is what the shipping exactness tests pin.
var forceDonate bool

// Starving implements explore.Steal: donate only while spinning
// workers outnumber the units already queued.
func (h workerHooks) Starving() bool {
	return forceDonate || h.q.starving.Load() > h.q.queued.Load()
}

// unitSleep derives the root sleep set of a unit that takes branch t
// from the published node e while done holds the branches claimed
// before t — the sequential child-node rule: a thread in
// sleep ∪ (done ∖ {t}) stays asleep iff its pending operation at the
// node is independent of the operation t executes there. Zero when the
// node carries no sleep context (sleep sets off).
func unitSleep(e *nodeEntry, done uint64, t event.ThreadID) uint64 {
	if e == nil || e.pendSet == 0 || e.pendSet&(1<<uint(t)) == 0 {
		return 0
	}
	inherit := (e.sleep | (done &^ (1 << uint(t)))) & e.pendSet
	var s uint64
	for m := inherit; m != 0; m &= m - 1 {
		q := bits.TrailingZeros64(m)
		if !event.Dependent(e.pend[q], e.pend[t]) {
			s |= 1 << uint(q)
		}
	}
	return s
}

// ship creates one unit per set bit of fresh, branching the node
// prefix, and pushes them onto the worker's stripe. done holds the
// node's claim set before the first shipped branch; sleep seeds are
// derived as if the branches were explored in bit order, mirroring the
// sequential engine's ascending backtrack pops.
func (h workerHooks) ship(prefix []event.ThreadID, fresh, done uint64, e *nodeEntry, seed func() *hb.Tracker, donated bool) {
	for fresh != 0 {
		t := event.ThreadID(bits.TrailingZeros64(fresh))
		fresh &= fresh - 1
		u := &wsUnit{
			prefix: append(append([]event.ThreadID(nil), prefix...), t),
			sleep:  unitSleep(e, done, t),
		}
		done |= 1 << uint(t)
		// A seed pays off only when it covers at least one event: the
		// engine ignores TrackerSeed on single-choice prefixes.
		if seed != nil && len(prefix) > 0 {
			u.seed = seed()
			h.seeded.Add(1)
		}
		if donated {
			h.donated.Add(1)
		} else {
			h.escaped.Add(1)
		}
		if h.ctr != nil {
			h.ctr.StealSent.Add(1)
		}
		h.q.push(h.worker, u)
	}
}

// Publish implements explore.Steal.
func (h workerHooks) Publish(prefix []event.ThreadID, claimed, pending uint64, seed func() *hb.Tracker, info *explore.NodeInfo) uint64 {
	fresh, prior, e := h.table.publish(prefixKey(prefix), claimed, pending, info)
	h.ship(prefix, fresh, prior|claimed, e, seed, true)
	return fresh
}

// Escape implements explore.Steal.
func (h workerHooks) Escape(prefix []event.ThreadID, cands uint64, seed func() *hb.Tracker) {
	fresh, prior, e := h.table.claim(prefixKey(prefix), cands)
	h.ship(prefix, fresh, prior, e, seed, false)
}

// Claim implements explore.Steal: grant the fresh branches to the
// calling engine for in-place exploration.
func (h workerHooks) Claim(prefix []event.ThreadID, cands uint64) uint64 {
	fresh, _, _ := h.table.claim(prefixKey(prefix), cands)
	if fresh != 0 {
		h.localClaims.Add(1)
	}
	return fresh
}

// unitOutcome pairs a unit's result with its prefix key for the
// deterministic (lexicographic) merge.
type unitOutcome struct {
	key string
	res explore.Result
}

// workStealDPOR runs one work-stealing DPOR search across workers
// (already normalised) and returns the per-unit outcomes (unsorted),
// the shared dedup and the execution stats.
func workStealDPOR(src model.Source, opt explore.Options, workers int) ([]unitOutcome, *explore.Dedup, explore.StealStats) {
	dedup := explore.NewDedup()
	budget := explore.NewBudget(opt.ScheduleLimit)

	unitOpt := opt
	unitOpt.ScheduleLimit = 0
	unitOpt.Dedup = dedup
	unitOpt.SharedBudget = budget

	q := newStealQueue(workers)
	shared := &sharedHooks{q: q, table: newNodeTable(), ctr: opt.Counters}

	var mu sync.Mutex
	var outcomes []unitOutcome

	// The root unit: the whole tree. Its worker donates branches as
	// soon as the other workers report starvation.
	q.push(0, &wsUnit{})

	// bugFound flips once any worker's unit captured a violation under
	// StopAtFirstBug: units already running stop at their own first
	// bug, queued units drain as no-ops so the search winds down fast.
	var bugFound atomic.Bool

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hooks := workerHooks{sharedHooks: shared, worker: w}
			for {
				u := q.next(w)
				if u == nil {
					return
				}
				var res explore.Result
				switch {
				case opt.StopAtFirstBug && bugFound.Load():
					res = explore.Result{}
				case budget != nil && budget.Exhausted():
					res = explore.Result{HitLimit: true}
				case unitOpt.Ctx != nil && unitOpt.Ctx.Err() != nil:
					res = explore.Result{Interrupted: true}
				default:
					if shared.ctr != nil && len(u.prefix) > 0 {
						// Shipped (non-root) units a worker picks up.
						shared.ctr.StealReceived.Add(1)
					}
					o := unitOpt
					o.Prefix = u.prefix
					o.TrackerSeed = u.seed
					o.SleepSeed = u.sleep
					o.Steal = hooks
					res = explore.NewDPOR(opt.SleepSets).Explore(src, o)
					if opt.StopAtFirstBug && res.FirstViolation != nil {
						bugFound.Store(true)
					}
				}
				mu.Lock()
				outcomes = append(outcomes, unitOutcome{key: u.key(), res: res})
				mu.Unlock()
				q.complete()
			}
		}(w)
	}
	wg.Wait()

	stats := explore.StealStats{
		Workers:     workers,
		Units:       int(q.pushed.Load()),
		Donated:     int(shared.donated.Load()),
		Escaped:     int(shared.escaped.Load()),
		LocalClaims: int(shared.localClaims.Load()),
		Seeded:      int(shared.seeded.Load()),
		Steals:      int(q.stolen.Load()),
	}
	return outcomes, dedup, stats
}
