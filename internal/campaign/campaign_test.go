package campaign

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/explore"
)

// TestRunnerGrid: a small benchmark × engine grid runs to completion,
// results come back in input order, and every invariant holds.
func TestRunnerGrid(t *testing.T) {
	engines := []EngineSpec{"dfs", "dpor", "random:7"}
	cells := Grid([]string{"counter-racy-2x2", "philosophers-3"}, engines, 500, 2000)
	var streamed []CellResult
	r := Runner{Workers: 4, OnResult: func(res CellResult) { streamed = append(streamed, res) }}
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) || len(streamed) != len(cells) {
		t.Fatalf("got %d results, %d streamed, want %d", len(results), len(streamed), len(cells))
	}
	for i, res := range results {
		if res.Index != i || res.Cell != cells[i] {
			t.Errorf("result %d out of order: index=%d cell=%+v", i, res.Index, res.Cell)
		}
		if res.Result.Schedules == 0 {
			t.Errorf("cell %d explored nothing", i)
		}
	}
}

// TestRunnerCellErrors: bad benchmarks and bad engine specs fail their
// own cell without aborting the campaign.
func TestRunnerCellErrors(t *testing.T) {
	cells := []Cell{
		{Bench: "no-such-benchmark", Engine: "dfs", ScheduleLimit: 10},
		{Bench: "counter-racy-2x2", Engine: "bogus-engine", ScheduleLimit: 10},
		{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: 10, MaxSteps: 2000},
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == "" || !strings.Contains(results[0].Err, "unknown benchmark") {
		t.Errorf("cell 0: want unknown-benchmark error, got %q", results[0].Err)
	}
	if results[1].Err == "" || !strings.Contains(results[1].Err, "engine spec") {
		t.Errorf("cell 1: want engine-spec error, got %q", results[1].Err)
	}
	if results[2].Err != "" {
		t.Errorf("cell 2 unexpectedly failed: %q", results[2].Err)
	}
	if FirstError(results) == nil {
		t.Error("FirstError missed the failures")
	}
}

// TestRunnerContextDeadline: an expired context stops the campaign
// early and reports it.
func TestRunnerContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cells := Grid([]string{"counter-racy-2x2"}, []EngineSpec{"dfs"}, 0, 2000)
	_, err := (&Runner{Workers: 1}).Run(ctx, cells)
	if err == nil {
		t.Fatal("want a context error from an expired deadline")
	}
}

// countdownCtx is a context whose Err starts reporting cancellation
// after a fixed number of polls — a deterministic stand-in for "the
// deadline fired mid-cell", independent of wall-clock timing.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	polls int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.polls--; c.polls < 0 {
		return context.Canceled
	}
	return nil
}

// TestRunnerCancelFlushesPartialCells is the regression test for the
// runner dropping work on cancellation: a context that dies mid-cell
// must still flush that cell's partial counters (marked Cancelled,
// Result.Interrupted), and cells that never started must appear in the
// stream as Cancelled markers — one line per cell, no holes.
func TestRunnerCancelFlushesPartialCells(t *testing.T) {
	cells := Grid([]string{"counter-racy-2x2", "philosophers-3", "ticket-2"}, []EngineSpec{"dfs"}, 0, 2000)
	// The first Err poll happens in the runner's claim loop; the next
	// few at the engine's schedule boundaries, so cell 0 is
	// interrupted after ~4 schedules and cells 1..2 never start.
	ctx := &countdownCtx{Context: context.Background(), polls: 5}
	var streamed []CellResult
	r := Runner{Workers: 1, OnResult: func(res CellResult) { streamed = append(streamed, res) }}
	results, err := r.Run(ctx, cells)
	if err == nil {
		t.Fatal("want a context error from mid-campaign cancellation")
	}
	if len(streamed) != len(cells) {
		t.Fatalf("streamed %d lines, want one per cell (%d)", len(streamed), len(cells))
	}
	first := results[0]
	if !first.Cancelled || !first.Result.Interrupted {
		t.Errorf("mid-cell cancellation not marked: %+v", first)
	}
	if first.Result.Schedules == 0 {
		t.Errorf("mid-cell partial counters were dropped: %+v", first.Result)
	}
	for i, res := range results[1:] {
		if !res.Cancelled {
			t.Errorf("unstarted cell %d not flushed as cancelled: %+v", i+1, res)
		}
		if res.Result.Schedules != 0 {
			t.Errorf("unstarted cell %d reports work: %+v", i+1, res.Result)
		}
		if res.Cell != cells[i+1] || res.Index != i+1 {
			t.Errorf("cancelled marker %d lost its cell identity: %+v", i+1, res)
		}
	}
}

// TestRunnerRejectsInvalidOptions: the runner validates each cell's
// options up front, so a bad grid fails loudly per cell instead of
// producing half-meaningful results.
func TestRunnerRejectsInvalidOptions(t *testing.T) {
	cells := []Cell{
		{Bench: "counter-racy-2x2", Engine: "dfs", ScheduleLimit: -1},
		{Bench: "counter-racy-2x2", Engine: "dfs", MaxSteps: -5},
	}
	results, err := (&Runner{Workers: 1}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err == "" {
			t.Errorf("invalid cell %d was not rejected: %+v", i, res)
		}
	}
}

// TestJSONLRoundTrip: the streaming writer's output parses back into
// the same results.
func TestJSONLRoundTrip(t *testing.T) {
	cells := Grid([]string{"counter-racy-2x2", "pipeline-3"}, []EngineSpec{"dpor"}, 300, 2000)
	var buf bytes.Buffer
	r := Runner{Workers: 2, OnResult: JSONLWriter(&buf)}
	results, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(results) {
		t.Fatalf("round trip lost results: %d != %d", len(parsed), len(results))
	}
	for _, p := range parsed {
		orig := results[p.Index]
		if p.Cell != orig.Cell || p.Result.Schedules != orig.Result.Schedules ||
			p.Result.DistinctHBRs != orig.Result.DistinctHBRs {
			t.Errorf("round trip mangled cell %d:\n got %+v\nwant %+v", p.Index, p, orig)
		}
	}
}

// TestEngineSpecGrammar covers the spec grammar's corners (the
// comma-list front end lives on the sct facade as sct.ParseSpecs).
func TestEngineSpecGrammar(t *testing.T) {
	good := []string{
		"dfs", "dpor", "dpor+sleep", "lazy-dpor", "hbr-caching", "lazy-hbr-caching",
		"random", "random:9", "pct:3", "pct:2:9", "pos", "pos:9",
		"pb:2", "pb:1:hbr", "pb:1:lazy", "db:3",
		"chess-pb:2", "chess-db:2", "pdfs", "pdfs:4", "pdpor:2", "pdpor-static:2", "prandom:5:2",
	}
	for _, s := range good {
		if _, err := EngineSpec(s).Build(); err != nil {
			t.Errorf("spec %q rejected: %v", s, err)
		}
	}
	bad := []string{"", "nope", "pb:x", "pb:1:bogus", "random:zzz", "pdfs:w", "pct:0", "pct:x", "pos:zzz"}
	for _, s := range bad {
		if _, err := EngineSpec(s).Build(); err == nil {
			t.Errorf("spec %q unexpectedly accepted", s)
		}
	}
}

// TestCellStopAtFirstBug: a first-bug cell stops at the violating
// schedule and reports the schedules-to-first-bug index; the field
// survives the JSONL stream.
func TestCellStopAtFirstBug(t *testing.T) {
	var buf bytes.Buffer
	r := Runner{Workers: 1, OnResult: JSONLWriter(&buf)}
	results, err := r.Run(nil, []Cell{
		{Bench: "philosophers-3", Engine: "dpor", ScheduleLimit: 5000, MaxSteps: 500, StopAtFirstBug: true},
		{Bench: "philosophers-ordered-2", Engine: "dpor", ScheduleLimit: 5000, MaxSteps: 500, StopAtFirstBug: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	buggy, clean := results[0].Result, results[1].Result
	if buggy.FirstViolation == nil || buggy.ViolationKind != "deadlock" {
		t.Fatalf("philosophers-3 first-bug cell found no deadlock: %+v", buggy)
	}
	if buggy.FirstBugSchedule != buggy.Schedules {
		t.Errorf("stopped after %d schedules but the bug was schedule %d", buggy.Schedules, buggy.FirstBugSchedule)
	}
	if clean.FirstViolation != nil || clean.FirstBugSchedule != 0 || clean.HitLimit {
		t.Errorf("deadlock-free benchmark misreported: %+v", clean)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].Cell.StopAtFirstBug || back[0].Result.FirstBugSchedule != buggy.FirstBugSchedule {
		t.Errorf("first-bug fields lost in JSONL round trip: %+v", back[0])
	}
}

// TestParallelFirstBugDeterministicMerge: without StopAtFirstBug the
// parallel engines' merged FirstViolation/FirstBugSchedule come from
// the deterministic unit order, so repeated runs agree with each other
// regardless of worker interleaving.
func TestParallelFirstBugDeterministicMerge(t *testing.T) {
	bm := mustProgram(t, "philosophers-3")
	opt := explore.Options{MaxSteps: 2000}
	base := ParallelDPOR(bm.Program, opt, 4)
	if base.FirstViolation == nil || base.FirstBugSchedule < 1 || base.FirstBugSchedule > base.Schedules {
		t.Fatalf("merged first-bug fields invalid: idx=%d of %d", base.FirstBugSchedule, base.Schedules)
	}
	for rep := 0; rep < 3; rep++ {
		again := ParallelDPOR(bm.Program, opt, 4)
		if again.FirstBugSchedule != base.FirstBugSchedule ||
			!reflect.DeepEqual(again.FirstViolation, base.FirstViolation) {
			t.Fatalf("merged witness not deterministic: idx %d vs %d", again.FirstBugSchedule, base.FirstBugSchedule)
		}
	}
	// With StopAtFirstBug the search winds down early: fewer schedules
	// than the exhaustive run, and a witness is still captured.
	stop := opt
	stop.StopAtFirstBug = true
	early := ParallelDPOR(bm.Program, stop, 4)
	if early.FirstViolation == nil {
		t.Fatal("StopAtFirstBug run lost the witness")
	}
	if early.Schedules > base.Schedules {
		t.Errorf("StopAtFirstBug explored %d schedules, exhaustive run %d", early.Schedules, base.Schedules)
	}
}
