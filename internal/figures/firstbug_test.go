package figures

import (
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/explore"
)

// TestFirstBugTableAssembly feeds hand-built cell results through the
// table, summary and both renderers.
func TestFirstBugTableAssembly(t *testing.T) {
	cell := func(idx int, bench, eng string, bug int, kind string, hitLimit bool) campaign.CellResult {
		res := explore.Result{Program: bench, Engine: eng, Schedules: bug + 3, HitLimit: hitLimit}
		if bug > 0 {
			res.FirstBugSchedule = bug
			res.ViolationKind = kind
		}
		return campaign.CellResult{
			Index:  idx,
			Cell:   campaign.Cell{Bench: bench, Engine: campaign.EngineSpec(eng), StopAtFirstBug: true},
			Result: res,
		}
	}
	// Completion order scrambled on purpose; Index restores the grid.
	results := []campaign.CellResult{
		cell(3, "b", "dpor", 2, "deadlock", false),
		cell(0, "a", "dfs", 7, "assertion failure", false),
		cell(2, "b", "dfs", 0, "", true),
		cell(1, "a", "dpor", 3, "assertion failure", false),
	}
	table := FirstBugFromCells(results)
	if len(table.Engines) != 2 || table.Engines[0] != "dfs" || table.Engines[1] != "dpor" {
		t.Fatalf("engine columns %v, want [dfs dpor]", table.Engines)
	}
	if len(table.Rows) != 2 || table.Rows[0].Bench != "a" || table.Rows[1].Bench != "b" {
		t.Fatalf("rows %+v, want benches a,b", table.Rows)
	}
	if got := table.Rows[0].Cells[0].Schedules; got != 7 {
		t.Errorf("a/dfs schedules-to-bug = %d, want 7", got)
	}
	if got := table.Rows[1].Cells[0]; got.Schedules != 0 || !got.HitLimit {
		t.Errorf("b/dfs cell %+v, want budget-exhausted no-bug", got)
	}

	sums := SummarizeFirstBug(table)
	if sums[0].Found != 1 || sums[1].Found != 2 || sums[0].Buggy != 2 {
		t.Errorf("summary %+v, want dfs 1/2 and dpor 2/2", sums)
	}
	// Only bench "a" was cracked by every engine: comparable subset
	// size 1, totals 7 vs 3.
	if sums[0].Comparable != 1 || sums[0].TotalSchedules != 7 || sums[1].TotalSchedules != 3 {
		t.Errorf("comparable-subset totals %+v, want 7 vs 3 over 1 benchmark", sums)
	}

	tsv := TSVFirstBug(table)
	for _, want := range []string{"benchmark\tdfs\tdpor\tkind", "a\t7\t3\tassertion failure", "b\t>limit\t2\tdeadlock"} {
		if !strings.Contains(tsv, want) {
			t.Errorf("TSV missing %q:\n%s", want, tsv)
		}
	}
	md := MarkdownFirstBug(table, 500)
	for _, want := range []string{"| a | 7 | 3 | assertion failure |", "| b | >limit | 2 | deadlock |", "Schedule limit 500"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if sum := SummaryFirstBug(table); !strings.Contains(sum, "found 1/2 bugs") || !strings.Contains(sum, "found 2/2 bugs") {
		t.Errorf("summary rendering wrong:\n%s", sum)
	}
}

// TestFirstBugErrCell: a failed cell renders as ERR, not as a clean
// no-bug cell.
func TestFirstBugErrCell(t *testing.T) {
	results := []campaign.CellResult{{
		Index: 0,
		Cell:  campaign.Cell{Bench: "a", Engine: "dfs"},
		Err:   "boom",
	}}
	table := FirstBugFromCells(results)
	if got := TSVFirstBug(table); !strings.Contains(got, "ERR") {
		t.Errorf("error cell not rendered:\n%s", got)
	}
}

// TestFirstBugMixedKinds: when the engines of one row trip different
// violations, the kind column lists every distinct kind and each buggy
// cell carries a short tag of its own; homogeneous rows render exactly
// as before (no per-cell annotation).
func TestFirstBugMixedKinds(t *testing.T) {
	cell := func(idx int, bench, eng string, bug int, kind string) campaign.CellResult {
		res := explore.Result{Program: bench, Engine: eng, Schedules: bug + 1}
		if bug > 0 {
			res.FirstBugSchedule = bug
			res.ViolationKind = kind
		}
		return campaign.CellResult{
			Index:  idx,
			Cell:   campaign.Cell{Bench: bench, Engine: campaign.EngineSpec(eng), StopAtFirstBug: true},
			Result: res,
		}
	}
	results := []campaign.CellResult{
		cell(0, "m", "random", 4, "data race"),
		cell(1, "m", "pct:3", 9, "assertion failure"),
		cell(2, "m", "pos", 2, "data race"),
	}
	table := FirstBugFromCells(results)
	tsv := TSVFirstBug(table)
	for _, want := range []string{
		"m\t4 (race)\t9 (assert)\t2 (race)\tdata race, assertion failure",
	} {
		if !strings.Contains(tsv, want) {
			t.Errorf("TSV missing %q:\n%s", want, tsv)
		}
	}
	md := MarkdownFirstBug(table, 100)
	if want := "| m | 4 (race) | 9 (assert) | 2 (race) | data race, assertion failure |"; !strings.Contains(md, want) {
		t.Errorf("markdown missing %q:\n%s", want, md)
	}
}
