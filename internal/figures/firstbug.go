// The bug-finding table: for every benchmark × engine cell run in
// first-bug mode (campaign.Cell.StopAtFirstBug), how many schedules
// each technique executed before hitting its first violation — the
// paper's core comparison of testing techniques.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/campaign"
)

// FirstBugCell is one (benchmark, engine) bug-finding measurement.
type FirstBugCell struct {
	// Schedules is the schedules-to-first-bug index; 0 when the engine
	// found no violation within its budget.
	Schedules int
	// Kind names the violation found ("" when none).
	Kind string
	// HitLimit marks a bug-free cell that exhausted its schedule
	// budget (so a bug might still hide beyond it); a bug-free cell
	// without HitLimit proved its space violation-free.
	HitLimit bool
	// Err carries a cell-level failure.
	Err string
}

// FirstBugRow is one benchmark's row across all engines.
type FirstBugRow struct {
	Bench string
	Cells []FirstBugCell
}

// FirstBugTable is the assembled benchmark × engine bug-finding grid.
type FirstBugTable struct {
	// Engines are the column labels, in campaign order.
	Engines []string
	Rows    []FirstBugRow
}

// FirstBugFromCells assembles the table from first-bug campaign
// results (any order; cell Index restores the grid order).
func FirstBugFromCells(results []campaign.CellResult) FirstBugTable {
	sorted := append([]campaign.CellResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	var t FirstBugTable
	engineIdx := map[string]int{}
	rowIdx := map[string]int{}
	for _, r := range sorted {
		eng := string(r.Cell.Engine)
		if _, ok := engineIdx[eng]; !ok {
			engineIdx[eng] = len(t.Engines)
			t.Engines = append(t.Engines, eng)
		}
		if _, ok := rowIdx[r.Cell.Bench]; !ok {
			rowIdx[r.Cell.Bench] = len(t.Rows)
			t.Rows = append(t.Rows, FirstBugRow{Bench: r.Cell.Bench})
		}
	}
	for i := range t.Rows {
		t.Rows[i].Cells = make([]FirstBugCell, len(t.Engines))
	}
	for _, r := range sorted {
		cell := FirstBugCell{
			Schedules: r.Result.FirstBugSchedule,
			Kind:      r.Result.ViolationKind,
			HitLimit:  r.Result.HitLimit,
			Err:       r.Err,
		}
		t.Rows[rowIdx[r.Cell.Bench]].Cells[engineIdx[string(r.Cell.Engine)]] = cell
	}
	return t
}

// cellText renders one cell: the schedules-to-first-bug count, "-"
// for a proven-clean cell, ">limit" for a budget-exhausted clean cell,
// "ERR" for a failed cell. When mixed is set — the row's engines found
// violations of different kinds — each buggy cell is annotated with a
// short tag of *its* kind, since the row's kind column alone can no
// longer say which engine found what.
func (c FirstBugCell) cellText(mixed bool) string {
	switch {
	case c.Err != "":
		return "ERR"
	case c.Schedules > 0:
		if mixed {
			return fmt.Sprintf("%d (%s)", c.Schedules, shortKind(c.Kind))
		}
		return fmt.Sprintf("%d", c.Schedules)
	case c.HitLimit:
		return ">limit"
	default:
		return "-"
	}
}

// shortKind abbreviates a violation kind for in-cell annotations.
func shortKind(kind string) string {
	switch kind {
	case "assertion failure":
		return "assert"
	case "lock misuse":
		return "lock"
	case "data race":
		return "race"
	default:
		return kind
	}
}

// rowKinds collects the distinct violation kinds a row's cells found,
// in cell order. Different engines can legitimately trip different
// violations of one benchmark first (a random walk may hit the data
// race, DFS the assertion behind it), so the row's kind is a set.
func rowKinds(row FirstBugRow) []string {
	var kinds []string
	for _, c := range row.Cells {
		if c.Kind == "" {
			continue
		}
		seen := false
		for _, k := range kinds {
			if k == c.Kind {
				seen = true
				break
			}
		}
		if !seen {
			kinds = append(kinds, c.Kind)
		}
	}
	return kinds
}

// FirstBugSummary aggregates one engine column.
type FirstBugSummary struct {
	Engine string
	// Found counts benchmarks where the engine hit a bug; Buggy is
	// the number of benchmarks where *any* engine did.
	Found, Buggy int
	// TotalSchedules sums schedules-to-first-bug over the benchmarks
	// where every engine found a bug (the paper's comparable subset);
	// Comparable is that subset's size.
	TotalSchedules int
	Comparable     int
}

// SummarizeFirstBug aggregates per-engine bug-finding power: how many
// of the buggy benchmarks each engine cracked, and the total
// schedules-to-first-bug over the subset every engine cracked.
func SummarizeFirstBug(t FirstBugTable) []FirstBugSummary {
	buggy := 0
	allFound := make([]bool, len(t.Rows))
	for i, row := range t.Rows {
		any, all := false, true
		for _, c := range row.Cells {
			if c.Schedules > 0 {
				any = true
			} else {
				all = false
			}
		}
		if any {
			buggy++
		}
		allFound[i] = any && all
	}
	out := make([]FirstBugSummary, len(t.Engines))
	for e := range t.Engines {
		s := FirstBugSummary{Engine: t.Engines[e], Buggy: buggy}
		for i, row := range t.Rows {
			c := row.Cells[e]
			if c.Schedules > 0 {
				s.Found++
			}
			if allFound[i] {
				s.Comparable++
				s.TotalSchedules += c.Schedules
			}
		}
		out[e] = s
	}
	return out
}

// TSVFirstBug renders the table as TSV (benchmarks × engines).
func TSVFirstBug(t FirstBugTable) string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, e := range t.Engines {
		b.WriteString("\t")
		b.WriteString(e)
	}
	b.WriteString("\tkind\n")
	for _, row := range t.Rows {
		b.WriteString(row.Bench)
		kinds := rowKinds(row)
		mixed := len(kinds) > 1
		for _, c := range row.Cells {
			fmt.Fprintf(&b, "\t%s", c.cellText(mixed))
		}
		fmt.Fprintf(&b, "\t%s\n", strings.Join(kinds, ", "))
	}
	return b.String()
}

// MarkdownFirstBug renders the table plus per-engine summary as
// markdown.
func MarkdownFirstBug(t FirstBugTable, limit int) string {
	var b strings.Builder
	b.WriteString("| benchmark |")
	for _, e := range t.Engines {
		fmt.Fprintf(&b, " %s |", e)
	}
	b.WriteString(" kind |\n|---|")
	for range t.Engines {
		b.WriteString("---:|")
	}
	b.WriteString(":--|\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |", row.Bench)
		kinds := rowKinds(row)
		mixed := len(kinds) > 1
		for _, c := range row.Cells {
			fmt.Fprintf(&b, " %s |", c.cellText(mixed))
		}
		fmt.Fprintf(&b, " %s |\n", strings.Join(kinds, ", "))
	}
	fmt.Fprintf(&b, "\nSchedule limit %d; cells show schedules executed until the first bug (\"-\" = space exhausted bug-free, \">limit\" = budget exhausted without a bug).\n\n", limit)
	b.WriteString(firstBugSummaryText(t))
	return b.String()
}

// firstBugSummaryText renders the per-engine summary lines shared by
// the markdown and plain renderings.
func firstBugSummaryText(t FirstBugTable) string {
	var b strings.Builder
	for _, s := range SummarizeFirstBug(t) {
		line := fmt.Sprintf("%-20s found %d/%d bugs", s.Engine, s.Found, s.Buggy)
		if s.Comparable > 0 {
			line += fmt.Sprintf("; %d schedules total over the %d bugs every engine found",
				s.TotalSchedules, s.Comparable)
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// SummaryFirstBug renders the per-engine summary for terminal output.
func SummaryFirstBug(t FirstBugTable) string { return firstBugSummaryText(t) }
