package figures

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// smallCorpus picks a representative slice of the corpus: coarse-lock
// (below diagonal), shared-data (diagonal) and a racy benchmark.
func smallCorpus(t *testing.T) []bench.Benchmark {
	t.Helper()
	names := []string{
		"coarse-disjoint-3x1",
		"coarse-readonly-3",
		"coarse-shared-3",
		"bank-global-2",
		"counter-racy-2x1",
		"philosophers-2",
	}
	out := make([]bench.Benchmark, 0, len(names))
	for _, n := range names {
		b, ok := bench.ByName(n)
		if !ok {
			t.Fatalf("missing benchmark %s", n)
		}
		out = append(out, b)
	}
	return out
}

func TestFig2SmallSweep(t *testing.T) {
	rows, err := Fig2(smallCorpus(t), Options{ScheduleLimit: 5000, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if !(r.States <= r.LazyHBRs && r.LazyHBRs <= r.HBRs && r.HBRs <= r.Schedules) {
			t.Errorf("%s: inequality chain broken: %+v", r.Name, r)
		}
	}
	// Coarse-lock benchmarks collapse to a single lazy class.
	for _, n := range []string{"coarse-disjoint-3x1", "coarse-readonly-3", "bank-global-2"} {
		if r := byName[n]; r.LazyHBRs != 1 || r.HBRs <= 1 {
			t.Errorf("%s: expected below-diagonal point, got hbrs=%d lazy=%d", n, r.HBRs, r.LazyHBRs)
		}
	}
	// Shared-data benchmark sits on the diagonal.
	if r := byName["coarse-shared-3"]; r.HBRs != r.LazyHBRs {
		t.Errorf("coarse-shared-3: expected diagonal point, got hbrs=%d lazy=%d", r.HBRs, r.LazyHBRs)
	}

	s := SummarizeFig2(rows)
	if s.BelowDiagonal < 3 {
		t.Errorf("below diagonal = %d, want ≥ 3", s.BelowDiagonal)
	}
	if s.RedundantPct() <= 0 || s.RedundantPct() > 100 {
		t.Errorf("redundancy pct = %f", s.RedundantPct())
	}
}

func TestFig3SmallSweep(t *testing.T) {
	rows, err := Fig3(smallCorpus(t), Options{ScheduleLimit: 50, MaxSteps: 500})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's guarantee: regular caching never reaches MORE
		// lazy classes than lazy caching within the same budget.
		if r.RegularCaching > r.LazyCaching {
			t.Errorf("%s: regular caching ahead (%d > %d) — impossible", r.Name, r.RegularCaching, r.LazyCaching)
		}
	}
	s := SummarizeFig3(rows)
	if s.RegularWins != 0 {
		t.Errorf("RegularWins = %d, must be 0", s.RegularWins)
	}
	if s.ExtraPct() < 0 {
		t.Errorf("ExtraPct = %f", s.ExtraPct())
	}
}

func TestRendering(t *testing.T) {
	rows2 := []Fig2Row{
		{ID: 1, Name: "a", Schedules: 100, HBRs: 50, LazyHBRs: 10, States: 2, HitLimit: true},
		{ID: 2, Name: "b", Schedules: 10, HBRs: 5, LazyHBRs: 5, States: 5},
	}
	tsv := TSV2(rows2)
	if !strings.Contains(tsv, "a\t100\t50\t10\t2\ttrue") {
		t.Errorf("TSV2 malformed:\n%s", tsv)
	}
	md := MarkdownFig2(rows2, 1000)
	if !strings.Contains(md, "| 1 | a | 100 | 50 | 10 | 2 | true |") {
		t.Errorf("MarkdownFig2 malformed:\n%s", md)
	}
	if !strings.Contains(md, "1/2 benchmarks below the diagonal") {
		t.Errorf("summary line missing:\n%s", md)
	}

	rows3 := []Fig3Row{
		{ID: 1, Name: "a", RegularCaching: 3, LazyCaching: 9},
		{ID: 2, Name: "b", RegularCaching: 4, LazyCaching: 4},
	}
	tsv3 := TSV3(rows3)
	if !strings.Contains(tsv3, "a\t3\t9") {
		t.Errorf("TSV3 malformed:\n%s", tsv3)
	}
	md3 := MarkdownFig3(rows3, 1000)
	if !strings.Contains(md3, "1/2 benchmarks") {
		t.Errorf("MarkdownFig3 summary wrong:\n%s", md3)
	}

	sc := Scatter(Fig2Points(rows2), 40, 12, "x", "y")
	if !strings.Contains(sc, "1") || !strings.Contains(sc, ".") {
		t.Errorf("scatter missing point or diagonal:\n%s", sc)
	}
	sc3 := Scatter(Fig3Points(rows3), 40, 12, "x", "y")
	if len(strings.Split(sc3, "\n")) < 12 {
		t.Error("scatter too short")
	}
	// Degenerate sizes are clamped, single point at origin works.
	_ = Scatter([]Point{{ID: 7, X: 1, Y: 1}}, 1, 1, "x", "y")
}

func TestSummaryArithmetic(t *testing.T) {
	s := SummarizeFig2([]Fig2Row{
		{HBRs: 100, LazyHBRs: 20},
		{HBRs: 10, LazyHBRs: 10},
		{HBRs: 50, LazyHBRs: 40},
	})
	if s.BelowDiagonal != 2 || s.HBRsBelow != 150 || s.RedundantBelow != 90 {
		t.Errorf("summary = %+v", s)
	}
	if got := s.RedundantPct(); got != 60 {
		t.Errorf("pct = %f, want 60", got)
	}
	empty := SummarizeFig2(nil)
	if empty.RedundantPct() != 0 {
		t.Error("empty summary pct must be 0")
	}

	s3 := SummarizeFig3([]Fig3Row{
		{RegularCaching: 10, LazyCaching: 15},
		{RegularCaching: 5, LazyCaching: 5},
	})
	if s3.LazyWins != 1 || s3.ExtraLazyHBRs != 5 || s3.ExtraPct() != 50 {
		t.Errorf("fig3 summary = %+v", s3)
	}
}

// TestParallelSweepMatchesSequential: the parallel sweep must produce
// byte-identical rows in the same order as the sequential one.
func TestParallelSweepMatchesSequential(t *testing.T) {
	corpus := smallCorpus(t)
	seqOpt := Options{ScheduleLimit: 300, MaxSteps: 500, Parallelism: 1}
	parOpt := Options{ScheduleLimit: 300, MaxSteps: 500, Parallelism: 4}

	seq2, err := Fig2(corpus, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := Fig2(corpus, parOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq2) != len(par2) {
		t.Fatalf("row counts differ: %d vs %d", len(seq2), len(par2))
	}
	for i := range seq2 {
		if seq2[i] != par2[i] {
			t.Errorf("fig2 row %d differs:\n seq=%+v\n par=%+v", i, seq2[i], par2[i])
		}
	}

	seq3, err := Fig3(corpus, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	par3, err := Fig3(corpus, parOpt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq3 {
		if seq3[i] != par3[i] {
			t.Errorf("fig3 row %d differs:\n seq=%+v\n par=%+v", i, seq3[i], par3[i])
		}
	}
}

// TestParallelismDefaults pins the worker-count resolution.
func TestParallelismDefaults(t *testing.T) {
	if got := (Options{Parallelism: 0}).workers(); got != 1 {
		t.Errorf("Parallelism 0 → %d workers, want 1", got)
	}
	if got := (Options{Parallelism: 3}).workers(); got != 3 {
		t.Errorf("Parallelism 3 → %d workers", got)
	}
	if got := (Options{Parallelism: -1}).workers(); got < 1 {
		t.Errorf("Parallelism -1 → %d workers", got)
	}
}
