// Package figures regenerates the paper's evaluation artifacts:
//
//   - Figure 2: for every benchmark, the number of distinct terminal
//     HBRs (x) vs distinct terminal lazy HBRs (y) explored by DPOR
//     within the schedule limit, plus the summary statistics (how many
//     benchmarks fall below the diagonal; what fraction of unique HBRs
//     is lazy-redundant across them).
//   - Figure 3: the number of distinct terminal lazy HBRs reached by
//     regular HBR caching (x) vs lazy HBR caching (y), plus the
//     below-diagonal count and the additional-coverage percentage.
//
// Output formats: TSV rows (machine-readable), an ASCII log-log
// scatter (the figures' shape at a glance) and markdown tables for
// EXPERIMENTS.md.
package figures

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/engines"
)

// The engine lists behind each figure come from the shared engine
// registry (internal/engines) — the same canonical catalogue the
// campaign grammar, cmd/eval's default grid and the sct facade use —
// so a renamed or missing engine fails loudly at init, not as a
// half-empty figure.
var (
	fig2Engines = registrySpecs("dpor")
	fig3Engines = registrySpecs("hbr-caching", "lazy-hbr-caching")
)

// registrySpecs resolves engine names against the registry; an
// unregistered name is a programmer error.
func registrySpecs(names ...string) []campaign.EngineSpec {
	out := make([]campaign.EngineSpec, len(names))
	for i, n := range names {
		if _, ok := engines.Lookup(n); !ok {
			panic(fmt.Sprintf("figures: engine %q is not registered", n))
		}
		out[i] = campaign.EngineSpec(n)
	}
	return out
}

// Options configures a figure sweep.
type Options struct {
	// ScheduleLimit per benchmark; the paper uses 100,000.
	ScheduleLimit int
	// MaxSteps bounds each execution.
	MaxSteps int
	// Progress, when non-nil, receives one line per benchmark.
	Progress io.Writer
	// Parallelism is the number of benchmark cells explored
	// concurrently through the campaign runner (explorations are
	// single-threaded and independent, so the sweep is
	// embarrassingly parallel). 0 or 1 runs sequentially; negative
	// uses GOMAXPROCS.
	Parallelism int
	// Ctx, when non-nil, bounds the whole sweep by deadline or
	// cancellation.
	Ctx context.Context
}

func (o Options) workers() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	default:
		return o.Parallelism
	}
}

func (o Options) limit() int {
	if o.ScheduleLimit <= 0 {
		return 100000
	}
	return o.ScheduleLimit
}

// runCampaign executes one cell per (benchmark, engine) pair through
// the campaign worker pool and returns the results in input order.
func runCampaign(benches []bench.Benchmark, engines []campaign.EngineSpec, opt Options) ([]campaign.CellResult, error) {
	names := make([]string, len(benches))
	for i, b := range benches {
		names[i] = b.Name
	}
	cells := campaign.Grid(names, engines, opt.limit(), opt.MaxSteps)
	runner := campaign.Runner{Workers: opt.workers()}
	if opt.Progress != nil {
		total := len(cells)
		runner.OnResult = func(r campaign.CellResult) {
			fmt.Fprintf(opt.Progress, "%4d/%d %-24s %-18s schedules=%-7d hbrs=%-6d lazy=%-6d states=%-6d limit=%v\n",
				r.Index+1, total, r.Cell.Bench, r.Cell.Engine, r.Result.Schedules,
				r.Result.DistinctHBRs, r.Result.DistinctLazyHBRs, r.Result.DistinctStates, r.Result.HitLimit)
		}
	}
	results, err := runner.Run(opt.Ctx, cells)
	if err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	if err := campaign.FirstError(results); err != nil {
		return nil, fmt.Errorf("figures: %w", err)
	}
	return results, nil
}

// Fig2Row is one benchmark's Figure 2 point.
type Fig2Row struct {
	ID        int
	Name      string
	Schedules int
	HBRs      int
	LazyHBRs  int
	States    int
	// HitLimit mirrors the paper's underlining: the schedule limit
	// stopped the search, so unexplored terminal states likely
	// remain.
	HitLimit bool
}

// Fig2 runs DPOR over the given benchmarks through the campaign
// runner (in parallel when configured) and returns one row each, in
// input order.
func Fig2(benches []bench.Benchmark, opt Options) ([]Fig2Row, error) {
	results, err := runCampaign(benches, fig2Engines, opt)
	if err != nil {
		return nil, err
	}
	return Fig2FromCells(results)
}

// Fig2FromCells builds Figure 2 rows from streamed campaign cell
// results (one "dpor" cell per benchmark, any order — e.g. parsed
// back from a `eval -fig campaign -json` run).
func Fig2FromCells(results []campaign.CellResult) ([]Fig2Row, error) {
	rows := make([]Fig2Row, 0, len(results))
	for _, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("figures: %s/%s: %s", r.Cell.Bench, r.Cell.Engine, r.Err)
		}
		bm, ok := bench.ByName(r.Cell.Bench)
		if !ok {
			return nil, fmt.Errorf("figures: unknown benchmark %q in cell stream", r.Cell.Bench)
		}
		rows = append(rows, Fig2Row{
			ID:        bm.ID,
			Name:      bm.Name,
			Schedules: r.Result.Schedules,
			HBRs:      r.Result.DistinctHBRs,
			LazyHBRs:  r.Result.DistinctLazyHBRs,
			States:    r.Result.DistinctStates,
			HitLimit:  r.Result.HitLimit,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows, nil
}

// Fig2Summary aggregates Figure 2 the way the paper's prose does.
type Fig2Summary struct {
	Benchmarks int
	// BelowDiagonal counts benchmarks with LazyHBRs < HBRs.
	BelowDiagonal int
	// HBRsBelow and RedundantBelow sum, over below-diagonal
	// benchmarks, the unique HBRs explored and how many of them were
	// lazy-redundant (HBRs − LazyHBRs). The paper reports 910,007
	// redundant (80%) across its 33 below-diagonal benchmarks.
	HBRsBelow      int
	RedundantBelow int
}

// RedundantPct is the percentage of unique HBRs that were redundant
// across the below-diagonal benchmarks.
func (s Fig2Summary) RedundantPct() float64 {
	if s.HBRsBelow == 0 {
		return 0
	}
	return 100 * float64(s.RedundantBelow) / float64(s.HBRsBelow)
}

// SummarizeFig2 computes the paper's Figure 2 prose statistics.
func SummarizeFig2(rows []Fig2Row) Fig2Summary {
	s := Fig2Summary{Benchmarks: len(rows)}
	for _, r := range rows {
		if r.LazyHBRs < r.HBRs {
			s.BelowDiagonal++
			s.HBRsBelow += r.HBRs
			s.RedundantBelow += r.HBRs - r.LazyHBRs
		}
	}
	return s
}

// Fig3Row is one benchmark's Figure 3 point: distinct terminal lazy
// HBRs reached by each caching engine within the limit.
type Fig3Row struct {
	ID   int
	Name string
	// RegularCaching is the x axis (#lazy HBRs reached by regular
	// HBR caching); LazyCaching is the y axis.
	RegularCaching int
	LazyCaching    int
	HitLimitReg    bool
	HitLimitLazy   bool
}

// Fig3 runs both caching engines over the benchmarks through the
// campaign runner (each engine is its own cell, so one benchmark's two
// runs can proceed on different workers), in input order.
func Fig3(benches []bench.Benchmark, opt Options) ([]Fig3Row, error) {
	results, err := runCampaign(benches, fig3Engines, opt)
	if err != nil {
		return nil, err
	}
	return Fig3FromCells(results)
}

// Fig3FromCells builds Figure 3 rows from streamed campaign cell
// results: for every benchmark, one "hbr-caching" and one
// "lazy-hbr-caching" cell, in any order.
func Fig3FromCells(results []campaign.CellResult) ([]Fig3Row, error) {
	byBench := map[string]*Fig3Row{}
	for _, r := range results {
		if r.Err != "" {
			return nil, fmt.Errorf("figures: %s/%s: %s", r.Cell.Bench, r.Cell.Engine, r.Err)
		}
		bm, ok := bench.ByName(r.Cell.Bench)
		if !ok {
			return nil, fmt.Errorf("figures: unknown benchmark %q in cell stream", r.Cell.Bench)
		}
		row := byBench[bm.Name]
		if row == nil {
			row = &Fig3Row{ID: bm.ID, Name: bm.Name, RegularCaching: -1, LazyCaching: -1}
			byBench[bm.Name] = row
		}
		switch r.Cell.Engine {
		case fig3Engines[0]:
			row.RegularCaching = r.Result.DistinctLazyHBRs
			row.HitLimitReg = r.Result.HitLimit
		case fig3Engines[1]:
			row.LazyCaching = r.Result.DistinctLazyHBRs
			row.HitLimitLazy = r.Result.HitLimit
		default:
			return nil, fmt.Errorf("figures: unexpected engine %q in Figure 3 cell stream", r.Cell.Engine)
		}
	}
	rows := make([]Fig3Row, 0, len(byBench))
	for _, row := range byBench {
		if row.RegularCaching < 0 || row.LazyCaching < 0 {
			return nil, fmt.Errorf("figures: benchmark %q is missing one of its two caching cells", row.Name)
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows, nil
}

// Fig3Summary aggregates Figure 3 the way the paper's prose does. The
// paper's diagram puts regular caching on x and lazy caching on y, and
// counts benchmarks *below* the diagonal as those where regular
// caching reached fewer lazy HBRs — i.e. lazy caching explored more.
// (Axis conventions differ between the two figures in the paper; we
// follow the prose: "18 benchmarks ... lazy HBR caching explored a
// total of 8,969 (84%) more terminal lazy HBRs".)
type Fig3Summary struct {
	Benchmarks int
	// LazyWins counts benchmarks where lazy caching reached strictly
	// more terminal lazy HBRs within the limit.
	LazyWins int
	// RegularSumWins / ExtraLazyHBRs sum, over those benchmarks, the
	// lazy HBRs reached by regular caching and the additional ones
	// lazy caching reached.
	RegularSumWins int
	ExtraLazyHBRs  int
	// RegularWins counts benchmarks where regular caching reached
	// more (must be 0: regular caching never prunes a class lazy
	// caching keeps).
	RegularWins int
}

// ExtraPct is the additional coverage percentage across LazyWins
// benchmarks.
func (s Fig3Summary) ExtraPct() float64 {
	if s.RegularSumWins == 0 {
		return 0
	}
	return 100 * float64(s.ExtraLazyHBRs) / float64(s.RegularSumWins)
}

// SummarizeFig3 computes the paper's Figure 3 prose statistics.
func SummarizeFig3(rows []Fig3Row) Fig3Summary {
	s := Fig3Summary{Benchmarks: len(rows)}
	for _, r := range rows {
		switch {
		case r.LazyCaching > r.RegularCaching:
			s.LazyWins++
			s.RegularSumWins += r.RegularCaching
			s.ExtraLazyHBRs += r.LazyCaching - r.RegularCaching
		case r.RegularCaching > r.LazyCaching:
			s.RegularWins++
		}
	}
	return s
}

// TSV2 renders Figure 2 rows as a TSV table.
func TSV2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("id\tname\tschedules\thbrs\tlazy_hbrs\tstates\thit_limit\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%s\t%d\t%d\t%d\t%d\t%v\n",
			r.ID, r.Name, r.Schedules, r.HBRs, r.LazyHBRs, r.States, r.HitLimit)
	}
	return b.String()
}

// TSV3 renders Figure 3 rows as a TSV table.
func TSV3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("id\tname\thbr_caching_lazy_hbrs\tlazy_caching_lazy_hbrs\thit_limit_reg\thit_limit_lazy\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%s\t%d\t%d\t%v\t%v\n",
			r.ID, r.Name, r.RegularCaching, r.LazyCaching, r.HitLimitReg, r.HitLimitLazy)
	}
	return b.String()
}

// Point is one scatter point.
type Point struct {
	ID   int
	X, Y int
}

// Scatter renders points on a log-log ASCII grid with equal axes and a
// diagonal, mirroring the paper's plots: points below the diagonal are
// benchmarks where y < x. Points are drawn as the last two digits of
// their ID ('#' marks collisions).
func Scatter(points []Point, width, height int, xlabel, ylabel string) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	maxV := 1.0
	for _, p := range points {
		maxV = math.Max(maxV, math.Max(float64(p.X), float64(p.Y)))
	}
	logMax := math.Log10(maxV)
	if logMax <= 0 {
		logMax = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Diagonal y = x.
	for c := 0; c < width; c++ {
		rFrac := float64(c) / float64(width-1)
		row := height - 1 - int(rFrac*float64(height-1)+0.5)
		grid[row][c] = '.'
	}
	cell := func(v int) float64 {
		if v < 1 {
			v = 1
		}
		return math.Log10(float64(v)) / logMax
	}
	for _, p := range points {
		c := int(cell(p.X)*float64(width-2) + 0.5)
		r := height - 1 - int(cell(p.Y)*float64(height-1)+0.5)
		label := fmt.Sprintf("%d", p.ID%100)
		for k := 0; k < len(label) && c+k < width; k++ {
			if grid[r][c+k] != ' ' && grid[r][c+k] != '.' {
				grid[r][c+k] = '#'
			} else {
				grid[r][c+k] = label[k]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (log scale up to %.0f) vs %s\n", ylabel, maxV, xlabel)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "> " + xlabel + "\n")
	return b.String()
}

// Fig2Points adapts Figure 2 rows for Scatter (x=HBRs, y=lazy HBRs).
func Fig2Points(rows []Fig2Row) []Point {
	out := make([]Point, len(rows))
	for i, r := range rows {
		out[i] = Point{ID: r.ID, X: r.HBRs, Y: r.LazyHBRs}
	}
	return out
}

// Fig3Points adapts Figure 3 rows for Scatter (x=regular caching,
// y=lazy caching).
func Fig3Points(rows []Fig3Row) []Point {
	out := make([]Point, len(rows))
	for i, r := range rows {
		out[i] = Point{ID: r.ID, X: r.RegularCaching, Y: r.LazyCaching}
	}
	return out
}

// MarkdownFig2 renders Figure 2 rows plus summary as markdown, for
// EXPERIMENTS.md.
func MarkdownFig2(rows []Fig2Row, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| id | benchmark | schedules | #HBRs | #lazy HBRs | #states | hit limit |\n")
	fmt.Fprintf(&b, "|---:|---|---:|---:|---:|---:|:--|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %s | %d | %d | %d | %d | %v |\n",
			r.ID, r.Name, r.Schedules, r.HBRs, r.LazyHBRs, r.States, r.HitLimit)
	}
	s := SummarizeFig2(rows)
	fmt.Fprintf(&b, "\nSchedule limit %d. %d/%d benchmarks below the diagonal; across them %d of %d unique HBRs (%.0f%%) were lazy-redundant.\n",
		limit, s.BelowDiagonal, s.Benchmarks, s.RedundantBelow, s.HBRsBelow, s.RedundantPct())
	return b.String()
}

// MarkdownFig3 renders Figure 3 rows plus summary as markdown.
func MarkdownFig3(rows []Fig3Row, limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| id | benchmark | HBR caching (#lazy HBRs) | lazy HBR caching (#lazy HBRs) | hit limit (reg/lazy) |\n")
	fmt.Fprintf(&b, "|---:|---|---:|---:|:--|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %s | %d | %d | %v/%v |\n",
			r.ID, r.Name, r.RegularCaching, r.LazyCaching, r.HitLimitReg, r.HitLimitLazy)
	}
	s := SummarizeFig3(rows)
	fmt.Fprintf(&b, "\nSchedule limit %d. Lazy caching reached more terminal lazy HBRs on %d/%d benchmarks (regular caching never on any: %d), exploring %d (%.0f%%) more across them.\n",
		limit, s.LazyWins, s.Benchmarks, s.RegularWins, s.ExtraLazyHBRs, s.ExtraPct())
	return b.String()
}
