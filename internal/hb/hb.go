// Package hb computes happens-before relations over execution traces,
// online, one event at a time. It is the core of the reproduction of
// "The Lazy Happens-Before Relation" (Thomson & Donaldson, PPoPP 2015).
//
// Three relations are tracked simultaneously, as vector clocks:
//
//   - The regular happens-before relation (HBR): program order; edges
//     between conflicting variable accesses (same variable, at least
//     one write); a total order per mutex over all lock/unlock events;
//     spawn/join edges. This is condition (a)+(b)+(c) of the paper's
//     Section 2 definition.
//   - The lazy happens-before relation (lazy HBR): identical except
//     that lock and unlock events induce no inter-thread edges (the
//     paper's modified condition (b)). The events remain nodes of the
//     partial order and still carry program-order and transitive edges.
//   - The sync-only relation: program order plus mutex and spawn/join
//     edges but no variable edges. Conflicting variable accesses that
//     are unordered by this relation constitute data races; the tracker
//     reports them FastTrack-style.
//
// Channel operations (send/recv/close/select) induce a per-channel
// total order in all three relations, mirroring event.Dependent: any
// two operations touching a common channel are dependent, so the
// happens-before relation used for partial-order reduction must order
// them. The per-channel clock subsumes the exact send→recv pairing and
// close→recv edges (the k-th receive joins a clock that already
// includes the k-th send, and any receive after a close joins the
// close's clock). Unlike mutex edges, channel edges are KEPT by the
// lazy relation: channels carry data, so their ordering is
// value-relevant the way variable edges are, not schedule-incidental
// the way lock handoffs are. A select joins and republishes the clocks
// of every channel in its case set — committing (even to the default
// case) observes the readiness of all of them.
//
// Each partial order is summarised by a canonical Fingerprint that is
// invariant under linearization, so two schedules have equal
// fingerprints iff they have equal (lazy) HBRs (up to hash collision
// over 128 bits). Fingerprints of every prefix are available, which is
// what HBR caching and lazy HBR caching consume.
//
// # Copy-on-write clocks
//
// The tracker follows an immutable-after-publication discipline: every
// clock reachable from tracker state (thread clocks, variable metadata,
// mutex clocks, clocks returned by Apply) is never mutated again once
// stored. Updates allocate a fresh clock — bump-allocated from an
// internal arena, so the common case costs zero heap allocations — and
// replace the reference. Published clocks can therefore be shared
// freely: Clone copies O(threads+vars+mutexes) slice headers and no
// clock contents, which is what makes snapshot-based exploration cheap.
package hb

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/vclock"
)

// Fingerprint canonically summarises a partial order of labelled
// events. It combines per-event hashes with commutative operations
// (64-bit sum and xor of an independently mixed copy), so the result is
// independent of the order in which events are added.
type Fingerprint [2]uint64

// Add folds one event hash into the fingerprint.
func (f *Fingerprint) Add(h uint64) {
	f[0] += h
	f[1] ^= mix64(h)
}

// IsZero reports whether no event has been added.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders the fingerprint in hex.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x-%016x", f[0], f[1]) }

// mix64 is the splitmix64 finalizer, used to decorrelate the xor
// accumulator from the sum accumulator.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Race reports a pair of conflicting variable accesses unordered by the
// sync-only relation.
type Race struct {
	Var int32
	// Access is the later access (the one at which the race was
	// detected).
	Access event.Event
	// Prev is a representative earlier conflicting access.
	Prev event.Event
}

// String renders the race for reports.
func (r Race) String() string {
	return fmt.Sprintf("data race on v%d: %v vs %v", r.Var, r.Prev, r.Access)
}

// Clocks carries the per-event results of Tracker.Apply. The clocks are
// shared with the tracker's internal state under the copy-on-write
// discipline: they are immutable and must not be modified.
type Clocks struct {
	// HB is the event's regular happens-before vector clock.
	HB vclock.VC
	// Lazy is the event's lazy happens-before vector clock.
	Lazy vclock.VC
}

// clockArena bump-allocates fixed-width clocks from chunks. Chunks are
// never reused or freed back: once a clock is published it stays
// immutable, so its memory can only be reclaimed by the GC when the
// whole execution is dropped. Chunk sizes double from a small start so
// short-lived tracker clones (one per exploration backtrack) stay
// cheap.
type clockArena struct {
	chunk []int32
	next  int
	// allocated counts ints handed out over the arena's lifetime. It
	// is monotone under forward execution, which makes it a watermark:
	// the undo log records it per event, so rewinding can tell whether
	// the clocks allocated since a mark are still private to this
	// tracker (reusable) or published into a clone (must leak to GC).
	allocated int64
}

// maxChunkInts caps chunk growth at 16 KiB per chunk.
const maxChunkInts = 4096

func (a *clockArena) alloc(n int) vclock.VC {
	a.allocated += int64(n)
	if len(a.chunk) < n {
		size := a.next
		if size < 4*n {
			size = 4 * n
		}
		a.chunk = make([]int32, size)
		a.next = size * 2
		if a.next > maxChunkInts {
			a.next = maxChunkInts
		}
	}
	v := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	return vclock.VC(v)
}

// Tracker computes the three relations online. It is not safe for
// concurrent use; explorations are single-threaded by construction.
type Tracker struct {
	nthreads, nvars, nmutexes, nchans int

	// slab backs every clock-reference field below in one allocation,
	// so Clone is a single copy. All clocks referenced from the slab
	// are immutable (copy-on-write); only the references change.
	slab []vclock.VC

	// Per-thread clocks of the last executed event (bottom before
	// the first event). For spawned threads these are seeded with
	// the parent's spawn-event clock.
	hbT, lazyT, syncT []vclock.VC

	// Regular-HB variable metadata: clock of the last write, and the
	// join of the clocks of all reads since that write.
	wHB, rHB []vclock.VC
	// Lazy-HB variable metadata (identical structure; variable edges
	// are kept by the lazy relation).
	wLazy, rLazy []vclock.VC
	// Sync-only variable metadata, for race detection only.
	wSync, rSync []vclock.VC

	// Per-mutex clock of the last lock/unlock event, for the regular
	// and sync relations. The lazy relation has no mutex state.
	mHB, mSync []vclock.VC

	// Per-channel clock of the last channel operation, for all three
	// relations: channel edges are data-carrying, so the lazy relation
	// keeps them (only mutex edges are dropped).
	chHB, chLazy, chSync []vclock.VC

	// Last-access events per variable, for race reports; evSlab and
	// hasSlab back the four views in one allocation each.
	evSlab                  []event.Event
	lastWriteEv, lastReadEv []event.Event
	hasSlab                 []bool
	hasWriteEv, hasReadEv   []bool

	hbFP, lazyFP Fingerprint
	races        []Race
	events       int

	arena clockArena

	// undo is the reversal log recorded when undoEnabled: one record
	// per applied event, letting UndoTo rewind the tracker in place
	// (see undo.go). arenaFloor is the arena watermark at the last
	// Clone: arena storage allocated before it is shared with clones
	// and must never be reused by a rewind.
	undo        []undoRec
	undoEnabled bool
	arenaFloor  int64
}

// carve derives the named views from the backing slabs.
func (tr *Tracker) carve() {
	s := tr.slab
	take := func(n int) []vclock.VC {
		out := s[:n:n]
		s = s[n:]
		return out
	}
	n, v, m, c := tr.nthreads, tr.nvars, tr.nmutexes, tr.nchans
	tr.hbT, tr.lazyT, tr.syncT = take(n), take(n), take(n)
	tr.wHB, tr.rHB = take(v), take(v)
	tr.wLazy, tr.rLazy = take(v), take(v)
	tr.wSync, tr.rSync = take(v), take(v)
	tr.mHB, tr.mSync = take(m), take(m)
	tr.chHB, tr.chLazy, tr.chSync = take(c), take(c), take(c)
	tr.lastWriteEv, tr.lastReadEv = tr.evSlab[:v:v], tr.evSlab[v:]
	tr.hasWriteEv, tr.hasReadEv = tr.hasSlab[:v:v], tr.hasSlab[v:]
}

// NewTracker creates a tracker for a channel-free program universe of
// the given sizes.
func NewTracker(nthreads, nvars, nmutexes int) *Tracker {
	return NewTrackerChans(nthreads, nvars, nmutexes, 0)
}

// NewTrackerChans creates a tracker for a program universe that
// includes nchans channels.
func NewTrackerChans(nthreads, nvars, nmutexes, nchans int) *Tracker {
	tr := &Tracker{
		nthreads: nthreads,
		nvars:    nvars,
		nmutexes: nmutexes,
		nchans:   nchans,
		slab:     make([]vclock.VC, 3*nthreads+6*nvars+2*nmutexes+3*nchans),
		evSlab:   make([]event.Event, 2*nvars),
		hasSlab:  make([]bool, 2*nvars),
	}
	tr.carve()
	return tr
}

// Events returns the number of events applied so far.
func (tr *Tracker) Events() int { return tr.events }

// Universe returns the program universe sizes the tracker was created
// for, so consumers of shipped tracker clones (work-stealing frontier
// units) can validate a seed against the program it will explore.
func (tr *Tracker) Universe() (nthreads, nvars, nmutexes int) {
	return tr.nthreads, tr.nvars, tr.nmutexes
}

// Channels returns the channel-universe size the tracker was created
// for (the fourth Universe dimension, kept separate for
// compatibility).
func (tr *Tracker) Channels() int { return tr.nchans }

// HBFingerprint returns the fingerprint of the regular HBR of the
// event prefix applied so far.
func (tr *Tracker) HBFingerprint() Fingerprint { return tr.hbFP }

// LazyFingerprint returns the fingerprint of the lazy HBR of the event
// prefix applied so far.
func (tr *Tracker) LazyFingerprint() Fingerprint { return tr.lazyFP }

// Races returns the data races detected so far.
func (tr *Tracker) Races() []Race { return tr.races }

// ThreadClock returns thread t's regular-HB clock after its last event.
// The returned slice must not be modified.
func (tr *Tracker) ThreadClock(t event.ThreadID) vclock.VC { return tr.hbT[t] }

// LazyThreadClock returns thread t's lazy-HB clock after its last
// event. The returned slice must not be modified.
func (tr *Tracker) LazyThreadClock(t event.ThreadID) vclock.VC { return tr.lazyT[t] }

// HappensBeforeNext reports whether an already-executed event e (with
// per-thread index e.Index, executed by e.Thread) happens-before the
// *next* transition of thread p under the regular HBR. This is the
// i →(S) p test of Flanagan–Godefroid DPOR: e is ordered before
// whatever p does next iff p's last event already knows e.Index+1
// events of e.Thread (or p is e's own thread).
func (tr *Tracker) HappensBeforeNext(e event.Event, p event.ThreadID) bool {
	if e.Thread == p {
		return true
	}
	return tr.hbT[p].Get(int(e.Thread)) >= e.Index+1
}

// RacesWithNext reports whether the already-executed event e races
// with thread q's pending (announced but unexecuted) operation op:
// the two operations are dependent, could be co-enabled in some state,
// and e is not already ordered before q's next transition by the
// regular happens-before relation. This is the independence query
// partial-order sampling (POS) consults after executing e: a pending
// operation that commutes with e reaches the same Mazurkiewicz trace
// class whichever order the two run in, so only the threads whose
// pending operations race with e need their schedule priorities
// redrawn — the correction that steers a random walk toward sampling
// trace classes, not schedules, closer to uniformly.
func (tr *Tracker) RacesWithNext(e event.Event, q event.ThreadID, op event.Op) bool {
	if q == e.Thread {
		return false
	}
	if !event.Dependent(e.Op, op) || !event.MayBeCoEnabled(e.Op, op) {
		return false
	}
	return !tr.HappensBeforeNext(e, q)
}

// fresh returns a new unpublished full-width clock initialised to
// parent (bottom if parent is nil/short). The tail beyond parent is
// cleared explicitly: arena storage is zeroed when a chunk is made but
// not when an undo rewind hands the same region out again.
func (tr *Tracker) fresh(parent vclock.VC) vclock.VC {
	v := tr.arena.alloc(tr.nthreads)
	n := copy(v, parent)
	clear(v[n:])
	return v
}

// joined returns a published clock equal to base ⊔ with. When base is
// bottom the already-published with is shared directly (copy-on-write);
// otherwise a fresh clock is built. with must be a published full-width
// clock.
func (tr *Tracker) joined(base, with vclock.VC) vclock.VC {
	if len(base) == 0 {
		return with
	}
	v := tr.fresh(base)
	return v.Join(with)
}

// Apply folds one executed event into all three relations and returns
// the event's regular and lazy clocks. The returned clocks are shared,
// immutable views of tracker state and must not be modified.
func (tr *Tracker) Apply(ev event.Event) Clocks {
	hb, lazy := tr.apply(ev)
	return Clocks{HB: hb, Lazy: lazy}
}

// ApplyFast is Apply for callers that do not consume the per-event
// clocks (the exploration hot path).
func (tr *Tracker) ApplyFast(ev event.Event) { tr.apply(ev) }

// apply computes the event's clocks on fresh arena storage, publishes
// them into tracker state (sharing, never copying) and folds the event
// into both fingerprints.
func (tr *Tracker) apply(ev event.Event) (hbc, lazyc vclock.VC) {
	t := int(ev.Thread)

	var rec *undoRec
	if tr.undoEnabled {
		rec = tr.record(ev)
	}

	// Start from the thread's program-order predecessor and tick. The
	// three clocks are unpublished until stored below, so in-place
	// Join/increment is safe; all clocks are full-width, so Join never
	// reallocates.
	hb := tr.fresh(tr.hbT[t])
	hb[t]++
	lazy := tr.fresh(tr.lazyT[t])
	lazy[t]++
	sync := tr.fresh(tr.syncT[t])
	sync[t]++

	switch ev.Kind {
	case event.KindRead:
		v := ev.Obj
		hb = hb.Join(tr.wHB[v])
		lazy = lazy.Join(tr.wLazy[v])
		if tr.hasWriteEv[v] && !tr.wSync[v].Leq(sync) {
			tr.races = append(tr.races, Race{Var: v, Access: ev, Prev: tr.lastWriteEv[v]})
		}
		tr.rHB[v] = tr.joined(tr.rHB[v], hb)
		tr.rLazy[v] = tr.joined(tr.rLazy[v], lazy)
		tr.rSync[v] = tr.joined(tr.rSync[v], sync)
		tr.lastReadEv[v] = ev
		tr.hasReadEv[v] = true

	case event.KindWrite:
		v := ev.Obj
		hb = hb.Join(tr.wHB[v]).Join(tr.rHB[v])
		lazy = lazy.Join(tr.wLazy[v]).Join(tr.rLazy[v])
		if tr.hasWriteEv[v] && !tr.wSync[v].Leq(sync) {
			tr.races = append(tr.races, Race{Var: v, Access: ev, Prev: tr.lastWriteEv[v]})
		} else if tr.hasReadEv[v] && !tr.rSync[v].Leq(sync) {
			tr.races = append(tr.races, Race{Var: v, Access: ev, Prev: tr.lastReadEv[v]})
		}
		tr.wHB[v] = hb
		tr.rHB[v] = nil
		tr.wLazy[v] = lazy
		tr.rLazy[v] = nil
		tr.wSync[v] = sync
		tr.rSync[v] = nil
		tr.lastWriteEv[v] = ev
		tr.hasWriteEv[v] = true
		tr.hasReadEv[v] = false

	case event.KindLock, event.KindUnlock:
		mu := ev.Obj
		// Mutex edges exist in the regular and sync relations
		// only: this is the entire difference that defines the
		// lazy HBR.
		hb = hb.Join(tr.mHB[mu])
		sync = sync.Join(tr.mSync[mu])
		tr.mHB[mu] = hb
		tr.mSync[mu] = sync

	case event.KindSpawn:
		// The child's first event must order after this spawn, in
		// all three relations (spawn edges are not mutex edges).
		c := int(ev.Obj)
		tr.hbT[c] = tr.joined(tr.hbT[c], hb)
		tr.lazyT[c] = tr.joined(tr.lazyT[c], lazy)
		tr.syncT[c] = tr.joined(tr.syncT[c], sync)

	case event.KindJoin:
		c := int(ev.Obj)
		hb = hb.Join(tr.hbT[c])
		lazy = lazy.Join(tr.lazyT[c])
		sync = sync.Join(tr.syncT[c])

	case event.KindAssert, event.KindPanic:
		// Thread-local: program order only.

	case event.KindSend, event.KindRecv, event.KindClose:
		// One total order per channel, in all three relations: every
		// pair of same-channel operations is dependent (the ring order,
		// the drained value, or a panic depends on their order), so all
		// of them must be HB-ordered; the per-channel clock achieves
		// exactly that and subsumes send→recv pairing and close→recv
		// edges. Channel edges carry data, so the lazy relation keeps
		// them (contrast KindLock/KindUnlock above).
		c := ev.Obj
		hb = hb.Join(tr.chHB[c])
		lazy = lazy.Join(tr.chLazy[c])
		sync = sync.Join(tr.chSync[c])
		tr.chHB[c] = hb
		tr.chLazy[c] = lazy
		tr.chSync[c] = sync

	case event.KindSelect:
		// A commit observes every case channel (it picked the lowest
		// ready one, or proved none ready for the default), so it joins
		// and republishes all of their clocks.
		for c, mask := int32(0), event.SelectCases(ev.Val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			hb = hb.Join(tr.chHB[c])
			lazy = lazy.Join(tr.chLazy[c])
			sync = sync.Join(tr.chSync[c])
		}
		for c, mask := int32(0), event.SelectCases(ev.Val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			tr.chHB[c] = hb
			tr.chLazy[c] = lazy
			tr.chSync[c] = sync
		}
	}

	tr.hbT[t] = hb
	tr.lazyT[t] = lazy
	tr.syncT[t] = sync

	hh, lh := eventHash(ev, hb), eventHash(ev, lazy)
	tr.hbFP.Add(hh)
	tr.lazyFP.Add(lh)
	tr.events++

	if rec != nil {
		// The fingerprint folds are commutative and invertible, so the
		// record keeps the two hashes and undo subtracts them back out.
		rec.hbHash, rec.lazyHash = hh, lh
	}

	return hb, lazy
}

// eventHash hashes an HBR node: its schedule-independent label
// (thread, per-thread index, kind, object, written/asserted value) and
// its incoming edges, which the vector clock captures exactly.
func eventHash(ev event.Event, vc vclock.VC) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mixByte := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix32 := func(x uint32) {
		mixByte(byte(x))
		mixByte(byte(x >> 8))
		mixByte(byte(x >> 16))
		mixByte(byte(x >> 24))
	}
	mix32(uint32(ev.Thread))
	mix32(uint32(ev.Index))
	mixByte(byte(ev.Kind))
	mix32(uint32(ev.Obj))
	switch ev.Kind {
	case event.KindWrite, event.KindAssert, event.KindPanic,
		event.KindSend, event.KindSelect:
		// Val is part of the node's label: the written/sent value, the
		// assert outcome, the panic code, or a select's case set.
		mix32(uint32(uint64(ev.Val)))
		mix32(uint32(uint64(ev.Val) >> 32))
	}
	// Fold in the clock; mix64 decorrelates from the label hash.
	return h ^ mix64(vc.Hash())
}

// Clone returns an independent copy of the tracker, enabling
// snapshot-based exploration. Under the copy-on-write discipline only
// clock *references* are copied — O(threads+vars+mutexes) header
// copies in three slab allocations, no clock contents — so cloning at
// every exploration step is cheap. The clone allocates future clocks
// from its own fresh arena; shared published clocks are never mutated
// by either side. The clone starts without an undo log even when the
// receiver records one.
func (tr *Tracker) Clone() *Tracker {
	// Every clock allocated so far is now reachable from the clone:
	// raise the arena floor so a later UndoTo on the receiver leaks
	// that storage to the GC instead of reusing it under the clone.
	tr.arenaFloor = tr.arena.allocated
	cp := &Tracker{
		nthreads: tr.nthreads,
		nvars:    tr.nvars,
		nmutexes: tr.nmutexes,
		nchans:   tr.nchans,
		slab:     append([]vclock.VC(nil), tr.slab...),
		evSlab:   append([]event.Event(nil), tr.evSlab...),
		hasSlab:  append([]bool(nil), tr.hasSlab...),
		hbFP:     tr.hbFP,
		lazyFP:   tr.lazyFP,
		races:    append([]Race(nil), tr.races...),
		events:   tr.events,
	}
	cp.carve()
	return cp
}
