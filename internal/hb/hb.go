// Package hb computes happens-before relations over execution traces,
// online, one event at a time. It is the core of the reproduction of
// "The Lazy Happens-Before Relation" (Thomson & Donaldson, PPoPP 2015).
//
// Three relations are tracked simultaneously, as vector clocks:
//
//   - The regular happens-before relation (HBR): program order; edges
//     between conflicting variable accesses (same variable, at least
//     one write); a total order per mutex over all lock/unlock events;
//     spawn/join edges. This is condition (a)+(b)+(c) of the paper's
//     Section 2 definition.
//   - The lazy happens-before relation (lazy HBR): identical except
//     that lock and unlock events induce no inter-thread edges (the
//     paper's modified condition (b)). The events remain nodes of the
//     partial order and still carry program-order and transitive edges.
//   - The sync-only relation: program order plus mutex and spawn/join
//     edges but no variable edges. Conflicting variable accesses that
//     are unordered by this relation constitute data races; the tracker
//     reports them FastTrack-style.
//
// Each partial order is summarised by a canonical Fingerprint that is
// invariant under linearization, so two schedules have equal
// fingerprints iff they have equal (lazy) HBRs (up to hash collision
// over 128 bits). Fingerprints of every prefix are available, which is
// what HBR caching and lazy HBR caching consume.
package hb

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/vclock"
)

// Fingerprint canonically summarises a partial order of labelled
// events. It combines per-event hashes with commutative operations
// (64-bit sum and xor of an independently mixed copy), so the result is
// independent of the order in which events are added.
type Fingerprint [2]uint64

// Add folds one event hash into the fingerprint.
func (f *Fingerprint) Add(h uint64) {
	f[0] += h
	f[1] ^= mix64(h)
}

// IsZero reports whether no event has been added.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// String renders the fingerprint in hex.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x-%016x", f[0], f[1]) }

// mix64 is the splitmix64 finalizer, used to decorrelate the xor
// accumulator from the sum accumulator.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Race reports a pair of conflicting variable accesses unordered by the
// sync-only relation.
type Race struct {
	Var int32
	// Access is the later access (the one at which the race was
	// detected).
	Access event.Event
	// Prev is a representative earlier conflicting access.
	Prev event.Event
}

// String renders the race for reports.
func (r Race) String() string {
	return fmt.Sprintf("data race on v%d: %v vs %v", r.Var, r.Prev, r.Access)
}

// Clocks carries the per-event results of Tracker.Apply.
type Clocks struct {
	// HB is the event's regular happens-before vector clock.
	HB vclock.VC
	// Lazy is the event's lazy happens-before vector clock.
	Lazy vclock.VC
}

// Tracker computes the three relations online. It is not safe for
// concurrent use; explorations are single-threaded by construction.
type Tracker struct {
	nthreads int

	// Per-thread clocks of the last executed event (bottom before
	// the first event). For spawned threads these are seeded with
	// the parent's spawn-event clock.
	hbT, lazyT, syncT []vclock.VC

	// Regular-HB variable metadata: clock of the last write, and the
	// join of the clocks of all reads since that write.
	wHB, rHB []vclock.VC
	// Lazy-HB variable metadata (identical structure; variable edges
	// are kept by the lazy relation).
	wLazy, rLazy []vclock.VC
	// Sync-only variable metadata, for race detection only.
	wSync, rSync []vclock.VC

	// Per-mutex clock of the last lock/unlock event, for the regular
	// and sync relations. The lazy relation has no mutex state.
	mHB, mSync []vclock.VC

	// Last-access events per variable, for race reports.
	lastWriteEv, lastReadEv []event.Event
	hasWriteEv, hasReadEv   []bool

	hbFP, lazyFP Fingerprint
	races        []Race
	events       int
}

// NewTracker creates a tracker for a program universe of the given
// sizes.
func NewTracker(nthreads, nvars, nmutexes int) *Tracker {
	return &Tracker{
		nthreads:    nthreads,
		hbT:         make([]vclock.VC, nthreads),
		lazyT:       make([]vclock.VC, nthreads),
		syncT:       make([]vclock.VC, nthreads),
		wHB:         make([]vclock.VC, nvars),
		rHB:         make([]vclock.VC, nvars),
		wLazy:       make([]vclock.VC, nvars),
		rLazy:       make([]vclock.VC, nvars),
		wSync:       make([]vclock.VC, nvars),
		rSync:       make([]vclock.VC, nvars),
		mHB:         make([]vclock.VC, nmutexes),
		mSync:       make([]vclock.VC, nmutexes),
		lastWriteEv: make([]event.Event, nvars),
		lastReadEv:  make([]event.Event, nvars),
		hasWriteEv:  make([]bool, nvars),
		hasReadEv:   make([]bool, nvars),
	}
}

// Events returns the number of events applied so far.
func (tr *Tracker) Events() int { return tr.events }

// HBFingerprint returns the fingerprint of the regular HBR of the
// event prefix applied so far.
func (tr *Tracker) HBFingerprint() Fingerprint { return tr.hbFP }

// LazyFingerprint returns the fingerprint of the lazy HBR of the event
// prefix applied so far.
func (tr *Tracker) LazyFingerprint() Fingerprint { return tr.lazyFP }

// Races returns the data races detected so far.
func (tr *Tracker) Races() []Race { return tr.races }

// ThreadClock returns thread t's regular-HB clock after its last event.
// The returned slice must not be modified.
func (tr *Tracker) ThreadClock(t event.ThreadID) vclock.VC { return tr.hbT[t] }

// LazyThreadClock returns thread t's lazy-HB clock after its last
// event. The returned slice must not be modified.
func (tr *Tracker) LazyThreadClock(t event.ThreadID) vclock.VC { return tr.lazyT[t] }

// HappensBeforeNext reports whether an already-executed event e (with
// per-thread index e.Index, executed by e.Thread) happens-before the
// *next* transition of thread p under the regular HBR. This is the
// i →(S) p test of Flanagan–Godefroid DPOR: e is ordered before
// whatever p does next iff p's last event already knows e.Index+1
// events of e.Thread (or p is e's own thread).
func (tr *Tracker) HappensBeforeNext(e event.Event, p event.ThreadID) bool {
	if e.Thread == p {
		return true
	}
	return tr.hbT[p].Get(int(e.Thread)) >= e.Index+1
}

// Apply folds one executed event into all three relations and returns
// the event's regular and lazy clocks. The returned clocks are owned by
// the caller.
func (tr *Tracker) Apply(ev event.Event) Clocks {
	t := int(ev.Thread)

	// Start from the thread's program-order predecessor and tick.
	hb := tr.hbT[t].Clone().Inc(t)
	lazy := tr.lazyT[t].Clone().Inc(t)
	sync := tr.syncT[t].Clone().Inc(t)

	switch ev.Kind {
	case event.KindRead:
		v := ev.Obj
		hb = hb.Join(tr.wHB[v])
		lazy = lazy.Join(tr.wLazy[v])
		if tr.hasWriteEv[v] && !tr.wSync[v].Leq(sync) {
			tr.races = append(tr.races, Race{Var: v, Access: ev, Prev: tr.lastWriteEv[v]})
		}
		tr.rHB[v] = tr.rHB[v].Join(hb)
		tr.rLazy[v] = tr.rLazy[v].Join(lazy)
		tr.rSync[v] = tr.rSync[v].Join(sync)
		tr.lastReadEv[v] = ev
		tr.hasReadEv[v] = true

	case event.KindWrite:
		v := ev.Obj
		hb = hb.Join(tr.wHB[v]).Join(tr.rHB[v])
		lazy = lazy.Join(tr.wLazy[v]).Join(tr.rLazy[v])
		if tr.hasWriteEv[v] && !tr.wSync[v].Leq(sync) {
			tr.races = append(tr.races, Race{Var: v, Access: ev, Prev: tr.lastWriteEv[v]})
		} else if tr.hasReadEv[v] && !tr.rSync[v].Leq(sync) {
			tr.races = append(tr.races, Race{Var: v, Access: ev, Prev: tr.lastReadEv[v]})
		}
		tr.wHB[v] = hb.Clone()
		tr.rHB[v] = nil
		tr.wLazy[v] = lazy.Clone()
		tr.rLazy[v] = nil
		tr.wSync[v] = sync.Clone()
		tr.rSync[v] = nil
		tr.lastWriteEv[v] = ev
		tr.hasWriteEv[v] = true
		tr.hasReadEv[v] = false

	case event.KindLock, event.KindUnlock:
		mu := ev.Obj
		// Mutex edges exist in the regular and sync relations
		// only: this is the entire difference that defines the
		// lazy HBR.
		hb = hb.Join(tr.mHB[mu])
		sync = sync.Join(tr.mSync[mu])
		tr.mHB[mu] = hb.Clone()
		tr.mSync[mu] = sync.Clone()

	case event.KindSpawn:
		// The child's first event must order after this spawn, in
		// all three relations (spawn edges are not mutex edges).
		c := int(ev.Obj)
		tr.hbT[c] = tr.hbT[c].Join(hb)
		tr.lazyT[c] = tr.lazyT[c].Join(lazy)
		tr.syncT[c] = tr.syncT[c].Join(sync)

	case event.KindJoin:
		c := int(ev.Obj)
		hb = hb.Join(tr.hbT[c])
		lazy = lazy.Join(tr.lazyT[c])
		sync = sync.Join(tr.syncT[c])

	case event.KindAssert:
		// Thread-local: program order only.
	}

	tr.hbT[t] = hb
	tr.lazyT[t] = lazy
	tr.syncT[t] = sync

	tr.hbFP.Add(eventHash(ev, hb))
	tr.lazyFP.Add(eventHash(ev, lazy))
	tr.events++

	return Clocks{HB: hb.Clone(), Lazy: lazy.Clone()}
}

// eventHash hashes an HBR node: its schedule-independent label
// (thread, per-thread index, kind, object, written/asserted value) and
// its incoming edges, which the vector clock captures exactly.
func eventHash(ev event.Event, vc vclock.VC) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mixByte := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	mix32 := func(x uint32) {
		mixByte(byte(x))
		mixByte(byte(x >> 8))
		mixByte(byte(x >> 16))
		mixByte(byte(x >> 24))
	}
	mix32(uint32(ev.Thread))
	mix32(uint32(ev.Index))
	mixByte(byte(ev.Kind))
	mix32(uint32(ev.Obj))
	if ev.Kind == event.KindWrite || ev.Kind == event.KindAssert {
		mix32(uint32(uint64(ev.Val)))
		mix32(uint32(uint64(ev.Val) >> 32))
	}
	// Fold in the clock; mix64 decorrelates from the label hash.
	return h ^ mix64(vc.Hash())
}

// Clone returns a deep copy of the tracker, enabling snapshot-based
// exploration.
func (tr *Tracker) Clone() *Tracker {
	cp := &Tracker{
		nthreads:    tr.nthreads,
		hbT:         cloneVCs(tr.hbT),
		lazyT:       cloneVCs(tr.lazyT),
		syncT:       cloneVCs(tr.syncT),
		wHB:         cloneVCs(tr.wHB),
		rHB:         cloneVCs(tr.rHB),
		wLazy:       cloneVCs(tr.wLazy),
		rLazy:       cloneVCs(tr.rLazy),
		wSync:       cloneVCs(tr.wSync),
		rSync:       cloneVCs(tr.rSync),
		mHB:         cloneVCs(tr.mHB),
		mSync:       cloneVCs(tr.mSync),
		lastWriteEv: append([]event.Event(nil), tr.lastWriteEv...),
		lastReadEv:  append([]event.Event(nil), tr.lastReadEv...),
		hasWriteEv:  append([]bool(nil), tr.hasWriteEv...),
		hasReadEv:   append([]bool(nil), tr.hasReadEv...),
		hbFP:        tr.hbFP,
		lazyFP:      tr.lazyFP,
		races:       append([]Race(nil), tr.races...),
		events:      tr.events,
	}
	return cp
}

func cloneVCs(in []vclock.VC) []vclock.VC {
	out := make([]vclock.VC, len(in))
	for i, v := range in {
		out[i] = v.Clone()
	}
	return out
}
