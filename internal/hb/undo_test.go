package hb

import (
	"math/rand"
	"testing"

	"repro/internal/event"
)

func sp(c int32) event.Op { return event.Op{Kind: event.KindSpawn, Obj: c} }
func jn(c int32) event.Op { return event.Op{Kind: event.KindJoin, Obj: c} }

// undoSeq exercises every recorded event kind: spawn, variable
// accesses (with a race between t1 and t2), mutex handoff, join.
var undoSeq = []event.Event{
	ev(0, 0, sp(1)),
	ev(0, 1, sp(2)),
	ev(1, 0, wr(0, 1)),
	ev(2, 0, rd(0)), // racy read: no sync edge from t1's write
	ev(1, 1, lk(0)),
	ev(1, 2, wr(1, 7)),
	ev(1, 3, ul(0)),
	ev(2, 1, lk(0)),
	ev(2, 2, rd(1)), // ordered via the mutex: no race
	ev(2, 3, ul(0)),
	ev(0, 2, jn(1)),
	ev(0, 3, jn(2)),
}

// trackerAt replays the first k events of seq on a fresh tracker.
func trackerAt(seq []event.Event, k int) *Tracker {
	tr := NewTracker(3, 2, 1)
	for _, e := range seq[:k] {
		tr.ApplyFast(e)
	}
	return tr
}

// sameState compares everything a tracker exposes: fingerprints, race
// log, event count, and all per-thread clocks of both relations.
func sameState(t *testing.T, where string, got, want *Tracker) {
	t.Helper()
	if got.HBFingerprint() != want.HBFingerprint() {
		t.Errorf("%s: hb fingerprint %v, want %v", where, got.HBFingerprint(), want.HBFingerprint())
	}
	if got.LazyFingerprint() != want.LazyFingerprint() {
		t.Errorf("%s: lazy fingerprint %v, want %v", where, got.LazyFingerprint(), want.LazyFingerprint())
	}
	if got.Events() != want.Events() {
		t.Errorf("%s: %d events, want %d", where, got.Events(), want.Events())
	}
	if g, w := len(got.Races()), len(want.Races()); g != w {
		t.Errorf("%s: %d races, want %d", where, g, w)
	}
	for th := 0; th < want.nthreads; th++ {
		id := event.ThreadID(th)
		if !got.ThreadClock(id).Equal(want.ThreadClock(id)) {
			t.Errorf("%s: hbT[%d] = %v, want %v", where, th, got.ThreadClock(id), want.ThreadClock(id))
		}
		if !got.LazyThreadClock(id).Equal(want.LazyThreadClock(id)) {
			t.Errorf("%s: lazyT[%d] = %v, want %v", where, th, got.LazyThreadClock(id), want.LazyThreadClock(id))
		}
	}
}

// TestUndoToMatchesReference: rewinding to every mark restores exactly
// the state a fresh tracker reaches by replaying that prefix — across
// all event kinds, including the race log shrinking back.
func TestUndoToMatchesReference(t *testing.T) {
	tr := NewTracker(3, 2, 1)
	tr.EnableUndo()
	for i, e := range undoSeq {
		if m := tr.UndoMark(); m != i {
			t.Fatalf("mark %d before event %d", m, i)
		}
		tr.ApplyFast(e)
	}
	for k := len(undoSeq) - 1; k >= 0; k-- {
		tr.UndoTo(k)
		sameState(t, "UndoTo", tr, trackerAt(undoSeq, k))
	}
}

// TestCloneToMatchesReference: CloneTo ships an interior state without
// disturbing the live tracker — the work-steal seed export path.
func TestCloneToMatchesReference(t *testing.T) {
	tr := NewTracker(3, 2, 1)
	tr.EnableUndo()
	for _, e := range undoSeq {
		tr.ApplyFast(e)
	}
	frontier := trackerAt(undoSeq, len(undoSeq))
	for k := 0; k <= len(undoSeq); k++ {
		cp := tr.CloneTo(k)
		sameState(t, "CloneTo", cp, trackerAt(undoSeq, k))
		sameState(t, "receiver after CloneTo", tr, frontier)
	}
}

// TestUndoCloneSafety: a clone taken mid-exploration must survive the
// parent rewinding past the clone point and re-applying different
// events — the arena floor prevents the parent from reusing storage
// the clone shares.
func TestUndoCloneSafety(t *testing.T) {
	tr := NewTracker(3, 2, 1)
	tr.EnableUndo()
	for _, e := range undoSeq[:8] {
		tr.ApplyFast(e)
	}
	cp := tr.Clone()
	want := trackerAt(undoSeq, 8)

	// Rewind the parent below the clone point and grow a different
	// branch, forcing heavy arena churn.
	tr.UndoTo(3)
	for i := 0; i < 50; i++ {
		tr.ApplyFast(ev(1, int32(1+i), wr(0, int64(i))))
	}
	sameState(t, "clone after parent rewind+regrow", cp, want)

	// And the regrown parent itself still rewinds exactly.
	tr.UndoTo(3)
	sameState(t, "parent after regrow rewind", tr, trackerAt(undoSeq, 3))
}

// TestUndoRandomWalk drives a random apply/undo interleaving (the DFS
// access pattern, including arena reuse after rewinds) and checks the
// live state against a reference replay at every step.
func TestUndoRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := NewTracker(3, 2, 1)
	tr.EnableUndo()
	var trace []event.Event
	idx := make([]int32, 3)
	reindex := func() {
		idx[0], idx[1], idx[2] = 0, 0, 0
		for _, e := range trace {
			idx[e.Thread] = e.Index + 1
		}
	}
	ops := []event.Op{wr(0, 1), rd(0), wr(1, 2), rd(1), lk(0), ul(0)}
	for iter := 0; iter < 2000; iter++ {
		if len(trace) < 16 && rng.Intn(3) > 0 {
			th := event.ThreadID(rng.Intn(3))
			e := event.Event{Thread: th, Index: idx[th], Op: ops[rng.Intn(len(ops))]}
			idx[th]++
			tr.ApplyFast(e)
			trace = append(trace, e)
		} else if len(trace) > 0 {
			d := rng.Intn(len(trace) + 1)
			tr.UndoTo(d)
			trace = trace[:d]
			reindex()
		}
		if rng.Intn(8) == 0 {
			_ = tr.CloneTo(rng.Intn(tr.UndoMark() + 1))
		}
		ref := trackerAt(trace, len(trace))
		if tr.HBFingerprint() != ref.HBFingerprint() || tr.LazyFingerprint() != ref.LazyFingerprint() {
			t.Fatalf("iter %d: fingerprints diverged after %d events", iter, len(trace))
		}
		if len(tr.Races()) != len(ref.Races()) {
			t.Fatalf("iter %d: %d races, want %d", iter, len(tr.Races()), len(ref.Races()))
		}
	}
}

// TestDisableUndo: dropping the log frees rewinding but keeps the
// tracker applying events normally, and UndoTo refuses afterwards.
func TestDisableUndo(t *testing.T) {
	tr := NewTracker(3, 2, 1)
	tr.EnableUndo()
	tr.ApplyFast(undoSeq[0])
	tr.DisableUndo()
	if m := tr.UndoMark(); m != 0 {
		t.Errorf("log survived DisableUndo: mark %d", m)
	}
	tr.ApplyFast(ev(1, 0, wr(0, 1)))
	if tr.Events() != 2 {
		t.Errorf("events %d after DisableUndo, want 2", tr.Events())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("UndoTo after DisableUndo did not panic")
		}
	}()
	tr.UndoTo(0)
}
