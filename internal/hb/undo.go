package hb

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/vclock"
)

// The tracker's undo log, symmetric to the machine's (model.Machine):
// with undo enabled, apply records one reversal record per event, and
// UndoTo rewinds the tracker in place by popping records in LIFO
// order. Under the copy-on-write clock discipline a record is cheap —
// it stores the clock *references* an event overwrites, never clock
// contents — and reversal is O(1) per event: restore the saved
// references, subtract the event's hashes from the two commutative
// fingerprints, truncate the race log, and roll the arena back to the
// event's watermark (when no clone shares the storage).

// undoRec captures everything one apply mutates, keyed by the event's
// kind. aux holds the kind-specific old references:
//
//	read v:            rHB[v], rLazy[v], rSync[v]
//	write v:           wHB[v], rHB[v], wLazy[v], rLazy[v], wSync[v], rSync[v]
//	lock/unlock mu:    mHB[mu], mSync[mu]
//	spawn c:           hbT[c], lazyT[c], syncT[c]
//	send/recv/close c: chHB[c], chLazy[c], chSync[c]
//
// A select republishes the clocks of every channel in its case set, so
// its record spills into auxSel (three references per case channel,
// the only undo record that allocates).
type undoRec struct {
	thread event.ThreadID
	kind   event.Kind
	obj    int32

	// The stepping thread's clocks before the event.
	hbT, lazyT, syncT vclock.VC

	aux [6]vclock.VC

	// Select case-set clocks: chHB, chLazy, chSync per case channel,
	// ascending. val keeps the select's Op.Val so undo can re-walk the
	// same case set.
	auxSel []vclock.VC
	val    int64

	// Last-access metadata overwritten by variable events: lastReadEv
	// for reads, lastWriteEv for writes, plus the has* flags.
	oldEv            event.Event
	oldHasW, oldHasR bool

	// The event's contributions to the two fingerprints; both folds
	// are invertible (64-bit sum, xor).
	hbHash, lazyHash uint64

	racesLen int32

	// Arena watermark before the event: the free-space header and the
	// monotone allocation count (see clockArena.allocated).
	arenaChunk []int32
	arenaPos   int64
}

// record appends the reversal record for ev, capturing tracker state
// before apply mutates it. The returned pointer stays valid until the
// next append; apply fills the fingerprint hashes through it once the
// event's clocks are final.
func (tr *Tracker) record(ev event.Event) *undoRec {
	t := int(ev.Thread)
	tr.undo = append(tr.undo, undoRec{
		thread:     ev.Thread,
		kind:       ev.Kind,
		obj:        ev.Obj,
		hbT:        tr.hbT[t],
		lazyT:      tr.lazyT[t],
		syncT:      tr.syncT[t],
		racesLen:   int32(len(tr.races)),
		arenaChunk: tr.arena.chunk,
		arenaPos:   tr.arena.allocated,
	})
	rec := &tr.undo[len(tr.undo)-1]
	switch ev.Kind {
	case event.KindRead:
		v := ev.Obj
		rec.aux[0], rec.aux[1], rec.aux[2] = tr.rHB[v], tr.rLazy[v], tr.rSync[v]
		rec.oldEv, rec.oldHasR = tr.lastReadEv[v], tr.hasReadEv[v]
	case event.KindWrite:
		v := ev.Obj
		rec.aux[0], rec.aux[1] = tr.wHB[v], tr.rHB[v]
		rec.aux[2], rec.aux[3] = tr.wLazy[v], tr.rLazy[v]
		rec.aux[4], rec.aux[5] = tr.wSync[v], tr.rSync[v]
		rec.oldEv, rec.oldHasW, rec.oldHasR = tr.lastWriteEv[v], tr.hasWriteEv[v], tr.hasReadEv[v]
	case event.KindLock, event.KindUnlock:
		mu := ev.Obj
		rec.aux[0], rec.aux[1] = tr.mHB[mu], tr.mSync[mu]
	case event.KindSpawn:
		c := int(ev.Obj)
		rec.aux[0], rec.aux[1], rec.aux[2] = tr.hbT[c], tr.lazyT[c], tr.syncT[c]
	case event.KindSend, event.KindRecv, event.KindClose:
		c := ev.Obj
		rec.aux[0], rec.aux[1], rec.aux[2] = tr.chHB[c], tr.chLazy[c], tr.chSync[c]
	case event.KindSelect:
		rec.val = ev.Val
		for c, mask := int32(0), event.SelectCases(ev.Val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			rec.auxSel = append(rec.auxSel, tr.chHB[c], tr.chLazy[c], tr.chSync[c])
		}
	}
	return rec
}

// undoOne reverses one recorded event on dst. dst is either the
// recording tracker itself (UndoTo) or a clone of it (CloneTo) — the
// saved references point at immutable published clocks, so they are
// valid in both. Arena rollback is the caller's business: it is only
// sound on the tracker that owns the arena.
func undoOne(dst *Tracker, r *undoRec) {
	t := int(r.thread)
	dst.hbT[t], dst.lazyT[t], dst.syncT[t] = r.hbT, r.lazyT, r.syncT
	switch r.kind {
	case event.KindRead:
		v := r.obj
		dst.rHB[v], dst.rLazy[v], dst.rSync[v] = r.aux[0], r.aux[1], r.aux[2]
		dst.lastReadEv[v], dst.hasReadEv[v] = r.oldEv, r.oldHasR
	case event.KindWrite:
		v := r.obj
		dst.wHB[v], dst.rHB[v] = r.aux[0], r.aux[1]
		dst.wLazy[v], dst.rLazy[v] = r.aux[2], r.aux[3]
		dst.wSync[v], dst.rSync[v] = r.aux[4], r.aux[5]
		dst.lastWriteEv[v], dst.hasWriteEv[v], dst.hasReadEv[v] = r.oldEv, r.oldHasW, r.oldHasR
	case event.KindLock, event.KindUnlock:
		mu := r.obj
		dst.mHB[mu], dst.mSync[mu] = r.aux[0], r.aux[1]
	case event.KindSpawn:
		c := int(r.obj)
		dst.hbT[c], dst.lazyT[c], dst.syncT[c] = r.aux[0], r.aux[1], r.aux[2]
	case event.KindSend, event.KindRecv, event.KindClose:
		c := r.obj
		dst.chHB[c], dst.chLazy[c], dst.chSync[c] = r.aux[0], r.aux[1], r.aux[2]
	case event.KindSelect:
		i := 0
		for c, mask := int32(0), event.SelectCases(r.val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			dst.chHB[c], dst.chLazy[c], dst.chSync[c] = r.auxSel[i], r.auxSel[i+1], r.auxSel[i+2]
			i += 3
		}
	}
	dst.hbFP[0] -= r.hbHash
	dst.hbFP[1] ^= mix64(r.hbHash)
	dst.lazyFP[0] -= r.lazyHash
	dst.lazyFP[1] ^= mix64(r.lazyHash)
	dst.races = dst.races[:r.racesLen]
	dst.events--
}

// EnableUndo switches the tracker to record an undo log: every applied
// event appends one reversal record and UndoTo rewinds the tracker in
// place. Events applied before the call are not covered.
func (tr *Tracker) EnableUndo() { tr.undoEnabled = true }

// DisableUndo stops undo recording and drops the log: the tracker can
// no longer rewind but keeps applying events normally. The adaptive
// exploration backend uses it to settle on replay after measuring.
func (tr *Tracker) DisableUndo() {
	tr.undoEnabled = false
	tr.undo = nil
}

// UndoMark returns the current position in the undo log. With undo
// enabled from the tracker's first event, the mark equals Events().
func (tr *Tracker) UndoMark() int { return len(tr.undo) }

// UndoTo rewinds the tracker to the state it had at mark (a value
// previously returned by UndoMark), popping reversal records in LIFO
// order. Fingerprints, races, per-thread and per-variable clocks and
// the event count are restored exactly; arena storage allocated since
// the mark is reused unless a Clone taken since shares it, in which
// case it leaks to the GC (correct either way).
func (tr *Tracker) UndoTo(mark int) {
	if !tr.undoEnabled {
		panic("hb: UndoTo without EnableUndo")
	}
	if mark < 0 || mark > len(tr.undo) {
		panic(fmt.Sprintf("hb: UndoTo(%d) beyond undo log length %d", mark, len(tr.undo)))
	}
	for len(tr.undo) > mark {
		r := &tr.undo[len(tr.undo)-1]
		undoOne(tr, r)
		if r.arenaPos >= tr.arenaFloor {
			tr.arena.chunk = r.arenaChunk
			tr.arena.allocated = r.arenaPos
		}
		*r = undoRec{} // release the clock and chunk references
		tr.undo = tr.undo[:len(tr.undo)-1]
	}
}

// CloneTo returns an independent tracker equal to the receiver's state
// at mark, without disturbing the receiver: a Clone rewound through the
// receiver's undo records. Work-steal coordinators use it to ship a
// seed for an interior node of the schedule tree while the engine's
// live tracker sits at the frontier. The clone has a fresh arena and
// no undo log of its own.
func (tr *Tracker) CloneTo(mark int) *Tracker {
	if mark < 0 || mark > len(tr.undo) {
		panic(fmt.Sprintf("hb: CloneTo(%d) beyond undo log length %d", mark, len(tr.undo)))
	}
	cp := tr.Clone()
	for i := len(tr.undo) - 1; i >= mark; i-- {
		undoOne(cp, &tr.undo[i])
	}
	return cp
}
