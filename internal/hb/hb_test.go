package hb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/vclock"
)

func ev(t event.ThreadID, idx int32, op event.Op) event.Event {
	return event.Event{Thread: t, Index: idx, Op: op}
}

func rd(v int32) event.Op          { return event.Op{Kind: event.KindRead, Obj: v} }
func wr(v int32, x int64) event.Op { return event.Op{Kind: event.KindWrite, Obj: v, Val: x} }
func lk(m int32) event.Op          { return event.Op{Kind: event.KindLock, Obj: m} }
func ul(m int32) event.Op          { return event.Op{Kind: event.KindUnlock, Obj: m} }

// TestPaperFigure1Clocks replays the exact schedule of the paper's
// Figure 1 and checks the single inter-thread HBR edge (T1's unlock →
// T2's lock, collapsed into the clocks) and its absence from the lazy
// relation.
//
//	T1: lock(m) read(x) unlock(m) write(y)
//	T2: write(z) lock(m) read(x) unlock(m)
//
// Schedule: all of T1, then all of T2.
func TestPaperFigure1Clocks(t *testing.T) {
	tr := NewTracker(2, 3, 1) // vars: x=0,y=1,z=2; mutex m=0
	c1 := tr.Apply(ev(0, 0, lk(0)))
	c2 := tr.Apply(ev(0, 1, rd(0)))
	c3 := tr.Apply(ev(0, 2, ul(0)))
	c4 := tr.Apply(ev(0, 3, wr(1, 1)))
	c5 := tr.Apply(ev(1, 0, wr(2, 1)))
	c6 := tr.Apply(ev(1, 1, lk(0)))
	c7 := tr.Apply(ev(1, 2, rd(0)))
	c8 := tr.Apply(ev(1, 3, ul(0)))

	// T1's clocks advance in program order with no T2 component.
	for i, c := range []Clocks{c1, c2, c3, c4} {
		if got := c.HB.Get(0); got != int32(i+1) {
			t.Errorf("T1 event %d: HB[T1] = %d, want %d", i, got, i+1)
		}
		if c.HB.Get(1) != 0 {
			t.Errorf("T1 event %d: HB[T2] = %d, want 0", i, c.HB.Get(1))
		}
	}
	// T2's write(z) is fully concurrent with T1.
	if c5.HB.Get(0) != 0 || c5.HB.Get(1) != 1 {
		t.Errorf("write(z): HB = %v, want [0 1]", c5.HB)
	}
	// T2's lock(m) picks up the mutex edge from T1's unlock: it now
	// knows T1's first three events (but not the write to y).
	if c6.HB.Get(0) != 3 || c6.HB.Get(1) != 2 {
		t.Errorf("T2 lock(m): HB = %v, want [3 2]", c6.HB)
	}
	// ... and the knowledge persists transitively.
	if c7.HB.Get(0) != 3 || c8.HB.Get(0) != 3 {
		t.Errorf("T2 tail: HB clocks %v %v should carry T1=3", c7.HB, c8.HB)
	}
	// The lazy relation has no mutex edges: T2 never learns of T1.
	for i, c := range []Clocks{c5, c6, c7, c8} {
		if c.Lazy.Get(0) != 0 {
			t.Errorf("T2 event %d: Lazy[T1] = %d, want 0 (no mutex edges)", i, c.Lazy.Get(0))
		}
		if got := c.Lazy.Get(1); got != int32(i+1) {
			t.Errorf("T2 event %d: Lazy[T2] = %d, want %d", i, got, i+1)
		}
	}
}

// TestPaperFigure1Fingerprints checks Theorem-level equality on the two
// feasible lock orders of Figure 1: different regular HBRs, same lazy
// HBR.
func TestPaperFigure1Fingerprints(t *testing.T) {
	run := func(t2First bool) (Fingerprint, Fingerprint) {
		tr := NewTracker(2, 3, 1)
		t1 := []event.Event{ev(0, 0, lk(0)), ev(0, 1, rd(0)), ev(0, 2, ul(0)), ev(0, 3, wr(1, 1))}
		t2 := []event.Event{ev(1, 0, wr(2, 1)), ev(1, 1, lk(0)), ev(1, 2, rd(0)), ev(1, 3, ul(0))}
		var order []event.Event
		if t2First {
			order = append(append(order, t2...), t1...)
		} else {
			order = append(append(order, t1...), t2...)
		}
		for _, e := range order {
			tr.Apply(e)
		}
		return tr.HBFingerprint(), tr.LazyFingerprint()
	}
	hb1, lazy1 := run(false)
	hb2, lazy2 := run(true)
	if hb1 == hb2 {
		t.Error("the two lock orders must have different regular HBRs")
	}
	if lazy1 != lazy2 {
		t.Error("the two lock orders must have the same lazy HBR")
	}
}

// TestVarEdges pins the read/write edge rules: write→read,
// write→write, read→write, but never read→read.
func TestVarEdges(t *testing.T) {
	tr := NewTracker(3, 1, 0)
	w := tr.Apply(ev(0, 0, wr(0, 1)))
	r1 := tr.Apply(ev(1, 0, rd(0)))
	r2 := tr.Apply(ev(2, 0, rd(0)))
	if r1.HB.Get(0) != 1 || r2.HB.Get(0) != 1 {
		t.Error("reads must order after the last write")
	}
	if r2.HB.Get(1) != 0 {
		t.Error("read-read must not create an edge")
	}
	_ = w
	// A later write orders after both reads.
	w2 := tr.Apply(ev(0, 1, wr(0, 2)))
	if w2.HB.Get(1) != 1 || w2.HB.Get(2) != 1 {
		t.Errorf("write must order after all reads since the last write: %v", w2.HB)
	}
}

// TestLazyKeepsVarAndSpawnJoinEdges distinguishes exactly which edges
// the lazy relation drops: mutex edges only.
func TestLazyKeepsVarAndSpawnJoinEdges(t *testing.T) {
	tr := NewTracker(2, 1, 1)
	tr.Apply(ev(0, 0, wr(0, 1)))
	r := tr.Apply(ev(1, 0, rd(0)))
	if r.Lazy.Get(0) != 1 {
		t.Error("lazy relation must keep variable edges")
	}

	tr2 := NewTracker(2, 1, 1)
	tr2.Apply(ev(0, 0, event.Op{Kind: event.KindSpawn, Obj: 1}))
	first := tr2.Apply(ev(1, 0, wr(0, 5)))
	if first.Lazy.Get(0) != 1 {
		t.Error("lazy relation must keep spawn edges")
	}
	tr2.Apply(ev(1, 1, wr(0, 6)))
	j := tr2.Apply(ev(0, 1, event.Op{Kind: event.KindJoin, Obj: 1}))
	if j.Lazy.Get(1) != 2 {
		t.Error("lazy relation must keep join edges")
	}
	if j.HB.Get(1) != 2 {
		t.Error("regular relation must keep join edges")
	}
}

// TestRaceDetection exercises the sync-only relation: unsynchronised
// conflicting accesses race; lock-ordered and join-ordered ones do not.
func TestRaceDetection(t *testing.T) {
	// Unsynchronised write-write: race.
	tr := NewTracker(2, 1, 1)
	tr.Apply(ev(0, 0, wr(0, 1)))
	tr.Apply(ev(1, 0, wr(0, 2)))
	if len(tr.Races()) != 1 {
		t.Fatalf("races = %v, want exactly one", tr.Races())
	}
	if tr.Races()[0].Var != 0 {
		t.Errorf("race reported on v%d", tr.Races()[0].Var)
	}

	// Lock-ordered write-write: no race.
	tr = NewTracker(2, 1, 1)
	tr.Apply(ev(0, 0, lk(0)))
	tr.Apply(ev(0, 1, wr(0, 1)))
	tr.Apply(ev(0, 2, ul(0)))
	tr.Apply(ev(1, 0, lk(0)))
	tr.Apply(ev(1, 1, wr(0, 2)))
	tr.Apply(ev(1, 2, ul(0)))
	if len(tr.Races()) != 0 {
		t.Fatalf("lock-ordered accesses raced: %v", tr.Races())
	}

	// Read-write race.
	tr = NewTracker(2, 1, 0)
	tr.Apply(ev(0, 0, rd(0)))
	tr.Apply(ev(1, 0, wr(0, 1)))
	if len(tr.Races()) != 1 {
		t.Fatalf("read-write races = %v, want one", tr.Races())
	}

	// Write-read race.
	tr = NewTracker(2, 1, 0)
	tr.Apply(ev(0, 0, wr(0, 1)))
	tr.Apply(ev(1, 0, rd(0)))
	if len(tr.Races()) != 1 {
		t.Fatalf("write-read races = %v, want one", tr.Races())
	}

	// Read-read: never a race.
	tr = NewTracker(2, 1, 0)
	tr.Apply(ev(0, 0, rd(0)))
	tr.Apply(ev(1, 0, rd(0)))
	if len(tr.Races()) != 0 {
		t.Fatalf("read-read raced: %v", tr.Races())
	}

	// Spawn-ordered accesses: no race.
	tr = NewTracker(2, 1, 0)
	tr.Apply(ev(0, 0, wr(0, 1)))
	tr.Apply(ev(0, 1, event.Op{Kind: event.KindSpawn, Obj: 1}))
	tr.Apply(ev(1, 0, wr(0, 2)))
	if len(tr.Races()) != 0 {
		t.Fatalf("spawn-ordered accesses raced: %v", tr.Races())
	}
}

// TestHappensBeforeNext pins the DPOR ordering test.
func TestHappensBeforeNext(t *testing.T) {
	tr := NewTracker(2, 1, 1)
	e0 := ev(0, 0, wr(0, 1))
	tr.Apply(e0)
	// Thread 1 has seen nothing of thread 0.
	if tr.HappensBeforeNext(e0, 1) {
		t.Error("independent threads must not be ordered")
	}
	// Same thread: always ordered.
	if !tr.HappensBeforeNext(e0, 0) {
		t.Error("own events always happen-before the thread's next transition")
	}
	// After thread 1 reads the write, the write is ordered before
	// whatever thread 1 does next.
	tr.Apply(ev(1, 0, rd(0)))
	if !tr.HappensBeforeNext(e0, 1) {
		t.Error("write must happen-before the reader's next transition")
	}
}

// TestFingerprintLinearizationInvariance: permuting commuting
// (independent, cross-thread) adjacent events never changes either
// fingerprint, while flipping a conflicting pair changes both.
func TestFingerprintLinearizationInvariance(t *testing.T) {
	// Two threads touch disjoint vars: any interleaving has the same
	// HBR and the same lazy HBR.
	perm1 := []event.Event{ev(0, 0, wr(0, 1)), ev(1, 0, wr(1, 2)), ev(0, 1, rd(0)), ev(1, 1, rd(1))}
	perm2 := []event.Event{ev(1, 0, wr(1, 2)), ev(1, 1, rd(1)), ev(0, 0, wr(0, 1)), ev(0, 1, rd(0))}
	fp := func(events []event.Event) (Fingerprint, Fingerprint) {
		tr := NewTracker(2, 2, 0)
		for _, e := range events {
			tr.Apply(e)
		}
		return tr.HBFingerprint(), tr.LazyFingerprint()
	}
	h1, l1 := fp(perm1)
	h2, l2 := fp(perm2)
	if h1 != h2 || l1 != l2 {
		t.Error("independent permutations must have identical fingerprints")
	}

	// Conflicting writes in both orders: different everything.
	a := []event.Event{ev(0, 0, wr(0, 1)), ev(1, 0, wr(0, 2))}
	b := []event.Event{ev(1, 0, wr(0, 2)), ev(0, 0, wr(0, 1))}
	ha, la := fp2(a)
	hbf, lb := fp2(b)
	if ha == hbf {
		t.Error("conflicting orders must differ in the regular HBR")
	}
	if la == lb {
		t.Error("conflicting orders must differ in the lazy HBR (variable edges kept)")
	}
}

func fp2(events []event.Event) (Fingerprint, Fingerprint) {
	tr := NewTracker(2, 1, 0)
	for _, e := range events {
		tr.Apply(e)
	}
	return tr.HBFingerprint(), tr.LazyFingerprint()
}

// TestFingerprintPrefixes: the running fingerprint after k events
// depends only on the partial order of the prefix.
func TestFingerprintPrefixes(t *testing.T) {
	tr := NewTracker(2, 2, 0)
	var fps []Fingerprint
	for _, e := range []event.Event{ev(0, 0, wr(0, 1)), ev(1, 0, wr(1, 1)), ev(0, 1, rd(0))} {
		tr.Apply(e)
		fps = append(fps, tr.HBFingerprint())
	}
	for i := 1; i < len(fps); i++ {
		if fps[i] == fps[i-1] {
			t.Error("each event must change the running fingerprint")
		}
	}
	if fps[0].IsZero() {
		t.Error("fingerprint after one event must be non-zero")
	}
	var zero Fingerprint
	if !zero.IsZero() {
		t.Error("zero fingerprint must report IsZero")
	}
}

// TestCloneIndependence verifies deep copying of tracker state.
func TestCloneIndependence(t *testing.T) {
	tr := NewTracker(2, 1, 1)
	tr.Apply(ev(0, 0, wr(0, 1)))
	cp := tr.Clone()
	tr.Apply(ev(1, 0, wr(0, 2)))
	if cp.Events() != 1 || tr.Events() != 2 {
		t.Fatal("clone must freeze event count")
	}
	if cp.HBFingerprint() == tr.HBFingerprint() {
		t.Fatal("applying to the original must not affect the clone")
	}
	if len(cp.Races()) != 0 || len(tr.Races()) != 1 {
		t.Fatal("race logs must be independent")
	}
	// The clone can continue independently and reach the same result.
	cp.Apply(ev(1, 0, wr(0, 2)))
	if cp.HBFingerprint() != tr.HBFingerprint() || cp.LazyFingerprint() != tr.LazyFingerprint() {
		t.Fatal("same continuation on the clone must reproduce the fingerprints")
	}
}

// TestApplyFastMatchesApply: the engines' no-result path must leave the
// tracker in exactly the state the recording path produces.
func TestApplyFastMatchesApply(t *testing.T) {
	events := []event.Event{
		ev(0, 0, event.Op{Kind: event.KindSpawn, Obj: 1}),
		ev(0, 1, lk(0)),
		ev(0, 2, wr(0, 1)),
		ev(0, 3, ul(0)),
		ev(1, 0, rd(0)),
		ev(1, 1, wr(1, 2)),
		ev(0, 4, event.Op{Kind: event.KindJoin, Obj: 1}),
		ev(0, 5, rd(1)),
	}
	a := NewTracker(2, 2, 1)
	b := NewTracker(2, 2, 1)
	for _, e := range events {
		a.Apply(e)
		b.ApplyFast(e)
	}
	if a.HBFingerprint() != b.HBFingerprint() || a.LazyFingerprint() != b.LazyFingerprint() {
		t.Fatal("ApplyFast diverged from Apply on fingerprints")
	}
	if a.Events() != b.Events() || len(a.Races()) != len(b.Races()) {
		t.Fatal("ApplyFast diverged from Apply on counters")
	}
	for tid := 0; tid < 2; tid++ {
		p := event.ThreadID(tid)
		if !a.ThreadClock(p).Equal(b.ThreadClock(p)) || !a.LazyThreadClock(p).Equal(b.LazyThreadClock(p)) {
			t.Fatalf("thread %d clocks diverged", tid)
		}
	}
}

// TestCloneSnapshotStability mimics the exploration backend: clones
// taken at every prefix must stay frozen while the original advances,
// and re-applying the suffix to any clone must reproduce the original
// run exactly — the copy-on-write contract.
func TestCloneSnapshotStability(t *testing.T) {
	events := []event.Event{
		ev(0, 0, lk(0)),
		ev(0, 1, wr(0, 1)),
		ev(1, 0, wr(1, 5)),
		ev(0, 2, ul(0)),
		ev(1, 1, lk(0)),
		ev(1, 2, rd(0)),
		ev(1, 3, ul(0)),
		ev(0, 3, rd(1)),
	}
	tr := NewTracker(2, 2, 1)
	var clones []*Tracker
	var hbFPs, lazyFPs []Fingerprint
	clones = append(clones, tr.Clone())
	hbFPs = append(hbFPs, tr.HBFingerprint())
	lazyFPs = append(lazyFPs, tr.LazyFingerprint())
	for _, e := range events {
		tr.Apply(e)
		clones = append(clones, tr.Clone())
		hbFPs = append(hbFPs, tr.HBFingerprint())
		lazyFPs = append(lazyFPs, tr.LazyFingerprint())
	}
	for d, cp := range clones {
		if cp.Events() != d || cp.HBFingerprint() != hbFPs[d] || cp.LazyFingerprint() != lazyFPs[d] {
			t.Fatalf("clone at depth %d drifted while the original advanced", d)
		}
		// Clones of clones continue independently: replay the suffix.
		re := cp.Clone()
		for _, e := range events[d:] {
			re.ApplyFast(e)
		}
		if re.HBFingerprint() != tr.HBFingerprint() || re.LazyFingerprint() != tr.LazyFingerprint() {
			t.Fatalf("suffix replay from depth %d did not reproduce the run", d)
		}
	}
}

// TestThreadClockAccessors checks the clock views engines use.
func TestThreadClockAccessors(t *testing.T) {
	tr := NewTracker(2, 1, 1)
	tr.Apply(ev(0, 0, wr(0, 1)))
	tr.Apply(ev(1, 0, rd(0)))
	if tr.ThreadClock(1).Get(0) != 1 {
		t.Error("thread 1's regular clock must include the writer")
	}
	if tr.LazyThreadClock(1).Get(0) != 1 {
		t.Error("lazy clock keeps variable edges")
	}
	tr2 := NewTracker(2, 1, 1)
	tr2.Apply(ev(0, 0, lk(0)))
	tr2.Apply(ev(0, 1, ul(0)))
	tr2.Apply(ev(1, 0, lk(0)))
	if tr2.ThreadClock(1).Get(0) != 2 {
		t.Error("regular clock must include mutex edges")
	}
	if tr2.LazyThreadClock(1).Get(0) != 0 {
		t.Error("lazy clock must not include mutex edges")
	}
}

// TestQuickFingerprintCommutes: adding a fixed multiset of event hashes
// in any order yields the same fingerprint.
func TestQuickFingerprintCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hashes := make([]uint64, 2+r.Intn(6))
		for i := range hashes {
			hashes[i] = r.Uint64()
		}
		var a Fingerprint
		for _, h := range hashes {
			a.Add(h)
		}
		var b Fingerprint
		for _, i := range r.Perm(len(hashes)) {
			b.Add(hashes[i])
		}
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMutexTotalOrder: every mutex op joins the previous one, in the
// regular relation, regardless of which thread performed it.
func TestMutexTotalOrder(t *testing.T) {
	tr := NewTracker(3, 0, 1)
	tr.Apply(ev(0, 0, lk(0)))
	tr.Apply(ev(0, 1, ul(0)))
	c := tr.Apply(ev(1, 0, lk(0)))
	if c.HB.Get(0) != 2 {
		t.Error("second lock must order after first unlock")
	}
	tr.Apply(ev(1, 1, ul(0)))
	c = tr.Apply(ev(2, 0, lk(0)))
	if c.HB.Get(0) != 2 || c.HB.Get(1) != 2 {
		t.Errorf("third lock must order after both critical sections: %v", c.HB)
	}
}

// TestEventHashValueSensitivity: written values are part of the node
// label; read results are not (they are determined by the order).
func TestEventHashValueSensitivity(t *testing.T) {
	vc := vclock.VC{1}
	a := eventHash(ev(0, 0, wr(0, 1)), vc)
	b := eventHash(ev(0, 0, wr(0, 2)), vc)
	if a == b {
		t.Error("different written values must hash differently")
	}
	r1 := event.Event{Thread: 0, Index: 0, Op: rd(0), Seen: 1}
	r2 := event.Event{Thread: 0, Index: 0, Op: rd(0), Seen: 2}
	if eventHash(r1, vc) != eventHash(r2, vc) {
		t.Error("read results are not node labels and must not affect the hash")
	}
}

// TestRacesWithNext pins the independence query partial-order sampling
// consults: a pending operation races with an executed event iff it is
// on another thread, dependent, co-enablable and not already ordered
// after the event.
func TestRacesWithNext(t *testing.T) {
	tr := NewTracker(3, 2, 1) // vars x=0,y=1; mutex m=0
	w := ev(0, 0, wr(0, 1))
	tr.Apply(w)

	// Same thread never races with its own event.
	if tr.RacesWithNext(w, 0, wr(0, 2)) {
		t.Error("a thread cannot race with its own executed event")
	}
	// A concurrent conflicting access races.
	if !tr.RacesWithNext(w, 1, rd(0)) {
		t.Error("concurrent read of the written var must race")
	}
	if !tr.RacesWithNext(w, 1, wr(0, 7)) {
		t.Error("concurrent write-write conflict must race")
	}
	// Independent operations do not: a different variable, or a mutex.
	if tr.RacesWithNext(w, 1, wr(1, 1)) {
		t.Error("disjoint variables are independent")
	}
	if tr.RacesWithNext(w, 1, lk(0)) {
		t.Error("a mutex op is independent of a variable write")
	}
	// Once the pending thread is HB-ordered after the event (it read
	// the write), the pair stops racing.
	tr.Apply(ev(2, 0, rd(0)))
	if tr.RacesWithNext(w, 2, wr(0, 9)) {
		t.Error("an HB-ordered pending op must not count as racing")
	}
	// An unordered third thread still races.
	if !tr.RacesWithNext(w, 1, rd(0)) {
		t.Error("the unordered thread must still race")
	}
}
