// Package trace serialises schedules and execution outcomes so that a
// violation found by one exploration can be stored, shipped and
// replayed deterministically later — the repro-artifact workflow of an
// SCT tool (CHESS's "repro file", LAZYLOCKS' schedule dumps).
//
// The format is plain JSON. The record carries the program name and
// universe sizes as a guard: replaying a schedule against a different
// program is detected instead of silently diverging.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/model"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

// Record is a serialised schedule plus the outcome observed when it
// was recorded.
type Record struct {
	Version  int              `json:"version"`
	Program  string           `json:"program"`
	Threads  int              `json:"threads"`
	Vars     int              `json:"vars"`
	Mutexes  int              `json:"mutexes"`
	Chans    int              `json:"chans,omitempty"`
	Kind     string           `json:"kind,omitempty"` // violation kind, if any
	Choices  []event.ThreadID `json:"choices"`
	StateKey string           `json:"state_key"`
	Events   []EventRecord    `json:"events,omitempty"`
}

// EventRecord is one trace event in serialised form.
type EventRecord struct {
	Thread int32  `json:"t"`
	Index  int32  `json:"i"`
	Kind   string `json:"k"`
	Obj    int32  `json:"o"`
	Val    int64  `json:"v,omitempty"`
	Seen   int64  `json:"s,omitempty"`
}

var kindNames = map[event.Kind]string{
	event.KindRead:   "read",
	event.KindWrite:  "write",
	event.KindLock:   "lock",
	event.KindUnlock: "unlock",
	event.KindSpawn:  "spawn",
	event.KindJoin:   "join",
	event.KindAssert: "assert",
	event.KindPanic:  "panic",
	event.KindSend:   "send",
	event.KindRecv:   "recv",
	event.KindClose:  "close",
	event.KindSelect: "select",
}

var kindByName = func() map[string]event.Kind {
	m := make(map[string]event.Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// FromOutcome builds a record from an executed outcome.
func FromOutcome(src model.Source, out exec.Outcome, kind string) Record {
	r := Record{
		Version:  FormatVersion,
		Program:  src.Name(),
		Threads:  src.NumThreads(),
		Vars:     src.NumVars(),
		Mutexes:  src.NumMutexes(),
		Chans:    model.NumChannels(src),
		Kind:     kind,
		Choices:  append([]event.ThreadID(nil), out.Choices...),
		StateKey: out.StateKey,
	}
	for _, ev := range out.Trace {
		r.Events = append(r.Events, EventRecord{
			Thread: int32(ev.Thread),
			Index:  ev.Index,
			Kind:   kindNames[ev.Kind],
			Obj:    ev.Obj,
			Val:    ev.Val,
			Seen:   ev.Seen,
		})
	}
	return r
}

// Write serialises the record as indented JSON.
func (r Record) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses a record.
func Read(rd io.Reader) (Record, error) {
	var r Record
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return Record{}, fmt.Errorf("trace: decode: %w", err)
	}
	if r.Version != FormatVersion {
		return Record{}, fmt.Errorf("trace: unsupported format version %d (want %d)", r.Version, FormatVersion)
	}
	for _, ev := range r.Events {
		if _, ok := kindByName[ev.Kind]; !ok {
			return Record{}, fmt.Errorf("trace: unknown event kind %q", ev.Kind)
		}
	}
	return r, nil
}

// Matches checks that the record was produced from (a program shaped
// like) src.
func (r Record) Matches(src model.Source) error {
	if r.Program != src.Name() {
		return fmt.Errorf("trace: recorded for program %q, replaying against %q", r.Program, src.Name())
	}
	if r.Threads != src.NumThreads() || r.Vars != src.NumVars() || r.Mutexes != src.NumMutexes() || r.Chans != model.NumChannels(src) {
		return fmt.Errorf("trace: universe mismatch: recorded %d/%d/%d/%d threads/vars/mutexes/chans, program has %d/%d/%d/%d",
			r.Threads, r.Vars, r.Mutexes, r.Chans, src.NumThreads(), src.NumVars(), src.NumMutexes(), model.NumChannels(src))
	}
	return nil
}

// Replay re-executes the recorded schedule against src and verifies the
// execution reproduces the recorded trace and final state exactly.
func (r Record) Replay(src model.Source, opt exec.Options) (exec.Outcome, error) {
	if err := r.Matches(src); err != nil {
		return exec.Outcome{}, err
	}
	out := exec.Replay(src, r.Choices, opt)
	if out.StateKey != r.StateKey {
		return out, fmt.Errorf("trace: replay diverged: recorded state %q, reached %q", r.StateKey, out.StateKey)
	}
	if len(r.Events) > 0 {
		if len(out.Trace) != len(r.Events) {
			return out, fmt.Errorf("trace: replay produced %d events, recorded %d", len(out.Trace), len(r.Events))
		}
		for i, want := range r.Events {
			got := out.Trace[i]
			if int32(got.Thread) != want.Thread || got.Index != want.Index ||
				kindNames[got.Kind] != want.Kind || got.Obj != want.Obj {
				return out, fmt.Errorf("trace: replay event %d is %v, recorded %+v", i, got, want)
			}
		}
	}
	return out, nil
}
