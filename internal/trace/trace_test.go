package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/progdsl"
)

func sample() *progdsl.Program {
	b := progdsl.New("sample").AutoStart()
	x := b.Var("x")
	m := b.Mutex("m")
	t1 := b.Thread()
	t1.Lock(m).Read(0, x).AddConst(0, 0, 1).Write(x, 0).Unlock(m)
	t2 := b.Thread()
	t2.Lock(m).Read(0, x).AddConst(0, 0, 10).Write(x, 0).Unlock(m)
	return b.Build()
}

func TestRoundTrip(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.NewRandom(9), exec.Options{})
	rec := FromOutcome(prog, out, "")

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "sample" || len(back.Choices) != len(out.Choices) || back.StateKey != out.StateKey {
		t.Fatalf("round trip lost data: %+v", back)
	}
	replayed, err := back.Replay(prog, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.StateKey != out.StateKey {
		t.Error("replay reached a different state")
	}
}

func TestMatchesGuards(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "deadlock")

	other := progdsl.New("other").AutoStart()
	other.Var("x")
	other.Thread().WriteConst(0, 1)
	op := other.Build()
	if err := rec.Matches(op); err == nil {
		t.Error("mismatched program name must be rejected")
	}

	sameName := progdsl.New("sample").AutoStart()
	sameName.Var("x")
	sameName.Thread().WriteConst(0, 1)
	sp := sameName.Build()
	if err := rec.Matches(sp); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Errorf("universe mismatch must be rejected: %v", err)
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "")
	rec.StateKey = "store=[999] owners=[-1] status=[done done]"
	if _, err := rec.Replay(prog, exec.Options{}); err == nil {
		t.Error("tampered state key must be detected")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version must be rejected")
	}
	if _, err := Read(strings.NewReader(`{"version": 1, "events": [{"k": "teleport"}]}`)); err == nil {
		t.Error("unknown event kind must be rejected")
	}
}

func TestEventRecordFidelity(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "")
	if len(rec.Events) != len(out.Trace) {
		t.Fatalf("events = %d, trace = %d", len(rec.Events), len(out.Trace))
	}
	for i, ev := range out.Trace {
		er := rec.Events[i]
		if er.Thread != int32(ev.Thread) || er.Obj != ev.Obj {
			t.Errorf("event %d mismatch: %+v vs %v", i, er, ev)
		}
		if ev.Kind == event.KindRead && er.Seen != ev.Seen {
			t.Errorf("read result lost at %d", i)
		}
	}
}
