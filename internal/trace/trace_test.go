package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/progdsl"
)

func sample() *progdsl.Program {
	b := progdsl.New("sample").AutoStart()
	x := b.Var("x")
	m := b.Mutex("m")
	t1 := b.Thread()
	t1.Lock(m).Read(0, x).AddConst(0, 0, 1).Write(x, 0).Unlock(m)
	t2 := b.Thread()
	t2.Lock(m).Read(0, x).AddConst(0, 0, 10).Write(x, 0).Unlock(m)
	return b.Build()
}

func TestRoundTrip(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.NewRandom(9), exec.Options{})
	rec := FromOutcome(prog, out, "")

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "sample" || len(back.Choices) != len(out.Choices) || back.StateKey != out.StateKey {
		t.Fatalf("round trip lost data: %+v", back)
	}
	replayed, err := back.Replay(prog, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.StateKey != out.StateKey {
		t.Error("replay reached a different state")
	}
}

// chanSample covers all four channel event kinds in one program: a
// send and a close racing on c, a select multiplexing {c, d}, and a
// drain of d.
func chanSample() *progdsl.Program {
	b := progdsl.New("chan-sample").AutoStart()
	x := b.Var("x")
	c := b.Chan("c", 1)
	d := b.Chan("d", 1)
	t1 := b.Thread()
	t1.SendConst(c, 7).SendConst(d, 9).WriteConst(x, 1)
	t2 := b.Thread()
	t2.Select(0, 1, 2, true, c, d).TryRecv(0, 1, d).Close(c)
	return b.Build()
}

// TestChanRoundTrip: a schedule over send/recv/close/select events
// serialises, parses back and replays to the identical trace and
// state — and the serialised form names the channel kinds (never
// "invalid").
func TestChanRoundTrip(t *testing.T) {
	prog := chanSample()
	out := exec.Run(prog, exec.NewRandom(3), exec.Options{})
	rec := FromOutcome(prog, out, "")
	if rec.Chans != 2 {
		t.Errorf("record carries %d channels, program has 2", rec.Chans)
	}
	kinds := map[string]bool{}
	for _, ev := range rec.Events {
		if ev.Kind == "" {
			t.Fatalf("event %+v serialised with an empty kind", ev)
		}
		kinds[ev.Kind] = true
	}
	if !kinds["send"] || !kinds["select"] {
		t.Errorf("expected send and select events in the trace, got kinds %v", kinds)
	}

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := back.Replay(prog, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.StateKey != out.StateKey {
		t.Error("replay reached a different state")
	}

	// A channel-free program with the same name and thread/var/mutex
	// shape must be rejected on the channel universe alone.
	plain := progdsl.New("chan-sample").AutoStart()
	px := plain.Var("x")
	plain.Thread().WriteConst(px, 1)
	plain.Thread().WriteConst(px, 2)
	if err := rec.Matches(plain.Build()); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Errorf("channel-universe mismatch must be rejected: %v", err)
	}
}

func TestMatchesGuards(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "deadlock")

	other := progdsl.New("other").AutoStart()
	other.Var("x")
	other.Thread().WriteConst(0, 1)
	op := other.Build()
	if err := rec.Matches(op); err == nil {
		t.Error("mismatched program name must be rejected")
	}

	sameName := progdsl.New("sample").AutoStart()
	sameName.Var("x")
	sameName.Thread().WriteConst(0, 1)
	sp := sameName.Build()
	if err := rec.Matches(sp); err == nil || !strings.Contains(err.Error(), "universe") {
		t.Errorf("universe mismatch must be rejected: %v", err)
	}
}

func TestReplayDivergenceDetected(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "")
	rec.StateKey = "store=[999] owners=[-1] status=[done done]"
	if _, err := rec.Replay(prog, exec.Options{}); err == nil {
		t.Error("tampered state key must be detected")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage must be rejected")
	}
	if _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version must be rejected")
	}
	if _, err := Read(strings.NewReader(`{"version": 1, "events": [{"k": "teleport"}]}`)); err == nil {
		t.Error("unknown event kind must be rejected")
	}
}

func TestEventRecordFidelity(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "")
	if len(rec.Events) != len(out.Trace) {
		t.Fatalf("events = %d, trace = %d", len(rec.Events), len(out.Trace))
	}
	for i, ev := range out.Trace {
		er := rec.Events[i]
		if er.Thread != int32(ev.Thread) || er.Obj != ev.Obj {
			t.Errorf("event %d mismatch: %+v vs %v", i, er, ev)
		}
		if ev.Kind == event.KindRead && er.Seen != ev.Seen {
			t.Errorf("read result lost at %d", i)
		}
	}
}

// TestRoundTripAllEventKinds: a program exercising every visible
// operation kind survives serialisation byte-for-byte — the artifact
// format must be lossless for any trace the machine can produce.
func TestRoundTripAllEventKinds(t *testing.T) {
	b := progdsl.New("all-kinds")
	x := b.Var("x")
	m := b.Mutex("m")
	main := b.Thread()
	worker := b.Thread()
	worker.Lock(m).Read(0, x).AddConst(0, 0, 5).Write(x, 0).Unlock(m)
	main.Spawn(worker).Lock(m).WriteConst(x, 1).Unlock(m).Join(worker).Read(1, x).AssertEq(1, 6)
	prog := b.Build()

	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})
	rec := FromOutcome(prog, out, "assertion failure")

	kinds := map[string]bool{}
	for _, ev := range rec.Events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"read", "write", "lock", "unlock", "spawn", "join", "assert"} {
		if !kinds[want] {
			t.Errorf("trace misses event kind %q (got %v)", want, kinds)
		}
	}

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Errorf("round trip not lossless:\n want %+v\n  got %+v", rec, back)
	}
	if _, err := back.Replay(prog, exec.Options{}); err != nil {
		t.Errorf("round-tripped record does not replay: %v", err)
	}
}

// TestReplayEventMismatchDiagnostics: tampered event payloads are
// reported with a diagnostic, not silently accepted.
func TestReplayEventMismatchDiagnostics(t *testing.T) {
	prog := sample()
	out := exec.Run(prog, exec.FirstEnabled{}, exec.Options{})

	short := FromOutcome(prog, out, "")
	short.Events = short.Events[:len(short.Events)-1]
	if _, err := short.Replay(prog, exec.Options{}); err == nil || !strings.Contains(err.Error(), "events") {
		t.Errorf("truncated event list must be diagnosed, got %v", err)
	}

	swapped := FromOutcome(prog, out, "")
	swapped.Events = append([]EventRecord(nil), swapped.Events...)
	swapped.Events[0].Kind = "write"
	if _, err := swapped.Replay(prog, exec.Options{}); err == nil || !strings.Contains(err.Error(), "event 0") {
		t.Errorf("tampered event kind must be diagnosed, got %v", err)
	}
}

// TestKindNamesTotal: every trace-visible event kind has a stable
// serialised name and parses back to itself.
func TestKindNamesTotal(t *testing.T) {
	for k, name := range kindNames {
		if got, ok := kindByName[name]; !ok || got != k {
			t.Errorf("kind %v name %q does not round-trip", k, name)
		}
	}
	if len(kindNames) != 12 {
		t.Errorf("kindNames covers %d kinds; update the table when event kinds change", len(kindNames))
	}
}
