package goharness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/model"
)

// panicProgram: t1 panics iff it observes t0's store.
func panicProgram() *Program {
	p := New("racy-panic").AutoStart()
	x := p.Var("x")
	done := p.Var("done")
	p.Thread(func(g *G) {
		g.Write(x, 1)
	})
	p.Thread(func(g *G) {
		if g.Read(x) == 1 {
			panic("boom")
		}
		g.Write(done, 1)
	})
	return p
}

// divergeProgram: t1 spins forever iff it observes t0's store.
func divergeProgram() *Program {
	p := New("racy-diverge").AutoStart()
	x := p.Var("x")
	done := p.Var("done")
	p.Thread(func(g *G) {
		g.Write(x, 1)
	})
	p.Thread(func(g *G) {
		if g.Read(x) == 1 {
			for {
				time.Sleep(time.Millisecond)
			}
		}
		g.Write(done, 1)
	})
	return p
}

// TestPanicBecomesViolation: a panicking thread body is captured at
// the harness boundary and surfaces as a panic-kind event and a
// FailPanic failure — a finding, never a process crash.
func TestPanicBecomesViolation(t *testing.T) {
	p := panicProgram()
	// Schedule t0 first so t1 observes the store and panics.
	out := exec.Replay(p, []event.ThreadID{0, 1, 1}, exec.Options{})
	if got := out.ViolationKind(); got != "panic" {
		t.Fatalf("ViolationKind = %q, want %q (failures: %v)", got, "panic", out.Failures)
	}
	if len(out.Failures) != 1 || out.Failures[0].Kind != model.FailPanic {
		t.Fatalf("failures = %+v, want one FailPanic", out.Failures)
	}
	if !strings.Contains(out.Failures[0].Msg, "boom") {
		t.Fatalf("failure message %q does not carry the panic value", out.Failures[0].Msg)
	}
	last := out.Trace[len(out.Trace)-1]
	if last.Kind != event.KindPanic || last.Thread != 1 {
		t.Fatalf("last trace event = %+v, want t1 panic", last)
	}

	// The schedule where t1 reads first terminates without panicking
	// (the read/write race on x is still reported, as it should be).
	clean := exec.Replay(p, []event.ThreadID{1, 1, 0}, exec.Options{})
	if len(clean.Failures) > 0 || clean.Deadlock {
		t.Fatalf("read-first schedule failed: %+v deadlock=%v", clean.Failures, clean.Deadlock)
	}
}

// TestPanicMessageDeterministic: the recovered panic value renders
// identically across replays — it is digested into state signatures.
func TestPanicMessageDeterministic(t *testing.T) {
	p := panicProgram()
	first := exec.Replay(p, []event.ThreadID{0, 1, 1}, exec.Options{})
	for i := 0; i < 3; i++ {
		again := exec.Replay(p, []event.ThreadID{0, 1, 1}, exec.Options{})
		if again.Failures[0].Msg != first.Failures[0].Msg {
			t.Fatalf("replay %d: panic message %q != %q", i, again.Failures[0].Msg, first.Failures[0].Msg)
		}
		if again.StateKey != first.StateKey {
			t.Fatalf("replay %d: state key diverged", i)
		}
	}
}

// TestStallTimeoutFencesDivergingThread: an infinite local loop is
// fenced as diverged within the stall timeout; the execution reports
// divergence, not deadlock or violation.
func TestStallTimeoutFencesDivergingThread(t *testing.T) {
	p := divergeProgram()
	start := time.Now()
	out := exec.Replay(p, []event.ThreadID{0, 1, 1}, exec.Options{StallTimeout: 30 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fencing took %v, far beyond the stall timeout", elapsed)
	}
	if !out.Diverged || out.DivergedThread != 1 {
		t.Fatalf("Diverged=%v DivergedThread=%d, want t1 fenced", out.Diverged, out.DivergedThread)
	}
	// The program's read/write race on x is a real (and separate)
	// finding; divergence itself must not classify as deadlock or a
	// failure.
	if out.Deadlock || len(out.Failures) > 0 {
		t.Fatalf("divergence misclassified: deadlock=%v failures=%v", out.Deadlock, out.Failures)
	}
}

// TestPeekTimeoutDirect pins the coroutine-level watchdog contract:
// after the timeout fires, the coroutine keeps announcing the
// divergence sentinel and aborts become no-ops.
func TestPeekTimeoutDirect(t *testing.T) {
	p := New("spin").AutoStart()
	p.Var("x")
	p.Thread(func(g *G) {
		for {
			time.Sleep(time.Millisecond)
		}
	})
	c := p.Start(0).(*coroutine)
	op, ok := c.PeekTimeout(20 * time.Millisecond)
	if !ok || op.Kind != event.KindDiverge {
		t.Fatalf("PeekTimeout = (%+v, %v), want diverge sentinel", op, ok)
	}
	// Idempotent: the fenced coroutine keeps reporting divergence.
	op, ok = c.PeekTimeout(time.Millisecond)
	if !ok || op.Kind != event.KindDiverge {
		t.Fatalf("second PeekTimeout = (%+v, %v), want diverge sentinel", op, ok)
	}
	op, ok = c.Peek()
	if !ok || op.Kind != event.KindDiverge {
		t.Fatalf("Peek after fence = (%+v, %v), want diverge sentinel", op, ok)
	}
	c.Abort()                            // must not hang or panic
	c.AbortTimeout(time.Millisecond * 5) // likewise
}

// TestAbortTimeoutAbandonsStuckBody: a body that never reaches its
// next scheduling point cannot hang Abort when the timed variant is
// used.
func TestAbortTimeoutAbandonsStuckBody(t *testing.T) {
	p := New("stuck").AutoStart()
	x := p.Var("x")
	p.Thread(func(g *G) {
		g.Read(x)
		for {
			time.Sleep(time.Millisecond)
		}
	})
	c := p.Start(0).(*coroutine)
	if op, ok := c.Peek(); !ok || op.Kind != event.KindRead {
		t.Fatalf("Peek = (%+v, %v), want read", op, ok)
	}
	c.Resume(0) // body now spins forever before its next announcement
	done := make(chan struct{})
	go func() {
		c.AbortTimeout(20 * time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("AbortTimeout hung on a stuck body")
	}
}
