// Package goharness runs real Go closures under the systematic
// concurrency tester. Each thread of the program under test is a
// goroutine that announces every visible operation (shared reads and
// writes, lock/unlock, spawn/join, assertions) to the scheduler over a
// channel handshake and blocks until the scheduler grants it. Only one
// goroutine makes progress between scheduling decisions at a visible
// operation, so the interleaving of visible operations — the only
// interleaving that matters — is fully controlled and deterministic,
// even though the Go runtime schedules the goroutines themselves.
//
// This is the Go analogue of LAZYLOCKS' Java bytecode instrumentation:
// the program text stays ordinary Go, and the harness supplies the
// scheduling points.
//
// Thread bodies must be deterministic: all cross-thread communication
// must go through the harness (G.Read/G.Write/G.Lock/...), and bodies
// must not consult ambient nondeterminism (time, maps iteration order,
// package-level mutable state shared across executions).
package goharness

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/model"
)

// Var names a shared variable of a harness program.
type Var int32

// Mutex names a mutex of a harness program.
type Mutex int32

// Chan names a channel of a harness program.
type Chan int32

// ThreadRef names a declared thread.
type ThreadRef event.ThreadID

// Body is the code of one thread.
type Body func(g *G)

// Program is a program under test built from Go closures. It
// implements model.Source; build it with New, Var, Mutex and Thread,
// then hand it to an exploration engine.
type Program struct {
	name      string
	varNames  []string
	muNames   []string
	chanNames []string
	chanCaps  []int32
	bodies    []Body
	init      map[Var]int64
	autoStart bool
}

var (
	_ model.Source        = (*Program)(nil)
	_ model.InitStorer    = (*Program)(nil)
	_ model.ChannelSource = (*Program)(nil)
)

// New returns an empty harness program.
func New(name string) *Program {
	return &Program{name: name, init: map[Var]int64{}}
}

// AutoStart makes all declared threads runnable initially (no explicit
// Spawn needed).
func (p *Program) AutoStart() *Program {
	p.autoStart = true
	return p
}

// Var declares a shared variable initialised to zero.
func (p *Program) Var(name string) Var {
	p.varNames = append(p.varNames, name)
	return Var(len(p.varNames) - 1)
}

// VarInit declares a shared variable with an initial value.
func (p *Program) VarInit(name string, x int64) Var {
	v := p.Var(name)
	p.init[v] = x
	return v
}

// Mutex declares a mutex.
func (p *Program) Mutex(name string) Mutex {
	p.muNames = append(p.muNames, name)
	return Mutex(len(p.muNames) - 1)
}

// Chan declares a channel with the given buffer capacity; 0 means
// unbuffered (rendezvous).
func (p *Program) Chan(name string, capacity int) Chan {
	if capacity < 0 {
		panic(fmt.Sprintf("goharness: Chan %q capacity %d", name, capacity))
	}
	p.chanNames = append(p.chanNames, name)
	p.chanCaps = append(p.chanCaps, int32(capacity))
	return Chan(len(p.chanNames) - 1)
}

// Thread declares a thread running body. The first thread declared is
// the initial thread.
func (p *Program) Thread(body Body) ThreadRef {
	p.bodies = append(p.bodies, body)
	return ThreadRef(len(p.bodies) - 1)
}

// Name implements model.Source.
func (p *Program) Name() string { return p.name }

// NumThreads implements model.Source.
func (p *Program) NumThreads() int { return len(p.bodies) }

// NumVars implements model.Source.
func (p *Program) NumVars() int { return len(p.varNames) }

// NumMutexes implements model.Source.
func (p *Program) NumMutexes() int { return len(p.muNames) }

// NumChannels implements model.ChannelSource.
func (p *Program) NumChannels() int { return len(p.chanNames) }

// ChannelCap implements model.ChannelSource.
func (p *Program) ChannelCap(c int32) int { return int(p.chanCaps[c]) }

// InitStore implements model.InitStorer.
func (p *Program) InitStore(store []int64) {
	for v, x := range p.init {
		store[v] = x
	}
}

// InitiallyRunning implements model.Source.
func (p *Program) InitiallyRunning() []event.ThreadID {
	if !p.autoStart {
		return []event.ThreadID{0}
	}
	out := make([]event.ThreadID, len(p.bodies))
	for i := range out {
		out[i] = event.ThreadID(i)
	}
	return out
}

// Start implements model.Source: it launches the thread body as a
// goroutine parked at its first visible operation.
func (p *Program) Start(t event.ThreadID) model.Coroutine {
	c := &coroutine{
		req:   make(chan event.Op),
		grant: make(chan grant),
		done:  make(chan struct{}),
	}
	body := p.bodies[t]
	go func() {
		defer close(c.done)
		defer close(c.req)
		defer func() {
			// Swallow the harness's own abort signal; announce a
			// genuine panic to the scheduler as the thread's final
			// visible operation instead of crashing the process —
			// a crashing schedule is a finding, not a harness
			// failure.
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					c.announcePanic(r)
				}
			}
		}()
		body(&G{c: c, id: t})
	}()
	return c
}

type abortSignal struct{}

type grant struct {
	val   int64
	abort bool
}

// coroutine adapts the channel handshake to the model.Coroutine
// peek/resume protocol.
type coroutine struct {
	req     chan event.Op
	grant   chan grant
	done    chan struct{}
	pending event.Op
	have    bool
	closed  bool
	// diverged is set by the stall watchdog (PeekTimeout/AbortTimeout
	// giving up): the goroutine is stuck in local computation and is
	// abandoned — never granted, never waited for again. The write
	// happens on the scheduler side, which is the only side that ever
	// reads it, so no synchronisation is needed.
	diverged bool
	// panicMsg is the rendered panic value of a body that panicked,
	// written before the KindPanic announcement (the channel handshake
	// orders it before the scheduler reads it).
	panicMsg string
}

var (
	_ model.Abortable     = (*coroutine)(nil)
	_ model.TimedPeeker   = (*coroutine)(nil)
	_ model.TimedAborter  = (*coroutine)(nil)
	_ model.PanicMessager = (*coroutine)(nil)
)

// announcePanic surfaces a recovered panic value as the thread's final
// visible operation. It runs on the thread goroutine, inside the
// recover handler: after the scheduler grants (or aborts) the
// announcement, the goroutine exits normally and the deferred closes
// let the next Peek observe termination. If the scheduler has already
// fenced this thread as diverged, nobody will read the announcement;
// the goroutine then parks on the send forever, which is exactly the
// abandoned-goroutine contract divergence already implies.
func (c *coroutine) announcePanic(r any) {
	c.panicMsg = fmt.Sprint(r)
	c.req <- event.Op{Kind: event.KindPanic}
	<-c.grant
}

// PanicMessage implements model.PanicMessager.
func (c *coroutine) PanicMessage() string { return c.panicMsg }

// Peek implements model.Coroutine. It blocks until the thread goroutine
// announces its next visible operation or terminates; the wait is
// bounded by the thread's local computation, never by another thread.
func (c *coroutine) Peek() (event.Op, bool) {
	if c.closed {
		return event.Op{}, false
	}
	if c.diverged {
		return event.Op{Kind: event.KindDiverge}, true
	}
	if c.have {
		return c.pending, true
	}
	op, ok := <-c.req
	if !ok {
		c.closed = true
		return event.Op{}, false
	}
	c.pending = op
	c.have = true
	return op, true
}

// PeekTimeout implements model.TimedPeeker: Peek, but a thread body
// that stays silent for d is declared diverged — the goroutine is
// abandoned mid-computation (it holds no harness resources; it parks
// on its next announcement, which nobody will ever read) and the
// sentinel divergence op is announced in its stead.
func (c *coroutine) PeekTimeout(d time.Duration) (event.Op, bool) {
	if c.closed {
		return event.Op{}, false
	}
	if c.diverged {
		return event.Op{Kind: event.KindDiverge}, true
	}
	if c.have {
		return c.pending, true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case op, ok := <-c.req:
		if !ok {
			c.closed = true
			return event.Op{}, false
		}
		c.pending = op
		c.have = true
		return op, true
	case <-timer.C:
		c.diverged = true
		return event.Op{Kind: event.KindDiverge}, true
	}
}

// Resume implements model.Coroutine.
func (c *coroutine) Resume(result int64) {
	if !c.have {
		panic("goharness: Resume without pending operation")
	}
	c.have = false
	c.grant <- grant{val: result}
}

// Abort implements model.Abortable: it unwinds the thread goroutine at
// its current visible operation and waits for it to exit, so abandoned
// executions leak nothing.
func (c *coroutine) Abort() {
	if c.closed || c.diverged {
		return
	}
	if !c.have {
		// The goroutine is either about to announce an operation
		// or about to terminate; consume whichever happens.
		op, ok := <-c.req
		if !ok {
			c.closed = true
			return
		}
		c.pending = op
		c.have = true
	}
	c.have = false
	c.grant <- grant{abort: true}
	<-c.done
	c.closed = true
}

// AbortTimeout implements model.TimedAborter: Abort, but with d of
// total wall-clock budget. A body that never reaches its next
// scheduling point — or swallows the abort with its own recover — is
// fenced as diverged and abandoned instead of hanging the scheduler.
func (c *coroutine) AbortTimeout(d time.Duration) {
	if c.closed || c.diverged {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	if !c.have {
		select {
		case op, ok := <-c.req:
			if !ok {
				c.closed = true
				return
			}
			c.pending = op
			c.have = true
		case <-timer.C:
			c.diverged = true
			return
		}
	}
	c.have = false
	select {
	case c.grant <- grant{abort: true}:
	case <-timer.C:
		c.diverged = true
		return
	}
	select {
	case <-c.done:
		c.closed = true
	case <-timer.C:
		c.diverged = true
	}
}

// G is the handle a thread body uses for all visible operations.
type G struct {
	c  *coroutine
	id event.ThreadID
}

// ID returns the thread's identifier.
func (g *G) ID() event.ThreadID { return g.id }

func (g *G) visible(op event.Op) int64 {
	g.c.req <- op
	gr := <-g.c.grant
	if gr.abort {
		panic(abortSignal{})
	}
	return gr.val
}

// Read returns the current value of v (a visible operation).
func (g *G) Read(v Var) int64 {
	return g.visible(event.Op{Kind: event.KindRead, Obj: int32(v)})
}

// Write stores x into v (a visible operation).
func (g *G) Write(v Var, x int64) {
	g.visible(event.Op{Kind: event.KindWrite, Obj: int32(v), Val: x})
}

// Lock acquires m, blocking while another thread holds it.
func (g *G) Lock(m Mutex) {
	g.visible(event.Op{Kind: event.KindLock, Obj: int32(m)})
}

// Unlock releases m; releasing a mutex the thread does not hold is
// recorded as a failure by the machine.
func (g *G) Unlock(m Mutex) {
	g.visible(event.Op{Kind: event.KindUnlock, Obj: int32(m)})
}

// Spawn starts the declared thread t.
func (g *G) Spawn(t ThreadRef) {
	g.visible(event.Op{Kind: event.KindSpawn, Obj: int32(t)})
}

// Join blocks until thread t has terminated.
func (g *G) Join(t ThreadRef) {
	g.visible(event.Op{Kind: event.KindJoin, Obj: int32(t)})
}

// Send sends x on channel c (a visible operation). It blocks while the
// channel is full — unbuffered: until a receiver is pending — and
// panics if the channel is closed, which the machine records as a
// panic violation and terminates this thread.
func (g *G) Send(c Chan, x int64) {
	g.visible(event.Op{Kind: event.KindSend, Obj: int32(c), Val: x})
}

// Recv receives from channel c (a visible operation), blocking while
// the channel is empty and open. On a closed empty channel it returns
// (0, false); otherwise the drained value and true.
func (g *G) Recv(c Chan) (int64, bool) {
	return event.UnpackRecvResult(g.visible(event.Op{Kind: event.KindRecv, Obj: int32(c)}))
}

// TryRecv is a non-blocking receive — a single-case select with a
// default. It returns (value, true) when a value was ready and
// (0, false) otherwise (including a closed empty channel).
func (g *G) TryRecv(c Chan) (int64, bool) {
	r := g.visible(event.Op{
		Kind: event.KindSelect, Obj: -1,
		Val: event.MakeSelectVal(1<<int32(c), true),
	})
	_, val, ok := event.UnpackSelectResult(r)
	return val, ok
}

// Close closes channel c (a visible operation). Closing an
// already-closed channel panics, like Go.
func (g *G) Close(c Chan) {
	g.visible(event.Op{Kind: event.KindClose, Obj: int32(c)})
}

// Select blocks until one of the case channels is ready (non-empty or
// closed) and receives from it — one visible operation. It returns the
// index into cs of the chosen case, the received value, and the ok
// flag (false when the chosen channel was closed and empty). The
// machine commits deterministically to the lowest-numbered ready
// channel; case nondeterminism is explored through arrival
// interleavings. Case channels must be distinct.
func (g *G) Select(cs ...Chan) (idx int, val int64, ok bool) {
	ch, val, ok := g.selectOn(cs, false)
	for i, c := range cs {
		if int32(c) == ch {
			return i, val, ok
		}
	}
	panic(fmt.Sprintf("goharness: select committed to undeclared case channel c%d", ch))
}

// TrySelect is Select with a default case: when no case channel is
// ready it returns idx = -1 immediately instead of blocking.
func (g *G) TrySelect(cs ...Chan) (idx int, val int64, ok bool) {
	ch, val, ok := g.selectOn(cs, true)
	if ch < 0 {
		return -1, 0, false
	}
	for i, c := range cs {
		if int32(c) == ch {
			return i, val, ok
		}
	}
	panic(fmt.Sprintf("goharness: select committed to undeclared case channel c%d", ch))
}

func (g *G) selectOn(cs []Chan, hasDefault bool) (int32, int64, bool) {
	if len(cs) == 0 {
		panic("goharness: select with no cases")
	}
	var mask int64
	for _, c := range cs {
		if c < 0 || c >= event.MaxSelectChans {
			panic(fmt.Sprintf("goharness: select case channel c%d out of mask range", c))
		}
		mask |= 1 << int32(c)
	}
	r := g.visible(event.Op{Kind: event.KindSelect, Obj: -1, Val: event.MakeSelectVal(mask, hasDefault)})
	return event.UnpackSelectResult(r)
}

// Assert records ok as a visible assertion; a false value is a safety
// violation the exploration engines report.
func (g *G) Assert(ok bool) {
	v := int64(0)
	if ok {
		v = 1
	}
	g.visible(event.Op{Kind: event.KindAssert, Val: v})
}

// Assertf is Assert with a formatted annotation for local debugging;
// the message is evaluated eagerly but only used when the assertion
// fails.
func (g *G) Assertf(ok bool, format string, args ...any) {
	if !ok {
		// The machine records the failure; the message aids local
		// debugging through the panic path of tests.
		_ = fmt.Sprintf(format, args...)
	}
	g.Assert(ok)
}
