package goharness_test

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/goharness"
)

// Example runs a two-thread message hand-off written as plain Go
// closures under a deterministic schedule.
func Example() {
	p := goharness.New("handoff").AutoStart()
	data := p.Var("data")
	flag := p.Var("flag")

	p.Thread(func(g *goharness.G) { // sender
		g.Write(data, 7)
		g.Write(flag, 1)
	})
	p.Thread(func(g *goharness.G) { // receiver
		if g.Read(flag) == 1 {
			g.Assert(g.Read(data) == 7)
		}
	})

	out := exec.Run(p, exec.FirstEnabled{}, exec.Options{})
	fmt.Println("events:", len(out.Trace), "failed:", len(out.Failures) > 0)
	// The unsynchronised flag is a data race the tracker reports:
	fmt.Println("races:", len(out.Races))
	// Output:
	// events: 5 failed: false
	// races: 2
}
