package goharness

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// counterProgram builds the canonical racy counter with n workers.
func counterProgram(n int) *Program {
	p := New("counter").AutoStart()
	c := p.Var("c")
	for i := 0; i < n; i++ {
		p.Thread(func(g *G) {
			v := g.Read(c)
			g.Write(c, v+1)
		})
	}
	return p
}

func TestBasicExecution(t *testing.T) {
	p := New("basic")
	x := p.VarInit("x", 10)
	y := p.Var("y")
	mu := p.Mutex("mu")
	p.Thread(func(g *G) {
		g.Lock(mu)
		v := g.Read(x)
		g.Write(y, v*2)
		g.Unlock(mu)
		g.Assert(g.Read(y) == 20)
	})
	out := exec.Run(p, exec.FirstEnabled{}, exec.Options{})
	if out.Failed() {
		t.Fatalf("execution failed: %+v", out)
	}
	want := []event.Kind{event.KindLock, event.KindRead, event.KindWrite, event.KindUnlock, event.KindRead, event.KindAssert}
	if len(out.Trace) != len(want) {
		t.Fatalf("trace length %d, want %d: %v", len(out.Trace), len(want), out.Trace)
	}
	for i, k := range want {
		if out.Trace[i].Kind != k {
			t.Errorf("trace[%d] = %v, want kind %v", i, out.Trace[i], k)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	p := counterProgram(3)
	first := exec.Run(p, exec.NewRandom(7), exec.Options{})
	for i := 0; i < 5; i++ {
		again := exec.Replay(p, first.Choices, exec.Options{})
		if again.StateKey != first.StateKey || again.HBFP != first.HBFP {
			t.Fatalf("replay %d diverged", i)
		}
	}
}

func TestSpawnJoin(t *testing.T) {
	p := New("spawnjoin")
	x := p.Var("x")
	var child ThreadRef
	p.Thread(func(g *G) {
		g.Spawn(child)
		g.Join(child)
		g.Assert(g.Read(x) == 5)
	})
	child = p.Thread(func(g *G) {
		g.Write(x, 5)
	})
	out := exec.Run(p, exec.FirstEnabled{}, exec.Options{})
	if out.Failed() {
		t.Fatalf("spawn/join program failed: %+v", out.Failures)
	}
}

// TestAbortReleasesGoroutines drives a partial execution, abandons it,
// and checks the thread goroutines exit rather than leak.
func TestAbortReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p := counterProgram(4)
		m := model.NewMachine(p)
		m.Step(0) // execute one event, leaving all threads live
		m.Abort()
	}
	// Give exiting goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestExplorationOverHarness runs a full DPOR exploration over a
// goroutine-backed program (replay mode, since goroutines cannot be
// snapshotted) and compares class counts against the identical progdsl
// program — the two frontends must induce the same schedule space.
func TestExplorationOverHarness(t *testing.T) {
	hp := counterProgram(2)
	hres := explore.NewDPOR(false).Explore(hp, explore.Options{})

	b := progdsl.New("counter-dsl").AutoStart()
	c := b.Var("c")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Read(0, c)
		th.AddConst(0, 0, 1)
		th.Write(c, 0)
	}
	dres := explore.NewDPOR(false).Explore(b.Build(), explore.Options{})

	if hres.DistinctStates != dres.DistinctStates ||
		hres.DistinctHBRs != dres.DistinctHBRs ||
		hres.DistinctLazyHBRs != dres.DistinctLazyHBRs {
		t.Fatalf("frontends disagree: harness=%v dsl=%v", hres.String(), dres.String())
	}
	if hres.Schedules != dres.Schedules {
		t.Fatalf("schedule counts differ: harness=%d dsl=%d", hres.Schedules, dres.Schedules)
	}
}

func TestAssertRecordsFailure(t *testing.T) {
	p := New("assertfail")
	p.Thread(func(g *G) {
		g.Assert(false)
	})
	out := exec.Run(p, exec.FirstEnabled{}, exec.Options{})
	if len(out.Failures) != 1 || out.Failures[0].Kind != model.FailAssert {
		t.Fatalf("failures = %v", out.Failures)
	}
}

func TestAssertfPassesThrough(t *testing.T) {
	p := New("assertf")
	x := p.VarInit("x", 3)
	p.Thread(func(g *G) {
		v := g.Read(x)
		g.Assertf(v == 3, "x was %d", v)
		g.Assertf(v == 4, "x was %d", v)
	})
	out := exec.Run(p, exec.FirstEnabled{}, exec.Options{})
	if len(out.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one", out.Failures)
	}
}

func TestProgramMetadata(t *testing.T) {
	p := New("meta")
	p.Var("a")
	p.VarInit("b", 9)
	p.Mutex("m")
	ref := p.Thread(func(*G) {})
	if p.Name() != "meta" || p.NumVars() != 2 || p.NumMutexes() != 1 || p.NumThreads() != 1 {
		t.Error("metadata wrong")
	}
	if ref != 0 {
		t.Errorf("first thread ref = %d, want 0", ref)
	}
	store := make([]int64, 2)
	p.InitStore(store)
	if store[1] != 9 {
		t.Error("InitStore must apply VarInit values")
	}
	if got := p.InitiallyRunning(); len(got) != 1 || got[0] != 0 {
		t.Errorf("default InitiallyRunning = %v, want [0]", got)
	}
	p.AutoStart()
	if got := p.InitiallyRunning(); len(got) != 1 {
		t.Errorf("autostart InitiallyRunning = %v", got)
	}
}

func TestThreadIDExposed(t *testing.T) {
	p := New("ids").AutoStart()
	x := p.Var("x")
	seen := p.Var("seen")
	p.Thread(func(g *G) {
		if g.ID() == 0 {
			g.Write(x, 1)
		}
	})
	p.Thread(func(g *G) {
		if g.ID() == 1 {
			g.Write(seen, 1)
		}
	})
	out := exec.Run(p, exec.FirstEnabled{}, exec.Options{})
	if out.Failed() {
		t.Fatal("execution failed")
	}
	// Both conditionals must have fired.
	found := map[int32]bool{}
	for _, ev := range out.Trace {
		if ev.Kind == event.KindWrite {
			found[ev.Obj] = true
		}
	}
	if !found[0] || !found[1] {
		t.Errorf("thread IDs misreported; writes seen: %v", found)
	}
}
