// Package engines is the single engine registry behind the public sct
// facade: every exploration engine the harness knows is registered
// here under its canonical spec name, and every consumer — the
// campaign runner's EngineSpec grammar, core.NewEngine, the figure
// pipelines and the sct facade itself — builds engines through this
// one table instead of a private string switch.
//
// A spec is a colon-separated name plus optional arguments
// ("dpor+sleep", "pb:2:lazy", "pdpor:4"); Build parses it and hands
// the arguments to the registered Builder. The sequential engines of
// internal/explore register at package init; the parallel searches
// self-register from internal/campaign (so they exist exactly in
// binaries that link the campaign runner); external embedders add
// their own engines through sct.Register.
package engines

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/explore"
)

// Builder constructs an engine from the colon-separated arguments of
// a spec string (the part after the engine name). Builders validate
// their arguments and must be safe for concurrent use.
type Builder func(args []string) (explore.Engine, error)

// Info describes one registered engine.
type Info struct {
	// Name is the canonical spec name ("dpor+sleep", "pb", "pdpor").
	Name string
	// Usage documents the spec grammar ("pb:N[:hbr|:lazy]").
	Usage string
	// Summary is a one-line description for listings.
	Summary string
	// Parallel marks engines that fan one search out across workers.
	Parallel bool
	// Grid lists the specs this engine contributes to the canonical
	// default engine grid (DefaultGrid); empty for engines that are
	// ablation baselines or need explicit arguments to be meaningful.
	Grid []string
	// Build instantiates the engine from spec arguments.
	Build Builder
}

var (
	mu      sync.RWMutex
	byName  = map[string]Info{}
	inOrder []string // registration order = canonical order
)

// Register adds an engine to the registry. The name must be non-empty,
// colon- and comma-free (it has to survive the spec and flag
// grammars), unused, and the builder non-nil; violations panic, since
// they are programmer errors at package init or embedder setup time.
func Register(info Info) {
	if info.Name == "" {
		panic("engines: Register with empty name")
	}
	for _, c := range info.Name {
		if c == ':' || c == ',' || c == ' ' {
			panic(fmt.Sprintf("engines: name %q contains spec-grammar separator %q", info.Name, c))
		}
	}
	if info.Build == nil {
		panic(fmt.Sprintf("engines: Register(%q) with nil builder", info.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byName[info.Name]; dup {
		panic(fmt.Sprintf("engines: duplicate registration of %q", info.Name))
	}
	byName[info.Name] = info
	inOrder = append(inOrder, info.Name)
}

// Lookup returns the registration for an engine name (not a full
// spec: "pb", not "pb:2").
func Lookup(name string) (Info, bool) {
	mu.RLock()
	defer mu.RUnlock()
	info, ok := byName[name]
	return info, ok
}

// Names lists the registered engine names in canonical order
// (sequential engines first, in registration order, then whatever
// else the linked packages and the embedder registered).
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return append([]string(nil), inOrder...)
}

// All lists the registrations in canonical order.
func All() []Info {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Info, len(inOrder))
	for i, n := range inOrder {
		out[i] = byName[n]
	}
	return out
}

// DefaultGrid returns the canonical default engine grid — the
// spec list evaluation sweeps (the paper-style bug-finding table)
// default to — assembled from each registration's Grid contribution in
// canonical order.
func DefaultGrid() []string {
	var out []string
	for _, info := range All() {
		out = append(out, info.Grid...)
	}
	return out
}

// Build parses a spec ("name[:arg[:arg...]]") and instantiates the
// named engine.
func Build(spec string) (explore.Engine, error) {
	name, args, _ := strings.Cut(spec, ":")
	var argv []string
	if args != "" {
		argv = strings.Split(args, ":")
	}
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("engines: unknown engine spec %q (registered: %v)", spec, Names())
	}
	eng, err := info.Build(argv)
	if err != nil {
		return nil, fmt.Errorf("engines: bad engine spec %q: %w", spec, err)
	}
	return eng, nil
}

// IntArg parses argv[i] as an int, with a default when the argument
// is absent — the shared helper for numeric spec arguments.
func IntArg(argv []string, i, dflt int) (int, error) {
	if i >= len(argv) {
		return dflt, nil
	}
	n, err := strconv.Atoi(argv[i])
	if err != nil {
		return 0, fmt.Errorf("argument %d: %v", i+1, err)
	}
	return n, nil
}

// NoArgs returns a Builder for engines whose spec takes no arguments.
func NoArgs(build func() explore.Engine) Builder {
	return func(args []string) (explore.Engine, error) {
		if len(args) > 0 {
			return nil, fmt.Errorf("takes no arguments, got %v", args)
		}
		return build(), nil
	}
}
