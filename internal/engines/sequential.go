package engines

import (
	"fmt"

	"repro/internal/explore"
)

// The sequential engines of internal/explore self-register here, in
// the canonical order every listing and the default grid follow. The
// parallel searches register from internal/campaign (they are built on
// the campaign worker machinery), after these.
func init() {
	Register(Info{
		Name: "dfs", Summary: "exhaustive depth-first enumeration (the baseline search)",
		Grid:  []string{"dfs"},
		Build: NoArgs(explore.NewDFS),
	})
	Register(Info{
		Name: "dpor", Summary: "dynamic partial-order reduction (Flanagan & Godefroid)",
		Grid:  []string{"dpor"},
		Build: NoArgs(func() explore.Engine { return explore.NewDPOR(false) }),
	})
	Register(Info{
		Name: "dpor+sleep", Summary: "DPOR with sleep sets",
		Grid:  []string{"dpor+sleep"},
		Build: NoArgs(func() explore.Engine { return explore.NewDPOR(true) }),
	})
	Register(Info{
		Name: "lazy-dpor", Summary: "the paper's Section 4 experimental lazy DPOR",
		Grid:  []string{"lazy-dpor"},
		Build: NoArgs(explore.NewLazyDPOR),
	})
	Register(Info{
		Name: "hbr-caching", Summary: "regular HBR caching (Musuvathi & Qadeer)",
		Grid:  []string{"hbr-caching"},
		Build: NoArgs(explore.NewHBRCache),
	})
	Register(Info{
		Name: "lazy-hbr-caching", Summary: "lazy HBR caching (the paper's Section 2)",
		Grid:  []string{"lazy-hbr-caching"},
		Build: NoArgs(explore.NewLazyHBRCache),
	})
	Register(Info{
		Name: "pb", Usage: "pb:N[:hbr|:lazy]",
		Summary: "preemption-bounded DFS, optionally with (lazy) HBR caching",
		Grid:    []string{"pb:2"},
		Build:   buildPB,
	})
	Register(Info{
		Name: "db", Usage: "db:N", Summary: "delay-bounded DFS",
		Grid: []string{"db:2"},
		Build: func(argv []string) (explore.Engine, error) {
			bound, err := IntArg(argv, 0, 2)
			if err != nil {
				return nil, err
			}
			return explore.NewDelayBounded(bound), nil
		},
	})
	Register(Info{
		Name: "chess-pb", Usage: "chess-pb:N",
		Summary: "iterative preemption-bound deepening (CHESS)",
		Build: func(argv []string) (explore.Engine, error) {
			bound, err := IntArg(argv, 0, 3)
			if err != nil {
				return nil, err
			}
			return explore.NewIterativePreemptionBounding(bound), nil
		},
	})
	Register(Info{
		Name: "chess-db", Usage: "chess-db:N",
		Summary: "iterative delay-bound deepening",
		Build: func(argv []string) (explore.Engine, error) {
			bound, err := IntArg(argv, 0, 3)
			if err != nil {
				return nil, err
			}
			return explore.NewIterativeDelayBounding(bound), nil
		},
	})
	Register(Info{
		Name: "random", Usage: "random[:seed]",
		Summary: "seeded random walk (the non-systematic baseline)",
		Grid:    []string{"random"},
		Build: func(argv []string) (explore.Engine, error) {
			seed, err := IntArg(argv, 0, 1)
			if err != nil {
				return nil, err
			}
			return explore.NewRandomWalk(int64(seed)), nil
		},
	})
	Register(Info{
		Name: "pct", Usage: "pct:d[:seed]",
		Summary: "probabilistic concurrency testing (Burckhardt et al.): priority scheduling with d-1 random change points",
		Grid:    []string{"pct:3"},
		Build: func(argv []string) (explore.Engine, error) {
			d, err := IntArg(argv, 0, 3)
			if err != nil {
				return nil, err
			}
			if d < 1 {
				return nil, fmt.Errorf("bug depth %d (want >= 1)", d)
			}
			seed, err := IntArg(argv, 1, 1)
			if err != nil {
				return nil, err
			}
			return explore.NewPCT(int64(seed), d), nil
		},
	})
	Register(Info{
		Name: "pos", Usage: "pos[:seed]",
		Summary: "partial-order sampling: racing pending events redraw their random priorities (near-uniform over trace classes)",
		Grid:    []string{"pos"},
		Build: func(argv []string) (explore.Engine, error) {
			seed, err := IntArg(argv, 0, 1)
			if err != nil {
				return nil, err
			}
			return explore.NewPOS(int64(seed)), nil
		},
	})
	Register(Info{
		Name: "chaos", Usage: "chaos[:panic|:stall|:hang|:flaky[:N]]",
		Summary: "fault injection: panics, stalls, hangs or fails transiently to exercise campaign containment (no grid contribution)",
		Build: func(argv []string) (explore.Engine, error) {
			mode := explore.ChaosFlaky
			if len(argv) > 0 {
				mode = argv[0]
			}
			n, err := IntArg(argv, 1, 0)
			if err != nil {
				return nil, err
			}
			return explore.NewChaos(mode, n)
		},
	})
}

func buildPB(argv []string) (explore.Engine, error) {
	bound, err := IntArg(argv, 0, 2)
	if err != nil {
		return nil, err
	}
	if len(argv) > 1 {
		switch argv[1] {
		case "hbr":
			return explore.NewPreemptionBoundedCache(bound, false), nil
		case "lazy":
			return explore.NewPreemptionBoundedCache(bound, true), nil
		default:
			return nil, fmt.Errorf("cache mode %q (want hbr or lazy)", argv[1])
		}
	}
	return explore.NewPreemptionBounded(bound), nil
}
