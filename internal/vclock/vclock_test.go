package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueIsBottom(t *testing.T) {
	var v VC
	if v.Get(0) != 0 || v.Get(100) != 0 {
		t.Error("zero clock must read 0 everywhere")
	}
	o := New(3).Set(1, 5)
	if !v.Leq(o) {
		t.Error("bottom must be ≤ everything")
	}
	if o.Leq(v) {
		t.Error("non-bottom must not be ≤ bottom")
	}
}

func TestSetGetGrow(t *testing.T) {
	v := New(1)
	v = v.Set(4, 7)
	if got := v.Get(4); got != 7 {
		t.Errorf("Get(4) = %d, want 7", got)
	}
	if got := v.Get(2); got != 0 {
		t.Errorf("Get(2) = %d, want 0 after growth", got)
	}
	if v.Get(-1) != 0 {
		t.Error("negative index must read 0")
	}
}

func TestInc(t *testing.T) {
	var v VC
	v = v.Inc(2)
	v = v.Inc(2)
	v = v.Inc(0)
	if v.Get(2) != 2 || v.Get(0) != 1 || v.Get(1) != 0 {
		t.Errorf("unexpected clock %v", v)
	}
}

func TestJoinBasics(t *testing.T) {
	a := VC{1, 5, 0}
	b := VC{3, 2}
	j := a.Clone().Join(b)
	want := VC{3, 5, 0}
	if !j.Equal(want) {
		t.Errorf("join = %v, want %v", j, want)
	}
	// Join must not modify its argument.
	if !b.Equal(VC{3, 2}) {
		t.Errorf("join modified its operand: %v", b)
	}
}

func TestOrderPredicates(t *testing.T) {
	a := VC{1, 2}
	b := VC{1, 3}
	c := VC{2, 1}
	if !a.Leq(b) || !a.Less(b) {
		t.Error("a must be < b")
	}
	if b.Leq(a) {
		t.Error("b must not be ≤ a")
	}
	if !a.Concurrent(c) && !a.Leq(c) && !c.Leq(a) {
		t.Error("predicates inconsistent")
	}
	if !b.Concurrent(c) {
		t.Error("b and c must be concurrent")
	}
	if !a.Equal(VC{1, 2, 0}) {
		t.Error("trailing zeros must not affect equality")
	}
}

func TestHashLengthInvariance(t *testing.T) {
	a := VC{1, 2}
	b := VC{1, 2, 0, 0}
	if a.Hash() != b.Hash() {
		t.Error("equal clocks of different lengths must hash equally")
	}
	c := VC{1, 3}
	if a.Hash() == c.Hash() {
		t.Error("different clocks should hash differently (FNV collision on trivial input)")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := VC{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone must be independent")
	}
	if VC(nil).Clone() != nil {
		t.Error("Clone of nil must be nil")
	}
}

// genVC produces a random small clock from the quick-check source.
func genVC(r *rand.Rand) VC {
	n := r.Intn(5)
	v := New(n)
	for i := range v {
		v[i] = int32(r.Intn(4))
	}
	return v
}

func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		return a.Clone().Join(b).Equal(b.Clone().Join(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genVC(r), genVC(r), genVC(r)
		l := a.Clone().Join(b).Join(c)
		rr := a.Clone().Join(b.Clone().Join(c))
		return l.Equal(rr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIdempotentAndUpper(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		j := a.Clone().Join(b)
		return a.Clone().Join(a).Equal(a) && a.Leq(j) && b.Leq(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinIsLeastUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genVC(r), genVC(r)
		j := a.Clone().Join(b)
		// Any upper bound u of {a,b} dominates the join.
		u := j.Clone().Inc(r.Intn(4))
		return a.Leq(u) && b.Leq(u) && j.Leq(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLeqPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genVC(r), genVC(r), genVC(r)
		// Reflexive.
		if !a.Leq(a) {
			return false
		}
		// Antisymmetric.
		if a.Leq(b) && b.Leq(a) && !a.Equal(b) {
			return false
		}
		// Transitive.
		if a.Leq(b) && b.Leq(c) && !a.Leq(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickHashRespectsEquality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genVC(r)
		b := a.Clone()
		// Extend with zeros: still equal, must hash equal.
		b = b.grow(len(b) + r.Intn(3))
		return a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if s := (VC{1, 0, 3}).String(); s != "[1 0 3]" {
		t.Errorf("String = %q", s)
	}
}
