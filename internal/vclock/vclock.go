// Package vclock implements fixed-width vector clocks, the ordering
// backbone for the happens-before relations computed by this repository.
//
// A VC maps thread identifiers (small dense integers) to logical times.
// The zero-length VC is a valid clock that is ≤ every other clock; all
// operations tolerate operands of different lengths by treating missing
// entries as zero.
//
// # Immutable-after-publication discipline
//
// The mutating operations (Set, Inc, Join) exist for *building* a clock
// that no one else can see yet. Once a clock is published — stored into
// shared state, returned to a caller, or captured by a snapshot — it
// must never be mutated again. Under that discipline published clocks
// are shared by reference, never deep-copied: tracker clones, per-event
// result clocks and exploration snapshots all alias the same immutable
// backing arrays. Clone remains available for the rare consumer that
// genuinely needs a private mutable copy.
package vclock

import "fmt"

// VC is a vector clock. Index i holds the logical time of thread i.
// The zero value (nil) is the bottom clock.
type VC []int32

// New returns a zeroed clock with capacity for n threads.
func New(n int) VC { return make(VC, n) }

// Get returns the component for thread t, or 0 if t is out of range.
func (v VC) Get(t int) int32 {
	if t < 0 || t >= len(v) {
		return 0
	}
	return v[t]
}

// Set assigns component t, growing the clock if necessary, and returns
// the (possibly reallocated) clock.
func (v VC) Set(t int, x int32) VC {
	v = v.grow(t + 1)
	v[t] = x
	return v
}

// Inc increments component t by one, growing if necessary, and returns
// the (possibly reallocated) clock.
func (v VC) Inc(t int) VC {
	v = v.grow(t + 1)
	v[t]++
	return v
}

func (v VC) grow(n int) VC {
	if len(v) >= n {
		return v
	}
	w := make(VC, n)
	copy(w, v)
	return w
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if v == nil {
		return nil
	}
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Join sets v to the component-wise maximum of v and o, returning the
// (possibly reallocated) result. o is not modified.
func (v VC) Join(o VC) VC {
	v = v.grow(len(o))
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
	return v
}

// Leq reports whether v ≤ o component-wise (the happens-before-or-equal
// order on clocks).
func (v VC) Leq(o VC) bool {
	for i, x := range v {
		if x > o.Get(i) {
			return false
		}
	}
	return true
}

// Less reports whether v ≤ o and v ≠ o.
func (v VC) Less(o VC) bool { return v.Leq(o) && !o.Leq(v) }

// Equal reports whether v and o denote the same clock (missing entries
// count as zero).
func (v VC) Equal(o VC) bool { return v.Leq(o) && o.Leq(v) }

// Concurrent reports whether neither v ≤ o nor o ≤ v.
func (v VC) Concurrent(o VC) bool { return !v.Leq(o) && !o.Leq(v) }

// Hash folds the clock into a 64-bit FNV-1a digest. Trailing zero
// components are skipped so that equal clocks of different lengths hash
// identically.
func (v VC) Hash() uint64 {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < n; i++ {
		x := uint32(v[i])
		h ^= uint64(x & 0xff)
		h *= prime
		h ^= uint64((x >> 8) & 0xff)
		h *= prime
		h ^= uint64((x >> 16) & 0xff)
		h *= prime
		h ^= uint64(x >> 24)
		h *= prime
	}
	return h
}

// String renders the clock as e.g. "[1 0 3]".
func (v VC) String() string { return fmt.Sprintf("%v", []int32(v)) }
