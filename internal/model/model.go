// Package model defines the abstract machine executed by the
// systematic concurrency tester: a shared store of integer variables, a
// set of mutexes with ownership semantics, and a set of threads whose
// code is supplied by a Source as cooperative coroutines.
//
// The machine is the single point of truth for enabledness: a thread is
// enabled when it is running and its pending visible operation can
// execute in the current state (a Lock of a held mutex and a Join of a
// live thread block). Exploration engines drive the machine one visible
// operation at a time and therefore control the interleaving completely
// — the Go runtime scheduler never influences the schedule.
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// Coroutine is one thread's code, exposed as a peek/resume state
// machine. Implementations must be deterministic: Peek must be
// idempotent (it may compute thread-local work once, then cache) and
// the announced operation must depend only on values delivered by
// earlier Resume calls.
type Coroutine interface {
	// Peek returns the thread's pending visible operation, or
	// ok=false once the thread has terminated.
	Peek() (op event.Op, ok bool)
	// Resume consumes the pending operation. result carries the
	// value observed by a Read and is zero otherwise.
	Resume(result int64)
}

// Abortable is implemented by coroutines that hold external resources
// (e.g. a goroutine) that must be released when an execution is
// abandoned before the thread terminates.
type Abortable interface {
	Abort()
}

// TimedPeeker is implemented by coroutines whose Peek can block on
// genuinely concurrent thread bodies (goharness). PeekTimeout behaves
// like Peek but gives up after d of wall-clock silence, fencing the
// coroutine and returning an event.KindDiverge sentinel: the thread is
// stuck in local computation and will never announce again.
type TimedPeeker interface {
	PeekTimeout(d time.Duration) (op event.Op, ok bool)
}

// TimedAborter is implemented by coroutines whose Abort can block on a
// hostile thread body (one that never reaches its next scheduling
// point, or swallows the abort). AbortTimeout abandons the coroutine
// after d instead of hanging the scheduler.
type TimedAborter interface {
	AbortTimeout(d time.Duration)
}

// PanicMessager is implemented by coroutines that announce
// event.KindPanic and can render the recovered panic value. The
// message must be deterministic for a given program and schedule: it
// is digested into state signatures and replay-verified by the
// counterexample pipeline.
type PanicMessager interface {
	PanicMessage() string
}

// Snapshottable is implemented by coroutines whose full state can be
// copied, enabling incremental (non-replay) exploration.
type Snapshottable interface {
	Snapshot() Coroutine
}

// Source describes a program under test: a fixed universe of threads,
// shared variables and mutexes, plus a factory for thread coroutines.
// Sources must be stateless with respect to executions: Start may be
// called many times for the same thread across schedules.
type Source interface {
	// Name identifies the program in reports.
	Name() string
	// NumThreads returns the number of threads (IDs 0..n-1).
	NumThreads() int
	// NumVars returns the number of shared variables.
	NumVars() int
	// NumMutexes returns the number of mutexes.
	NumMutexes() int
	// Start creates a fresh coroutine for thread t.
	Start(t event.ThreadID) Coroutine
	// InitiallyRunning lists the threads that are runnable at the
	// initial state; the rest must be started via Spawn. A nil or
	// empty result means {0}.
	InitiallyRunning() []event.ThreadID
}

// InitStorer is optionally implemented by Sources whose shared
// variables start at non-zero values.
type InitStorer interface {
	InitStore(store []int64)
}

// ChannelSource is optionally implemented by Sources whose programs
// use channels. Sources without channels need not implement it.
type ChannelSource interface {
	// NumChannels returns the number of channels (indices 0..n-1).
	NumChannels() int
	// ChannelCap returns channel c's buffer capacity; 0 means
	// unbuffered (rendezvous).
	ChannelCap(c int32) int
}

// NumChannels returns src's channel-universe size: its ChannelSource
// answer, or 0 when channels are not implemented.
func NumChannels(src Source) int {
	if cs, ok := src.(ChannelSource); ok {
		return cs.NumChannels()
	}
	return 0
}

// Status is a thread's lifecycle state.
type Status uint8

const (
	// NotStarted threads await a Spawn.
	NotStarted Status = iota
	// Running threads have a coroutine (possibly blocked).
	Running
	// Done threads have terminated.
	Done
	// Diverged threads were caught stuck in local computation (by the
	// stall watchdog or a frontend's diverge announcement) and fenced:
	// their coroutine is abandoned and never stepped again.
	Diverged
)

// String returns "notstarted", "running", "done" or "diverged".
func (s Status) String() string {
	switch s {
	case NotStarted:
		return "notstarted"
	case Running:
		return "running"
	case Done:
		return "done"
	case Diverged:
		return "diverged"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// NoOwner marks a free mutex.
const NoOwner event.ThreadID = -1

// FailKind classifies a safety violation.
type FailKind uint8

const (
	// FailAssert is a failed program assertion.
	FailAssert FailKind = iota
	// FailLockMisuse is an unlock of a mutex not held by the caller.
	FailLockMisuse
	// FailSpawnMisuse is a spawn of an already-started thread.
	FailSpawnMisuse
	// FailPanic is a thread body that panicked; the recovered value is
	// in the failure message.
	FailPanic
)

// String names the failure class.
func (k FailKind) String() string {
	switch k {
	case FailAssert:
		return "assert"
	case FailLockMisuse:
		return "lock-misuse"
	case FailSpawnMisuse:
		return "spawn-misuse"
	case FailPanic:
		return "panic"
	}
	return fmt.Sprintf("failkind(%d)", uint8(k))
}

// Failure records a safety violation observed during an execution.
type Failure struct {
	Kind   FailKind
	Thread event.ThreadID
	Index  int32 // per-thread event index at which the failure fired
	Msg    string
}

// String renders the failure for reports.
func (f Failure) String() string {
	return fmt.Sprintf("t%d#%d: %s", f.Thread, f.Index, f.Msg)
}

// ViolationKind names the most severe safety violation of a terminal
// execution — the single source of the violation classes and their
// precedence (panic > assertion failure > deadlock > lock misuse >
// data race) shared by the exploration recorder and replayed
// outcomes; "" when the execution is violation-free.
func ViolationKind(deadlocked bool, failures []Failure, raced bool) string {
	panics, asserts, lockErrs := 0, 0, 0
	for _, f := range failures {
		switch f.Kind {
		case FailPanic:
			panics++
		case FailAssert:
			asserts++
		default:
			lockErrs++
		}
	}
	switch {
	case panics > 0:
		return "panic"
	case asserts > 0:
		return "assertion failure"
	case deadlocked:
		return "deadlock"
	case lockErrs > 0:
		return "lock misuse"
	case raced:
		return "data race"
	}
	return ""
}

// chanState is one channel of a machine: a FIFO ring of int64
// payloads plus the closed flag. Unbuffered channels (capN == 0) use a
// single ring slot as the rendezvous cell: the send deposits, the
// paired receive drains. Blocking is not represented here — a channel
// operation that cannot fire simply leaves its thread non-enabled, so
// "waiter sets" are exactly the pending announcements the machine
// already tracks.
type chanState struct {
	capN   int32 // declared capacity; 0 = unbuffered
	head   int32 // ring index of the oldest value
	count  int32 // values currently buffered
	closed bool
	buf    []int64 // len = max(capN, 1)
}

// Machine is one live execution instance of a Source.
type Machine struct {
	src      Source
	store    []int64
	owner    []event.ThreadID
	chans    []chanState
	status   []Status
	cor      []Coroutine
	steps    []int32
	pending  []event.Op
	havePend []bool
	failures []Failure
	executed int

	// stall is the divergence watchdog's wall-clock budget for one
	// Peek; 0 disables the watchdog (Peek may block forever).
	stall time.Duration
	// divergedT is the thread whose divergence ended this execution,
	// or NoOwner. Exploration must stop extending a diverged machine.
	divergedT event.ThreadID
	// obsHash and hints exist only while the watchdog is armed:
	// obsHash[t] is a running hash of the Resume results delivered to
	// t (a thread's behaviour is a pure function of its code and its
	// observation history), and hints memoises discovered divergence
	// points so re-visiting one in a later schedule fences the thread
	// immediately instead of re-waiting the timeout and leaking
	// another stuck goroutine.
	obsHash []uint64
	hints   *DivergeHints

	// undo is the reversal log recorded when undoEnabled: one O(1)
	// record per Step, letting UndoTo rewind the machine in place
	// instead of restoring a deep snapshot.
	undo        []undoRec
	undoEnabled bool
}

// divergeKey identifies a divergence point schedule-independently: the
// thread, how many operations it had executed, and the hash of every
// value it had observed. Two executions agreeing on all three put the
// thread in the same local state, so it diverges in both.
type divergeKey struct {
	t   event.ThreadID
	k   int32
	obs uint64
}

// DivergeHints memoises divergence points across the machines of one
// exploration, so each stuck loop costs one wall-clock timeout (and
// one leaked goroutine) total, not one per schedule that reaches it.
// Hints are monotone facts about the program and are never undone.
type DivergeHints struct {
	mu sync.Mutex
	m  map[divergeKey]struct{}
	// hits counts lookups that found a memoised divergence point —
	// threads fenced immediately instead of re-waiting the watchdog
	// timeout. Telemetry only.
	hits atomic.Int64
}

// NewDivergeHints returns an empty hint set, shareable by every
// machine exploring the same program.
func NewDivergeHints() *DivergeHints { return &DivergeHints{m: map[divergeKey]struct{}{}} }

func (h *DivergeHints) add(k divergeKey) {
	h.mu.Lock()
	h.m[k] = struct{}{}
	h.mu.Unlock()
}

func (h *DivergeHints) has(k divergeKey) bool {
	h.mu.Lock()
	_, ok := h.m[k]
	h.mu.Unlock()
	if ok {
		h.hits.Add(1)
	}
	return ok
}

// Hits reports how many lookups found a memoised divergence point —
// the schedules that skipped a watchdog timeout thanks to the hint
// set. Monotone; safe to read concurrently.
func (h *DivergeHints) Hits() int64 { return h.hits.Load() }

// MachineConfig carries the fault-containment knobs of a machine.
type MachineConfig struct {
	// StallTimeout arms the divergence watchdog: a coroutine silent
	// for this long during a Peek is fenced and the execution marked
	// diverged. 0 disables the watchdog.
	StallTimeout time.Duration
	// Hints shares discovered divergence points across machines. When
	// nil and StallTimeout > 0, the machine records hints privately.
	Hints *DivergeHints
}

// undoRec captures everything one Step mutates. Machine-level effects
// (store cell, mutex owner, statuses, counters) are plain old values;
// the only per-step copy is the stepping thread's coroutine state,
// which is cheap by design (pc + locals for progdsl interpreters).
type undoRec struct {
	t       event.ThreadID
	spawned event.ThreadID // thread started by this step, or NoOwner
	op      event.Op       // t's pending operation before the step
	cor     Coroutine      // t's coroutine state before Resume
	oldVal  int64          // overwritten store value (KindWrite) or ring slot (KindSend)
	oldOwn  event.ThreadID // previous mutex owner (KindLock/KindUnlock)
	oldObs  uint64         // t's observation hash before the step (watchdog armed)
	nfail   int32          // len(failures) before the step

	// Channel reversal state: the mutated channel (-1 when the step
	// touched none, e.g. a select that committed its default case) and
	// its scalar state before the step. A drained value needs no copy:
	// undo order is LIFO, so any later send that overwrote the slot is
	// undone first and restores it through oldVal.
	chObj    int32
	chHead   int32
	chCount  int32
	chClosed bool
}

// saveChan captures channel c's scalar pre-state into the record.
func (r *undoRec) saveChan(c int32, ch *chanState) {
	r.chObj = c
	r.chHead = ch.head
	r.chCount = ch.count
	r.chClosed = ch.closed
}

// NewMachine creates a machine at the initial state of src with the
// divergence watchdog disabled.
func NewMachine(src Source) *Machine {
	return NewMachineCfg(src, MachineConfig{})
}

// NewMachineCfg creates a machine at the initial state of src. The
// config must be supplied at construction: starting the initial
// threads already Peeks their first operations, which is where a
// diverging thread body would otherwise hang forever.
func NewMachineCfg(src Source, cfg MachineConfig) *Machine {
	n := src.NumThreads()
	m := &Machine{
		src:       src,
		store:     make([]int64, src.NumVars()),
		owner:     make([]event.ThreadID, src.NumMutexes()),
		status:    make([]Status, n),
		cor:       make([]Coroutine, n),
		steps:     make([]int32, n),
		pending:   make([]event.Op, n),
		havePend:  make([]bool, n),
		stall:     cfg.StallTimeout,
		divergedT: NoOwner,
	}
	if cs, ok := src.(ChannelSource); ok {
		m.chans = make([]chanState, cs.NumChannels())
		for c := range m.chans {
			capN := cs.ChannelCap(int32(c))
			m.chans[c] = chanState{capN: int32(capN), buf: make([]int64, max(capN, 1))}
		}
	}
	if m.stall > 0 {
		m.obsHash = make([]uint64, n)
		m.hints = cfg.Hints
		if m.hints == nil {
			m.hints = NewDivergeHints()
		}
	}
	for i := range m.owner {
		m.owner[i] = NoOwner
	}
	if is, ok := src.(InitStorer); ok {
		is.InitStore(m.store)
	}
	initial := src.InitiallyRunning()
	if len(initial) == 0 {
		initial = []event.ThreadID{0}
	}
	for _, t := range initial {
		m.startThread(t)
	}
	return m
}

func (m *Machine) startThread(t event.ThreadID) {
	if m.hints != nil && m.hints.has(divergeKey{t, 0, 0}) {
		// Known to diverge before its first announcement: fence it
		// without starting a doomed coroutine.
		m.status[t] = Running
		m.markDiverged(t)
		return
	}
	m.status[t] = Running
	m.cor[t] = m.src.Start(t)
	m.refresh(t)
}

// refresh re-peeks thread t's pending operation and settles Done state.
func (m *Machine) refresh(t event.ThreadID) {
	if m.status[t] != Running {
		m.havePend[t] = false
		return
	}
	var op event.Op
	var ok bool
	if tp, timed := m.cor[t].(TimedPeeker); timed && m.stall > 0 {
		op, ok = tp.PeekTimeout(m.stall)
	} else {
		op, ok = m.cor[t].Peek()
	}
	if !ok {
		m.status[t] = Done
		m.havePend[t] = false
		m.cor[t] = nil
		return
	}
	if op.Kind == event.KindDiverge {
		m.markDiverged(t)
		return
	}
	m.pending[t] = op
	m.havePend[t] = true
}

// markDiverged fences thread t: its coroutine is abandoned (never
// peeked, resumed or aborted again) and the execution is flagged so
// exploration stops extending it. The divergence point is memoised
// when the watchdog is armed.
func (m *Machine) markDiverged(t event.ThreadID) {
	m.status[t] = Diverged
	m.cor[t] = nil
	m.havePend[t] = false
	m.divergedT = t
	if m.hints != nil {
		var obs uint64
		if m.obsHash != nil {
			obs = m.obsHash[t]
		}
		m.hints.add(divergeKey{t, m.steps[t], obs})
	}
}

// HasDiverged reports whether some thread of this execution was fenced
// as diverging; such an execution must not be extended further.
func (m *Machine) HasDiverged() bool { return m.divergedT != NoOwner }

// DivergedThread returns the fenced thread, or NoOwner.
func (m *Machine) DivergedThread() event.ThreadID { return m.divergedT }

// Source returns the program this machine executes.
func (m *Machine) Source() Source { return m.src }

// NumThreads returns the thread-universe size.
func (m *Machine) NumThreads() int { return len(m.status) }

// Executed returns the number of visible operations executed so far.
func (m *Machine) Executed() int { return m.executed }

// Steps returns how many events thread t has executed.
func (m *Machine) Steps(t event.ThreadID) int32 { return m.steps[t] }

// Status returns thread t's lifecycle state.
func (m *Machine) Status(t event.ThreadID) Status { return m.status[t] }

// Load returns the current value of variable v.
func (m *Machine) Load(v int32) int64 { return m.store[v] }

// Owner returns the holder of mutex mu, or NoOwner.
func (m *Machine) Owner(mu int32) event.ThreadID { return m.owner[mu] }

// NumChannels returns the channel-universe size.
func (m *Machine) NumChannels() int { return len(m.chans) }

// ChanLen returns the number of values buffered in channel c.
func (m *Machine) ChanLen(c int32) int { return int(m.chans[c].count) }

// ChanClosed reports whether channel c has been closed.
func (m *Machine) ChanClosed(c int32) bool { return m.chans[c].closed }

// Failures returns the safety violations recorded so far.
func (m *Machine) Failures() []Failure { return m.failures }

// Pending returns thread t's announced next operation; ok is false if t
// is not running (not started or terminated).
func (m *Machine) Pending(t event.ThreadID) (event.Op, bool) {
	if !m.havePend[t] {
		return event.Op{}, false
	}
	return m.pending[t], true
}

// Enabled reports whether thread t can execute its pending operation in
// the current state.
func (m *Machine) Enabled(t event.ThreadID) bool {
	op, ok := m.Pending(t)
	if !ok {
		return false
	}
	switch op.Kind {
	case event.KindLock:
		return m.owner[op.Obj] == NoOwner
	case event.KindJoin:
		return m.status[op.Obj] == Done
	case event.KindSend:
		ch := &m.chans[op.Obj]
		if ch.closed {
			return true // fires the send-on-closed panic
		}
		if ch.capN > 0 {
			return ch.count < ch.capN
		}
		// Unbuffered: the rendezvous slot must be free and a receiver
		// must be committed to this channel. Only a dedicated pending
		// recv gates the send — a pending select with a case on this
		// channel may consume the value but does not enable the send,
		// since it could commit to a different case and strand the
		// deposit (documented v1 approximation).
		return ch.count == 0 && m.recvPending(t, op.Obj)
	case event.KindRecv:
		ch := &m.chans[op.Obj]
		return ch.count > 0 || ch.closed
	case event.KindClose:
		return true // close-of-closed fires a panic
	case event.KindSelect:
		if event.SelectHasDefault(op.Val) {
			return true
		}
		for c, mask := int32(0), event.SelectCases(op.Val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			if ch := &m.chans[c]; ch.count > 0 || ch.closed {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// recvPending reports whether some thread other than t has announced a
// dedicated receive on channel c.
func (m *Machine) recvPending(t event.ThreadID, c int32) bool {
	for q := range m.pending {
		if event.ThreadID(q) != t && m.havePend[q] &&
			m.pending[q].Kind == event.KindRecv && m.pending[q].Obj == c {
			return true
		}
	}
	return false
}

// EnabledThreads appends the IDs of all enabled threads to buf (in
// ascending order) and returns it.
func (m *Machine) EnabledThreads(buf []event.ThreadID) []event.ThreadID {
	buf = buf[:0]
	for t := range m.status {
		if m.Enabled(event.ThreadID(t)) {
			buf = append(buf, event.ThreadID(t))
		}
	}
	return buf
}

// Terminated reports whether every thread in the universe has either
// finished or was never started and is unreachable (no pending spawn).
// For simplicity a machine is terminal when no thread is enabled and no
// thread is blocked; Deadlocked distinguishes the stuck case.
func (m *Machine) Terminated() bool {
	for t := range m.status {
		if m.status[t] == Running {
			return false
		}
	}
	return true
}

// Deadlocked reports whether some thread is running (hence blocked,
// since deadlock is only meaningful when nothing is enabled) while no
// thread is enabled.
func (m *Machine) Deadlocked() bool {
	any := false
	for t := range m.status {
		tt := event.ThreadID(t)
		if m.status[t] == Running {
			any = true
			if m.Enabled(tt) {
				return false
			}
		}
	}
	return any
}

// Step executes thread t's pending operation and returns the resulting
// trace event. It panics if t is not enabled: exploration engines must
// only step enabled threads.
func (m *Machine) Step(t event.ThreadID) event.Event {
	if !m.Enabled(t) {
		panic(fmt.Sprintf("model: Step(%d) on non-enabled thread (status=%v)", t, m.status[t]))
	}
	op := m.pending[t]
	var rec *undoRec
	if m.undoEnabled {
		s, ok := m.cor[t].(Snapshottable)
		if !ok {
			panic("model: undo-logged Step on a non-snapshottable coroutine")
		}
		m.undo = append(m.undo, undoRec{
			t:       t,
			spawned: NoOwner,
			op:      op,
			cor:     s.Snapshot(),
			oldOwn:  NoOwner,
			nfail:   int32(len(m.failures)),
			chObj:   -1,
		})
		rec = &m.undo[len(m.undo)-1]
		switch op.Kind {
		case event.KindWrite:
			rec.oldVal = m.store[op.Obj]
		case event.KindLock, event.KindUnlock:
			rec.oldOwn = m.owner[op.Obj]
		case event.KindSend, event.KindRecv, event.KindClose:
			ch := &m.chans[op.Obj]
			rec.saveChan(op.Obj, ch)
			if op.Kind == event.KindSend {
				// The slot a deposit would overwrite; restoring it on
				// undo is what keeps a later-undone receive's drained
				// value alive (LIFO).
				rec.oldVal = ch.buf[(ch.head+ch.count)%int32(len(ch.buf))]
			}
			// A select's mutated channel is only known after the
			// commit; the execution branch fills the record then.
		}
	}
	var result int64
	killed := false
	selChosen := int32(-1)
	switch op.Kind {
	case event.KindRead:
		result = m.store[op.Obj]
	case event.KindWrite:
		m.store[op.Obj] = op.Val
	case event.KindLock:
		m.owner[op.Obj] = t
	case event.KindUnlock:
		if m.owner[op.Obj] != t {
			m.fail(t, FailLockMisuse, fmt.Sprintf("unlock of mutex m%d not held by unlocker (owner=%d)", op.Obj, m.owner[op.Obj]))
		}
		m.owner[op.Obj] = NoOwner
	case event.KindSpawn:
		c := event.ThreadID(op.Obj)
		if m.status[c] != NotStarted {
			m.fail(t, FailSpawnMisuse, fmt.Sprintf("spawn of already-started thread t%d", c))
		} else {
			m.startThread(c)
			if rec != nil {
				rec.spawned = c
			}
		}
	case event.KindJoin:
		// Enabledness already guarantees the target is Done.
	case event.KindAssert:
		if op.Val == 0 {
			m.fail(t, FailAssert, "assertion failure")
		}
	case event.KindPanic:
		m.fail(t, FailPanic, panicMessage(m.cor[t], op))
	case event.KindSend:
		ch := &m.chans[op.Obj]
		if ch.closed {
			m.fail(t, FailPanic, fmt.Sprintf("panic: send on closed channel c%d", op.Obj))
			killed = true
		} else {
			ch.buf[(ch.head+ch.count)%int32(len(ch.buf))] = op.Val
			ch.count++
		}
	case event.KindRecv:
		ch := &m.chans[op.Obj]
		if ch.count > 0 {
			val := ch.buf[ch.head]
			ch.head = (ch.head + 1) % int32(len(ch.buf))
			ch.count--
			result = event.PackRecvResult(val, true)
		} else {
			// Enabledness guarantees the channel is closed: yield the
			// zero value with ok=false, like Go.
			result = event.PackRecvResult(0, false)
		}
	case event.KindClose:
		ch := &m.chans[op.Obj]
		if ch.closed {
			m.fail(t, FailPanic, fmt.Sprintf("panic: close of closed channel c%d", op.Obj))
			killed = true
		} else {
			ch.closed = true
		}
	case event.KindSelect:
		// Deterministic commit: the lowest-numbered ready case wins;
		// the default fires only when no case is ready (enabledness
		// guarantees a default exists in that situation).
		for c, mask := int32(0), event.SelectCases(op.Val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			if ch := &m.chans[c]; ch.count > 0 || ch.closed {
				selChosen = c
				break
			}
		}
		if selChosen >= 0 {
			ch := &m.chans[selChosen]
			if rec != nil {
				rec.saveChan(selChosen, ch)
			}
			if ch.count > 0 {
				val := ch.buf[ch.head]
				ch.head = (ch.head + 1) % int32(len(ch.buf))
				ch.count--
				result = event.PackSelectResult(selChosen, val, true)
			} else {
				result = event.PackSelectResult(selChosen, 0, false)
			}
		} else {
			result = event.PackSelectResult(-1, 0, false)
		}
	}
	ev := event.Event{Thread: t, Index: m.steps[t], Op: op, Seen: result}
	if op.Kind == event.KindWrite {
		ev.Seen = op.Val
	}
	if op.Kind == event.KindSelect {
		// The committed event carries the chosen channel (-1 for the
		// default case); the full case set stays in Val.
		ev.Obj = selChosen
	}
	m.steps[t]++
	m.executed++
	m.havePend[t] = false
	if killed {
		// The operation panicked (send on closed, close of closed):
		// the thread dies at this event, like a Go goroutine whose
		// panic is the violation. Its coroutine never observes the
		// result, so it is aborted rather than resumed; undo restores
		// it from the record's snapshot.
		if m.hints != nil && rec != nil {
			rec.oldObs = m.obsHash[t]
		}
		m.killThread(t)
		return ev
	}
	if m.hints != nil {
		if rec != nil {
			rec.oldObs = m.obsHash[t]
		}
		m.obsHash[t] = mixObs(m.obsHash[t], result)
		if m.hints.has(divergeKey{t, m.steps[t], m.obsHash[t]}) {
			// A previous schedule proved this thread diverges here.
			// Grant an abort instead of resuming into the stuck loop,
			// then fence the thread without waiting out the timeout.
			// Prefer the timed aborter: a hostile body could swallow a
			// plain abort and block this call forever.
			if ta, ok := m.cor[t].(TimedAborter); ok && m.stall > 0 {
				ta.AbortTimeout(m.stall)
			} else if a, ok := m.cor[t].(Abortable); ok {
				a.Abort()
			}
			m.markDiverged(t)
			return ev
		}
	}
	m.cor[t].Resume(result)
	m.refresh(t)
	return ev
}

// panicMessage renders the deterministic failure message of a
// KindPanic operation: the coroutine's recovered value when it can
// report one, else the panic code the frontend encoded in Val.
func panicMessage(c Coroutine, op event.Op) string {
	if pm, ok := c.(PanicMessager); ok {
		if msg := pm.PanicMessage(); msg != "" {
			return "panic: " + msg
		}
	}
	return fmt.Sprintf("panic: code %d", op.Val)
}

// mixObs folds one observed Resume result into a thread's observation
// hash (a splitmix64 step, matching the repo's other mixers).
func mixObs(h uint64, result int64) uint64 {
	return splitmix64(h ^ (uint64(result) + 0x9e3779b97f4a7c15))
}

func (m *Machine) fail(t event.ThreadID, kind FailKind, msg string) {
	m.failures = append(m.failures, Failure{Kind: kind, Thread: t, Index: m.steps[t], Msg: msg})
}

// killThread terminates thread t at a machine-detected panic (send on
// closed, close of closed): the coroutine is released like an
// abandoned execution's and the thread is Done.
func (m *Machine) killThread(t event.ThreadID) {
	if ta, ok := m.cor[t].(TimedAborter); ok && m.stall > 0 {
		ta.AbortTimeout(m.stall)
	} else if a, ok := m.cor[t].(Abortable); ok {
		a.Abort()
	}
	m.status[t] = Done
	m.cor[t] = nil
	m.havePend[t] = false
}

// Abort releases external resources of all still-running coroutines.
// The machine must not be used afterwards. With the watchdog armed,
// coroutines that support timed aborts get the stall budget to comply
// and are abandoned otherwise, so one hostile thread cannot hang the
// teardown of an otherwise healthy execution.
func (m *Machine) Abort() {
	for t, c := range m.cor {
		if m.status[t] != Running {
			continue
		}
		if ta, ok := c.(TimedAborter); ok && m.stall > 0 {
			ta.AbortTimeout(m.stall)
		} else if a, ok := c.(Abortable); ok {
			a.Abort()
		}
	}
}

// Snapshot returns a deep copy of the machine, or ok=false if any live
// coroutine does not support snapshotting. The copy starts with an
// empty undo log and undo recording disabled.
func (m *Machine) Snapshot() (*Machine, bool) {
	cp := &Machine{
		src:       m.src,
		store:     append([]int64(nil), m.store...),
		owner:     append([]event.ThreadID(nil), m.owner...),
		chans:     append([]chanState(nil), m.chans...),
		status:    append([]Status(nil), m.status...),
		cor:       make([]Coroutine, len(m.cor)),
		steps:     append([]int32(nil), m.steps...),
		pending:   append([]event.Op(nil), m.pending...),
		havePend:  append([]bool(nil), m.havePend...),
		failures:  append([]Failure(nil), m.failures...),
		executed:  m.executed,
		stall:     m.stall,
		divergedT: m.divergedT,
		obsHash:   append([]uint64(nil), m.obsHash...),
		hints:     m.hints, // shared: hints are monotone program facts
	}
	for i := range cp.chans {
		cp.chans[i].buf = append([]int64(nil), m.chans[i].buf...)
	}
	for t, c := range m.cor {
		if c == nil {
			continue
		}
		s, ok := c.(Snapshottable)
		if !ok {
			return nil, false
		}
		cp.cor[t] = s.Snapshot()
	}
	return cp, true
}

// EnableUndo switches the machine to record an undo log: every Step
// appends one O(1) reversal record and UndoTo rewinds the machine in
// place, replacing deep per-step snapshots on the exploration hot
// path. It reports false (and records nothing) when a live coroutine
// does not support snapshotting — such programs must be explored by
// replay. Threads spawned later must be snapshottable too; Step panics
// otherwise, mirroring Snapshot-based exploration.
func (m *Machine) EnableUndo() bool {
	for t, c := range m.cor {
		if m.status[t] != Running || c == nil {
			continue
		}
		if _, ok := c.(Snapshottable); !ok {
			return false
		}
	}
	m.undoEnabled = true
	return true
}

// DisableUndo stops undo recording and drops the log: the machine can
// no longer rewind but keeps executing normally. The adaptive
// exploration backend uses it to settle on replay after measuring.
func (m *Machine) DisableUndo() {
	m.undoEnabled = false
	m.undo = nil
}

// UndoMark returns the current position in the undo log. With undo
// enabled every Step appends exactly one record, so the mark equals
// Executed().
func (m *Machine) UndoMark() int { return len(m.undo) }

// UndoTo rewinds the machine to the state it had at mark (a value
// previously returned by UndoMark), popping reversal records in LIFO
// order.
func (m *Machine) UndoTo(mark int) {
	if mark > len(m.undo) {
		panic(fmt.Sprintf("model: UndoTo(%d) beyond undo log length %d", mark, len(m.undo)))
	}
	for len(m.undo) > mark {
		r := &m.undo[len(m.undo)-1]
		switch r.op.Kind {
		case event.KindWrite:
			m.store[r.op.Obj] = r.oldVal
		case event.KindLock, event.KindUnlock:
			m.owner[r.op.Obj] = r.oldOwn
		case event.KindSend, event.KindRecv, event.KindClose, event.KindSelect:
			if r.chObj >= 0 {
				ch := &m.chans[r.chObj]
				if r.op.Kind == event.KindSend {
					ch.buf[(r.chHead+r.chCount)%int32(len(ch.buf))] = r.oldVal
				}
				ch.head, ch.count, ch.closed = r.chHead, r.chCount, r.chClosed
			}
		}
		if r.spawned != NoOwner {
			c := r.spawned
			m.status[c] = NotStarted
			m.cor[c] = nil
			m.havePend[c] = false
			if m.divergedT == c {
				m.divergedT = NoOwner
			}
		}
		t := r.t
		m.status[t] = Running
		m.cor[t] = r.cor
		m.pending[t] = r.op
		m.havePend[t] = true
		m.steps[t]--
		m.executed--
		if m.obsHash != nil {
			m.obsHash[t] = r.oldObs
		}
		if m.divergedT == t {
			m.divergedT = NoOwner
		}
		m.failures = m.failures[:r.nfail]
		r.cor = nil // release the snapshot reference
		m.undo = m.undo[:len(m.undo)-1]
	}
}

// sortedFailures returns the failures in a canonical order — by
// (thread, index, kind) — so that state identity does not depend on
// the schedule-dependent order in which concurrent failures were
// recorded.
func (m *Machine) sortedFailures() []Failure {
	if len(m.failures) < 2 {
		return m.failures
	}
	fs := append([]Failure(nil), m.failures...)
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		return a.Kind < b.Kind
	})
	return fs
}

// StateKey returns an exact, human-readable encoding of the machine
// state: shared store, mutex owners, thread statuses and failures
// (canonically ordered). Equal keys mean equal states. Used by
// equivalence tests and state counting.
func (m *Machine) StateKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "store=%v owners=%v status=%v", m.store, m.owner, m.status)
	if len(m.chans) > 0 {
		// Ring contents are rendered head-first: two rings holding the
		// same values in the same FIFO order are the same logical
		// state regardless of where the ring happens to start.
		vals := make([][]int64, len(m.chans))
		closed := make([]bool, len(m.chans))
		for i := range m.chans {
			ch := &m.chans[i]
			vals[i] = make([]int64, 0, ch.count)
			for k := int32(0); k < ch.count; k++ {
				vals[i] = append(vals[i], ch.buf[(ch.head+k)%int32(len(ch.buf))])
			}
			closed[i] = ch.closed
		}
		fmt.Fprintf(&b, " chans=%v closed=%v", vals, closed)
	}
	if len(m.failures) > 0 {
		fmt.Fprintf(&b, " failures=%v", m.sortedFailures())
	}
	return b.String()
}

// StateSig is a 128-bit binary digest of a machine state: two
// decorrelated 64-bit streams over the same canonical encoding that
// StateKey renders. Equal states always have equal signatures;
// distinct states collide with probability ~2⁻¹²⁸, which the
// exploration engines' distinct-state sets treat as never. It is the
// allocation-free hot-path replacement for string StateKeys.
type StateSig [2]uint64

// String renders the signature in hex.
func (s StateSig) String() string { return fmt.Sprintf("%016x-%016x", s[0], s[1]) }

// splitmix64 is the splitmix64 finalizer, used to decorrelate the
// second signature stream from the first.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// digestState feeds the canonical state encoding — shared store, mutex
// owners, thread statuses and canonically ordered failures — to mix,
// one word at a time. It is the single walker behind StateHash and
// StateSig, so the two digests can never drift apart on what "state"
// means.
func (m *Machine) digestState(mix func(uint64)) {
	for _, v := range m.store {
		mix(uint64(v))
	}
	for _, o := range m.owner {
		mix(uint64(uint32(o)))
	}
	for i := range m.chans {
		ch := &m.chans[i]
		mix(uint64(uint32(ch.count)))
		if ch.closed {
			mix(1)
		} else {
			mix(0)
		}
		// Head-normalized: FIFO order from the ring head, so equal
		// logical contents digest equally wherever the ring starts.
		for k := int32(0); k < ch.count; k++ {
			mix(uint64(ch.buf[(ch.head+k)%int32(len(ch.buf))]))
		}
	}
	for _, s := range m.status {
		mix(uint64(s))
	}
	mix(uint64(len(m.failures)))
	for _, f := range m.sortedFailures() {
		mix(uint64(uint32(f.Thread)))
		mix(uint64(uint32(f.Index)))
		mix(uint64(f.Kind))
		for i := 0; i < len(f.Msg); i++ {
			mix(uint64(f.Msg[i]))
		}
	}
}

// StateSig digests the current machine state into 128 bits without
// allocating.
func (m *Machine) StateSig() StateSig {
	const (
		offset1 = 14695981039346656037
		offset2 = 0x6c62272e07bb0142
		prime   = 1099511628211
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	m.digestState(func(x uint64) {
		y := splitmix64(x)
		for i := 0; i < 8; i++ {
			h1 = (h1 ^ (x & 0xff)) * prime
			h2 = (h2 ^ (y & 0xff)) * prime
			x >>= 8
			y >>= 8
		}
	})
	return StateSig{h1, h2}
}

// StateHash folds the canonical state encoding into a 64-bit FNV-1a
// digest without allocating the StateKey string.
func (m *Machine) StateHash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	m.digestState(func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime
			x >>= 8
		}
	})
	return h
}
