package model

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/event"
)

// scriptSource is a minimal hand-rolled Source for machine tests: each
// thread is a fixed list of operations.
type scriptSource struct {
	name    string
	vars    int
	mutexes int
	threads [][]event.Op
	initial []event.ThreadID
	init    map[int32]int64
}

func (s *scriptSource) Name() string    { return s.name }
func (s *scriptSource) NumThreads() int { return len(s.threads) }
func (s *scriptSource) NumVars() int    { return s.vars }
func (s *scriptSource) NumMutexes() int { return s.mutexes }
func (s *scriptSource) InitiallyRunning() []event.ThreadID {
	return s.initial
}
func (s *scriptSource) InitStore(store []int64) {
	for v, x := range s.init {
		store[v] = x
	}
}
func (s *scriptSource) Start(t event.ThreadID) Coroutine {
	return &scriptCoroutine{ops: s.threads[t]}
}

type scriptCoroutine struct {
	ops []event.Op
	pc  int
}

func (c *scriptCoroutine) Peek() (event.Op, bool) {
	if c.pc >= len(c.ops) {
		return event.Op{}, false
	}
	return c.ops[c.pc], true
}

func (c *scriptCoroutine) Resume(int64) { c.pc++ }

func (c *scriptCoroutine) Snapshot() Coroutine {
	cp := *c
	return &cp
}

func rd(v int32) event.Op          { return event.Op{Kind: event.KindRead, Obj: v} }
func wr(v int32, x int64) event.Op { return event.Op{Kind: event.KindWrite, Obj: v, Val: x} }
func lk(m int32) event.Op          { return event.Op{Kind: event.KindLock, Obj: m} }
func ul(m int32) event.Op          { return event.Op{Kind: event.KindUnlock, Obj: m} }
func sp(t event.ThreadID) event.Op { return event.Op{Kind: event.KindSpawn, Obj: int32(t)} }
func jn(t event.ThreadID) event.Op { return event.Op{Kind: event.KindJoin, Obj: int32(t)} }
func as(ok int64) event.Op         { return event.Op{Kind: event.KindAssert, Val: ok} }

func allThreads(n int) []event.ThreadID {
	out := make([]event.ThreadID, n)
	for i := range out {
		out[i] = event.ThreadID(i)
	}
	return out
}

func TestReadWriteSemantics(t *testing.T) {
	src := &scriptSource{
		name: "rw", vars: 2,
		threads: [][]event.Op{{wr(0, 5), rd(0), rd(1)}},
		initial: allThreads(1),
		init:    map[int32]int64{1: 9},
	}
	m := NewMachine(src)
	ev := m.Step(0)
	if ev.Kind != event.KindWrite || m.Load(0) != 5 {
		t.Fatalf("write failed: %v store=%d", ev, m.Load(0))
	}
	ev = m.Step(0)
	if ev.Seen != 5 {
		t.Fatalf("read saw %d, want 5", ev.Seen)
	}
	ev = m.Step(0)
	if ev.Seen != 9 {
		t.Fatalf("initialised variable read %d, want 9", ev.Seen)
	}
	if !m.Terminated() || m.Deadlocked() {
		t.Error("machine must terminate cleanly")
	}
}

func TestLockBlocksAndUnlockFrees(t *testing.T) {
	src := &scriptSource{
		name: "lock", mutexes: 1,
		threads: [][]event.Op{
			{lk(0), ul(0)},
			{lk(0), ul(0)},
		},
		initial: allThreads(2),
	}
	m := NewMachine(src)
	if !m.Enabled(0) || !m.Enabled(1) {
		t.Fatal("both locks enabled on a free mutex")
	}
	m.Step(0)
	if m.Owner(0) != 0 {
		t.Fatalf("owner = %d, want 0", m.Owner(0))
	}
	if m.Enabled(1) {
		t.Fatal("lock of a held mutex must be disabled")
	}
	if !m.Enabled(0) {
		t.Fatal("unlock by owner must be enabled")
	}
	m.Step(0)
	if m.Owner(0) != NoOwner {
		t.Fatal("unlock must free the mutex")
	}
	if !m.Enabled(1) {
		t.Fatal("blocked lock must re-enable after unlock")
	}
	m.Step(1)
	m.Step(1)
	if !m.Terminated() {
		t.Fatal("machine should be terminal")
	}
}

func TestUnlockByNonOwnerIsFailure(t *testing.T) {
	src := &scriptSource{
		name: "badunlock", mutexes: 1,
		threads: [][]event.Op{{ul(0)}},
		initial: allThreads(1),
	}
	m := NewMachine(src)
	m.Step(0)
	fs := m.Failures()
	if len(fs) != 1 || fs[0].Kind != FailLockMisuse {
		t.Fatalf("failures = %v, want one lock-misuse", fs)
	}
	if !strings.Contains(fs[0].String(), "unlock") {
		t.Errorf("failure message %q should mention unlock", fs[0].String())
	}
}

func TestSpawnJoinLifecycle(t *testing.T) {
	src := &scriptSource{
		name: "spawnjoin", vars: 1,
		threads: [][]event.Op{
			{sp(1), jn(1), rd(0)},
			{wr(0, 7)},
		},
		// Only thread 0 runs initially (default).
	}
	m := NewMachine(src)
	if m.Status(1) != NotStarted {
		t.Fatal("thread 1 must await spawn")
	}
	if !m.Enabled(0) {
		t.Fatal("spawn must be enabled")
	}
	m.Step(0) // spawn
	if m.Status(1) != Running {
		t.Fatal("spawn must start the child")
	}
	if m.Enabled(0) {
		t.Fatal("join of a live thread must block")
	}
	m.Step(1) // child writes and terminates
	if m.Status(1) != Done {
		t.Fatal("child must be done after its last op")
	}
	if !m.Enabled(0) {
		t.Fatal("join must unblock once the child is done")
	}
	m.Step(0) // join
	ev := m.Step(0)
	if ev.Seen != 7 {
		t.Fatalf("read after join saw %d, want 7", ev.Seen)
	}
}

func TestSpawnTwiceIsFailure(t *testing.T) {
	src := &scriptSource{
		name: "respawn",
		threads: [][]event.Op{
			{sp(1), sp(1)},
			{},
		},
	}
	m := NewMachine(src)
	m.Step(0)
	m.Step(0)
	fs := m.Failures()
	if len(fs) != 1 || fs[0].Kind != FailSpawnMisuse {
		t.Fatalf("failures = %v, want one spawn-misuse", fs)
	}
}

func TestAssertFailureRecorded(t *testing.T) {
	src := &scriptSource{
		name:    "assert",
		threads: [][]event.Op{{as(1), as(0)}},
		initial: allThreads(1),
	}
	m := NewMachine(src)
	m.Step(0)
	if len(m.Failures()) != 0 {
		t.Fatal("passing assert must not record a failure")
	}
	m.Step(0)
	fs := m.Failures()
	if len(fs) != 1 || fs[0].Kind != FailAssert {
		t.Fatalf("failures = %v, want one assert", fs)
	}
}

func TestDeadlockDetection(t *testing.T) {
	src := &scriptSource{
		name: "deadlock", mutexes: 2,
		threads: [][]event.Op{
			{lk(0), lk(1), ul(1), ul(0)},
			{lk(1), lk(0), ul(0), ul(1)},
		},
		initial: allThreads(2),
	}
	m := NewMachine(src)
	m.Step(0) // t0 locks m0
	m.Step(1) // t1 locks m1
	if m.Enabled(0) || m.Enabled(1) {
		t.Fatal("both threads must now be blocked")
	}
	if !m.Deadlocked() {
		t.Fatal("machine must report deadlock")
	}
	if m.Terminated() {
		t.Fatal("deadlocked machine is not terminated")
	}
}

func TestStepPanicsOnDisabledThread(t *testing.T) {
	src := &scriptSource{
		name: "panic", mutexes: 1,
		threads: [][]event.Op{
			{lk(0), ul(0)},
			{lk(0), ul(0)},
		},
		initial: allThreads(2),
	}
	m := NewMachine(src)
	m.Step(0)
	defer func() {
		if recover() == nil {
			t.Error("Step of a blocked thread must panic")
		}
	}()
	m.Step(1)
}

func TestEnabledThreadsOrdering(t *testing.T) {
	src := &scriptSource{
		name: "enabled", vars: 1,
		threads: [][]event.Op{
			{rd(0)}, {rd(0)}, {rd(0)},
		},
		initial: allThreads(3),
	}
	m := NewMachine(src)
	en := m.EnabledThreads(nil)
	if len(en) != 3 || en[0] != 0 || en[1] != 1 || en[2] != 2 {
		t.Fatalf("enabled = %v, want [0 1 2]", en)
	}
	m.Step(1)
	en = m.EnabledThreads(en)
	if len(en) != 2 || en[0] != 0 || en[1] != 2 {
		t.Fatalf("enabled = %v, want [0 2]", en)
	}
}

func TestSnapshotIndependence(t *testing.T) {
	src := &scriptSource{
		name: "snap", vars: 1, mutexes: 1,
		threads: [][]event.Op{
			{lk(0), wr(0, 1), ul(0)},
			{lk(0), wr(0, 2), ul(0)},
		},
		initial: allThreads(2),
	}
	m := NewMachine(src)
	m.Step(0) // t0 locks
	snap, ok := m.Snapshot()
	if !ok {
		t.Fatal("script coroutines are snapshotable")
	}
	// Diverge the original.
	m.Step(0)
	m.Step(0)
	if snap.Load(0) != 0 || snap.Owner(0) != 0 {
		t.Fatal("snapshot must be frozen at the snapshot point")
	}
	// The snapshot can take the other branch.
	snap.Step(0)
	snap.Step(0)
	snap.Step(1)
	snap.Step(1)
	snap.Step(1)
	if snap.Load(0) != 2 {
		t.Fatalf("snapshot run ended with store=%d, want 2", snap.Load(0))
	}
	if m.Load(0) != 1 {
		t.Fatalf("original run disturbed: store=%d, want 1", m.Load(0))
	}
}

// TestUndoRewindsEveryEffect drives a program exercising every effect
// class a Step can have — store writes, lock/unlock ownership, spawn,
// join, failures — and checks that UndoTo restores the exact machine
// state (per StateKey, StateSig, pending ops and counters) at every
// intermediate depth.
func TestUndoRewindsEveryEffect(t *testing.T) {
	src := &scriptSource{
		name: "undo", vars: 2, mutexes: 1,
		threads: [][]event.Op{
			{sp(1), wr(0, 7), lk(0), ul(0), jn(1), as(0)},
			{rd(0), wr(1, 3), ul(0)}, // final unlock is a lock-misuse failure
		},
		initial: []event.ThreadID{0},
	}
	m := NewMachine(src)
	if !m.EnableUndo() {
		t.Fatal("script coroutines are snapshotable; undo must enable")
	}

	type probe struct {
		key      string
		sig      StateSig
		executed int
	}
	var probes []probe
	snapshot := func() probe {
		return probe{key: m.StateKey(), sig: m.StateSig(), executed: m.Executed()}
	}
	probes = append(probes, snapshot())
	var choices []event.ThreadID
	for {
		en := m.EnabledThreads(nil)
		if len(en) == 0 {
			break
		}
		// Deterministic round-robin over enabled threads.
		tid := en[len(choices)%len(en)]
		m.Step(tid)
		choices = append(choices, tid)
		probes = append(probes, snapshot())
	}
	if len(m.Failures()) == 0 {
		t.Fatal("the script must end with failures (assert + lock misuse)")
	}
	final := snapshot()

	// Rewind to every depth, verify, then re-execute the identical
	// suffix and verify the terminal state is reproduced.
	for d := len(choices); d >= 0; d-- {
		m.UndoTo(d)
		if got := snapshot(); got != probes[d] {
			t.Fatalf("undo to depth %d: state %+v, want %+v", d, got, probes[d])
		}
	}
	for i, tid := range choices {
		m.Step(tid)
		if got := snapshot(); got != probes[i+1] {
			t.Fatalf("redo step %d: state %+v, want %+v", i, got, probes[i+1])
		}
	}
	if got := snapshot(); got != final {
		t.Fatalf("redo terminal state %+v, want %+v", got, final)
	}
}

// TestUndoMatchesSnapshot cross-validates the undo log against deep
// snapshots on random well-formed programs: after random interleaved
// runs of step/undo, the machine must agree with a snapshot taken at
// the rewind target.
func TestUndoMatchesSnapshot(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		src := genScript(r)
		m := NewMachine(src)
		if !m.EnableUndo() {
			t.Fatal("script coroutines must support undo")
		}
		type point struct {
			snap *Machine
			mark int
		}
		var points []point
		for i := 0; i < 40; i++ {
			en := m.EnabledThreads(nil)
			if len(en) == 0 {
				break
			}
			if r.Intn(4) == 0 {
				snap, ok := m.Snapshot()
				if !ok {
					t.Fatal("snapshot must succeed")
				}
				points = append(points, point{snap: snap, mark: m.UndoMark()})
			}
			if len(points) > 0 && r.Intn(6) == 0 {
				p := points[r.Intn(len(points))]
				m.UndoTo(p.mark)
				if m.StateKey() != p.snap.StateKey() || m.StateSig() != p.snap.StateSig() {
					t.Fatalf("seed %d: undo diverged from snapshot:\n undo=%s\n snap=%s",
						seed, m.StateKey(), p.snap.StateKey())
				}
				// Drop points above the rewind target.
				kept := points[:0]
				for _, q := range points {
					if q.mark <= p.mark {
						kept = append(kept, q)
					}
				}
				points = kept
				continue
			}
			m.Step(en[r.Intn(len(en))])
		}
	}
}

// TestEnableUndoRejectsOpaqueCoroutines: programs whose coroutines
// cannot snapshot must be refused, leaving the machine in plain mode.
func TestEnableUndoRejectsOpaqueCoroutines(t *testing.T) {
	src := &opaqueSource{scriptSource{
		name: "opaque", vars: 1,
		threads: [][]event.Op{{wr(0, 1)}},
		initial: allThreads(1),
	}}
	m := NewMachine(src)
	if m.EnableUndo() {
		t.Fatal("EnableUndo must reject non-snapshottable coroutines")
	}
	m.Step(0) // must not panic: undo was never enabled
	if m.UndoMark() != 0 {
		t.Fatal("no undo records must be written in plain mode")
	}
}

// opaqueSource wraps scriptSource with coroutines that hide Snapshot.
type opaqueSource struct{ scriptSource }

type opaqueCoroutine struct{ Coroutine }

func (s *opaqueSource) Start(t event.ThreadID) Coroutine {
	return &opaqueCoroutine{s.scriptSource.Start(t)}
}

// TestStateSigAgreesWithKey: equal keys imply equal signatures and
// (collision-negligibly) different keys imply different signatures.
func TestStateSigAgreesWithKey(t *testing.T) {
	mk := func(x int64, fail bool) *Machine {
		ops := []event.Op{wr(0, x)}
		if fail {
			ops = append(ops, as(0))
		}
		src := &scriptSource{
			name: "sig", vars: 1,
			threads: [][]event.Op{ops},
			initial: allThreads(1),
		}
		m := NewMachine(src)
		for {
			en := m.EnabledThreads(nil)
			if len(en) == 0 {
				return m
			}
			m.Step(en[0])
		}
	}
	a, b, c, d := mk(1, false), mk(1, false), mk(2, false), mk(1, true)
	if a.StateSig() != b.StateSig() {
		t.Error("identical states must have identical signatures")
	}
	if a.StateSig() == c.StateSig() {
		t.Error("different stores must produce different signatures")
	}
	if a.StateSig() == d.StateSig() {
		t.Error("failures must be part of the signature")
	}
	if a.StateSig().String() == "" {
		t.Error("signature must render")
	}
}

func TestStateKeyAndHashAgree(t *testing.T) {
	mk := func(x int64) *Machine {
		src := &scriptSource{
			name: "key", vars: 1,
			threads: [][]event.Op{{wr(0, x)}},
			initial: allThreads(1),
		}
		m := NewMachine(src)
		m.Step(0)
		return m
	}
	a, b, c := mk(1), mk(1), mk(2)
	if a.StateKey() != b.StateKey() || a.StateHash() != b.StateHash() {
		t.Error("identical states must agree on key and hash")
	}
	if a.StateKey() == c.StateKey() {
		t.Error("different states must produce different keys")
	}
	if a.StateHash() == c.StateHash() {
		t.Error("different states should produce different hashes")
	}
}

func TestStatusString(t *testing.T) {
	if NotStarted.String() != "notstarted" || Running.String() != "running" || Done.String() != "done" {
		t.Error("status strings wrong")
	}
	if !strings.Contains(Status(9).String(), "9") {
		t.Error("unknown status should render its number")
	}
}

func TestFailKindString(t *testing.T) {
	if FailAssert.String() != "assert" || FailLockMisuse.String() != "lock-misuse" || FailSpawnMisuse.String() != "spawn-misuse" {
		t.Error("failure kind strings wrong")
	}
}
