package model

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/event"
)

// genScript builds a random but well-formed script source: locks are
// properly paired per thread, spawns/joins are acyclic (only thread 0
// spawns), and all object indices are in range.
func genScript(r *rand.Rand) *scriptSource {
	nthreads := 1 + r.Intn(3)
	nvars := 1 + r.Intn(3)
	nmutexes := 1 + r.Intn(2)
	src := &scriptSource{
		name:    "quick",
		vars:    nvars,
		mutexes: nmutexes,
		initial: allThreads(nthreads),
	}
	for t := 0; t < nthreads; t++ {
		var ops []event.Op
		nops := r.Intn(5)
		for i := 0; i < nops; i++ {
			switch r.Intn(4) {
			case 0:
				ops = append(ops, rd(int32(r.Intn(nvars))))
			case 1:
				ops = append(ops, wr(int32(r.Intn(nvars)), int64(r.Intn(5))))
			case 2:
				m := int32(r.Intn(nmutexes))
				ops = append(ops, lk(m), ul(m))
			default:
				ops = append(ops, as(int64(r.Intn(2))))
			}
		}
		src.threads = append(src.threads, ops)
	}
	return src
}

// runRandomly drives the machine with a seeded random scheduler until
// no thread is enabled, returning the step count.
func runRandomly(m *Machine, r *rand.Rand) int {
	steps := 0
	for {
		en := m.EnabledThreads(nil)
		if len(en) == 0 {
			return steps
		}
		m.Step(en[r.Intn(len(en))])
		steps++
		if steps > 10000 {
			panic("model quick test: runaway execution")
		}
	}
}

// TestQuickMachineTerminates: with well-paired locks and no joins,
// every schedule terminates with all threads done and all mutexes free.
func TestQuickMachineTerminates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genScript(r)
		m := NewMachine(src)
		total := 0
		for _, ops := range src.threads {
			total += len(ops)
		}
		steps := runRandomly(m, r)
		if steps != total {
			return false
		}
		if !m.Terminated() || m.Deadlocked() {
			return false
		}
		for mu := 0; mu < src.mutexes; mu++ {
			if m.Owner(int32(mu)) != NoOwner {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnabledIsSteppable: whatever Enabled reports must be
// steppable without panicking, and stepping never enables a terminated
// thread.
func TestQuickEnabledIsSteppable(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		m := NewMachine(genScript(r))
		for {
			en := m.EnabledThreads(nil)
			if len(en) == 0 {
				break
			}
			for _, tid := range en {
				if m.Status(tid) == Done {
					return false
				}
			}
			m.Step(en[r.Intn(len(en))])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSnapshotEquivalence: a snapshot taken mid-execution and
// driven by the same choice sequence reaches the same state as the
// original.
func TestQuickSnapshotEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genScript(r)
		m := NewMachine(src)
		// Run a random prefix.
		for i := 0; i < 3; i++ {
			en := m.EnabledThreads(nil)
			if len(en) == 0 {
				break
			}
			m.Step(en[r.Intn(len(en))])
		}
		snap, ok := m.Snapshot()
		if !ok {
			return false
		}
		// Drive both with the same deterministic policy.
		for {
			en := m.EnabledThreads(nil)
			if len(en) == 0 {
				break
			}
			m.Step(en[0])
		}
		for {
			en := snap.EnabledThreads(nil)
			if len(en) == 0 {
				break
			}
			snap.Step(en[0])
		}
		return m.StateKey() == snap.StateKey() && m.StateHash() == snap.StateHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickStateKeyHashConsistency: equal keys imply equal hashes
// across random schedule pairs of the same program.
func TestQuickStateKeyHashConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genScript(r)
		r1 := rand.New(rand.NewSource(seed + 1))
		r2 := rand.New(rand.NewSource(seed + 2))
		m1 := NewMachine(src)
		runRandomly(m1, r1)
		m2 := NewMachine(src)
		runRandomly(m2, r2)
		if m1.StateKey() == m2.StateKey() {
			return m1.StateHash() == m2.StateHash()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
