package model

import (
	"testing"
	"time"

	"repro/internal/event"
)

// dv returns the divergence sentinel op.
func dv() event.Op { return event.Op{Kind: event.KindDiverge} }

// TestDivergeSentinelFencesThread: a coroutine announcing the
// KindDiverge sentinel is fenced on sight — no watchdog needed — and
// the rest of the universe keeps running.
func TestDivergeSentinelFencesThread(t *testing.T) {
	src := &scriptSource{
		name: "sentinel", vars: 1,
		threads: [][]event.Op{
			{rd(0), dv()},
			{wr(0, 1), wr(0, 2)},
		},
		initial: allThreads(2),
	}
	m := NewMachine(src)
	m.Step(0) // t0's read; its next announcement is the sentinel
	if !m.HasDiverged() || m.DivergedThread() != 0 {
		t.Fatalf("HasDiverged=%v DivergedThread=%d, want t0 fenced", m.HasDiverged(), m.DivergedThread())
	}
	if got := m.Status(0); got != Diverged {
		t.Fatalf("t0 status = %v, want Diverged", got)
	}
	// The fenced thread is out of the schedulable universe; t1 is not.
	if en := m.EnabledThreads(nil); len(en) != 1 || en[0] != 1 {
		t.Fatalf("enabled = %v, want [1]", en)
	}
	// A diverged thread is neither deadlock fodder nor a terminator.
	if m.Deadlocked() {
		t.Fatal("diverged machine misreported deadlock")
	}
	m.Step(1)
	m.Step(1)
	if !m.Terminated() {
		t.Fatal("machine with only a fenced thread left should be terminal")
	}
	if len(m.Failures()) != 0 {
		t.Fatalf("divergence recorded failures: %v", m.Failures())
	}
}

// stallSource starts threads whose PeekTimeout gives up at a scripted
// operation index, standing in for a goroutine body stuck in local
// computation. It counts Start calls and paid timeouts so tests can
// pin the hint memoisation.
type stallSource struct {
	scriptSource
	stallThread event.ThreadID
	stallAt     int // op index at which the thread goes silent
	starts      int
	timeouts    int
}

func (s *stallSource) Start(t event.ThreadID) Coroutine {
	s.starts++
	return &stallCoroutine{src: s, t: t, ops: s.threads[t]}
}

type stallCoroutine struct {
	src *stallSource
	t   event.ThreadID
	ops []event.Op
	pc  int
}

func (c *stallCoroutine) Peek() (event.Op, bool) {
	if c.t == c.src.stallThread && c.pc == c.src.stallAt {
		panic("stallCoroutine: plain Peek would hang; the machine must use PeekTimeout")
	}
	if c.pc >= len(c.ops) {
		return event.Op{}, false
	}
	return c.ops[c.pc], true
}

func (c *stallCoroutine) PeekTimeout(d time.Duration) (event.Op, bool) {
	if c.t == c.src.stallThread && c.pc == c.src.stallAt {
		c.src.timeouts++
		return event.Op{Kind: event.KindDiverge}, true
	}
	return c.Peek()
}

func (c *stallCoroutine) Resume(int64) { c.pc++ }

// TestDivergenceHintsShared: the first machine to discover a stuck
// point pays the timeout and memoises it; a second machine sharing
// the hint set fences the thread at start without even launching its
// coroutine.
func TestDivergenceHintsShared(t *testing.T) {
	src := &stallSource{
		scriptSource: scriptSource{
			name: "stall0", vars: 1,
			threads: [][]event.Op{
				{rd(0)}, // stalls before its first announcement
				{wr(0, 1)},
			},
			initial: allThreads(2),
		},
		stallThread: 0,
		stallAt:     0,
	}
	hints := NewDivergeHints()
	cfg := MachineConfig{StallTimeout: time.Millisecond, Hints: hints}

	m1 := NewMachineCfg(src, cfg)
	if !m1.HasDiverged() || m1.DivergedThread() != 0 {
		t.Fatalf("m1: HasDiverged=%v DivergedThread=%d, want t0", m1.HasDiverged(), m1.DivergedThread())
	}
	if src.timeouts != 1 {
		t.Fatalf("m1 paid %d timeouts, want 1", src.timeouts)
	}
	startsAfterM1 := src.starts

	m2 := NewMachineCfg(src, cfg)
	if !m2.HasDiverged() || m2.DivergedThread() != 0 {
		t.Fatalf("m2: HasDiverged=%v DivergedThread=%d, want t0", m2.HasDiverged(), m2.DivergedThread())
	}
	if src.timeouts != 1 {
		t.Fatalf("hint not honoured: %d timeouts paid, want 1", src.timeouts)
	}
	// m2 started only t1: the doomed t0 coroutine was never launched.
	if src.starts != startsAfterM1+1 {
		t.Fatalf("m2 started %d coroutines, want 1 (t1 only)", src.starts-startsAfterM1)
	}
	if st := m2.Status(0); st != Diverged {
		t.Fatalf("m2 t0 status = %v, want Diverged", st)
	}
	// The healthy thread still runs to completion in both machines.
	m2.Step(1)
	if !m2.Terminated() {
		t.Fatal("m2 should be terminal after t1's write")
	}
}

// TestDivergenceHintMidThread: a stall after the thread's first
// operation is memoised at (thread, step, observation) granularity;
// the second machine pays no timeout when it replays into it.
func TestDivergenceHintMidThread(t *testing.T) {
	src := &stallSource{
		scriptSource: scriptSource{
			name: "stall1", vars: 1,
			threads: [][]event.Op{
				{rd(0), wr(0, 7)}, // stalls after the read (before op 1)
				{wr(0, 1)},
			},
			initial: allThreads(2),
		},
		stallThread: 0,
		stallAt:     1,
	}
	hints := NewDivergeHints()
	cfg := MachineConfig{StallTimeout: time.Millisecond, Hints: hints}

	m1 := NewMachineCfg(src, cfg)
	m1.Step(0)
	if !m1.HasDiverged() {
		t.Fatal("m1: stepping into the stall should fence t0")
	}
	if src.timeouts != 1 {
		t.Fatalf("m1 paid %d timeouts, want 1", src.timeouts)
	}

	m2 := NewMachineCfg(src, cfg)
	m2.Step(0) // same observation history → same hint key
	if !m2.HasDiverged() || m2.DivergedThread() != 0 {
		t.Fatal("m2: hint should fence t0 at the same point")
	}
	if src.timeouts != 1 {
		t.Fatalf("hint not honoured mid-thread: %d timeouts paid, want 1", src.timeouts)
	}
}
