package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/goharness"
	"repro/internal/progdsl"
)

// ExampleCheck explores a racy counter exhaustively and reports the
// equivalence-class structure the paper studies.
func ExampleCheck() {
	b := progdsl.New("example-counter").AutoStart()
	x := b.Var("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Read(0, x)
		th.AddConst(0, 0, 1)
		th.Write(x, 0)
	}
	rep, err := core.Check(b.Build(), core.EngineDFS, explore.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("schedules=%d hbrs=%d lazy=%d states=%d violation=%v\n",
		rep.Schedules, rep.DistinctHBRs, rep.DistinctLazyHBRs, rep.DistinctStates,
		rep.Violation != nil)
	// Output:
	// schedules=6 hbrs=4 lazy=4 states=2 violation=true
}

// ExampleCheck_lazyReduction shows the paper's headline effect: under
// coarse-grained locking over disjoint data, the lazy relation
// collapses all lock orders into one equivalence class.
func ExampleCheck_lazyReduction() {
	p := goharness.New("example-coarse").AutoStart()
	mu := p.Mutex("mu")
	cells := []goharness.Var{p.Var("a"), p.Var("b"), p.Var("c")}
	for i := 0; i < 3; i++ {
		i := i
		p.Thread(func(g *goharness.G) {
			g.Lock(mu)
			g.Write(cells[i], g.Read(cells[i])+1)
			g.Unlock(mu)
		})
	}
	rep, _ := core.Check(p, core.EngineDPOR, explore.Options{})
	fmt.Printf("hbrs=%d lazy=%d states=%d\n",
		rep.DistinctHBRs, rep.DistinctLazyHBRs, rep.DistinctStates)
	lazy, _ := core.Check(p, core.EngineLazyDPOR, explore.Options{})
	fmt.Printf("lazy-dpor schedules=%d\n", lazy.Schedules)
	// Output:
	// hbrs=6 lazy=1 states=1
	// lazy-dpor schedules=1
}

// ExampleCheck_deadlock finds a deadlock and shows the replayable
// schedule.
func ExampleCheck_deadlock() {
	b := progdsl.New("example-deadlock").AutoStart()
	m0 := b.Mutex("m0")
	m1 := b.Mutex("m1")
	b.Thread().Lock(m0).Lock(m1).Unlock(m1).Unlock(m0)
	b.Thread().Lock(m1).Lock(m0).Unlock(m0).Unlock(m1)
	rep, _ := core.Check(b.Build(), core.EngineDPOR, explore.Options{})
	fmt.Printf("kind=%s steps=%d\n", rep.Violation.Kind, len(rep.Violation.Schedule))
	// Output:
	// kind=deadlock steps=2
}
