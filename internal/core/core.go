// Package core is the façade of the lazy happens-before reproduction:
// one-call checking of a program under any exploration engine, plus the
// registry of engines the evaluation sweeps over.
//
// The paper's contribution lives in internal/hb (the lazy
// happens-before relation and its fingerprints) and internal/explore
// (lazy HBR caching and the experimental lazy DPOR); this package ties
// them to programs (internal/progdsl, internal/goharness) and reports.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/model"
)

// EngineName identifies an exploration engine.
type EngineName string

// The engines available to Check and the evaluation harness.
const (
	EngineDFS          EngineName = "dfs"
	EngineDPOR         EngineName = "dpor"
	EngineDPORSleep    EngineName = "dpor+sleep"
	EngineHBRCache     EngineName = "hbr-caching"
	EngineLazyHBRCache EngineName = "lazy-hbr-caching"
	EngineLazyDPOR     EngineName = "lazy-dpor"
	EngineRandom       EngineName = "random"
)

// NewEngine instantiates an engine by name. Random walks use seed 1.
// Preemption-bounded engines are named "pb<k>-dfs", "pb<k>-hbr-caching"
// and "pb<k>-lazy-hbr-caching" for a bound k (e.g. "pb2-dfs").
func NewEngine(name EngineName) (explore.Engine, error) {
	if eng, ok := parsePreemptionBounded(string(name)); ok {
		return eng, nil
	}
	switch name {
	case EngineDFS:
		return explore.NewDFS(), nil
	case EngineDPOR:
		return explore.NewDPOR(false), nil
	case EngineDPORSleep:
		return explore.NewDPOR(true), nil
	case EngineHBRCache:
		return explore.NewHBRCache(), nil
	case EngineLazyHBRCache:
		return explore.NewLazyHBRCache(), nil
	case EngineLazyDPOR:
		return explore.NewLazyDPOR(), nil
	case EngineRandom:
		return explore.NewRandomWalk(1), nil
	default:
		return nil, fmt.Errorf("core: unknown engine %q (have %v)", name, EngineNames())
	}
}

// parsePreemptionBounded recognises the bounded-engine spellings:
// "pb<k>-dfs", "pb<k>-hbr-caching", "pb<k>-lazy-hbr-caching",
// "db<k>-dfs" (delay bounding) and the iterative-deepening loops
// "chess-pb<k>" / "chess-db<k>".
func parsePreemptionBounded(name string) (explore.Engine, bool) {
	if rest, ok := strings.CutPrefix(name, "chess-pb"); ok {
		if bound, err := strconv.Atoi(rest); err == nil && bound >= 0 {
			return explore.NewIterativePreemptionBounding(bound), true
		}
		return nil, false
	}
	if rest, ok := strings.CutPrefix(name, "chess-db"); ok {
		if bound, err := strconv.Atoi(rest); err == nil && bound >= 0 {
			return explore.NewIterativeDelayBounding(bound), true
		}
		return nil, false
	}
	kind := ""
	switch {
	case strings.HasPrefix(name, "pb"):
		kind = "pb"
	case strings.HasPrefix(name, "db"):
		kind = "db"
	default:
		return nil, false
	}
	rest := name[2:]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 {
		return nil, false
	}
	bound, err := strconv.Atoi(rest[:dash])
	if err != nil || bound < 0 {
		return nil, false
	}
	switch {
	case kind == "pb" && rest[dash+1:] == "dfs":
		return explore.NewPreemptionBounded(bound), true
	case kind == "pb" && rest[dash+1:] == "hbr-caching":
		return explore.NewPreemptionBoundedCache(bound, false), true
	case kind == "pb" && rest[dash+1:] == "lazy-hbr-caching":
		return explore.NewPreemptionBoundedCache(bound, true), true
	case kind == "db" && rest[dash+1:] == "dfs":
		return explore.NewDelayBounded(bound), true
	}
	return nil, false
}

// EngineNames lists the known engine names, sorted.
func EngineNames() []EngineName {
	names := []EngineName{
		EngineDFS, EngineDPOR, EngineDPORSleep, EngineHBRCache,
		EngineLazyHBRCache, EngineLazyDPOR, EngineRandom,
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Report is the user-facing outcome of a Check.
type Report struct {
	explore.Result
	// Violation is non-nil when a safety violation was found; it
	// contains a deterministic reproduction.
	Violation *Violation
}

// Violation describes the first safety violation an exploration found.
type Violation struct {
	Kind string
	// Schedule replays the violation: the thread chosen at each
	// step. Feed it to exec.Replay against the same program.
	Schedule []event.ThreadID
	// Outcome is the replayed execution, with full trace.
	Outcome exec.Outcome
}

// String summarises the violation.
func (v *Violation) String() string {
	return fmt.Sprintf("%s after %d steps", v.Kind, len(v.Schedule))
}

// Check explores src's schedule space with the named engine and
// returns a report. A zero Options explores exhaustively with default
// depth bounds.
func Check(src model.Source, engine EngineName, opt explore.Options) (Report, error) {
	eng, err := NewEngine(engine)
	if err != nil {
		return Report{}, err
	}
	res := eng.Explore(src, opt)
	rep := Report{Result: res}
	if err := res.CheckInvariant(); err != nil {
		// A broken inequality chain indicates a framework bug,
		// never a program-under-test bug.
		return rep, fmt.Errorf("core: %s on %s: %w", engine, src.Name(), err)
	}
	if res.FirstViolation != nil {
		out := exec.Replay(src, res.FirstViolation, exec.Options{MaxSteps: opt.MaxSteps, RecordClocks: true})
		rep.Violation = &Violation{
			Kind:     res.ViolationKind,
			Schedule: res.FirstViolation,
			Outcome:  out,
		}
	}
	return rep, nil
}
