// Package core is the façade of the lazy happens-before reproduction:
// one-call checking of a program under any exploration engine, plus the
// registry of engines the evaluation sweeps over.
//
// The paper's contribution lives in internal/hb (the lazy
// happens-before relation and its fingerprints) and internal/explore
// (lazy HBR caching and the experimental lazy DPOR); this package ties
// them to programs (internal/progdsl, internal/goharness) and reports.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engines"
	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/model"
)

// EngineName identifies an exploration engine.
type EngineName string

// The engines available to Check and the evaluation harness.
const (
	EngineDFS          EngineName = "dfs"
	EngineDPOR         EngineName = "dpor"
	EngineDPORSleep    EngineName = "dpor+sleep"
	EngineHBRCache     EngineName = "hbr-caching"
	EngineLazyHBRCache EngineName = "lazy-hbr-caching"
	EngineLazyDPOR     EngineName = "lazy-dpor"
	EngineRandom       EngineName = "random"
)

// NewEngine instantiates an engine by name through the shared engine
// registry (internal/engines): any canonical spec works ("dpor+sleep",
// "pb:2:lazy", "random:7"). The historical bounded-engine spellings
// "pb<k>-dfs", "pb<k>-hbr-caching", "pb<k>-lazy-hbr-caching",
// "db<k>-dfs", "chess-pb<k>" and "chess-db<k>" are still accepted and
// normalised to their registry specs.
func NewEngine(name EngineName) (explore.Engine, error) {
	spec := legacySpec(string(name))
	eng, err := engines.Build(spec)
	if err != nil {
		base, _, _ := strings.Cut(spec, ":")
		if _, known := engines.Lookup(base); !known {
			return nil, fmt.Errorf("core: unknown engine %q (have %v)", name, EngineNames())
		}
		// A registered engine with bad arguments: surface the
		// registry's precise diagnostic, not "unknown engine".
		return nil, fmt.Errorf("core: engine %q: %w", name, err)
	}
	return eng, nil
}

// legacySpec rewrites the historical bounded-engine spellings into
// canonical registry specs; anything else passes through unchanged.
func legacySpec(name string) string {
	if rest, ok := strings.CutPrefix(name, "chess-pb"); ok && isUint(rest) {
		return "chess-pb:" + rest
	}
	if rest, ok := strings.CutPrefix(name, "chess-db"); ok && isUint(rest) {
		return "chess-db:" + rest
	}
	kind := ""
	switch {
	case strings.HasPrefix(name, "pb"):
		kind = "pb"
	case strings.HasPrefix(name, "db"):
		kind = "db"
	default:
		return name
	}
	rest := name[2:]
	dash := strings.IndexByte(rest, '-')
	if dash <= 0 || !isUint(rest[:dash]) {
		return name
	}
	bound := rest[:dash]
	switch {
	case kind == "pb" && rest[dash+1:] == "dfs":
		return "pb:" + bound
	case kind == "pb" && rest[dash+1:] == "hbr-caching":
		return "pb:" + bound + ":hbr"
	case kind == "pb" && rest[dash+1:] == "lazy-hbr-caching":
		return "pb:" + bound + ":lazy"
	case kind == "db" && rest[dash+1:] == "dfs":
		return "db:" + bound
	}
	return name
}

func isUint(s string) bool {
	n, err := strconv.Atoi(s)
	return err == nil && n >= 0
}

// EngineNames lists the sequential engine names the registry knows in
// this binary, sorted. (Parallel searches register from the campaign
// package and are reachable through NewEngine wherever it is linked,
// but they are not part of core's sequential catalogue.)
func EngineNames() []EngineName {
	var names []EngineName
	for _, info := range engines.All() {
		if !info.Parallel {
			names = append(names, EngineName(info.Name))
		}
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}

// Report is the user-facing outcome of a Check.
type Report struct {
	explore.Result
	// Violation is non-nil when a safety violation was found; it
	// contains a deterministic reproduction.
	Violation *Violation
}

// Violation describes the first safety violation an exploration found.
type Violation struct {
	Kind string
	// Schedule replays the violation: the thread chosen at each
	// step. Feed it to exec.Replay against the same program.
	Schedule []event.ThreadID
	// Outcome is the replayed execution, with full trace.
	Outcome exec.Outcome
}

// String summarises the violation.
func (v *Violation) String() string {
	return fmt.Sprintf("%s after %d steps", v.Kind, len(v.Schedule))
}

// Check explores src's schedule space with the named engine and
// returns a report. A zero Options explores exhaustively with default
// depth bounds.
func Check(src model.Source, engine EngineName, opt explore.Options) (Report, error) {
	eng, err := NewEngine(engine)
	if err != nil {
		return Report{}, err
	}
	res := eng.Explore(src, opt)
	rep := Report{Result: res}
	if err := res.CheckInvariant(); err != nil {
		// A broken inequality chain indicates a framework bug,
		// never a program-under-test bug.
		return rep, fmt.Errorf("core: %s on %s: %w", engine, src.Name(), err)
	}
	if res.FirstViolation != nil {
		// StallTimeout carries over as insurance: a recorded witness
		// never schedules into a diverging branch, but a buggy or
		// nondeterministic program could still stall the replay.
		out := exec.Replay(src, res.FirstViolation, exec.Options{MaxSteps: opt.MaxSteps, RecordClocks: true, StallTimeout: opt.StallTimeout})
		rep.Violation = &Violation{
			Kind:     res.ViolationKind,
			Schedule: res.FirstViolation,
			Outcome:  out,
		}
	}
	return rep, nil
}
