package core

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/progdsl"
)

func racyCounter() *progdsl.Program {
	b := progdsl.New("racy-counter").AutoStart()
	x := b.Var("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	}
	return b.Build()
}

func TestNewEngineAllNames(t *testing.T) {
	for _, name := range EngineNames() {
		eng, err := NewEngine(name)
		if err != nil {
			t.Errorf("NewEngine(%q): %v", name, err)
			continue
		}
		if eng == nil {
			t.Errorf("NewEngine(%q) returned nil", name)
		}
	}
	if _, err := NewEngine("bogus"); err == nil {
		t.Error("unknown engine must error")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error should name the engine: %v", err)
	}
}

func TestEngineNamesSorted(t *testing.T) {
	names := EngineNames()
	// The registry-backed catalogue: every sequential engine family,
	// including the bounded ones that used to hide behind the
	// "pb<k>-dfs" spellings, plus the chaos fault-injection engine.
	if len(names) != 14 {
		t.Fatalf("engines = %v", names)
	}
	have := map[EngineName]bool{}
	for i, n := range names {
		have[n] = true
		if i > 0 && names[i-1] >= n {
			t.Errorf("names not sorted: %v", names)
		}
	}
	for _, want := range []EngineName{
		EngineDFS, EngineDPOR, EngineDPORSleep, EngineHBRCache,
		EngineLazyHBRCache, EngineLazyDPOR, EngineRandom,
	} {
		if !have[want] {
			t.Errorf("catalogue lost %q: %v", want, names)
		}
	}
}

func TestCheckFindsAndReplaysViolation(t *testing.T) {
	rep, err := Check(racyCounter(), EngineDPOR, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatal("racy counter must yield a violation")
	}
	if rep.Violation.Kind == "" || len(rep.Violation.Schedule) == 0 {
		t.Fatalf("violation incomplete: %+v", rep.Violation)
	}
	if len(rep.Violation.Outcome.Trace) != len(rep.Violation.Schedule) {
		t.Error("replayed trace must match the schedule length")
	}
	if !rep.Violation.Outcome.Failed() {
		t.Error("replaying the violation schedule must reproduce the failure")
	}
	if !strings.Contains(rep.Violation.String(), "after") {
		t.Errorf("violation String = %q", rep.Violation.String())
	}
	// The replay is independently reproducible.
	again := exec.Replay(racyCounter(), rep.Violation.Schedule, exec.Options{})
	if !again.Failed() {
		t.Error("independent replay must also fail")
	}
}

func TestCheckCleanProgram(t *testing.T) {
	b := progdsl.New("clean").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(y, 1)
	rep, err := Check(b.Build(), EngineDFS, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("clean program produced a violation: %v", rep.Violation)
	}
	if rep.DistinctStates != 1 || rep.HitLimit {
		t.Errorf("unexpected result: %v", rep.Result.String())
	}
}

func TestCheckUnknownEngine(t *testing.T) {
	if _, err := Check(racyCounter(), "nope", explore.Options{}); err == nil {
		t.Error("Check with unknown engine must error")
	}
}

func TestCheckAllEnginesOnOneProgram(t *testing.T) {
	for _, name := range EngineNames() {
		rep, err := Check(racyCounter(), name, explore.Options{ScheduleLimit: 2000})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if rep.Schedules == 0 {
			t.Errorf("%s made no progress", name)
		}
	}
}

func TestParsePreemptionBoundedEngines(t *testing.T) {
	for name, want := range map[EngineName]string{
		"pb0-dfs":              "pb0-dfs",
		"pb2-dfs":              "pb2-dfs",
		"pb3-hbr-caching":      "pb3-hbr-caching",
		"pb1-lazy-hbr-caching": "pb1-lazy-hbr-caching",
	} {
		eng, err := NewEngine(name)
		if err != nil {
			t.Errorf("NewEngine(%q): %v", name, err)
			continue
		}
		if eng.Name() != want {
			t.Errorf("NewEngine(%q).Name() = %q", name, eng.Name())
		}
	}
	for _, bad := range []EngineName{"pb-dfs", "pbx-dfs", "pb2-bogus", "pb-2-dfs"} {
		if _, err := NewEngine(bad); err == nil {
			t.Errorf("NewEngine(%q) should fail", bad)
		}
	}
}

func TestCheckWithPreemptionBoundedEngine(t *testing.T) {
	rep, err := Check(racyCounter(), "pb1-lazy-hbr-caching", explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistinctStates != 2 {
		t.Errorf("pb1 lazy caching found %d states, want 2", rep.DistinctStates)
	}
}
