package explore

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/event"
	"repro/internal/model"
)

// pctEngine implements PCT — probabilistic concurrency testing
// (Burckhardt et al., ASPLOS 2010). Each walk is a priority-based
// schedule: every thread draws a distinct initial priority, the
// scheduler always runs the highest-priority enabled thread, and d−1
// priority *change points* are planted at uniformly random step
// indices over an estimated event count. When execution reaches change
// point j, the thread that executed that step has its priority lowered
// to j+1 — below every initial priority — forcing the specific
// low-probability preemptions that depth-d bugs need. For a program
// with n threads and k events, each walk finds any depth-d bug with
// probability ≥ 1/(n·k^(d−1)); with d = 1 the engine degenerates to a
// pure priority random walk (no change points).
//
// Like the random-walk baseline, walk i is fully determined by
// mixWalkSeed(seed, i) and the program, so a run is byte-reproducible
// from its seed and the recorded engine name carries that seed (see
// Name). The schedule budget comes from Options.ScheduleLimit.
type pctEngine struct {
	seed  int64
	depth int
}

// NewPCT returns a PCT engine for bug depth d ≥ 1 (the number of
// ordered scheduling constraints the target bug needs; d−1 priority
// change points are planted per walk).
func NewPCT(seed int64, depth int) Engine {
	if depth < 1 {
		depth = 1
	}
	return &pctEngine{seed: seed, depth: depth}
}

// Name implements Engine. The seed is part of the name so a recorded
// Result (and any counterexample artifact captured from it) identifies
// the exact reproducible configuration that found the bug.
func (e *pctEngine) Name() string { return fmt.Sprintf("pct%d[s%d]", e.depth, e.seed) }

// pctChangePoints draws the d−1 priority change points of one walk:
// step indices distributed uniformly over [1, k], where change point j
// (0-based) carries priority value j+1. d ≤ 1 plants none — the
// degenerate priority-random-walk case.
func pctChangePoints(rng *rand.Rand, depth, k int) []int {
	if depth <= 1 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	pts := make([]int, depth-1)
	for i := range pts {
		pts[i] = 1 + rng.Intn(k)
	}
	return pts
}

// estimateEvents measures the event count of one deterministic
// schedule (always the lowest-numbered enabled thread), bounded by
// maxSteps — PCT's estimate of k, the number of scheduling points a
// walk will see. Any complete schedule is a fine estimate: lengths
// vary across schedules by at most the truncation bound, and the PCT
// guarantee only needs change points spread over the walk's lifetime.
// The probe runs on a throwaway machine so it perturbs no Result
// counter; it shares the cursor's machine config so a diverging
// program is fenced by the watchdog (and its hint reused) instead of
// hanging the estimate.
//
// The probe honours ctx: a cancelled exploration returns immediately —
// before the machine even starts, so a hostile program's wall-clock
// stall is never paid — and cancellation between steps cuts the probe
// short. It is also panic-safe: a program that panics outside a thread
// body (a hostile Source) yields whatever partial estimate was
// measured and lets the exploration proper surface the fault under its
// own containment. Partial estimates are clamped to ≥ 1, which only
// spreads change points less widely — PCT's guarantee degrades, never
// its soundness.
func estimateEvents(ctx context.Context, src model.Source, mcfg model.MachineConfig, maxSteps int) int {
	done := func() bool { return ctx != nil && ctx.Err() != nil }
	steps := 0
	if !done() {
		func() {
			defer func() { _ = recover() }()
			m := model.NewMachineCfg(src, mcfg)
			defer m.Abort()
			var buf []event.ThreadID
			for steps < maxSteps && !m.HasDiverged() && !done() {
				buf = m.EnabledThreads(buf)
				if len(buf) == 0 {
					break
				}
				m.Step(buf[0])
				steps++
			}
		}()
	}
	if steps < 1 {
		return 1
	}
	return steps
}

// Explore implements Engine.
func (e *pctEngine) Explore(src model.Source, opt Options) Result {
	walks := opt.ScheduleLimit
	if walks <= 0 {
		walks = 1000
	}
	// The walk count is the budget; disable the generic limit check so
	// the budget semantics match the random-walk baseline exactly.
	opt.ScheduleLimit = 0
	c := newWalkCursor(src, opt)
	k := estimateEvents(opt.Ctx, src, c.mcfg, opt.maxSteps())
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)
	base := c.replayPrefix(opt.Prefix, nil)

	prio := make([]int, src.NumThreads())
	for i := 0; i < walks; i++ {
		// Check cancellation before the walk, not only after it: a
		// hostile program can make a single walk pay a wall-clock
		// stall, which a cancelled exploration must not start.
		if opt.interrupted() {
			rec.res.Interrupted = true
			break
		}
		rng := rand.New(rand.NewSource(mixWalkSeed(e.seed, i)))
		// Initial priorities: a random permutation of d..d+n−1, every
		// one above every change-point value 1..d−1.
		for t, p := range rng.Perm(len(prio)) {
			prio[t] = e.depth + p
		}
		points := pctChangePoints(rng, e.depth, k)
		steps := 0
		for !c.truncated() {
			en := c.enabled()
			if len(en) == 0 {
				break
			}
			t := en[0]
			for _, q := range en[1:] {
				if prio[q] > prio[t] {
					t = q
				}
			}
			c.step(t)
			steps++
			// Change points may coincide on one step; each still
			// assigns its own distinct value, the last one winning,
			// so priorities stay pairwise distinct throughout.
			for j, at := range points {
				if at == steps {
					prio[t] = j + 1
				}
			}
		}
		rec.classifyWalk(c)
		if rec.schedule() {
			break
		}
		c.resetTo(base)
	}
	// Exhausting the walk budget is the normal exit and counts as
	// hitting the limit, exactly like the random-walk baseline —
	// unless a cancellation or first-bug stop cut the run short.
	if !rec.res.Interrupted && !(opt.StopAtFirstBug && rec.res.FirstViolation != nil) {
		rec.res.HitLimit = true
	}
	return rec.finish(c)
}
