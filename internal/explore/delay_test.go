package explore

import (
	"testing"

	"repro/internal/progdsl"
)

// TestDelayZeroIsSingleSchedule: with no delays the scheduler is fully
// deterministic, so exactly one schedule is explored.
func TestDelayZeroIsSingleSchedule(t *testing.T) {
	res := NewDelayBounded(0).Explore(curatedSharedCounter(), Options{})
	if res.Schedules != 1 {
		t.Errorf("db0 explored %d schedules, want 1", res.Schedules)
	}
}

// TestDelayGrowsWithBudget: terminals grow monotonically with the
// delay budget and converge to the exhaustive count.
func TestDelayGrowsWithBudget(t *testing.T) {
	src := curatedSharedCounter()
	dfs := NewDFS().Explore(src, Options{})
	prev := 0
	last := 0
	for bound := 0; bound <= 10; bound++ {
		res := NewDelayBounded(bound).Explore(src, Options{})
		if err := res.CheckInvariant(); err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		if res.Terminals < prev {
			t.Errorf("bound %d shrank terminals: %d < %d", bound, res.Terminals, prev)
		}
		prev = res.Terminals
		last = res.Terminals
	}
	if last != dfs.Schedules {
		t.Errorf("a large delay budget must recover DFS: %d vs %d", last, dfs.Schedules)
	}
}

// TestDelayStateSubset: delay-bounded states are always a subset of the
// exhaustive set.
func TestDelayStateSubset(t *testing.T) {
	for _, src := range soundnessZoo()[:8] {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			full := exploreStates(t, NewDFS(), src)
			all := map[string]bool{}
			for _, s := range full.States {
				all[s] = true
			}
			for _, bound := range []int{0, 1, 3} {
				res := NewDelayBounded(bound).Explore(src, Options{MaxSteps: 2000, RecordStates: true})
				for _, s := range res.States {
					if !all[s] {
						t.Fatalf("db%d found state outside the exhaustive set", bound)
					}
				}
			}
		})
	}
}

// TestDelayVsPreemptionOrdering: a delay is at least as restrictive as
// a preemption (every delay-d schedule uses at most d preemptions), so
// db(d) explores no more terminals than pb(d).
func TestDelayVsPreemptionOrdering(t *testing.T) {
	for _, src := range soundnessZoo()[:6] {
		for d := 0; d <= 3; d++ {
			db := NewDelayBounded(d).Explore(src, Options{MaxSteps: 2000})
			pb := NewPreemptionBounded(d).Explore(src, Options{MaxSteps: 2000})
			if db.Terminals > pb.Terminals {
				t.Errorf("%s: db%d terminals %d > pb%d terminals %d",
					src.Name(), d, db.Terminals, d, pb.Terminals)
			}
		}
	}
}

// TestIterativeDeepeningConverges: the CHESS loop finds the full state
// set of small programs and stops at its fixed point.
func TestIterativeDeepeningConverges(t *testing.T) {
	for _, mk := range []func(int) Engine{NewIterativePreemptionBounding, NewIterativeDelayBounding} {
		eng := mk(16)
		for _, src := range soundnessZoo()[:6] {
			full := exploreStates(t, NewDFS(), src)
			res := eng.Explore(src, Options{MaxSteps: 2000, RecordStates: true})
			if res.DistinctStates != full.DistinctStates {
				t.Errorf("%s on %s: %d states, exhaustive %d",
					eng.Name(), src.Name(), res.DistinctStates, full.DistinctStates)
			}
		}
	}
}

// TestIterativeDeepeningBudget: the loop respects the overall schedule
// budget across rounds.
func TestIterativeDeepeningBudget(t *testing.T) {
	res := NewIterativePreemptionBounding(8).Explore(curatedSharedCounter(), Options{ScheduleLimit: 7})
	if res.Schedules > 7+1 { // the final round may overshoot by its last schedule
		t.Errorf("budget overrun: %d schedules", res.Schedules)
	}
	if !res.HitLimit {
		t.Error("budget exhaustion must be reported")
	}
}

// TestIterativeFindsShallowBugFirst: the racy counter's bug appears in
// the first non-trivial round.
func TestIterativeFindsShallowBugFirst(t *testing.T) {
	b := progdsl.New("lost").AutoStart()
	x := b.Var("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	}
	res := NewIterativePreemptionBounding(4).Explore(b.Build(), Options{RecordStates: true})
	if res.DistinctStates != 2 {
		t.Errorf("states = %d, want 2", res.DistinctStates)
	}
	if res.Races == 0 {
		t.Error("the race must be reported")
	}
}

// TestBoundedEngineNames pins the new names.
func TestBoundedEngineNames(t *testing.T) {
	if NewDelayBounded(2).Name() != "db2-dfs" {
		t.Error("delay name wrong")
	}
	if NewIterativePreemptionBounding(3).Name() != "chess-pb3" {
		t.Error("chess-pb name wrong")
	}
	if NewIterativeDelayBounding(1).Name() != "chess-db1" {
		t.Error("chess-db name wrong")
	}
}
