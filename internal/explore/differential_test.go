package explore

import (
	"fmt"
	"testing"
)

// TestDifferentialEngines is the broad cross-checking harness: for a
// wide sweep of seeded random programs, run every engine and check the
// relations that must hold between them regardless of whether the
// space is exhausted:
//
//   - every engine's invariant chain holds;
//   - bounded/unsound-by-design engines (random walk, bounded DFS)
//     find state *subsets* of exhaustive DFS;
//   - complete engines agree with DFS exactly when DFS exhausts the
//     space;
//   - the caching engines' lazy-class coverage is ordered
//     (lazy ≥ regular) under any shared budget.
func TestDifferentialEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow in -short mode")
	}
	complete := []Engine{
		NewDPOR(false),
		NewDPOR(true),
		NewHBRCache(),
		NewLazyHBRCache(),
		NewLazyDPOR(),
	}
	bounded := []Engine{
		NewPreemptionBounded(1),
		NewDelayBounded(2),
		NewRandomWalk(7),
	}
	const probeLimit = 4000
	for seed := int64(500); seed < 560; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src := genRandomProgram(seed)
			dfs := NewDFS().Explore(src, Options{ScheduleLimit: probeLimit, MaxSteps: 2000, RecordStates: true})
			if err := dfs.CheckInvariant(); err != nil {
				t.Fatal(err)
			}
			exhausted := !dfs.HitLimit
			dfsStates := map[string]bool{}
			for _, s := range dfs.States {
				dfsStates[s] = true
			}

			for _, eng := range complete {
				res := eng.Explore(src, Options{ScheduleLimit: probeLimit, MaxSteps: 2000, RecordStates: true})
				if err := res.CheckInvariant(); err != nil {
					t.Errorf("%s: %v", eng.Name(), err)
				}
				if exhausted && !res.HitLimit {
					if res.DistinctStates != dfs.DistinctStates {
						t.Errorf("%s found %d states, dfs %d", eng.Name(), res.DistinctStates, dfs.DistinctStates)
					}
					for _, s := range res.States {
						if !dfsStates[s] {
							t.Errorf("%s found a state outside the exhaustive set: %s", eng.Name(), s)
						}
					}
				}
			}
			for _, eng := range bounded {
				res := eng.Explore(src, Options{ScheduleLimit: 500, MaxSteps: 2000, RecordStates: true})
				if err := res.CheckInvariant(); err != nil {
					t.Errorf("%s: %v", eng.Name(), err)
				}
				if exhausted {
					for _, s := range res.States {
						if !dfsStates[s] {
							t.Errorf("%s found a state outside the exhaustive set: %s", eng.Name(), s)
						}
					}
				}
			}

			for _, budget := range []int{20, 100} {
				reg := NewHBRCache().Explore(src, Options{ScheduleLimit: budget, MaxSteps: 2000})
				lazy := NewLazyHBRCache().Explore(src, Options{ScheduleLimit: budget, MaxSteps: 2000})
				if reg.DistinctLazyHBRs > lazy.DistinctLazyHBRs {
					t.Errorf("budget %d: regular caching covered more lazy classes (%d > %d)",
						budget, reg.DistinctLazyHBRs, lazy.DistinctLazyHBRs)
				}
			}
		})
	}
}

// TestDifferentialFrontends builds the same logical programs through
// progdsl and goharness and checks both frontends induce identical
// schedule spaces under DPOR.
func TestDifferentialFrontends(t *testing.T) {
	type variant struct {
		name    string
		threads int
		locked  bool
		shared  bool
	}
	variants := []variant{
		{"locked-shared-2", 2, true, true},
		{"racy-shared-2", 2, false, true},
		{"locked-private-3", 3, true, false},
		{"racy-private-2", 2, false, false},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			dsl := buildDSLVariant(v.name, v.threads, v.locked, v.shared)
			gh := buildHarnessVariant(v.name, v.threads, v.locked, v.shared)
			eng := NewDPOR(false)
			dres := eng.Explore(dsl, Options{MaxSteps: 2000})
			hres := eng.Explore(gh, Options{MaxSteps: 2000})
			if dres.Schedules != hres.Schedules ||
				dres.DistinctHBRs != hres.DistinctHBRs ||
				dres.DistinctLazyHBRs != hres.DistinctLazyHBRs ||
				dres.DistinctStates != hres.DistinctStates {
				t.Errorf("frontends disagree:\n dsl=%v\n  gh=%v", dres.String(), hres.String())
			}
		})
	}
}
