// Package explore implements the systematic schedule-exploration
// engines evaluated in the paper:
//
//   - exhaustive depth-first enumeration (the baseline search);
//   - dynamic partial-order reduction (DPOR, Flanagan & Godefroid,
//     POPL 2005), with optional sleep sets;
//   - HBR caching and lazy HBR caching (Musuvathi & Qadeer,
//     MSR-TR-2007-12; lazy variant per the paper's Section 2);
//   - an experimental "lazy DPOR" (the paper's Section 4 future work);
//   - seeded random walk, as a non-systematic baseline.
//
// Every engine reports the quantities the paper's evaluation plots:
// schedules executed, distinct terminal HBRs, distinct terminal lazy
// HBRs and distinct terminal states, which obey
//
//	#states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules.
package explore

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/hb"
	"repro/internal/model"
)

// MaxThreads bounds the thread universe of explored programs (thread
// sets are bitmask-encoded).
const MaxThreads = 64

// Options configures an exploration.
type Options struct {
	// ScheduleLimit stops exploration after this many executions
	// (terminal, pruned or truncated). 0 means unlimited. The
	// paper's evaluation uses 100,000.
	ScheduleLimit int
	// MaxSteps bounds each execution's event count
	// (exec.DefaultMaxSteps if 0); executions hitting the bound are
	// counted as truncated.
	MaxSteps int
	// DisableSnapshots forces replay-based backtracking even for
	// snapshotable programs (ablation knob; shorthand for
	// Backend == BackendReplay).
	DisableSnapshots bool
	// Backend selects the cursor's backtracking implementation; see
	// BackendKind. All backends are observationally identical — the
	// ablation tests assert byte-identical Result counters — so the
	// zero value (fastest supported) is right outside ablations.
	Backend BackendKind
	// SleepSets enables sleep sets in the DPOR engine.
	SleepSets bool
	// RecordStates retains the sorted set of distinct terminal state
	// keys in Result.States — a diagnostic for cross-engine
	// agreement checks; costly on large spaces.
	RecordStates bool

	// StallTimeout arms the divergence watchdog on frontends whose
	// thread bodies can get stuck in local computation (goharness): a
	// thread silent for this long during a scheduling handshake is
	// fenced, the execution is counted in Result.Divergences, and
	// exploration continues with the remaining schedules. Discovered
	// divergence points are memoised across the run's machines, so a
	// stuck loop costs one timeout total, not one per schedule.
	// 0 disables the watchdog (a diverging body hangs the search).
	StallTimeout time.Duration

	// Ctx, when non-nil, bounds the exploration by deadline or
	// cancellation: the engine stops at the next schedule boundary
	// with Result.Interrupted set.
	Ctx context.Context

	// Prefix pins the first len(Prefix) scheduling choices: the
	// engine replays them and explores only the subtree beneath.
	// Partitioning a schedule space into disjoint prefixes and
	// exploring each under a shared Dedup/Cache is how the campaign
	// package parallelises a single search.
	Prefix []event.ThreadID

	// Cache overrides the caching engines' fingerprint set. A
	// ShardedCache shared between engine instances lets concurrent
	// subtree searches prune against each other's coverage. Nil uses
	// an engine-local map.
	Cache Cache

	// Dedup overrides the recorder's distinctness sets. Sharing one
	// Dedup across concurrent subtree searches keeps the merged
	// #HBRs/#lazy HBRs/#states exact. Nil uses engine-local sets.
	Dedup *Dedup

	// SharedBudget is the parallel analogue of ScheduleLimit: a
	// token pool shared by concurrently running engine instances.
	// Nil means no shared budget.
	SharedBudget *Budget

	// TrackerSeed, when non-nil, is a private happens-before tracker
	// clone covering the first len(Prefix)-1 events of Prefix: the
	// prefix replay then advances only the machine (and the engines'
	// access logs) and installs the seed instead of re-deriving the
	// clocks from the root. The seed's universe must match the
	// explored program. Ignored unless len(Prefix) > 1.
	TrackerSeed *hb.Tracker

	// Steal, when non-nil, puts the DPOR engine in work-stealing
	// mode: backtrack points that escape the pinned prefix are handed
	// over instead of dropped, and pending local branches can be
	// donated to starving workers. See the Steal interface.
	Steal Steal

	// SleepSeed is the sleep set (a thread bitmask) of the state
	// reached after replaying Prefix — the root of the explored
	// subtree. Work-stealing coordinators compute it when shipping a
	// unit so DPOR with sleep sets prunes beneath a pinned prefix
	// exactly as the sequential engine would at that node. Zero (the
	// default) means no thread sleeps at the root. Ignored by engines
	// without sleep sets.
	SleepSeed uint64

	// StopAtFirstBug stops the search the moment a terminal execution
	// exhibits a safety violation: the violating execution is counted,
	// Result.FirstViolation/ViolationKind/FirstBugSchedule describe
	// the witness, and no further schedules run. This is the paper's
	// bug-finding metric — schedules executed until the first bug.
	StopAtFirstBug bool

	// OnViolation, when non-nil, is invoked (on the engine's
	// goroutine) for every terminal execution that exhibits a safety
	// violation, with a self-contained witness. Parallel searches call
	// it from multiple worker goroutines concurrently; callbacks must
	// synchronise internally.
	OnViolation func(Witness)

	// Counters, when non-nil, receives live lock-free telemetry:
	// the engine publishes counter deltas at every schedule boundary
	// with atomic adds, so one Counters shared across the workers of
	// a parallel search aggregates the totals. Pure telemetry — never
	// feeds back into exploration.
	Counters *Counters

	// Observer, when non-nil, delivers periodic Progress snapshots on
	// a schedule-count/wall-clock cadence (see Observer). Nil costs
	// one predicted branch per schedule and zero allocations.
	Observer *Observer

	// Flight, when non-nil, records the schedule prefix, outcome and
	// timing of recent executions into a bounded ring — the flight
	// recorder dumped when a campaign cell is quarantined.
	Flight *FlightRecorder
}

// Witness describes one violating terminal execution the moment it is
// seen: everything the repro subsystem needs to capture a portable,
// deterministically replayable counterexample.
type Witness struct {
	// Program names the program under test; Engine the engine that
	// found the witness.
	Program, Engine string
	// Choices is the complete schedule — the thread scheduled at every
	// step, including any pinned Options.Prefix. Replaying it through
	// an exec.Prefix chooser reproduces the violation.
	Choices []event.ThreadID
	// Kind names the violation class ("panic", "deadlock",
	// "assertion failure", "lock misuse", "data race").
	Kind string
	// Schedule is the 1-based index of the violating execution within
	// this engine instance's run: the engine executed Schedule-1
	// schedules before the bug.
	Schedule int
	// StateSig is the 128-bit digest of the violating terminal state.
	StateSig model.StateSig
}

// Validate reports structurally invalid option combinations. Engines
// do not call it on their hot paths; batch drivers (the campaign
// runner) validate cells up front so a bad grid fails loudly instead
// of producing a half-meaningful Result.
func (o Options) Validate() error {
	if o.ScheduleLimit < 0 {
		return fmt.Errorf("explore: negative ScheduleLimit %d", o.ScheduleLimit)
	}
	if o.MaxSteps < 0 {
		return fmt.Errorf("explore: negative MaxSteps %d", o.MaxSteps)
	}
	if o.Backend > BackendReplay {
		return fmt.Errorf("explore: unknown backend %q", o.Backend)
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("explore: negative StallTimeout %v", o.StallTimeout)
	}
	if ms := o.maxSteps(); len(o.Prefix) > ms {
		return fmt.Errorf("explore: prefix length %d exceeds step bound %d", len(o.Prefix), ms)
	}
	if o.TrackerSeed != nil && len(o.Prefix) > 1 && o.TrackerSeed.Events() != len(o.Prefix)-1 {
		return fmt.Errorf("explore: tracker seed covers %d events, prefix wants %d",
			o.TrackerSeed.Events(), len(o.Prefix)-1)
	}
	return o.validateObservability()
}

// BackendKind names a cursor backtracking implementation.
type BackendKind uint8

const (
	// BackendAuto picks the fastest supported backend adaptively:
	// replay for programs that cannot snapshot, the undo log
	// otherwise — except that the cursor measures the first few
	// schedules' backtrack shape (reset depth vs rewind distance) and
	// settles on replay when re-executing the short retained prefixes
	// is cheaper than paying per-step undo logging (see autoObserve).
	// Straight-line samplers skip the measurement and use replay
	// outright. All backends are observationally identical, so the
	// choice never changes a Result.
	BackendAuto BackendKind = iota
	// BackendUndo rewinds the (machine, tracker) pair through their
	// O(1)-per-step undo logs — no per-step copying at all. Requires
	// snapshottable coroutines; falls back to replay otherwise.
	BackendUndo
	// BackendSnapshot is the legacy backend: a deep machine snapshot
	// stored at every depth (ablation baseline). Requires
	// snapshottable coroutines; falls back to replay otherwise.
	BackendSnapshot
	// BackendReplay re-executes the retained prefix from the initial
	// state on every backtrack. Works for every program, including
	// goroutine-backed ones that cannot snapshot.
	BackendReplay
)

// String names the backend.
func (b BackendKind) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendUndo:
		return "undo"
	case BackendSnapshot:
		return "snapshot"
	case BackendReplay:
		return "replay"
	}
	return fmt.Sprintf("backend(%d)", uint8(b))
}

// backend resolves the requested backend, honouring the legacy
// DisableSnapshots spelling (which takes precedence over an explicit
// Backend). BackendAuto resolves to itself: the cursor owns the
// adaptive choice. Unknown kinds panic — Options.Validate rejects
// them, and an engine built from unvalidated options must fail loudly
// rather than silently explore under a different backend than the
// ablation asked for.
func (o Options) backend() BackendKind {
	if o.DisableSnapshots {
		return BackendReplay
	}
	switch o.Backend {
	case BackendAuto, BackendUndo, BackendSnapshot, BackendReplay:
		return o.Backend
	}
	panic(fmt.Sprintf("explore: unknown backend %q (Options.Validate rejects it)", o.Backend))
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return exec.DefaultMaxSteps
	}
	return o.MaxSteps
}

func (o Options) limitReached(schedules int) bool {
	return o.ScheduleLimit > 0 && schedules >= o.ScheduleLimit
}

// interrupted reports whether the exploration context is done.
func (o Options) interrupted() bool {
	return o.Ctx != nil && o.Ctx.Err() != nil
}

// Result summarises one exploration.
type Result struct {
	Program string
	Engine  string

	// Schedules counts executions performed: Terminals + Pruned +
	// Truncated + SleepBlocked + Divergences.
	Schedules int
	// Terminals counts executions that ran to a terminal state
	// (everything finished, or deadlock).
	Terminals int
	// Pruned counts executions cut short by HBR/lazy-HBR caching.
	Pruned int
	// Truncated counts executions that hit MaxSteps.
	Truncated int
	// SleepBlocked counts executions abandoned because every enabled
	// thread was in the sleep set (DPOR with sleep sets only).
	SleepBlocked int
	// Divergences counts executions ended by the divergence watchdog
	// (or a frontend's diverge announcement): a thread got stuck in
	// local computation, was fenced, and the schedule was abandoned.
	// Divergence is an execution outcome, not a safety violation — no
	// witness is recorded for it.
	Divergences int

	// DistinctHBRs counts distinct terminal regular happens-before
	// relations; DistinctLazyHBRs the lazy ones; DistinctStates the
	// distinct terminal machine states.
	DistinctHBRs     int
	DistinctLazyHBRs int
	DistinctStates   int

	// Deadlocks, AssertFailures, LockErrors, Races and Panics count
	// terminal executions exhibiting each violation class.
	Deadlocks      int
	AssertFailures int
	LockErrors     int
	Races          int
	// Panics counts terminal executions in which a thread body
	// panicked (the panic was captured as the thread's final visible
	// operation and recorded as a model.FailPanic failure).
	Panics int

	// HitLimit is set when ScheduleLimit (or a shared Budget)
	// stopped the search; an unset flag means the schedule space was
	// exhausted (the paper plots such benchmarks without
	// underlining).
	HitLimit bool
	// Interrupted is set when Options.Ctx expired or was cancelled
	// before the search finished.
	Interrupted bool

	// MaxDepth is the longest execution seen; Events counts every
	// event executed, including replays.
	MaxDepth int
	Events   int64

	// FirstViolation replays the first safety violation found
	// (thread choice per step); ViolationKind names it.
	// FirstBugSchedule is the 1-based index of the violating execution
	// — the schedules-to-first-bug metric of the paper's evaluation; 0
	// when no violation was seen. For deterministic merges of parallel
	// searches it is the index in the deterministic unit order, not
	// wall-clock discovery order.
	FirstViolation   []event.ThreadID
	ViolationKind    string
	FirstBugSchedule int `json:"first_bug_schedule,omitempty"`

	// States holds the sorted distinct terminal state keys when
	// Options.RecordStates was set.
	States []string

	// Steal describes the work-stealing execution that produced a
	// parallel DPOR result (worker and unit counts); nil for
	// sequential searches and the static-partition engines.
	Steal *StealStats `json:"steal,omitempty"`
}

// CheckInvariant validates the paper's Section 3 inequality chain.
func (r *Result) CheckInvariant() error {
	if !(r.DistinctStates <= r.DistinctLazyHBRs &&
		r.DistinctLazyHBRs <= r.DistinctHBRs &&
		r.DistinctHBRs <= r.Schedules) {
		return fmt.Errorf("invariant violated: states=%d lazy=%d hbr=%d schedules=%d",
			r.DistinctStates, r.DistinctLazyHBRs, r.DistinctHBRs, r.Schedules)
	}
	return nil
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: schedules=%d terminals=%d hbrs=%d lazy=%d states=%d deadlocks=%d asserts=%d races=%d hitLimit=%v",
		r.Program, r.Engine, r.Schedules, r.Terminals, r.DistinctHBRs, r.DistinctLazyHBRs,
		r.DistinctStates, r.Deadlocks, r.AssertFailures, r.Races, r.HitLimit)
}

// Engine is a schedule-exploration strategy.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Explore searches src's schedule space under opt.
	Explore(src model.Source, opt Options) Result
}

// tset is a bitmask-encoded set of thread IDs (< MaxThreads).
type tset uint64

func (s tset) has(t event.ThreadID) bool { return s&(1<<uint(t)) != 0 }
func (s *tset) add(t event.ThreadID)     { *s |= 1 << uint(t) }
func (s tset) empty() bool               { return s == 0 }

// first returns the lowest thread in s; s must be non-empty.
func (s tset) first() event.ThreadID {
	if s == 0 {
		panic("explore: first of empty tset")
	}
	return event.ThreadID(bits.TrailingZeros64(uint64(s)))
}

func checkThreadCount(src model.Source) {
	if src == nil {
		panic("explore: nil source")
	}
	if src.NumThreads() > MaxThreads {
		panic(fmt.Sprintf("explore: program %q has %d threads; limit is %d",
			src.Name(), src.NumThreads(), MaxThreads))
	}
}

// recorder accumulates a Result plus the distinctness sets behind its
// counters. With a shared Options.Dedup the per-recorder Distinct*
// counters report only this instance's fresh discoveries; the merged
// totals come from Dedup.Counts.
type recorder struct {
	res   Result
	opt   Options
	dedup dedupSink
	// cur is the engine's cursor, read by telemetry flushes (events,
	// backtracks, choices, resolved backend); tel is nil unless
	// Options armed Counters, an Observer or a FlightRecorder — that
	// nil check is the telemetry layer's entire disabled-path cost.
	cur *cursor
	tel *telemetry
}

func newRecorder(src model.Source, engine string, opt Options, c *cursor) *recorder {
	var dd dedupSink = opt.Dedup
	if opt.Dedup == nil {
		dd = newLocalDedup()
	}
	return &recorder{
		res:   Result{Program: src.Name(), Engine: engine},
		opt:   opt,
		dedup: dd,
		cur:   c,
		tel:   newTelemetry(opt, src.Name(), engine),
	}
}

// schedule counts one finished execution attempt and reports whether
// the schedule limit, shared budget or context has now stopped the
// search.
func (r *recorder) schedule() bool {
	r.res.Schedules++
	if r.tel != nil {
		r.tel.boundary(r, r.cur, false)
	}
	if r.opt.StopAtFirstBug && r.res.FirstViolation != nil {
		// The witness is captured; the bug-finding run is over. This
		// is a successful stop, not a budget stop: HitLimit stays
		// unset.
		return true
	}
	if r.opt.limitReached(r.res.Schedules) {
		r.res.HitLimit = true
		return true
	}
	if b := r.opt.SharedBudget; b != nil && !b.take() {
		r.res.HitLimit = true
		return true
	}
	if r.opt.interrupted() {
		r.res.Interrupted = true
		return true
	}
	return false
}

// terminal records a terminal execution's statistics from the cursor.
func (r *recorder) terminal(c *cursor) {
	r.res.Terminals++
	if d := len(c.trace); d > r.res.MaxDepth {
		r.res.MaxDepth = d
	}
	fresh := 0
	if r.dedup.AddHBR(c.tr.HBFingerprint()) {
		r.res.DistinctHBRs++
		fresh++
	}
	if r.dedup.AddLazy(c.tr.LazyFingerprint()) {
		r.res.DistinctLazyHBRs++
		fresh++
	}
	if r.dedup.AddState(c.m.StateSig()) {
		r.res.DistinctStates++
		fresh++
		if r.opt.RecordStates {
			// The string key is rendered only for fresh states and
			// only when the caller asked for the diagnostic set;
			// the hot path deduplicates on the binary digest alone.
			r.dedup.RecordStateKey(c.m.StateKey())
		}
	}
	if r.tel != nil {
		r.tel.dedupMisses += int64(fresh)
		r.tel.dedupHits += int64(3 - fresh)
	}

	deadlocked := c.m.Deadlocked()
	if deadlocked {
		r.res.Deadlocks++
	}
	failures := c.m.Failures()
	panics, asserts, lockErrs := 0, 0, 0
	for _, f := range failures {
		switch f.Kind {
		case model.FailPanic:
			panics++
		case model.FailAssert:
			asserts++
		default:
			lockErrs++
		}
	}
	if panics > 0 {
		r.res.Panics++
	}
	if asserts > 0 {
		r.res.AssertFailures++
	}
	if lockErrs > 0 {
		r.res.LockErrors++
	}
	raced := len(c.tr.Races()) > 0
	if raced {
		r.res.Races++
	}
	violation := model.ViolationKind(deadlocked, failures, raced)
	if violation != "" {
		if r.tel != nil {
			// Tag the flight entry this execution will get at the
			// coming schedule boundary.
			r.tel.violation = violation
		}
		if r.res.FirstViolation == nil {
			r.res.FirstViolation = append([]event.ThreadID(nil), c.choices...)
			r.res.ViolationKind = violation
			// terminal runs before schedule counts this execution, so
			// the violating execution's 1-based index is Schedules+1.
			r.res.FirstBugSchedule = r.res.Schedules + 1
		}
		if r.opt.OnViolation != nil {
			r.opt.OnViolation(Witness{
				Program:  r.res.Program,
				Engine:   r.res.Engine,
				Choices:  append([]event.ThreadID(nil), c.choices...),
				Kind:     violation,
				Schedule: r.res.Schedules + 1,
				StateSig: c.m.StateSig(),
			})
		}
	}
}

// cutShort records an execution the engine stopped extending before a
// terminal state: a divergence fenced a thread, or the step bound was
// hit. Every engine's "truncated" path must route through this helper
// so the two outcomes are never conflated.
func (r *recorder) cutShort(c *cursor) {
	if c.diverged() {
		r.res.Divergences++
	} else {
		r.res.Truncated++
	}
}

// classifyWalk records one finished sampler walk: divergence first
// (a diverged machine can also have nothing enabled, which must not
// count as terminal), then step-bound truncation, else terminal.
func (r *recorder) classifyWalk(c *cursor) {
	switch {
	case c.diverged():
		r.res.Divergences++
	case c.truncated() && !c.terminal():
		r.res.Truncated++
	default:
		r.terminal(c)
	}
}

func (r *recorder) finish(c *cursor) Result {
	r.res.Events = c.events
	if r.tel != nil {
		// Final flush and snapshot, so a consumer that only reads the
		// shared Counters after the search sees the exact totals.
		r.tel.boundary(r, c, true)
	}
	if r.opt.RecordStates && r.opt.Dedup == nil {
		// With a shared Dedup the caller assembles States from
		// Dedup.SortedStates after every worker has finished.
		r.res.States = r.dedup.SortedStates()
	}
	return r.res
}

// snapPair is one stored exploration snapshot (legacy backend).
type snapPair struct {
	m  *model.Machine
	tr *hb.Tracker
}

// cursor is the engines' shared execution walker: it maintains one live
// execution (machine + happens-before tracker + trace) and supports
// truncation to an earlier depth. Three backends implement the
// truncation (see BackendKind): the paired machine and tracker undo
// logs (the default — O(1) per backtracked step, nothing copied per
// forward step), legacy deep per-step snapshots, and deterministic
// replay for programs that cannot snapshot.
type cursor struct {
	src      model.Source
	maxSteps int
	backend  BackendKind // resolved: never BackendAuto
	// mcfg carries the fault-containment machine knobs (stall
	// watchdog, shared divergence hints) to every machine this cursor
	// builds — including the fresh machines of replay-backend resets,
	// which would otherwise re-wait every discovered divergence.
	mcfg model.MachineConfig

	m       *model.Machine
	tr      *hb.Tracker
	trace   []event.Event
	choices []event.ThreadID

	// trBase is the depth the live tracker's undo log starts at (undo
	// backend): the tracker undo mark for depth d is d−trBase. It is 0
	// unless a shipped tracker seed was installed, in which case the
	// seed's log starts at seedDepth. Engines never reset below their
	// pinned prefix, so marks never go negative.
	trBase int

	// snaps[d] is the deep snapshot at depth d (legacy backend);
	// depths covered by a shipped tracker seed hold zero placeholders,
	// which engines never reset to (they stay above their prefix) and
	// seed export treats as "unavailable".
	snaps []snapPair

	// seed is the shipped tracker installed once the replayed prefix
	// reaches seedDepth events; until then step skips all
	// happens-before work (see Options.TrackerSeed).
	seed      *hb.Tracker
	seedDepth int

	// BackendAuto measurement state: the cursor starts on the undo
	// backend and autoObserve accumulates per-reset cost estimates for
	// undo vs replay over the first few schedules, then locks in the
	// cheaper one (autoPending becomes false either way).
	autoPending            bool
	autoResets             int
	autoUndoC, autoReplayC int

	enabledBuf []event.ThreadID
	events     int64
	// backtracks counts resets to an earlier depth — one per branch
	// revisit, whatever the backend. A plain int (the cursor is
	// single-goroutine); telemetry flushes publish it as deltas.
	backtracks int64
}

func newCursor(src model.Source, opt Options) *cursor {
	checkThreadCount(src)
	mcfg := model.MachineConfig{StallTimeout: opt.StallTimeout}
	if mcfg.StallTimeout > 0 {
		mcfg.Hints = model.NewDivergeHints()
	}
	resolved := opt.backend()
	auto := false
	if resolved == BackendAuto {
		resolved = BackendUndo
		// Adapt only for a root search: work-steal workers and
		// prefix-partitioned subtree searches keep the undo backend so
		// their seed-export behaviour stays uniform across workers.
		auto = opt.Steal == nil && len(opt.Prefix) == 0
	}
	c := &cursor{
		src:      src,
		maxSteps: opt.maxSteps(),
		backend:  resolved,
		mcfg:     mcfg,
		m:        model.NewMachineCfg(src, mcfg),
		tr:       hb.NewTrackerChans(src.NumThreads(), src.NumVars(), src.NumMutexes(), model.NumChannels(src)),
	}
	switch c.backend {
	case BackendUndo:
		if c.m.EnableUndo() {
			c.tr.EnableUndo()
			c.autoPending = auto
		} else {
			c.backend = BackendReplay
		}
	case BackendSnapshot:
		if snap, ok := c.m.Snapshot(); ok {
			c.snaps = append(c.snaps, snapPair{m: snap, tr: c.tr.Clone()})
		} else {
			c.backend = BackendReplay
		}
	}
	if seed := opt.TrackerSeed; seed != nil && len(opt.Prefix) > 1 {
		nt, nv, nm := seed.Universe()
		if nt != src.NumThreads() || nv != src.NumVars() || nm != src.NumMutexes() || seed.Channels() != model.NumChannels(src) {
			panic(fmt.Sprintf("explore: tracker seed universe (%d,%d,%d,%d chans) does not match program %q (%d,%d,%d,%d chans)",
				nt, nv, nm, seed.Channels(), src.Name(), src.NumThreads(), src.NumVars(), src.NumMutexes(), model.NumChannels(src)))
		}
		if seed.Events() != len(opt.Prefix)-1 {
			panic(fmt.Sprintf("explore: tracker seed covers %d events, prefix wants %d",
				seed.Events(), len(opt.Prefix)-1))
		}
		c.seed = seed
		c.seedDepth = len(opt.Prefix) - 1
	}
	return c
}

// newWalkCursor builds the cursor for the sampling engines (random,
// pct, pos), whose walks never backtrack mid-execution: every walk
// runs straight to its end and resets to the replay base. With no
// pinned prefix that base is the initial state, so the replay backend
// is strictly cheaper there — a reset rebuilds a fresh machine and
// tracker instead of paying per-step undo logging (a coroutine
// snapshot per event) or per-depth deep snapshots on the way forward —
// and the requested backend is overridden. The backends are
// observationally identical, so Results are unchanged (pinned by
// TestBackendAblationExact). A pinned prefix keeps the requested
// backend: rewinding to the base then beats re-executing the prefix on
// every walk.
func newWalkCursor(src model.Source, opt Options) *cursor {
	if len(opt.Prefix) == 0 {
		opt.DisableSnapshots = false
		opt.Backend = BackendReplay
	}
	return newCursor(src, opt)
}

func (c *cursor) depth() int { return len(c.trace) }

// enabled returns the currently enabled threads; the slice is reused by
// subsequent calls.
func (c *cursor) enabled() []event.ThreadID {
	c.enabledBuf = c.m.EnabledThreads(c.enabledBuf)
	return c.enabledBuf
}

func (c *cursor) terminal() bool { return len(c.enabled()) == 0 }

// truncated reports whether this execution must stop being extended:
// the step bound was hit, or a thread diverged (the fenced thread can
// never be stepped and the schedule is abandoned). Engines classify
// the two via recorder.cutShort/classifyWalk.
func (c *cursor) truncated() bool { return len(c.trace) >= c.maxSteps || c.m.HasDiverged() }

// diverged reports whether the live execution was fenced by the
// divergence watchdog (or a frontend diverge announcement).
func (c *cursor) diverged() bool { return c.m.HasDiverged() }

// step executes thread t and folds the event into the trackers.
func (c *cursor) step(t event.ThreadID) event.Event {
	if len(c.trace) < c.seedDepth {
		// The shipped tracker seed covers this prefix event: advance
		// the machine only, keep the snapshot backend's depth-indexed
		// slice aligned with placeholders, and install the seed when
		// the covered prefix is fully replayed.
		ev := c.m.Step(t)
		c.trace = append(c.trace, ev)
		c.choices = append(c.choices, t)
		c.events++
		if c.backend == BackendSnapshot {
			c.snaps = append(c.snaps, snapPair{})
		}
		if len(c.trace) == c.seedDepth {
			c.tr = c.seed
			c.seed = nil
			if c.backend == BackendUndo {
				// The seed's undo log starts here: events below
				// seedDepth are pinned prefix and never rewound.
				c.tr.EnableUndo()
				c.trBase = c.seedDepth
			}
		}
		return ev
	}
	ev := c.m.Step(t)
	c.tr.ApplyFast(ev)
	c.trace = append(c.trace, ev)
	c.choices = append(c.choices, t)
	c.events++
	if c.backend == BackendSnapshot {
		snap, ok := c.m.Snapshot()
		if !ok {
			panic("explore: snapshot support vanished mid-exploration")
		}
		c.snaps = append(c.snaps, snapPair{m: snap, tr: c.tr.Clone()})
	}
	// The undo backend needs no per-step work here: the machine and
	// tracker undo logs each recorded this step's reversal already.
	return ev
}

// replayPrefix executes the pinned scheduling choices of a subtree
// search (Options.Prefix) and returns the resulting base depth. The
// engine must never resetTo below it. step overrides how each choice
// executes (the DPOR engine routes through its access-log indexer);
// nil uses c.step. Prefixes are produced by partitioning a live
// schedule tree, so a choice that is not enabled indicates a
// coordinator bug.
func (c *cursor) replayPrefix(prefix []event.ThreadID, step func(event.ThreadID)) int {
	if step == nil {
		step = func(t event.ThreadID) { c.step(t) }
	}
	for _, t := range prefix {
		ok := false
		for _, e := range c.enabled() {
			if e == t {
				ok = true
				break
			}
		}
		if !ok {
			panic(fmt.Sprintf("explore: prefix choice t%d not enabled at depth %d", t, c.depth()))
		}
		step(t)
	}
	return len(prefix)
}

// autoProbeResets is how many resets BackendAuto measures before
// settling; autoRebuildCost is replay's estimated fixed per-reset cost
// (machine construction, coroutine restarts) in step units. Both are
// heuristics calibrated against BenchmarkSnapshotVsReplay: replay wins
// when resets target shallow depths (little to re-execute) while undo
// pays logging on every forward step; undo wins when resets rewind a
// few steps off a deep retained prefix (the stack engines).
const (
	autoProbeResets = 8
	autoRebuildCost = 8
)

// autoObserve accumulates the estimated per-reset cost of the two
// candidate backends while BackendAuto is still measuring. Undo pays
// for rewinding len(trace)−d records plus undo-logging roughly that
// many re-executed forward steps; replay pays for re-executing the d
// retained steps plus a machine rebuild. After autoProbeResets the
// cheaper backend is locked in for the rest of the run; switching to
// replay drops both undo logs. The backends are observationally
// identical, so the choice never shows in a Result.
func (c *cursor) autoObserve(d int) {
	c.autoResets++
	c.autoUndoC += 2 * (len(c.trace) - d)
	c.autoReplayC += d + autoRebuildCost
	if c.autoResets < autoProbeResets {
		return
	}
	c.autoPending = false
	if c.autoReplayC < c.autoUndoC {
		c.backend = BackendReplay
		c.m.DisableUndo()
		c.tr.DisableUndo()
	}
}

// resetTo truncates the execution back to depth d (0 ≤ d ≤ depth()).
func (c *cursor) resetTo(d int) {
	if d > len(c.trace) {
		panic(fmt.Sprintf("explore: resetTo(%d) beyond depth %d", d, len(c.trace)))
	}
	if d == len(c.trace) {
		return
	}
	c.backtracks++
	if c.autoPending {
		c.autoObserve(d)
	}
	switch c.backend {
	case BackendUndo:
		// Both undo logs rewind in place: O(1) per popped step, no
		// copies. The tracker log starts at trBase (0, or the seed
		// install depth).
		c.m.UndoTo(d)
		c.tr.UndoTo(d - c.trBase)
	case BackendSnapshot:
		base := c.snaps[d]
		restored, ok := base.m.Snapshot()
		if !ok {
			panic("explore: snapshot restore failed")
		}
		c.m = restored
		c.tr = base.tr.Clone()
		c.snaps = c.snaps[:d+1]
	default:
		c.m.Abort()
		c.m = model.NewMachineCfg(c.src, c.mcfg)
		c.tr = hb.NewTrackerChans(c.src.NumThreads(), c.src.NumVars(), c.src.NumMutexes(), model.NumChannels(c.src))
		for i := 0; i < d; i++ {
			ev := c.m.Step(c.choices[i])
			c.tr.ApplyFast(ev)
			c.events++
		}
	}
	c.trace = c.trace[:d]
	c.choices = c.choices[:d]
}

// close releases any external resources of the live execution; the
// cursor must not be used afterwards. Only the replay backend can hold
// abortable (goroutine-backed) coroutines: the other backends require
// snapshottable programs, which are self-contained by construction.
func (c *cursor) close() {
	if c.backend == BackendReplay {
		c.m.Abort()
	}
}

// slicePool recycles the per-node slice copies the stack-based engines
// retain at every depth (enabled sets, branch costs), turning a steady
// churn of small allocations into reuse of a few buffers. Pools are
// engine-local, so no synchronisation is needed.
type slicePool[T any] struct{ free [][]T }

// copyOf returns a copy of src backed by a recycled buffer when one is
// available.
func (p *slicePool[T]) copyOf(src []T) []T {
	return append(p.get(), src...)
}

// get returns an empty recycled buffer, or nil when the pool is empty.
func (p *slicePool[T]) get() []T {
	var buf []T
	if n := len(p.free); n > 0 {
		buf = p.free[n-1][:0]
		p.free = p.free[:n-1]
	}
	return buf
}

// put returns a buffer to the pool.
func (p *slicePool[T]) put(s []T) {
	if cap(s) > 0 {
		p.free = append(p.free, s[:0])
	}
}

// tidPool is the pool of enabled-thread copies.
type tidPool = slicePool[event.ThreadID]

// nodePool recycles the per-depth node structs of the stack engines.
// Callers re-initialise a recycled node before use.
type nodePool[T any] struct{ free []*T }

func (p *nodePool[T]) get() *T {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	return new(T)
}

func (p *nodePool[T]) put(t *T) { p.free = append(p.free, t) }

// grown returns s resized to length n, reallocating only when the
// (possibly recycled) capacity is too small. Contents are unspecified;
// callers overwrite or guard every entry they read.
func grown[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
