package explore

import (
	"testing"

	"repro/internal/bench"
)

// Allocation-regression bounds, in heap allocations per explored
// event. The O(1)-backtracking paths sit near 2 allocs/event (arena
// growth, trace append doubling, per-walk machine rebuilds amortized
// over the walk); any per-step tracker snapshot work — the
// tr.Clone() the undo backend used to pay on every retained step —
// is ≥3 slab copies per event and blows straight past these bounds
// (the legacy deep-snapshot backend measures ~20 allocs/event).
const (
	samplerAllocsPerEvent = 3.0
	stackAllocsPerEvent   = 4.0
)

// allocsPerEvent measures eng's steady-state allocations per explored
// event on bm at the given options.
func allocsPerEvent(t *testing.T, eng Engine, opt Options, name string) float64 {
	t.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("missing benchmark %s", name)
	}
	res := eng.Explore(bm.Program, opt)
	if res.Events == 0 {
		t.Fatalf("%s explored no events on %s", eng.Name(), name)
	}
	allocs := testing.AllocsPerRun(3, func() {
		eng.Explore(bm.Program, opt)
	})
	return allocs / float64(res.Events)
}

// TestSamplerAllocsStraightLine pins the sampler fast path: random,
// pct and pos walks never backtrack mid-execution, so their cursors
// must not retain per-step machine or tracker snapshots on the way
// forward (newWalkCursor forces the replay backend when no prefix is
// pinned). A regression that reintroduces per-step snapshot work —
// undo logging a coroutine checkpoint per event, or a tr.Clone() per
// retained step — multiplies allocations per event several-fold and
// fails the bound.
func TestSamplerAllocsStraightLine(t *testing.T) {
	opt := Options{ScheduleLimit: 50, MaxSteps: 2000}
	for _, eng := range []Engine{NewRandomWalk(1), NewPCT(1, 3), NewPOS(1)} {
		got := allocsPerEvent(t, eng, opt, "filesystem-2")
		if got > samplerAllocsPerEvent {
			t.Errorf("%s: %.2f allocs/event, want ≤ %.1f (per-step snapshot work on a straight-line walk?)",
				eng.Name(), got, samplerAllocsPerEvent)
		}
	}
}

// TestBacktrackAllocsO1 pins the tentpole: with the undo backend the
// whole (machine, tracker) pair backtracks in O(1), so the stack
// engines' allocations per explored event stay constant — no
// tr.Clone() per retained step. The legacy deep-snapshot backend
// pays ~10× this bound per event, so the old per-step-Clone code
// path cannot silently return.
func TestBacktrackAllocsO1(t *testing.T) {
	opt := Options{ScheduleLimit: 500, MaxSteps: 2000, Backend: BackendUndo}
	for _, eng := range []Engine{NewDFS(), NewDPOR(false), NewDPOR(true)} {
		got := allocsPerEvent(t, eng, opt, "coarse-tail-3x3")
		if got > stackAllocsPerEvent {
			t.Errorf("%s/undo: %.2f allocs/event, want ≤ %.1f (per-step tracker Clone is back?)",
				eng.Name(), got, stackAllocsPerEvent)
		}
	}
}
