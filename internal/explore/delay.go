package explore

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/model"
)

// delayEngine implements delay bounding (Emmi, Qadeer & Rakamarić's
// scheduling discipline, popularised by CHESS-family testers): the
// scheduler is deterministic — always the lowest-numbered enabled
// thread — except for at most `bound` "delays", each of which skips the
// thread the deterministic scheduler would have run. With bound 0 the
// search is a single schedule; each extra delay multiplies the space
// only linearly in the points where it can be spent, which makes delay
// bounding an even more aggressive (and even less complete) prioriti-
// sation than preemption bounding.
type delayEngine struct {
	bound int
}

// NewDelayBounded returns a delay-bounded enumeration engine.
func NewDelayBounded(bound int) Engine { return &delayEngine{bound: bound} }

// Name implements Engine.
func (e *delayEngine) Name() string { return fmt.Sprintf("db%d-dfs", e.bound) }

// dbNode is one depth of the delay-bounded enumeration: choices[0] is
// the deterministic pick (cost 0); choices[i] skips i enabled threads
// (cost i).
type dbNode struct {
	choices []event.ThreadID
	next    int
	used    int
}

// Explore implements Engine.
func (e *delayEngine) Explore(src model.Source, opt Options) Result {
	c := newCursor(src, opt)
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)

	// A pinned prefix is replayed delay-free: the bound applies to
	// the explored suffix.
	base := c.replayPrefix(opt.Prefix, nil)

	var tids tidPool
	var nodes nodePool[dbNode]

	// freeNode returns a popped node's buffers to the pools.
	freeNode := func(n *dbNode) {
		tids.put(n.choices)
		nodes.put(n)
	}

	makeNode := func(used int) *dbNode {
		en := c.enabled()
		n := nodes.get()
		*n = dbNode{used: used, choices: tids.get()}
		for i, t := range en {
			if used+i > e.bound {
				break
			}
			n.choices = append(n.choices, t)
		}
		return n
	}

	var stack []*dbNode

	descend := func() bool {
		for {
			if c.truncated() {
				rec.cutShort(c)
				return !rec.schedule()
			}
			if c.terminal() {
				rec.terminal(c)
				return !rec.schedule()
			}
			used := 0
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				used = parent.used + parent.next - 1
			}
			n := makeNode(used)
			stack = append(stack, n)
			n.next = 1
			c.step(n.choices[0])
		}
	}

	if !descend() {
		return rec.finish(c)
	}
	for len(stack) > 0 {
		d := len(stack) - 1
		n := stack[d]
		if n.next >= len(n.choices) {
			freeNode(n)
			stack = stack[:d]
			continue
		}
		t := n.choices[n.next]
		n.next++
		c.resetTo(base + d)
		c.step(t)
		if !descend() {
			break
		}
	}
	return rec.finish(c)
}

// iterEngine is iterative bound deepening: run the bounded engine with
// bound 0, 1, 2, ... until either the schedule budget is exhausted or
// raising the bound stops discovering new terminal states — CHESS's
// iterative context bounding loop. Counts are cumulative and distinct
// across rounds.
type iterEngine struct {
	mk       func(bound int) Engine
	name     string
	maxBound int
}

// NewIterativePreemptionBounding returns the CHESS loop over preemption
// bounds 0..maxBound.
func NewIterativePreemptionBounding(maxBound int) Engine {
	return &iterEngine{
		mk:       NewPreemptionBounded,
		name:     fmt.Sprintf("chess-pb%d", maxBound),
		maxBound: maxBound,
	}
}

// NewIterativeDelayBounding returns the analogous loop over delay
// bounds 0..maxBound.
func NewIterativeDelayBounding(maxBound int) Engine {
	return &iterEngine{
		mk:       NewDelayBounded,
		name:     fmt.Sprintf("chess-db%d", maxBound),
		maxBound: maxBound,
	}
}

// Name implements Engine.
func (e *iterEngine) Name() string { return e.name }

// Explore implements Engine. Each round re-explores the space at a
// larger bound (the classic CHESS trade: simple and sound, at the cost
// of re-executing shallow schedules); distinctness counters therefore
// come from a merged recorder fed with per-round results.
func (e *iterEngine) Explore(src model.Source, opt Options) Result {
	merged := Result{Program: src.Name(), Engine: e.name}
	if opt.Observer != nil && opt.Counters == nil {
		// Give the rounds one shared counter set, so an observer sees
		// monotone cumulative totals instead of each round's private
		// counters restarting from zero.
		opt.Counters = NewCounters()
	}
	budget := opt.ScheduleLimit
	prevStates := -1
	for bound := 0; bound <= e.maxBound; bound++ {
		roundOpt := opt
		if budget > 0 {
			roundOpt.ScheduleLimit = budget
		}
		roundOpt.RecordStates = true
		res := e.mk(bound).Explore(src, roundOpt)
		merged.Schedules += res.Schedules
		merged.Terminals += res.Terminals
		merged.Pruned += res.Pruned
		merged.Truncated += res.Truncated
		merged.SleepBlocked += res.SleepBlocked
		merged.Divergences += res.Divergences
		merged.Events += res.Events
		if res.MaxDepth > merged.MaxDepth {
			merged.MaxDepth = res.MaxDepth
		}
		// A bound-(k+1) round re-explores everything a bound-k round
		// reached, so a *completed* later round subsumes earlier
		// distinct counters; a budget-truncated one may not. Taking
		// the maximum is correct either way.
		merged.DistinctHBRs = max(merged.DistinctHBRs, res.DistinctHBRs)
		merged.DistinctLazyHBRs = max(merged.DistinctLazyHBRs, res.DistinctLazyHBRs)
		merged.DistinctStates = max(merged.DistinctStates, res.DistinctStates)
		merged.Deadlocks = max(merged.Deadlocks, res.Deadlocks)
		merged.AssertFailures = max(merged.AssertFailures, res.AssertFailures)
		merged.Panics = max(merged.Panics, res.Panics)
		merged.LockErrors = max(merged.LockErrors, res.LockErrors)
		merged.Races = max(merged.Races, res.Races)
		if merged.FirstViolation == nil && res.FirstViolation != nil {
			merged.FirstViolation = res.FirstViolation
			merged.ViolationKind = res.ViolationKind
			// merged.Schedules already includes this round's, so the
			// rounds before it contributed Schedules − res.Schedules.
			merged.FirstBugSchedule = merged.Schedules - res.Schedules + res.FirstBugSchedule
		}
		if opt.RecordStates && len(res.States) >= len(merged.States) {
			merged.States = res.States
		}
		if opt.StopAtFirstBug && merged.FirstViolation != nil {
			break
		}
		if budget > 0 {
			budget -= res.Schedules
			if budget <= 0 {
				merged.HitLimit = true
				break
			}
		}
		if res.DistinctStates == prevStates && !res.HitLimit {
			// A full round at a higher bound found nothing new:
			// fixed point for this program shape.
			break
		}
		prevStates = res.DistinctStates
	}
	return merged
}
