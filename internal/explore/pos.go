package explore

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// posEngine implements partial-order sampling (POS, after Yuan et al.,
// CAV 2018): a randomized walk whose choice distribution is corrected
// by the happens-before tracker's independence information. Every
// thread's pending event carries a random priority; each step runs the
// highest-priority enabled thread; and after executing an event the
// engine redraws priorities for exactly the threads whose pending
// operations *race* with it (hb.Tracker.RacesWithNext: dependent,
// co-enablable, not already HB-ordered). Operations independent of the
// executed event keep their priorities — their order against it cannot
// distinguish Mazurkiewicz trace classes, so re-randomizing them would
// re-weight schedules within one class. The result samples trace
// classes much closer to uniformly than the naive random walk, which
// drowns in the classes with the most equivalent interleavings.
//
// Walk i is fully determined by mixWalkSeed(seed, i) and the program
// (the machine and the priority redraw order are deterministic), so a
// run is byte-reproducible from its seed; the engine name carries the
// seed (see Name). The schedule budget comes from
// Options.ScheduleLimit.
type posEngine struct {
	seed int64
}

// NewPOS returns a partial-order sampling engine.
func NewPOS(seed int64) Engine { return &posEngine{seed: seed} }

// Name implements Engine. The seed is part of the name so a recorded
// Result (and any counterexample artifact captured from it) identifies
// the exact reproducible configuration that found the bug.
func (e *posEngine) Name() string { return fmt.Sprintf("pos[s%d]", e.seed) }

// Explore implements Engine.
func (e *posEngine) Explore(src model.Source, opt Options) Result {
	walks := opt.ScheduleLimit
	if walks <= 0 {
		walks = 1000
	}
	// The walk count is the budget; disable the generic limit check so
	// the budget semantics match the random-walk baseline exactly.
	opt.ScheduleLimit = 0
	c := newWalkCursor(src, opt)
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)
	base := c.replayPrefix(opt.Prefix, nil)

	prio := make([]float64, src.NumThreads())
	for i := 0; i < walks; i++ {
		rng := rand.New(rand.NewSource(mixWalkSeed(e.seed, i)))
		for t := range prio {
			prio[t] = rng.Float64()
		}
		for !c.truncated() {
			en := c.enabled()
			if len(en) == 0 {
				break
			}
			t := en[0]
			for _, q := range en[1:] {
				if prio[q] > prio[t] {
					t = q
				}
			}
			ev := c.step(t)
			// The chosen event is consumed: the thread's next pending
			// operation is a new event and draws a fresh priority.
			prio[t] = rng.Float64()
			// Redraw the priority of every enabled thread whose
			// pending operation races with the event just executed.
			// EnabledThreads and Pending are deterministic in machine
			// state, so the rng consumption order — and with it the
			// whole walk — is reproducible.
			for _, q := range c.enabled() {
				if q == t {
					continue
				}
				if op, ok := c.m.Pending(q); ok && c.tr.RacesWithNext(ev, q, op) {
					prio[q] = rng.Float64()
				}
			}
		}
		rec.classifyWalk(c)
		if rec.schedule() {
			break
		}
		c.resetTo(base)
	}
	// Exhausting the walk budget is the normal exit and counts as
	// hitting the limit, exactly like the random-walk baseline —
	// unless a cancellation or first-bug stop cut the run short.
	if !rec.res.Interrupted && !(opt.StopAtFirstBug && rec.res.FirstViolation != nil) {
		rec.res.HitLimit = true
	}
	return rec.finish(c)
}
