package explore

import (
	"testing"
	"time"

	"repro/internal/event"
)

// TestTelemetryNilWhenUnarmed: plain options allocate no telemetry at
// all — the zero-cost-when-disabled half of the observer contract.
func TestTelemetryNilWhenUnarmed(t *testing.T) {
	if tel := newTelemetry(Options{}, "p", "e"); tel != nil {
		t.Fatalf("unarmed options built telemetry %+v", tel)
	}
}

// TestObserverGetsPrivateCounters: an observer without caller-supplied
// counters still snapshots from somewhere.
func TestObserverGetsPrivateCounters(t *testing.T) {
	tel := newTelemetry(Options{Observer: &Observer{OnProgress: func(Progress) {}}}, "p", "e")
	if tel == nil || tel.ctr == nil {
		t.Fatal("observer without counters must get a private set")
	}
}

// TestObserverCadenceAndFinalSnapshot: with EverySchedules=1 the
// observer fires at every boundary plus once at the end, snapshots are
// monotone, and the final snapshot equals the result.
func TestObserverCadenceAndFinalSnapshot(t *testing.T) {
	src := curatedSharedCounter()
	var snaps []Progress
	ctr := NewCounters()
	res := NewDPOR(false).Explore(src, Options{
		MaxSteps: 2000,
		Counters: ctr,
		Observer: &Observer{
			EverySchedules: 1,
			Every:          time.Hour, // only the schedule cadence drives this test
			OnProgress:     func(p Progress) { snaps = append(snaps, p) },
		},
	})
	if len(snaps) < 2 {
		t.Fatalf("observer fired %d times for a %d-schedule search", len(snaps), res.Schedules)
	}
	prev := int64(-1)
	for i, p := range snaps {
		if p.Program != src.Name() || p.Engine != "dpor" {
			t.Fatalf("snapshot %d identity: program=%q engine=%q", i, p.Program, p.Engine)
		}
		if p.Schedules < prev {
			t.Fatalf("snapshot %d went backwards: %d after %d", i, p.Schedules, prev)
		}
		prev = p.Schedules
		if p.Elapsed < 0 {
			t.Fatalf("snapshot %d has negative elapsed %v", i, p.Elapsed)
		}
	}
	final := snaps[len(snaps)-1]
	if final.Schedules != int64(res.Schedules) || final.Terminals != int64(res.Terminals) || final.Events != res.Events {
		t.Errorf("final snapshot %+v disagrees with result %+v", final, res)
	}
	if final.Backend == "" {
		t.Error("final snapshot never resolved the backend")
	}
	if ctr.Schedules.Load() != int64(res.Schedules) {
		t.Errorf("Counters.Schedules = %d, want %d", ctr.Schedules.Load(), res.Schedules)
	}
}

// TestFlightRecorderRing: the ring keeps the most recent capacity
// entries oldest-first, and snapshots are isolated from later mutation
// of the recorded choice slices.
func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	choices := []event.ThreadID{0, 1}
	for i := 1; i <= 10; i++ {
		fr.record(int64(i), "terminal", "", choices)
	}
	choices[0] = 99 // must not reach into recorded entries
	got := fr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(7 + i); e.Schedule != want {
			t.Errorf("entry %d: schedule %d, want %d (oldest-first, most recent kept)", i, e.Schedule, want)
		}
		if e.Outcome != "terminal" {
			t.Errorf("entry %d outcome %q", i, e.Outcome)
		}
		if e.Choices[0] == 99 {
			t.Error("recorded choices alias the caller's slice")
		}
		if e.Depth != len(choices) {
			t.Errorf("entry %d depth %d, want %d", i, e.Depth, len(choices))
		}
	}
}

// TestFlightRecorderCapturesOutcomes: a real search with a flight
// recorder armed records one entry per schedule with the outcome mix
// the result reports.
func TestFlightRecorderCapturesOutcomes(t *testing.T) {
	src := curatedSharedCounter()
	fr := NewFlightRecorder(1024)
	res := NewDPOR(false).Explore(src, Options{MaxSteps: 2000, Flight: fr})
	entries := fr.Snapshot()
	if len(entries) != res.Schedules {
		t.Fatalf("flight recorded %d entries for %d schedules", len(entries), res.Schedules)
	}
	terminals := 0
	for _, e := range entries {
		if e.Outcome == "terminal" {
			terminals++
		}
		if len(e.Choices) == 0 || e.Depth != len(e.Choices) {
			t.Errorf("entry %+v has no schedule prefix", e)
		}
	}
	if terminals != res.Terminals {
		t.Errorf("flight saw %d terminals, result %d", terminals, res.Terminals)
	}
}

// TestValidateObservability: malformed observer options fail Validate
// before any exploration.
func TestValidateObservability(t *testing.T) {
	bad := []Options{
		{Observer: &Observer{}}, // nil OnProgress
		{Observer: &Observer{OnProgress: func(Progress) {}, EverySchedules: -1}},  // negative cadence
		{Observer: &Observer{OnProgress: func(Progress) {}, Every: -time.Second}}, // negative interval
	}
	for i, opt := range bad {
		if err := opt.Validate(); err == nil {
			t.Errorf("options %d validated despite malformed observer", i)
		}
	}
	ok := Options{Observer: &Observer{OnProgress: func(Progress) {}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("well-formed observer rejected: %v", err)
	}
}

// TestCountersBackendLatch: Backend() is empty until resolved, then
// names the cursor backend the search actually used.
func TestCountersBackendLatch(t *testing.T) {
	ctr := NewCounters()
	if got := ctr.Backend(); got != "" {
		t.Fatalf("unresolved backend reads %q, want empty", got)
	}
	NewDFS().Explore(curatedSharedCounter(), Options{MaxSteps: 2000, Counters: ctr, Backend: BackendReplay})
	if got := ctr.Backend(); got != BackendReplay.String() {
		t.Fatalf("Backend() = %q, want %q", got, BackendReplay.String())
	}
}
