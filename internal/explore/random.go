package explore

import (
	"math/rand"

	"repro/internal/model"
)

// randomEngine samples schedules uniformly at each choice point — the
// non-systematic baseline ("random testing"). It offers no coverage
// guarantee; the paper's techniques exist to beat it.
type randomEngine struct {
	seed int64
}

// NewRandomWalk returns a seeded random-walk engine; the schedule
// budget comes from Options.ScheduleLimit (required).
func NewRandomWalk(seed int64) Engine { return &randomEngine{seed: seed} }

// Name implements Engine.
func (e *randomEngine) Name() string { return "random" }

// Explore implements Engine.
func (e *randomEngine) Explore(src model.Source, opt Options) Result {
	if opt.ScheduleLimit <= 0 {
		opt.ScheduleLimit = 1000
	}
	c := newCursor(src, opt)
	defer c.close()
	rec := newRecorder(src, e.Name(), opt)
	rng := rand.New(rand.NewSource(e.seed))
	for {
		for !c.truncated() {
			en := c.enabled()
			if len(en) == 0 {
				break
			}
			c.step(en[rng.Intn(len(en))])
		}
		if c.truncated() && !c.terminal() {
			rec.res.Truncated++
		} else {
			rec.terminal(c)
		}
		if rec.schedule() {
			break
		}
		c.resetTo(0)
	}
	// Random walks revisit schedules, so the invariant chain over
	// *distinct* quantities still holds but HitLimit is the normal
	// exit; nothing more to do.
	return rec.finish(c)
}
