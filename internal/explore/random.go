package explore

import (
	"math/rand"

	"repro/internal/model"
)

// randomEngine samples schedules uniformly at each choice point — the
// non-systematic baseline ("random testing"). It offers no coverage
// guarantee; the paper's techniques exist to beat it.
//
// Each walk draws from its own rng seeded by mixWalkSeed(seed, index),
// so walk i is the same schedule whether the walks run sequentially or
// are fanned out across workers in index ranges — the property the
// campaign package's parallel random search relies on for exact
// counter agreement with the sequential engine.
type randomEngine struct {
	seed int64
	// firstWalk and walks restrict the engine to walk indices
	// [firstWalk, firstWalk+walks); walks == 0 means the budget
	// comes from Options.ScheduleLimit starting at index firstWalk.
	firstWalk int
	walks     int
}

// NewRandomWalk returns a seeded random-walk engine; the schedule
// budget comes from Options.ScheduleLimit (required).
func NewRandomWalk(seed int64) Engine { return &randomEngine{seed: seed} }

// NewRandomWalkRange returns a random-walk engine restricted to walk
// indices [first, first+walks) of the seed's walk sequence. Splitting
// [0, limit) into disjoint ranges and exploring them concurrently
// under a shared Dedup reproduces NewRandomWalk(seed) with
// ScheduleLimit=limit exactly.
func NewRandomWalkRange(seed int64, first, walks int) Engine {
	return &randomEngine{seed: seed, firstWalk: first, walks: walks}
}

// Name implements Engine.
func (e *randomEngine) Name() string { return "random" }

// mixWalkSeed derives walk i's rng seed from the engine seed via a
// splitmix64 round, decorrelating consecutive walk indices.
func mixWalkSeed(seed int64, walk int) int64 {
	z := uint64(seed) + uint64(walk)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Explore implements Engine.
func (e *randomEngine) Explore(src model.Source, opt Options) Result {
	walks := e.walks
	if walks <= 0 {
		walks = opt.ScheduleLimit
		if walks <= 0 {
			walks = 1000
		}
	}
	// The walk count is the budget; disable the generic limit check
	// so ranged sub-engines sharing one Dedup don't each stop early.
	opt.ScheduleLimit = 0
	c := newWalkCursor(src, opt)
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)
	base := c.replayPrefix(opt.Prefix, nil)
	for i := 0; i < walks; i++ {
		rng := rand.New(rand.NewSource(mixWalkSeed(e.seed, e.firstWalk+i)))
		for !c.truncated() {
			en := c.enabled()
			if len(en) == 0 {
				break
			}
			c.step(en[rng.Intn(len(en))])
		}
		rec.classifyWalk(c)
		if rec.schedule() {
			break
		}
		c.resetTo(base)
	}
	// Random walks revisit schedules, so the invariant chain over
	// *distinct* quantities still holds; exhausting the walk budget
	// is the normal exit and counts as hitting the limit — unless a
	// context cancellation or a first-bug stop cut the run short
	// instead.
	if !rec.res.Interrupted && !(opt.StopAtFirstBug && rec.res.FirstViolation != nil) {
		rec.res.HitLimit = true
	}
	return rec.finish(c)
}
