package explore

import (
	"testing"

	"repro/internal/progdsl"
)

// TestPBoundZeroIsNonPreemptive: with bound 0 the search only switches
// threads at blocking or terminating operations.
func TestPBoundZeroIsNonPreemptive(t *testing.T) {
	// Two independent straight-line threads: without preemptions the
	// only schedules run one thread to completion, then the other —
	// plus nothing else (switching mid-thread costs a preemption).
	b := progdsl.New("pb0").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	t1 := b.Thread()
	t1.WriteConst(x, 1).WriteConst(x, 2)
	t2 := b.Thread()
	t2.WriteConst(y, 1).WriteConst(y, 2)
	res := NewPreemptionBounded(0).Explore(b.Build(), Options{})
	if res.Schedules != 2 {
		t.Errorf("pb0 explored %d schedules, want 2 (t1-first, t2-first)", res.Schedules)
	}
	if res.SleepBlocked != 0 {
		t.Errorf("pb0 abandoned %d paths on a free space", res.SleepBlocked)
	}
}

// TestPBoundGrowsWithBudget: more preemptions, more schedules, up to
// the unbounded DFS count.
func TestPBoundGrowsWithBudget(t *testing.T) {
	src := curatedSharedCounter()
	dfs := NewDFS().Explore(src, Options{})
	prev := 0
	for bound := 0; bound <= 8; bound++ {
		res := NewPreemptionBounded(bound).Explore(src, Options{})
		if err := res.CheckInvariant(); err != nil {
			t.Fatalf("bound %d: %v", bound, err)
		}
		if res.Terminals < prev {
			t.Errorf("bound %d completed %d terminals, fewer than bound %d's %d",
				bound, res.Terminals, bound-1, prev)
		}
		prev = res.Terminals
		if res.Terminals > dfs.Schedules {
			t.Errorf("bound %d exceeded exhaustive count", bound)
		}
	}
	if prev != dfs.Schedules {
		t.Errorf("a large budget must recover exhaustive DFS: %d vs %d", prev, dfs.Schedules)
	}
}

// TestPBoundFindsShallowBugs: the classic CHESS claim — most bugs need
// few preemptions. The racy counter's lost update needs exactly one.
func TestPBoundFindsShallowBugs(t *testing.T) {
	b := progdsl.New("lostupdate").AutoStart()
	x := b.Var("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	}
	zero := NewPreemptionBounded(0).Explore(b.Build(), Options{RecordStates: true})
	if zero.DistinctStates != 1 {
		t.Errorf("pb0 found %d states; the lost update needs a preemption", zero.DistinctStates)
	}
	one := NewPreemptionBounded(1).Explore(b.Build(), Options{RecordStates: true})
	if one.DistinctStates != 2 {
		t.Errorf("pb1 found %d states, want 2 (correct and lost-update)", one.DistinctStates)
	}
}

// TestPBoundCachingComposes: preemption-bounded caching prunes
// redundant prefixes and the lazy variant never completes more
// schedules than the regular one needs.
func TestPBoundCachingComposes(t *testing.T) {
	src := curatedDisjointLocks()
	reg := NewPreemptionBoundedCache(2, false).Explore(src, Options{})
	lazy := NewPreemptionBoundedCache(2, true).Explore(src, Options{})
	if err := reg.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if lazy.Terminals > reg.Terminals {
		t.Errorf("lazy caching completed %d terminals, regular %d", lazy.Terminals, reg.Terminals)
	}
	if lazy.DistinctStates != reg.DistinctStates {
		t.Errorf("caching modes disagree on states within the same bound: %d vs %d",
			lazy.DistinctStates, reg.DistinctStates)
	}
}

// TestPBoundNames pins the reported engine names.
func TestPBoundNames(t *testing.T) {
	if got := NewPreemptionBounded(3).Name(); got != "pb3-dfs" {
		t.Errorf("name = %q", got)
	}
	if got := NewPreemptionBoundedCache(2, false).Name(); got != "pb2-hbr-caching" {
		t.Errorf("name = %q", got)
	}
	if got := NewPreemptionBoundedCache(1, true).Name(); got != "pb1-lazy-hbr-caching" {
		t.Errorf("name = %q", got)
	}
}

// TestPBoundStateSubset: bounded exploration finds a subset of the
// exhaustive states, converging as the bound rises, on the zoo.
func TestPBoundStateSubset(t *testing.T) {
	for _, src := range soundnessZoo()[:8] {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			full := exploreStates(t, NewDFS(), src)
			all := map[string]bool{}
			for _, s := range full.States {
				all[s] = true
			}
			prevCount := -1
			for _, bound := range []int{0, 1, 2, 16} {
				res := NewPreemptionBounded(bound).Explore(src, Options{MaxSteps: 2000, RecordStates: true})
				for _, s := range res.States {
					if !all[s] {
						t.Fatalf("bound %d found state outside the exhaustive set: %s", bound, s)
					}
				}
				if res.DistinctStates < prevCount {
					t.Errorf("state count shrank when budget grew at bound %d", bound)
				}
				prevCount = res.DistinctStates
			}
			if prevCount != full.DistinctStates {
				t.Errorf("bound 16 found %d states, exhaustive %d", prevCount, full.DistinctStates)
			}
		})
	}
}

// TestPBoundLimitHonoured: the schedule limit applies.
func TestPBoundLimitHonoured(t *testing.T) {
	res := NewPreemptionBounded(4).Explore(curatedSharedCounter(), Options{ScheduleLimit: 3})
	if res.Schedules != 3 || !res.HitLimit {
		t.Errorf("schedules=%d hitLimit=%v", res.Schedules, res.HitLimit)
	}
}
