package explore

import (
	"context"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/goharness"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// hostileSpinner builds a goharness program whose deterministic probe
// schedule (always the lowest-numbered enabled thread) reaches a
// thread spinning forever in local computation: t0 writes x, t1 reads
// it and, having observed the write, never announces again. Without
// ctx awareness the PCT probe pays the full wall-clock stall timeout
// on it before a single walk starts.
func hostileSpinner() *goharness.Program {
	p := goharness.New("hostile-spinner").AutoStart()
	x := p.Var("x")
	done := p.Var("done")
	p.Thread(func(g *goharness.G) {
		g.Write(x, 1)
	})
	p.Thread(func(g *goharness.G) {
		if g.Read(x) == 1 {
			for {
				time.Sleep(time.Millisecond)
			}
		}
		g.Write(done, 1)
	})
	return p
}

// TestEstimateEventsCancelledCtx is the regression test for the PCT
// probe ignoring Options.Ctx: with the exploration already cancelled,
// the probe must return immediately — before the hostile program's
// machine is even built — instead of paying the stall timeout. The
// generous timeout here is the tripwire: the old probe would sit in
// PeekTimeout for all of it.
func TestEstimateEventsCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mcfg := model.MachineConfig{StallTimeout: 30 * time.Second, Hints: model.NewDivergeHints()}
	start := time.Now()
	k := estimateEvents(ctx, hostileSpinner(), mcfg, 2000)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled probe took %v — it paid the stall timeout", elapsed)
	}
	if k < 1 {
		t.Fatalf("estimate %d, want >= 1", k)
	}
}

// cancelAfterSource wraps a Source and fires cancel after the wrapped
// program has resumed n visible operations — cancellation arriving
// mid-probe, deterministically.
type cancelAfterSource struct {
	model.Source
	n      *int
	after  int
	cancel context.CancelFunc
}

func (s *cancelAfterSource) Start(t event.ThreadID) model.Coroutine {
	return &cancelAfterCor{inner: s.Source.Start(t), src: s}
}

type cancelAfterCor struct {
	inner model.Coroutine
	src   *cancelAfterSource
}

func (c *cancelAfterCor) Peek() (event.Op, bool) { return c.inner.Peek() }

func (c *cancelAfterCor) Resume(result int64) {
	c.inner.Resume(result)
	*c.src.n++
	if *c.src.n == c.src.after {
		c.src.cancel()
	}
}

// TestEstimateEventsMidProbeCancellation: a context cancelled between
// probe steps cuts the measurement short at the next iteration instead
// of running the schedule to its end.
func TestEstimateEventsMidProbeCancellation(t *testing.T) {
	full := estimateEvents(nil, curatedSharedCounter(), model.MachineConfig{}, 2000)
	if full < 4 {
		t.Fatalf("probe program too short to observe early exit: %d events", full)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	src := &cancelAfterSource{Source: curatedSharedCounter(), n: &n, after: 2, cancel: cancel}
	k := estimateEvents(ctx, src, model.MachineConfig{}, 2000)
	if k >= full {
		t.Errorf("mid-probe cancellation ignored: estimate %d, full schedule %d", k, full)
	}
	if k < 1 {
		t.Errorf("estimate %d, want >= 1", k)
	}
}

// panicSource panics the moment the machine starts its first thread —
// a hostile Source failing outside any thread body, where the
// machine's panic-as-violation containment cannot catch it.
type panicSource struct {
	model.Source
}

func (panicSource) Start(event.ThreadID) model.Coroutine {
	panic("hostile source")
}

// TestEstimateEventsPanicSafe: a probe machine that panics yields the
// clamped minimum estimate instead of crashing PCT before sampling
// starts; exploration proper then surfaces the fault under its own
// containment.
func TestEstimateEventsPanicSafe(t *testing.T) {
	k := estimateEvents(nil, panicSource{Source: curatedSharedCounter()}, model.MachineConfig{}, 2000)
	if k != 1 {
		t.Errorf("panicking probe estimated %d, want the clamped 1", k)
	}
}

// TestEstimateEventsHostileCorpus runs the probe across the committed
// hostile shapes (deterministic divergence, panic-as-violation) and
// checks it always returns a usable estimate without hanging: the
// divergence watchdog semantics and the panic containment the machine
// already provides keep covering the probe after the ctx rework.
func TestEstimateEventsHostileCorpus(t *testing.T) {
	for _, src := range []*progdsl.Program{divergeRacy(), panicRacy(), curatedDeadlockable()} {
		k := estimateEvents(nil, src, model.MachineConfig{}, 2000)
		if k < 1 || k > 2000 {
			t.Errorf("%s: estimate %d out of range", src.Name(), k)
		}
	}
}

// TestPCTHostileCancelled: end to end, a cancelled PCT exploration of
// the hostile program returns promptly with Interrupted set — the
// probe no longer stalls before the engine can even notice the
// cancellation.
func TestPCTHostileCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := NewPCT(7, 3).Explore(hostileSpinner(), Options{
		ScheduleLimit: 50,
		MaxSteps:      200,
		StallTimeout:  30 * time.Second,
		Ctx:           ctx,
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled PCT run took %v — a stall timeout was paid", elapsed)
	}
	if !res.Interrupted {
		t.Errorf("cancelled run not marked Interrupted: %+v", res)
	}
}
