package explore

import (
	"testing"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// chanCountCase pins hand-counted schedule totals for exhaustive DFS
// and DPOR on one channel program: the channel dependence rules must
// prune exactly the commuting interleavings and nothing more.
type chanCountCase struct {
	name      string
	build     func() model.Source
	dfs, dpor int
}

// TestChanScheduleCountsHand pins the channel independence rules
// against hand-enumerated schedule spaces. Counts are derived on
// paper: n always-enabled straight-line threads interleave in
// multinomial(lengths) ways under DFS, and DPOR explores one
// representative per dependence-equivalence class.
func TestChanScheduleCountsHand(t *testing.T) {
	cases := []chanCountCase{
		{
			// t0: send c0; t1: send c1 — distinct channels commute.
			// DFS: 2 interleavings. DPOR: the reversal is independent,
			// so 1 schedule.
			name: "distinct-channels-2",
			build: func() model.Source {
				b := progdsl.New("count-distinct-2").AutoStart()
				c0 := b.Chan("c0", 1)
				c1 := b.Chan("c1", 1)
				b.Thread().SendConst(c0, 1)
				b.Thread().SendConst(c1, 2)
				return b.Build()
			},
			dfs: 2, dpor: 1,
		},
		{
			// Three sends on three distinct channels: DFS 3! = 6, DPOR
			// 1 — full pruning of pairwise-independent events.
			name: "distinct-channels-3",
			build: func() model.Source {
				b := progdsl.New("count-distinct-3").AutoStart()
				c0 := b.Chan("c0", 1)
				c1 := b.Chan("c1", 1)
				c2 := b.Chan("c2", 1)
				b.Thread().SendConst(c0, 1)
				b.Thread().SendConst(c1, 2)
				b.Thread().SendConst(c2, 3)
				return b.Build()
			},
			dfs: 6, dpor: 1,
		},
		{
			// Two sends on the SAME channel (capacity 2, neither ever
			// blocks): dependent — the buffer orders differ — so DPOR
			// must keep both interleavings. No overpruning.
			name: "same-channel-2",
			build: func() model.Source {
				b := progdsl.New("count-same-2").AutoStart()
				c := b.Chan("c", 2)
				b.Thread().SendConst(c, 1)
				b.Thread().SendConst(c, 2)
				return b.Build()
			},
			dfs: 2, dpor: 2,
		},
		{
			// Send vs non-blocking receive on the same channel: the
			// tryrecv observes emptiness or the sent value depending on
			// the order — dependent, both orders kept.
			name: "send-vs-tryrecv",
			build: func() model.Source {
				b := progdsl.New("count-send-tryrecv").AutoStart()
				c := b.Chan("c", 1)
				b.Thread().SendConst(c, 7)
				b.Thread().TryRecv(0, 1, c)
				return b.Build()
			},
			dfs: 2, dpor: 2,
		},
		{
			// A defaulting select over {c0} vs a send on c1: footprints
			// are disjoint, so the pair commutes and DPOR halves DFS.
			name: "select-disjoint-send",
			build: func() model.Source {
				b := progdsl.New("count-select-disjoint").AutoStart()
				c0 := b.Chan("c0", 1)
				c1 := b.Chan("c1", 1)
				b.Thread().TryRecv(0, 1, c0)
				b.Thread().SendConst(c1, 2)
				return b.Build()
			},
			dfs: 2, dpor: 1,
		},
		{
			// The same select with c1 added to its case set: now the
			// footprints intersect, the orders differ observably, and
			// DPOR must keep both.
			name: "select-overlapping-send",
			build: func() model.Source {
				b := progdsl.New("count-select-overlap").AutoStart()
				c0 := b.Chan("c0", 1)
				c1 := b.Chan("c1", 1)
				b.Thread().Select(0, 1, 2, true, c0, c1)
				b.Thread().SendConst(c1, 2)
				return b.Build()
			},
			dfs: 2, dpor: 2,
		},
		{
			// Close vs send on the same channel: the reversal flips a
			// clean schedule into a send-on-closed panic — maximally
			// dependent, both orders kept.
			name: "close-vs-send",
			build: func() model.Source {
				b := progdsl.New("count-close-send").AutoStart()
				c := b.Chan("c", 1)
				b.Thread().Close(c)
				b.Thread().SendConst(c, 1)
				return b.Build()
			},
			dfs: 2, dpor: 2,
		},
		{
			// Mixed universes stay independent too: a send on c0 and a
			// lock-protected write share nothing. 2 threads, 3 events
			// for the locked thread: DFS = C(4,1) = 4 placements of the
			// send among lock/write/unlock; DPOR: 1.
			name: "channel-vs-mutex",
			build: func() model.Source {
				b := progdsl.New("count-chan-mutex").AutoStart()
				c := b.Chan("c", 1)
				m := b.Mutex("m")
				x := b.Var("x")
				b.Thread().SendConst(c, 1)
				b.Thread().Lock(m).WriteConst(x, 1).Unlock(m)
				return b.Build()
			},
			dfs: 4, dpor: 1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opt := Options{MaxSteps: 200}
			dfs := NewDFS().Explore(tc.build(), opt)
			if dfs.HitLimit {
				t.Fatal("dfs hit a limit on a hand-counted space")
			}
			if dfs.Schedules != tc.dfs {
				t.Errorf("dfs explored %d schedules, hand count says %d", dfs.Schedules, tc.dfs)
			}
			dpor := NewDPOR(false).Explore(tc.build(), opt)
			if dpor.Schedules != tc.dpor {
				t.Errorf("dpor explored %d schedules, hand count says %d", dpor.Schedules, tc.dpor)
			}
			// The pruned schedules must all be redundant: both engines
			// see the same violation classes and distinct lazy HBRs.
			if (dfs.Panics > 0) != (dpor.Panics > 0) || (dfs.Deadlocks > 0) != (dpor.Deadlocks > 0) ||
				(dfs.AssertFailures > 0) != (dpor.AssertFailures > 0) {
				t.Errorf("dpor verdicts differ from dfs: dfs=%+v dpor=%+v", countersOf(dfs), countersOf(dpor))
			}
		})
	}
}
