package explore

import (
	"context"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/hb"
)

// TestOptionsValidate pins the structural validation batch drivers run
// before exploring a grid.
func TestOptionsValidate(t *testing.T) {
	seed := hb.NewTracker(2, 1, 1)
	cases := []struct {
		name    string
		opt     Options
		wantErr string
	}{
		{"zero value", Options{}, ""},
		{"typical", Options{ScheduleLimit: 1000, MaxSteps: 200, Backend: BackendSnapshot}, ""},
		{"negative limit", Options{ScheduleLimit: -1}, "negative ScheduleLimit"},
		{"negative max steps", Options{MaxSteps: -3}, "negative MaxSteps"},
		{"unknown backend", Options{Backend: BackendReplay + 1}, "unknown backend"},
		{"prefix beyond bound", Options{MaxSteps: 2, Prefix: []event.ThreadID{0, 1, 0}}, "exceeds step bound"},
		{"seed/prefix mismatch", Options{TrackerSeed: seed, Prefix: []event.ThreadID{0, 1, 0}}, "tracker seed covers"},
		{"seed ignored on short prefix", Options{TrackerSeed: seed, Prefix: []event.ThreadID{0}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestNilSourcePanics: handing an engine a nil program is a caller bug
// and must fail loudly, not explore an empty space.
func TestNilSourcePanics(t *testing.T) {
	for _, eng := range []Engine{NewDFS(), NewDPOR(false), NewHBRCache(), NewRandomWalk(1)} {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("exploring a nil source did not panic")
				}
			}()
			eng.Explore(nil, Options{})
		})
	}
}

// TestZeroBudgetMeansUnlimited: a non-positive shared budget is "no
// budget" (nil), mirroring ScheduleLimit <= 0.
func TestZeroBudgetMeansUnlimited(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Errorf("NewBudget(0) = %v, want nil", b)
	}
	if b := NewBudget(-5); b != nil {
		t.Errorf("NewBudget(-5) = %v, want nil", b)
	}
	src := curatedSharedCounter()
	full := NewDFS().Explore(src, Options{MaxSteps: 2000})
	unlimited := NewDFS().Explore(src, Options{MaxSteps: 2000, SharedBudget: NewBudget(0)})
	if unlimited.Schedules != full.Schedules || unlimited.HitLimit {
		t.Errorf("zero budget limited the search: %+v vs %+v", unlimited, full)
	}
}

// TestUnknownBackendFailsLoudly: resolution and validation agree on
// out-of-range BackendKind values. Validate rejects them, and an
// engine built from unvalidated options panics instead of silently
// exploring under replay — an ablation run under the wrong backend is
// worse than no run.
func TestUnknownBackendFailsLoudly(t *testing.T) {
	bogus := BackendReplay + 7
	if got := bogus.String(); !strings.Contains(got, "backend(") {
		t.Errorf("stringer hid the bogus kind: %q", got)
	}
	if err := (Options{Backend: bogus}).Validate(); err == nil {
		t.Errorf("Validate accepted bogus backend %v", bogus)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("resolution silently accepted bogus backend %v", bogus)
		}
	}()
	(Options{Backend: bogus}).backend()
}

// TestCancelledCtxStopsEveryEngine: a context cancelled before the
// search starts stops every engine at its first schedule boundary with
// Interrupted set — the counters cover exactly the one execution that
// ran.
func TestCancelledCtxStopsEveryEngine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	engines := []Engine{
		NewDFS(),
		NewDPOR(false),
		NewDPOR(true),
		NewLazyDPOR(),
		NewHBRCache(),
		NewLazyHBRCache(),
		NewPreemptionBounded(2),
		NewDelayBounded(2),
		NewRandomWalk(3),
	}
	src := curatedSharedCounter()
	for _, eng := range engines {
		eng := eng
		t.Run(eng.Name(), func(t *testing.T) {
			res := eng.Explore(src, Options{MaxSteps: 2000, Ctx: ctx})
			if !res.Interrupted {
				t.Fatalf("cancelled context did not interrupt: %+v", res)
			}
			if res.Schedules != 1 {
				t.Errorf("interrupted search ran %d schedules, want 1 (stop at first boundary)", res.Schedules)
			}
			if err := res.CheckInvariant(); err != nil {
				t.Errorf("partial result breaks the invariant chain: %v", err)
			}
		})
	}
}

// pollCtx reports cancellation after a fixed number of Err polls — a
// deterministic "deadline fires mid-search" for engines that check the
// context once per schedule boundary.
type pollCtx struct {
	context.Context
	polls int
}

func (c *pollCtx) Err() error {
	if c.polls--; c.polls < 0 {
		return context.Canceled
	}
	return nil
}

// TestCtxCancelMidSearch: a context that dies partway through the
// search leaves a consistent partial result — some but not all
// schedules explored, Interrupted set, invariant chain intact.
func TestCtxCancelMidSearch(t *testing.T) {
	src := curatedSharedCounter()
	full := NewDFS().Explore(src, Options{MaxSteps: 2000})
	if full.Schedules <= 4 {
		t.Fatalf("test program too small (%d schedules)", full.Schedules)
	}
	interrupted := NewDFS().Explore(src, Options{MaxSteps: 2000, Ctx: &pollCtx{Context: context.Background(), polls: 3}})
	if !interrupted.Interrupted {
		t.Fatalf("mid-search cancellation not reported: %+v", interrupted)
	}
	if interrupted.Schedules == 0 || interrupted.Schedules >= full.Schedules {
		t.Errorf("cancelled search explored %d of %d schedules, want a strict partial",
			interrupted.Schedules, full.Schedules)
	}
	if err := interrupted.CheckInvariant(); err != nil {
		t.Errorf("partial result breaks the invariant chain: %v", err)
	}
}

// TestIterativeStopAtFirstBugKeepsStates: when the CHESS deepening
// loop stops at its first bug, the violating round's recorded state
// set must survive into the merged result (regression: the early
// break used to skip the States merge).
func TestIterativeStopAtFirstBugKeepsStates(t *testing.T) {
	src := curatedDeadlockable()
	res := NewIterativePreemptionBounding(3).Explore(src, Options{
		MaxSteps: 500, RecordStates: true, StopAtFirstBug: true,
	})
	if res.FirstViolation == nil || res.ViolationKind != "deadlock" {
		t.Fatalf("deepening loop found no deadlock: %+v", res)
	}
	if res.FirstBugSchedule < 1 {
		t.Errorf("missing first-bug index: %d", res.FirstBugSchedule)
	}
	if len(res.States) == 0 || len(res.States) != res.DistinctStates {
		t.Errorf("violating round's states lost: len(States)=%d, DistinctStates=%d",
			len(res.States), res.DistinctStates)
	}
}
