package explore

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/progdsl"
)

// fuzzProbeLimit bounds each engine run on a fuzz-decoded program; the
// deep agreement checks apply only when exhaustive DFS finishes under
// it, so adversarial inputs cannot stall the fuzzer.
const fuzzProbeLimit = 3000

// checkEngineEquivalence is the differential oracle shared by the fuzz
// target and the committed-corpus regression test: decode data into a
// program, then require that
//
//   - every engine × backend run satisfies the paper's counting chain;
//   - each engine's Result counters are byte-identical across the
//     undo-log, deep-snapshot, replay and adaptive auto backends;
//   - when exhaustive DFS exhausts the space, every complete engine
//     (DPOR ± sleep sets, lazy DPOR, HBR/lazy-HBR caching) agrees with
//     it on the distinct-state/HBR/lazy-HBR counts and on the state
//     set itself.
func checkEngineEquivalence(t *testing.T, data []byte) {
	src := progdsl.FromBytes("fuzz", data)
	if src == nil {
		t.Skip("input too short to decode")
	}
	mkOpt := func(b BackendKind) Options {
		return Options{ScheduleLimit: fuzzProbeLimit, MaxSteps: 500, RecordStates: true, Backend: b}
	}

	dfs := NewDFS().Explore(src, mkOpt(BackendUndo))
	if err := dfs.CheckInvariant(); err != nil {
		t.Fatalf("dfs: %v", err)
	}
	exhausted := !dfs.HitLimit && dfs.Truncated == 0

	engines := []struct {
		eng Engine
		// fullCoverage engines must match DFS's distinct HBR and lazy
		// HBR counts, not just the state set: DPOR prunes only
		// HBR-equivalent schedules. The caching and lazy-DPOR engines
		// deliberately stop exploring an equivalence class early, so
		// only their state coverage is complete.
		fullCoverage bool
	}{
		{NewDFS(), true},
		{NewDPOR(false), true},
		{NewDPOR(true), true},
		{NewLazyDPOR(), false},
		{NewHBRCache(), false},
		{NewLazyHBRCache(), false},
	}
	for _, e := range engines {
		eng := e.eng
		undo := eng.Explore(src, mkOpt(BackendUndo))
		snap := eng.Explore(src, mkOpt(BackendSnapshot))
		repl := eng.Explore(src, mkOpt(BackendReplay))
		if err := undo.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
		if got, want := countersOf(undo), countersOf(snap); got != want {
			t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(repl); got != want {
			t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, mkOpt(BackendAuto))); got != want {
			t.Errorf("%s: undo and auto backends disagree:\n undo=%+v\n auto=%+v", eng.Name(), got, want)
		}
		if exhausted && !undo.HitLimit {
			if e.fullCoverage &&
				(undo.DistinctHBRs != dfs.DistinctHBRs || undo.DistinctLazyHBRs != dfs.DistinctLazyHBRs) {
				t.Errorf("%s HBR coverage disagrees with exhaustive DFS:\n %s=%+v\n dfs=%+v",
					eng.Name(), eng.Name(), countersOf(undo), countersOf(dfs))
			}
			if undo.DistinctStates != dfs.DistinctStates || !reflect.DeepEqual(undo.States, dfs.States) {
				t.Errorf("%s found a different state set than exhaustive DFS (%d vs %d states)",
					eng.Name(), undo.DistinctStates, dfs.DistinctStates)
			}
			if (undo.AssertFailures > 0) != (dfs.AssertFailures > 0) ||
				(undo.Deadlocks > 0) != (dfs.Deadlocks > 0) ||
				(undo.Races > 0) != (dfs.Races > 0) {
				t.Errorf("%s safety verdicts disagree with exhaustive DFS", eng.Name())
			}
		}
	}

	// The sampling engines (random walk, PCT, POS) explore a seeded
	// random subset of the space rather than all of it, so the oracle
	// weakens to: the counting invariant holds, every backend reports
	// byte-identical counters (walk i is a pure function of (seed, i)
	// and the program), and — when exhaustive DFS finished — every
	// terminal state the sampler reached is one DFS reached, and any
	// violation it found is a violation class DFS confirmed exists.
	for _, eng := range []Engine{
		NewRandomWalk(3),
		NewPCT(3, 1),
		NewPCT(3, 3),
		NewPOS(3),
	} {
		sOpt := func(b BackendKind) Options {
			o := mkOpt(b)
			o.ScheduleLimit = 40
			return o
		}
		undo := eng.Explore(src, sOpt(BackendUndo))
		if err := undo.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendSnapshot))); got != want {
			t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendReplay))); got != want {
			t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendAuto))); got != want {
			t.Errorf("%s: undo and auto backends disagree:\n undo=%+v\n auto=%+v", eng.Name(), got, want)
		}
		if exhausted {
			dfsStates := make(map[string]bool, len(dfs.States))
			for _, s := range dfs.States {
				dfsStates[s] = true
			}
			for _, s := range undo.States {
				if !dfsStates[s] {
					t.Errorf("%s reached terminal state %q that exhaustive DFS never saw", eng.Name(), s)
				}
			}
			if (undo.AssertFailures > 0 && dfs.AssertFailures == 0) ||
				(undo.Deadlocks > 0 && dfs.Deadlocks == 0) ||
				(undo.Races > 0 && dfs.Races == 0) ||
				(undo.LockErrors > 0 && dfs.LockErrors == 0) {
				t.Errorf("%s found a violation class exhaustive DFS says cannot occur", eng.Name())
			}
		}
	}
}

// FuzzEngineEquivalence is the native fuzz target behind the committed
// corpus in testdata/fuzz/FuzzEngineEquivalence. Run it open-endedly
// with
//
//	go test -fuzz FuzzEngineEquivalence -fuzztime 30s ./internal/explore
//
// Plain `go test` replays the committed corpus as ordinary subtests.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{1, 2, 1, 2, 17, 3, 33, 4, 49})
	for _, data := range progdsl.FuzzCorpus(8, 42) {
		f.Add(data)
	}
	f.Fuzz(checkEngineEquivalence)
}

// TestEngineEquivalenceCorpus replays a bounded deterministic slice of
// the fuzz input space in the normal -short suite, so the differential
// oracle gates every CI run rather than only explicit fuzz sessions.
func TestEngineEquivalenceCorpus(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 30
	}
	for i, data := range progdsl.FuzzCorpus(n, 7) {
		i, data := i, data
		t.Run(fmt.Sprintf("corpus-%03d", i), func(t *testing.T) {
			checkEngineEquivalence(t, data)
		})
	}
}

// checkChanEquivalence is the message-passing differential oracle:
// decode data with the channel decoder (sends, receives, closes,
// selects over a small channel universe), then require exactly what
// the healthy oracle requires — counting chain, byte-identical
// counters across the four backends, full-coverage agreement with
// exhaustive DFS — plus agreement on the channel-specific verdicts:
// deadlocks (a blocked receive nobody serves) and panics (send on
// closed, close of closed).
func checkChanEquivalence(t *testing.T, data []byte) {
	src := progdsl.ChanFromBytes("chan-fuzz", data)
	if src == nil {
		t.Skip("input too short to decode")
	}
	mkOpt := func(b BackendKind) Options {
		return Options{ScheduleLimit: fuzzProbeLimit, MaxSteps: 500, RecordStates: true, Backend: b}
	}

	dfs := NewDFS().Explore(src, mkOpt(BackendUndo))
	if err := dfs.CheckInvariant(); err != nil {
		t.Fatalf("dfs: %v", err)
	}
	exhausted := !dfs.HitLimit && dfs.Truncated == 0

	engines := []struct {
		eng          Engine
		fullCoverage bool
	}{
		{NewDFS(), true},
		{NewDPOR(false), true},
		{NewDPOR(true), true},
		{NewLazyDPOR(), false},
		{NewHBRCache(), false},
		{NewLazyHBRCache(), false},
	}
	for _, e := range engines {
		eng := e.eng
		undo := eng.Explore(src, mkOpt(BackendUndo))
		snap := eng.Explore(src, mkOpt(BackendSnapshot))
		repl := eng.Explore(src, mkOpt(BackendReplay))
		if err := undo.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
		if got, want := countersOf(undo), countersOf(snap); got != want {
			t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(repl); got != want {
			t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, mkOpt(BackendAuto))); got != want {
			t.Errorf("%s: undo and auto backends disagree:\n undo=%+v\n auto=%+v", eng.Name(), got, want)
		}
		if exhausted && !undo.HitLimit {
			if e.fullCoverage &&
				(undo.DistinctHBRs != dfs.DistinctHBRs || undo.DistinctLazyHBRs != dfs.DistinctLazyHBRs) {
				t.Errorf("%s HBR coverage disagrees with exhaustive DFS:\n %s=%+v\n dfs=%+v",
					eng.Name(), eng.Name(), countersOf(undo), countersOf(dfs))
			}
			if undo.DistinctStates != dfs.DistinctStates || !reflect.DeepEqual(undo.States, dfs.States) {
				t.Errorf("%s found a different state set than exhaustive DFS (%d vs %d states)",
					eng.Name(), undo.DistinctStates, dfs.DistinctStates)
			}
			if (undo.AssertFailures > 0) != (dfs.AssertFailures > 0) ||
				(undo.Panics > 0) != (dfs.Panics > 0) ||
				(undo.Deadlocks > 0) != (dfs.Deadlocks > 0) ||
				(undo.Races > 0) != (dfs.Races > 0) {
				t.Errorf("%s safety verdicts disagree with exhaustive DFS", eng.Name())
			}
		}
	}

	// Samplers: counting invariant, exact backend identity, and
	// verdict containment against the exhausted space.
	for _, eng := range []Engine{
		NewRandomWalk(3),
		NewPCT(3, 2),
		NewPOS(3),
	} {
		sOpt := func(b BackendKind) Options {
			o := mkOpt(b)
			o.ScheduleLimit = 40
			return o
		}
		undo := eng.Explore(src, sOpt(BackendUndo))
		if err := undo.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendSnapshot))); got != want {
			t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendReplay))); got != want {
			t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendAuto))); got != want {
			t.Errorf("%s: undo and auto backends disagree:\n undo=%+v\n auto=%+v", eng.Name(), got, want)
		}
		if exhausted {
			dfsStates := make(map[string]bool, len(dfs.States))
			for _, s := range dfs.States {
				dfsStates[s] = true
			}
			for _, s := range undo.States {
				if !dfsStates[s] {
					t.Errorf("%s reached terminal state %q that exhaustive DFS never saw", eng.Name(), s)
				}
			}
			if (undo.AssertFailures > 0 && dfs.AssertFailures == 0) ||
				(undo.Panics > 0 && dfs.Panics == 0) ||
				(undo.Deadlocks > 0 && dfs.Deadlocks == 0) ||
				(undo.Races > 0 && dfs.Races == 0) {
				t.Errorf("%s found a violation class exhaustive DFS says cannot occur", eng.Name())
			}
		}
	}
}

// FuzzChanEquivalence is the native fuzz target behind the committed
// corpus in testdata/fuzz/FuzzChanEquivalence: the channel-subsystem
// twin of FuzzEngineEquivalence, over programs built from
// send/recv/close/select.
func FuzzChanEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})                       // lone send
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0})              // send vs blocking recv
	f.Add([]byte{0, 1, 1, 0, 0, 0, 1, 3, 0, 1, 0})  // two channels, close racing a send
	f.Add([]byte{1, 1, 2, 4, 0, 0, 0, 0, 1, 1, 0})  // select vs sends on both channels
	f.Add([]byte{0, 0, 0, 2, 0, 1, 0, 0, 0})        // tryrecv theft then blocking recv
	f.Add([]byte{1, 0, 0, 5, 0, 0, 16, 3, 0, 1, 0}) // recv-into-store, send, close, recv
	f.Add([]byte{0, 1, 9, 4, 1, 4, 0, 0, 0, 3, 1})  // duelling selects with a default arm
	for _, data := range progdsl.FuzzCorpus(8, 2025) {
		f.Add(data)
	}
	f.Fuzz(checkChanEquivalence)
}

// TestChanEquivalenceCorpus replays a bounded deterministic slice of
// the channel input space in the normal -short suite.
func TestChanEquivalenceCorpus(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 30
	}
	for i, data := range progdsl.FuzzCorpus(n, 55) {
		i, data := i, data
		t.Run(fmt.Sprintf("corpus-%03d", i), func(t *testing.T) {
			checkChanEquivalence(t, data)
		})
	}
}

// checkHostileEquivalence is the fault-containment differential
// oracle: decode data with the hostile decoder (panicking and
// diverging thread bodies allowed), then require that
//
//   - every engine × backend run satisfies the counting chain AND the
//     schedule accounting identity (divergences included);
//   - each engine's counters — Divergences and Panics included — are
//     byte-identical across the undo, snapshot, replay and auto backends
//     (progdsl announces divergence deterministically, so there is no
//     wall-clock anywhere in this oracle);
//   - when exhaustive DFS finished with no divergence in the space,
//     the complete engines agree with it exactly as in the healthy
//     oracle, panic verdicts included. A diverging branch is cut at
//     its divergence point, leaving the subtree beyond it legitimately
//     unexplored, so cross-engine state-set equality applies only to
//     divergence-free spaces.
func checkHostileEquivalence(t *testing.T, data []byte) {
	src := progdsl.HostileFromBytes("hostile-fuzz", data)
	if src == nil {
		t.Skip("input too short to decode")
	}
	mkOpt := func(b BackendKind) Options {
		return Options{ScheduleLimit: fuzzProbeLimit, MaxSteps: 500, RecordStates: true, Backend: b}
	}
	accounting := func(name string, r Result) {
		t.Helper()
		if got := r.Terminals + r.Pruned + r.Truncated + r.SleepBlocked + r.Divergences; got != r.Schedules {
			t.Errorf("%s: accounting %d != schedules %d (%+v)", name, got, r.Schedules, r)
		}
	}

	dfs := NewDFS().Explore(src, mkOpt(BackendUndo))
	if err := dfs.CheckInvariant(); err != nil {
		t.Fatalf("dfs: %v", err)
	}
	accounting("dfs", dfs)
	exhausted := !dfs.HitLimit && dfs.Truncated == 0 && dfs.Divergences == 0

	engines := []struct {
		eng          Engine
		fullCoverage bool
	}{
		{NewDFS(), true},
		{NewDPOR(false), true},
		{NewDPOR(true), true},
		{NewLazyDPOR(), false},
		{NewHBRCache(), false},
		{NewLazyHBRCache(), false},
	}
	for _, e := range engines {
		eng := e.eng
		undo := eng.Explore(src, mkOpt(BackendUndo))
		snap := eng.Explore(src, mkOpt(BackendSnapshot))
		repl := eng.Explore(src, mkOpt(BackendReplay))
		if err := undo.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
		accounting(eng.Name(), undo)
		if got, want := countersOf(undo), countersOf(snap); got != want {
			t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(repl); got != want {
			t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, mkOpt(BackendAuto))); got != want {
			t.Errorf("%s: undo and auto backends disagree:\n undo=%+v\n auto=%+v", eng.Name(), got, want)
		}
		if exhausted && !undo.HitLimit && undo.Divergences == 0 {
			if e.fullCoverage &&
				(undo.DistinctHBRs != dfs.DistinctHBRs || undo.DistinctLazyHBRs != dfs.DistinctLazyHBRs) {
				t.Errorf("%s HBR coverage disagrees with exhaustive DFS:\n %s=%+v\n dfs=%+v",
					eng.Name(), eng.Name(), countersOf(undo), countersOf(dfs))
			}
			if undo.DistinctStates != dfs.DistinctStates || !reflect.DeepEqual(undo.States, dfs.States) {
				t.Errorf("%s found a different state set than exhaustive DFS (%d vs %d states)",
					eng.Name(), undo.DistinctStates, dfs.DistinctStates)
			}
			if (undo.AssertFailures > 0) != (dfs.AssertFailures > 0) ||
				(undo.Panics > 0) != (dfs.Panics > 0) ||
				(undo.Deadlocks > 0) != (dfs.Deadlocks > 0) ||
				(undo.Races > 0) != (dfs.Races > 0) {
				t.Errorf("%s safety verdicts disagree with exhaustive DFS", eng.Name())
			}
		}
	}

	// Samplers: counting invariant, accounting identity, and exact
	// backend identity — diverging walks must classify and count the
	// same whichever way the cursor rewinds.
	for _, eng := range []Engine{
		NewRandomWalk(3),
		NewPCT(3, 2),
		NewPOS(3),
	} {
		sOpt := func(b BackendKind) Options {
			o := mkOpt(b)
			o.ScheduleLimit = 40
			return o
		}
		undo := eng.Explore(src, sOpt(BackendUndo))
		if err := undo.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", eng.Name(), err)
		}
		accounting(eng.Name(), undo)
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendSnapshot))); got != want {
			t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendReplay))); got != want {
			t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v", eng.Name(), got, want)
		}
		if got, want := countersOf(undo), countersOf(eng.Explore(src, sOpt(BackendAuto))); got != want {
			t.Errorf("%s: undo and auto backends disagree:\n undo=%+v\n auto=%+v", eng.Name(), got, want)
		}
		if (undo.Panics > 0 && dfs.Panics == 0) ||
			(undo.Divergences > 0 && dfs.Divergences == 0 && !dfs.HitLimit && dfs.Truncated == 0) {
			t.Errorf("%s found a hostile outcome exhaustive DFS says cannot occur", eng.Name())
		}
	}
}

// FuzzHostileEquivalence is the native fuzz target behind the
// committed corpus in testdata/fuzz/FuzzHostileEquivalence: the
// fault-containment twin of FuzzEngineEquivalence, over programs
// whose thread bodies may panic or diverge.
func FuzzHostileEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0x10, 4, 0x00})       // racy conditional panic
	f.Add([]byte{0, 0, 0, 5, 0x02})                // unconditional divergence
	f.Add([]byte{0, 0, 0, 1, 0x10, 5, 0x01})       // racy conditional divergence
	f.Add([]byte{1, 2, 0, 2, 3, 4, 7, 5, 2, 1, 9}) // three threads, mixed hostility
	for _, data := range progdsl.FuzzCorpus(6, 1234) {
		f.Add(data)
	}
	f.Fuzz(checkHostileEquivalence)
}

// TestHostileEquivalenceCorpus replays a bounded deterministic slice
// of the hostile input space in the normal -short suite.
func TestHostileEquivalenceCorpus(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 30
	}
	for i, data := range progdsl.FuzzCorpus(n, 99) {
		i, data := i, data
		t.Run(fmt.Sprintf("corpus-%03d", i), func(t *testing.T) {
			checkHostileEquivalence(t, data)
		})
	}
}
