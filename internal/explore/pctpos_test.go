package explore

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestPCTChangePoints pins the change-point draw: depth d plants d−1
// points, each uniformly in [1, k]; depth 1 (and below) plants none —
// the degenerate pure-priority-walk case — and a degenerate k still
// yields valid points.
func TestPCTChangePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if pts := pctChangePoints(rng, 1, 100); pts != nil {
		t.Errorf("depth 1 planted change points: %v", pts)
	}
	if pts := pctChangePoints(rng, 0, 100); pts != nil {
		t.Errorf("depth 0 planted change points: %v", pts)
	}
	for _, d := range []int{2, 3, 5} {
		const k = 37
		pts := pctChangePoints(rng, d, k)
		if len(pts) != d-1 {
			t.Fatalf("depth %d planted %d points, want %d", d, len(pts), d-1)
		}
		for _, p := range pts {
			if p < 1 || p > k {
				t.Errorf("depth %d: change point %d outside [1, %d]", d, p, k)
			}
		}
	}
	// k < 1 must not panic rand.Intn: the clamp pins every point to 1.
	for _, p := range pctChangePoints(rng, 3, 0) {
		if p != 1 {
			t.Errorf("k=0 change point %d, want 1", p)
		}
	}
	// The draw is deterministic in the rng stream.
	a := pctChangePoints(rand.New(rand.NewSource(7)), 4, 50)
	b := pctChangePoints(rand.New(rand.NewSource(7)), 4, 50)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same rng seed drew different points: %v vs %v", a, b)
	}
}

// TestEstimateEvents: the probe measures the deterministic schedule's
// length, is bounded by maxSteps, and never reports less than 1.
func TestEstimateEvents(t *testing.T) {
	src := curatedDeadlockable()
	k := estimateEvents(nil, src, model.MachineConfig{}, 2000)
	if k < 1 {
		t.Fatalf("estimate %d, want >= 1", k)
	}
	if k2 := estimateEvents(nil, src, model.MachineConfig{}, 2000); k2 != k {
		t.Errorf("probe not deterministic: %d vs %d", k, k2)
	}
	if capped := estimateEvents(nil, src, model.MachineConfig{}, 3); capped > 3 {
		t.Errorf("estimate %d exceeds the maxSteps bound 3", capped)
	}
}

// TestPCTPOSSeedReproducible: two runs of the same seeded engine under
// the same options produce byte-identical Results — walk i is a pure
// function of (seed, i) and the program — while a different seed walks
// a different sample (its per-walk rng streams differ even when the
// aggregate counters happen to coincide).
func TestPCTPOSSeedReproducible(t *testing.T) {
	src := curatedDeadlockable()
	opt := Options{ScheduleLimit: 60, MaxSteps: 2000, RecordStates: true}
	for _, mk := range []func(seed int64) Engine{
		func(seed int64) Engine { return NewPCT(seed, 3) },
		func(seed int64) Engine { return NewPOS(seed) },
	} {
		a := mk(5).Explore(src, opt)
		b := mk(5).Explore(src, opt)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different Results:\n a=%+v\n b=%+v", a.Engine, a, b)
		}
		if err := a.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", a.Engine, err)
		}
	}
}

// TestPCTDepthMatchesBugDepth exercises the defining property of PCT:
// the lock-order-inversion deadlock is a depth-2 bug (it needs one
// preemption inside a critical section), so d = 1 — a pure priority
// walk that never preempts a runnable thread — provably cannot find
// it, while d = 2 plants exactly the change point it needs and cracks
// it within a modest budget.
func TestPCTDepthMatchesBugDepth(t *testing.T) {
	src := curatedDeadlockable()
	opt := Options{ScheduleLimit: 200, MaxSteps: 2000}
	if res := NewPCT(1, 1).Explore(src, opt); res.Deadlocks != 0 {
		t.Errorf("pct d=1 never preempts, yet found %d deadlocks of a depth-2 bug", res.Deadlocks)
	}
	if res := NewPCT(1, 2).Explore(src, opt); res.Deadlocks == 0 {
		t.Error("pct d=2 (seed 1, 200 walks) should hit the depth-2 deadlock")
	}
	// Depth below 1 clamps to the degenerate d=1 engine.
	if got, want := NewPCT(1, 0).Name(), NewPCT(1, 1).Name(); got != want {
		t.Errorf("depth clamp: name %q, want %q", got, want)
	}
}

// TestPCTPOSFindViolations: both samplers crack the curated deadlock
// within a modest budget and report it through the standard first-bug
// fields; the engine names embed the seed so recorded Results identify
// the reproducible configuration.
func TestPCTPOSFindViolations(t *testing.T) {
	src := curatedDeadlockable()
	opt := Options{ScheduleLimit: 200, MaxSteps: 2000, StopAtFirstBug: true}
	for eng, wantName := range map[Engine]string{
		NewPCT(1, 3): "pct3[s1]",
		NewPOS(1):    "pos[s1]",
	} {
		if eng.Name() != wantName {
			t.Errorf("engine name %q, want %q", eng.Name(), wantName)
		}
		res := eng.Explore(src, opt)
		if res.FirstViolation == nil || res.ViolationKind != "deadlock" {
			t.Errorf("%s: violation not captured: kind=%q", eng.Name(), res.ViolationKind)
			continue
		}
		if res.HitLimit {
			t.Errorf("%s: first-bug stop must not report HitLimit", eng.Name())
		}
		if res.FirstBugSchedule < 1 || res.FirstBugSchedule > res.Schedules {
			t.Errorf("%s: FirstBugSchedule %d outside [1, %d]", eng.Name(), res.FirstBugSchedule, res.Schedules)
		}
		// The recorded schedule replays to the deadlock — the property
		// the counterexample pipeline depends on.
		c := newCursor(src, Options{MaxSteps: 2000})
		for _, tid := range res.FirstViolation {
			c.step(tid)
		}
		if !c.m.Deadlocked() {
			t.Errorf("%s: recorded first-violation schedule does not replay to the deadlock", eng.Name())
		}
		c.close()
	}
}

// TestPCTPOSBudgetSemantics: the walk budget mirrors the random-walk
// baseline — ScheduleLimit walks run, HitLimit marks the exhausted
// budget, and the walk count is exact.
func TestPCTPOSBudgetSemantics(t *testing.T) {
	src := curatedMixedMutexVar()
	opt := Options{ScheduleLimit: 25, MaxSteps: 2000}
	for _, eng := range []Engine{NewPCT(2, 3), NewPOS(2)} {
		res := eng.Explore(src, opt)
		if res.Schedules != 25 {
			t.Errorf("%s: %d schedules, want exactly 25", eng.Name(), res.Schedules)
		}
		if !res.HitLimit {
			t.Errorf("%s: exhausted walk budget must set HitLimit", eng.Name())
		}
		if !strings.Contains(res.Engine, "[s2]") {
			t.Errorf("%s: recorded engine %q does not carry the seed", eng.Name(), res.Engine)
		}
	}
}
