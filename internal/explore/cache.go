package explore

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hb"
	"repro/internal/model"
)

// Cache is a fingerprint-membership set used by the caching engines to
// prune prefixes whose (lazy) HBR has been covered. Implementations may
// be engine-local or shared between concurrently running engine
// instances exploring disjoint parts of one schedule space.
type Cache interface {
	// Add inserts fp and reports whether it was absent (true = fresh).
	Add(fp hb.Fingerprint) bool
}

// mapCache is the engine-local, single-goroutine Cache.
type mapCache map[hb.Fingerprint]struct{}

func (c mapCache) Add(fp hb.Fingerprint) bool {
	if _, ok := c[fp]; ok {
		return false
	}
	c[fp] = struct{}{}
	return true
}

// cacheShards is the stripe count of the concurrent containers. Power
// of two so the modulo compiles to a mask; 64 stripes keep contention
// negligible at any realistic worker count.
const cacheShards = 64

// ShardedCache is a lock-striped Cache safe for concurrent use by many
// exploration workers. Fingerprints are already uniformly distributed
// 128-bit hashes, so the low bits pick the stripe directly.
type ShardedCache struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[hb.Fingerprint]struct{}
	}
	n atomic.Int64
}

// NewShardedCache returns an empty concurrent fingerprint cache.
func NewShardedCache() *ShardedCache {
	c := &ShardedCache{}
	for i := range c.shards {
		c.shards[i].m = map[hb.Fingerprint]struct{}{}
	}
	return c
}

// Add implements Cache.
func (c *ShardedCache) Add(fp hb.Fingerprint) bool {
	s := &c.shards[fp[0]%cacheShards]
	s.mu.Lock()
	_, dup := s.m[fp]
	if !dup {
		s.m[fp] = struct{}{}
	}
	s.mu.Unlock()
	if !dup {
		c.n.Add(1)
	}
	return !dup
}

// Len returns the number of distinct fingerprints added.
func (c *ShardedCache) Len() int { return int(c.n.Load()) }

// sigSet is one lock-striped set of binary state digests — the hot
// container behind #states. Digests are uniformly distributed 128-bit
// hashes, so the low bits pick the stripe directly.
type sigSet struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[model.StateSig]struct{}
	}
	n atomic.Int64
}

func newSigSet() *sigSet {
	s := &sigSet{}
	for i := range s.shards {
		s.shards[i].m = map[model.StateSig]struct{}{}
	}
	return s
}

func (s *sigSet) add(sig model.StateSig) bool {
	sh := &s.shards[sig[0]%cacheShards]
	sh.mu.Lock()
	_, dup := sh.m[sig]
	if !dup {
		sh.m[sig] = struct{}{}
	}
	sh.mu.Unlock()
	if !dup {
		s.n.Add(1)
	}
	return !dup
}

func (s *sigSet) len() int { return int(s.n.Load()) }

// stringSet is one lock-striped set of state keys, used only for the
// diagnostic Options.RecordStates sets.
type stringSet struct {
	shards [cacheShards]struct {
		mu sync.Mutex
		m  map[string]struct{}
	}
	n atomic.Int64
}

func newStringSet() *stringSet {
	s := &stringSet{}
	for i := range s.shards {
		s.shards[i].m = map[string]struct{}{}
	}
	return s
}

func (s *stringSet) add(key string) bool {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	sh := &s.shards[h%cacheShards]
	sh.mu.Lock()
	_, dup := sh.m[key]
	if !dup {
		sh.m[key] = struct{}{}
	}
	sh.mu.Unlock()
	if !dup {
		s.n.Add(1)
	}
	return !dup
}

func (s *stringSet) len() int { return int(s.n.Load()) }

func (s *stringSet) sorted() []string {
	var out []string
	for i := range s.shards {
		s.shards[i].mu.Lock()
		for k := range s.shards[i].m {
			out = append(out, k)
		}
		s.shards[i].mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// dedupSink abstracts the recorder's distinctness sets: localDedup
// for engine-local runs, the lock-striped Dedup when shared between
// workers. States deduplicate on binary digests; the string key of a
// state is rendered and recorded (RecordStateKey) only for fresh
// digests and only under Options.RecordStates.
type dedupSink interface {
	AddHBR(fp hb.Fingerprint) bool
	AddLazy(fp hb.Fingerprint) bool
	AddState(sig model.StateSig) bool
	RecordStateKey(key string)
	SortedStates() []string
}

// localDedup is the plain, single-goroutine sink — three map inserts
// per terminal, no striping or atomics on the sequential hot path.
type localDedup struct {
	hbrs, lazies map[hb.Fingerprint]struct{}
	states       map[model.StateSig]struct{}
	stateKeys    []string
}

func newLocalDedup() *localDedup {
	return &localDedup{
		hbrs:   map[hb.Fingerprint]struct{}{},
		lazies: map[hb.Fingerprint]struct{}{},
		states: map[model.StateSig]struct{}{},
	}
}

func addKey[K comparable](m map[K]struct{}, k K) bool {
	if _, dup := m[k]; dup {
		return false
	}
	m[k] = struct{}{}
	return true
}

func (d *localDedup) AddHBR(fp hb.Fingerprint) bool    { return addKey(d.hbrs, fp) }
func (d *localDedup) AddLazy(fp hb.Fingerprint) bool   { return addKey(d.lazies, fp) }
func (d *localDedup) AddState(sig model.StateSig) bool { return addKey(d.states, sig) }
func (d *localDedup) RecordStateKey(key string)        { d.stateKeys = append(d.stateKeys, key) }

func (d *localDedup) SortedStates() []string {
	out := append([]string(nil), d.stateKeys...)
	sort.Strings(out)
	return out
}

// fpSet is one lock-striped set of fingerprints with exact cardinality.
type fpSet struct{ c ShardedCache }

// Dedup holds the distinctness sets behind a Result's #HBRs,
// #lazy HBRs and #states counters. A Dedup shared between concurrently
// running engine instances (via Options.Dedup) makes the merged counts
// exact: each terminal execution is attributed to exactly one worker,
// and the sets deduplicate globally. States deduplicate on 128-bit
// binary digests; the human-readable key set is populated only under
// Options.RecordStates.
type Dedup struct {
	hbrs   fpSet
	lazies fpSet
	states *sigSet
	keys   *stringSet
}

// NewDedup returns an empty shared distinctness tracker.
func NewDedup() *Dedup {
	d := &Dedup{states: newSigSet(), keys: newStringSet()}
	for i := range d.hbrs.c.shards {
		d.hbrs.c.shards[i].m = map[hb.Fingerprint]struct{}{}
		d.lazies.c.shards[i].m = map[hb.Fingerprint]struct{}{}
	}
	return d
}

// AddHBR, AddLazy and AddState insert into the respective set and
// report freshness.
func (d *Dedup) AddHBR(fp hb.Fingerprint) bool    { return d.hbrs.c.Add(fp) }
func (d *Dedup) AddLazy(fp hb.Fingerprint) bool   { return d.lazies.c.Add(fp) }
func (d *Dedup) AddState(sig model.StateSig) bool { return d.states.add(sig) }

// RecordStateKey stores the rendered key of a state whose digest was
// fresh; exactly one worker records each distinct state.
func (d *Dedup) RecordStateKey(key string) { d.keys.add(key) }

// Counts returns the exact current cardinalities (hbrs, lazies,
// states).
func (d *Dedup) Counts() (int, int, int) {
	return d.hbrs.c.Len(), d.lazies.c.Len(), d.states.len()
}

// SortedStates returns the distinct terminal state keys recorded under
// RecordStates, sorted.
func (d *Dedup) SortedStates() []string { return d.keys.sorted() }

// Budget is a schedule budget shared between concurrently running
// engine instances: the parallel analogue of Options.ScheduleLimit.
// Each completed execution consumes one token; the execution that
// drains the last token stops its engine with HitLimit set, matching
// the sequential `schedules >= limit` exit. Because the token is
// taken after the execution ran, concurrent workers can overrun the
// limit by at most workers−1 schedules.
type Budget struct {
	remaining atomic.Int64
}

// NewBudget returns a budget of n schedules; n <= 0 means unlimited
// (returns nil, which every consumer treats as no budget).
func NewBudget(n int) *Budget {
	if n <= 0 {
		return nil
	}
	b := &Budget{}
	b.remaining.Store(int64(n))
	return b
}

// take consumes one token and reports whether tokens remain afterwards
// (false on the draining take, so the consumer stops like a sequential
// engine reaching its limit).
func (b *Budget) take() bool { return b.remaining.Add(-1) > 0 }

// Exhausted reports whether the budget has run out.
func (b *Budget) Exhausted() bool { return b.remaining.Load() <= 0 }
