package explore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/hb"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// terminalInfo captures what the theorems talk about: one terminal
// execution's partial orders and final state.
type terminalInfo struct {
	hbFP     hb.Fingerprint
	lazyFP   hb.Fingerprint
	stateKey string
	choices  []event.ThreadID
}

// forEachTerminal enumerates maximal schedules of src depth-first and
// invokes fn on each, stopping after cap terminals. It reports whether
// the whole schedule space was exhausted; the theorems are pairwise
// properties, so validating a prefix sample is still meaningful when
// the space is too large.
func forEachTerminal(t *testing.T, src model.Source, cap int, fn func(terminalInfo)) (exhausted bool) {
	t.Helper()
	c := newCursor(src, Options{MaxSteps: 2000})
	defer c.close()
	count := 0
	report := func() bool {
		count++
		fn(terminalInfo{
			hbFP:     c.tr.HBFingerprint(),
			lazyFP:   c.tr.LazyFingerprint(),
			stateKey: c.m.StateKey(),
			choices:  append([]event.ThreadID(nil), c.choices...),
		})
		return count < cap
	}
	var stack []dfsNode
	descend := func() bool {
		for {
			en := c.enabled()
			if len(en) == 0 {
				return report()
			}
			if c.truncated() {
				t.Fatalf("%s: truncated during exhaustive enumeration", src.Name())
			}
			stack = append(stack, dfsNode{enabled: append([]event.ThreadID(nil), en...), next: 1})
			c.step(en[0])
		}
	}
	if !descend() {
		return false
	}
	for len(stack) > 0 {
		d := len(stack) - 1
		n := &stack[d]
		if n.next >= len(n.enabled) {
			stack = stack[:d]
			continue
		}
		tid := n.enabled[n.next]
		n.next++
		c.resetTo(d)
		c.step(tid)
		if !descend() {
			return false
		}
	}
	return true
}

// checkTheorems validates, over the full schedule space of src:
//
//   - Theorem 2.1: equal HBR ⇒ equal final state;
//   - Theorem 2.2: equal lazy HBR ⇒ equal final state;
//   - refinement: equal HBR ⇒ equal lazy HBR;
//   - the counting chain #states ≤ #lazyHBRs ≤ #HBRs ≤ #schedules.
func checkTheorems(t *testing.T, src model.Source, cap int) (schedules, hbrs, lazies, states int) {
	t.Helper()
	hbrState := map[hb.Fingerprint]string{}
	lazyState := map[hb.Fingerprint]string{}
	hbrLazy := map[hb.Fingerprint]hb.Fingerprint{}
	stateSet := map[string]struct{}{}
	exhaustedNote := forEachTerminal(t, src, cap, func(info terminalInfo) {
		schedules++
		stateSet[info.stateKey] = struct{}{}
		if prev, ok := hbrState[info.hbFP]; ok {
			if prev != info.stateKey {
				t.Fatalf("%s: THEOREM 2.1 VIOLATED: same HBR, different states\n  %s\n  %s\n  schedule: %v",
					src.Name(), prev, info.stateKey, info.choices)
			}
		} else {
			hbrState[info.hbFP] = info.stateKey
		}
		if prev, ok := lazyState[info.lazyFP]; ok {
			if prev != info.stateKey {
				t.Fatalf("%s: THEOREM 2.2 VIOLATED: same lazy HBR, different states\n  %s\n  %s\n  schedule: %v",
					src.Name(), prev, info.stateKey, info.choices)
			}
		} else {
			lazyState[info.lazyFP] = info.stateKey
		}
		if prev, ok := hbrLazy[info.hbFP]; ok {
			if prev != info.lazyFP {
				t.Fatalf("%s: same HBR mapped to two different lazy HBRs", src.Name())
			}
		} else {
			hbrLazy[info.hbFP] = info.lazyFP
		}
	})
	_ = exhaustedNote
	hbrs, lazies, states = len(hbrState), len(lazyState), len(stateSet)
	if !(states <= lazies && lazies <= hbrs && hbrs <= schedules) {
		t.Fatalf("%s: counting chain violated: states=%d lazy=%d hbr=%d schedules=%d",
			src.Name(), states, lazies, hbrs, schedules)
	}
	return schedules, hbrs, lazies, states
}

// TestTheoremsOnCuratedPrograms validates both theorems on hand-picked
// programs covering each edge type: mutex-only interaction, variable
// conflicts, spawn/join, deadlocking locks and mixed workloads.
func TestTheoremsOnCuratedPrograms(t *testing.T) {
	programs := []func() *progdsl.Program{
		curatedFigure1,
		curatedDisjointLocks,
		curatedSharedCounter,
		curatedSpawnJoinTree,
		curatedDeadlockable,
		curatedMixedMutexVar,
	}
	for _, build := range programs {
		p := build()
		t.Run(p.Name(), func(t *testing.T) {
			s, h, l, st := checkTheorems(t, p, 500000)
			t.Logf("%s: schedules=%d hbrs=%d lazy=%d states=%d", p.Name(), s, h, l, st)
		})
	}
}

func curatedFigure1() *progdsl.Program {
	b := progdsl.New("curated-figure1").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	z := b.Var("z")
	m := b.Mutex("m")
	t1 := b.Thread()
	t1.Lock(m).Read(0, x).Unlock(m).WriteConst(y, 1)
	t2 := b.Thread()
	t2.WriteConst(z, 1).Lock(m).Read(0, x).Unlock(m)
	return b.Build()
}

func curatedDisjointLocks() *progdsl.Program {
	b := progdsl.New("curated-disjoint-locks").AutoStart()
	g := b.Mutex("g")
	a := b.Var("a")
	c := b.Var("c")
	t1 := b.Thread()
	t1.Lock(g).Read(0, a).AddConst(0, 0, 1).Write(a, 0).Unlock(g)
	t2 := b.Thread()
	t2.Lock(g).Read(0, c).AddConst(0, 0, 2).Write(c, 0).Unlock(g)
	return b.Build()
}

func curatedSharedCounter() *progdsl.Program {
	b := progdsl.New("curated-shared-counter").AutoStart()
	x := b.Var("x")
	for i := 0; i < 3; i++ {
		th := b.Thread()
		th.Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	}
	return b.Build()
}

func curatedSpawnJoinTree() *progdsl.Program {
	b := progdsl.New("curated-spawnjoin")
	x := b.Var("x")
	y := b.Var("y")
	main := b.Thread()
	c1 := b.Thread()
	c1.WriteConst(x, 1)
	c2 := b.Thread()
	c2.WriteConst(y, 2)
	main.Spawn(c1).Spawn(c2).Join(c1).Join(c2).Read(0, x).Read(1, y)
	return b.Build()
}

func curatedDeadlockable() *progdsl.Program {
	b := progdsl.New("curated-deadlockable").AutoStart()
	m0 := b.Mutex("m0")
	m1 := b.Mutex("m1")
	b.Thread().Lock(m0).Lock(m1).Unlock(m1).Unlock(m0)
	b.Thread().Lock(m1).Lock(m0).Unlock(m0).Unlock(m1)
	return b.Build()
}

func curatedMixedMutexVar() *progdsl.Program {
	b := progdsl.New("curated-mixed").AutoStart()
	g := b.Mutex("g")
	priv0 := b.Var("p0")
	priv1 := b.Var("p1")
	shared := b.Var("s")
	t1 := b.Thread()
	t1.Lock(g).WriteConst(priv0, 1).Unlock(g).Read(0, shared)
	t2 := b.Thread()
	t2.Lock(g).WriteConst(priv1, 1).Unlock(g).WriteConst(shared, 9)
	return b.Build()
}

// curatedChanRace: two senders race for a 1-slot buffer while the
// consumer drains both and mixes the first value into a shared store —
// channel and variable dependence in one program.
func curatedChanRace() *progdsl.Program {
	b := progdsl.New("curated-chan-race").AutoStart()
	c := b.Chan("c", 1)
	out := b.Var("out")
	b.Thread().SendConst(c, 1)
	b.Thread().SendConst(c, 2)
	t := b.Thread()
	t.Recv(0, 1, c).Write(out, 0).Recv(2, 1, c)
	return b.Build()
}

// curatedChanCloseRace: a close racing a send on a buffered channel
// (panic in close-first schedules) with a receiver draining whichever
// outcome — every channel verdict class in four events.
func curatedChanCloseRace() *progdsl.Program {
	b := progdsl.New("curated-chan-close-race").AutoStart()
	c := b.Chan("c", 1)
	b.Thread().SendConst(c, 3)
	b.Thread().Close(c)
	b.Thread().Recv(0, 1, c)
	return b.Build()
}

// curatedChanSelect: a select multiplexing two producers on distinct
// channels, then non-blocking drains of both — committed selects must
// join every case channel's total order for the engines to agree.
func curatedChanSelect() *progdsl.Program {
	b := progdsl.New("curated-chan-select").AutoStart()
	ca := b.Chan("ca", 1)
	cb := b.Chan("cb", 1)
	b.Thread().SendConst(ca, 1)
	b.Thread().SendConst(cb, 2)
	t := b.Thread()
	t.Select(0, 1, 2, false, ca, cb)
	t.TryRecv(0, 1, ca)
	t.TryRecv(0, 1, cb)
	return b.Build()
}

// genRandomProgram is the property-based generator: small programs
// with well-nested critical sections, mixed private/shared accesses
// and bounded length, guaranteed to terminate.
func genRandomProgram(seed int64) *progdsl.Program {
	rng := rand.New(rand.NewSource(seed))
	nthreads := 2 + rng.Intn(2)
	nvars := 1 + rng.Intn(3)
	nmutex := 1 + rng.Intn(2)
	b := progdsl.New(fmt.Sprintf("random-%d", seed)).AutoStart()
	vars := b.VarArray("v", nvars)
	mus := b.MutexArray("m", nmutex)
	for tid := 0; tid < nthreads; tid++ {
		th := b.Thread()
		ops := 2 + rng.Intn(4)
		for k := 0; k < ops; k++ {
			v := vars.At(rng.Intn(nvars))
			switch rng.Intn(4) {
			case 0:
				th.Read(0, v)
			case 1:
				th.WriteConst(v, int64(rng.Intn(4)))
			case 2:
				th.Read(0, v)
				th.AddConst(0, 0, 1)
				th.Write(v, 0)
			default:
				m := mus.At(rng.Intn(nmutex))
				th.Lock(m)
				if rng.Intn(2) == 0 {
					th.Read(1, v)
				} else {
					th.WriteConst(v, int64(rng.Intn(4)))
				}
				th.Unlock(m)
			}
		}
	}
	return b.Build()
}

// TestTheoremsOnRandomPrograms is the property-based validation: 60
// seeded random programs, exhaustively enumerated, must satisfy
// Theorems 2.1 and 2.2 and the counting chain.
func TestTheoremsOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration is slow in -short mode")
	}
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			checkTheorems(t, genRandomProgram(seed), 20000)
		})
	}
}

// ablationCounters projects a Result onto every schedule-determined
// counter. Events is reported separately: the replay backend re-executes
// retained prefixes, so its event total legitimately differs.
type ablationCounters struct {
	Schedules, Terminals, Pruned, Truncated, SleepBlocked, Divergences int
	DistinctHBRs, DistinctLazyHBRs, DistinctStates                     int
	Deadlocks, AssertFailures, Panics, LockErrors, Races, MaxDepth     int
	HitLimit, Interrupted                                              bool
	ViolationKind                                                      string
	FirstViolation                                                     string
}

func countersOf(r Result) ablationCounters {
	return ablationCounters{
		Schedules: r.Schedules, Terminals: r.Terminals, Pruned: r.Pruned,
		Truncated: r.Truncated, SleepBlocked: r.SleepBlocked, Divergences: r.Divergences,
		DistinctHBRs: r.DistinctHBRs, DistinctLazyHBRs: r.DistinctLazyHBRs,
		DistinctStates: r.DistinctStates,
		Deadlocks:      r.Deadlocks, AssertFailures: r.AssertFailures, Panics: r.Panics,
		LockErrors: r.LockErrors, Races: r.Races, MaxDepth: r.MaxDepth,
		HitLimit: r.HitLimit, Interrupted: r.Interrupted,
		ViolationKind:  r.ViolationKind,
		FirstViolation: fmt.Sprint(r.FirstViolation),
	}
}

// TestBackendAblationExact is the exactness contract of the
// copy-on-write exploration backend: for every engine and every zoo
// program, the undo-log backend (machine + tracker undo logs), the
// legacy deep-snapshot backend, pure replay (the DisableSnapshots
// ablation mode) and the adaptive auto backend must report
// byte-identical Result counters — including the first-bug schedule.
// Between the two non-replay backends even the Events total must match
// (neither re-executes a prefix); auto is exempt from that one check
// because it may settle on replay mid-run.
func TestBackendAblationExact(t *testing.T) {
	engines := []struct {
		eng   Engine
		limit int
	}{
		{NewDFS(), 0},
		{NewDPOR(false), 0},
		{NewDPOR(true), 0},
		{NewHBRCache(), 0},
		{NewLazyHBRCache(), 0},
		{NewLazyDPOR(), 0},
		{NewPreemptionBounded(2), 0},
		{NewPreemptionBoundedCache(2, true), 0},
		{NewDelayBounded(2), 0},
		{NewRandomWalk(11), 60},
	}
	for _, src := range soundnessZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			for _, e := range engines {
				mkOpt := func(b BackendKind) Options {
					return Options{MaxSteps: 2000, ScheduleLimit: e.limit, Backend: b}
				}
				undo := e.eng.Explore(src, mkOpt(BackendUndo))
				snap := e.eng.Explore(src, mkOpt(BackendSnapshot))
				repl := e.eng.Explore(src, mkOpt(BackendReplay))
				if got, want := countersOf(undo), countersOf(snap); got != want {
					t.Errorf("%s: undo and snapshot backends disagree:\n undo=%+v\n snap=%+v",
						e.eng.Name(), got, want)
				}
				if undo.Events != snap.Events {
					t.Errorf("%s: undo executed %d events, snapshot %d (neither replays)",
						e.eng.Name(), undo.Events, snap.Events)
				}
				if got, want := countersOf(undo), countersOf(repl); got != want {
					t.Errorf("%s: undo and replay backends disagree:\n undo=%+v\n repl=%+v",
						e.eng.Name(), got, want)
				}
				auto := e.eng.Explore(src, mkOpt(BackendAuto))
				if got, want := countersOf(auto), countersOf(undo); got != want {
					t.Errorf("%s: auto backend disagrees with undo:\n auto=%+v\n undo=%+v",
						e.eng.Name(), got, want)
				}
			}
		})
	}
}

// TestBackendResolution pins the backend-selection rules: auto starts
// on the undo log for snapshottable programs (and stays free to settle
// on replay adaptively), DisableSnapshots forces replay and takes
// precedence over any explicit Backend, and explicit requests are
// honoured.
func TestBackendResolution(t *testing.T) {
	src := curatedFigure1()
	for _, tc := range []struct {
		opt  Options
		want BackendKind
		auto bool // BackendAuto measurement still pending
	}{
		{Options{}, BackendUndo, true},
		{Options{Backend: BackendUndo}, BackendUndo, false},
		{Options{Backend: BackendSnapshot}, BackendSnapshot, false},
		{Options{Backend: BackendReplay}, BackendReplay, false},
		{Options{DisableSnapshots: true}, BackendReplay, false},
		{Options{DisableSnapshots: true, Backend: BackendUndo}, BackendReplay, false},
		{Options{DisableSnapshots: true, Backend: BackendSnapshot}, BackendReplay, false},
		// Subtree searches and work-steal workers keep the undo
		// backend without adapting, so seed export stays uniform.
		{Options{Prefix: []event.ThreadID{0}}, BackendUndo, false},
	} {
		c := newCursor(src, tc.opt)
		if c.backend != tc.want {
			t.Errorf("options %+v resolved to backend %v, want %v", tc.opt, c.backend, tc.want)
		}
		if c.autoPending != tc.auto {
			t.Errorf("options %+v: autoPending %v, want %v", tc.opt, c.autoPending, tc.auto)
		}
		c.close()
	}
}

// TestAutoBackendAdapts drives the two backtrack shapes through a
// BackendAuto cursor: sampler-style resets to the root make replay the
// winner (nothing retained to re-execute, so undo's per-step logging
// is pure overhead), while DFS-style frontier pops keep the undo log
// (replay would re-execute almost the whole schedule per pop). Either
// way the measurement phase ends after autoProbeResets.
func TestAutoBackendAdapts(t *testing.T) {
	src := curatedSharedCounter()
	walkToEnd := func(c *cursor) {
		for {
			en := c.enabled()
			if len(en) == 0 || c.truncated() {
				return
			}
			c.step(en[0])
		}
	}

	c := newCursor(src, Options{MaxSteps: 2000})
	if !c.autoPending {
		t.Fatalf("auto cursor not in measurement phase")
	}
	for i := 0; i < autoProbeResets; i++ {
		walkToEnd(c)
		c.resetTo(0)
	}
	if c.autoPending || c.backend != BackendReplay {
		t.Errorf("straight-line resets: backend %v (pending %v), want replay",
			c.backend, c.autoPending)
	}
	walkToEnd(c) // still explores fine after the switch
	c.close()

	c = newCursor(src, Options{MaxSteps: 2000})
	for i := 0; i < autoProbeResets; i++ {
		walkToEnd(c)
		c.resetTo(c.depth() - 1)
	}
	if c.autoPending || c.backend != BackendUndo {
		t.Errorf("frontier pops: backend %v (pending %v), want undo",
			c.backend, c.autoPending)
	}
	c.close()
}

// TestLazyNeverCoarserThanStates double-checks the paper's central
// claim quantitatively on programs designed to maximise mutex-induced
// redundancy: the lazy HBR count equals the state count exactly when
// critical sections commute.
func TestLazyNeverCoarserThanStates(t *testing.T) {
	p := curatedDisjointLocks()
	schedules, hbrs, lazies, states := checkTheorems(t, p, 100000)
	if lazies != 1 || states != 1 {
		t.Errorf("disjoint locks: lazy=%d states=%d, want 1/1", lazies, states)
	}
	if hbrs != 2 {
		t.Errorf("disjoint locks: hbrs=%d, want 2 (two lock orders)", hbrs)
	}
	if schedules < hbrs {
		t.Errorf("schedules (%d) must cover all HBRs (%d)", schedules, hbrs)
	}
	// Figure 1 has events outside the critical sections, so it
	// shows strictly more schedules than HBR classes.
	f1schedules, f1hbrs, _, _ := checkTheorems(t, curatedFigure1(), 100000)
	if f1schedules <= f1hbrs {
		t.Errorf("figure1: expected schedules (%d) > HBRs (%d)", f1schedules, f1hbrs)
	}
}
