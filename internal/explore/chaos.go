package explore

import (
	"fmt"
	"sync/atomic"

	"repro/internal/model"
)

// TransientError marks a fault as retryable: a campaign worker that
// recovers a panic whose value is (or wraps) a TransientError treats
// the attempt as transient infrastructure failure and retries the cell
// within its retry budget, instead of quarantining it. Engines and
// embedder callbacks panic with it to signal "try again".
type TransientError struct {
	Msg string
}

// Error implements error.
func (e TransientError) Error() string { return "transient: " + e.Msg }

// chaosEngine is the fault-injection engine behind the "chaos" spec:
// it misbehaves on purpose — panicking, stalling until cancelled,
// hanging past cancellation, or failing transiently N times before
// delegating to a real DFS — so the campaign runner's containment
// (panic recovery, cell deadlines, bounded retry) can be exercised and
// tested without a hostile program. It contributes nothing to the
// default grid.
type chaosEngine struct {
	mode string
	n    int
	// calls counts Explore invocations on this instance. The flaky
	// mode keys off it, so retry semantics require the campaign runner
	// to build the engine once per cell and reuse it across attempts.
	// Atomic: an abandoned attempt's goroutine may still be running
	// when the next attempt starts.
	calls atomic.Int64
}

// Chaos modes.
const (
	// ChaosPanic panics deterministically inside Explore.
	ChaosPanic = "panic"
	// ChaosStall blocks until Options.Ctx is cancelled, then reports an
	// interrupted empty result — a cell that consumes its whole
	// deadline but shuts down cleanly.
	ChaosStall = "stall"
	// ChaosHang blocks forever, ignoring cancellation — a cell whose
	// attempt goroutine must be abandoned by the runner's watchdog.
	ChaosHang = "hang"
	// ChaosFlaky panics with a TransientError on the first N Explore
	// calls of the instance, then delegates to a fresh DFS.
	ChaosFlaky = "flaky"
)

// NewChaos returns a fault-injection engine. Modes: ChaosPanic,
// ChaosStall, ChaosHang, ChaosFlaky (n = number of leading transient
// failures; the other modes ignore n).
func NewChaos(mode string, n int) (Engine, error) {
	switch mode {
	case ChaosPanic, ChaosStall, ChaosHang, ChaosFlaky:
	default:
		return nil, fmt.Errorf("chaos mode %q (want panic, stall, hang or flaky)", mode)
	}
	if n < 0 {
		return nil, fmt.Errorf("chaos failure count %d (want >= 0)", n)
	}
	return &chaosEngine{mode: mode, n: n}, nil
}

// Name implements Engine.
func (e *chaosEngine) Name() string { return "chaos" }

// Explore implements Engine by misbehaving according to the mode.
func (e *chaosEngine) Explore(src model.Source, opt Options) Result {
	call := e.calls.Add(1)
	switch e.mode {
	case ChaosPanic:
		panic(fmt.Sprintf("chaos: injected fault in %s", src.Name()))
	case ChaosStall:
		if opt.Ctx != nil {
			<-opt.Ctx.Done()
		}
		return Result{Program: src.Name(), Engine: e.Name(), Interrupted: true}
	case ChaosHang:
		<-make(chan struct{})
	case ChaosFlaky:
		if call <= int64(e.n) {
			panic(TransientError{Msg: fmt.Sprintf("chaos: injected flake %d/%d in %s", call, e.n, src.Name())})
		}
	}
	res := NewDFS().Explore(src, opt)
	res.Engine = e.Name()
	return res
}
