package explore

import (
	"testing"

	"repro/internal/event"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// TestCachingPrunesAcrossBranches: the cache is global across the DFS,
// so a prefix reached via a different interleaving with the same
// partial order is cut immediately.
func TestCachingPrunesAcrossBranches(t *testing.T) {
	// Two independent writers: both interleavings have the same HBR,
	// so regular caching completes the first schedule and prunes the
	// second after a single event.
	b := progdsl.New("indep").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(y, 1)
	res := NewHBRCache().Explore(b.Build(), Options{})
	if res.Terminals != 1 {
		t.Errorf("terminals = %d, want 1", res.Terminals)
	}
	if res.Pruned != 1 {
		t.Errorf("pruned = %d, want 1", res.Pruned)
	}
	if res.Schedules != 2 {
		t.Errorf("schedules = %d, want 2 (one complete + one pruned)", res.Schedules)
	}
}

// TestCachingDistinguishesConflicts: conflicting accesses have distinct
// HBRs in each order, so nothing is pruned and both schedules complete.
func TestCachingDistinguishesConflicts(t *testing.T) {
	b := progdsl.New("conflict").AutoStart()
	x := b.Var("x")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(x, 2)
	res := NewHBRCache().Explore(b.Build(), Options{})
	if res.Terminals != 2 || res.Pruned != 0 {
		t.Errorf("terminals=%d pruned=%d, want 2/0", res.Terminals, res.Pruned)
	}
}

// TestLazyCachingPrunesMutexOrders: the defining difference — lock
// orders prune under the lazy relation but not under the regular one.
func TestLazyCachingPrunesMutexOrders(t *testing.T) {
	src := curatedDisjointLocks()
	reg := NewHBRCache().Explore(src, Options{})
	lazy := NewLazyHBRCache().Explore(src, Options{})
	if reg.Terminals != 2 {
		t.Errorf("regular caching completed %d, want 2 (one per lock order)", reg.Terminals)
	}
	if lazy.Terminals != 1 {
		t.Errorf("lazy caching completed %d, want 1", lazy.Terminals)
	}
	if lazy.Pruned == 0 {
		t.Error("lazy caching should have pruned the second lock order")
	}
}

// TestCachingScheduleAccounting: Schedules = Terminals + Pruned +
// Truncated on the caching engines.
func TestCachingScheduleAccounting(t *testing.T) {
	for _, src := range soundnessZoo() {
		for _, eng := range []Engine{NewHBRCache(), NewLazyHBRCache()} {
			res := eng.Explore(src, Options{MaxSteps: 2000})
			if res.Schedules != res.Terminals+res.Pruned+res.Truncated+res.SleepBlocked+res.Divergences {
				t.Errorf("%s on %s: %d ≠ %d+%d+%d+%d+%d", eng.Name(), src.Name(),
					res.Schedules, res.Terminals, res.Pruned, res.Truncated, res.SleepBlocked, res.Divergences)
			}
		}
	}
}

// TestCachingUnderTightLimit: with a budget of 1 the engines complete
// exactly one schedule and report the limit.
func TestCachingUnderTightLimit(t *testing.T) {
	src := curatedSharedCounter()
	for _, eng := range []Engine{NewHBRCache(), NewLazyHBRCache()} {
		res := eng.Explore(src, Options{ScheduleLimit: 1})
		if res.Schedules != 1 || !res.HitLimit || res.Terminals != 1 {
			t.Errorf("%s: %+v", eng.Name(), res)
		}
	}
}

// TestLazyCachingNeverBehindOnLazyClasses: within any identical budget,
// lazy caching reaches at least as many lazy HBR classes as regular
// caching — the Figure 3 guarantee — checked across random programs
// and several budgets.
func TestLazyCachingNeverBehindOnLazyClasses(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		src := genRandomProgram(seed)
		for _, limit := range []int{10, 50, 200} {
			reg := NewHBRCache().Explore(src, Options{ScheduleLimit: limit, MaxSteps: 2000})
			lazy := NewLazyHBRCache().Explore(src, Options{ScheduleLimit: limit, MaxSteps: 2000})
			if reg.DistinctLazyHBRs > lazy.DistinctLazyHBRs {
				t.Errorf("seed %d limit %d: regular caching reached %d lazy classes, lazy caching %d",
					seed, limit, reg.DistinctLazyHBRs, lazy.DistinctLazyHBRs)
			}
		}
	}
}

// TestCoarseTailFigure3Regime: the corpus family built for the Figure 3
// effect actually exhibits it at a binding budget.
func TestCoarseTailFigure3Regime(t *testing.T) {
	b := progdsl.New("tail").AutoStart()
	g := b.Mutex("g")
	own := b.VarArray("own", 3)
	s := b.Var("s")
	for i := 0; i < 3; i++ {
		i := i
		th := b.Thread()
		th.Lock(g)
		th.Read(0, own.At(i))
		th.AddConst(0, 0, 1)
		th.Write(own.At(i), 0)
		th.Unlock(g)
		th.Repeat(3, func(j int) { th.WriteConst(s, int64(i*10+j+1)) })
	}
	src := b.Build()
	const limit = 2000
	reg := NewHBRCache().Explore(src, Options{ScheduleLimit: limit})
	lazy := NewLazyHBRCache().Explore(src, Options{ScheduleLimit: limit})
	if !reg.HitLimit || !lazy.HitLimit {
		t.Fatalf("budget must bind: reg=%v lazy=%v", reg.HitLimit, lazy.HitLimit)
	}
	if lazy.DistinctLazyHBRs <= reg.DistinctLazyHBRs {
		t.Errorf("expected strict lazy-caching advantage: %d vs %d",
			lazy.DistinctLazyHBRs, reg.DistinctLazyHBRs)
	}
}

// TestSharedCacheAcrossPrefixPartitions: the shared-handle API the
// campaign package builds on — a caching engine split across disjoint
// root prefixes, pruning through one concurrent ShardedCache and
// deduplicating through one shared Dedup — must still cover every
// terminal state and lazy HBR class of the exhaustive space.
func TestSharedCacheAcrossPrefixPartitions(t *testing.T) {
	for _, src := range soundnessZoo()[:8] {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			want := exploreStates(t, NewDFS(), src)

			m := model.NewMachine(src)
			roots := m.EnabledThreads(nil)
			m.Abort()
			if len(roots) < 2 {
				t.Skipf("single root branch; nothing to partition")
			}

			cache := NewShardedCache()
			dedup := NewDedup()
			var totalTerminals int
			for _, root := range roots {
				res := NewLazyHBRCache().Explore(src, Options{
					MaxSteps: 2000,
					Prefix:   []event.ThreadID{root},
					Cache:    cache,
					Dedup:    dedup,
				})
				if res.HitLimit {
					t.Fatalf("partition %d unexpectedly hit a limit", root)
				}
				totalTerminals += res.Terminals
			}
			hbrs, lazies, states := dedup.Counts()
			if states != want.DistinctStates {
				t.Errorf("partitions covered %d states, exhaustive %d", states, want.DistinctStates)
			}
			if lazies != want.DistinctLazyHBRs {
				t.Errorf("partitions covered %d lazy classes, exhaustive %d", lazies, want.DistinctLazyHBRs)
			}
			if hbrs > want.DistinctHBRs {
				t.Errorf("partitions found %d HBRs, more than the exhaustive %d", hbrs, want.DistinctHBRs)
			}
			// Cross-partition pruning must have kept the work at
			// one completed schedule per lazy class, exactly like
			// the sequential caching engine.
			if totalTerminals != want.DistinctLazyHBRs {
				t.Errorf("partitions completed %d schedules, want one per lazy class (%d)",
					totalTerminals, want.DistinctLazyHBRs)
			}
			if cache.Len() == 0 {
				t.Error("shared cache was never populated")
			}
		})
	}
}
