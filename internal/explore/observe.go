package explore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
)

// Counters is the lock-free telemetry surface of a running search.
// Pass one through Options.Counters to watch an exploration live: the
// recorder publishes deltas at every schedule boundary with atomic
// adds, so a single Counters instance shared by the workers of a
// parallel search (or the rounds of an iterative engine) accumulates
// the aggregate totals without locks. Readers snapshot at any time
// with Snapshot; values are monotone (MaxDepth and Backend are
// latched, everything else only grows).
//
// Counters are pure telemetry: they never feed back into exploration,
// so arming them cannot change a Result (pinned by
// TestObserverDoesNotPerturbResults).
type Counters struct {
	// Schedules counts executions performed (terminal, pruned,
	// truncated, sleep-blocked or diverged); the per-outcome counters
	// below partition it. SleepBlocked is the sleep-set prune
	// counter: executions abandoned because every enabled thread
	// slept.
	Schedules    atomic.Int64
	Terminals    atomic.Int64
	Pruned       atomic.Int64
	Truncated    atomic.Int64
	SleepBlocked atomic.Int64
	Divergences  atomic.Int64

	// Events counts every event executed, including replays;
	// Backtracks counts cursor resets to an earlier depth (one per
	// branch revisit, whatever the backend).
	Events     atomic.Int64
	Backtracks atomic.Int64

	// DedupHits and DedupMisses count terminal-execution fingerprint
	// probes (HBR, lazy HBR and state digest — three per terminal)
	// that found, respectively missed, an already-known value. A high
	// hit rate means the search is revisiting covered equivalence
	// classes.
	DedupHits   atomic.Int64
	DedupMisses atomic.Int64

	// DivergeHintHits counts threads fenced immediately from a
	// memoised divergence point instead of re-waiting the watchdog.
	DivergeHintHits atomic.Int64

	// StealSent counts work units shipped to the steal queue by
	// donation or escape; StealReceived counts units workers picked
	// up. Zero outside work-stealing parallel searches.
	StealSent     atomic.Int64
	StealReceived atomic.Int64

	// MaxDepth latches the deepest execution seen.
	MaxDepth atomic.Int64

	// backend latches the resolved BackendKind + 1 once a cursor
	// commits to one (0 = not yet resolved; BackendAuto is never
	// stored — it resolves before it latches).
	backend atomic.Int32
}

// NewCounters returns a zeroed counter set ready to share.
func NewCounters() *Counters { return &Counters{} }

// setBackend latches the resolved backend (idempotent; the workers of
// a parallel search all resolve to the same kind).
func (c *Counters) setBackend(b BackendKind) {
	c.backend.Store(int32(b) + 1)
}

// Backend returns the resolved backend name, or "" while the adaptive
// choice is still being measured.
func (c *Counters) Backend() string {
	v := c.backend.Load()
	if v == 0 {
		return ""
	}
	return BackendKind(v - 1).String()
}

// maxDepth latches d into MaxDepth.
func (c *Counters) maxDepth(d int64) {
	for {
		cur := c.MaxDepth.Load()
		if d <= cur || c.MaxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Snapshot reads every counter at one (not mutually atomic) instant.
// Program, Engine and Elapsed are left for the caller to fill.
func (c *Counters) Snapshot() Progress {
	return Progress{
		Schedules:       c.Schedules.Load(),
		Terminals:       c.Terminals.Load(),
		Pruned:          c.Pruned.Load(),
		Truncated:       c.Truncated.Load(),
		SleepBlocked:    c.SleepBlocked.Load(),
		Divergences:     c.Divergences.Load(),
		Events:          c.Events.Load(),
		Backtracks:      c.Backtracks.Load(),
		DedupHits:       c.DedupHits.Load(),
		DedupMisses:     c.DedupMisses.Load(),
		DivergeHintHits: c.DivergeHintHits.Load(),
		StealSent:       c.StealSent.Load(),
		StealReceived:   c.StealReceived.Load(),
		MaxDepth:        c.MaxDepth.Load(),
		Backend:         c.Backend(),
	}
}

// Progress is one point-in-time snapshot of a running search — the
// value Observer.OnProgress receives and docs/OBSERVABILITY.md's
// counter catalogue documents (the doc-sync test pins the two to each
// other). Counter fields mirror Counters; see there for semantics.
type Progress struct {
	// Program and Engine identify the search instance delivering the
	// snapshot.
	Program string `json:"program,omitempty"`
	Engine  string `json:"engine,omitempty"`

	Schedules       int64 `json:"schedules"`
	Terminals       int64 `json:"terminals"`
	Pruned          int64 `json:"pruned"`
	Truncated       int64 `json:"truncated"`
	SleepBlocked    int64 `json:"sleep_blocked"`
	Divergences     int64 `json:"divergences"`
	Events          int64 `json:"events"`
	Backtracks      int64 `json:"backtracks"`
	DedupHits       int64 `json:"dedup_hits"`
	DedupMisses     int64 `json:"dedup_misses"`
	DivergeHintHits int64 `json:"diverge_hint_hits"`
	StealSent       int64 `json:"steal_sent"`
	StealReceived   int64 `json:"steal_received"`
	MaxDepth        int64 `json:"max_depth"`

	// Backend is the resolved backtracking backend ("undo", "replay",
	// "snapshot"), or "" while BackendAuto is still measuring.
	Backend string `json:"backend,omitempty"`

	// Elapsed is the wall clock since the delivering search started.
	Elapsed time.Duration `json:"elapsed,omitempty"`
}

// Observer delivers periodic Progress snapshots from a running search
// through Options.Observer. Delivery happens at schedule boundaries
// on the engine's own goroutine — whenever EverySchedules schedules
// or Every wall-clock time passed since the last snapshot, whichever
// fires first — plus one final snapshot when the search finishes. A
// nil Observer costs one predicted branch per schedule and nothing
// else; an armed one never changes counters (snapshots are reads).
//
// In a parallel search each worker delivers its own snapshots; wiring
// the same Options.Counters into the search makes every snapshot
// carry the shared aggregate totals.
type Observer struct {
	// EverySchedules delivers a snapshot every n schedules;
	// <= 0 uses DefaultObserverSchedules.
	EverySchedules int
	// Every delivers a snapshot when this much wall clock passed
	// since the last one; <= 0 uses DefaultObserverInterval.
	Every time.Duration
	// OnProgress receives the snapshots; required. Parallel searches
	// invoke it from multiple goroutines — it must synchronise
	// internally.
	OnProgress func(Progress)
}

// Observer cadence defaults; see the Observer fields.
const (
	DefaultObserverSchedules = 1024
	DefaultObserverInterval  = time.Second
)

// FlightEntry is one recent execution retained by a FlightRecorder:
// the schedule prefix (complete choice sequence) of the execution,
// its outcome and timing.
type FlightEntry struct {
	// Schedule is the execution's 1-based index within the recording
	// search instance.
	Schedule int64 `json:"schedule"`
	// Outcome classifies the execution: "terminal", "pruned",
	// "truncated", "sleep-blocked" or "diverged".
	Outcome string `json:"outcome"`
	// Violation names the safety violation this execution exhibited
	// ("deadlock", "assertion failure", ...); empty for clean ones.
	Violation string `json:"violation,omitempty"`
	// Depth is the execution's length in events; Choices is the full
	// schedule (thread chosen at each step).
	Depth   int              `json:"depth"`
	Choices []event.ThreadID `json:"choices"`
	// SinceStartMS is when the execution finished, in milliseconds
	// since the recorder first saw the search.
	SinceStartMS int64 `json:"since_start_ms"`
}

// FlightRecorder keeps a bounded ring of the most recent executions a
// search performed — the flight-recorder tape the campaign runner
// dumps next to the repro dir when a cell is quarantined, times out
// or panics, turning a one-line Err into a debuggable trace. Arm one
// through Options.Flight; it is safe for concurrent recorders (the
// workers of a parallel search) and for Snapshot readers at any time.
type FlightRecorder struct {
	mu      sync.Mutex
	start   time.Time
	entries []FlightEntry
	next    int
	wrapped bool
}

// DefaultFlightEntries is the ring capacity NewFlightRecorder(0)
// uses.
const DefaultFlightEntries = 64

// NewFlightRecorder returns a flight recorder retaining the last
// capacity executions (DefaultFlightEntries if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEntries
	}
	return &FlightRecorder{entries: make([]FlightEntry, 0, capacity)}
}

// record appends one finished execution, evicting the oldest entry
// once the ring is full. choices is a view into engine state and is
// copied here.
func (f *FlightRecorder) record(schedule int64, outcome, violation string, choices []event.ThreadID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	if f.start.IsZero() {
		f.start = now
	}
	e := FlightEntry{
		Schedule:     schedule,
		Outcome:      outcome,
		Violation:    violation,
		Depth:        len(choices),
		Choices:      append([]event.ThreadID(nil), choices...),
		SinceStartMS: now.Sub(f.start).Milliseconds(),
	}
	if len(f.entries) < cap(f.entries) {
		f.entries = append(f.entries, e)
		return
	}
	f.entries[f.next] = e
	f.next = (f.next + 1) % len(f.entries)
	f.wrapped = true
}

// Snapshot returns the retained executions, oldest first.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.wrapped {
		// Still filling: entries are in append order and next is unused.
		return append([]FlightEntry(nil), f.entries...)
	}
	out := make([]FlightEntry, 0, len(f.entries))
	out = append(out, f.entries[f.next:]...)
	return append(out, f.entries[:f.next]...)
}

// telemetry is the recorder's observation state, allocated only when
// Options arms Counters, an Observer or a FlightRecorder — the nil
// check in recorder.schedule is the entire disabled-path cost.
type telemetry struct {
	ctr    *Counters
	obs    *Observer
	flight *FlightRecorder
	start  time.Time

	// flushed holds the Result-derived values already published to
	// ctr, so each schedule boundary adds only this recorder's deltas
	// and shared Counters aggregate correctly across workers.
	flushed struct {
		schedules, terminals, pruned, truncated int
		sleepBlocked, divergences               int
		events                                  int64
		backtracks                              int64
		dedupHits, dedupMisses                  int64
		hintHits                                int64
		maxDepth                                int
	}

	// dedupHits/dedupMisses accumulate the recorder's local probe
	// counts (plain ints: the recorder is single-goroutine).
	dedupHits, dedupMisses int64

	// violation carries a just-recorded violating terminal's kind
	// from recorder.terminal to the flight entry written at the
	// following schedule boundary.
	violation string
	// prev remembers the outcome counters at the last schedule
	// boundary so the boundary can classify which outcome the
	// finished execution had without any per-engine plumbing.
	prev struct {
		terminals, pruned, truncated, sleepBlocked, divergences int
	}

	// observer cadence state.
	everyN     int
	everyD     time.Duration
	lastSched  int
	lastSnap   time.Time
	obsProgram string
	obsEngine  string
}

// newTelemetry builds the recorder's observation state, or returns
// nil when opt arms nothing.
func newTelemetry(opt Options, program, engine string) *telemetry {
	if opt.Counters == nil && opt.Observer == nil && opt.Flight == nil {
		return nil
	}
	t := &telemetry{
		ctr:        opt.Counters,
		obs:        opt.Observer,
		flight:     opt.Flight,
		start:      time.Now(),
		obsProgram: program,
		obsEngine:  engine,
	}
	if t.obs != nil {
		if t.ctr == nil {
			// Snapshots read from Counters; an observer without a
			// caller-supplied set gets a private one.
			t.ctr = NewCounters()
		}
		t.everyN = t.obs.EverySchedules
		if t.everyN <= 0 {
			t.everyN = DefaultObserverSchedules
		}
		t.everyD = t.obs.Every
		if t.everyD <= 0 {
			t.everyD = DefaultObserverInterval
		}
		t.lastSnap = t.start
	}
	return t
}

// boundary runs at every schedule boundary (and once more at finish):
// it writes the flight entry for the just-finished execution, flushes
// counter deltas, and delivers a due Progress snapshot.
func (t *telemetry) boundary(r *recorder, c *cursor, final bool) {
	res := &r.res
	if t.flight != nil && !final {
		outcome := ""
		switch {
		case res.Terminals > t.prev.terminals:
			outcome = "terminal"
		case res.Pruned > t.prev.pruned:
			outcome = "pruned"
		case res.Truncated > t.prev.truncated:
			outcome = "truncated"
		case res.SleepBlocked > t.prev.sleepBlocked:
			outcome = "sleep-blocked"
		case res.Divergences > t.prev.divergences:
			outcome = "diverged"
		}
		t.prev.terminals = res.Terminals
		t.prev.pruned = res.Pruned
		t.prev.truncated = res.Truncated
		t.prev.sleepBlocked = res.SleepBlocked
		t.prev.divergences = res.Divergences
		if outcome != "" {
			t.flight.record(int64(res.Schedules), outcome, t.violation, c.choices)
		}
		t.violation = ""
	}
	if t.ctr != nil {
		t.flush(r, c)
	}
	if t.obs != nil {
		now := time.Now()
		if final || res.Schedules-t.lastSched >= t.everyN || now.Sub(t.lastSnap) >= t.everyD {
			t.lastSched = res.Schedules
			t.lastSnap = now
			p := t.ctr.Snapshot()
			p.Program = t.obsProgram
			p.Engine = t.obsEngine
			p.Elapsed = now.Sub(t.start)
			t.obs.OnProgress(p)
		}
	}
}

// flush publishes the recorder's progress since the last boundary as
// atomic deltas.
func (t *telemetry) flush(r *recorder, c *cursor) {
	f := &t.flushed
	res := &r.res
	addInt := func(ctr *atomic.Int64, cur int, prev *int) {
		if d := cur - *prev; d != 0 {
			ctr.Add(int64(d))
			*prev = cur
		}
	}
	add64 := func(ctr *atomic.Int64, cur int64, prev *int64) {
		if d := cur - *prev; d != 0 {
			ctr.Add(d)
			*prev = cur
		}
	}
	addInt(&t.ctr.Schedules, res.Schedules, &f.schedules)
	addInt(&t.ctr.Terminals, res.Terminals, &f.terminals)
	addInt(&t.ctr.Pruned, res.Pruned, &f.pruned)
	addInt(&t.ctr.Truncated, res.Truncated, &f.truncated)
	addInt(&t.ctr.SleepBlocked, res.SleepBlocked, &f.sleepBlocked)
	addInt(&t.ctr.Divergences, res.Divergences, &f.divergences)
	if c != nil {
		add64(&t.ctr.Events, c.events, &f.events)
		add64(&t.ctr.Backtracks, c.backtracks, &f.backtracks)
		if res.MaxDepth > f.maxDepth {
			f.maxDepth = res.MaxDepth
			t.ctr.maxDepth(int64(res.MaxDepth))
		}
		if hints := c.mcfg.Hints; hints != nil {
			add64(&t.ctr.DivergeHintHits, hints.Hits(), &f.hintHits)
		}
		if !c.autoPending {
			t.ctr.setBackend(c.backend)
		}
	}
	add64(&t.ctr.DedupHits, t.dedupHits, &f.dedupHits)
	add64(&t.ctr.DedupMisses, t.dedupMisses, &f.dedupMisses)
}

// validateObservability checks the telemetry options; part of
// Options.Validate.
func (o Options) validateObservability() error {
	if o.Observer != nil {
		if o.Observer.OnProgress == nil {
			return fmt.Errorf("explore: Observer with nil OnProgress")
		}
		if o.Observer.EverySchedules < 0 {
			return fmt.Errorf("explore: negative Observer.EverySchedules %d", o.Observer.EverySchedules)
		}
		if o.Observer.Every < 0 {
			return fmt.Errorf("explore: negative Observer.Every %v", o.Observer.Every)
		}
	}
	return nil
}
