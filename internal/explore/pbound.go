package explore

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/hb"
	"repro/internal/model"
)

// pboundEngine is CHESS-style iterative context bounding (Musuvathi &
// Qadeer): depth-first enumeration restricted to schedules with at
// most `bound` preemptions. A preemption is a switch away from a
// thread that is still enabled; switches at blocking or terminating
// operations are free. HBR caching was originally proposed exactly in
// this context-bounded setting (MSR-TR-2007-12), so the engine
// optionally composes with either caching relation.
type pboundEngine struct {
	bound int
	mode  cacheMode
}

// NewPreemptionBounded returns a DFS engine restricted to schedules
// with at most bound preemptions.
func NewPreemptionBounded(bound int) Engine {
	return &pboundEngine{bound: bound}
}

// NewPreemptionBoundedCache composes preemption bounding with HBR
// caching (lazy=false) or lazy HBR caching (lazy=true) — the
// configuration of the Musuvathi–Qadeer technical report, upgraded
// with the paper's lazy relation.
func NewPreemptionBoundedCache(bound int, lazy bool) Engine {
	mode := cacheHBR
	if lazy {
		mode = cacheLazy
	}
	return &pboundEngine{bound: bound, mode: mode}
}

// Name implements Engine.
func (e *pboundEngine) Name() string {
	switch e.mode {
	case cacheHBR:
		return fmt.Sprintf("pb%d-hbr-caching", e.bound)
	case cacheLazy:
		return fmt.Sprintf("pb%d-lazy-hbr-caching", e.bound)
	default:
		return fmt.Sprintf("pb%d-dfs", e.bound)
	}
}

// pbNode is one depth of the bounded enumeration.
type pbNode struct {
	// choices are the explorable threads at this state, already
	// filtered by the preemption budget; costs[i] is 1 when taking
	// choices[i] consumes a preemption.
	choices []event.ThreadID
	costs   []int
	next    int
	// used is the number of preemptions consumed on the path up to
	// (not including) this state.
	used int
	// prev is the thread that executed the previous event, or -1 at
	// the root.
	prev event.ThreadID
	// prevEnabled records whether prev is still enabled here (a
	// switch away from it is then a preemption).
	prevEnabled bool
}

// Explore implements Engine.
func (e *pboundEngine) Explore(src model.Source, opt Options) Result {
	c := newCursor(src, opt)
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)

	var cache Cache
	if e.mode != cacheNone {
		cache = opt.Cache
		if cache == nil {
			cache = mapCache{}
		}
	}
	prefixFP := func() hb.Fingerprint {
		if e.mode == cacheLazy {
			return c.tr.LazyFingerprint()
		}
		return c.tr.HBFingerprint()
	}

	// A pinned prefix is replayed outside both the caching and the
	// preemption-budget disciplines: the bound then applies to the
	// explored suffix.
	base := c.replayPrefix(opt.Prefix, nil)
	baseThread := event.ThreadID(-1)
	if base > 0 {
		baseThread = opt.Prefix[base-1]
	}

	var tids tidPool
	var ints slicePool[int]
	var nodes nodePool[pbNode]

	// freeNode returns a popped node's buffers to the pools.
	freeNode := func(n *pbNode) {
		tids.put(n.choices)
		ints.put(n.costs)
		nodes.put(n)
	}

	// makeNode computes the affordable choices at the current state.
	// The non-preemptive continuation (the previous thread, if still
	// enabled) is enumerated first, matching the CHESS search order.
	makeNode := func(prev event.ThreadID, used int) *pbNode {
		en := c.enabled()
		n := nodes.get()
		*n = pbNode{used: used, prev: prev, choices: tids.get(), costs: ints.get()}
		for _, t := range en {
			if t == prev {
				n.prevEnabled = true
			}
		}
		if n.prevEnabled {
			n.choices = append(n.choices, prev)
			n.costs = append(n.costs, 0)
		}
		for _, t := range en {
			if t == prev {
				continue
			}
			cost := 0
			if n.prevEnabled {
				cost = 1
			}
			if used+cost > e.bound {
				continue
			}
			n.choices = append(n.choices, t)
			n.costs = append(n.costs, cost)
		}
		return n
	}

	var stack []*pbNode

	// descend drives the execution to a terminal, prune or
	// truncation, taking the first affordable branch at each fresh
	// state. Returns false when the schedule limit fires.
	descend := func() bool {
		for {
			if c.truncated() {
				rec.cutShort(c)
				return !rec.schedule()
			}
			prev := baseThread
			used := 0
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				prev = parent.choices[parent.next-1]
				used = parent.used + parent.costs[parent.next-1]
			}
			if c.terminal() {
				rec.terminal(c)
				return !rec.schedule()
			}
			n := makeNode(prev, used)
			if len(n.choices) == 0 {
				// Enabled threads exist but all switches exceed
				// the budget: the path is abandoned (counted
				// like a sleep-blocked execution).
				freeNode(n)
				rec.res.SleepBlocked++
				return !rec.schedule()
			}
			stack = append(stack, n)
			n.next = 1
			c.step(n.choices[0])
			if cache != nil && !cache.Add(prefixFP()) {
				rec.res.Pruned++
				return !rec.schedule()
			}
		}
	}

	if !descend() {
		return rec.finish(c)
	}
	for len(stack) > 0 {
		d := len(stack) - 1
		n := stack[d]
		if n.next >= len(n.choices) {
			freeNode(n)
			stack = stack[:d]
			continue
		}
		t := n.choices[n.next]
		n.next++
		c.resetTo(base + d)
		c.step(t)
		if cache != nil && !cache.Add(prefixFP()) {
			rec.res.Pruned++
			if rec.schedule() {
				break
			}
			continue
		}
		if !descend() {
			break
		}
	}
	return rec.finish(c)
}
