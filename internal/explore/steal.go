package explore

import (
	"repro/internal/event"
	"repro/internal/hb"
)

// Steal is the coordination surface of work-stealing parallel DPOR
// (implemented by the campaign package, consumed by the DPOR engine
// through Options.Steal).
//
// The scheme: every concurrently explored subtree is a *unit* — a
// pinned choice prefix plus, optionally, a shipped happens-before
// tracker seed covering all but the prefix's last event. Workers run
// real DPOR beneath their prefix. Two situations cross a unit's
// boundary and go through this interface instead of the engine's local
// backtrack sets:
//
//   - A race reversal whose backtrack point lies at a depth the unit
//     does not own (inside its pinned prefix, or at a stack node it
//     has already published) *escapes*: the engine computes the exact
//     Flanagan–Godefroid backtrack addition for that node and hands it
//     over. The coordinator deduplicates the addition against the
//     node's global claim set and turns fresh branches into new units.
//   - When idle workers are starving, a busy engine *donates* its
//     shallowest stack node with pending backtrack candidates: the
//     node (and every unpublished node above it) is published with its
//     locally claimed branch set, and the pending branches become
//     units for other workers instead of local work.
//
// Every unit's proper prefixes are published before the unit becomes
// visible, so an escape always finds its target node. All methods are
// invoked from the engine's own goroutine; implementations synchronise
// internally.
//
// The published claim sets make the union of all units' explorations
// exactly the least fixed point that sequential DPOR computes: each
// backtrack addition is a pure function of the execution trace that
// produced it, and each claimed branch is explored exactly once. With
// sleep sets disabled the merged Result counters are therefore
// byte-identical to sequential DPOR's (see the campaign package's
// exactness tests). Sleep sets make the *schedule list* (not the
// coverage) order-dependent, so under SleepSets the merged coverage
// counters remain exact while #schedules/#sleep-blocked may differ
// from the sequential engine's.
type Steal interface {
	// Starving reports whether idle workers outnumber the queued
	// units — the signal that donating pending branches would
	// actually feed another worker rather than pile stock the donor
	// ends up re-popping itself. The engine polls it at schedule
	// boundaries; it must be cheap (atomic loads).
	Starving() bool

	// Publish registers the node reached by the given choice prefix
	// as globally claimable. claimed holds the branches (a thread
	// bitmask) the publishing engine has already explored or is
	// exploring; pending holds branches it offers to give away — the
	// coordinator records claimed|pending as taken, creates one unit
	// per pending branch that was not already claimed in the table,
	// and returns that shipped subset (the engine keeps exploring the
	// rest locally). seed, when non-nil, returns a private tracker
	// clone covering len(prefix) events for seeding those units; it
	// must be invoked synchronously inside this call (or not at all),
	// never retained — on the undo backend it is a CloneTo through the
	// caller's live undo log, which the caller rewinds and regrows the
	// moment Publish returns.
	// info, when non-nil, carries the node's sleep-set context so
	// units branching off it (now or through later escapes) inherit
	// the sleep set the sequential engine would compute; nil when the
	// search runs without sleep sets. prefix and info.Pend are views
	// into engine state: implementations must copy what they retain.
	Publish(prefix []event.ThreadID, claimed, pending uint64, seed func() *hb.Tracker, info *NodeInfo) (shipped uint64)

	// Escape hands over a backtrack addition (a thread bitmask,
	// computed exactly as sequential DPOR would) for a published node
	// of a *foreign* prefix — one the escaping engine owns no stack
	// node for. The coordinator claims the fresh branches and creates
	// one unit per branch, seeding each from seed when non-nil (same
	// synchronous-invocation rule as Publish).
	// prefix is a view into engine state: implementations must copy
	// what they retain.
	Escape(prefix []event.ThreadID, cands uint64, seed func() *hb.Tracker)

	// Claim claims a backtrack addition for a published node the
	// calling engine still owns on its own stack, and returns the
	// subset that was fresh: the caller folds it into the node's
	// local backtrack set and explores in place — no unit shipping,
	// no prefix replay. The non-fresh rest is someone else's (or was
	// already claimed here earlier).
	Claim(prefix []event.ThreadID, cands uint64) (fresh uint64)
}

// NodeInfo is the sleep-set context of a published node, captured by
// the owning engine at publish time. A coordinator that ships a unit
// for branch t of the node derives the unit's root sleep set
// (Options.SleepSeed) exactly as the sequential engine's child-node
// rule: every thread in sleep ∪ (done-before-t ∖ {t}) stays asleep iff
// its pending operation at the node is independent of the operation t
// executes there.
type NodeInfo struct {
	// Sleep is the node's own sleep set (thread bitmask).
	Sleep uint64
	// Pend[q] is thread q's pending operation at the node, valid where
	// PendSet has bit q. The slice is a view into engine state:
	// implementations must copy what they retain.
	Pend    []event.Op
	PendSet uint64
}

// StealStats summarises one work-stealing parallel search; attached to
// the merged Result by the campaign coordinator.
type StealStats struct {
	// Workers is the size of the worker pool.
	Workers int `json:"workers"`
	// Units counts frontier units executed (the initial root unit
	// plus every donated or escaped branch).
	Units int `json:"units"`
	// Donated counts units created by starving-triggered donation of
	// pending backtrack branches.
	Donated int `json:"donated"`
	// Escaped counts units created from backtrack points that escaped
	// a worker's prefix (the reduction the static partition forfeited).
	Escaped int `json:"escaped"`
	// LocalClaims counts backtrack additions to published nodes that
	// were claimed through the shared table but explored in place by
	// the owning worker (no unit shipped).
	LocalClaims int `json:"local_claims"`
	// Seeded counts units that shipped a happens-before tracker
	// clone, so their prefix replay advanced only the machine.
	Seeded int `json:"seeded"`
	// Steals counts units a worker took from another worker's stripe
	// of the steal deque.
	Steals int `json:"steals"`
}
