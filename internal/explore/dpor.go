package explore

import (
	"repro/internal/event"
	"repro/internal/hb"
	"repro/internal/model"
)

// dporEngine implements dynamic partial-order reduction (Flanagan &
// Godefroid, POPL 2005) in the iterative stack formulation: execute
// forward under a default policy, and at every visited state, for every
// thread's pending transition, locate the most recent trace event that
// is dependent, may-be-co-enabled and not happens-before that
// transition; seed the backtrack set of the state preceding that event.
// Optional sleep sets suppress re-exploration of commutative siblings.
type dporEngine struct {
	sleep bool
	// lazyCS enables the experimental "lazy DPOR" of the paper's
	// Section 4: lock-lock race reversals whose critical sections
	// provably access disjoint data produce lazy-HBR-equivalent
	// schedules (Theorem 2.2), so their backtrack points are
	// skipped. The analysis is deferred to the end of the execution,
	// when both critical sections' contents are known; any doubt
	// (incomplete section, nested locks, spawn/join inside, the lock
	// never executing) falls back to the classic backtrack point.
	lazyCS bool
}

// NewDPOR returns the classic DPOR engine; sleepSets enables sleep
// sets.
func NewDPOR(sleepSets bool) Engine { return &dporEngine{sleep: sleepSets} }

// NewLazyDPOR returns the experimental lazy DPOR engine (the paper's
// Section 4 future work): DPOR whose lock-lock backtrack points are
// suppressed when the two critical sections provably commute under the
// lazy happens-before relation. Empirically validated against
// exhaustive state enumeration in the test suite; not accompanied by a
// proof (the paper leaves the algorithm open).
func NewLazyDPOR() Engine { return &dporEngine{lazyCS: true} }

// Name implements Engine.
func (e *dporEngine) Name() string {
	switch {
	case e.lazyCS && e.sleep:
		return "lazy-dpor+sleep"
	case e.lazyCS:
		return "lazy-dpor"
	case e.sleep:
		return "dpor+sleep"
	default:
		return "dpor"
	}
}

// deferredLL is a postponed lock-lock backtrack decision: thread p,
// whose pending lock raced with trace event i, will (under the default
// continuation) lock the mutex at or after trace position at.
type deferredLL struct {
	i  int
	p  event.ThreadID
	mu int32
	at int
}

// csSummary describes one critical section's contents.
type csSummary struct {
	reads, writes map[int32]struct{}
	clean         bool // complete, no nested sync, no spawn/join
}

// summarizeCS scans the critical section opened by the lock event at
// trace position lockIdx (events of the locking thread only, up to the
// matching unlock).
func summarizeCS(trace []event.Event, lockIdx int) csSummary {
	lock := trace[lockIdx]
	cs := csSummary{reads: map[int32]struct{}{}, writes: map[int32]struct{}{}}
	for j := lockIdx + 1; j < len(trace); j++ {
		ev := trace[j]
		if ev.Thread != lock.Thread {
			continue
		}
		switch ev.Kind {
		case event.KindRead:
			cs.reads[ev.Obj] = struct{}{}
		case event.KindWrite:
			cs.writes[ev.Obj] = struct{}{}
		case event.KindUnlock:
			if ev.Obj == lock.Obj {
				cs.clean = true
				return cs
			}
			return cs // unlock of a different mutex: nested sync
		case event.KindLock, event.KindSpawn, event.KindJoin:
			return cs // nested sync or thread structure: not clean
		case event.KindSend, event.KindRecv, event.KindClose, event.KindSelect:
			// Channel operations synchronise through their own clocks,
			// outside the read/write footprint this summary models: any
			// channel traffic inside the section disqualifies it.
			return cs
		case event.KindAssert:
			// Thread-local; harmless.
		}
	}
	return cs // trace ended inside the section
}

// ladderOK reports whether, after trace position i, every thread's
// remaining events form exactly one clean critical section on mutex mu
// (possibly followed by nothing), or no events at all. Under this
// "lock ladder" shape the remaining schedule space is exactly the set
// of permutations of atomic blocks serialised by mu: every permutation
// is feasible, and two permutations that differ only in the order of
// data-disjoint blocks have the same lazy HBR and hence the same state
// (Theorem 2.2). Lock-lock reversals of disjoint blocks are then
// genuinely redundant — this is the soundness condition of the
// experimental lazy DPOR. (Pairwise disjointness alone is NOT enough:
// the lock order gates which subtrees exist, not just the final state;
// the test suite demonstrates this with random programs.)
func ladderOK(trace []event.Event, i int, mu int32) bool {
	type threadScan struct {
		state int // 0 = before lock, 1 = inside CS, 2 = after unlock
	}
	scans := map[event.ThreadID]*threadScan{}
	for j := i; j < len(trace); j++ {
		ev := trace[j]
		sc := scans[ev.Thread]
		if sc == nil {
			sc = &threadScan{}
			scans[ev.Thread] = sc
		}
		switch sc.state {
		case 0:
			if ev.Kind != event.KindLock || ev.Obj != mu {
				return false
			}
			sc.state = 1
		case 1:
			switch ev.Kind {
			case event.KindRead, event.KindWrite, event.KindAssert:
				// Plain data or thread-local work inside the block.
			case event.KindUnlock:
				if ev.Obj != mu {
					return false
				}
				sc.state = 2
			default:
				return false
			}
		case 2:
			return false // tail events after the block
		}
	}
	for _, sc := range scans {
		if sc.state != 2 {
			return false // incomplete block (still holding mu)
		}
	}
	return true
}

// disjoint reports whether two clean critical sections commute under
// the lazy HBR: neither writes anything the other touches.
func disjoint(a, b csSummary) bool {
	for v := range a.writes {
		if _, ok := b.writes[v]; ok {
			return false
		}
		if _, ok := b.reads[v]; ok {
			return false
		}
	}
	for v := range b.writes {
		if _, ok := a.reads[v]; ok {
			return false
		}
	}
	return true
}

// pnode is the slim per-depth state work-stealing mode retains for the
// pinned prefix: enough to compute escaped backtrack additions exactly
// as sequential DPOR would at that node.
type pnode struct {
	enabled    []event.ThreadID
	enabledSet tset
	steps      []int32
	// claimed caches the masks already handed to Steal.Escape for
	// this node: the claim table is monotone, so a covered mask needs
	// no repeat round-trip (hot prefix races recur every schedule).
	claimed tset
}

// dnode is one state on the current DPOR stack.
type dnode struct {
	enabled    []event.ThreadID
	enabledSet tset
	// steps[q] is the number of events thread q had executed when
	// this state was reached; used for the ∃j>i ∧ j→next(p) test.
	steps []int32
	// pend[q] is thread q's pending operation at this state (valid
	// where pendSet has q); used by sleep-set dependence checks.
	pend    []event.Op
	pendSet tset

	backtrack tset
	done      tset
	sleep     tset
	chosen    event.ThreadID
}

// dporState bundles the cursor with per-object access logs that make
// the "most recent dependent event" lookup O(1) amortised: conflicting
// writes (and lock events per mutex) are totally ordered by the regular
// HBR, so only a bounded suffix of each log needs inspection.
type dporState struct {
	c         *cursor
	varWrites [][]int32
	varReads  [][]int32
	muLocks   [][]int32
	chOps     [][]int32
}

func newDPORState(src model.Source, opt Options) *dporState {
	return &dporState{
		c:         newCursor(src, opt),
		varWrites: make([][]int32, src.NumVars()),
		varReads:  make([][]int32, src.NumVars()),
		muLocks:   make([][]int32, src.NumMutexes()),
		chOps:     make([][]int32, model.NumChannels(src)),
	}
}

// step executes thread t and indexes the produced event.
func (s *dporState) step(t event.ThreadID) {
	idx := int32(s.c.depth())
	ev := s.c.step(t)
	switch ev.Kind {
	case event.KindWrite:
		s.varWrites[ev.Obj] = append(s.varWrites[ev.Obj], idx)
	case event.KindRead:
		s.varReads[ev.Obj] = append(s.varReads[ev.Obj], idx)
	case event.KindLock:
		s.muLocks[ev.Obj] = append(s.muLocks[ev.Obj], idx)
	case event.KindSend, event.KindRecv, event.KindClose:
		s.chOps[ev.Obj] = append(s.chOps[ev.Obj], idx)
	case event.KindSelect:
		// A committed select observed (and republished the clock of)
		// every case channel, so it joins each one's total order.
		for mask, ch := event.SelectCases(ev.Val), 0; mask != 0; ch++ {
			if mask&1 != 0 {
				s.chOps[ch] = append(s.chOps[ch], idx)
			}
			mask >>= 1
		}
	}
}

// resetTo truncates the execution and the access logs to depth d.
func (s *dporState) resetTo(d int) {
	s.c.resetTo(d)
	trunc := func(logs [][]int32) {
		for i, log := range logs {
			n := len(log)
			for n > 0 && log[n-1] >= int32(d) {
				n--
			}
			logs[i] = log[:n]
		}
	}
	trunc(s.varWrites)
	trunc(s.varReads)
	trunc(s.muLocks)
	trunc(s.chOps)
}

// lastDep returns the index of the most recent trace event that is
// dependent with, may-be-co-enabled with, and not happens-before,
// thread p's pending operation op; -1 if none. Only the cases that can
// yield candidates are inspected:
//
//   - pending read: the last write to the variable (earlier writes
//     happen-before it);
//   - pending write: the most recent not-ordered read after the last
//     write, else the last write;
//   - pending lock: the last lock of the mutex (lock events of one
//     mutex are totally ordered; unlocks are never co-enabled with
//     locks);
//   - pending send/recv/close: the last operation on the channel (all
//     operations on one channel, committed selects included, are
//     totally ordered by the per-channel clock);
//   - pending select: the latest such last-operation over its case
//     channels.
func (s *dporState) lastDep(p event.ThreadID, op event.Op) int {
	notHB := func(i int32) bool { return !s.c.tr.HappensBeforeNext(s.c.trace[i], p) }
	switch op.Kind {
	case event.KindRead:
		if ws := s.varWrites[op.Obj]; len(ws) > 0 && notHB(ws[len(ws)-1]) {
			return int(ws[len(ws)-1])
		}
	case event.KindWrite:
		lastW := int32(-1)
		if ws := s.varWrites[op.Obj]; len(ws) > 0 {
			lastW = ws[len(ws)-1]
		}
		rs := s.varReads[op.Obj]
		for k := len(rs) - 1; k >= 0 && rs[k] > lastW; k-- {
			if notHB(rs[k]) {
				return int(rs[k])
			}
		}
		if lastW >= 0 && notHB(lastW) {
			return int(lastW)
		}
	case event.KindLock:
		if ls := s.muLocks[op.Obj]; len(ls) > 0 && notHB(ls[len(ls)-1]) {
			return int(ls[len(ls)-1])
		}
	case event.KindSend, event.KindRecv, event.KindClose:
		if cs := s.chOps[op.Obj]; len(cs) > 0 && notHB(cs[len(cs)-1]) {
			return int(cs[len(cs)-1])
		}
	case event.KindSelect:
		// Per-channel total order makes only each case channel's last
		// operation a candidate; events of distinct channels are
		// mutually unordered, so take the latest not-ordered one.
		best := -1
		for mask, ch := event.SelectCases(op.Val), 0; mask != 0; ch++ {
			if mask&1 != 0 {
				if cs := s.chOps[ch]; len(cs) > 0 && int(cs[len(cs)-1]) > best && notHB(cs[len(cs)-1]) {
					best = int(cs[len(cs)-1])
				}
			}
			mask >>= 1
		}
		return best
	}
	return -1
}

// Explore implements Engine.
func (e *dporEngine) Explore(src model.Source, opt Options) Result {
	st := newDPORState(src, opt)
	c := st.c
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)
	nthreads := src.NumThreads()

	steal := opt.Steal

	// A pinned prefix is replayed through st.step so the access logs
	// cover it, but owns no stack nodes. Without a Steal coordinator,
	// race reversals that would seed a backtrack point inside the
	// prefix are dropped: the static campaign partitioner enumerates
	// every sibling prefix exhaustively, so the reversed schedule
	// lives in (and is found by) another partition's subtree. In
	// work-stealing mode those reversals escape instead (see below),
	// which is what recovers the reduction across the partition
	// layer; pnodes retain the per-depth prefix state the escape
	// computation needs.
	var pnodes []pnode
	replayStep := st.step
	if steal != nil {
		pnodes = make([]pnode, 0, len(opt.Prefix))
		replayStep = func(t event.ThreadID) {
			pn := pnode{
				enabled: append([]event.ThreadID(nil), c.enabled()...),
				steps:   make([]int32, nthreads),
			}
			for _, q := range pn.enabled {
				pn.enabledSet.add(q)
			}
			for q := 0; q < nthreads; q++ {
				pn.steps[q] = c.m.Steps(event.ThreadID(q))
			}
			pnodes = append(pnodes, pn)
			st.step(t)
		}
	}
	base := c.replayPrefix(opt.Prefix, replayStep)

	var nodes []*dnode

	// pubLocal counts the local stack nodes (from the bottom) that
	// have been published to the Steal coordinator: backtrack
	// additions at depths below base+pubLocal are globally claimed
	// escapes, not local set updates.
	pubLocal := 0

	// seedAt returns a maker of private tracker clones for the state
	// at absolute depth d, or nil when the backend keeps no tracker
	// state there (replay backend, or a depth covered by this unit's
	// own shipped seed). Under the undo backend the maker rewinds a
	// clone of the live tracker through the engine's own undo records
	// (hb.Tracker.CloneTo); it therefore must be invoked while the
	// cursor still sits at (or above) depth d — the Steal coordinator
	// calls makers synchronously inside Escape/Publish, never later.
	seedAt := func(d int) func() *hb.Tracker {
		switch c.backend {
		case BackendUndo:
			if m := d - c.trBase; m >= 0 && m <= c.tr.UndoMark() {
				return func() *hb.Tracker { return c.tr.CloneTo(m) }
			}
		case BackendSnapshot:
			if d < len(c.snaps) && c.snaps[d].tr != nil {
				tr := c.snaps[d].tr
				return func() *hb.Tracker { return tr.Clone() }
			}
		}
		return nil
	}

	// escape computes the exact Flanagan–Godefroid backtrack addition
	// for the published node preceding trace event i — p itself if
	// enabled there; otherwise the first enabled thread with a later
	// event ordered before p's next transition; otherwise every
	// enabled thread — and routes it through the coordinator's claim
	// table. Additions targeting a node this engine still owns (a
	// published node of its own stack) are claimed and folded back
	// into the local backtrack set, so they are explored in place;
	// only additions into the foreign pinned prefix ship as units.
	escape := func(i int, p event.ThreadID) {
		var en []event.ThreadID
		var eset tset
		var steps []int32
		if i < base {
			pn := &pnodes[i]
			en, eset, steps = pn.enabled, pn.enabledSet, pn.steps
		} else {
			n := nodes[i-base]
			en, eset, steps = n.enabled, n.enabledSet, n.steps
		}
		var mask tset
		if eset.has(p) {
			mask.add(p)
		} else {
			for _, q := range en {
				if c.tr.ThreadClock(p).Get(int(q)) >= steps[q]+1 {
					mask.add(q)
					break
				}
			}
			if mask.empty() {
				mask = eset
			}
		}
		if i < base {
			pn := &pnodes[i]
			if mask&^pn.claimed != 0 {
				steal.Escape(c.choices[:i], uint64(mask), seedAt(i))
				pn.claimed |= mask
			}
			return
		}
		// Published own-stack node: the local backtrack set is always a
		// subset of the node's global claim set, so a mask already
		// covered locally needs no table round-trip (the sequential
		// engine's backtrack.has fast path, kept here to spare the
		// shard mutex and key allocation on every update).
		n := nodes[i-base]
		if mask&^n.backtrack != 0 {
			n.backtrack |= tset(steal.Claim(c.choices[:i], uint64(mask)))
		}
	}

	// maybeDonate ships pending backtrack branches to starving
	// workers: the shallowest local node with pending candidates is
	// published (along with every unpublished node above it, so
	// escapes from the donated subtrees always find their target) and
	// its pending branches become frontier units for other workers.
	maybeDonate := func() {
		if steal == nil || !steal.Starving() {
			return
		}
		dIdx := -1
		for j := pubLocal; j < len(nodes); j++ {
			if !(nodes[j].backtrack &^ nodes[j].done).empty() {
				dIdx = j
				break
			}
		}
		if dIdx < 0 {
			return
		}
		for j := pubLocal; j <= dIdx; j++ {
			n := nodes[j]
			pending := tset(0)
			if j == dIdx {
				pending = n.backtrack &^ n.done
			}
			// Only the branches the coordinator actually shipped are
			// retired locally: pending bits already claimed in the
			// table are this engine's own earlier Claim grants, which
			// it still owes an in-place exploration.
			var info *NodeInfo
			if e.sleep {
				info = &NodeInfo{Sleep: uint64(n.sleep), Pend: n.pend, PendSet: uint64(n.pendSet)}
			}
			shipped := steal.Publish(c.choices[:base+j], uint64(n.done), uint64(pending), seedAt(base+j), info)
			n.done |= tset(shipped)
		}
		pubLocal = dIdx + 1
	}

	// addBacktrack seeds the backtrack set of the state preceding
	// trace event i on behalf of thread p's pending transition,
	// following Flanagan–Godefroid: add p itself if enabled there;
	// otherwise any enabled thread with a later event ordered before
	// p's transition; otherwise every enabled thread.
	addBacktrack := func(i int, p event.ThreadID) {
		if i < base+pubLocal {
			// Reversal beneath the pinned prefix or a published
			// node: globally claimed in work-stealing mode, a
			// sibling partition's job under static partitioning.
			if steal != nil {
				escape(i, p)
			}
			return
		}
		n := nodes[i-base]
		if n.backtrack.has(p) {
			return
		}
		if n.enabledSet.has(p) {
			n.backtrack.add(p)
			return
		}
		for _, q := range n.enabled {
			// ∃ j > i executed by q with j → next(p): p's clock
			// includes an event of q beyond those executed when
			// state i was reached.
			if c.tr.ThreadClock(p).Get(int(q)) >= n.steps[q]+1 {
				n.backtrack.add(q)
				return
			}
		}
		for _, q := range n.enabled {
			n.backtrack.add(q)
		}
	}

	var deferred []deferredLL

	// updates runs the race-reversal analysis at the current state
	// for every running thread's pending transition. In lazy mode,
	// lock-lock reversals are deferred until the execution completes
	// and both critical sections can be summarised.
	updates := func() {
		for q := 0; q < nthreads; q++ {
			p := event.ThreadID(q)
			op, ok := c.m.Pending(p)
			if !ok {
				continue
			}
			i := st.lastDep(p, op)
			if i < 0 {
				continue
			}
			if e.lazyCS && op.Kind == event.KindLock {
				deferred = append(deferred, deferredLL{i: i, p: p, mu: op.Obj, at: c.depth()})
				continue
			}
			addBacktrack(i, p)
		}
	}

	// resolveDeferred settles the postponed lock-lock decisions at
	// the end of an execution: skip the backtrack point only when
	// both critical sections are clean and access disjoint data, so
	// the reversed schedule has the same lazy HBR (Theorem 2.2).
	resolveDeferred := func() {
		for _, d := range deferred {
			if d.i >= base+len(nodes) {
				// The raced state was truncated by an earlier
				// resolution pass on a previous execution;
				// stale entry.
				continue
			}
			pLock := -1
			for _, li := range st.muLocks[d.mu] {
				if int(li) >= d.at && c.trace[li].Thread == d.p {
					pLock = int(li)
					break
				}
			}
			if pLock < 0 {
				addBacktrack(d.i, d.p) // lock never ran: be conservative
				continue
			}
			a := summarizeCS(c.trace, d.i)
			b := summarizeCS(c.trace, pLock)
			if a.clean && b.clean && disjoint(a, b) && ladderOK(c.trace, d.i, d.mu) {
				continue
			}
			addBacktrack(d.i, d.p)
		}
		deferred = deferred[:0]
	}

	var tids tidPool
	var i32s slicePool[int32]
	var ops slicePool[event.Op]
	var npool nodePool[dnode]

	// freeNode returns a popped node's buffers to the pools.
	freeNode := func(n *dnode) {
		tids.put(n.enabled)
		i32s.put(n.steps)
		ops.put(n.pend)
		npool.put(n)
	}

	makeNode := func() *dnode {
		en := c.enabled()
		n := npool.get()
		*n = dnode{
			enabled: tids.copyOf(en),
			steps:   grown(i32s.get(), nthreads),
			pend:    grown(ops.get(), nthreads),
		}
		for _, t := range en {
			n.enabledSet.add(t)
		}
		for q := 0; q < nthreads; q++ {
			t := event.ThreadID(q)
			n.steps[q] = c.m.Steps(t)
			if op, ok := c.m.Pending(t); ok {
				n.pend[q] = op
				n.pendSet.add(t)
			}
		}
		if e.sleep && len(nodes) == 0 {
			// The subtree root: a work-stealing coordinator shipped the
			// sleep set this node would carry in the sequential search
			// (already filtered by dependence against the prefix's last
			// event); a standalone search starts with nothing asleep.
			n.sleep = tset(opt.SleepSeed)
		}
		if e.sleep && len(nodes) > 0 {
			parent := nodes[len(nodes)-1]
			execOp := c.trace[len(c.trace)-1].Op
			inherit := parent.sleep | (parent.done &^ (1 << uint(parent.chosen)))
			for q := 0; q < nthreads; q++ {
				t := event.ThreadID(q)
				if inherit.has(t) && parent.pendSet.has(t) && !event.Dependent(parent.pend[q], execOp) {
					n.sleep.add(t)
				}
			}
		}
		return n
	}

	// extend runs the current execution forward to a terminal,
	// truncation or sleep-block, applying DPOR updates at every
	// state. It returns false when the schedule limit fires.
	extend := func() bool {
		for {
			if c.truncated() {
				rec.cutShort(c)
				resolveDeferred()
				return !rec.schedule()
			}
			updates()
			en := c.enabled()
			if len(en) == 0 {
				rec.terminal(c)
				resolveDeferred()
				return !rec.schedule()
			}
			n := makeNode()
			pick := event.ThreadID(-1)
			for _, t := range en {
				if !e.sleep || !n.sleep.has(t) {
					pick = t
					break
				}
			}
			if pick < 0 {
				// Every enabled thread is asleep: this
				// execution is redundant.
				nodes = append(nodes, n)
				rec.res.SleepBlocked++
				resolveDeferred()
				return !rec.schedule()
			}
			n.backtrack.add(pick)
			n.done.add(pick)
			n.chosen = pick
			nodes = append(nodes, n)
			st.step(pick)
		}
	}

	if !extend() {
		return rec.finish(c)
	}
	for len(nodes) > 0 {
		maybeDonate()
		d := len(nodes) - 1
		n := nodes[d]
		// Sleeping backtrack candidates are explored like any other:
		// their subtrees sleep-block quickly, but skipping them
		// outright is unsound under selective search — the sibling
		// subtree that would cover them was itself pruned by DPOR, and
		// the fuzz harness (FuzzEngineEquivalence) found programs
		// where the shortcut silently dropped happens-before classes.
		// Sleep sets here prune continuations, never branch choices.
		cand := n.backtrack &^ n.done
		if cand.empty() {
			freeNode(n)
			nodes = nodes[:d]
			// A popped published node leaves the published region; a
			// later re-extension re-uses its depth for a different
			// node, whose reversals must stay local until it is
			// published itself.
			if pubLocal > d {
				pubLocal = d
			}
			continue
		}
		p := cand.first()
		n.done.add(p)
		n.chosen = p
		st.resetTo(base + d)
		st.step(p)
		if !extend() {
			break
		}
	}
	return rec.finish(c)
}
