package explore

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// soundnessZoo collects exhaustively explorable programs that between
// them exercise every edge type the engines must reason about. Random
// programs whose schedule space exceeds the probe budget are skipped —
// the agreement checks need exhaustion to be meaningful.
//
// In -short mode the zoo keeps the six curated programs plus a reduced
// random sample (still ≥ the largest slice any test takes), so every
// agreement check runs a cheaper variant rather than being skipped.
// The zoo is memoised per size: many tests iterate it, and rebuilding
// it costs dozens of exhaustive probe explorations each time.
var zooCache = map[int][]model.Source{}

func soundnessZoo() []model.Source {
	size := 26
	if testing.Short() {
		size = 12
	}
	if zoo, ok := zooCache[size]; ok {
		return zoo
	}
	var zoo []model.Source
	zoo = append(zoo,
		curatedFigure1(),
		curatedDisjointLocks(),
		curatedSharedCounter(),
		curatedSpawnJoinTree(),
		curatedDeadlockable(),
		curatedMixedMutexVar(),
		curatedChanRace(),
		curatedChanCloseRace(),
		curatedChanSelect(),
	)
	probe := NewDFS()
	for seed := int64(100); seed < 140 && len(zoo) < size; seed++ {
		p := genRandomProgram(seed)
		if res := probe.Explore(p, Options{ScheduleLimit: 5000, MaxSteps: 2000}); res.HitLimit {
			continue
		}
		zoo = append(zoo, p)
	}
	zooCache[size] = zoo
	return zoo
}

// exploreStates runs the engine without limits and returns the exact
// terminal state set.
func exploreStates(t *testing.T, eng Engine, src model.Source) Result {
	t.Helper()
	res := eng.Explore(src, Options{MaxSteps: 2000, RecordStates: true})
	if res.HitLimit {
		t.Fatalf("%s on %s unexpectedly hit a limit", eng.Name(), src.Name())
	}
	if err := res.CheckInvariant(); err != nil {
		t.Fatalf("%s on %s: %v", eng.Name(), src.Name(), err)
	}
	return res
}

// TestEnginesAgreeOnStates is the central soundness check: every
// systematic engine must discover exactly the same set of terminal
// states as exhaustive DFS — partial-order reduction and caching may
// skip schedules, never states.
func TestEnginesAgreeOnStates(t *testing.T) {
	engines := []Engine{
		NewDPOR(false),
		NewDPOR(true),
		NewHBRCache(),
		NewLazyHBRCache(),
		NewLazyDPOR(),
	}
	for _, src := range soundnessZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			want := exploreStates(t, NewDFS(), src)
			for _, eng := range engines {
				got := exploreStates(t, eng, src)
				if !reflect.DeepEqual(got.States, want.States) {
					t.Errorf("%s found %d states, dfs found %d\n got=%v\nwant=%v",
						eng.Name(), got.DistinctStates, want.DistinctStates, got.States, want.States)
				}
				if got.Schedules > want.Schedules {
					t.Errorf("%s explored %d schedules, more than exhaustive DFS's %d",
						eng.Name(), got.Schedules, want.Schedules)
				}
				// Reduction engines must also agree on every safety verdict.
				if (got.Deadlocks > 0) != (want.Deadlocks > 0) {
					t.Errorf("%s deadlock verdict %v, dfs %v", eng.Name(), got.Deadlocks > 0, want.Deadlocks > 0)
				}
				if (got.AssertFailures > 0) != (want.AssertFailures > 0) {
					t.Errorf("%s assert verdict differs from dfs", eng.Name())
				}
			}
		})
	}
}

// TestEnginesAgreeOnLazyHBRs: on exhausted spaces every systematic
// engine must also count the same distinct lazy HBR classes... except
// the caching engines, which deliberately stop exploring a class once
// one representative completes — they still must find every *state*.
// DPOR variants, which prune only HBR-equivalent schedules, must agree
// with DFS on the full class counts.
func TestEnginesAgreeOnLazyHBRs(t *testing.T) {
	for _, src := range soundnessZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			want := exploreStates(t, NewDFS(), src)
			for _, eng := range []Engine{NewDPOR(false), NewDPOR(true)} {
				got := exploreStates(t, eng, src)
				if got.DistinctHBRs != want.DistinctHBRs {
					t.Errorf("%s found %d HBRs, dfs %d", eng.Name(), got.DistinctHBRs, want.DistinctHBRs)
				}
				if got.DistinctLazyHBRs != want.DistinctLazyHBRs {
					t.Errorf("%s found %d lazy HBRs, dfs %d", eng.Name(), got.DistinctLazyHBRs, want.DistinctLazyHBRs)
				}
			}
		})
	}
}

// TestHBRCachingCompletesOnePerClass: on exhausted spaces, regular HBR
// caching completes exactly one schedule per HBR class and lazy HBR
// caching exactly one per lazy class.
func TestHBRCachingCompletesOnePerClass(t *testing.T) {
	for _, src := range soundnessZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			dfs := exploreStates(t, NewDFS(), src)
			reg := exploreStates(t, NewHBRCache(), src)
			if reg.Terminals != dfs.DistinctHBRs {
				t.Errorf("hbr-caching completed %d schedules, want one per HBR class (%d)",
					reg.Terminals, dfs.DistinctHBRs)
			}
			lazy := exploreStates(t, NewLazyHBRCache(), src)
			if lazy.Terminals != dfs.DistinctLazyHBRs {
				t.Errorf("lazy-hbr-caching completed %d schedules, want one per lazy class (%d)",
					lazy.Terminals, dfs.DistinctLazyHBRs)
			}
			if lazy.Terminals > reg.Terminals {
				t.Errorf("lazy caching completed more schedules (%d) than regular (%d)",
					lazy.Terminals, reg.Terminals)
			}
		})
	}
}

// TestDPORReduction: DPOR must explore no more schedules than DFS and
// strictly fewer on programs with genuine independence.
func TestDPORReduction(t *testing.T) {
	src := curatedSpawnJoinTree() // two fully independent children
	dfs := exploreStates(t, NewDFS(), src)
	dpor := exploreStates(t, NewDPOR(false), src)
	if dpor.Schedules >= dfs.Schedules {
		t.Errorf("DPOR explored %d schedules, DFS %d: expected strict reduction", dpor.Schedules, dfs.Schedules)
	}
	sleep := exploreStates(t, NewDPOR(true), src)
	if sleep.Schedules > dpor.Schedules {
		t.Errorf("sleep sets increased work: %d > %d", sleep.Schedules, dpor.Schedules)
	}
}

// TestScheduleLimitHonoured: every engine stops at the limit and
// reports it.
func TestScheduleLimitHonoured(t *testing.T) {
	src := curatedSharedCounter()
	for _, eng := range []Engine{NewDFS(), NewDPOR(false), NewDPOR(true), NewHBRCache(), NewLazyHBRCache(), NewLazyDPOR(), NewRandomWalk(3)} {
		res := eng.Explore(src, Options{ScheduleLimit: 5, MaxSteps: 2000})
		if res.Schedules != 5 || !res.HitLimit {
			t.Errorf("%s: schedules=%d hitLimit=%v, want 5/true", eng.Name(), res.Schedules, res.HitLimit)
		}
	}
}

// TestReplayVsSnapshotIdentical: disabling snapshots must not change
// any count on any engine (the ablation knob is purely mechanical).
func TestReplayVsSnapshotIdentical(t *testing.T) {
	for _, src := range soundnessZoo()[:10] {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			for _, eng := range []Engine{NewDFS(), NewDPOR(false), NewLazyHBRCache()} {
				snap := eng.Explore(src, Options{MaxSteps: 2000})
				repl := eng.Explore(src, Options{MaxSteps: 2000, DisableSnapshots: true})
				if snap.Schedules != repl.Schedules ||
					snap.DistinctHBRs != repl.DistinctHBRs ||
					snap.DistinctLazyHBRs != repl.DistinctLazyHBRs ||
					snap.DistinctStates != repl.DistinctStates {
					t.Errorf("%s: snapshot and replay runs disagree:\n snap=%v\n repl=%v",
						eng.Name(), snap.String(), repl.String())
				}
				if repl.Events <= snap.Events && snap.Schedules > 1 {
					t.Logf("%s: replay executed %d events vs snapshot %d (informational)",
						eng.Name(), repl.Events, snap.Events)
				}
			}
		})
	}
}

// TestRandomWalkFindsViolationsEventually: on the deadlockable program
// a seeded random walk with a healthy budget finds the deadlock.
func TestRandomWalkFindsViolationsEventually(t *testing.T) {
	res := NewRandomWalk(1).Explore(curatedDeadlockable(), Options{ScheduleLimit: 200, MaxSteps: 2000})
	if res.Deadlocks == 0 {
		t.Error("random walk (seed 1, 200 schedules) should hit the deadlock")
	}
	if res.FirstViolation == nil || res.ViolationKind != "deadlock" {
		t.Errorf("violation not captured: kind=%q", res.ViolationKind)
	}
}

// TestViolationScheduleReplays: the recorded FirstViolation schedule
// reproduces the violation via exec.Replay (through the core facade it
// is the user-facing repro artifact).
func TestViolationScheduleReplays(t *testing.T) {
	res := NewDFS().Explore(curatedDeadlockable(), Options{MaxSteps: 2000})
	if res.FirstViolation == nil {
		t.Fatal("DFS must find the deadlock")
	}
	c := newCursor(curatedDeadlockable(), Options{MaxSteps: 2000})
	defer c.close()
	for _, tid := range res.FirstViolation {
		c.step(tid)
	}
	if !c.m.Deadlocked() {
		t.Error("replaying the recorded schedule must reproduce the deadlock")
	}
}

// TestResultStringAndInvariantErrors covers the reporting paths.
func TestResultStringAndInvariantErrors(t *testing.T) {
	r := Result{Program: "p", Engine: "e", Schedules: 1, DistinctHBRs: 2}
	if err := r.CheckInvariant(); err == nil {
		t.Error("hbrs > schedules must violate the invariant")
	}
	r = Result{DistinctStates: 3, DistinctLazyHBRs: 2, DistinctHBRs: 2, Schedules: 2}
	if err := r.CheckInvariant(); err == nil {
		t.Error("states > lazy must violate the invariant")
	}
	ok := Result{Program: "p", Engine: "e", Schedules: 4, DistinctHBRs: 3, DistinctLazyHBRs: 2, DistinctStates: 1}
	if err := ok.CheckInvariant(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if ok.String() == "" {
		t.Error("String must render")
	}
}

// TestEngineNames pins the reported names.
func TestEngineNames(t *testing.T) {
	for eng, want := range map[Engine]string{
		NewDFS():          "dfs",
		NewDPOR(false):    "dpor",
		NewDPOR(true):     "dpor+sleep",
		NewHBRCache():     "hbr-caching",
		NewLazyHBRCache(): "lazy-hbr-caching",
		NewLazyDPOR():     "lazy-dpor",
		NewRandomWalk(1):  "random",
	} {
		if eng.Name() != want {
			t.Errorf("engine name %q, want %q", eng.Name(), want)
		}
	}
}

// TestTooManyThreadsPanics guards the tset encoding.
func TestTooManyThreadsPanics(t *testing.T) {
	b := progdsl.New(fmt.Sprintf("wide-%d", MaxThreads+1)).AutoStart()
	x := b.Var("x")
	for i := 0; i <= MaxThreads; i++ {
		b.Thread().Read(0, x)
	}
	defer func() {
		if recover() == nil {
			t.Error("exploring >64 threads must panic loudly")
		}
	}()
	NewDFS().Explore(b.Build(), Options{ScheduleLimit: 1})
}
