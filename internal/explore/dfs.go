package explore

import (
	"repro/internal/event"
	"repro/internal/hb"
	"repro/internal/model"
)

// cacheMode selects the pruning relation of the depth-first engine.
type cacheMode uint8

const (
	// cacheNone disables pruning: exhaustive enumeration.
	cacheNone cacheMode = iota
	// cacheHBR prunes prefixes whose regular HBR has been seen
	// before (HBR caching, Musuvathi & Qadeer). Sound by Thm 2.1.
	cacheHBR
	// cacheLazy prunes prefixes whose lazy HBR has been seen before
	// (lazy HBR caching). Sound by Thm 2.2 — the paper's immediate
	// application of the lazy relation.
	cacheLazy
)

// dfsEngine enumerates schedules depth-first, optionally pruning via
// happens-before caching.
type dfsEngine struct {
	mode cacheMode
}

// NewDFS returns the exhaustive depth-first baseline engine.
func NewDFS() Engine { return &dfsEngine{mode: cacheNone} }

// NewHBRCache returns the regular HBR caching engine.
func NewHBRCache() Engine { return &dfsEngine{mode: cacheHBR} }

// NewLazyHBRCache returns the lazy HBR caching engine.
func NewLazyHBRCache() Engine { return &dfsEngine{mode: cacheLazy} }

// Name implements Engine.
func (e *dfsEngine) Name() string {
	switch e.mode {
	case cacheHBR:
		return "hbr-caching"
	case cacheLazy:
		return "lazy-hbr-caching"
	default:
		return "dfs"
	}
}

// dfsNode is one depth of the enumeration: the enabled threads at that
// state and how many branches have been taken so far.
type dfsNode struct {
	enabled []event.ThreadID
	next    int
}

// Explore implements Engine.
func (e *dfsEngine) Explore(src model.Source, opt Options) Result {
	c := newCursor(src, opt)
	defer c.close()
	rec := newRecorder(src, e.Name(), opt, c)

	var cache Cache
	if e.mode != cacheNone {
		cache = opt.Cache
		if cache == nil {
			cache = mapCache{}
		}
	}
	prefixFP := func() hb.Fingerprint {
		if e.mode == cacheLazy {
			return c.tr.LazyFingerprint()
		}
		return c.tr.HBFingerprint()
	}

	// The pinned prefix is replayed outside the caching discipline:
	// its choices are mandated by the subtree partition, so a cache
	// hit there must not abandon the whole unit.
	base := c.replayPrefix(opt.Prefix, nil)

	var stack []dfsNode
	var pool tidPool

	// descend extends the current execution to a terminal (or
	// truncation or cache prune), pushing one node per fresh state.
	// It returns false when the schedule limit fires.
	descend := func() bool {
		for {
			if c.truncated() {
				rec.cutShort(c)
				return !rec.schedule()
			}
			en := c.enabled()
			if len(en) == 0 {
				rec.terminal(c)
				return !rec.schedule()
			}
			stack = append(stack, dfsNode{enabled: pool.copyOf(en), next: 1})
			c.step(en[0])
			if cache != nil && !cache.Add(prefixFP()) {
				// The continuation from here revisits an
				// already-covered equivalence class
				// (Thm 2.1 / Thm 2.2): prune.
				rec.res.Pruned++
				return !rec.schedule()
			}
		}
	}

	if !descend() {
		return rec.finish(c)
	}
	for len(stack) > 0 {
		d := len(stack) - 1
		n := &stack[d]
		if n.next >= len(n.enabled) {
			pool.put(n.enabled)
			stack = stack[:d]
			continue
		}
		t := n.enabled[n.next]
		n.next++
		c.resetTo(base + d)
		c.step(t)
		if cache != nil && !cache.Add(prefixFP()) {
			rec.res.Pruned++
			if rec.schedule() {
				break
			}
			continue
		}
		if !descend() {
			break
		}
	}
	return rec.finish(c)
}
