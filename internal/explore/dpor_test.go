package explore

import (
	"testing"

	"repro/internal/event"
	"repro/internal/progdsl"
)

// TestLastDepFindsWriteForPendingRead: the race-reversal search locates
// the most recent conflicting, unordered event.
func TestLastDepFindsWriteForPendingRead(t *testing.T) {
	b := progdsl.New("lastdep-rw").AutoStart()
	x := b.Var("x")
	b.Thread().WriteConst(x, 1)
	b.Thread().Read(0, x)
	st := newDPORState(b.Build(), Options{})
	defer st.c.close()

	// Execute the write; thread 1's pending read must race with it.
	st.step(0)
	op, ok := st.c.m.Pending(1)
	if !ok || op.Kind != event.KindRead {
		t.Fatalf("pending of t1 = %v, %v", op, ok)
	}
	if got := st.lastDep(1, op); got != 0 {
		t.Fatalf("lastDep = %d, want 0 (the write)", got)
	}
	// After the read executes, nothing is pending for t1.
	st.step(1)
	if _, ok := st.c.m.Pending(1); ok {
		t.Fatal("t1 should be done")
	}
}

// TestLastDepOrderedEventIsSkipped: once the reader has observed the
// write (so the write happens-before the reader's next transition), it
// is no longer a reversal candidate.
func TestLastDepOrderedEventIsSkipped(t *testing.T) {
	b := progdsl.New("lastdep-ordered").AutoStart()
	x := b.Var("x")
	b.Thread().WriteConst(x, 1)
	t2 := b.Thread()
	t2.Read(0, x).Write(x, 0)
	st := newDPORState(b.Build(), Options{})
	defer st.c.close()

	st.step(0) // write by t0
	st.step(1) // read by t1 — orders t0's write before t1's future
	op, _ := st.c.m.Pending(1)
	if op.Kind != event.KindWrite {
		t.Fatalf("pending = %v", op)
	}
	// t1's pending write conflicts with t0's write AND t1's own read,
	// but both happen-before it now.
	if got := st.lastDep(1, op); got != -1 {
		t.Fatalf("lastDep = %d, want -1 (everything ordered)", got)
	}
}

// TestLastDepLockLock: a pending lock races with the most recent lock
// of the same mutex.
func TestLastDepLockLock(t *testing.T) {
	b := progdsl.New("lastdep-lock").AutoStart()
	m := b.Mutex("m")
	b.Thread().Lock(m).Unlock(m)
	b.Thread().Lock(m).Unlock(m)
	st := newDPORState(b.Build(), Options{})
	defer st.c.close()

	st.step(0) // t0 locks
	op, _ := st.c.m.Pending(1)
	if got := st.lastDep(1, op); got != 0 {
		t.Fatalf("lastDep = %d, want 0 (t0's lock)", got)
	}
	st.step(0) // t0 unlocks
	st.step(1) // t1 locks — ordered after t0's mutex ops now
	op, _ = st.c.m.Pending(1)
	if op.Kind != event.KindUnlock {
		t.Fatalf("pending = %v", op)
	}
	if got := st.lastDep(1, op); got != -1 {
		t.Fatalf("pending unlock should have no candidates, got %d", got)
	}
}

// TestLastDepWritePrefersLatestUnorderedRead: for a pending write, the
// most recent unordered read since the last write wins over the write.
func TestLastDepWritePrefersLatestUnorderedRead(t *testing.T) {
	b := progdsl.New("lastdep-wr").AutoStart()
	x := b.Var("x")
	b.Thread().Read(0, x)
	b.Thread().Read(0, x)
	b.Thread().WriteConst(x, 5)
	st := newDPORState(b.Build(), Options{})
	defer st.c.close()

	st.step(0) // read by t0 at index 0
	st.step(1) // read by t1 at index 1
	op, _ := st.c.m.Pending(2)
	if got := st.lastDep(2, op); got != 1 {
		t.Fatalf("lastDep = %d, want 1 (the later read)", got)
	}
}

// TestDPORResetTruncatesAccessLogs: backtracking must rewind the
// per-object indices along with the trace.
func TestDPORResetTruncatesAccessLogs(t *testing.T) {
	b := progdsl.New("logs").AutoStart()
	x := b.Var("x")
	m := b.Mutex("m")
	t1 := b.Thread()
	t1.Lock(m).WriteConst(x, 1).Unlock(m)
	t2 := b.Thread()
	t2.Lock(m).Read(0, x).Unlock(m)
	st := newDPORState(b.Build(), Options{})
	defer st.c.close()

	st.step(0)
	st.step(0)
	st.step(0)
	st.step(1)
	st.step(1)
	if len(st.muLocks[0]) != 2 || len(st.varWrites[0]) != 1 || len(st.varReads[0]) != 1 {
		t.Fatalf("logs: locks=%v writes=%v reads=%v", st.muLocks[0], st.varWrites[0], st.varReads[0])
	}
	st.resetTo(1)
	if len(st.muLocks[0]) != 1 || len(st.varWrites[0]) != 0 || len(st.varReads[0]) != 0 {
		t.Fatalf("logs after reset: locks=%v writes=%v reads=%v", st.muLocks[0], st.varWrites[0], st.varReads[0])
	}
}

// TestSleepSetsReduceOrEqual: on every zoo program, sleep sets explore
// no more terminals than plain DPOR while finding the same states.
func TestSleepSetsReduceOrEqual(t *testing.T) {
	for _, src := range soundnessZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			plain := exploreStates(t, NewDPOR(false), src)
			sleep := exploreStates(t, NewDPOR(true), src)
			if sleep.Terminals > plain.Terminals {
				t.Errorf("sleep sets increased terminals: %d > %d", sleep.Terminals, plain.Terminals)
			}
			if sleep.DistinctStates != plain.DistinctStates {
				t.Errorf("sleep sets changed the state count: %d vs %d",
					sleep.DistinctStates, plain.DistinctStates)
			}
		})
	}
}

// TestDPORDeadlockCompleteness: DPOR must reach the deadlock of the
// two-lock program even though the deadlocking interleaving requires
// reversing a lock-lock race.
func TestDPORDeadlockCompleteness(t *testing.T) {
	for _, eng := range []Engine{NewDPOR(false), NewDPOR(true), NewLazyDPOR()} {
		res := eng.Explore(curatedDeadlockable(), Options{MaxSteps: 2000})
		if res.Deadlocks == 0 {
			t.Errorf("%s missed the deadlock: %v", eng.Name(), res.String())
		}
	}
}

// TestSummarizeCS pins the critical-section scanner used by lazy DPOR.
func TestSummarizeCS(t *testing.T) {
	mkEv := func(tid event.ThreadID, idx int32, op event.Op) event.Event {
		return event.Event{Thread: tid, Index: idx, Op: op}
	}
	lock := event.Op{Kind: event.KindLock, Obj: 0}
	unlock := event.Op{Kind: event.KindUnlock, Obj: 0}
	rd := event.Op{Kind: event.KindRead, Obj: 3}
	wr := event.Op{Kind: event.KindWrite, Obj: 4, Val: 1}

	tr := []event.Event{
		mkEv(0, 0, lock),
		mkEv(1, 0, event.Op{Kind: event.KindWrite, Obj: 9}), // other thread, ignored
		mkEv(0, 1, rd),
		mkEv(0, 2, wr),
		mkEv(0, 3, unlock),
	}
	cs := summarizeCS(tr, 0)
	if !cs.clean {
		t.Fatal("section is clean")
	}
	if _, ok := cs.reads[3]; !ok {
		t.Error("read set missing v3")
	}
	if _, ok := cs.writes[4]; !ok {
		t.Error("write set missing v4")
	}
	if _, ok := cs.reads[9]; ok {
		t.Error("other thread's access leaked into the summary")
	}

	// Nested lock makes the section unclean.
	nested := []event.Event{
		mkEv(0, 0, lock),
		mkEv(0, 1, event.Op{Kind: event.KindLock, Obj: 1}),
	}
	if summarizeCS(nested, 0).clean {
		t.Error("nested lock must be unclean")
	}

	// Truncated section (no unlock) is unclean.
	trunc := []event.Event{mkEv(0, 0, lock), mkEv(0, 1, rd)}
	if summarizeCS(trunc, 0).clean {
		t.Error("unterminated section must be unclean")
	}
}

// TestDisjointPredicate pins the commutation check.
func TestDisjointPredicate(t *testing.T) {
	mk := func(reads []int32, writes []int32) csSummary {
		out := csSummary{reads: map[int32]struct{}{}, writes: map[int32]struct{}{}, clean: true}
		for _, v := range reads {
			out.reads[v] = struct{}{}
		}
		for _, v := range writes {
			out.writes[v] = struct{}{}
		}
		return out
	}
	if !disjoint(mk([]int32{1}, []int32{2}), mk([]int32{3}, []int32{4})) {
		t.Error("fully disjoint sections must commute")
	}
	if disjoint(mk(nil, []int32{1}), mk([]int32{1}, nil)) {
		t.Error("write-read overlap must not commute")
	}
	if disjoint(mk(nil, []int32{1}), mk(nil, []int32{1})) {
		t.Error("write-write overlap must not commute")
	}
	if !disjoint(mk([]int32{1}, nil), mk([]int32{1}, nil)) {
		t.Error("read-read overlap commutes")
	}
}

// TestLadderOK pins the lazy DPOR soundness condition.
func TestLadderOK(t *testing.T) {
	mkEv := func(tid event.ThreadID, op event.Op) event.Event {
		return event.Event{Thread: tid, Op: op}
	}
	lk := func(m int32) event.Op { return event.Op{Kind: event.KindLock, Obj: m} }
	ul := func(m int32) event.Op { return event.Op{Kind: event.KindUnlock, Obj: m} }
	wr := func(v int32) event.Op { return event.Op{Kind: event.KindWrite, Obj: v} }

	ladder := []event.Event{
		mkEv(0, lk(0)), mkEv(0, wr(1)), mkEv(0, ul(0)),
		mkEv(1, lk(0)), mkEv(1, wr(2)), mkEv(1, ul(0)),
	}
	if !ladderOK(ladder, 0, 0) {
		t.Error("pure lock ladder must qualify")
	}
	// A tail event after a block disqualifies.
	tail := append(append([]event.Event(nil), ladder...), mkEv(0, wr(3)))
	if ladderOK(tail, 0, 0) {
		t.Error("tail event after the block must disqualify")
	}
	// A different mutex in the suffix disqualifies.
	other := []event.Event{
		mkEv(0, lk(0)), mkEv(0, ul(0)),
		mkEv(1, lk(1)), mkEv(1, ul(1)),
	}
	if ladderOK(other, 0, 0) {
		t.Error("a block on a different mutex must disqualify")
	}
	// An unterminated block disqualifies.
	openCS := []event.Event{mkEv(0, lk(0)), mkEv(0, wr(1))}
	if ladderOK(openCS, 0, 0) {
		t.Error("an open critical section must disqualify")
	}
	// A bare access before a thread's lock disqualifies.
	bare := []event.Event{
		mkEv(0, lk(0)), mkEv(0, ul(0)),
		mkEv(1, wr(2)), mkEv(1, lk(0)), mkEv(1, ul(0)),
	}
	if ladderOK(bare, 0, 0) {
		t.Error("a bare access before the lock must disqualify")
	}
}

// TestLazyDPORHeadlineReduction: on the paper's motivating coarse
// workload the lazy DPOR explores a single schedule where classic DPOR
// needs n! — while the state-agreement suite (engines_test.go)
// guarantees it loses nothing.
func TestLazyDPORHeadlineReduction(t *testing.T) {
	b := progdsl.New("coarse4").AutoStart()
	g := b.Mutex("g")
	own := b.VarArray("own", 4)
	for i := 0; i < 4; i++ {
		th := b.Thread()
		th.Lock(g)
		th.Read(0, own.At(i))
		th.AddConst(0, 0, 1)
		th.Write(own.At(i), 0)
		th.Unlock(g)
	}
	p := b.Build()
	classic := NewDPOR(false).Explore(p, Options{})
	lazy := NewLazyDPOR().Explore(p, Options{})
	if classic.Schedules != 24 {
		t.Errorf("classic DPOR explored %d schedules, want 24", classic.Schedules)
	}
	if lazy.Schedules != 1 {
		t.Errorf("lazy DPOR explored %d schedules, want 1", lazy.Schedules)
	}
	if lazy.DistinctStates != classic.DistinctStates {
		t.Errorf("lazy DPOR state count diverged: %d vs %d", lazy.DistinctStates, classic.DistinctStates)
	}
}

// TestLazyDPORConservativeOnConflicts: when critical sections share
// data, lazy DPOR must keep the reversals.
func TestLazyDPORConservativeOnConflicts(t *testing.T) {
	res := NewLazyDPOR().Explore(curatedSharedCounter(), Options{RecordStates: true})
	want := NewDFS().Explore(curatedSharedCounter(), Options{RecordStates: true})
	if res.DistinctStates != want.DistinctStates {
		t.Errorf("lazy DPOR found %d states, dfs %d", res.DistinctStates, want.DistinctStates)
	}
}
