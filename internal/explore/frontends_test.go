package explore

import (
	"repro/internal/goharness"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// buildDSLVariant constructs a small parametric program in the
// interpreter frontend: each thread increments either one shared
// counter or its private cell, optionally under a global lock.
func buildDSLVariant(name string, threads int, locked, shared bool) model.Source {
	b := progdsl.New(name + "-dsl").AutoStart()
	g := b.Mutex("g")
	sh := b.Var("shared")
	priv := b.VarArray("priv", threads)
	for i := 0; i < threads; i++ {
		i := i
		th := b.Thread()
		v := priv.At(i)
		if shared {
			v = sh
		}
		if locked {
			th.Lock(g)
		}
		th.Read(0, v)
		th.AddConst(0, 0, 1)
		th.Write(v, 0)
		if locked {
			th.Unlock(g)
		}
	}
	return b.Build()
}

// buildHarnessVariant constructs the identical logical program in the
// goroutine frontend. The two must induce the same schedule space —
// same threads, same visible operations, same blocking structure.
func buildHarnessVariant(name string, threads int, locked, shared bool) model.Source {
	p := goharness.New(name + "-gh").AutoStart()
	g := p.Mutex("g")
	sh := p.Var("shared")
	priv := make([]goharness.Var, threads)
	for i := range priv {
		priv[i] = p.Var("priv")
	}
	for i := 0; i < threads; i++ {
		i := i
		p.Thread(func(gg *goharness.G) {
			v := priv[i]
			if shared {
				v = sh
			}
			if locked {
				gg.Lock(g)
			}
			gg.Write(v, gg.Read(v)+1)
			if locked {
				gg.Unlock(g)
			}
		})
	}
	return p
}
