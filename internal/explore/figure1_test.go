package explore

import (
	"testing"

	"repro/internal/progdsl"
)

// figure1 builds the paper's Figure 1 program: T1 locks m, reads x,
// unlocks m, writes y; T2 writes z, locks m, reads x, unlocks m.
func figure1() *progdsl.Program {
	b := progdsl.New("paper-figure1").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	z := b.Var("z")
	m := b.Mutex("m")
	t1 := b.Thread()
	t1.Lock(m).Read(0, x).Unlock(m).WriteConst(y, 1)
	t2 := b.Thread()
	t2.WriteConst(z, 1).Lock(m).Read(0, x).Unlock(m)
	return b.Build()
}

// TestFigure1Exhaustive checks the worked example of the paper's
// Section 2: the schedule space collapses to exactly two regular HBR
// classes (who locks m first), one lazy HBR class, and one final state.
func TestFigure1Exhaustive(t *testing.T) {
	res := NewDFS().Explore(figure1(), Options{})
	if err := res.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if res.HitLimit {
		t.Fatal("figure1 should be exhaustively explorable")
	}
	if res.DistinctHBRs != 2 {
		t.Errorf("DistinctHBRs = %d, want 2 (T1-first and T2-first lock orders)", res.DistinctHBRs)
	}
	if res.DistinctLazyHBRs != 1 {
		t.Errorf("DistinctLazyHBRs = %d, want 1 (lazy HBR ignores the mutex edge)", res.DistinctLazyHBRs)
	}
	if res.DistinctStates != 1 {
		t.Errorf("DistinctStates = %d, want 1", res.DistinctStates)
	}
	if res.Deadlocks != 0 || res.Races != 0 || res.AssertFailures != 0 {
		t.Errorf("unexpected violations: %+v", res)
	}
	t.Logf("figure1: %v", res.String())
}

// TestFigure1DPOR checks that DPOR needs only two schedules for the
// example, as the paper states ("a POR technique would only need to
// consider two schedules").
func TestFigure1DPOR(t *testing.T) {
	res := NewDPOR(false).Explore(figure1(), Options{})
	if err := res.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if res.DistinctHBRs != 2 || res.DistinctLazyHBRs != 1 || res.DistinctStates != 1 {
		t.Errorf("DPOR classes: hbr=%d lazy=%d states=%d, want 2/1/1", res.DistinctHBRs, res.DistinctLazyHBRs, res.DistinctStates)
	}
	if res.Schedules < 2 {
		t.Errorf("DPOR explored %d schedules, must cover both lock orders", res.Schedules)
	}
	t.Logf("figure1 dpor: schedules=%d (dfs explores %d)", res.Schedules, NewDFS().Explore(figure1(), Options{}).Schedules)
}

// TestFigure1LazyCaching checks that lazy HBR caching needs only a
// single completed schedule for the example.
func TestFigure1LazyCaching(t *testing.T) {
	res := NewLazyHBRCache().Explore(figure1(), Options{})
	if res.DistinctLazyHBRs != 1 || res.DistinctStates != 1 {
		t.Errorf("lazy caching: lazy=%d states=%d, want 1/1", res.DistinctLazyHBRs, res.DistinctStates)
	}
	if res.Terminals != 1 {
		t.Errorf("lazy caching completed %d schedules, want exactly 1", res.Terminals)
	}
	hbr := NewHBRCache().Explore(figure1(), Options{})
	if hbr.Terminals != 2 {
		t.Errorf("regular HBR caching completed %d schedules, want 2", hbr.Terminals)
	}
}
