package explore

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/progdsl"
)

// divergeRacy builds the canonical conditional-divergence program:
// t1 is stuck forever iff its read observes t0's store. Exactly the
// schedules where the read follows the write diverge.
func divergeRacy() *progdsl.Program {
	b := progdsl.New("diverge-racy").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	t0 := b.Thread()
	t0.WriteConst(x, 1)
	t1 := b.Thread()
	t1.Read(0, x)
	t1.If(progdsl.Ge(0, 1), func() {
		t1.Diverge()
	}, func() {
		t1.WriteConst(y, 1)
	})
	return b.Build()
}

// panicRacy: t1 panics iff its read observes t0's store.
func panicRacy() *progdsl.Program {
	b := progdsl.New("panic-racy").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	t0 := b.Thread()
	t0.WriteConst(x, 1)
	t1 := b.Thread()
	t1.Read(0, x)
	t1.If(progdsl.Ge(0, 1), func() {
		t1.Panic(42)
	}, func() {
		t1.WriteConst(y, 1)
	})
	return b.Build()
}

// TestDivergenceCountingAcrossEngines: every systematic engine agrees
// on the divergence count and keeps the accounting identity
// Schedules = Terminals + Pruned + Truncated + SleepBlocked +
// Divergences while still covering the healthy schedules.
func TestDivergenceCountingAcrossEngines(t *testing.T) {
	engines := map[string]Engine{
		"dfs":        NewDFS(),
		"dpor":       NewDPOR(false),
		"dpor+sleep": NewDPOR(true),
		"lazy-dpor":  NewLazyDPOR(),
		"hbr":        NewHBRCache(),
		"lazy-hbr":   NewLazyHBRCache(),
		"pb2":        NewPreemptionBounded(2),
		"db2":        NewDelayBounded(2),
	}
	for name, eng := range engines {
		for _, backend := range []BackendKind{BackendUndo, BackendSnapshot, BackendReplay} {
			res := eng.Explore(divergeRacy(), Options{Backend: backend})
			if res.Divergences == 0 {
				t.Errorf("%s/%v: no divergences counted", name, backend)
			}
			if got := res.Terminals + res.Pruned + res.Truncated + res.SleepBlocked + res.Divergences; got != res.Schedules {
				t.Errorf("%s/%v: accounting %d != schedules %d (%+v)", name, backend, got, res.Schedules, res)
			}
			// The read-first schedule terminates; it must survive the
			// hostile sibling.
			if res.Terminals == 0 {
				t.Errorf("%s/%v: healthy schedules lost", name, backend)
			}
			if err := res.CheckInvariant(); err != nil {
				t.Errorf("%s/%v: %v", name, backend, err)
			}
		}
	}
}

// TestDivergenceCountsAgreeWithDFS: exhaustive engines agree with the
// DFS reference exactly, per backend.
func TestDivergenceCountsAgreeWithDFS(t *testing.T) {
	ref := NewDFS().Explore(divergeRacy(), Options{})
	if ref.Divergences != 1 {
		t.Fatalf("dfs divergences = %d, want 1 (write-then-read)", ref.Divergences)
	}
	for _, eng := range []Engine{NewHBRCache(), NewLazyHBRCache()} {
		res := eng.Explore(divergeRacy(), Options{})
		if res.Divergences != ref.Divergences {
			t.Errorf("%s divergences = %d, want %d", res.Engine, res.Divergences, ref.Divergences)
		}
	}
}

// TestSamplersClassifyDivergence: the samplers route diverging walks
// into Divergences, not Terminals or Truncated, and never hang.
func TestSamplersClassifyDivergence(t *testing.T) {
	for _, eng := range []Engine{NewRandomWalk(7), NewPCT(7, 3), NewPOS(7)} {
		res := eng.Explore(divergeRacy(), Options{ScheduleLimit: 200})
		if res.Divergences == 0 {
			t.Errorf("%s: 200 walks found no divergence", res.Engine)
		}
		if got := res.Terminals + res.Pruned + res.Truncated + res.SleepBlocked + res.Divergences; got != res.Schedules {
			t.Errorf("%s: accounting %d != schedules %d", res.Engine, got, res.Schedules)
		}
		if err := res.CheckInvariant(); err != nil {
			t.Errorf("%s: %v", res.Engine, err)
		}
	}
}

// TestPanicCountsAndPrecedence: a panicking schedule is a violation of
// kind "panic" with first-class counters, witnesses and first-bug
// support.
func TestPanicCountsAndPrecedence(t *testing.T) {
	res := NewDFS().Explore(panicRacy(), Options{})
	if res.Panics != 1 {
		t.Fatalf("Panics = %d, want 1 (%+v)", res.Panics, res)
	}
	if res.FirstViolation == nil || res.ViolationKind != "panic" {
		t.Fatalf("ViolationKind = %q, FirstViolation = %v; want a panic witness", res.ViolationKind, res.FirstViolation)
	}
	if res.Terminals == 0 {
		t.Fatal("healthy schedule lost next to the panicking one")
	}

	// StopAtFirstBug stops exactly on the panicking schedule.
	stop := NewDFS().Explore(panicRacy(), Options{StopAtFirstBug: true})
	if stop.FirstBugSchedule == 0 || stop.FirstBugSchedule != stop.Schedules {
		t.Fatalf("first-bug stop: FirstBugSchedule=%d Schedules=%d", stop.FirstBugSchedule, stop.Schedules)
	}

	// OnViolation witnesses carry the panic kind (the sibling
	// schedules' data-race witnesses are separate findings).
	panicWitnesses := 0
	NewDFS().Explore(panicRacy(), Options{OnViolation: func(w Witness) {
		if w.Kind == "panic" {
			panicWitnesses++
		}
	}})
	if panicWitnesses != 1 {
		t.Fatalf("panic witnesses = %d, want 1", panicWitnesses)
	}
}

// TestChaosEngineModes pins the fault-injection engine's contract.
func TestChaosEngineModes(t *testing.T) {
	if _, err := NewChaos("nonsense", 0); err == nil {
		t.Fatal("NewChaos accepted an unknown mode")
	}
	if _, err := NewChaos(ChaosFlaky, -1); err == nil {
		t.Fatal("NewChaos accepted a negative flake count")
	}

	// panic mode panics with a non-transient value.
	e, err := NewChaos(ChaosPanic, 0)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("chaos:panic did not panic")
			}
			if _, ok := r.(TransientError); ok {
				t.Fatal("chaos:panic must not look transient")
			}
			if !strings.Contains(fmt.Sprint(r), "chaos") {
				t.Fatalf("panic value %v does not identify chaos", r)
			}
		}()
		e.Explore(divergeRacy(), Options{})
	}()

	// flaky:N panics with TransientError N times, then delegates to DFS.
	e, err = NewChaos(ChaosFlaky, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				r := recover()
				if _, ok := r.(TransientError); !ok {
					t.Fatalf("flaky call %d: recovered %v, want TransientError", i+1, r)
				}
			}()
			e.Explore(panicRacy(), Options{})
		}()
	}
	res := e.Explore(panicRacy(), Options{})
	if res.Engine != "chaos" || res.Panics != 1 {
		t.Fatalf("flaky third call: engine=%q panics=%d, want a real DFS result", res.Engine, res.Panics)
	}

	// stall mode blocks until the context is cancelled, then reports
	// an interrupted empty result.
	e, err = NewChaos(ChaosStall, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := e.Explore(divergeRacy(), Options{Ctx: ctx}); !res.Interrupted {
		t.Fatalf("chaos:stall with cancelled ctx: %+v, want Interrupted", res)
	}
}
