package event

import (
	"strings"
	"testing"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k       Kind
		mutexOp bool
		varOp   bool
	}{
		{KindRead, false, true},
		{KindWrite, false, true},
		{KindLock, true, false},
		{KindUnlock, true, false},
		{KindSpawn, false, false},
		{KindJoin, false, false},
		{KindAssert, false, false},
	}
	for _, c := range cases {
		if c.k.IsMutexOp() != c.mutexOp {
			t.Errorf("%v.IsMutexOp() = %v", c.k, !c.mutexOp)
		}
		if c.k.IsVarOp() != c.varOp {
			t.Errorf("%v.IsVarOp() = %v", c.k, !c.varOp)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRead: "read", KindWrite: "write", KindLock: "lock",
		KindUnlock: "unlock", KindSpawn: "spawn", KindJoin: "join",
		KindAssert: "assert", KindInvalid: "invalid",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kinds should render their number")
	}
}

// TestDependentMatrix pins the dependence relation over all operation
// pairs the engines rely on.
func TestDependentMatrix(t *testing.T) {
	rd := func(o int32) Op { return Op{Kind: KindRead, Obj: o} }
	wr := func(o int32) Op { return Op{Kind: KindWrite, Obj: o} }
	lk := func(o int32) Op { return Op{Kind: KindLock, Obj: o} }
	ul := func(o int32) Op { return Op{Kind: KindUnlock, Obj: o} }

	cases := []struct {
		a, b Op
		want bool
	}{
		{rd(0), rd(0), false}, // read-read never dependent
		{rd(0), wr(0), true},  // read-write same var
		{wr(0), rd(0), true},  // symmetric
		{wr(0), wr(0), true},  // write-write same var
		{rd(0), wr(1), false}, // different vars
		{wr(0), wr(1), false}, // different vars
		{lk(0), lk(0), true},  // same mutex
		{lk(0), ul(0), true},  // same mutex
		{ul(0), ul(0), true},  // same mutex
		{lk(0), lk(1), false}, // different mutexes
		{lk(0), wr(0), false}, // mutex index 0 ≠ var index 0
		{rd(0), lk(0), false}, // var vs mutex namespaces
		{Op{Kind: KindSpawn, Obj: 1}, wr(0), false},
		{Op{Kind: KindJoin, Obj: 1}, lk(0), false},
		{Op{Kind: KindAssert}, Op{Kind: KindAssert}, false},
	}
	for _, c := range cases {
		if got := Dependent(c.a, c.b); got != c.want {
			t.Errorf("Dependent(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Dependent(c.b, c.a); got != c.want {
			t.Errorf("Dependent(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestMayBeCoEnabled(t *testing.T) {
	lk := func(o int32) Op { return Op{Kind: KindLock, Obj: o} }
	ul := func(o int32) Op { return Op{Kind: KindUnlock, Obj: o} }
	wr := func(o int32) Op { return Op{Kind: KindWrite, Obj: o} }

	if !MayBeCoEnabled(lk(0), lk(0)) {
		t.Error("two locks of a free mutex can be co-enabled")
	}
	if MayBeCoEnabled(lk(0), ul(0)) || MayBeCoEnabled(ul(0), lk(0)) {
		t.Error("lock and unlock of the same mutex can never be co-enabled")
	}
	if MayBeCoEnabled(ul(0), ul(0)) {
		t.Error("two unlocks of the same mutex can never be co-enabled")
	}
	if !MayBeCoEnabled(lk(0), ul(1)) {
		t.Error("mutex ops on different mutexes are unconstrained")
	}
	if !MayBeCoEnabled(wr(0), wr(0)) {
		t.Error("variable accesses are always co-enableable")
	}
}

func TestOpString(t *testing.T) {
	cases := map[string]Op{
		"read(v3)":     {Kind: KindRead, Obj: 3},
		"write(v1)=7":  {Kind: KindWrite, Obj: 1, Val: 7},
		"lock(m2)":     {Kind: KindLock, Obj: 2},
		"unlock(m0)":   {Kind: KindUnlock, Obj: 0},
		"spawn(t4)":    {Kind: KindSpawn, Obj: 4},
		"join(t5)":     {Kind: KindJoin, Obj: 5},
		"assert(ok)":   {Kind: KindAssert, Val: 1},
		"assert(fail)": {Kind: KindAssert, Val: 0},
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", op, got, want)
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Thread: 1, Index: 3, Op: Op{Kind: KindRead, Obj: 0}, Seen: 5}
	if got := ev.String(); got != "t1#3:read(v0)->5" {
		t.Errorf("Event.String() = %q", got)
	}
	w := Event{Thread: 0, Index: 0, Op: Op{Kind: KindWrite, Obj: 2, Val: 9}, Seen: 9}
	if got := w.String(); got != "t0#0:write(v2)=9" {
		t.Errorf("Event.String() = %q", got)
	}
}
