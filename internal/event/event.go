// Package event defines the visible operations and trace events of the
// systematic concurrency testing framework.
//
// A concurrent program under test is a set of threads; the only
// scheduling points are the *visible* operations below. Everything a
// thread does between visible operations is thread-local and therefore
// irrelevant to partial-order reduction.
package event

import (
	"fmt"
	"strings"
)

// Kind enumerates the visible operation kinds.
type Kind uint8

const (
	// KindInvalid is the zero Kind and never appears in a trace.
	KindInvalid Kind = iota
	// KindRead reads a shared variable (Obj = variable index).
	KindRead
	// KindWrite writes Val to a shared variable (Obj = variable index).
	KindWrite
	// KindLock acquires a mutex (Obj = mutex index); blocks while held.
	KindLock
	// KindUnlock releases a mutex (Obj = mutex index).
	KindUnlock
	// KindSpawn starts thread Obj.
	KindSpawn
	// KindJoin blocks until thread Obj has terminated.
	KindJoin
	// KindAssert checks a thread-local condition; Val==0 means failure.
	KindAssert
	// KindPanic is announced by a thread whose body panicked: the
	// panic is surfaced to the scheduler as a final visible operation
	// (thread-local, like a failing assert) instead of crashing the
	// harness. The panic message travels out of band (the coroutine
	// keeps it; see model.PanicMessager).
	KindPanic
	// KindDiverge is a sentinel announced for a thread stuck in local
	// computation (either deterministically by a frontend, or by the
	// wall-clock stall watchdog). It never executes and never appears
	// in a trace: the machine intercepts it, fences the thread and
	// marks the execution diverged.
	KindDiverge
	// KindSend sends Val on channel Obj. Enabled while the channel has
	// buffer capacity free (unbuffered: while a receiver is pending);
	// a send on a closed channel is enabled and fires a panic
	// violation, like Go.
	KindSend
	// KindRecv receives from channel Obj. Enabled while the channel is
	// non-empty or closed; receiving on a closed empty channel yields
	// (0, ok=false). The packed result travels in Seen (see
	// PackRecvResult).
	KindRecv
	// KindClose closes channel Obj. Always enabled; closing an
	// already-closed channel fires a panic violation, like Go.
	KindClose
	// KindSelect is a multi-channel receive: Val encodes the case set
	// and default flag (see MakeSelectVal). As a pending operation Obj
	// is -1 (unresolved); the committed trace event carries the chosen
	// channel in Obj (-1 when the default case fired) and the packed
	// receive result in Seen (see PackSelectResult). The commit is
	// deterministic — the lowest-numbered ready case wins — so case
	// nondeterminism is explored through arrival interleavings, not a
	// hidden coin flip.
	KindSelect
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindRead:    "read",
	KindWrite:   "write",
	KindLock:    "lock",
	KindUnlock:  "unlock",
	KindSpawn:   "spawn",
	KindJoin:    "join",
	KindAssert:  "assert",
	KindPanic:   "panic",
	KindDiverge: "diverge",
	KindSend:    "send",
	KindRecv:    "recv",
	KindClose:   "close",
	KindSelect:  "select",
}

// String returns the lower-case operation name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMutexOp reports whether k is a lock or unlock operation. These are
// exactly the operations whose inter-thread edges the lazy
// happens-before relation discards.
func (k Kind) IsMutexOp() bool { return k == KindLock || k == KindUnlock }

// IsVarOp reports whether k accesses a shared variable.
func (k Kind) IsVarOp() bool { return k == KindRead || k == KindWrite }

// IsChanOp reports whether k operates on a channel.
func (k Kind) IsChanOp() bool {
	return k == KindSend || k == KindRecv || k == KindClose || k == KindSelect
}

// Select case-set encoding. A select's Op.Val packs the set of case
// channels as a bitmask (bit c = a receive case on channel c) plus a
// default-case flag, which caps select-capable channels at
// MaxSelectChans. Plain send/recv/close are not mask-limited.
const (
	// MaxSelectChans is the highest channel index addressable from a
	// select case set.
	MaxSelectChans = 62
	selectDefault  = int64(1) << MaxSelectChans
)

// MakeSelectVal encodes a select case set for Op.Val.
func MakeSelectVal(mask int64, hasDefault bool) int64 {
	if hasDefault {
		mask |= selectDefault
	}
	return mask
}

// SelectCases returns the case-channel bitmask of a select Op.Val.
func SelectCases(v int64) int64 { return v &^ selectDefault }

// SelectHasDefault reports whether a select Op.Val carries a default
// case.
func SelectHasDefault(v int64) bool { return v&selectDefault != 0 }

// PackRecvResult packs a receive outcome into the single int64 a
// coroutine Resume delivers: bit 0 is the ok flag (a real value was
// drained, as opposed to the zero value of a closed empty channel) and
// the remaining bits carry the value. Channel payloads are therefore
// 63-bit.
func PackRecvResult(val int64, ok bool) int64 {
	r := val << 1
	if ok {
		r |= 1
	}
	return r
}

// UnpackRecvResult inverts PackRecvResult.
func UnpackRecvResult(r int64) (val int64, ok bool) {
	return r >> 1, r&1 != 0
}

// PackSelectResult packs a select commit outcome: the chosen channel
// (-1 when the default case fired), the received value and the ok flag.
// Bits 1..7 hold chosen+1, bit 0 the ok flag, the rest the value.
func PackSelectResult(ch int32, val int64, ok bool) int64 {
	r := val<<8 | int64(ch+1)<<1
	if ok {
		r |= 1
	}
	return r
}

// UnpackSelectResult inverts PackSelectResult.
func UnpackSelectResult(r int64) (ch int32, val int64, ok bool) {
	return int32((r>>1)&0x7f) - 1, r >> 8, r&1 != 0
}

// ThreadID identifies a thread; thread 0 is the initial thread.
type ThreadID int32

// Op is a pending visible operation, as announced by a thread to the
// scheduler before it is executed.
type Op struct {
	Kind Kind
	// Obj is the variable index (Read/Write), mutex index
	// (Lock/Unlock) or target thread (Spawn/Join). Unused for Assert.
	Obj int32
	// Val is the value to write (Write) or the condition outcome
	// (Assert: 0 = failed, 1 = passed). Unused otherwise.
	Val int64
}

// String renders the op, e.g. "write(v3)=7" or "lock(m0)".
func (o Op) String() string {
	switch o.Kind {
	case KindRead:
		return fmt.Sprintf("read(v%d)", o.Obj)
	case KindWrite:
		return fmt.Sprintf("write(v%d)=%d", o.Obj, o.Val)
	case KindLock:
		return fmt.Sprintf("lock(m%d)", o.Obj)
	case KindUnlock:
		return fmt.Sprintf("unlock(m%d)", o.Obj)
	case KindSpawn:
		return fmt.Sprintf("spawn(t%d)", o.Obj)
	case KindJoin:
		return fmt.Sprintf("join(t%d)", o.Obj)
	case KindAssert:
		if o.Val == 0 {
			return "assert(fail)"
		}
		return "assert(ok)"
	case KindPanic:
		return "panic"
	case KindDiverge:
		return "diverge"
	case KindSend:
		return fmt.Sprintf("send(c%d)=%d", o.Obj, o.Val)
	case KindRecv:
		return fmt.Sprintf("recv(c%d)", o.Obj)
	case KindClose:
		return fmt.Sprintf("close(c%d)", o.Obj)
	case KindSelect:
		var b strings.Builder
		b.WriteString("select(")
		first := true
		for c, mask := 0, SelectCases(o.Val); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 == 0 {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "c%d", c)
			first = false
		}
		if SelectHasDefault(o.Val) {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString("default")
		}
		b.WriteByte(')')
		return b.String()
	}
	return o.Kind.String()
}

// Event is an executed visible operation in a trace.
type Event struct {
	// Thread executed the event.
	Thread ThreadID
	// Index is the event's per-thread sequence number, starting at 0.
	// (Thread, Index) identifies an HBR node across schedules.
	Index int32
	Op
	// Seen is the value observed by a Read; mirrors Val for Write.
	Seen int64
}

// String renders the event, e.g. "t1#3:read(v0)->5".
func (e Event) String() string {
	s := fmt.Sprintf("t%d#%d:%s", e.Thread, e.Index, e.Op)
	switch e.Kind {
	case KindRead:
		s += fmt.Sprintf("->%d", e.Seen)
	case KindRecv:
		if val, ok := UnpackRecvResult(e.Seen); ok {
			s += fmt.Sprintf("->%d", val)
		} else {
			s += "->closed"
		}
	case KindSelect:
		ch, val, ok := UnpackSelectResult(e.Seen)
		switch {
		case ch < 0:
			s += "->default"
		case ok:
			s += fmt.Sprintf("->c%d:%d", ch, val)
		default:
			s += fmt.Sprintf("->c%d:closed", ch)
		}
	}
	return s
}

// chanFootprint returns the set of channels an operation touches as a
// bitmask: the singleton {Obj} for send/recv/close, the case set for a
// select (pending or committed — a committed select observed the
// readiness of every case channel when picking the lowest ready one,
// so its footprint stays the full set). Returns 0 for non-channel
// operations and for plain operations on channels beyond the mask
// width (selects cannot name those; see MaxSelectChans).
func chanFootprint(o Op) int64 {
	switch o.Kind {
	case KindSend, KindRecv, KindClose:
		if o.Obj >= MaxSelectChans {
			return 0
		}
		return 1 << o.Obj
	case KindSelect:
		return SelectCases(o.Val)
	}
	return 0
}

// Dependent reports whether two operations are dependent in the
// partial-order-reduction sense: they do not commute. Operations of the
// same thread are always dependent; this predicate addresses the
// cross-thread case.
//
// Channel rules: operations on distinct channels are independent —
// this is the reduction that makes pipeline- and fan-in-shaped
// programs tractable. Any two operations touching a common channel are
// dependent: send/send reorder the FIFO ring, send/recv changes what
// is drained (and whether either blocks), close races with any send
// (one order panics) and with any recv (one order observes closed),
// and a select is dependent on whatever touches one of its case
// channels — including a committed default, which observed every case
// channel to be unready. Exception: two plain receives never observe
// each other's order beyond what paired sends already order, but
// keeping recv/recv dependent keeps the per-channel happens-before
// total order exact, so they stay dependent (conservative).
func Dependent(a, b Op) bool {
	switch {
	case a.Kind.IsVarOp() && b.Kind.IsVarOp():
		return a.Obj == b.Obj && (a.Kind == KindWrite || b.Kind == KindWrite)
	case a.Kind.IsMutexOp() && b.Kind.IsMutexOp():
		return a.Obj == b.Obj
	case a.Kind.IsChanOp() && b.Kind.IsChanOp():
		if a.Kind != KindSelect && b.Kind != KindSelect {
			return a.Obj == b.Obj
		}
		return chanFootprint(a)&chanFootprint(b) != 0
	default:
		return false
	}
}

// MayBeCoEnabled reports whether two dependent operations could be
// simultaneously enabled in some state. A lock and an unlock of the
// same mutex can never be co-enabled (unlock requires the mutex held by
// the unlocker; lock requires it free), nor can two unlocks of the same
// mutex (only the holder may unlock). DPOR uses this to avoid useless
// backtrack points.
//
// Every pair of channel operations may be co-enabled: closes are
// always enabled, sends are enabled together while capacity remains
// (or on a closed channel, where the panic fires), and two receives
// are co-enabled whenever the channel is non-empty or closed.
func MayBeCoEnabled(a, b Op) bool {
	if a.Kind.IsMutexOp() && b.Kind.IsMutexOp() && a.Obj == b.Obj {
		return a.Kind == KindLock && b.Kind == KindLock
	}
	return true
}
