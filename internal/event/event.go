// Package event defines the visible operations and trace events of the
// systematic concurrency testing framework.
//
// A concurrent program under test is a set of threads; the only
// scheduling points are the *visible* operations below. Everything a
// thread does between visible operations is thread-local and therefore
// irrelevant to partial-order reduction.
package event

import "fmt"

// Kind enumerates the visible operation kinds.
type Kind uint8

const (
	// KindInvalid is the zero Kind and never appears in a trace.
	KindInvalid Kind = iota
	// KindRead reads a shared variable (Obj = variable index).
	KindRead
	// KindWrite writes Val to a shared variable (Obj = variable index).
	KindWrite
	// KindLock acquires a mutex (Obj = mutex index); blocks while held.
	KindLock
	// KindUnlock releases a mutex (Obj = mutex index).
	KindUnlock
	// KindSpawn starts thread Obj.
	KindSpawn
	// KindJoin blocks until thread Obj has terminated.
	KindJoin
	// KindAssert checks a thread-local condition; Val==0 means failure.
	KindAssert
	// KindPanic is announced by a thread whose body panicked: the
	// panic is surfaced to the scheduler as a final visible operation
	// (thread-local, like a failing assert) instead of crashing the
	// harness. The panic message travels out of band (the coroutine
	// keeps it; see model.PanicMessager).
	KindPanic
	// KindDiverge is a sentinel announced for a thread stuck in local
	// computation (either deterministically by a frontend, or by the
	// wall-clock stall watchdog). It never executes and never appears
	// in a trace: the machine intercepts it, fences the thread and
	// marks the execution diverged.
	KindDiverge
)

var kindNames = [...]string{
	KindInvalid: "invalid",
	KindRead:    "read",
	KindWrite:   "write",
	KindLock:    "lock",
	KindUnlock:  "unlock",
	KindSpawn:   "spawn",
	KindJoin:    "join",
	KindAssert:  "assert",
	KindPanic:   "panic",
	KindDiverge: "diverge",
}

// String returns the lower-case operation name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMutexOp reports whether k is a lock or unlock operation. These are
// exactly the operations whose inter-thread edges the lazy
// happens-before relation discards.
func (k Kind) IsMutexOp() bool { return k == KindLock || k == KindUnlock }

// IsVarOp reports whether k accesses a shared variable.
func (k Kind) IsVarOp() bool { return k == KindRead || k == KindWrite }

// ThreadID identifies a thread; thread 0 is the initial thread.
type ThreadID int32

// Op is a pending visible operation, as announced by a thread to the
// scheduler before it is executed.
type Op struct {
	Kind Kind
	// Obj is the variable index (Read/Write), mutex index
	// (Lock/Unlock) or target thread (Spawn/Join). Unused for Assert.
	Obj int32
	// Val is the value to write (Write) or the condition outcome
	// (Assert: 0 = failed, 1 = passed). Unused otherwise.
	Val int64
}

// String renders the op, e.g. "write(v3)=7" or "lock(m0)".
func (o Op) String() string {
	switch o.Kind {
	case KindRead:
		return fmt.Sprintf("read(v%d)", o.Obj)
	case KindWrite:
		return fmt.Sprintf("write(v%d)=%d", o.Obj, o.Val)
	case KindLock:
		return fmt.Sprintf("lock(m%d)", o.Obj)
	case KindUnlock:
		return fmt.Sprintf("unlock(m%d)", o.Obj)
	case KindSpawn:
		return fmt.Sprintf("spawn(t%d)", o.Obj)
	case KindJoin:
		return fmt.Sprintf("join(t%d)", o.Obj)
	case KindAssert:
		if o.Val == 0 {
			return "assert(fail)"
		}
		return "assert(ok)"
	case KindPanic:
		return "panic"
	case KindDiverge:
		return "diverge"
	}
	return o.Kind.String()
}

// Event is an executed visible operation in a trace.
type Event struct {
	// Thread executed the event.
	Thread ThreadID
	// Index is the event's per-thread sequence number, starting at 0.
	// (Thread, Index) identifies an HBR node across schedules.
	Index int32
	Op
	// Seen is the value observed by a Read; mirrors Val for Write.
	Seen int64
}

// String renders the event, e.g. "t1#3:read(v0)->5".
func (e Event) String() string {
	s := fmt.Sprintf("t%d#%d:%s", e.Thread, e.Index, e.Op)
	if e.Kind == KindRead {
		s += fmt.Sprintf("->%d", e.Seen)
	}
	return s
}

// Dependent reports whether two operations are dependent in the
// partial-order-reduction sense: they do not commute. Operations of the
// same thread are always dependent; this predicate addresses the
// cross-thread case.
func Dependent(a, b Op) bool {
	switch {
	case a.Kind.IsVarOp() && b.Kind.IsVarOp():
		return a.Obj == b.Obj && (a.Kind == KindWrite || b.Kind == KindWrite)
	case a.Kind.IsMutexOp() && b.Kind.IsMutexOp():
		return a.Obj == b.Obj
	default:
		return false
	}
}

// MayBeCoEnabled reports whether two dependent operations could be
// simultaneously enabled in some state. A lock and an unlock of the
// same mutex can never be co-enabled (unlock requires the mutex held by
// the unlocker; lock requires it free), nor can two unlocks of the same
// mutex (only the holder may unlock). DPOR uses this to avoid useless
// backtrack points.
func MayBeCoEnabled(a, b Op) bool {
	if a.Kind.IsMutexOp() && b.Kind.IsMutexOp() && a.Obj == b.Obj {
		return a.Kind == KindLock && b.Kind == KindLock
	}
	return true
}
