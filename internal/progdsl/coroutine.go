package progdsl

import (
	"repro/internal/event"
	"repro/internal/model"
)

// coroutine interprets one thread's code. Local instructions run
// eagerly inside Peek until a visible operation (or termination) is
// reached; Resume consumes the visible operation. The coroutine is
// snapshotable: its whole state is the program counter and registers.
type coroutine struct {
	code    *threadCode
	regs    []int64
	pc      int32
	pending event.Op
	have    bool
	done    bool
}

var _ model.Snapshottable = (*coroutine)(nil)

// Peek implements model.Coroutine.
func (c *coroutine) Peek() (event.Op, bool) {
	if c.done {
		return event.Op{}, false
	}
	if c.have {
		return c.pending, true
	}
	for {
		if int(c.pc) >= len(c.code.instrs) {
			c.done = true
			return event.Op{}, false
		}
		in := c.code.instrs[c.pc]
		switch in.kind {
		case iRead:
			c.pending = event.Op{Kind: event.KindRead, Obj: in.b}
		case iWrite:
			c.pending = event.Op{Kind: event.KindWrite, Obj: in.a, Val: c.regs[in.b]}
		case iWriteI:
			c.pending = event.Op{Kind: event.KindWrite, Obj: in.a, Val: in.imm}
		case iLock:
			c.pending = event.Op{Kind: event.KindLock, Obj: in.a}
		case iUnlock:
			c.pending = event.Op{Kind: event.KindUnlock, Obj: in.a}
		case iSpawn:
			c.pending = event.Op{Kind: event.KindSpawn, Obj: in.a}
		case iJoin:
			c.pending = event.Op{Kind: event.KindJoin, Obj: in.a}
		case iReadD:
			c.pending = event.Op{Kind: event.KindRead, Obj: dynObj(in, c.regs)}
		case iWriteD:
			c.pending = event.Op{Kind: event.KindWrite, Obj: dynObj(in, c.regs), Val: c.regs[in.a]}
		case iLockD:
			c.pending = event.Op{Kind: event.KindLock, Obj: dynObj(in, c.regs)}
		case iUnlockD:
			c.pending = event.Op{Kind: event.KindUnlock, Obj: dynObj(in, c.regs)}
		case iAssertC:
			ok := in.cmp.eval(c.regs[in.a], in.operand(c.regs))
			v := int64(0)
			if ok {
				v = 1
			}
			c.pending = event.Op{Kind: event.KindAssert, Val: v}
		case iPanic:
			c.pending = event.Op{Kind: event.KindPanic, Val: in.imm}
		case iSend:
			c.pending = event.Op{Kind: event.KindSend, Obj: in.a, Val: c.regs[in.b]}
		case iSendI:
			c.pending = event.Op{Kind: event.KindSend, Obj: in.a, Val: in.imm}
		case iRecv:
			c.pending = event.Op{Kind: event.KindRecv, Obj: in.b}
		case iClose:
			c.pending = event.Op{Kind: event.KindClose, Obj: in.a}
		case iSelect:
			// Obj = -1: unresolved; the machine commits to a concrete
			// channel and delivers the packed outcome through Resume.
			c.pending = event.Op{Kind: event.KindSelect, Obj: -1, Val: in.imm}
		case iDiverge:
			// The divergence sentinel: the machine fences the thread on
			// sight and never Resumes it, so the interpreter models "stuck
			// forever" without actually looping.
			c.pending = event.Op{Kind: event.KindDiverge}
		case iConst:
			c.regs[in.a] = in.imm
			c.pc++
			continue
		case iMov:
			c.regs[in.a] = c.regs[in.b]
			c.pc++
			continue
		case iAdd:
			c.regs[in.a] = c.regs[in.b] + c.regs[in.c]
			c.pc++
			continue
		case iAddI:
			c.regs[in.a] = c.regs[in.b] + in.imm
			c.pc++
			continue
		case iSub:
			c.regs[in.a] = c.regs[in.b] - c.regs[in.c]
			c.pc++
			continue
		case iMul:
			c.regs[in.a] = c.regs[in.b] * c.regs[in.c]
			c.pc++
			continue
		case iMod:
			m := c.regs[in.b] % in.imm
			if m < 0 {
				m += in.imm
			}
			c.regs[in.a] = m
			c.pc++
			continue
		case iJmp:
			c.pc = in.a
			continue
		case iJcc:
			if in.cmp.eval(c.regs[in.b], in.operand(c.regs)) {
				c.pc = in.a
			} else {
				c.pc++
			}
			continue
		default:
			panic("progdsl: invalid instruction reached interpreter")
		}
		c.have = true
		return c.pending, true
	}
}

// Resume implements model.Coroutine.
func (c *coroutine) Resume(result int64) {
	if !c.have {
		// Peek establishes the pending op; Resume without it is
		// an executor bug.
		panic("progdsl: Resume without pending operation")
	}
	in := c.code.instrs[c.pc]
	switch in.kind {
	case iRead, iReadD:
		c.regs[in.a] = result
	case iRecv:
		val, ok := event.UnpackRecvResult(result)
		c.regs[in.a] = val
		c.regs[in.c] = b2i(ok)
	case iSelect:
		ch, val, ok := event.UnpackSelectResult(result)
		c.regs[in.a] = val
		c.regs[in.b] = int64(ch)
		c.regs[in.c] = b2i(ok)
	}
	c.have = false
	if in.kind == iPanic {
		// A panicked thread never executes another instruction,
		// whatever follows in its code.
		c.done = true
		return
	}
	c.pc++
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// dynObj resolves a dynamic-index operand: base + (index register
// value modulo the array length), the modulo keeping stray indices in
// bounds deterministically.
func dynObj(in instr, regs []int64) int32 {
	i := regs[in.c] % in.imm
	if i < 0 {
		i += in.imm
	}
	return in.b + int32(i)
}

// Snapshot implements model.Snapshottable.
func (c *coroutine) Snapshot() model.Coroutine {
	cp := *c
	cp.regs = append([]int64(nil), c.regs...)
	return &cp
}
