package progdsl

import "fmt"

// FromBytes decodes an arbitrary byte string into a small, loop-free,
// guaranteed-terminating program, for fuzz-driven differential testing
// of the exploration engines: any two engines (or any engine under any
// backend or worker count) must agree on the decoded program's
// schedule-space statistics exactly as the theory predicts.
//
// The encoding is total on inputs of at least four bytes (shorter
// inputs return nil): three header bytes size the universe — threads,
// variables, mutexes — and every following pair of bytes appends one
// operation to the threads in round-robin order. Operations are
// straight-line (reads, writes, read-modify-write, single well-nested
// critical sections, assertions), so every decoded program terminates
// on every schedule, keeps its schedule space exhaustible, and can
// still exhibit races, assertion failures and mutex contention.
func FromBytes(name string, data []byte) *Program {
	if len(data) < 4 {
		return nil
	}
	nthreads := 2 + int(data[0]%2)
	nvars := 1 + int(data[1]%3)
	nmutexes := 1 + int(data[2]%2)
	b := New(name).AutoStart()
	vars := b.VarArray("v", nvars)
	mus := b.MutexArray("m", nmutexes)
	threads := make([]*ThreadBuilder, nthreads)
	for i := range threads {
		threads[i] = b.Thread()
	}

	// maxOps bounds the decoded program so exhaustive enumeration stays
	// cheap even on adversarial inputs; surplus bytes are ignored.
	const maxOps = 10
	body := data[3:]
	for k := 0; k+1 < len(body) && k/2 < maxOps; k += 2 {
		op, arg := body[k], body[k+1]
		th := threads[(k/2)%nthreads]
		v := vars.At(int(arg) % nvars)
		m := mus.At(int(arg) % nmutexes)
		imm := int64(arg >> 4)
		switch op % 6 {
		case 0:
			th.Read(0, v)
		case 1:
			th.WriteConst(v, imm)
		case 2:
			th.Read(0, v).AddConst(0, 0, 1).Write(v, 0)
		case 3:
			th.Lock(m)
			if arg%2 == 0 {
				th.Read(1, v)
			} else {
				th.WriteConst(v, imm)
			}
			th.Unlock(m)
		case 4:
			// An assertion that real interleavings can fail: reading a
			// counter both racy and lock-protected writers bump.
			th.Read(0, v).AssertLt(0, 1+imm%4)
		default:
			th.Lock(m)
			th.Read(1, v).AddConst(1, 1, imm%3).Write(v, 1)
			th.Unlock(m)
		}
	}
	return b.Build()
}

// HostileFromBytes decodes an arbitrary byte string like FromBytes but
// with two extra operation kinds — panicking and diverging thread
// bodies — for fuzz-driven differential testing of the fault-
// containment paths: engines and backends must agree exactly on
// Divergences and Panics, and a diverging thread must never corrupt
// the counters of the surviving schedules. It is a separate decoder
// (and a separate fuzz corpus) so FromBytes keeps its documented
// guaranteed-terminating contract and its corpus stays stable.
func HostileFromBytes(name string, data []byte) *Program {
	if len(data) < 4 {
		return nil
	}
	nthreads := 2 + int(data[0]%2)
	nvars := 1 + int(data[1]%3)
	b := New(name).AutoStart()
	vars := b.VarArray("v", nvars)
	threads := make([]*ThreadBuilder, nthreads)
	for i := range threads {
		threads[i] = b.Thread()
	}

	const maxOps = 8
	body := data[3:]
	for k := 0; k+1 < len(body) && k/2 < maxOps; k += 2 {
		op, arg := body[k], body[k+1]
		th := threads[(k/2)%nthreads]
		v := vars.At(int(arg) % nvars)
		imm := int64(arg >> 4)
		switch op % 6 {
		case 0:
			th.Read(0, v)
		case 1:
			th.WriteConst(v, imm)
		case 2:
			th.Read(0, v).AddConst(0, 0, 1).Write(v, 0)
		case 3:
			th.Read(0, v).AssertLt(0, 1+imm%4)
		case 4:
			// A panic a racy read can make conditional: the hostile
			// analogue of the failing assertion.
			th.Read(0, v).If(Ge(0, 1+imm%4), func() { th.Panic(imm) }, nil)
		default:
			// Divergence, sometimes guarded by a racy read so only some
			// schedules diverge — the case that exercises hint replay.
			if arg%2 == 0 {
				th.Diverge()
			} else {
				th.Read(0, v).If(Ge(0, 1+imm%4), func() { th.Diverge() }, nil)
			}
		}
	}
	return b.Build()
}

// ChanFromBytes decodes an arbitrary byte string like FromBytes but
// over channel operations — sends, blocking and non-blocking receives,
// closes, selects, plus a shared variable so channel and variable
// dependence mix. Decoded programs are straight-line and so terminate
// on every schedule, but they can deadlock (a blocking receive nobody
// serves), panic (send on closed, close of closed) and race — the
// violation classes the channel subsystem must agree on across every
// engine and backend. It is a separate decoder (and a separate fuzz
// corpus) so FromBytes keeps its documented contract and its existing
// corpus byte-meanings stay stable.
func ChanFromBytes(name string, data []byte) *Program {
	if len(data) < 4 {
		return nil
	}
	nthreads := 2 + int(data[0]%2)
	nchans := 1 + int(data[1]%2)
	b := New(name).AutoStart()
	sink := b.Var("sink")
	chans := make([]Chan, nchans)
	for i := range chans {
		// Capacity 0 (rendezvous), 1 or 2, drawn per channel from the
		// third header byte.
		chans[i] = b.Chan(fmt.Sprintf("c%d", i), int(data[2]>>(2*i))%3)
	}
	threads := make([]*ThreadBuilder, nthreads)
	for i := range threads {
		threads[i] = b.Thread()
	}

	const maxOps = 8
	body := data[3:]
	for k := 0; k+1 < len(body) && k/2 < maxOps; k += 2 {
		op, arg := body[k], body[k+1]
		th := threads[(k/2)%nthreads]
		c := chans[int(arg)%nchans]
		imm := int64(arg >> 4)
		switch op % 6 {
		case 0:
			th.SendConst(c, imm)
		case 1:
			th.Recv(0, 1, c)
		case 2:
			th.TryRecv(0, 1, c)
		case 3:
			th.Close(c)
		case 4:
			th.Select(0, 1, 2, arg%2 == 0, chans...)
		default:
			// A drained value flowing into the store: channel and
			// variable dependence interact.
			th.Recv(0, 1, c).Write(sink, 0)
		}
	}
	return b.Build()
}

// FuzzCorpus returns n deterministic FromBytes inputs derived from
// seed — the shared program source for differential tests that need a
// sizeable generated corpus without checking hundreds of files in.
func FuzzCorpus(n int, seed uint64) [][]byte {
	out := make([][]byte, 0, n)
	state := seed
	next := func() byte {
		// splitmix64 step; byte taken from the top, which mixes best.
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return byte((z ^ (z >> 31)) >> 56)
	}
	for i := 0; i < n; i++ {
		data := make([]byte, 4+int(next())%16)
		for j := range data {
			data[j] = next()
		}
		out = append(out, data)
	}
	return out
}

// CorpusName renders a stable program name for the i-th corpus entry.
func CorpusName(prefix string, i int) string { return fmt.Sprintf("%s-%03d", prefix, i) }
