package progdsl

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/model"
)

// Builder assembles a Program. Obtain one with New, declare variables,
// mutexes and threads, then call Build.
type Builder struct {
	name      string
	varNames  []string
	muNames   []string
	chanNames []string
	chanCaps  []int32
	threads   []*ThreadBuilder
	initStore map[Var]int64
	autoStart bool
	err       error
}

// New returns an empty program builder.
func New(name string) *Builder {
	return &Builder{name: name, initStore: map[Var]int64{}}
}

// AutoStart makes every declared thread runnable at the initial state,
// removing the need for explicit Spawn/Join in the main thread. This
// matches the common SCT benchmark convention where all threads are
// live from the start.
func (b *Builder) AutoStart() *Builder {
	b.autoStart = true
	return b
}

// Var declares a shared variable initialised to zero.
func (b *Builder) Var(name string) Var {
	b.varNames = append(b.varNames, name)
	return Var(len(b.varNames) - 1)
}

// VarInit declares a shared variable with an initial value.
func (b *Builder) VarInit(name string, init int64) Var {
	v := b.Var(name)
	b.initStore[v] = init
	return v
}

// Mutex declares a mutex, initially free.
func (b *Builder) Mutex(name string) Mutex {
	b.muNames = append(b.muNames, name)
	return Mutex(len(b.muNames) - 1)
}

// Chan declares a channel with the given buffer capacity; 0 means
// unbuffered (rendezvous).
func (b *Builder) Chan(name string, capacity int) Chan {
	if capacity < 0 {
		b.fail("Chan %q capacity %d", name, capacity)
		capacity = 0
	}
	b.chanNames = append(b.chanNames, name)
	b.chanCaps = append(b.chanCaps, int32(capacity))
	return Chan(len(b.chanNames) - 1)
}

// VarArray is a contiguous block of shared variables addressable with a
// runtime index.
type VarArray struct {
	base Var
	n    int
}

// Len returns the array length.
func (a VarArray) Len() int { return a.n }

// At returns the variable at compile-time index i.
func (a VarArray) At(i int) Var {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("progdsl: VarArray index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Var(i)
}

// VarArray declares n shared variables name[0..n-1], all zero.
func (b *Builder) VarArray(name string, n int) VarArray {
	if n <= 0 {
		b.fail("VarArray %q length %d", name, n)
		n = 1
	}
	base := Var(len(b.varNames))
	for i := 0; i < n; i++ {
		b.varNames = append(b.varNames, fmt.Sprintf("%s[%d]", name, i))
	}
	return VarArray{base: base, n: n}
}

// MutexArray is a contiguous block of mutexes addressable with a
// runtime index.
type MutexArray struct {
	base Mutex
	n    int
}

// Len returns the array length.
func (a MutexArray) Len() int { return a.n }

// At returns the mutex at compile-time index i.
func (a MutexArray) At(i int) Mutex {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("progdsl: MutexArray index %d out of range [0,%d)", i, a.n))
	}
	return a.base + Mutex(i)
}

// MutexArray declares n mutexes name[0..n-1].
func (b *Builder) MutexArray(name string, n int) MutexArray {
	if n <= 0 {
		b.fail("MutexArray %q length %d", name, n)
		n = 1
	}
	base := Mutex(len(b.muNames))
	for i := 0; i < n; i++ {
		b.muNames = append(b.muNames, fmt.Sprintf("%s[%d]", name, i))
	}
	return MutexArray{base: base, n: n}
}

// Thread declares a new thread and returns its builder. The first
// declared thread is thread 0, the initial thread.
func (b *Builder) Thread() *ThreadBuilder {
	t := &ThreadBuilder{prog: b, id: event.ThreadID(len(b.threads))}
	b.threads = append(b.threads, t)
	return t
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("progdsl[%s]: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Build validates and freezes the program. It panics on malformed
// programs: builders run at test/benchmark setup time where a panic is
// the clearest failure mode.
func (b *Builder) Build() *Program {
	if len(b.threads) == 0 {
		b.fail("no threads declared")
	}
	for _, t := range b.threads {
		if t.openBlocks != 0 {
			b.fail("thread %d: unclosed control block", t.id)
		}
		for pc, in := range t.instrs {
			b.validate(t, pc, in)
		}
	}
	if b.err != nil {
		panic(b.err)
	}
	p := &Program{
		name:      b.name,
		nvars:     len(b.varNames),
		nmutexes:  len(b.muNames),
		varNames:  append([]string(nil), b.varNames...),
		muNames:   append([]string(nil), b.muNames...),
		chanNames: append([]string(nil), b.chanNames...),
		chanCaps:  append([]int32(nil), b.chanCaps...),
		autoStart: b.autoStart,
	}
	for v, x := range b.initStore {
		if p.init == nil {
			p.init = make(map[int32]int64)
		}
		p.init[int32(v)] = x
	}
	for _, t := range b.threads {
		p.code = append(p.code, threadCode{
			instrs: append([]instr(nil), t.instrs...),
			nregs:  t.maxReg + 1,
		})
	}
	return p
}

func (b *Builder) validate(t *ThreadBuilder, pc int, in instr) {
	checkReg := func(r int32) {
		if r < 0 || r > t.maxReg {
			b.fail("thread %d pc %d: register r%d out of range", t.id, pc, r)
		}
	}
	checkVar := func(v int32) {
		if v < 0 || int(v) >= len(b.varNames) {
			b.fail("thread %d pc %d: variable v%d undeclared", t.id, pc, v)
		}
	}
	checkMu := func(m int32) {
		if m < 0 || int(m) >= len(b.muNames) {
			b.fail("thread %d pc %d: mutex m%d undeclared", t.id, pc, m)
		}
	}
	checkChan := func(c int32) {
		if c < 0 || int(c) >= len(b.chanNames) {
			b.fail("thread %d pc %d: channel c%d undeclared", t.id, pc, c)
		}
	}
	checkTarget := func(x int32) {
		if x < 0 || int(x) > len(t.instrs) {
			b.fail("thread %d pc %d: jump target %d out of range", t.id, pc, x)
		}
	}
	switch in.kind {
	case iRead:
		checkReg(in.a)
		checkVar(in.b)
	case iReadD:
		checkReg(in.a)
		checkReg(in.c)
		checkVar(in.b)
		checkVar(in.b + int32(in.imm) - 1)
	case iWriteD:
		checkReg(in.a)
		checkReg(in.c)
		checkVar(in.b)
		checkVar(in.b + int32(in.imm) - 1)
	case iLockD, iUnlockD:
		checkReg(in.c)
		checkMu(in.b)
		checkMu(in.b + int32(in.imm) - 1)
	case iWrite:
		checkVar(in.a)
		checkReg(in.b)
	case iWriteI:
		checkVar(in.a)
	case iLock, iUnlock:
		checkMu(in.a)
	case iSpawn, iJoin:
		if in.a < 0 || int(in.a) >= len(b.threads) {
			b.fail("thread %d pc %d: thread t%d undeclared", t.id, pc, in.a)
		}
		if event.ThreadID(in.a) == t.id {
			b.fail("thread %d pc %d: self %s", t.id, pc, map[instrKind]string{iSpawn: "spawn", iJoin: "join"}[in.kind])
		}
	case iAssertC:
		checkReg(in.a)
		if in.useReg {
			checkReg(in.c)
		}
	case iPanic, iDiverge:
		// No operands to validate.
	case iSend:
		checkChan(in.a)
		checkReg(in.b)
	case iSendI:
		checkChan(in.a)
	case iRecv:
		checkReg(in.a)
		checkChan(in.b)
		checkReg(in.c)
	case iClose:
		checkChan(in.a)
	case iSelect:
		checkReg(in.a)
		checkReg(in.b)
		checkReg(in.c)
		if event.SelectCases(in.imm) == 0 {
			b.fail("thread %d pc %d: select with no cases", t.id, pc)
		}
		for c, mask := int32(0), event.SelectCases(in.imm); mask != 0; c, mask = c+1, mask>>1 {
			if mask&1 != 0 {
				checkChan(c)
			}
		}
	case iConst:
		checkReg(in.a)
	case iMov:
		checkReg(in.a)
		checkReg(in.b)
	case iAdd, iSub, iMul:
		checkReg(in.a)
		checkReg(in.b)
		checkReg(in.c)
	case iAddI:
		checkReg(in.a)
		checkReg(in.b)
	case iMod:
		checkReg(in.a)
		checkReg(in.b)
		if in.imm <= 0 {
			b.fail("thread %d pc %d: mod by %d", t.id, pc, in.imm)
		}
	case iJmp:
		checkTarget(in.a)
	case iJcc:
		checkTarget(in.a)
		checkReg(in.b)
		if in.useReg {
			checkReg(in.c)
		}
	default:
		b.fail("thread %d pc %d: invalid instruction", t.id, pc)
	}
}

// ThreadBuilder appends instructions to one thread's code.
type ThreadBuilder struct {
	prog       *Builder
	id         event.ThreadID
	instrs     []instr
	maxReg     int32
	openBlocks int
}

// ID returns the thread's identifier.
func (t *ThreadBuilder) ID() event.ThreadID { return t.id }

func (t *ThreadBuilder) emit(in instr) int {
	t.instrs = append(t.instrs, in)
	return len(t.instrs) - 1
}

func (t *ThreadBuilder) touch(rs ...Reg) {
	for _, r := range rs {
		if int32(r) > t.maxReg {
			t.maxReg = int32(r)
		}
	}
}

// ReadAt appends "dst = load(arr[idx mod len])", a visible operation
// with a runtime-computed address.
func (t *ThreadBuilder) ReadAt(dst Reg, arr VarArray, idx Reg) *ThreadBuilder {
	t.touch(dst, idx)
	t.emit(instr{kind: iReadD, a: int32(dst), b: int32(arr.base), c: int32(idx), imm: int64(arr.n)})
	return t
}

// WriteAt appends "store(arr[idx mod len]) = src", a visible operation
// with a runtime-computed address.
func (t *ThreadBuilder) WriteAt(arr VarArray, idx Reg, src Reg) *ThreadBuilder {
	t.touch(src, idx)
	t.emit(instr{kind: iWriteD, a: int32(src), b: int32(arr.base), c: int32(idx), imm: int64(arr.n)})
	return t
}

// LockAt appends "lock(arr[idx mod len])".
func (t *ThreadBuilder) LockAt(arr MutexArray, idx Reg) *ThreadBuilder {
	t.touch(idx)
	t.emit(instr{kind: iLockD, b: int32(arr.base), c: int32(idx), imm: int64(arr.n)})
	return t
}

// UnlockAt appends "unlock(arr[idx mod len])".
func (t *ThreadBuilder) UnlockAt(arr MutexArray, idx Reg) *ThreadBuilder {
	t.touch(idx)
	t.emit(instr{kind: iUnlockD, b: int32(arr.base), c: int32(idx), imm: int64(arr.n)})
	return t
}

// Read appends "dst = load(v)", a visible operation.
func (t *ThreadBuilder) Read(dst Reg, v Var) *ThreadBuilder {
	t.touch(dst)
	t.emit(instr{kind: iRead, a: int32(dst), b: int32(v)})
	return t
}

// Write appends "store(v) = src", a visible operation.
func (t *ThreadBuilder) Write(v Var, src Reg) *ThreadBuilder {
	t.touch(src)
	t.emit(instr{kind: iWrite, a: int32(v), b: int32(src)})
	return t
}

// WriteConst appends "store(v) = imm", a visible operation.
func (t *ThreadBuilder) WriteConst(v Var, imm int64) *ThreadBuilder {
	t.emit(instr{kind: iWriteI, a: int32(v), imm: imm})
	return t
}

// Lock appends a mutex acquisition (blocks while held elsewhere).
func (t *ThreadBuilder) Lock(m Mutex) *ThreadBuilder {
	t.emit(instr{kind: iLock, a: int32(m)})
	return t
}

// Unlock appends a mutex release.
func (t *ThreadBuilder) Unlock(m Mutex) *ThreadBuilder {
	t.emit(instr{kind: iUnlock, a: int32(m)})
	return t
}

// Spawn appends a spawn of the other thread.
func (t *ThreadBuilder) Spawn(other *ThreadBuilder) *ThreadBuilder {
	t.emit(instr{kind: iSpawn, a: int32(other.id)})
	return t
}

// Join appends a join on the other thread (blocks until it terminates).
func (t *ThreadBuilder) Join(other *ThreadBuilder) *ThreadBuilder {
	t.emit(instr{kind: iJoin, a: int32(other.id)})
	return t
}

// Send appends "send(c) = src", a visible operation. It blocks while
// the channel is full (unbuffered: until a receiver is pending) and
// panics — a model.FailPanic violation — if the channel is closed.
func (t *ThreadBuilder) Send(c Chan, src Reg) *ThreadBuilder {
	t.touch(src)
	t.emit(instr{kind: iSend, a: int32(c), b: int32(src)})
	return t
}

// SendConst appends "send(c) = imm", a visible operation.
func (t *ThreadBuilder) SendConst(c Chan, imm int64) *ThreadBuilder {
	t.emit(instr{kind: iSendI, a: int32(c), imm: imm})
	return t
}

// Recv appends "dst, ok = recv(c)", a visible operation. It blocks
// while the channel is empty and open; on a closed empty channel it
// yields dst=0, ok=0 (otherwise ok=1).
func (t *ThreadBuilder) Recv(dst, ok Reg, c Chan) *ThreadBuilder {
	t.touch(dst, ok)
	t.emit(instr{kind: iRecv, a: int32(dst), b: int32(c), c: int32(ok)})
	return t
}

// Close appends "close(c)", a visible operation. Closing an
// already-closed channel panics, like Go.
func (t *ThreadBuilder) Close(c Chan) *ThreadBuilder {
	t.emit(instr{kind: iClose, a: int32(c)})
	return t
}

// TryRecv appends a non-blocking receive — sugar for a single-case
// select with a default: dst, ok = recv(c) when a value (or a closed
// channel's zero) is ready, else dst=0, ok=0 without blocking. ok is 1
// only when a real value was drained.
func (t *ThreadBuilder) TryRecv(dst, ok Reg, c Chan) *ThreadBuilder {
	t.touch(dst, ok)
	t.emit(instr{
		kind: iSelect, a: int32(dst), b: int32(ok), c: int32(ok),
		imm: event.MakeSelectVal(1<<int32(c), true),
	})
	return t
}

// Select appends a multi-channel receive over the case channels cs, a
// single visible operation. The machine commits it deterministically —
// the lowest-numbered ready channel wins; case nondeterminism is
// explored through arrival interleavings — writing the received value
// to valDst, the chosen channel number to idxDst (-1 when the default
// fired) and the ok flag to okDst. Without a default the select blocks
// until some case channel is ready (non-empty or closed).
func (t *ThreadBuilder) Select(valDst, idxDst, okDst Reg, hasDefault bool, cs ...Chan) *ThreadBuilder {
	t.touch(valDst, idxDst, okDst)
	if len(cs) == 0 {
		t.prog.fail("thread %d: select with no cases", t.id)
		cs = []Chan{0}
	}
	var mask int64
	for _, c := range cs {
		if c < 0 || c >= event.MaxSelectChans {
			t.prog.fail("thread %d: select case channel c%d out of mask range", t.id, c)
			continue
		}
		mask |= 1 << int32(c)
	}
	t.emit(instr{
		kind: iSelect, a: int32(valDst), b: int32(idxDst), c: int32(okDst),
		imm: event.MakeSelectVal(mask, hasDefault),
	})
	return t
}

// AssertEq appends "assert r == imm", a visible operation whose failure
// is recorded by the machine.
func (t *ThreadBuilder) AssertEq(r Reg, imm int64) *ThreadBuilder {
	t.touch(r)
	t.emit(instr{kind: iAssertC, a: int32(r), cmp: cmpEQ, imm: imm})
	return t
}

// AssertNe appends "assert r != imm".
func (t *ThreadBuilder) AssertNe(r Reg, imm int64) *ThreadBuilder {
	t.touch(r)
	t.emit(instr{kind: iAssertC, a: int32(r), cmp: cmpNE, imm: imm})
	return t
}

// AssertLt appends "assert r < imm".
func (t *ThreadBuilder) AssertLt(r Reg, imm int64) *ThreadBuilder {
	t.touch(r)
	t.emit(instr{kind: iAssertC, a: int32(r), cmp: cmpLT, imm: imm})
	return t
}

// AssertGe appends "assert r >= imm".
func (t *ThreadBuilder) AssertGe(r Reg, imm int64) *ThreadBuilder {
	t.touch(r)
	t.emit(instr{kind: iAssertC, a: int32(r), cmp: cmpGE, imm: imm})
	return t
}

// Panic appends a panic announcement — the thread's final visible
// operation, recorded by the machine as a model.FailPanic violation
// with the deterministic message "panic: code <code>". Whatever
// follows it in the thread's code never executes. This is the
// interpreter analogue of a goharness body panicking.
func (t *ThreadBuilder) Panic(code int64) *ThreadBuilder {
	t.emit(instr{kind: iPanic, imm: code})
	return t
}

// Diverge appends a divergence announcement: the thread declares
// itself stuck in local computation forever. The machine fences the
// thread on sight (no timeout needed) and the execution is counted in
// Result.Divergences — the interpreter analogue of a goharness body
// spinning past the stall watchdog, and the deterministic way to
// exercise divergence handling in engine tests.
func (t *ThreadBuilder) Diverge() *ThreadBuilder {
	t.emit(instr{kind: iDiverge})
	return t
}

// AssertEqReg appends "assert a == b" over two registers.
func (t *ThreadBuilder) AssertEqReg(a, b Reg) *ThreadBuilder {
	t.touch(a, b)
	t.emit(instr{kind: iAssertC, a: int32(a), cmp: cmpEQ, c: int32(b), useReg: true})
	return t
}

// AssertLtReg appends "assert a < b" over two registers.
func (t *ThreadBuilder) AssertLtReg(a, b Reg) *ThreadBuilder {
	t.touch(a, b)
	t.emit(instr{kind: iAssertC, a: int32(a), cmp: cmpLT, c: int32(b), useReg: true})
	return t
}

// Const appends the local operation "dst = imm".
func (t *ThreadBuilder) Const(dst Reg, imm int64) *ThreadBuilder {
	t.touch(dst)
	t.emit(instr{kind: iConst, a: int32(dst), imm: imm})
	return t
}

// Mov appends the local operation "dst = src".
func (t *ThreadBuilder) Mov(dst, src Reg) *ThreadBuilder {
	t.touch(dst, src)
	t.emit(instr{kind: iMov, a: int32(dst), b: int32(src)})
	return t
}

// Add appends "dst = x + y".
func (t *ThreadBuilder) Add(dst, x, y Reg) *ThreadBuilder {
	t.touch(dst, x, y)
	t.emit(instr{kind: iAdd, a: int32(dst), b: int32(x), c: int32(y)})
	return t
}

// AddConst appends "dst = src + imm".
func (t *ThreadBuilder) AddConst(dst, src Reg, imm int64) *ThreadBuilder {
	t.touch(dst, src)
	t.emit(instr{kind: iAddI, a: int32(dst), b: int32(src), imm: imm})
	return t
}

// Sub appends "dst = x - y".
func (t *ThreadBuilder) Sub(dst, x, y Reg) *ThreadBuilder {
	t.touch(dst, x, y)
	t.emit(instr{kind: iSub, a: int32(dst), b: int32(x), c: int32(y)})
	return t
}

// Mul appends "dst = x * y".
func (t *ThreadBuilder) Mul(dst, x, y Reg) *ThreadBuilder {
	t.touch(dst, x, y)
	t.emit(instr{kind: iMul, a: int32(dst), b: int32(x), c: int32(y)})
	return t
}

// ModConst appends "dst = src mod imm" (imm > 0; result in [0,imm)).
func (t *ThreadBuilder) ModConst(dst, src Reg, imm int64) *ThreadBuilder {
	t.touch(dst, src)
	t.emit(instr{kind: iMod, a: int32(dst), b: int32(src), imm: imm})
	return t
}

// Cond describes a branch condition comparing a register against an
// immediate or against another register.
type Cond struct {
	r      Reg
	op     cmp
	imm    int64
	r2     Reg
	useReg bool
}

// Eq is the condition "r == imm".
func Eq(r Reg, imm int64) Cond { return Cond{r: r, op: cmpEQ, imm: imm} }

// Ne is the condition "r != imm".
func Ne(r Reg, imm int64) Cond { return Cond{r: r, op: cmpNE, imm: imm} }

// Lt is the condition "r < imm".
func Lt(r Reg, imm int64) Cond { return Cond{r: r, op: cmpLT, imm: imm} }

// Ge is the condition "r >= imm".
func Ge(r Reg, imm int64) Cond { return Cond{r: r, op: cmpGE, imm: imm} }

// EqReg is the condition "a == b".
func EqReg(a, b Reg) Cond { return Cond{r: a, op: cmpEQ, r2: b, useReg: true} }

// NeReg is the condition "a != b".
func NeReg(a, b Reg) Cond { return Cond{r: a, op: cmpNE, r2: b, useReg: true} }

// LtReg is the condition "a < b".
func LtReg(a, b Reg) Cond { return Cond{r: a, op: cmpLT, r2: b, useReg: true} }

// GeReg is the condition "a >= b".
func GeReg(a, b Reg) Cond { return Cond{r: a, op: cmpGE, r2: b, useReg: true} }

func (c Cond) negated() cmp {
	switch c.op {
	case cmpEQ:
		return cmpNE
	case cmpNE:
		return cmpEQ
	case cmpLT:
		return cmpGE
	case cmpGE:
		return cmpLT
	}
	return cmpEQ
}

// If appends a two-armed conditional; either arm may be nil.
func (t *ThreadBuilder) If(c Cond, then func(), els func()) *ThreadBuilder {
	t.touch(c.r)
	if c.useReg {
		t.touch(c.r2)
	}
	t.openBlocks++
	// Branch to else/end when the condition is FALSE.
	jfalse := t.emit(instr{kind: iJcc, b: int32(c.r), cmp: c.negated(), imm: c.imm, c: int32(c.r2), useReg: c.useReg})
	if then != nil {
		then()
	}
	if els == nil {
		t.instrs[jfalse].a = int32(len(t.instrs))
	} else {
		jend := t.emit(instr{kind: iJmp})
		t.instrs[jfalse].a = int32(len(t.instrs))
		els()
		t.instrs[jend].a = int32(len(t.instrs))
	}
	t.openBlocks--
	return t
}

// While appends a guarded loop: the body runs while the condition
// holds. The condition is evaluated on thread-local registers only, so
// loops must be bounded by construction (e.g. a retry counter);
// unbounded spinning would make the schedule space infinite.
func (t *ThreadBuilder) While(c Cond, body func()) *ThreadBuilder {
	t.touch(c.r)
	if c.useReg {
		t.touch(c.r2)
	}
	t.openBlocks++
	top := len(t.instrs)
	jexit := t.emit(instr{kind: iJcc, b: int32(c.r), cmp: c.negated(), imm: c.imm, c: int32(c.r2), useReg: c.useReg})
	if body != nil {
		body()
	}
	t.emit(instr{kind: iJmp, a: int32(top)})
	t.instrs[jexit].a = int32(len(t.instrs))
	t.openBlocks--
	return t
}

// Repeat unrolls body n times at build time. The iteration index is
// passed to body for address arithmetic in generated benchmarks.
func (t *ThreadBuilder) Repeat(n int, body func(i int)) *ThreadBuilder {
	for i := 0; i < n; i++ {
		body(i)
	}
	return t
}

// threadCode is a frozen thread program.
type threadCode struct {
	instrs []instr
	nregs  int32
}

// Program is a frozen progdsl program; it implements model.Source and
// model.InitStorer.
type Program struct {
	name      string
	nvars     int
	nmutexes  int
	varNames  []string
	muNames   []string
	chanNames []string
	chanCaps  []int32
	code      []threadCode
	init      map[int32]int64
	autoStart bool
}

var (
	_ model.Source        = (*Program)(nil)
	_ model.InitStorer    = (*Program)(nil)
	_ model.ChannelSource = (*Program)(nil)
)

// Name implements model.Source.
func (p *Program) Name() string { return p.name }

// NumThreads implements model.Source.
func (p *Program) NumThreads() int { return len(p.code) }

// NumVars implements model.Source.
func (p *Program) NumVars() int { return p.nvars }

// NumMutexes implements model.Source.
func (p *Program) NumMutexes() int { return p.nmutexes }

// VarName returns the declared name of variable v.
func (p *Program) VarName(v int32) string { return p.varNames[v] }

// MutexName returns the declared name of mutex m.
func (p *Program) MutexName(m int32) string { return p.muNames[m] }

// NumChannels implements model.ChannelSource.
func (p *Program) NumChannels() int { return len(p.chanNames) }

// ChannelCap implements model.ChannelSource.
func (p *Program) ChannelCap(c int32) int { return int(p.chanCaps[c]) }

// ChanName returns the declared name of channel c.
func (p *Program) ChanName(c int32) string { return p.chanNames[c] }

// InitStore implements model.InitStorer.
func (p *Program) InitStore(store []int64) {
	for v, x := range p.init {
		store[v] = x
	}
}

// InitiallyRunning implements model.Source: all threads when AutoStart
// was requested, otherwise just thread 0.
func (p *Program) InitiallyRunning() []event.ThreadID {
	if !p.autoStart {
		return []event.ThreadID{0}
	}
	out := make([]event.ThreadID, len(p.code))
	for i := range out {
		out[i] = event.ThreadID(i)
	}
	return out
}

// Start implements model.Source.
func (p *Program) Start(t event.ThreadID) model.Coroutine {
	tc := &p.code[t]
	return &coroutine{code: tc, regs: make([]int64, tc.nregs)}
}

// Disassemble returns a listing of one thread's code, for debugging.
func (p *Program) Disassemble(t event.ThreadID) string {
	out := ""
	for pc, in := range p.code[t].instrs {
		out += fmt.Sprintf("%3d: %v\n", pc, in)
	}
	return out
}
