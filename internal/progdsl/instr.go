// Package progdsl provides a deterministic interpreter frontend for the
// systematic concurrency tester: programs are built with a small
// structured builder (reads, writes, locks, arithmetic, If/While/Repeat)
// and compiled to a register virtual machine whose coroutines yield to
// the scheduler at every visible operation.
//
// Interpreter coroutines are fully snapshotable (program counter plus
// registers), which lets exploration engines avoid replay, and they are
// trivially deterministic — the two properties that make this frontend
// the workhorse for the paper's large schedule-count experiments.
package progdsl

import (
	"fmt"

	"repro/internal/event"
)

// Reg names a thread-local register. Registers are int64 and start at
// zero.
type Reg int

// Var names a shared variable.
type Var int32

// Mutex names a mutex.
type Mutex int32

// Chan names a channel.
type Chan int32

type instrKind uint8

const (
	iInvalid instrKind = iota

	// Visible operations (scheduling points).
	iRead    // r[A] = load(Var(B))
	iWrite   // store(Var(A)) = r[B]
	iWriteI  // store(Var(A)) = Imm
	iLock    // lock(Mutex(A))
	iUnlock  // unlock(Mutex(A))
	iSpawn   // spawn thread A
	iJoin    // join thread A
	iReadD   // r[A] = load(Var(B + r[C] mod Imm))   — dynamic index
	iWriteD  // store(Var(B + r[C] mod Imm)) = r[A]  — dynamic index
	iLockD   // lock(Mutex(B + r[C] mod Imm))        — dynamic index
	iUnlockD // unlock(Mutex(B + r[C] mod Imm))      — dynamic index
	iAssertC // assert cond(r[A] Cmp operand) — announced as a visible assert op
	iPanic   // announce panic(Imm): the thread's final visible operation
	iDiverge // announce divergence: the thread is stuck forever; the machine fences it
	iSend    // send(Chan(A)) = r[B]
	iSendI   // send(Chan(A)) = Imm
	iRecv    // r[A], r[C] = recv(Chan(B)); r[C] gets the ok flag
	iClose   // close(Chan(A))
	iSelect  // r[A]=value, r[B]=chosen channel (-1: default), r[C]=ok; Imm = case set (event.MakeSelectVal)

	// Thread-local operations (executed eagerly, never scheduling
	// points).
	iConst // r[A] = Imm
	iMov   // r[A] = r[B]
	iAdd   // r[A] = r[B] + r[C]
	iAddI  // r[A] = r[B] + Imm
	iSub   // r[A] = r[B] - r[C]
	iMul   // r[A] = r[B] * r[C]
	iMod   // r[A] = r[B] mod C-as-imm (Imm must be > 0)
	iJmp   // pc = A
	iJcc   // if cond(r[B] Cmp operand) pc = A
)

// cmp enumerates comparison operators for iAssertC and iJcc.
type cmp uint8

const (
	cmpEQ cmp = iota // == operand
	cmpNE            // != operand
	cmpLT            // <  operand
	cmpGE            // >= operand
)

func (c cmp) eval(a, b int64) bool {
	switch c {
	case cmpEQ:
		return a == b
	case cmpNE:
		return a != b
	case cmpLT:
		return a < b
	case cmpGE:
		return a >= b
	}
	return false
}

func (c cmp) String() string {
	switch c {
	case cmpEQ:
		return "=="
	case cmpNE:
		return "!="
	case cmpLT:
		return "<"
	case cmpGE:
		return ">="
	}
	return "cmp?"
}

// instr is one VM instruction. Field use depends on kind; Imm doubles
// as the comparison operand for iJcc/iAssertC when UseReg is false,
// otherwise register C holds the operand.
type instr struct {
	kind   instrKind
	a, b   int32
	c      int32
	imm    int64
	cmp    cmp
	useReg bool
}

func (in instr) String() string {
	switch in.kind {
	case iRead:
		return fmt.Sprintf("r%d = read v%d", in.a, in.b)
	case iWrite:
		return fmt.Sprintf("write v%d = r%d", in.a, in.b)
	case iWriteI:
		return fmt.Sprintf("write v%d = %d", in.a, in.imm)
	case iLock:
		return fmt.Sprintf("lock m%d", in.a)
	case iUnlock:
		return fmt.Sprintf("unlock m%d", in.a)
	case iSpawn:
		return fmt.Sprintf("spawn t%d", in.a)
	case iJoin:
		return fmt.Sprintf("join t%d", in.a)
	case iAssertC:
		return fmt.Sprintf("assert r%d %v %s", in.a, in.cmp, in.operandString())
	case iPanic:
		return fmt.Sprintf("panic %d", in.imm)
	case iDiverge:
		return "diverge"
	case iSend:
		return fmt.Sprintf("send c%d = r%d", in.a, in.b)
	case iSendI:
		return fmt.Sprintf("send c%d = %d", in.a, in.imm)
	case iRecv:
		return fmt.Sprintf("r%d, r%d = recv c%d", in.a, in.c, in.b)
	case iClose:
		return fmt.Sprintf("close c%d", in.a)
	case iSelect:
		return fmt.Sprintf("r%d, r%d, r%d = %v", in.a, in.b, in.c, event.Op{Kind: event.KindSelect, Obj: -1, Val: in.imm})
	case iConst:
		return fmt.Sprintf("r%d = %d", in.a, in.imm)
	case iMov:
		return fmt.Sprintf("r%d = r%d", in.a, in.b)
	case iAdd:
		return fmt.Sprintf("r%d = r%d + r%d", in.a, in.b, in.c)
	case iAddI:
		return fmt.Sprintf("r%d = r%d + %d", in.a, in.b, in.imm)
	case iSub:
		return fmt.Sprintf("r%d = r%d - r%d", in.a, in.b, in.c)
	case iMul:
		return fmt.Sprintf("r%d = r%d * r%d", in.a, in.b, in.c)
	case iMod:
		return fmt.Sprintf("r%d = r%d %%%% %d", in.a, in.b, in.imm)
	case iJmp:
		return fmt.Sprintf("jmp %d", in.a)
	case iJcc:
		return fmt.Sprintf("if r%d %v %s jmp %d", in.b, in.cmp, in.operandString(), in.a)
	case iReadD:
		return fmt.Sprintf("r%d = read v[%d + r%d %%%% %d]", in.a, in.b, in.c, in.imm)
	case iWriteD:
		return fmt.Sprintf("write v[%d + r%d %%%% %d] = r%d", in.b, in.c, in.imm, in.a)
	case iLockD:
		return fmt.Sprintf("lock m[%d + r%d %%%% %d]", in.b, in.c, in.imm)
	case iUnlockD:
		return fmt.Sprintf("unlock m[%d + r%d %%%% %d]", in.b, in.c, in.imm)
	}
	return "invalid"
}

func (in instr) operandString() string {
	if in.useReg {
		return fmt.Sprintf("r%d", in.c)
	}
	return fmt.Sprintf("%d", in.imm)
}

func (in instr) operand(regs []int64) int64 {
	if in.useReg {
		return regs[in.c]
	}
	return in.imm
}
