package progdsl

import (
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/model"
)

// runToEnd drives a single-threaded program to completion with a
// trivial scheduler and returns the final store.
func runToEnd(t *testing.T, p *Program) []int64 {
	t.Helper()
	m := model.NewMachine(p)
	for steps := 0; ; steps++ {
		if steps > 10000 {
			t.Fatal("program did not terminate")
		}
		en := m.EnabledThreads(nil)
		if len(en) == 0 {
			break
		}
		m.Step(en[0])
	}
	if m.Deadlocked() {
		t.Fatal("unexpected deadlock")
	}
	store := make([]int64, p.NumVars())
	for i := range store {
		store[i] = m.Load(int32(i))
	}
	if len(m.Failures()) > 0 {
		t.Fatalf("unexpected failures: %v", m.Failures())
	}
	return store
}

func TestArithmetic(t *testing.T) {
	b := New("arith")
	out := b.VarArray("out", 6)
	th := b.Thread()
	th.Const(0, 7)
	th.Const(1, 3)
	th.Add(2, 0, 1)
	th.Write(out.At(0), 2) // 10
	th.Sub(2, 0, 1)
	th.Write(out.At(1), 2) // 4
	th.Mul(2, 0, 1)
	th.Write(out.At(2), 2) // 21
	th.AddConst(2, 0, -2)
	th.Write(out.At(3), 2) // 5
	th.ModConst(2, 0, 4)
	th.Write(out.At(4), 2) // 3
	th.Const(3, -7)
	th.ModConst(2, 3, 4)
	th.Write(out.At(5), 2) // 1 (mod keeps results non-negative)
	store := runToEnd(t, b.Build())
	want := []int64{10, 4, 21, 5, 3, 1}
	for i, w := range want {
		if store[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, store[i], w)
		}
	}
}

func TestMovAndConst(t *testing.T) {
	b := New("mov")
	x := b.Var("x")
	th := b.Thread()
	th.Const(0, 42)
	th.Mov(1, 0)
	th.Write(x, 1)
	store := runToEnd(t, b.Build())
	if store[0] != 42 {
		t.Errorf("x = %d, want 42", store[0])
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	b := New("rw")
	x := b.VarInit("x", 5)
	y := b.Var("y")
	th := b.Thread()
	th.Read(0, x)
	th.AddConst(0, 0, 1)
	th.Write(y, 0)
	th.WriteConst(x, 100)
	store := runToEnd(t, b.Build())
	if store[0] != 100 || store[1] != 6 {
		t.Errorf("store = %v, want [100 6]", store)
	}
}

func TestIfBothArms(t *testing.T) {
	build := func(cond int64) *Program {
		b := New("if")
		out := b.Var("out")
		th := b.Thread()
		th.Const(0, cond)
		th.If(Eq(0, 1), func() {
			th.WriteConst(out, 10)
		}, func() {
			th.WriteConst(out, 20)
		})
		return b.Build()
	}
	if got := runToEnd(t, build(1))[0]; got != 10 {
		t.Errorf("then-arm: out = %d, want 10", got)
	}
	if got := runToEnd(t, build(0))[0]; got != 20 {
		t.Errorf("else-arm: out = %d, want 20", got)
	}
}

func TestIfWithoutElse(t *testing.T) {
	b := New("ifnoelse")
	out := b.VarInit("out", 1)
	th := b.Thread()
	th.Const(0, 5)
	th.If(Lt(0, 3), func() { th.WriteConst(out, 99) }, nil)
	if got := runToEnd(t, b.Build())[0]; got != 1 {
		t.Errorf("out = %d, want untouched 1", got)
	}
}

func TestConditionOperators(t *testing.T) {
	cases := []struct {
		cond Cond
		reg  int64
		hit  bool
	}{
		{Eq(0, 5), 5, true},
		{Eq(0, 5), 4, false},
		{Ne(0, 5), 4, true},
		{Ne(0, 5), 5, false},
		{Lt(0, 5), 4, true},
		{Lt(0, 5), 5, false},
		{Ge(0, 5), 5, true},
		{Ge(0, 5), 4, false},
	}
	for i, c := range cases {
		b := New("cond")
		out := b.Var("out")
		th := b.Thread()
		th.Const(0, c.reg)
		th.If(c.cond, func() { th.WriteConst(out, 1) }, nil)
		got := runToEnd(t, b.Build())[0] == 1
		if got != c.hit {
			t.Errorf("case %d: condition fired=%v, want %v", i, got, c.hit)
		}
	}
}

func TestWhileCountdown(t *testing.T) {
	b := New("while")
	out := b.Var("out")
	th := b.Thread()
	th.Const(0, 5) // loop counter
	th.Const(1, 0) // accumulator
	th.While(Ge(0, 1), func() {
		th.AddConst(1, 1, 2)
		th.AddConst(0, 0, -1)
	})
	th.Write(out, 1)
	if got := runToEnd(t, b.Build())[0]; got != 10 {
		t.Errorf("out = %d, want 10", got)
	}
}

func TestWhileZeroIterations(t *testing.T) {
	b := New("while0")
	out := b.VarInit("out", 7)
	th := b.Thread()
	th.Const(0, 0)
	th.While(Ne(0, 0), func() { th.WriteConst(out, 1) })
	if got := runToEnd(t, b.Build())[0]; got != 7 {
		t.Errorf("out = %d, want 7 (zero iterations)", got)
	}
}

func TestNestedControlFlow(t *testing.T) {
	b := New("nested")
	out := b.Var("out")
	th := b.Thread()
	th.Const(0, 3) // outer counter
	th.Const(2, 0) // result
	th.While(Ge(0, 1), func() {
		th.If(Eq(0, 2), func() {
			th.AddConst(2, 2, 100)
		}, func() {
			th.AddConst(2, 2, 1)
		})
		th.AddConst(0, 0, -1)
	})
	th.Write(out, 2)
	// counter 3,2,1 → +1, +100, +1 = 102
	if got := runToEnd(t, b.Build())[0]; got != 102 {
		t.Errorf("out = %d, want 102", got)
	}
}

func TestRepeatUnrolls(t *testing.T) {
	b := New("repeat")
	out := b.VarArray("out", 3)
	th := b.Thread()
	th.Repeat(3, func(i int) {
		th.WriteConst(out.At(i), int64(i*10))
	})
	store := runToEnd(t, b.Build())
	for i := 0; i < 3; i++ {
		if store[i] != int64(i*10) {
			t.Errorf("out[%d] = %d, want %d", i, store[i], i*10)
		}
	}
}

func TestDynamicIndexing(t *testing.T) {
	b := New("dyn")
	arr := b.VarArray("arr", 4)
	got := b.Var("got")
	th := b.Thread()
	th.Const(0, 2)  // index
	th.Const(1, 55) // value
	th.WriteAt(arr, 0, 1)
	th.ReadAt(2, arr, 0)
	th.Write(got, 2)
	// Index 6 wraps modulo 4 to slot 2 as well.
	th.Const(0, 6)
	th.ReadAt(3, arr, 0)
	th.AssertEq(3, 55)
	store := runToEnd(t, b.Build())
	if store[2] != 55 || store[4] != 55 {
		t.Errorf("store = %v, want arr[2]=55, got=55", store)
	}
}

func TestDynamicLocks(t *testing.T) {
	b := New("dynlock").AutoStart()
	locks := b.MutexArray("lock", 2)
	x := b.Var("x")
	for i := 0; i < 2; i++ {
		th := b.Thread()
		th.Const(0, int64(i))
		th.LockAt(locks, 0)
		th.Read(1, x)
		th.AddConst(1, 1, 1)
		th.Write(x, 1)
		th.UnlockAt(locks, 0)
	}
	if got := runToEnd(t, b.Build())[0]; got != 2 {
		t.Errorf("x = %d, want 2", got)
	}
}

func TestAssertVariants(t *testing.T) {
	b := New("asserts")
	th := b.Thread()
	th.Const(0, 5)
	th.AssertEq(0, 5)
	th.AssertNe(0, 4)
	th.AssertLt(0, 6)
	th.AssertGe(0, 5)
	runToEnd(t, b.Build()) // fails the test on any assert failure
}

func TestAssertFailureSurfaces(t *testing.T) {
	b := New("assertfail")
	th := b.Thread()
	th.Const(0, 5)
	th.AssertEq(0, 6)
	m := model.NewMachine(b.Build())
	for len(m.EnabledThreads(nil)) > 0 {
		m.Step(m.EnabledThreads(nil)[0])
	}
	fs := m.Failures()
	if len(fs) != 1 || fs[0].Kind != model.FailAssert {
		t.Fatalf("failures = %v, want one assertion failure", fs)
	}
}

func TestSpawnJoinInDSL(t *testing.T) {
	b := New("spawnjoin")
	x := b.Var("x")
	main := b.Thread()
	child := b.Thread()
	child.WriteConst(x, 33)
	main.Spawn(child).Join(child).Read(0, x).AssertEq(0, 33)
	runToEnd(t, b.Build())
}

func TestValidationCatchesBadPrograms(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Build must panic", name)
				}
			}()
			f()
		})
	}
	expectPanic("no-threads", func() { New("empty").Build() })
	expectPanic("self-join", func() {
		b := New("selfjoin")
		th := b.Thread()
		th.emit(instr{kind: iJoin, a: 0})
		b.Build()
	})
	expectPanic("undeclared-var", func() {
		b := New("badvar")
		th := b.Thread()
		th.emit(instr{kind: iRead, a: 0, b: 7})
		b.Build()
	})
	expectPanic("undeclared-mutex", func() {
		b := New("badmu")
		th := b.Thread()
		th.emit(instr{kind: iLock, a: 3})
		b.Build()
	})
	expectPanic("bad-jump", func() {
		b := New("badjmp")
		th := b.Thread()
		th.emit(instr{kind: iJmp, a: 99})
		b.Build()
	})
	expectPanic("mod-by-zero", func() {
		b := New("badmod")
		th := b.Thread()
		th.Const(0, 1)
		th.emit(instr{kind: iMod, a: 0, b: 0, imm: 0})
		b.Build()
	})
	expectPanic("bad-vararray", func() {
		b := New("badarr")
		b.VarArray("a", 0)
		b.Thread()
		b.Build()
	})
}

func TestArrayAtBoundsPanics(t *testing.T) {
	b := New("at")
	arr := b.VarArray("a", 2)
	defer func() {
		if recover() == nil {
			t.Error("At out of range must panic")
		}
	}()
	arr.At(2)
}

func TestCoroutineSnapshotDiverges(t *testing.T) {
	b := New("snap")
	x := b.Var("x")
	th := b.Thread()
	th.Read(0, x)
	th.AddConst(0, 0, 1)
	th.Write(x, 0)
	p := b.Build()
	c := p.Start(0).(*coroutine)
	op, ok := c.Peek()
	if !ok || op.Kind != event.KindRead {
		t.Fatalf("first op = %v, %v", op, ok)
	}
	snap := c.Snapshot().(*coroutine)
	c.Resume(10)
	op, _ = c.Peek()
	if op.Val != 11 {
		t.Fatalf("original writes %d, want 11", op.Val)
	}
	// The snapshot still awaits its read and can take another value.
	op, ok = snap.Peek()
	if !ok || op.Kind != event.KindRead {
		t.Fatalf("snapshot op = %v, %v", op, ok)
	}
	snap.Resume(100)
	op, _ = snap.Peek()
	if op.Val != 101 {
		t.Fatalf("snapshot writes %d, want 101", op.Val)
	}
}

func TestProgramMetadata(t *testing.T) {
	b := New("meta").AutoStart()
	x := b.Var("counter")
	m := b.Mutex("guard")
	th1 := b.Thread()
	th1.Lock(m).WriteConst(x, 1).Unlock(m)
	b.Thread() // empty second thread
	p := b.Build()
	if p.Name() != "meta" || p.NumThreads() != 2 || p.NumVars() != 1 || p.NumMutexes() != 1 {
		t.Errorf("metadata wrong: %s %d %d %d", p.Name(), p.NumThreads(), p.NumVars(), p.NumMutexes())
	}
	if p.VarName(0) != "counter" || p.MutexName(0) != "guard" {
		t.Error("names not preserved")
	}
	if got := len(p.InitiallyRunning()); got != 2 {
		t.Errorf("autostart must start all threads, got %d", got)
	}
	dis := p.Disassemble(0)
	for _, want := range []string{"lock m0", "write v0 = 1", "unlock m0"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
	if th1.ID() != 0 {
		t.Error("first thread must be thread 0")
	}
}

func TestEmptyThreadTerminatesImmediately(t *testing.T) {
	b := New("emptythread")
	b.Thread()
	p := b.Build()
	m := model.NewMachine(p)
	if !m.Terminated() {
		t.Error("a machine whose only thread is empty must be terminal")
	}
}

func TestRegisterConditions(t *testing.T) {
	cases := []struct {
		cond func() Cond
		a, b int64
		hit  bool
	}{
		{func() Cond { return EqReg(0, 1) }, 5, 5, true},
		{func() Cond { return EqReg(0, 1) }, 5, 6, false},
		{func() Cond { return NeReg(0, 1) }, 5, 6, true},
		{func() Cond { return NeReg(0, 1) }, 5, 5, false},
		{func() Cond { return LtReg(0, 1) }, 4, 5, true},
		{func() Cond { return LtReg(0, 1) }, 5, 5, false},
		{func() Cond { return GeReg(0, 1) }, 5, 5, true},
		{func() Cond { return GeReg(0, 1) }, 4, 5, false},
	}
	for i, c := range cases {
		b := New("regcond")
		out := b.Var("out")
		th := b.Thread()
		th.Const(0, c.a)
		th.Const(1, c.b)
		th.If(c.cond(), func() { th.WriteConst(out, 1) }, nil)
		got := runToEnd(t, b.Build())[0] == 1
		if got != c.hit {
			t.Errorf("case %d: fired=%v, want %v", i, got, c.hit)
		}
	}
}

func TestWhileRegisterCondition(t *testing.T) {
	b := New("whilereg")
	out := b.Var("out")
	th := b.Thread()
	th.Const(0, 0) // i
	th.Const(1, 4) // n
	th.Const(2, 0) // acc
	th.While(LtReg(0, 1), func() {
		th.Add(2, 2, 0)
		th.AddConst(0, 0, 1)
	})
	th.Write(out, 2)
	// 0+1+2+3 = 6
	if got := runToEnd(t, b.Build())[0]; got != 6 {
		t.Errorf("out = %d, want 6", got)
	}
}

func TestRegisterAsserts(t *testing.T) {
	b := New("regassert")
	th := b.Thread()
	th.Const(0, 3)
	th.Const(1, 3)
	th.Const(2, 9)
	th.AssertEqReg(0, 1)
	th.AssertLtReg(0, 2)
	runToEnd(t, b.Build())

	bad := New("regassert-bad")
	tb := bad.Thread()
	tb.Const(0, 3)
	tb.Const(1, 4)
	tb.AssertEqReg(0, 1)
	m := model.NewMachine(bad.Build())
	for len(m.EnabledThreads(nil)) > 0 {
		m.Step(m.EnabledThreads(nil)[0])
	}
	if len(m.Failures()) != 1 {
		t.Fatalf("failures = %v", m.Failures())
	}
}
