package progdsl_test

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/progdsl"
)

// Example builds the paper's Figure 1 program in the DSL and executes
// one schedule.
func Example() {
	b := progdsl.New("figure1").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	z := b.Var("z")
	m := b.Mutex("m")

	t1 := b.Thread()
	t1.Lock(m).Read(0, x).Unlock(m).WriteConst(y, 1)
	t2 := b.Thread()
	t2.WriteConst(z, 1).Lock(m).Read(0, x).Unlock(m)

	out := exec.Run(b.Build(), exec.FirstEnabled{}, exec.Options{})
	for _, ev := range out.Trace {
		fmt.Println(ev)
	}
	// Output:
	// t0#0:lock(m0)
	// t0#1:read(v0)->0
	// t0#2:unlock(m0)
	// t0#3:write(v1)=1
	// t1#0:write(v2)=1
	// t1#1:lock(m0)
	// t1#2:read(v0)->0
	// t1#3:unlock(m0)
}

// ExampleThreadBuilder_While shows bounded control flow: loops must be
// bounded by construction so the schedule space stays finite.
func ExampleThreadBuilder_While() {
	b := progdsl.New("loop")
	sum := b.Var("sum")
	th := b.Thread()
	th.Const(0, 3) // retries
	th.Const(1, 0) // accumulator
	th.While(progdsl.Ge(0, 1), func() {
		th.AddConst(1, 1, 10)
		th.AddConst(0, 0, -1)
	})
	th.Write(sum, 1)

	out := exec.Run(b.Build(), exec.FirstEnabled{}, exec.Options{})
	fmt.Println(out.Trace[len(out.Trace)-1])
	// Output:
	// t0#0:write(v0)=30
}
