package exec

import (
	"context"
	"testing"

	"repro/internal/event"
	"repro/internal/progdsl"
)

// twoWriters builds two auto-started threads writing to disjoint
// variables — a clean, race-free program with exactly two schedules.
func twoWriters() *progdsl.Program {
	b := progdsl.New("two-writers").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(y, 2)
	return b.Build()
}

// conflictWriters builds two threads writing the same variable — the
// minimal genuinely racy program.
func conflictWriters() *progdsl.Program {
	b := progdsl.New("conflict-writers").AutoStart()
	x := b.Var("x")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(x, 2)
	return b.Build()
}

func TestRunFirstEnabled(t *testing.T) {
	out := Run(twoWriters(), FirstEnabled{}, Options{})
	if len(out.Trace) != 2 {
		t.Fatalf("trace = %v", out.Trace)
	}
	if out.Trace[0].Thread != 0 || out.Trace[1].Thread != 1 {
		t.Errorf("first-enabled order wrong: %v", out.Trace)
	}
	if out.Deadlock || out.Truncated || out.Failed() {
		t.Errorf("clean run misreported: %+v", out)
	}
	if out.StateKey == "" || out.StateHash == 0 {
		t.Error("state key/hash must be populated")
	}
}

func TestPrefixChooserReproduces(t *testing.T) {
	prog := twoWriters()
	forced := Run(prog, &Prefix{Choices: []event.ThreadID{1, 0}}, Options{})
	if forced.Trace[0].Thread != 1 {
		t.Fatalf("prefix not honoured: %v", forced.Trace)
	}
	replay := Replay(prog, forced.Choices, Options{})
	if replay.StateKey != forced.StateKey || replay.HBFP != forced.HBFP || replay.LazyFP != forced.LazyFP {
		t.Error("replay of recorded choices must reproduce the outcome")
	}
}

func TestPrefixFallsBackWhenChoiceDisabled(t *testing.T) {
	b := progdsl.New("block").AutoStart()
	m := b.Mutex("m")
	b.Thread().Lock(m).Unlock(m)
	b.Thread().Lock(m).Unlock(m)
	// Ask for thread 1 twice in a row: after its lock, the second
	// request is fine, but asking for thread 1 a third time (when it
	// is done) must fall back to thread 0.
	out := Run(b.Build(), &Prefix{Choices: []event.ThreadID{1, 1, 1, 1}}, Options{})
	if out.Deadlock || out.Truncated {
		t.Fatalf("fallback failed: %+v", out)
	}
	if len(out.Trace) != 4 {
		t.Fatalf("trace = %v", out.Trace)
	}
}

func TestRandomChooserSeeded(t *testing.T) {
	prog := twoWriters()
	a := Run(prog, NewRandom(5), Options{})
	b := Run(prog, NewRandom(5), Options{})
	if a.StateKey != b.StateKey || len(a.Trace) != len(b.Trace) {
		t.Error("same seed must give the same schedule")
	}
	for i := range a.Choices {
		if a.Choices[i] != b.Choices[i] {
			t.Fatal("same seed must give the same choices")
		}
	}
}

func TestTruncation(t *testing.T) {
	// A two-thread lock ping-pong long enough to exceed MaxSteps.
	b := progdsl.New("long").AutoStart()
	x := b.Var("x")
	th := b.Thread()
	th.Const(0, 100)
	th.While(progdsl.Ge(0, 1), func() {
		th.Read(1, x)
		th.AddConst(1, 1, 1)
		th.Write(x, 1)
		th.AddConst(0, 0, -1)
	})
	out := Run(b.Build(), FirstEnabled{}, Options{MaxSteps: 10})
	if !out.Truncated {
		t.Fatal("run must be truncated at MaxSteps")
	}
	if len(out.Trace) != 10 {
		t.Fatalf("trace length %d, want 10", len(out.Trace))
	}
}

func TestRecordClocks(t *testing.T) {
	out := Run(conflictWriters(), FirstEnabled{}, Options{RecordClocks: true})
	if len(out.HBClocks) != 2 || len(out.LazyClocks) != 2 {
		t.Fatalf("clocks not recorded: %d %d", len(out.HBClocks), len(out.LazyClocks))
	}
	// Conflicting writes: the second is ordered after the first in
	// the regular HBR (write-write edge on x).
	if out.HBClocks[1].Get(0) != 1 {
		t.Errorf("second write's HB clock %v must include the first", out.HBClocks[1])
	}
	off := Run(conflictWriters(), FirstEnabled{}, Options{})
	if off.HBClocks != nil {
		t.Error("clocks must not be recorded unless requested")
	}
}

func TestDeadlockOutcome(t *testing.T) {
	b := progdsl.New("dl").AutoStart()
	m0 := b.Mutex("m0")
	m1 := b.Mutex("m1")
	b.Thread().Lock(m0).Lock(m1).Unlock(m1).Unlock(m0)
	b.Thread().Lock(m1).Lock(m0).Unlock(m0).Unlock(m1)
	// Alternate the first two steps to reach the circular wait.
	out := Run(b.Build(), &Prefix{Choices: []event.ThreadID{0, 1}}, Options{})
	if !out.Deadlock {
		t.Fatalf("expected deadlock: %+v", out)
	}
	if !out.Failed() {
		t.Error("deadlock must count as failure")
	}
	if len(out.Trace) != 2 {
		t.Errorf("trace = %v", out.Trace)
	}
}

func TestRacesSurfaceInOutcome(t *testing.T) {
	b := progdsl.New("race").AutoStart()
	x := b.Var("x")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(x, 2)
	out := Run(b.Build(), FirstEnabled{}, Options{})
	if len(out.Races) != 1 {
		t.Fatalf("races = %v, want one", out.Races)
	}
	if !out.Failed() {
		t.Error("a race must count as failure")
	}
}

func TestFingerprintsMatchScheduleEquivalence(t *testing.T) {
	// Independent writers: both schedule orders give identical
	// regular AND lazy fingerprints.
	b := progdsl.New("indep").AutoStart()
	x := b.Var("x")
	y := b.Var("y")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(y, 1)
	prog := b.Build()
	o1 := Run(prog, &Prefix{Choices: []event.ThreadID{0, 1}}, Options{})
	o2 := Run(prog, &Prefix{Choices: []event.ThreadID{1, 0}}, Options{})
	if o1.HBFP != o2.HBFP {
		t.Error("independent writes: HBR fingerprints must be equal")
	}
	if o1.LazyFP != o2.LazyFP {
		t.Error("independent writes: lazy fingerprints must be equal")
	}
	if o1.StateKey != o2.StateKey {
		t.Error("independent writes must reach the same state")
	}
}

func TestContextCancelTruncates(t *testing.T) {
	// The same long-running loop, stopped by a dead context instead
	// of MaxSteps: the stride check must truncate and flag the
	// outcome as interrupted.
	b := progdsl.New("long-ctx").AutoStart()
	x := b.Var("x")
	th := b.Thread()
	th.Const(0, 1000)
	th.While(progdsl.Ge(0, 1), func() {
		th.Read(1, x)
		th.AddConst(1, 1, 1)
		th.Write(x, 1)
		th.AddConst(0, 0, -1)
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := Run(b.Build(), FirstEnabled{}, Options{MaxSteps: 3000, Ctx: ctx})
	if !out.Interrupted || !out.Truncated {
		t.Fatalf("cancelled run must be interrupted+truncated; got interrupted=%v truncated=%v",
			out.Interrupted, out.Truncated)
	}
	if len(out.Trace) >= 3000 {
		t.Fatalf("cancelled run executed %d events, should stop at the first stride check", len(out.Trace))
	}

	// A live context must not perturb the run.
	full := Run(b.Build(), FirstEnabled{}, Options{MaxSteps: 3000, Ctx: context.Background()})
	bare := Run(b.Build(), FirstEnabled{}, Options{MaxSteps: 3000})
	if full.Interrupted || full.StateKey != bare.StateKey || len(full.Trace) != len(bare.Trace) {
		t.Fatalf("live context changed the outcome: %d vs %d events", len(full.Trace), len(bare.Trace))
	}
}
