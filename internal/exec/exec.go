// Package exec runs one program execution under a scheduling policy
// (Chooser) and reports the resulting trace, happens-before clocks,
// final state and safety outcomes. Exploration engines that need
// step-level control drive model.Machine and hb.Tracker directly; this
// package is the single-execution entry point used for replay, random
// testing and the examples.
package exec

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/event"
	"repro/internal/hb"
	"repro/internal/model"
	"repro/internal/vclock"
)

// DefaultMaxSteps bounds an execution's length when Options.MaxSteps is
// zero. Executions that reach the bound are reported as truncated, the
// standard SCT treatment of potentially diverging schedules.
const DefaultMaxSteps = 4096

// Chooser selects which enabled thread executes next.
type Chooser interface {
	// Choose picks one element of enabled (never empty). step is the
	// number of events executed so far.
	Choose(m *model.Machine, enabled []event.ThreadID, step int) event.ThreadID
}

// FirstEnabled deterministically picks the lowest-numbered enabled
// thread. It is the canonical default continuation policy of the
// exploration engines.
type FirstEnabled struct{}

// Choose implements Chooser.
func (FirstEnabled) Choose(_ *model.Machine, enabled []event.ThreadID, _ int) event.ThreadID {
	return enabled[0]
}

// Prefix replays a fixed sequence of thread choices, then delegates to
// Fallback (FirstEnabled if nil). Replaying a recorded Outcome.Choices
// reproduces its schedule exactly.
type Prefix struct {
	Choices  []event.ThreadID
	Fallback Chooser
}

// Choose implements Chooser. If a prefix choice is not currently
// enabled the prefix is abandoned and the fallback takes over — this
// can only happen when replaying a schedule against a different
// program.
func (p *Prefix) Choose(m *model.Machine, enabled []event.ThreadID, step int) event.ThreadID {
	if step < len(p.Choices) {
		want := p.Choices[step]
		for _, t := range enabled {
			if t == want {
				return t
			}
		}
	}
	fb := p.Fallback
	if fb == nil {
		fb = FirstEnabled{}
	}
	return fb.Choose(m, enabled, step)
}

// Random picks uniformly among enabled threads using a seeded source,
// giving deterministic "random testing" baselines.
type Random struct {
	Rng *rand.Rand
}

// NewRandom returns a Random chooser with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{Rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Chooser.
func (r *Random) Choose(_ *model.Machine, enabled []event.ThreadID, _ int) event.ThreadID {
	return enabled[r.Rng.Intn(len(enabled))]
}

// Options configures a single execution.
type Options struct {
	// MaxSteps bounds the number of events (DefaultMaxSteps if 0).
	MaxSteps int
	// RecordClocks retains per-event HB and lazy-HB clocks in the
	// outcome (the tracker always runs; this only controls storage).
	RecordClocks bool
	// Ctx, when non-nil, bounds the execution by deadline or
	// cancellation: it is checked every ctxCheckStride events and a
	// done context truncates the execution (Outcome.Interrupted).
	Ctx context.Context
	// StallTimeout arms the divergence watchdog on frontends whose
	// thread bodies can diverge in local computation (goharness): a
	// thread silent for this long is fenced and the execution ends as
	// diverged. 0 disables the watchdog.
	StallTimeout time.Duration
}

// ctxCheckStride is how many events run between context checks; a
// power of two so the stride test is a branch-free mask.
const (
	ctxCheckStride = 64
	ctxCheckMask   = ctxCheckStride - 1
)

// Outcome describes one completed (or truncated) execution.
type Outcome struct {
	// Trace lists the executed events in schedule order.
	Trace []event.Event
	// Choices lists the scheduled thread per step; replaying them
	// through a Prefix chooser reproduces the schedule.
	Choices []event.ThreadID
	// HBClocks and LazyClocks are per-event vector clocks, present
	// when Options.RecordClocks was set. They are immutable views
	// shared with the tracker (copy-on-write) and must not be
	// modified.
	HBClocks, LazyClocks []vclock.VC
	// HBFP and LazyFP fingerprint the terminal regular and lazy
	// happens-before relations.
	HBFP, LazyFP hb.Fingerprint
	// StateKey exactly encodes the final machine state; StateHash is
	// its 64-bit digest and StateSig the 128-bit digest the
	// exploration engines' distinct-state sets key on.
	StateKey  string
	StateHash uint64
	StateSig  model.StateSig
	// Deadlock is set when the execution ended with blocked threads
	// and nothing enabled.
	Deadlock bool
	// Truncated is set when MaxSteps was reached (or the context
	// expired; see Interrupted).
	Truncated bool
	// Interrupted is set when Options.Ctx ended the execution early.
	Interrupted bool
	// Diverged is set when a thread was fenced as stuck in local
	// computation (the stall watchdog fired, or the frontend announced
	// divergence); DivergedThread identifies it.
	Diverged       bool
	DivergedThread event.ThreadID
	// Failures lists assertion failures and lock-discipline errors.
	Failures []model.Failure
	// Races lists data races detected by the sync-only relation.
	Races []hb.Race
}

// Failed reports whether the execution violated any safety property
// (assertion failure, lock misuse, deadlock or data race).
func (o *Outcome) Failed() bool {
	return len(o.Failures) > 0 || o.Deadlock || len(o.Races) > 0
}

// ViolationKind names the outcome's most severe safety violation,
// using the classes and precedence shared with the exploration
// recorder (model.ViolationKind); "" when the execution is
// violation-free.
func (o *Outcome) ViolationKind() string {
	return model.ViolationKind(o.Deadlock, o.Failures, len(o.Races) > 0)
}

// Run executes src to completion under ch.
func Run(src model.Source, ch Chooser, opt Options) Outcome {
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	m := model.NewMachineCfg(src, model.MachineConfig{StallTimeout: opt.StallTimeout})
	tr := hb.NewTrackerChans(src.NumThreads(), src.NumVars(), src.NumMutexes(), model.NumChannels(src))
	var out Outcome
	var enabled []event.ThreadID
	// Hoist the nil test out of the loop: with no caller context the
	// stride check polls context.Background, whose Err is a constant
	// nil return, instead of branching on opt.Ctx every event.
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		// Divergence ends the execution before anything else: the
		// fenced thread can never be stepped, and the remaining
		// threads' state no longer means anything for this schedule.
		if m.HasDiverged() {
			out.Diverged = true
			out.DivergedThread = m.DivergedThread()
			m.Abort()
			break
		}
		enabled = m.EnabledThreads(enabled)
		if len(enabled) == 0 {
			out.Deadlock = m.Deadlocked()
			break
		}
		if len(out.Trace) >= maxSteps {
			out.Truncated = true
			m.Abort()
			break
		}
		if uint(len(out.Trace))&ctxCheckMask == 0 && ctx.Err() != nil {
			out.Truncated = true
			out.Interrupted = true
			m.Abort()
			break
		}
		t := ch.Choose(m, enabled, len(out.Trace))
		ev := m.Step(t)
		clocks := tr.Apply(ev)
		out.Trace = append(out.Trace, ev)
		out.Choices = append(out.Choices, t)
		if opt.RecordClocks {
			out.HBClocks = append(out.HBClocks, clocks.HB)
			out.LazyClocks = append(out.LazyClocks, clocks.Lazy)
		}
	}
	out.HBFP = tr.HBFingerprint()
	out.LazyFP = tr.LazyFingerprint()
	out.StateKey = m.StateKey()
	out.StateHash = m.StateHash()
	out.StateSig = m.StateSig()
	out.Failures = m.Failures()
	out.Races = tr.Races()
	return out
}

// Replay re-executes a recorded schedule and returns its outcome. The
// replayed outcome of a deterministic program is identical to the
// original.
func Replay(src model.Source, choices []event.ThreadID, opt Options) Outcome {
	return Run(src, &Prefix{Choices: choices}, opt)
}
