package bench

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/explore"
)

// TestCorpusSize pins the corpus size: the paper's 79 plus the
// channel family.
func TestCorpusSize(t *testing.T) {
	all := All()
	if len(all) != Count {
		t.Fatalf("corpus has %d benchmarks, want %d", len(all), Count)
	}
	for i, b := range all {
		if b.ID != i+1 {
			t.Errorf("benchmark %q has ID %d, want %d", b.Name, b.ID, i+1)
		}
		if b.Name == "" || b.Family == "" || b.Notes == "" || b.Program == nil {
			t.Errorf("benchmark %d has incomplete metadata: %+v", i+1, b)
		}
	}
}

// TestLookup exercises ByName/ByID round trips.
func TestLookup(t *testing.T) {
	for _, b := range All() {
		got, ok := ByName(b.Name)
		if !ok || got.ID != b.ID {
			t.Errorf("ByName(%q) = %v, %v", b.Name, got.ID, ok)
		}
		got, ok = ByID(b.ID)
		if !ok || got.Name != b.Name {
			t.Errorf("ByID(%d) = %q, %v", b.ID, got.Name, ok)
		}
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("ByName accepted a bogus name")
	}
	if _, ok := ByID(0); ok {
		t.Error("ByID accepted 0")
	}
	if _, ok := ByID(Count + 1); ok {
		t.Error("ByID accepted out-of-range ID")
	}
}

// TestEveryBenchmarkRuns executes one deterministic schedule of every
// benchmark and checks it terminates within the depth bound.
func TestEveryBenchmarkRuns(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			out := exec.Run(b.Program, exec.FirstEnabled{}, exec.Options{MaxSteps: 2000})
			if out.Truncated {
				t.Fatalf("default schedule of %s truncated at %d events", b.Name, len(out.Trace))
			}
			if len(out.Trace) == 0 {
				t.Fatalf("%s executed no events", b.Name)
			}
		})
	}
}

// TestEveryBenchmarkReplayDeterministic checks that replaying a
// recorded schedule reproduces the identical outcome — the property
// every SCT result in this repository rests on.
func TestEveryBenchmarkReplayDeterministic(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			first := exec.Run(b.Program, exec.NewRandom(42), exec.Options{MaxSteps: 2000})
			again := exec.Replay(b.Program, first.Choices, exec.Options{MaxSteps: 2000})
			if first.StateKey != again.StateKey {
				t.Fatalf("replay diverged:\n first=%s\nsecond=%s", first.StateKey, again.StateKey)
			}
			if first.HBFP != again.HBFP || first.LazyFP != again.LazyFP {
				t.Fatalf("replay produced different happens-before fingerprints")
			}
		})
	}
}

// TestEveryBenchmarkInvariant runs a capped DPOR exploration over the
// whole corpus and asserts the paper's inequality chain
// #states ≤ #lazy HBRs ≤ #HBRs ≤ #schedules on every benchmark.
func TestEveryBenchmarkInvariant(t *testing.T) {
	eng := explore.NewDPOR(false)
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res := eng.Explore(b.Program, explore.Options{ScheduleLimit: 300, MaxSteps: 2000})
			if err := res.CheckInvariant(); err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if res.Terminals == 0 && res.Truncated == 0 {
				t.Fatalf("%s: exploration made no progress: %+v", b.Name, res)
			}
		})
	}
}

// TestDeadlockBenchmarks checks that the deadlocking philosopher
// variants actually deadlock and the ordered ones do not.
func TestDeadlockBenchmarks(t *testing.T) {
	eng := explore.NewDFS()
	cases := map[string]bool{
		"philosophers-2":         true,
		"philosophers-3":         true,
		"philosophers-ordered-2": false,
		"philosophers-ordered-3": false,
	}
	for name, wantDeadlock := range cases {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		res := eng.Explore(b.Program, explore.Options{ScheduleLimit: 50000, MaxSteps: 2000})
		if (res.Deadlocks > 0) != wantDeadlock {
			t.Errorf("%s: deadlocks=%d, wantDeadlock=%v (%v)", name, res.Deadlocks, wantDeadlock, res.String())
		}
	}
}
