package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// queueEntries builds the data-structure and thread-structure
// families: bounded producer/consumer buffers, sharded maps with
// per-shard locks, spawn/join fork-join phases and flag-based
// pipelines. 12 entries.
func queueEntries() []entry {
	var es []entry
	for _, p := range []struct {
		prod, cons, size, items int
	}{{1, 1, 1, 1}, {1, 1, 1, 2}, {1, 1, 2, 2}, {2, 1, 1, 1}} {
		p := p
		es = append(es, entry{
			name:   fmt.Sprintf("prodcons-%dp%dc-s%d-i%d", p.prod, p.cons, p.size, p.items),
			family: "prodcons",
			notes: fmt.Sprintf("%d producers / %d consumers over a %d-slot buffer guarded by one lock, %d items each, bounded retries",
				p.prod, p.cons, p.size, p.items),
			build: func() model.Source { return prodCons(p.prod, p.cons, p.size, p.items) },
		})
	}
	for _, p := range []struct{ threads, shards int }{{2, 2}, {3, 2}, {4, 2}, {3, 3}} {
		p := p
		es = append(es, entry{
			name:   fmt.Sprintf("sharded-%dt%ds", p.threads, p.shards),
			family: "sharded",
			notes:  fmt.Sprintf("%d threads update a %d-shard map under per-shard locks (thread i hits shard i mod %d)", p.threads, p.shards, p.shards),
			build:  func() model.Source { return sharded(p.threads, p.shards) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("forkjoin-%d", n),
			family: "forkjoin",
			notes:  fmt.Sprintf("main spawns %d workers, joins them, and asserts the locked aggregate", n),
			build:  func() model.Source { return forkJoin(n) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("pipeline-%d", n),
			family: "pipeline",
			notes:  fmt.Sprintf("%d-stage value pipeline through shared cells without synchronisation", n),
			build:  func() model.Source { return pipeline(n) },
		})
	}
	return es
}

// prodCons: a bounded buffer (buf + count) guarded by one lock.
// Producers try to publish `items` values and consumers to take the
// same number; every attempt is bounded, so full/empty buffers lead to
// abandoned work rather than unbounded spinning.
func prodCons(prod, cons, size, items int) model.Source {
	b := progdsl.New(fmt.Sprintf("prodcons-%dp%dc-s%d-i%d", prod, cons, size, items)).AutoStart()
	g := b.Mutex("g")
	buf := b.VarArray("buf", size)
	count := b.Var("count")
	attempts := items + 2
	for p := 0; p < prod; p++ {
		p := p
		t := b.Thread()
		t.Const(r2, int64(items))    // r2: items left to produce
		t.Const(r3, int64(attempts)) // r3: attempts left
		t.While(progdsl.Ge(r3, 1), func() {
			t.Lock(g)
			t.Read(r0, count)
			t.If(progdsl.Lt(r0, int64(size)), func() {
				t.Const(r1, int64(100+p))
				t.WriteAt(buf, r0, r1)
				t.AddConst(r0, r0, 1)
				t.Write(count, r0)
				t.AddConst(r2, r2, -1)
			}, nil)
			t.Unlock(g)
			t.AddConst(r3, r3, -1)
			t.If(progdsl.Eq(r2, 0), func() { t.Const(r3, 0) }, nil)
		})
	}
	for c := 0; c < cons; c++ {
		t := b.Thread()
		t.Const(r2, int64(items))
		t.Const(r3, int64(attempts))
		t.While(progdsl.Ge(r3, 1), func() {
			t.Lock(g)
			t.Read(r0, count)
			t.If(progdsl.Ge(r0, 1), func() {
				t.AddConst(r0, r0, -1)
				t.ReadAt(r1, buf, r0)
				t.Write(count, r0)
				t.AssertGe(r1, 100) // consumed slots hold produced values
				t.AddConst(r2, r2, -1)
			}, nil)
			t.Unlock(g)
			t.AddConst(r3, r3, -1)
			t.If(progdsl.Eq(r2, 0), func() { t.Const(r3, 0) }, nil)
		})
	}
	return b.Build()
}

// sharded: per-shard locks over disjoint shard counters; contention
// exists only between threads mapped to the same shard, and the lazy
// HBR additionally collapses the redundant same-shard lock orders when
// threads write thread-private cells.
func sharded(threads, shards int) model.Source {
	b := progdsl.New(fmt.Sprintf("sharded-%dt%ds", threads, shards)).AutoStart()
	locks := b.MutexArray("shardlock", shards)
	cells := b.VarArray("cell", threads) // one output cell per thread
	hits := b.VarArray("hits", shards)
	for i := 0; i < threads; i++ {
		i := i
		s := i % shards
		t := b.Thread()
		t.Lock(locks.At(s))
		t.Read(r0, hits.At(s))
		t.AddConst(r0, r0, 1)
		t.Write(hits.At(s), r0)
		t.Write(cells.At(i), r0)
		t.Unlock(locks.At(s))
	}
	return b.Build()
}

// forkJoin: main spawns the workers, each of which adds its
// contribution to a locked sum; main joins all and asserts the total.
// Exercises spawn/join edges, which both the regular and the lazy HBR
// keep.
func forkJoin(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("forkjoin-%d", n))
	g := b.Mutex("g")
	sum := b.Var("sum")
	main := b.Thread()
	workers := make([]*progdsl.ThreadBuilder, n)
	for i := 0; i < n; i++ {
		w := b.Thread()
		w.Lock(g)
		w.Read(r0, sum)
		w.AddConst(r0, r0, 1)
		w.Write(sum, r0)
		w.Unlock(g)
		workers[i] = w
	}
	for _, w := range workers {
		main.Spawn(w)
	}
	for _, w := range workers {
		main.Join(w)
	}
	main.Read(r0, sum)
	main.AssertEq(r0, int64(n))
	return b.Build()
}

// pipeline: stage 0 writes its cell; each later stage reads the
// previous cell and forwards value+1. With no synchronisation, stages
// may observe the initial zero — several distinct terminal states.
func pipeline(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("pipeline-%d", n)).AutoStart()
	cells := b.VarArray("cell", n)
	head := b.Thread()
	head.WriteConst(cells.At(0), 5)
	for i := 1; i < n; i++ {
		i := i
		t := b.Thread()
		t.Read(r0, cells.At(i-1))
		t.AddConst(r0, r0, 1)
		t.Write(cells.At(i), r0)
	}
	return b.Build()
}
