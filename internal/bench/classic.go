package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// classicEntries builds scaled-down versions of the classic DPOR
// benchmarks from Flanagan & Godefroid (POPL 2005): indexer,
// file system, and the last-zero example common in later POR
// literature. 6 entries.
func classicEntries() []entry {
	var es []entry
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("indexer-%d", n),
			family: "indexer",
			notes:  fmt.Sprintf("%d threads insert into a shared hash table with open addressing and per-slot locks; collisions by construction", n),
			build:  func() model.Source { return indexer(n) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("filesystem-%d", n),
			family: "filesystem",
			notes:  fmt.Sprintf("%d threads allocate blocks to inodes with per-inode and per-block locks (FG POPL'05, scaled down)", n),
			build:  func() model.Source { return filesystem(n) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("lastzero-%d", n),
			family: "lastzero",
			notes:  fmt.Sprintf("checker scans an array for its last zero while %d writers bump successive cells", n),
			build:  func() model.Source { return lastZero(n) },
		})
	}
	return es
}

// indexer: the classic DPOR benchmark, scaled. Each thread hashes its
// key and probes the table under per-slot locks until it claims an
// empty slot. Keys are chosen so every pair of threads collides on the
// first probe, forcing genuine contention.
func indexer(n int) model.Source {
	const size = 4
	b := progdsl.New(fmt.Sprintf("indexer-%d", n)).AutoStart()
	table := b.VarArray("table", size)
	locks := b.MutexArray("lock", size)
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		key := int64(i + 1)
		// All keys hash to slot 0 (maximal collision pressure).
		t.Const(r1, 0)    // r1: probe slot
		t.Const(r2, 0)    // r2: done flag
		t.Const(r3, size) // r3: probes remaining
		t.While(progdsl.Eq(r2, 0), func() {
			t.LockAt(locks, r1)
			t.ReadAt(r0, table, r1)
			t.If(progdsl.Eq(r0, 0), func() {
				t.Const(r0, key)
				t.WriteAt(table, r1, r0)
				t.Const(r2, 1)
			}, nil)
			t.UnlockAt(locks, r1)
			t.AddConst(r1, r1, 1)
			t.ModConst(r1, r1, size)
			t.AddConst(r3, r3, -1)
			t.If(progdsl.Eq(r3, 0), func() { t.Const(r2, 1) }, nil)
		})
		_ = key
	}
	return b.Build()
}

// filesystem: each thread picks an inode (threads share inodes by
// construction), and if the inode is unassigned, searches the block
// busy-map for a free block under per-block locks — the File System
// example of the DPOR paper, scaled to 2 inodes and 3 blocks.
func filesystem(n int) model.Source {
	const (
		numInodes = 2
		numBlocks = 3
	)
	b := progdsl.New(fmt.Sprintf("filesystem-%d", n)).AutoStart()
	inode := b.VarArray("inode", numInodes)
	busy := b.VarArray("busy", numBlocks)
	lockI := b.MutexArray("locki", numInodes)
	lockB := b.MutexArray("lockb", numBlocks)
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		ii := i % numInodes
		t.Lock(lockI.At(ii))
		t.Read(r0, inode.At(ii))
		t.If(progdsl.Eq(r0, 0), func() {
			t.Const(r1, int64((ii*2)%numBlocks)) // r1: candidate block
			t.Const(r2, 0)                       // r2: done flag
			t.Const(r3, numBlocks)               // r3: probes remaining
			t.While(progdsl.Eq(r2, 0), func() {
				t.LockAt(lockB, r1)
				t.ReadAt(r0, busy, r1)
				t.If(progdsl.Eq(r0, 0), func() {
					t.Const(r0, 1)
					t.WriteAt(busy, r1, r0)
					t.AddConst(r0, r1, 1)
					t.Write(inode.At(ii), r0)
					t.Const(r2, 1)
				}, nil)
				t.UnlockAt(lockB, r1)
				t.AddConst(r1, r1, 1)
				t.ModConst(r1, r1, numBlocks)
				t.AddConst(r3, r3, -1)
				t.If(progdsl.Eq(r3, 0), func() { t.Const(r2, 1) }, nil)
			})
		}, nil)
		t.Unlock(lockI.At(ii))
	}
	return b.Build()
}

// lastZero: thread 0 scans a[n..0] downwards for the last zero while
// each writer thread i sets a[i] = a[i-1] + 1 — the canonical example
// where read-write reorderings matter but many interleavings coincide.
func lastZero(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("lastzero-%d", n)).AutoStart()
	a := b.VarArray("a", n+1)
	checker := b.Thread()
	checker.Const(r1, -1) // r1: found index
	for j := n; j >= 0; j-- {
		j := j
		checker.If(progdsl.Eq(r1, -1), func() {
			checker.Read(r0, a.At(j))
			checker.If(progdsl.Eq(r0, 0), func() {
				checker.Const(r1, int64(j))
			}, nil)
		}, nil)
	}
	// a[0] is never written, so a zero must always be found.
	checker.AssertGe(r1, 0)
	for i := 1; i <= n; i++ {
		i := i
		w := b.Thread()
		w.Read(r0, a.At(i-1))
		w.AddConst(r0, r0, 1)
		w.Write(a.At(i), r0)
	}
	return b.Build()
}
