package bench

import (
	"strings"
	"testing"

	"repro/internal/explore"
)

// explore returns a full (or capped) DPOR exploration of the named
// benchmark.
func exploreBench(t *testing.T, name string, eng explore.Engine, limit int) explore.Result {
	t.Helper()
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("missing benchmark %s", name)
	}
	res := eng.Explore(b.Program, explore.Options{ScheduleLimit: limit, MaxSteps: 2000})
	if err := res.CheckInvariant(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// TestCoarseFamiliesCollapseUnderLazyHBR: the paper's motivating
// claim, pinned per family: every coarse-grained benchmark has exactly
// one lazy HBR class and one state, while regular HBR classes grow
// with the thread count.
func TestCoarseFamiliesCollapseUnderLazyHBR(t *testing.T) {
	expect := map[string]int{ // name -> expected #HBRs (n! lock orders)
		"coarse-disjoint-2x1": 2,
		"coarse-disjoint-3x1": 6,
		"coarse-disjoint-4x1": 24,
		"coarse-readonly-2":   2,
		"coarse-readonly-3":   6,
		"coarse-readonly-4":   24,
		"bank-global-2":       2,
		"bank-global-3":       6,
		"bank-global-4":       24,
	}
	for name, hbrs := range expect {
		res := exploreBench(t, name, explore.NewDPOR(false), 0)
		if res.HitLimit {
			t.Errorf("%s unexpectedly hit the limit", name)
		}
		if res.DistinctHBRs != hbrs {
			t.Errorf("%s: #HBRs = %d, want %d", name, res.DistinctHBRs, hbrs)
		}
		if res.DistinctLazyHBRs != 1 || res.DistinctStates != 1 {
			t.Errorf("%s: lazy=%d states=%d, want 1/1", name, res.DistinctLazyHBRs, res.DistinctStates)
		}
		if res.AssertFailures != 0 {
			t.Errorf("%s: %d assertion failures", name, res.AssertFailures)
		}
	}
}

// TestCoarseSharedSitsOnDiagonal: with genuine data ordering the lazy
// relation cannot collapse anything.
func TestCoarseSharedSitsOnDiagonal(t *testing.T) {
	for _, name := range []string{"coarse-shared-2", "coarse-shared-3", "coarse-shared-4"} {
		res := exploreBench(t, name, explore.NewDPOR(false), 0)
		if res.DistinctHBRs != res.DistinctLazyHBRs {
			t.Errorf("%s: hbrs=%d lazy=%d, want equal (diagonal)", name, res.DistinctHBRs, res.DistinctLazyHBRs)
		}
		if res.DistinctStates != 1 {
			t.Errorf("%s: locked increments must commute to one state, got %d", name, res.DistinctStates)
		}
	}
}

// TestRacyFamiliesExposeBugs: the unsynchronised benchmarks must
// produce races, and the counters lose updates (≥ 2 distinct states).
func TestRacyFamiliesExposeBugs(t *testing.T) {
	// The bugs all surface within a few thousand schedules; the large
	// budget just certifies the full bounded space outside -short.
	limit := 50000
	if testing.Short() {
		limit = 3000
	}
	for _, name := range []string{"counter-racy-2x1", "counter-racy-2x2", "counter-racy-3x1", "account-racy-2", "dcl-2", "msgpass-2"} {
		res := exploreBench(t, name, explore.NewDFS(), limit)
		if res.Races == 0 {
			t.Errorf("%s: no data race found", name)
		}
	}
	res := exploreBench(t, "counter-racy-2x1", explore.NewDFS(), 0)
	if res.DistinctStates < 2 {
		t.Errorf("counter-racy-2x1: %d states, want the lost-update state too", res.DistinctStates)
	}
	// The racy-account asserts fire with three depositors; DFS order
	// needs ~6k schedules to reach the first lost update.
	res = exploreBench(t, "account-racy-3", explore.NewDFS(), max(limit, 8000))
	if res.AssertFailures == 0 {
		t.Error("account-racy-3: expected lost-update assertion failures")
	}
}

// TestMutualExclusionAlgorithms: Peterson and Dekker (correct under
// sequential consistency) must never fail their witness assertions,
// over the entire bounded schedule space.
func TestMutualExclusionAlgorithms(t *testing.T) {
	for _, name := range []string{"peterson-2", "dekker-2"} {
		res := exploreBench(t, name, explore.NewDPOR(false), 0)
		if res.HitLimit {
			t.Fatalf("%s: space not exhausted; cannot certify", name)
		}
		if res.AssertFailures != 0 {
			t.Errorf("%s: mutual exclusion violated %d times", name, res.AssertFailures)
		}
		if res.Deadlocks != 0 {
			t.Errorf("%s: deadlocked %d times", name, res.Deadlocks)
		}
		// The busy-wait flags race by design (that is the point of
		// the algorithms: they synchronise through plain variables).
		if res.Races == 0 {
			t.Errorf("%s: expected benign flag races to be reported", name)
		}
	}
}

// TestTicketLockSafety: the bounded ticket lock must preserve mutual
// exclusion of the counter (it only loses liveness when spins expire).
func TestTicketLockSafety(t *testing.T) {
	res := exploreBench(t, "ticket-2", explore.NewDFS(), 0)
	if res.HitLimit {
		t.Fatal("ticket-2 should be exhaustively explorable")
	}
	if res.AssertFailures != 0 || res.Deadlocks != 0 {
		t.Errorf("ticket-2: asserts=%d deadlocks=%d", res.AssertFailures, res.Deadlocks)
	}
}

// TestForkJoinAggregateAlwaysCorrect: the locked sum protected by
// spawn/join edges is deterministic — a single final state, assertion
// never fails.
func TestForkJoinAggregateAlwaysCorrect(t *testing.T) {
	for _, name := range []string{"forkjoin-2", "forkjoin-3"} {
		res := exploreBench(t, name, explore.NewDPOR(false), 0)
		if res.AssertFailures != 0 {
			t.Errorf("%s: %d assertion failures", name, res.AssertFailures)
		}
		if res.DistinctStates != 1 {
			t.Errorf("%s: %d states, want 1", name, res.DistinctStates)
		}
		if res.Races != 0 {
			t.Errorf("%s: %d races (spawn/join must order everything)", name, res.Races)
		}
	}
}

// TestProdConsInvariants: consumed slots always hold produced values.
func TestProdConsInvariants(t *testing.T) {
	for _, name := range []string{"prodcons-1p1c-s1-i1", "prodcons-1p1c-s1-i2", "prodcons-1p1c-s2-i2", "prodcons-2p1c-s1-i1"} {
		res := exploreBench(t, name, explore.NewDPOR(false), 100000)
		if res.AssertFailures != 0 {
			t.Errorf("%s: %d assertion failures", name, res.AssertFailures)
		}
		if res.Deadlocks != 0 {
			t.Errorf("%s: %d deadlocks (bounded retries must prevent them)", name, res.Deadlocks)
		}
	}
}

// TestIndexerAllInsertionsLand: every thread's key ends up in the
// table in every schedule (the table has enough slots).
func TestIndexerAllInsertionsLand(t *testing.T) {
	res := exploreBench(t, "indexer-2", explore.NewDFS(), 0)
	if res.HitLimit {
		t.Fatal("indexer-2 should be exhaustible")
	}
	if res.Deadlocks != 0 || res.AssertFailures != 0 {
		t.Errorf("indexer-2: %+v", res)
	}
}

// TestLastZeroCheckerAlwaysFinds: the checker's assertion (a zero
// exists) holds in every interleaving.
func TestLastZeroCheckerAlwaysFinds(t *testing.T) {
	for _, name := range []string{"lastzero-2", "lastzero-3"} {
		res := exploreBench(t, name, explore.NewDPOR(false), 0)
		if res.AssertFailures != 0 {
			t.Errorf("%s: checker assertion failed %d times", name, res.AssertFailures)
		}
	}
}

// TestSyntheticDeterminism: the seeded generator must produce the
// identical program on every call — the corpus would silently drift
// otherwise.
func TestSyntheticDeterminism(t *testing.T) {
	maxSeed := int64(22)
	if testing.Short() {
		maxSeed = 8
	}
	for seed := int64(1); seed <= maxSeed; seed++ {
		a := synthetic(seed)
		b := synthetic(seed)
		ra := explore.NewDPOR(false).Explore(a, explore.Options{ScheduleLimit: 200, MaxSteps: 2000})
		rb := explore.NewDPOR(false).Explore(b, explore.Options{ScheduleLimit: 200, MaxSteps: 2000})
		if ra.Schedules != rb.Schedules || ra.DistinctHBRs != rb.DistinctHBRs ||
			ra.DistinctLazyHBRs != rb.DistinctLazyHBRs || ra.DistinctStates != rb.DistinctStates {
			t.Errorf("seed %d: generator not deterministic: %v vs %v", seed, ra.String(), rb.String())
		}
	}
}

// TestFamilyCoverage: the corpus spans the structural spectrum the
// paper's does — some benchmarks strictly below the Figure 2 diagonal,
// some exactly on it, some hitting the schedule limit.
func TestFamilyCoverage(t *testing.T) {
	below, diagonal, limited := 0, 0, 0
	eng := explore.NewDPOR(false)
	for _, b := range All() {
		res := eng.Explore(b.Program, explore.Options{ScheduleLimit: 400, MaxSteps: 2000})
		if err := res.CheckInvariant(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		switch {
		case res.DistinctLazyHBRs < res.DistinctHBRs:
			below++
		case res.DistinctHBRs == res.DistinctLazyHBRs && res.DistinctHBRs > 1:
			diagonal++
		}
		if res.HitLimit {
			limited++
		}
	}
	if below < 15 {
		t.Errorf("only %d benchmarks below the diagonal; the corpus must show the lazy effect broadly", below)
	}
	if diagonal < 10 {
		t.Errorf("only %d benchmarks on the diagonal; need interference-heavy coverage too", diagonal)
	}
	if limited == 0 {
		t.Error("no benchmark hits the schedule limit at 400; need limit-bound coverage (underlined points)")
	}
	t.Logf("coverage at limit 400: below=%d diagonal=%d limit-hitting=%d of %d", below, diagonal, limited, Count)
}

// TestNotesMentionThreads: metadata sanity — every note is a real
// sentence, each family name appears in its members' names.
func TestNotesMentionThreads(t *testing.T) {
	for _, b := range All() {
		if len(b.Notes) < 20 {
			t.Errorf("%s: notes too thin: %q", b.Name, b.Notes)
		}
		fam := strings.SplitN(b.Family, "-", 2)[0]
		switch b.Family {
		case "mutex-algo", "synthetic", "rwlock":
			// Families whose member names use their own scheme.
		default:
			if !strings.Contains(b.Name, fam) {
				t.Errorf("%s: name does not reflect family %s", b.Name, b.Family)
			}
		}
	}
}
