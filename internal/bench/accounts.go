package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// accountEntries builds the shared-data families: locked and racy bank
// accounts, racy counters, double-checked locking and flag-based
// message passing. These exercise genuine data interference (diagonal
// points in Figure 2) and the safety detectors (races, assertion
// failures). 11 entries.
func accountEntries() []entry {
	var es []entry
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("account-locked-%d", n),
			family: "account",
			notes:  fmt.Sprintf("%d threads deposit into one shared account under a lock; per-thread withdrawal accounts are private", n),
			build:  func() model.Source { return accountLocked(n) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("account-racy-%d", n),
			family: "account",
			notes:  fmt.Sprintf("%d threads deposit into one shared account with no locking: lost updates and data races", n),
			build:  func() model.Source { return accountRacy(n) },
		})
	}
	for _, p := range []struct{ n, k int }{{2, 1}, {2, 2}, {3, 1}} {
		p := p
		es = append(es, entry{
			name:   fmt.Sprintf("counter-racy-%dx%d", p.n, p.k),
			family: "counter",
			notes:  fmt.Sprintf("%d threads perform %d unsynchronised increments each on a shared counter", p.n, p.k),
			build:  func() model.Source { return counterRacy(p.n, p.k) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("dcl-%d", n),
			family: "dcl",
			notes:  fmt.Sprintf("%d threads race through double-checked lazy initialisation (unsynchronised fast-path read)", n),
			build:  func() model.Source { return doubleCheckedLocking(n) },
		})
	}
	es = append(es,
		entry{
			name:   "msgpass-2",
			family: "msgpass",
			notes:  "flag-based message passing between two threads without synchronisation (benign under SC, racy)",
			build:  func() model.Source { return msgPass() },
		},
		entry{
			name:   "msgpass-chain-3",
			family: "msgpass",
			notes:  "three-stage flag-based hand-off chain without synchronisation",
			build:  func() model.Source { return msgPassChain() },
		},
	)
	return es
}

// accountLocked: each thread withdraws 10 from its private account and
// deposits into the shared account, all under one lock. The shared
// variable keeps even the lazy HBR from collapsing classes.
func accountLocked(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("account-locked-%d", n)).AutoStart()
	g := b.Mutex("g")
	shared := b.Var("shared")
	priv := b.VarArray("priv", n)
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		t.Lock(g)
		t.Read(r0, priv.At(i))
		t.AddConst(r0, r0, -10)
		t.Write(priv.At(i), r0)
		t.Read(r1, shared)
		t.AddConst(r1, r1, 10)
		t.Write(shared, r1)
		t.Unlock(g)
	}
	return b.Build()
}

// accountRacy: the same deposits with no lock — the scheduler can lose
// updates; each thread asserts its own deposit survived, which fails
// under interleavings that overwrite it.
func accountRacy(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("account-racy-%d", n)).AutoStart()
	shared := b.Var("shared")
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Read(r0, shared)
		t.AddConst(r0, r0, 10)
		t.Write(shared, r0)
		t.Read(r1, shared)
		// The deposit is visible unless a racing write clobbered
		// it; r1 ≥ r0 detects the obvious lost-update shape.
		t.Sub(r2, r1, r0)
		t.AssertGe(r2, 0)
	}
	return b.Build()
}

// counterRacy: unsynchronised increments; the classic lost-update bug.
func counterRacy(n, k int) model.Source {
	b := progdsl.New(fmt.Sprintf("counter-racy-%dx%d", n, k)).AutoStart()
	x := b.Var("x")
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Repeat(k, func(int) {
			t.Read(r0, x)
			t.AddConst(r0, r0, 1)
			t.Write(x, r0)
		})
	}
	return b.Build()
}

// doubleCheckedLocking: the classic broken lazy-init pattern — the
// fast-path read of the flag is unsynchronised (a data race the
// sync-only relation flags), though under sequential consistency the
// asserted value is still correct.
func doubleCheckedLocking(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("dcl-%d", n)).AutoStart()
	g := b.Mutex("g")
	flag := b.Var("initialized")
	data := b.Var("data")
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Read(r0, flag) // unsynchronised fast path
		t.If(progdsl.Eq(r0, 0), func() {
			t.Lock(g)
			t.Read(r0, flag) // second check under the lock
			t.If(progdsl.Eq(r0, 0), func() {
				t.WriteConst(data, 42)
				t.WriteConst(flag, 1)
			}, nil)
			t.Unlock(g)
		}, nil)
		t.Read(r1, data)
		t.AssertEq(r1, 42)
	}
	return b.Build()
}

// msgPass: sender publishes data then raises a flag; receiver checks
// the flag and reads the data if raised. No synchronisation: a data
// race the detector must flag, benign under sequential consistency.
func msgPass() model.Source {
	b := progdsl.New("msgpass-2").AutoStart()
	data := b.Var("data")
	flag := b.Var("flag")
	sender := b.Thread()
	sender.WriteConst(data, 7).WriteConst(flag, 1)
	receiver := b.Thread()
	receiver.Read(r0, flag)
	receiver.If(progdsl.Eq(r0, 1), func() {
		receiver.Read(r1, data)
		receiver.AssertEq(r1, 7)
	}, nil)
	return b.Build()
}

// msgPassChain: a three-stage hand-off; stage i+1 only consumes when
// stage i's flag is visible.
func msgPassChain() model.Source {
	b := progdsl.New("msgpass-chain-3").AutoStart()
	d1 := b.Var("d1")
	f1 := b.Var("f1")
	d2 := b.Var("d2")
	f2 := b.Var("f2")
	t0 := b.Thread()
	t0.WriteConst(d1, 5).WriteConst(f1, 1)
	t1 := b.Thread()
	t1.Read(r0, f1)
	t1.If(progdsl.Eq(r0, 1), func() {
		t1.Read(r1, d1)
		t1.AddConst(r1, r1, 1)
		t1.Write(d2, r1)
		t1.WriteConst(f2, 1)
	}, nil)
	t2 := b.Thread()
	t2.Read(r0, f2)
	t2.If(progdsl.Eq(r0, 1), func() {
		t2.Read(r1, d2)
		t2.AssertEq(r1, 6)
	}, nil)
	return b.Build()
}
