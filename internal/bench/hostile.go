package bench

import (
	"time"

	"repro/internal/goharness"
	"repro/internal/model"
)

// HostileIDBase offsets hostile-benchmark IDs far above the pinned
// 79-entry corpus, so the two ID spaces can never collide.
const HostileIDBase = 1000

// hostileEntries lists the fault-injection programs: benchmarks whose
// thread bodies panic or diverge on purpose, for exercising the
// harness's fault containment (panic-as-violation capture, the stall
// watchdog, campaign survivability). They are deliberately NOT part of
// All()/Names()/Count — the paper's corpus is pinned at 79 and the
// figure pipelines must never sweep a program that panics by design —
// but ByName resolves them, so campaign cells and tests can target
// them explicitly.
func hostileEntries() []entry {
	return []entry{
		{
			name:   "hostile-panic",
			family: "hostile",
			notes:  "racy panic: the victim thread panics only in schedules where it observes the writer's store — the panic-as-violation analogue of a racy assertion",
			build:  hostilePanic,
		},
		{
			name:   "hostile-panic-always",
			family: "hostile",
			notes:  "unconditional panic: every schedule's first visible operation of thread 0 is a panic",
			build:  hostilePanicAlways,
		},
		{
			name:   "hostile-diverge",
			family: "hostile",
			notes:  "racy divergence: the victim thread enters an infinite local loop only in schedules where it observes the writer's store; requires a stall timeout to explore",
			build:  hostileDiverge,
		},
	}
}

// Hostile builds the hostile corpus with IDs HostileIDBase+1 upward.
func Hostile() []Benchmark {
	es := hostileEntries()
	out := make([]Benchmark, len(es))
	for i, e := range es {
		out[i] = Benchmark{
			ID:      HostileIDBase + i + 1,
			Name:    e.name,
			Family:  e.family,
			Notes:   e.notes,
			Program: e.build(),
		}
	}
	return out
}

// hostilePanic: t0 stores x=1; t1 panics iff its read observes the
// store. Interleavings where t1 reads first terminate cleanly, so a
// systematic engine must both find the panic and keep counting the
// healthy schedules.
func hostilePanic() model.Source {
	p := goharness.New("hostile-panic").AutoStart()
	x := p.Var("x")
	done := p.Var("done")
	p.Thread(func(g *goharness.G) {
		g.Write(x, 1)
	})
	p.Thread(func(g *goharness.G) {
		if g.Read(x) == 1 {
			panic("hostile: observed the racy store")
		}
		g.Write(done, 1)
	})
	return p
}

// hostilePanicAlways panics on every schedule: the minimal program for
// pinning the panic → witness → artifact → replay pipeline.
func hostilePanicAlways() model.Source {
	p := goharness.New("hostile-panic-always").AutoStart()
	x := p.Var("x")
	p.Thread(func(g *goharness.G) {
		panic("hostile: unconditional")
	})
	p.Thread(func(g *goharness.G) {
		g.Write(x, 1)
	})
	return p
}

// hostileDiverge: t1 spins forever in local computation iff its read
// observes t0's store. Without a stall timeout this program hangs any
// engine; with one, the diverging schedules are fenced and counted
// while the read-first schedules complete normally. The loop sleeps so
// the one abandoned goroutine per exploration idles instead of
// burning a core.
func hostileDiverge() model.Source {
	p := goharness.New("hostile-diverge").AutoStart()
	x := p.Var("x")
	done := p.Var("done")
	p.Thread(func(g *goharness.G) {
		g.Write(x, 1)
	})
	p.Thread(func(g *goharness.G) {
		if g.Read(x) == 1 {
			for {
				time.Sleep(time.Millisecond)
			}
		}
		g.Write(done, 1)
	})
	return p
}
