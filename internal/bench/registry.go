// Package bench provides the benchmark corpus used to reproduce the
// paper's evaluation (Figures 2 and 3). The paper evaluated 79
// open-source multithreaded Java benchmarks; those are not available
// offline, so this corpus substitutes deterministic progdsl programs
// spanning the same structural spectrum (see DESIGN.md §2): classic
// SCT/DPOR benchmarks, coarse-grained-locking families where the lazy
// HBR collapses equivalence classes, interference-heavy programs that
// sit on the diagonal, and a seeded synthetic family. The first 79
// entries reproduce the paper's corpus size and keep their IDs
// pinned; the channel family (IDs 80+) extends the evaluation to the
// message-passing dependence rules the Java corpus could not exhibit.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// Convenient register names for the builders in this package.
const (
	r0 = progdsl.Reg(0)
	r1 = progdsl.Reg(1)
	r2 = progdsl.Reg(2)
	r3 = progdsl.Reg(3)
)

// Benchmark is one corpus entry.
type Benchmark struct {
	// ID is the benchmark's stable 1-based identifier, used as the
	// point label in the reproduced figures.
	ID int
	// Name is unique and stable, e.g. "coarse-disjoint-3x2".
	Name string
	// Family groups parameter variants.
	Family string
	// Notes describes what the benchmark exercises.
	Notes string
	// Program is the program under test.
	Program model.Source
}

type entry struct {
	name   string
	family string
	notes  string
	build  func() model.Source
}

// families in registration order; each contributes a fixed number of
// entries so IDs are stable.
func allEntries() []entry {
	var es []entry
	es = append(es, coarseEntries()...)
	es = append(es, classicEntries()...)
	es = append(es, accountEntries()...)
	es = append(es, lockEntries()...)
	es = append(es, queueEntries()...)
	es = append(es, syntheticEntries()...)
	// New families append strictly after the paper's 79 so existing IDs
	// never shift.
	es = append(es, chanEntries()...)
	return es
}

// All builds the full corpus. Programs are immutable and stateless, so
// the result can be shared; All rebuilds on each call to keep callers
// independent.
func All() []Benchmark {
	es := allEntries()
	out := make([]Benchmark, len(es))
	for i, e := range es {
		out[i] = Benchmark{
			ID:      i + 1,
			Name:    e.name,
			Family:  e.family,
			Notes:   e.notes,
			Program: e.build(),
		}
	}
	return out
}

// Count is the corpus size: the paper's 79 plus the channel family.
const Count = 88

// ByName returns the benchmark with the given name. It resolves both
// the pinned 79-entry corpus and the hostile fault-injection programs
// (see hostile.go), which are addressable by name only.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range Hostile() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ByID returns the benchmark with the given 1-based ID.
func ByID(id int) (Benchmark, bool) {
	all := All()
	if id < 1 || id > len(all) {
		return Benchmark{}, false
	}
	return all[id-1], true
}

// Families lists the distinct family names, sorted.
func Families() []string {
	seen := map[string]bool{}
	for _, e := range allEntries() {
		seen[e.family] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Names lists all benchmark names in ID order.
func Names() []string {
	es := allEntries()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.name
	}
	return out
}

func mustUnique(es []entry) {
	seen := map[string]bool{}
	for _, e := range es {
		if seen[e.name] {
			panic(fmt.Sprintf("bench: duplicate benchmark name %q", e.name))
		}
		seen[e.name] = true
	}
}

func init() {
	es := allEntries()
	if len(es) != Count {
		panic(fmt.Sprintf("bench: corpus has %d entries, want %d", len(es), Count))
	}
	// Names must be unique across the corpus AND the hostile set, since
	// ByName resolves both.
	mustUnique(append(append([]entry(nil), es...), hostileEntries()...))
}
