package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// syntheticEntries builds the seeded synthetic family: 18 randomly
// generated (but fully deterministic) programs that fill the corpus to
// the paper's 79 and smooth the structural spectrum between the
// hand-written families. Seeds are fixed forever; the generator mixes
// locked blocks over thread-private data (lazy-reducible), locked
// blocks over shared data (diagonal) and bare shared accesses (racy).
func syntheticEntries() []entry {
	var es []entry
	for s := 1; s <= 18; s++ {
		s := s
		es = append(es, entry{
			name:   fmt.Sprintf("synth-%02d", s),
			family: "synthetic",
			notes:  "seeded synthetic program (deterministic generator, see bench/synthetic.go)",
			build:  func() model.Source { return synthetic(int64(s)) },
		})
	}
	return es
}

// synthetic generates one program from a seed. The generator emits
// per-thread straight-line code of 3–6 visible operations grouped into
// optional critical sections; all control decisions come from the
// seeded source, so the same seed always yields the same program.
func synthetic(seed int64) model.Source {
	rng := rand.New(rand.NewSource(seed * 7919))
	nthreads := 2 + rng.Intn(2)      // 2..3
	nshared := 1 + rng.Intn(3)       // 1..3 shared variables
	nmutex := 1 + rng.Intn(2)        // 1..2 mutexes
	lockBias := 30 + rng.Intn(60)    // % of segments that lock
	privateBias := 20 + rng.Intn(60) // % of locked accesses on private data

	b := progdsl.New(fmt.Sprintf("synth-%02d", seed)).AutoStart()
	shared := b.VarArray("s", nshared)
	private := b.VarArray("p", nthreads)
	mus := b.MutexArray("m", nmutex)

	emitVarOp := func(t *progdsl.ThreadBuilder, tid int, inLockedBlock bool) {
		v := shared.At(rng.Intn(nshared))
		if inLockedBlock && rng.Intn(100) < privateBias {
			v = private.At(tid)
		}
		switch rng.Intn(3) {
		case 0:
			t.Read(r0, v)
		case 1:
			t.WriteConst(v, int64(1+rng.Intn(5)))
		default:
			t.Read(r0, v)
			t.AddConst(r0, r0, 1)
			t.Write(v, r0)
		}
	}

	for tid := 0; tid < nthreads; tid++ {
		t := b.Thread()
		budget := 3 + rng.Intn(4) // 3..6 visible variable ops
		for budget > 0 {
			if rng.Intn(100) < lockBias {
				m := mus.At(rng.Intn(nmutex))
				inner := 1 + rng.Intn(2)
				if inner > budget {
					inner = budget
				}
				t.Lock(m)
				for k := 0; k < inner; k++ {
					emitVarOp(t, tid, true)
				}
				t.Unlock(m)
				budget -= inner
			} else {
				emitVarOp(t, tid, false)
				budget--
			}
		}
	}
	return b.Build()
}
