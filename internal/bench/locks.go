package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// lockEntries builds the synchronisation-algorithm families: software
// mutual exclusion (Peterson, Dekker — with bounded spinning to keep
// the schedule space finite), dining philosophers (deadlocking and
// ordered variants), a coarse readers/writer arrangement and a ticket
// lock. 9 entries.
func lockEntries() []entry {
	var es []entry
	es = append(es,
		entry{
			name:   "peterson-2",
			family: "mutex-algo",
			notes:  "Peterson's algorithm with bounded spinning; a witness variable asserts mutual exclusion",
			build:  peterson,
		},
		entry{
			name:   "dekker-2",
			family: "mutex-algo",
			notes:  "Dekker-style entry protocol with bounded spinning and a mutual-exclusion witness",
			build:  dekker,
		},
	)
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("philosophers-%d", n),
			family: "philosophers",
			notes:  fmt.Sprintf("%d dining philosophers, all grabbing left fork first: deadlock reachable", n),
			build:  func() model.Source { return philosophers(n, false) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("philosophers-ordered-%d", n),
			family: "philosophers",
			notes:  fmt.Sprintf("%d dining philosophers with a lock-ordering discipline: deadlock-free", n),
			build:  func() model.Source { return philosophers(n, true) },
		})
	}
	for _, nr := range []int{2, 3} {
		nr := nr
		es = append(es, entry{
			name:   fmt.Sprintf("rw-%dr1w", nr),
			family: "rwlock",
			notes:  fmt.Sprintf("%d readers and one writer share a coarse lock; readers mostly redundant under the lazy HBR", nr),
			build:  func() model.Source { return readersWriter(nr) },
		})
	}
	es = append(es, entry{
		name:   "ticket-2",
		family: "ticket",
		notes:  "two threads take tickets under a small lock, then spin (bounded) on now-serving before the critical section",
		build:  ticketLock,
	})
	return es
}

// peterson: classic two-thread mutual exclusion. Spinning is bounded
// (a thread gives up after a few attempts and skips its critical
// section) so the schedule space stays finite; the witness variable
// asserts that two threads are never inside simultaneously. The flag
// and turn accesses are deliberate data races.
func peterson() model.Source {
	b := progdsl.New("peterson-2").AutoStart()
	flag := b.VarArray("flag", 2)
	turn := b.Var("turn")
	counter := b.Var("counter")
	witness := b.Var("witness")
	for i := 0; i < 2; i++ {
		i := i
		j := 1 - i
		t := b.Thread()
		t.WriteConst(flag.At(i), 1)
		t.WriteConst(turn, int64(j))
		t.Const(r2, 3) // bounded spin budget
		t.Const(r3, 0) // 1 = may enter
		t.While(progdsl.Ge(r2, 1), func() {
			t.Read(r0, flag.At(j))
			t.If(progdsl.Eq(r0, 0), func() {
				t.Const(r3, 1)
				t.Const(r2, 0)
			}, func() {
				t.Read(r1, turn)
				t.If(progdsl.Eq(r1, int64(i)), func() {
					t.Const(r3, 1)
					t.Const(r2, 0)
				}, func() {
					t.AddConst(r2, r2, -1)
				})
			})
		})
		t.If(progdsl.Eq(r3, 1), func() {
			t.Read(r0, witness)
			t.AssertEq(r0, 0) // mutual exclusion
			t.WriteConst(witness, 1)
			t.Read(r1, counter)
			t.AddConst(r1, r1, 1)
			t.Write(counter, r1)
			t.WriteConst(witness, 0)
		}, nil)
		t.WriteConst(flag.At(i), 0)
	}
	return b.Build()
}

// dekker: the Dekker-style entry protocol (flags only, with the turn
// variable breaking ties), bounded spin, same witness discipline.
func dekker() model.Source {
	b := progdsl.New("dekker-2").AutoStart()
	flag := b.VarArray("flag", 2)
	turn := b.Var("turn")
	witness := b.Var("witness")
	for i := 0; i < 2; i++ {
		i := i
		j := 1 - i
		t := b.Thread()
		t.WriteConst(flag.At(i), 1)
		t.Const(r2, 3)
		t.Const(r3, 1) // optimistically allowed; cleared on give-up
		t.Read(r0, flag.At(j))
		t.While(progdsl.Eq(r0, 1), func() {
			t.Read(r1, turn)
			t.If(progdsl.Ne(r1, int64(i)), func() {
				t.WriteConst(flag.At(i), 0)
				t.WriteConst(flag.At(i), 1)
			}, nil)
			t.AddConst(r2, r2, -1)
			t.If(progdsl.Eq(r2, 0), func() {
				t.Const(r0, 0) // leave the loop
				t.Const(r3, 0) // gave up
			}, func() {
				t.Read(r0, flag.At(j))
			})
		})
		t.If(progdsl.Eq(r3, 1), func() {
			t.Read(r0, witness)
			t.AssertEq(r0, 0)
			t.WriteConst(witness, 1)
			t.WriteConst(witness, 0)
			t.WriteConst(turn, int64(j))
		}, nil)
		t.WriteConst(flag.At(i), 0)
	}
	return b.Build()
}

// philosophers: fork i sits between philosophers i-1 and i. With every
// philosopher grabbing the left fork first the circular wait — a
// genuine deadlock the machine reports — is reachable; the ordered
// variant has the last philosopher grab right-then-left, which breaks
// the cycle.
func philosophers(n int, ordered bool) model.Source {
	name := fmt.Sprintf("philosophers-%d", n)
	if ordered {
		name = fmt.Sprintf("philosophers-ordered-%d", n)
	}
	b := progdsl.New(name).AutoStart()
	forks := b.MutexArray("fork", n)
	meals := b.VarArray("meals", n)
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		first, second := i, (i+1)%n
		if ordered && i == n-1 {
			first, second = second, first
		}
		t.Lock(forks.At(first))
		t.Lock(forks.At(second))
		t.Read(r0, meals.At(i))
		t.AddConst(r0, r0, 1)
		t.Write(meals.At(i), r0)
		t.Unlock(forks.At(second))
		t.Unlock(forks.At(first))
	}
	return b.Build()
}

// readersWriter: one writer updates the shared datum under the coarse
// lock; nr readers read it under the same lock and assert they saw a
// legal value.
func readersWriter(nr int) model.Source {
	b := progdsl.New(fmt.Sprintf("rw-%dr1w", nr)).AutoStart()
	g := b.Mutex("g")
	data := b.Var("data")
	w := b.Thread()
	w.Lock(g).WriteConst(data, 1).Unlock(g)
	for i := 0; i < nr; i++ {
		t := b.Thread()
		t.Lock(g).Read(r0, data).Unlock(g)
		t.AssertLt(r0, 2)
	}
	return b.Build()
}

// ticketLock: threads draw tickets under a tiny lock, then spin
// (bounded) on now-serving. A thread whose turn never comes within the
// spin budget abandons its critical section without advancing
// now-serving — so the other thread may abandon too; both outcomes are
// legal terminal states.
func ticketLock() model.Source {
	b := progdsl.New("ticket-2").AutoStart()
	tl := b.Mutex("ticket")
	next := b.Var("next")
	serving := b.Var("serving")
	counter := b.Var("counter")
	for i := 0; i < 2; i++ {
		t := b.Thread()
		t.Lock(tl)
		t.Read(r0, next) // r0: my ticket
		t.AddConst(r1, r0, 1)
		t.Write(next, r1)
		t.Unlock(tl)
		t.Const(r2, 4) // spin budget
		t.Const(r3, 0) // 1 = acquired
		t.While(progdsl.Ge(r2, 1), func() {
			t.Read(r1, serving)
			t.Sub(r1, r1, r0)
			t.If(progdsl.Eq(r1, 0), func() {
				t.Const(r3, 1)
				t.Const(r2, 0)
			}, func() {
				t.AddConst(r2, r2, -1)
			})
		})
		t.If(progdsl.Eq(r3, 1), func() {
			t.Read(r1, counter)
			t.AddConst(r1, r1, 1)
			t.Write(counter, r1)
			t.AddConst(r1, r0, 1)
			t.Write(serving, r1)
		}, nil)
	}
	return b.Build()
}
