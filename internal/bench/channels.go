package bench

import (
	"repro/internal/model"
	"repro/internal/progdsl"
)

// chanEntries builds the channel family: message-passing programs over
// the channel subsystem — producer/consumer, pipelines, select-based
// fan-in, and the canonical channel bugs (select-ordering message
// loss, send on closed, lost wakeup, buffered ordering races). These
// extend the paper's 79 shared-memory benchmarks with the dependence
// structure the paper's Java corpus could not exhibit: per-channel
// total orders instead of per-variable read/write conflicts. 9
// entries.
func chanEntries() []entry {
	return []entry{
		{
			name:   "chan-prodcons-2p1c",
			family: "chan",
			notes:  "2 producers send distinct values through a 1-slot buffered channel; the consumer drains and closes, asserting every value was produced",
			build:  chanProdCons,
		},
		{
			name:   "chan-pipeline-3",
			family: "chan",
			notes:  "3-stage pipeline over unbuffered channels: each stage receives, increments and forwards; the sink asserts the accumulated value",
			build:  chanPipeline,
		},
		{
			name:   "chan-fanin-select",
			family: "chan",
			notes:  "select-based fan-in: two producers on distinct channels, one consumer multiplexing with select; distinct channels are independent, so DPOR prunes the producer orders",
			build:  chanFanInSelect,
		},
		{
			name:   "chan-select-order-bug",
			family: "chan",
			notes:  "select-ordering bug: the consumer selects over data and done channels and stops on done; schedules where the close beats the send lose the message and fail the assertion",
			build:  chanSelectOrderBug,
		},
		{
			name:   "chan-send-closed-panic",
			family: "chan",
			notes:  "racy send on closed: one thread closes while another sends on a buffered channel; schedules where the close wins make the send a panic violation",
			build:  chanSendClosedPanic,
		},
		{
			name:   "chan-lost-wakeup",
			family: "chan",
			notes:  "lost-wakeup deadlock: a non-blocking receive can steal the single value a blocking receiver is owed, leaving it blocked forever — deadlock in exactly the thief-first schedules",
			build:  chanLostWakeup,
		},
		{
			name:   "chan-buffered-race",
			family: "chan",
			notes:  "buffered-capacity race: two senders contend for one buffer slot; the consumer asserts arrival order, which only some interleavings satisfy",
			build:  chanBufferedRace,
		},
		{
			name:   "chan-rendezvous",
			family: "chan",
			notes:  "unbuffered request/reply handshake: violation-free, pinning the rendezvous enabledness rule (a send is enabled only while a receiver is pending)",
			build:  chanRendezvous,
		},
		{
			name:   "chan-mesh-2p2c",
			family: "chan",
			notes:  "2 producers x 2 consumers contending on one 2-slot channel: violation-free but with the family's largest schedule space — every op conflicts on the shared channel, so this is the channel-ablation workload",
			build:  chanMesh,
		},
	}
}

// chanProdCons: two producers, one 1-slot buffered channel, one
// consumer. The consumer takes two values and asserts both came from a
// producer; the buffer slot forces one producer to wait out the other.
func chanProdCons() model.Source {
	b := progdsl.New("chan-prodcons-2p1c").AutoStart()
	c := b.Chan("c", 1)
	sum := b.Var("sum")
	b.Thread().SendConst(c, 10)
	b.Thread().SendConst(c, 20)
	t := b.Thread()
	t.Recv(r0, r1, c)
	t.Recv(r2, r1, c)
	t.Add(r0, r0, r2)
	t.Write(sum, r0)
	t.AssertEq(r0, 30)
	return b.Build()
}

// chanPipeline: head sends 1 into stage 1; each stage receives,
// increments and forwards; the sink asserts the total. All channels
// are unbuffered, so every hop is a rendezvous.
func chanPipeline() model.Source {
	b := progdsl.New("chan-pipeline-3").AutoStart()
	c0 := b.Chan("c0", 0)
	c1 := b.Chan("c1", 0)
	c2 := b.Chan("c2", 0)
	out := b.Var("out")
	b.Thread().SendConst(c0, 1)
	s1 := b.Thread()
	s1.Recv(r0, r1, c0).AddConst(r0, r0, 1).Send(c1, r0)
	s2 := b.Thread()
	s2.Recv(r0, r1, c1).AddConst(r0, r0, 1).Send(c2, r0)
	sink := b.Thread()
	sink.Recv(r0, r1, c2)
	sink.Write(out, r0)
	sink.AssertEq(r0, 3)
	return b.Build()
}

// chanFanInSelect: producers publish on their own buffered channels;
// the consumer multiplexes two selects. Whichever arrival order a
// schedule produces, both values are drained.
func chanFanInSelect() model.Source {
	b := progdsl.New("chan-fanin-select").AutoStart()
	ca := b.Chan("ca", 1)
	cb := b.Chan("cb", 1)
	sum := b.Var("sum")
	b.Thread().SendConst(ca, 1)
	b.Thread().SendConst(cb, 2)
	t := b.Thread()
	t.Select(r0, r1, r2, false, ca, cb)
	t.Select(r2, r1, r3, false, ca, cb)
	t.Add(r0, r0, r2)
	t.Write(sum, r0)
	t.AssertEq(r0, 3)
	return b.Build()
}

// chanSelectOrderBug: one thread sends the datum, another announces
// shutdown by closing done; the consumer selects over {data, done}
// and treats the done arm as "shut down". In schedules where the
// close commits before the send, the consumer exits without the datum
// — the classic drain-before-done select bug.
func chanSelectOrderBug() model.Source {
	b := progdsl.New("chan-select-order-bug").AutoStart()
	data := b.Chan("data", 1)
	done := b.Chan("done", 0)
	got := b.Var("got")
	b.Thread().SendConst(data, 7)
	b.Thread().Close(done)
	t := b.Thread()
	t.Select(r0, r1, r2, false, data, done)
	// Took the done arm (index 1): shut down without draining; the
	// assertion below then sees got == 0. Took the data arm: record
	// the datum.
	t.If(progdsl.Eq(r1, 0), func() {
		t.Write(got, r0)
	}, nil)
	t.Read(r3, got)
	t.AssertEq(r3, 7)
	return b.Build()
}

// chanSendClosedPanic: the closer and the sender race on a buffered
// channel. A send is always enabled on a buffered channel with a free
// slot — and on a closed one, where it panics.
func chanSendClosedPanic() model.Source {
	b := progdsl.New("chan-send-closed-panic").AutoStart()
	c := b.Chan("c", 1)
	ok := b.Var("ok")
	b.Thread().Close(c)
	t := b.Thread()
	t.SendConst(c, 1)
	t.WriteConst(ok, 1) // unreachable in close-first schedules
	return b.Build()
}

// chanLostWakeup: the producer publishes exactly one value; a thief
// polls with a non-blocking receive while the rightful consumer blocks
// on a plain receive. Thief-first schedules consume the value and the
// consumer blocks forever — a deadlock violation; consumer-first
// schedules complete cleanly.
func chanLostWakeup() model.Source {
	b := progdsl.New("chan-lost-wakeup").AutoStart()
	c := b.Chan("c", 1)
	stolen := b.Var("stolen")
	b.Thread().SendConst(c, 5)
	thief := b.Thread()
	thief.TryRecv(r0, r1, c)
	thief.If(progdsl.Eq(r1, 1), func() { thief.WriteConst(stolen, 1) }, nil)
	b.Thread().Recv(r0, r1, c)
	return b.Build()
}

// chanBufferedRace: both senders contend for the single buffer slot of
// c; the consumer asserts it drained sender 1's value first, which
// only the schedules where sender 1 wins the slot satisfy.
func chanBufferedRace() model.Source {
	b := progdsl.New("chan-buffered-race").AutoStart()
	c := b.Chan("c", 1)
	first := b.Var("first")
	b.Thread().SendConst(c, 1)
	b.Thread().SendConst(c, 2)
	t := b.Thread()
	t.Recv(r0, r1, c)
	t.Write(first, r0)
	t.Recv(r2, r1, c)
	t.AssertEq(r0, 1)
	return b.Build()
}

// chanMesh: two producers push two values each through one 2-slot
// channel; two consumers drain two each into their own accumulators.
// Sends and receives balance, so no schedule deadlocks — but every
// operation conflicts on the one channel, giving the family's densest
// interleaving space (no DPOR pruning applies).
func chanMesh() model.Source {
	b := progdsl.New("chan-mesh-2p2c").AutoStart()
	c := b.Chan("c", 2)
	s0 := b.Var("sum0")
	s1 := b.Var("sum1")
	b.Thread().SendConst(c, 1).SendConst(c, 2)
	b.Thread().SendConst(c, 3).SendConst(c, 4)
	t0 := b.Thread()
	t0.Recv(r0, r1, c).Recv(r2, r1, c).Add(r0, r0, r2).Write(s0, r0)
	t1 := b.Thread()
	t1.Recv(r0, r1, c).Recv(r2, r1, c).Add(r0, r0, r2).Write(s1, r0)
	return b.Build()
}

// chanRendezvous: request/reply over two unbuffered channels. The
// request send is enabled only once the server's receive is pending
// (and vice versa for the reply), so the handshake admits exactly the
// alternating schedules and no violation.
func chanRendezvous() model.Source {
	b := progdsl.New("chan-rendezvous").AutoStart()
	req := b.Chan("req", 0)
	rep := b.Chan("rep", 0)
	out := b.Var("out")
	client := b.Thread()
	client.SendConst(req, 4)
	client.Recv(r0, r1, rep)
	client.Write(out, r0)
	client.AssertEq(r0, 8)
	server := b.Thread()
	server.Recv(r0, r1, req)
	server.Add(r0, r0, r0)
	server.Send(rep, r0)
	return b.Build()
}
