package bench

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/progdsl"
)

// coarseEntries builds the coarse-grained-locking families — the
// paper's motivating workloads, where every critical section contends
// on one global mutex yet the protected data is disjoint or read-only.
// Regular POR must explore every lock interleaving; the lazy HBR
// recognises them as equivalent. The coarse-tail family additionally
// appends a long genuinely-conflicting tail after each critical
// section, blowing the schedule space past any practical limit: the
// regime where lazy HBR caching outruns regular caching within a fixed
// budget (the paper's Figure 3 effect). 23 entries.
func coarseEntries() []entry {
	var es []entry
	for _, p := range []struct{ n, k int }{{2, 1}, {2, 2}, {2, 3}, {3, 1}, {3, 2}, {3, 3}, {4, 1}, {4, 2}} {
		p := p
		es = append(es, entry{
			name:   fmt.Sprintf("coarse-disjoint-%dx%d", p.n, p.k),
			family: "coarse-disjoint",
			notes:  fmt.Sprintf("%d threads each increment a private counter %d times inside a shared global lock", p.n, p.k),
			build:  func() model.Source { return coarseDisjoint(p.n, p.k) },
		})
	}
	for _, n := range []int{2, 3, 4} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("coarse-readonly-%d", n),
			family: "coarse-readonly",
			notes:  fmt.Sprintf("%d threads read one shared variable inside a global lock and assert its value", n),
			build:  func() model.Source { return coarseReadonly(n) },
		})
	}
	for _, n := range []int{2, 3, 4} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("coarse-shared-%d", n),
			family: "coarse-shared",
			notes:  fmt.Sprintf("%d threads increment one shared counter inside a global lock (genuine data ordering: diagonal point)", n),
			build:  func() model.Source { return coarseShared(n) },
		})
	}
	for _, n := range []int{2, 3, 4} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("bank-global-%d", n),
			family: "bank-global",
			notes:  fmt.Sprintf("%d threads move money between disjoint account pairs under one global lock", n),
			build:  func() model.Source { return bankGlobal(n) },
		})
	}
	for _, n := range []int{2, 3} {
		n := n
		es = append(es, entry{
			name:   fmt.Sprintf("mixed-%d", n),
			family: "mixed",
			notes:  fmt.Sprintf("%d threads: disjoint locked updates plus one unprotected shared write each", n),
			build:  func() model.Source { return mixed(n) },
		})
	}
	for _, p := range []struct{ n, k int }{{3, 3}, {3, 4}, {4, 3}, {4, 4}} {
		p := p
		es = append(es, entry{
			name:   fmt.Sprintf("coarse-tail-%dx%d", p.n, p.k),
			family: "coarse-tail",
			notes: fmt.Sprintf("%d threads: a private update under the global lock, then %d conflicting shared writes each — the schedule space dwarfs any budget",
				p.n, p.k),
			build: func() model.Source { return coarseTail(p.n, p.k) },
		})
	}
	return es
}

// coarseTail: each thread updates its private cell inside the global
// critical section, then performs k writes of distinct values to one
// shared variable. The lock orders multiply the (already huge) tail
// interleavings in the regular HBR but not in the lazy HBR, so within
// a fixed schedule budget lazy caching covers strictly more lazy
// classes — the Figure 3 regime.
func coarseTail(n, k int) model.Source {
	b := progdsl.New(fmt.Sprintf("coarse-tail-%dx%d", n, k)).AutoStart()
	g := b.Mutex("g")
	own := b.VarArray("own", n)
	s := b.Var("s")
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		t.Lock(g)
		t.Read(r0, own.At(i))
		t.AddConst(r0, r0, 1)
		t.Write(own.At(i), r0)
		t.Unlock(g)
		t.Repeat(k, func(j int) {
			t.WriteConst(s, int64(i*10+j+1))
		})
	}
	return b.Build()
}

// coarseDisjoint: n threads, each increments its own variable k times,
// the whole loop inside one global critical section.
func coarseDisjoint(n, k int) model.Source {
	b := progdsl.New(fmt.Sprintf("coarse-disjoint-%dx%d", n, k)).AutoStart()
	g := b.Mutex("g")
	own := b.VarArray("own", n)
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		t.Lock(g)
		t.Repeat(k, func(int) {
			t.Read(r0, own.At(i))
			t.AddConst(r0, r0, 1)
			t.Write(own.At(i), r0)
		})
		t.Unlock(g)
	}
	return b.Build()
}

// coarseReadonly: n threads read the same variable under a global lock;
// no modification at all, so even the regular variable edges vanish.
func coarseReadonly(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("coarse-readonly-%d", n)).AutoStart()
	g := b.Mutex("g")
	x := b.VarInit("x", 42)
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Lock(g).Read(r0, x).Unlock(g).AssertEq(r0, 42)
	}
	return b.Build()
}

// coarseShared: n threads increment one shared counter under a lock.
// The variable edges order the critical sections even under the lazy
// HBR, so this family sits on the Figure 2 diagonal.
func coarseShared(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("coarse-shared-%d", n)).AutoStart()
	g := b.Mutex("g")
	x := b.Var("x")
	for i := 0; i < n; i++ {
		t := b.Thread()
		t.Lock(g).Read(r0, x).AddConst(r0, r0, 1).Write(x, r0).Unlock(g)
	}
	return b.Build()
}

// bankGlobal: thread i transfers 10 units from account 2i to account
// 2i+1, all transfers serialised by one global lock although the
// account pairs are disjoint. Each thread asserts conservation of its
// own pair (balances start at zero).
func bankGlobal(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("bank-global-%d", n)).AutoStart()
	g := b.Mutex("g")
	acc := b.VarArray("acc", 2*n)
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		t.Lock(g)
		t.Read(r0, acc.At(2*i))
		t.AddConst(r0, r0, -10)
		t.Write(acc.At(2*i), r0)
		t.Read(r1, acc.At(2*i+1))
		t.AddConst(r1, r1, 10)
		t.Write(acc.At(2*i+1), r1)
		t.Unlock(g)
		t.Add(r0, r0, r1)
		t.AssertEq(r0, 0)
	}
	return b.Build()
}

// mixed: each thread updates a private counter under the global lock,
// then performs one unprotected write to a shared flag. The lock part
// is lazy-redundant; the flag writes conflict genuinely.
func mixed(n int) model.Source {
	b := progdsl.New(fmt.Sprintf("mixed-%d", n)).AutoStart()
	g := b.Mutex("g")
	own := b.VarArray("own", n)
	flag := b.Var("flag")
	for i := 0; i < n; i++ {
		i := i
		t := b.Thread()
		t.Lock(g)
		t.Read(r0, own.At(i))
		t.AddConst(r0, r0, 1)
		t.Write(own.At(i), r0)
		t.Unlock(g)
		t.WriteConst(flag, int64(i+1))
	}
	return b.Build()
}
