package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestWriteFileAtomic: WriteFile round-trips through ReadFile, leaves
// no temporary droppings, and replaces an existing artifact in one
// step (a crash mid-write can only ever expose old-or-new, never a
// truncated file).
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bug.json")

	a := Artifact{Version: FormatVersion, Engine: "dfs", Kind: "panic", SchedulesToBug: 3, Trace: trace.Record{Version: trace.FormatVersion}}
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Engine != a.Engine || back.Kind != a.Kind || back.SchedulesToBug != a.SchedulesToBug {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, a)
	}

	// Overwrite with different content; the replacement is also clean.
	b := a
	b.Kind = "assertion failure"
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != "assertion failure" {
		t.Fatalf("overwrite not visible: kind = %q", back.Kind)
	}

	// No temp files survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temporary file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the artifact: %v", len(entries), entries)
	}
}

// TestWriteFileBareName: a path with no directory component writes
// into the working directory (the temp file must not land in "/").
func TestWriteFileBareName(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	a := Artifact{Version: FormatVersion, Engine: "dfs", Kind: "deadlock", Trace: trace.Record{Version: trace.FormatVersion}}
	if err := a.WriteFile("bare.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile("bare.json"); err != nil {
		t.Fatal(err)
	}
}

// TestWriteFileErrorCleansUp: a failed write (unwritable directory)
// leaves nothing behind.
func TestWriteFileErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	a := Artifact{Version: FormatVersion, Engine: "dfs", Kind: "panic", Trace: trace.Record{Version: trace.FormatVersion}}
	if err := a.WriteFile(filepath.Join(dir, "bug.json")); err == nil {
		t.Fatal("write into a read-only directory should fail")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Errorf("failed write left droppings: %v", entries)
	}
}
