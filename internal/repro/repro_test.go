package repro

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/progdsl"
)

// buggyZoo builds small programs with one schedule-dependent violation
// each, spanning every failure class the framework reports.
func buggyZoo() []model.Source {
	return []model.Source{
		deadlockTwoLocks(),
		racyAssertCounter(),
		racyWriters(),
		misuseUnlock(),
		chanLostWakeupDeadlock(),
		chanSendOnClosed(),
	}
}

// deadlockTwoLocks: the classic opposite-order two-lock deadlock.
func deadlockTwoLocks() model.Source {
	b := progdsl.New("zoo-deadlock").AutoStart()
	ma, mb := b.Mutex("a"), b.Mutex("b")
	b.Thread().Lock(ma).Lock(mb).Unlock(mb).Unlock(ma)
	b.Thread().Lock(mb).Lock(ma).Unlock(ma).Unlock(mb)
	return b.Build()
}

// racyAssertCounter: two unsynchronised increments plus a checker that
// asserts no update was lost — fails only on interleaved schedules.
func racyAssertCounter() model.Source {
	b := progdsl.New("zoo-racy-assert").AutoStart()
	x := b.Var("x")
	t0 := b.Thread().Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	t1 := b.Thread().Read(0, x).AddConst(0, 0, 1).Write(x, 0)
	b.Thread().Join(t0).Join(t1).Read(1, x).AssertEq(1, 2)
	return b.Build()
}

// racyWriters: a pure data race, no assertion — the violation class is
// "data race" on every schedule.
func racyWriters() model.Source {
	b := progdsl.New("zoo-racy-writers").AutoStart()
	x := b.Var("x")
	b.Thread().WriteConst(x, 1)
	b.Thread().WriteConst(x, 2)
	return b.Build()
}

// misuseUnlock: thread 1 unlocks a mutex it never acquired; whether
// the misuse fires under contention depends on the schedule reaching
// t1's unlock while t0 holds (or not) — either way a lock error.
func misuseUnlock() model.Source {
	b := progdsl.New("zoo-misuse-unlock").AutoStart()
	m := b.Mutex("m")
	x := b.Var("x")
	b.Thread().Lock(m).WriteConst(x, 1).Unlock(m)
	b.Thread().Unlock(m)
	return b.Build()
}

// chanLostWakeupDeadlock: a non-blocking receive can steal the single
// buffered value a blocking receiver is owed; thief-first schedules
// leave the receiver blocked forever — a channel deadlock.
func chanLostWakeupDeadlock() model.Source {
	b := progdsl.New("zoo-chan-lost-wakeup").AutoStart()
	c := b.Chan("c", 1)
	stolen := b.Var("stolen")
	b.Thread().SendConst(c, 5)
	thief := b.Thread()
	thief.TryRecv(0, 1, c)
	thief.If(progdsl.Eq(1, 1), func() { thief.WriteConst(stolen, 1) }, nil)
	b.Thread().Recv(0, 1, c)
	return b.Build()
}

// chanSendOnClosed: close racing a send on a buffered channel — the
// close-first schedules make the send a panic violation.
func chanSendOnClosed() model.Source {
	b := progdsl.New("zoo-chan-send-closed").AutoStart()
	c := b.Chan("c", 1)
	b.Thread().Close(c)
	b.Thread().SendConst(c, 1)
	return b.Build()
}

// firstBugEngineSpecs is the engine grid the first-bug contract is
// pinned over: every sequential engine plus the parallel searches,
// including work-stealing pdpor at 1, 2 and 4 workers.
var firstBugEngineSpecs = []string{
	"dfs", "dpor", "dpor+sleep", "lazy-dpor", "hbr-caching", "lazy-hbr-caching",
	"pb:2", "db:3", "chess-pb:2", "random:7", "pct:3", "pos:7",
	"pdfs:2", "pdpor:1", "pdpor:2", "pdpor:4", "prandom:7:2",
}

// parallelSpec reports whether an engine spec names one of the
// parallel searches, which may have sibling schedules in flight when
// the first bug lands.
func parallelSpec(spec string) bool {
	for _, p := range []string{"pdfs", "pdpor", "prandom"} {
		if strings.HasPrefix(spec, p) {
			return true
		}
	}
	return false
}

// TestStopAtFirstBugAllEngines: with StopAtFirstBug every engine stops
// the moment it sees a violation, reports the schedules-to-first-bug
// index, and the recorded witness captures and replays to the same
// failure kind.
func TestStopAtFirstBugAllEngines(t *testing.T) {
	for _, src := range buggyZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			for _, spec := range firstBugEngineSpecs {
				eng, err := campaign.EngineSpec(spec).Build()
				if err != nil {
					t.Fatalf("engine %q: %v", spec, err)
				}
				res := eng.Explore(src, explore.Options{
					ScheduleLimit: 20000, MaxSteps: 500, StopAtFirstBug: true,
				})
				if res.FirstViolation == nil {
					t.Errorf("%s found no violation in %d schedules", spec, res.Schedules)
					continue
				}
				if res.FirstBugSchedule < 1 || res.FirstBugSchedule > res.Schedules {
					t.Errorf("%s: first-bug index %d outside [1, %d]", spec, res.FirstBugSchedule, res.Schedules)
				}
				if !parallelSpec(spec) {
					// Sequential engines stop on the violating schedule
					// exactly; parallel ones may have concurrent
					// schedules in flight.
					if res.FirstBugSchedule != res.Schedules {
						t.Errorf("%s: stopped after %d schedules but the bug was schedule %d",
							spec, res.Schedules, res.FirstBugSchedule)
					}
				}
				w, ok := FromResult(res)
				if !ok {
					t.Fatalf("%s: FromResult lost the witness", spec)
				}
				a, err := Capture(src, w, 500)
				if err != nil {
					t.Errorf("%s: %v", spec, err)
					continue
				}
				if _, err := a.Replay(src); err != nil {
					t.Errorf("%s: %v", spec, err)
				}
				// The replayed outcome's classification agrees with the
				// engine recorder's.
				out := exec.Replay(src, res.FirstViolation, exec.Options{MaxSteps: 500})
				if kind := out.ViolationKind(); kind != res.ViolationKind {
					t.Errorf("%s: replay classifies %q, recorder said %q", spec, kind, res.ViolationKind)
				}
			}
		})
	}
}

// TestOnViolationHook: the hook fires with a witness consistent with
// the recorded first violation.
func TestOnViolationHook(t *testing.T) {
	src := deadlockTwoLocks()
	var seen []explore.Witness
	res := explore.NewDFS().Explore(src, explore.Options{
		MaxSteps:       500,
		StopAtFirstBug: true,
		OnViolation:    func(w explore.Witness) { seen = append(seen, w) },
	})
	if len(seen) != 1 {
		t.Fatalf("hook fired %d times under StopAtFirstBug, want 1", len(seen))
	}
	w := seen[0]
	if w.Kind != res.ViolationKind || w.Schedule != res.FirstBugSchedule ||
		w.Program != src.Name() || w.Engine != "dfs" {
		t.Errorf("witness %+v inconsistent with result (kind=%q idx=%d)", w, res.ViolationKind, res.FirstBugSchedule)
	}
	if len(w.Choices) != len(res.FirstViolation) {
		t.Errorf("witness has %d choices, result %d", len(w.Choices), len(res.FirstViolation))
	}
	if w.StateSig == (model.StateSig{}) {
		t.Error("witness is missing the terminal state digest")
	}
	// Without StopAtFirstBug, the hook fires once per violating
	// terminal execution.
	seen = nil
	full := explore.NewDFS().Explore(src, explore.Options{
		MaxSteps:    500,
		OnViolation: func(w explore.Witness) { seen = append(seen, w) },
	})
	if len(seen) != full.Deadlocks {
		t.Errorf("hook fired %d times, result counted %d deadlocks", len(seen), full.Deadlocks)
	}
}

// TestArtifactRoundTripAndMinimize is the end-to-end contract on the
// buggy zoo: capture → write → read → replay reproduces identically,
// and minimization emits a schedule that reproduces the same failure
// kind with no more choices and no more preemptions.
func TestArtifactRoundTripAndMinimize(t *testing.T) {
	dir := t.TempDir()
	for _, src := range buggyZoo() {
		src := src
		t.Run(src.Name(), func(t *testing.T) {
			res := explore.NewDFS().Explore(src, explore.Options{MaxSteps: 500, StopAtFirstBug: true})
			w, ok := FromResult(res)
			if !ok {
				t.Fatal("no violation found")
			}
			a, err := Capture(src, w, 500)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, src.Name()+".json")
			if err := a.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			back, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := back.Replay(src); err != nil {
				t.Fatal(err)
			}

			min, stats, err := Minimize(src, back, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !min.Minimized {
				t.Error("minimized artifact not flagged")
			}
			if min.Kind != a.Kind {
				t.Errorf("minimization changed the failure kind: %q → %q", a.Kind, min.Kind)
			}
			if stats.MinChoices > stats.OriginalChoices {
				t.Errorf("minimized schedule has %d choices, original %d", stats.MinChoices, stats.OriginalChoices)
			}
			if stats.MinPreemptions > stats.OriginalPreemptions {
				t.Errorf("minimized schedule has %d preemptions, original %d", stats.MinPreemptions, stats.OriginalPreemptions)
			}
			if _, err := min.Replay(src); err != nil {
				t.Errorf("minimized artifact does not replay: %v", err)
			}
			t.Logf("%s: %d→%d choices, %d→%d preemptions, %d constraints, %d replays",
				src.Name(), stats.OriginalChoices, stats.MinChoices,
				stats.OriginalPreemptions, stats.MinPreemptions, stats.Constraints, stats.Replays)
		})
	}
}

// TestCorpusFirstBugArtifacts sweeps the benchmark corpus the way the
// acceptance criterion demands: every buggy benchmark must yield an
// artifact whose replay reproduces the identical failure kind and
// state digest, and whose minimized form reproduces the same failure
// with no more choices and no more preemptions.
func TestCorpusFirstBugArtifacts(t *testing.T) {
	limit, maxSteps := 20000, 2000
	if testing.Short() {
		limit, maxSteps = 2000, 500
	}
	buggy := 0
	for _, bm := range bench.All() {
		res := explore.NewDPOR(false).Explore(bm.Program, explore.Options{
			ScheduleLimit: limit, MaxSteps: maxSteps, StopAtFirstBug: true,
		})
		w, ok := FromResult(res)
		if !ok {
			continue
		}
		buggy++
		a, err := Capture(bm.Program, w, maxSteps)
		if err != nil {
			t.Errorf("%s: %v", bm.Name, err)
			continue
		}
		if _, err := a.Replay(bm.Program); err != nil {
			t.Errorf("%s: %v", bm.Name, err)
			continue
		}
		min, stats, err := Minimize(bm.Program, a, 0)
		if err != nil {
			t.Errorf("%s: %v", bm.Name, err)
			continue
		}
		if stats.MinChoices > stats.OriginalChoices || stats.MinPreemptions > stats.OriginalPreemptions {
			t.Errorf("%s: minimization regressed: %d→%d choices, %d→%d preemptions", bm.Name,
				stats.OriginalChoices, stats.MinChoices, stats.OriginalPreemptions, stats.MinPreemptions)
		}
		if _, err := min.Replay(bm.Program); err != nil {
			t.Errorf("%s: minimized artifact does not replay: %v", bm.Name, err)
		}
	}
	if buggy == 0 {
		t.Fatal("no buggy benchmark found; the corpus sweep is vacuous")
	}
	t.Logf("captured, replayed and minimized artifacts for %d buggy benchmarks", buggy)
}

// TestMinimizeShrinksRandomWitness: a random-walk witness carries many
// incidental preemptions; minimization must strip them down to the few
// the bug actually needs (the paper's observation) while preserving
// the failure kind.
func TestMinimizeShrinksRandomWitness(t *testing.T) {
	phil, ok := bench.ByName("philosophers-3")
	if !ok {
		t.Fatal("unknown benchmark philosophers-3")
	}
	cases := []struct {
		src  model.Source
		kind string
	}{
		{phil.Program, "deadlock"},
		{racyAssertCounter(), "assertion failure"},
	}
	for _, tc := range cases {
		name := tc.src.Name()
		res := explore.NewRandomWalk(99).Explore(tc.src, explore.Options{
			ScheduleLimit: 2000, MaxSteps: 500, StopAtFirstBug: true,
		})
		w, ok := FromResult(res)
		if !ok {
			t.Fatalf("%s: random walk found no violation in %d schedules", name, res.Schedules)
		}
		if w.Kind != tc.kind {
			t.Fatalf("%s: witness kind %q, want %q", name, w.Kind, tc.kind)
		}
		a, err := Capture(tc.src, w, 500)
		if err != nil {
			t.Fatal(err)
		}
		min, stats, err := Minimize(tc.src, a, 0)
		if err != nil {
			t.Fatal(err)
		}
		// These bugs need explicit interleaving constraints (the
		// default schedule is clean), but far fewer than the raw
		// random witness carries.
		if stats.Constraints == 0 {
			t.Errorf("%s: %s reproduced with no constraints; expected a schedule-dependent bug", name, tc.kind)
		}
		if stats.Constraints >= stats.OriginalChoices {
			t.Errorf("%s: ddmin kept all %d constraints", name, stats.Constraints)
		}
		if stats.MinPreemptions > stats.OriginalPreemptions {
			t.Errorf("%s: minimization raised preemptions %d→%d", name, stats.OriginalPreemptions, stats.MinPreemptions)
		}
		if _, err := min.Replay(tc.src); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d→%d choices, %d→%d preemptions, %d constraints, %d replays",
			name, stats.OriginalChoices, stats.MinChoices,
			stats.OriginalPreemptions, stats.MinPreemptions, stats.Constraints, stats.Replays)
	}
}

// TestReplayMismatchDiagnostics: replaying against the wrong program
// or with a tampered digest produces a diagnostic instead of silently
// diverging.
func TestReplayMismatchDiagnostics(t *testing.T) {
	src := racyAssertCounter()
	res := explore.NewDFS().Explore(src, explore.Options{MaxSteps: 500, StopAtFirstBug: true})
	w, _ := FromResult(res)
	a, err := Capture(src, w, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Replay(deadlockTwoLocks()); err == nil {
		t.Error("replaying against a different program must fail")
	}
	tampered := a
	tampered.StateSig = strings.Repeat("0", 32)
	if _, err := tampered.Replay(src); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Errorf("tampered digest must produce a digest diagnostic, got %v", err)
	}
	wrongKind := a
	wrongKind.Kind = "deadlock"
	if _, err := wrongKind.Replay(src); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("wrong expected kind must produce a kind diagnostic, got %v", err)
	}

	// A witness that does not reproduce is rejected at capture time.
	bad := w
	bad.Kind = "deadlock"
	if _, err := Capture(src, bad, 500); err == nil {
		t.Error("capturing a non-reproducing witness must fail")
	}

	// Version guards.
	var buf bytes.Buffer
	v := a
	v.Version = 99
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("future artifact version must be rejected")
	}
}

// TestPreemptionsCounting pins the preemption accounting on
// hand-built schedules: switches away from blocked or finished threads
// are free, switches away from runnable threads cost one.
func TestPreemptionsCounting(t *testing.T) {
	src := racyAssertCounter()
	// The first-enabled schedule runs each thread to its blocking
	// point: no preemptions.
	free := exec.Replay(src, nil, exec.Options{MaxSteps: 500})
	if p := Preemptions(src, free.Choices); p != 0 {
		t.Errorf("first-enabled schedule counts %d preemptions, want 0", p)
	}
	// Interleaving the two increments costs two preemptions (t0→t1
	// after t0's read, t1→t0 after t1's read, both while the preempted
	// thread stays runnable); the remaining switches are free — the
	// previous thread terminated on its write.
	inter := []event.ThreadID{0, 1, 0, 1, 2, 2, 2, 2}
	if p := Preemptions(src, inter); p != 2 {
		t.Errorf("interleaved schedule counts %d preemptions, want 2", p)
	}
}
