// Schedule minimization: ddmin over the explicit choice sequence plus
// a preemption-lowering pass, each candidate validated by
// deterministic replay.
//
// Replay semantics make candidates total: exec.Prefix skips a
// requested thread that is not enabled and falls back to the
// first-enabled policy past the end of the constraints, so *any*
// subsequence of a schedule replays to some terminal execution. A
// candidate "reproduces" when that execution exhibits the same failure
// kind; the minimized artifact then stores the candidate's full
// replayed schedule, so it replays exactly (same trace, same state
// digest) like any captured artifact.
package repro

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/trace"
)

// DefaultReplayBudget bounds the validation replays one Minimize call
// may spend; generous for the schedule lengths SCT bugs need.
const DefaultReplayBudget = 4096

// MinimizeStats reports what minimization did.
type MinimizeStats struct {
	// Replays is the number of validation executions spent.
	Replays int `json:"replays"`
	// Constraints is the length of the ddmin-minimal explicit
	// constraint list (the stored schedule is its full replay).
	Constraints int `json:"constraints"`
	// OriginalChoices/OriginalPreemptions describe the input artifact;
	// MinChoices/MinPreemptions the minimized one.
	OriginalChoices     int `json:"original_choices"`
	OriginalPreemptions int `json:"original_preemptions"`
	MinChoices          int `json:"min_choices"`
	MinPreemptions      int `json:"min_preemptions"`
}

// Minimize shrinks an artifact's schedule: first ddmin over the choice
// sequence, then preemption lowering on the surviving schedule. The
// result reproduces the same failure kind with no more choices and no
// more preemptions than the input (falling back to lowering the
// original schedule alone if the ddmin route canonicalised into a
// worse schedule). replayBudget caps the validation replays; <= 0 uses
// DefaultReplayBudget.
func Minimize(src model.Source, a Artifact, replayBudget int) (Artifact, MinimizeStats, error) {
	if replayBudget <= 0 {
		replayBudget = DefaultReplayBudget
	}
	stats := MinimizeStats{
		OriginalChoices:     len(a.Trace.Choices),
		OriginalPreemptions: a.Preemptions,
	}
	if err := a.Trace.Matches(src); err != nil {
		return a, stats, fmt.Errorf("repro: %w", err)
	}

	maxSteps := a.maxSteps()
	// try is the single validation primitive: one replay per
	// candidate, returning the outcome alongside the verdict so no
	// caller re-executes an already-validated schedule.
	try := func(cand []event.ThreadID) (exec.Outcome, bool) {
		if stats.Replays >= replayBudget {
			return exec.Outcome{}, false
		}
		stats.Replays++
		out := exec.Replay(src, cand, exec.Options{MaxSteps: maxSteps})
		return out, out.ViolationKind() == a.Kind
	}
	test := func(cand []event.ThreadID) bool {
		_, ok := try(cand)
		return ok
	}

	orig, ok := try(a.Trace.Choices)
	if !ok {
		return a, stats, fmt.Errorf("repro: artifact for %s does not reproduce %s before minimization", src.Name(), a.Kind)
	}

	cand := ddmin(test, a.Trace.Choices)
	stats.Constraints = len(cand)
	full := orig
	if len(cand) < len(a.Trace.Choices) {
		if canon, ok := try(cand); ok {
			full = canon
		}
	}
	full = lowerPreemptions(src, full, try)

	// Guard the contract: never emit a schedule longer or more
	// preempted than the original. The ddmin route canonicalises tail
	// steps through the first-enabled fallback, which on rare shapes
	// costs preemptions; lowering the original schedule alone only
	// ever improves it (and replay is deterministic, so the original
	// outcome kept from the validation replay stays valid).
	p := Preemptions(src, full.Choices)
	if len(full.Choices) > stats.OriginalChoices || p > stats.OriginalPreemptions {
		full = lowerPreemptions(src, orig, try)
		p = Preemptions(src, full.Choices)
		// The ddmin result was discarded: the emitted schedule is the
		// (lowered) original, whose explicit constraint list is the
		// full choice sequence — don't report the abandoned ddmin
		// length as if it described the artifact.
		stats.Constraints = len(full.Choices)
	}
	out := full
	min := a
	min.Minimized = true
	min.Preemptions = p
	min.StateSig = sigHex(out.StateSig)
	min.Trace = trace.FromOutcome(src, out, a.Kind)
	stats.MinChoices = len(min.Trace.Choices)
	stats.MinPreemptions = min.Preemptions
	return min, stats, nil
}

// ddmin is the classic delta-debugging minimization over removal of
// choice chunks: split the sequence into n chunks, try every
// complement, recurse on success with n-1 chunks, otherwise double the
// granularity until single-choice removal fails everywhere.
func ddmin(test func([]event.ThreadID) bool, choices []event.ThreadID) []event.ThreadID {
	if test(nil) {
		// The default (first-enabled) schedule already fails: no
		// explicit constraints needed.
		return nil
	}
	cur := append([]event.ThreadID(nil), choices...)
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			comp := append(append([]event.ThreadID{}, cur[:start]...), cur[end:]...)
			if test(comp) {
				cur = comp
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}

// lowerPreemptions repeatedly removes preemptive context switches from
// a fully-replayed schedule: at a switch away from thread a while a
// stays enabled, a's next run of choices is moved forward to extend
// the current run instead. A transformed schedule is kept only when
// its replay (one per candidate, through try) still reproduces the
// failure with strictly fewer preemptions and no extra steps, so the
// pass monotonically improves and terminates. Returns the replayed
// outcome of the best schedule found.
func lowerPreemptions(src model.Source, full exec.Outcome,
	try func([]event.ThreadID) (exec.Outcome, bool)) exec.Outcome {
	best := full
	bestP := Preemptions(src, best.Choices)
	for improved := true; improved && bestP > 0; {
		improved = false
		for _, i := range preemptionPoints(src, best.Choices) {
			a := best.Choices[i-1]
			j := -1
			for k := i; k < len(best.Choices); k++ {
				if best.Choices[k] == a {
					j = k
					break
				}
			}
			if j < 0 {
				continue
			}
			end := j
			for end < len(best.Choices) && best.Choices[end] == a {
				end++
			}
			cand := make([]event.ThreadID, 0, len(best.Choices))
			cand = append(cand, best.Choices[:i]...)
			cand = append(cand, best.Choices[j:end]...)
			cand = append(cand, best.Choices[i:j]...)
			cand = append(cand, best.Choices[end:]...)
			out, ok := try(cand)
			if !ok {
				continue
			}
			p := Preemptions(src, out.Choices)
			if p < bestP && len(out.Choices) <= len(best.Choices) {
				best = out
				bestP = p
				improved = true
				break
			}
		}
	}
	return best
}

// preemptionPoints returns the schedule indices whose switch is
// preemptive (ascending).
func preemptionPoints(src model.Source, choices []event.ThreadID) []int {
	m := model.NewMachine(src)
	defer m.Abort()
	var pts []int
	for i, t := range choices {
		if i > 0 && t != choices[i-1] && m.Enabled(choices[i-1]) {
			pts = append(pts, i)
		}
		m.Step(t)
	}
	return pts
}
