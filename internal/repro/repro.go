// Package repro turns the violations the exploration engines find into
// portable, minimized, deterministically replayable counterexample
// artifacts — the missing half of a bug-finding run. The workflow:
//
//	capture   an explore.Witness (the choice sequence recorded the
//	          moment a terminal violation was seen) is replayed once
//	          through exec.Run and packaged with the program identity,
//	          engine, bounds, expected failure kind and terminal state
//	          digest into an Artifact;
//	replay    an Artifact re-executes against the program and verifies
//	          that the trace, final state and failure kind all
//	          reproduce, with a diagnostic naming whatever diverged;
//	minimize  delta debugging (ddmin) shrinks the explicit schedule
//	          constraints and a preemption-lowering pass merges
//	          context-switch blocks, emitting the shortest schedule
//	          with the fewest preemptions that still reproduces the
//	          same failure kind (mirroring the paper's observation
//	          that most bugs need very few preemptions).
//
// Artifacts are versioned JSON; the schedule payload is an
// internal/trace Record, so anything that replays trace files replays
// artifacts too.
package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/event"
	"repro/internal/exec"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/trace"
)

// FormatVersion identifies the artifact layout.
const FormatVersion = 1

// Artifact is one portable counterexample: everything needed to
// reproduce, verify and triage a violation without the run that found
// it.
type Artifact struct {
	Version int `json:"version"`
	// Engine names the engine configuration that found the witness.
	Engine string `json:"engine"`
	// SchedulesToBug is the 1-based index of the violating execution
	// in the finding run — the paper's bug-finding metric; 0 when
	// unknown (e.g. a hand-written schedule).
	SchedulesToBug int `json:"schedules_to_bug,omitempty"`
	// Kind is the expected failure class ("deadlock", "assertion
	// failure", "lock misuse", "data race").
	Kind string `json:"kind"`
	// Preemptions counts the preemptive context switches in the
	// stored schedule (switches away from a still-enabled thread).
	Preemptions int `json:"preemptions"`
	// StateSig is the hex-encoded 128-bit digest of the violating
	// terminal state — the engines' distinct-state currency.
	StateSig string `json:"state_sig"`
	// MaxSteps is the per-execution event bound the witness was
	// captured under (and must be replayed under).
	MaxSteps int `json:"max_steps,omitempty"`
	// Minimized marks an artifact produced by Minimize.
	Minimized bool `json:"minimized,omitempty"`
	// Trace is the schedule payload: program identity guard, the full
	// choice sequence and the recorded events and final state.
	Trace trace.Record `json:"trace"`
}

// String summarises the artifact.
func (a Artifact) String() string {
	min := ""
	if a.Minimized {
		min = ", minimized"
	}
	return fmt.Sprintf("%s: %s by %s after %d schedules (%d steps, %d preemptions%s)",
		a.Trace.Program, a.Kind, a.Engine, a.SchedulesToBug, len(a.Trace.Choices), a.Preemptions, min)
}

// sigHex renders a state digest the way artifacts store it.
func sigHex(s model.StateSig) string { return fmt.Sprintf("%016x%016x", s[0], s[1]) }

// FromResult reconstructs the first-bug witness of a finished
// exploration Result (its FirstViolation fields). The second return is
// false when the result saw no violation. Parallel engines merge
// FirstViolation deterministically, so the witness works for them too
// — the winning worker's pinned prefix and local choices are already
// concatenated in the recorded sequence.
func FromResult(res explore.Result) (explore.Witness, bool) {
	if res.FirstViolation == nil {
		return explore.Witness{}, false
	}
	return explore.Witness{
		Program:  res.Program,
		Engine:   res.Engine,
		Choices:  res.FirstViolation,
		Kind:     res.ViolationKind,
		Schedule: res.FirstBugSchedule,
	}, true
}

// Capture replays a witness against src and packages it as an
// artifact. The replay must reproduce the witness's failure kind (and
// state digest, when the witness carries one): engines and exec.Run
// are deterministic, so a mismatch means the witness was recorded for
// a different program or bound.
func Capture(src model.Source, w explore.Witness, maxSteps int) (Artifact, error) {
	if maxSteps <= 0 {
		maxSteps = exec.DefaultMaxSteps
	}
	out := exec.Replay(src, w.Choices, exec.Options{MaxSteps: maxSteps})
	kind := out.ViolationKind()
	if kind != w.Kind {
		return Artifact{}, fmt.Errorf("repro: witness for %s does not capture: replay produced %s, witness saw %s",
			src.Name(), orNone(kind), orNone(w.Kind))
	}
	if w.StateSig != (model.StateSig{}) && out.StateSig != w.StateSig {
		return Artifact{}, fmt.Errorf("repro: witness for %s does not capture: replay state digest %s, witness saw %s",
			src.Name(), sigHex(out.StateSig), sigHex(w.StateSig))
	}
	return Artifact{
		Version:        FormatVersion,
		Engine:         w.Engine,
		SchedulesToBug: w.Schedule,
		Kind:           kind,
		Preemptions:    Preemptions(src, out.Choices),
		StateSig:       sigHex(out.StateSig),
		MaxSteps:       maxSteps,
		Trace:          trace.FromOutcome(src, out, kind),
	}, nil
}

// Replay re-executes the artifact's schedule against src and verifies
// the counterexample reproduces: same trace, same terminal state, same
// failure kind and same state digest. The returned outcome is the
// replayed execution (also on mismatch, for triage); the error names
// exactly what diverged.
func (a Artifact) Replay(src model.Source) (exec.Outcome, error) {
	if a.Version != FormatVersion {
		return exec.Outcome{}, fmt.Errorf("repro: unsupported artifact version %d (want %d)", a.Version, FormatVersion)
	}
	out, err := a.Trace.Replay(src, exec.Options{MaxSteps: a.maxSteps()})
	if err != nil {
		return out, fmt.Errorf("repro: %w", err)
	}
	if kind := out.ViolationKind(); kind != a.Kind {
		return out, fmt.Errorf("repro: replay of %s produced %s, artifact expects %s",
			src.Name(), orNone(kind), orNone(a.Kind))
	}
	if got := sigHex(out.StateSig); got != a.StateSig {
		return out, fmt.Errorf("repro: replay of %s reached state digest %s, artifact expects %s",
			src.Name(), got, a.StateSig)
	}
	return out, nil
}

func (a Artifact) maxSteps() int {
	if a.MaxSteps <= 0 {
		return exec.DefaultMaxSteps
	}
	return a.MaxSteps
}

func orNone(kind string) string {
	if kind == "" {
		return "no violation"
	}
	return kind
}

// Write serialises the artifact as indented JSON.
func (a Artifact) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile writes the artifact to path atomically: the JSON is
// written and fsynced to a temporary file in the destination
// directory, then renamed into place. A crash mid-write leaves either
// the old artifact or none — never a truncated one that Replay would
// reject (or, worse, half-verify).
func (a Artifact) WriteFile(path string) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := a.Write(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Read parses an artifact and validates its version and schedule
// payload.
func Read(r io.Reader) (Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return Artifact{}, fmt.Errorf("repro: decode: %w", err)
	}
	if a.Version != FormatVersion {
		return Artifact{}, fmt.Errorf("repro: unsupported artifact version %d (want %d)", a.Version, FormatVersion)
	}
	if a.Trace.Version != trace.FormatVersion {
		return Artifact{}, fmt.Errorf("repro: unsupported trace version %d in artifact", a.Trace.Version)
	}
	return a, nil
}

// ReadFile reads an artifact from path.
func ReadFile(path string) (Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return Artifact{}, err
	}
	defer f.Close()
	return Read(f)
}

// Preemptions counts the preemptive context switches in a schedule: at
// each step after the first, a switch to a different thread while the
// previous thread is still enabled costs one preemption (switches at
// blocking or terminating operations are free — the CHESS accounting).
func Preemptions(src model.Source, choices []event.ThreadID) int {
	return len(preemptionPoints(src, choices))
}
